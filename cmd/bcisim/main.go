// Command bcisim runs the virtual implant end-to-end: synthetic cortex →
// ADC → packetizer or on-implant network → constant-Eb radio, with power
// and safety accounting (the runnable Fig. 3).
//
// Usage:
//
//	bcisim [-channels N] [-flow comm|compute] [-seconds S] [-labels L]
//	       [-metrics FILE] [-trace FILE] [-debug-addr ADDR]
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"mindful"
)

var (
	channels    = flag.Int("channels", 128, "neural interface channel count")
	flowName    = flag.String("flow", "comm", "dataflow: comm (stream raw), compute (on-implant DNN), feature (band power), or spike (event streaming)")
	seconds     = flag.Float64("seconds", 1, "simulated duration")
	labels      = flag.Int("labels", 40, "DNN output labels (compute flow)")
	areaMM2     = flag.Float64("area", 18, "implant contact area in mm²")
	metricsPath = flag.String("metrics", "", "write a Prometheus-text metrics snapshot to this file at exit")
	tracePath   = flag.String("trace", "", "write the span trace as JSON lines to this file at exit")
	debugAddr   = flag.String("debug-addr", "", "serve /metrics, /trace, expvar and pprof on this address while running")
)

func main() {
	flag.Parse()
	cfg := mindful.DefaultImplantConfig()
	cfg.Neural.Channels = *channels
	cfg.Area = mindful.SquareMillimetres(*areaMM2)
	// Sensing power scales with channels at the BISC-like ≈19 µW/channel.
	cfg.SensingPower = mindful.Microwatts(19 * float64(*channels))

	switch *flowName {
	case "comm":
		cfg.Flow = mindful.CommCentric
	case "compute":
		cfg.Flow = mindful.ComputeCentric
		net, err := mindful.NewRandomMLP(7, *channels, 4**labels, *labels)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Network = net
	case "feature":
		cfg.Flow = mindful.FeatureCentric
	case "spike":
		cfg.Flow = mindful.SpikeCentric
	default:
		log.Fatalf("bcisim: unknown flow %q (want comm, compute, feature, or spike)", *flowName)
	}

	im, err := mindful.NewImplant(cfg)
	if err != nil {
		log.Fatal(err)
	}
	obs := mindful.NewObserver()
	im.SetObserver(obs)
	if *debugAddr != "" {
		bound, stop, err := mindful.ServeDebug(*debugAddr, obs)
		if err != nil {
			log.Fatal(err)
		}
		defer stop() //nolint:errcheck — best-effort teardown at exit
		fmt.Fprintf(os.Stderr, "debug listener on http://%s/metrics\n", bound)
	}
	ticks := int(*seconds * cfg.Neural.SampleRate.Hz())
	fmt.Printf("Simulating a %d-channel %v implant for %.2g s (%d ticks at %v)…\n",
		*channels, cfg.Flow, *seconds, ticks, cfg.Neural.SampleRate)

	// Sweep the latent intent so the cortex is doing something.
	for i := 0; i < ticks; i++ {
		if i%128 == 0 {
			phase := float64(i) / float64(ticks)
			im.SetIntent(2*phase-1, 1-2*phase)
		}
		if err := im.Tick(); err != nil {
			log.Fatal(err)
		}
	}

	st := im.Stats()
	fmt.Printf("\nFrames sent:        %d", st.Frames)
	if st.Inferences > 0 {
		fmt.Printf(" (%d DNN inferences)", st.Inferences)
	}
	fmt.Println()
	fmt.Printf("Raw sensing volume: %d bits\n", st.RawBits())
	fmt.Printf("Transmitted:        %d bits (reduction %.2f×)\n", st.BitsSent, st.CompressionRatio())
	fmt.Printf("Uplink rate:        %v (raw sensing rate %v)\n", st.TxRate, st.SensingRate)
	fmt.Printf("Power:              sensing %v + compute %v + radio %v = %v\n",
		st.SensingPower, st.ComputePower, st.RadioPower, st.Total())
	fmt.Printf("Safety:             %v\n", st.Safety)
	if out := im.LastOutput(); out != nil {
		fmt.Printf("Last DNN output:    %d values\n", len(out))
	}
	if st.FeatureVectors > 0 {
		fmt.Printf("Feature vectors:    %d\n", st.FeatureVectors)
	}
	if st.SpikeEvents > 0 {
		fmt.Printf("Spike events:       %d\n", st.SpikeEvents)
	}
	if *metricsPath != "" {
		if err := writeSnapshot(*metricsPath, obs.Metrics.WritePrometheus); err != nil {
			log.Fatal(err)
		}
	}
	if *tracePath != "" {
		if err := writeSnapshot(*tracePath, obs.Tracer.WriteJSONL); err != nil {
			log.Fatal(err)
		}
	}
}

// writeSnapshot streams one exporter into a freshly created file.
func writeSnapshot(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}
