package main

import (
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs fn with stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string)
	go func() {
		b, _ := io.ReadAll(r)
		done <- string(b)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	out := <-done
	if runErr != nil {
		t.Fatalf("runner failed: %v", runErr)
	}
	return out
}

func TestRunnersProduceOutput(t *testing.T) {
	cases := []struct {
		name string
		fn   func() error
		want []string
	}{
		{"table1", runTable1, []string{"BISC", "Neuralink", "HALO"}},
		{"fig4", runFig4, []string{"Fig. 4", "HALO*", "true", "HALO (unscaled)", "false"}},
		{"fig5", runFig5, []string{"naive", "high-margin", "P/Budget"}},
		{"fig6", runFig6, []string{"sensing area fraction"}},
		{"fig7", runFig7, []string{"QAM", "Average supportable channels"}},
		{"fig9", runFig9, []string{"MACseq", "PE/Layer"}},
		{"fig10", runFig10, []string{"MLP", "DN-CNN", "Average over SoCs feasible at 1024"}},
		{"fig11", runFig11, []string{"partitioning", "Average gain"}},
		{"fig12", runFig12, []string{"ChDr", "La+ChDr+Tech+Dense"}},
		{"ablate", runAblate, []string{"depth-scaling", "flux split", "break-even"}},
		{"observe", runObserve, []string{"instrumented", "accepted", "MAC units"}},
		{"ext", runExt, []string{"Wireless power", "density wall", "stimulation"}},
		{"validate", runValidate, []string{"Pennes", "within the budget"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := capture(t, tc.fn)
			for _, want := range tc.want {
				if !strings.Contains(out, want) {
					t.Errorf("%s output missing %q", tc.name, want)
				}
			}
		})
	}
}

// TestObserveMetricsSnapshot checks the acceptance path: an observe run
// exported with -metrics yields Prometheus text naming the implant frame
// and bit counters, the modem error counter, and the thermal max-ΔT gauge.
func TestObserveMetricsSnapshot(t *testing.T) {
	dir := t.TempDir()
	*metricsPath = filepath.Join(dir, "obs.prom")
	*tracePath = filepath.Join(dir, "obs.jsonl")
	defer func() { *metricsPath, *tracePath = "", "" }()
	capture(t, runObserve)
	if err := writeObsOutputs(); err != nil {
		t.Fatal(err)
	}
	prom, err := os.ReadFile(*metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE implant_frames_total counter",
		`implant_frames_total{flow="communication-centric"}`,
		`implant_bits_sent_total{flow="communication-centric"}`,
		`comm_modem_bit_errors_total{modulation="16-QAM"}`,
		"# TYPE thermal_max_rise_celsius gauge",
		`thermal_max_rise_celsius{solver="steady1d"}`,
		"wearable_frames_accepted_total",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}
	trace, err := os.ReadFile(*tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(trace), `"name":"implant.tick"`) {
		t.Errorf("trace snapshot missing implant.tick spans")
	}
}

// runSubcommand parses argv as the top-level CLI would and runs the
// named subcommand runner, returning its stdout.
func runSubcommand(t *testing.T, fn func() error, argv ...string) string {
	t.Helper()
	if err := flag.CommandLine.Parse(argv); err != nil {
		t.Fatal(err)
	}
	defer flag.CommandLine.Parse(nil)
	return capture(t, fn)
}

// TestFleetDecoderFlag: `mindful fleet -decoder kalman` runs the decode
// stage and reports its accounting; an unknown decoder name is a usage
// error.
func TestFleetDecoderFlag(t *testing.T) {
	out := runSubcommand(t, runFleet,
		"fleet", "-n", "2", "-ticks", "16", "-channels", "8", "-decoder", "kalman")
	for _, want := range []string{"decoder kalman", "decode-digest"} {
		if !strings.Contains(out, want) {
			t.Errorf("fleet -decoder output missing %q:\n%s", want, out)
		}
	}
	if err := flag.CommandLine.Parse([]string{"fleet", "-n", "2", "-decoder", "transformer"}); err != nil {
		t.Fatal(err)
	}
	defer flag.CommandLine.Parse(nil)
	if err := runFleet(); err == nil {
		t.Fatal("unknown decoder name accepted")
	}
}

func TestCSVAndSVGOutput(t *testing.T) {
	dir := t.TempDir()
	*csvDir = dir
	*svgDir = dir
	defer func() { *csvDir, *svgDir = "", "" }()
	capture(t, runFig4)
	csv, err := os.ReadFile(filepath.Join(dir, "fig4.csv"))
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if !strings.Contains(string(csv), "BISC") {
		t.Errorf("csv content wrong")
	}
	svg, err := os.ReadFile(filepath.Join(dir, "fig4.svg"))
	if err != nil {
		t.Fatalf("svg not written: %v", err)
	}
	if !strings.HasPrefix(string(svg), "<svg") {
		t.Errorf("svg content wrong")
	}
}
