package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"mindful/internal/cluster"
	"mindful/internal/fleet"
	"mindful/internal/report"
	"mindful/internal/serve/checkpoint"
)

// runCluster drives the sharded front tier at fleet scale and writes
// the measured per-shard latency, migration blackout, and recovery
// numbers as JSON (the BENCH_cluster.json schema):
//
//	mindful cluster [-shards N] [-sessions N] [-subs N] [-ticks T]
//	                [-tick-interval D] [-channels C] [-qam B] [-ebn0 DB]
//	                [-seed S] [-decoder NAME] [-migrations M] [-kill]
//	                [-verify] [-out FILE]
//	                [-chaos-sweep] [-chaos-seed S] [-chaos-intensities L]
//	                [-chaos-out FILE]
//
// With no flags it runs the baseline: 3 self-hosted shards, 24 sessions
// × 1 subscriber × 300 frames, 3 live migrations and one shard kill
// with checkpoint recovery mid-run. -verify additionally re-runs every
// session uninterrupted in-process and requires the served digests to
// match bit-for-bit. -chaos-sweep instead runs the scenario once per
// fault intensity in the ladder, injecting seeded deterministic faults
// into the control plane, and writes the survival/retry/latency curves
// as BENCH_chaos.json.
func runCluster() error {
	fs := flag.NewFlagSet("cluster", flag.ContinueOnError)
	def := cluster.DefaultLoadConfig()
	shards := fs.Int("shards", def.Shards, "self-hosted gateway count")
	sessions := fs.Int("sessions", def.Sessions, "concurrent sessions across the cluster")
	subs := fs.Int("subs", def.SubsPerSession, "subscribers per session (dialed through the front tier)")
	ticks := fs.Int("ticks", def.Ticks, "frames per session")
	tickInterval := fs.Duration("tick-interval", time.Millisecond, "per-shard tick pacing")
	channels := fs.Int("channels", def.Session.Channels, "channels per implant")
	qam := fs.Int("qam", def.Session.QAMBits, "QAM bits per symbol (0 = OOK)")
	ebn0 := fs.Float64("ebn0", def.Session.EbN0dB, "AWGN operating point Eb/N0 [dB]")
	seed := fs.Int64("seed", def.Session.Seed, "base seed (offset per session)")
	decoder := fs.String("decoder", "", "attach a kinematics decoder to every session: kalman, wiener or dnn")
	migrations := fs.Int("migrations", def.Migrations, "live migrations to inject mid-run")
	kill := fs.Bool("kill", def.Kill, "kill one shard mid-run and recover from checkpoints")
	verify := fs.Bool("verify", false, "require served digests to match uninterrupted in-process runs")
	out := fs.String("out", "BENCH_cluster.json", "write the load result as JSON to FILE")
	chaosSweep := fs.Bool("chaos-sweep", false, "run the scenario across a ladder of fault intensities instead of once")
	chaosSeed := fs.Int64("chaos-seed", 1, "seed for the deterministic fault schedule")
	chaosIntensities := fs.String("chaos-intensities", "", "comma-separated sweep ladder (default 0,0.25,0.5,1,2)")
	chaosOut := fs.String("chaos-out", "BENCH_chaos.json", "write the sweep result as JSON to FILE (with -chaos-sweep)")
	if err := fs.Parse(flag.Args()[1:]); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if _, err := fleet.ParseDecoderKind(*decoder); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	cfg := cluster.LoadConfig{
		Shards:         *shards,
		Sessions:       *sessions,
		SubsPerSession: *subs,
		Ticks:          *ticks,
		TickInterval:   *tickInterval,
		Decoder:        *decoder,
		Migrations:     *migrations,
		Kill:           *kill,
		VerifyDigests:  *verify,
		Observer:       observer,
		Session: checkpoint.SessionConfig{
			Channels:     *channels,
			SampleRateHz: def.Session.SampleRateHz,
			SampleBits:   def.Session.SampleBits,
			QAMBits:      *qam,
			EbN0dB:       *ebn0,
			Seed:         *seed,
		},
	}
	if *chaosSweep {
		intensities, err := parseIntensities(*chaosIntensities)
		if err != nil {
			return fmt.Errorf("%w: %v", errUsage, err)
		}
		return runChaosSweep(cfg, intensities, *chaosSeed, *chaosOut)
	}

	res, err := cluster.RunLoad(cfg)
	if err != nil {
		return err
	}

	tb := report.NewTable(fmt.Sprintf("Cluster: %d shards, %d sessions × %d subscribers × %d frames",
		res.Shards, res.Sessions, res.SubsPerSession, res.Ticks),
		"Metric", "Value")
	tb.AddRow("records received", fmt.Sprintf("%d", res.Records))
	tb.AddRow("elapsed", fmt.Sprintf("%.3f s", res.ElapsedSeconds))
	tb.AddRow("frames/s", fmt.Sprintf("%.0f", res.FramesPerSec))
	for _, sh := range res.PerShard {
		tb.AddRow(sh.ID+" p50/p99 latency",
			fmt.Sprintf("%.3f / %.3f ms (%d records, %d sessions at end)",
				sh.P50Ms, sh.P99Ms, sh.Records, sh.Sessions))
	}
	if len(res.Migrations) > 0 {
		tb.AddRow("migrations", fmt.Sprintf("%d", len(res.Migrations)))
		tb.AddRow("blackout p50/max", fmt.Sprintf("%.2f / %.2f ms", res.BlackoutP50Ms, res.BlackoutMaxMs))
	}
	if res.Killed != "" {
		tb.AddRow("killed shard", res.Killed)
		tb.AddRow("sessions recovered/lost", fmt.Sprintf("%d / %d", res.Recovered, res.Lost))
		tb.AddRow("recovery time", fmt.Sprintf("%.3f s", res.RecoverySeconds))
	}
	if res.DigestsVerified > 0 {
		tb.AddRow("digests verified", fmt.Sprintf("%d (%d mismatches)", res.DigestsVerified, res.DigestMismatches))
	}
	fmt.Print(tb.String())

	if *out != "" {
		bench := struct {
			Benchmark  string `json:"benchmark"`
			GOMAXPROCS int    `json:"gomaxprocs"`
			NumCPU     int    `json:"num_cpu"`
			*cluster.LoadResult
		}{"cluster_loadgen", runtime.GOMAXPROCS(0), runtime.NumCPU(), res}
		buf, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	return nil
}

// parseIntensities parses the -chaos-intensities ladder; empty means
// the default ladder.
func parseIntensities(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		x, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil || x < 0 {
			return nil, fmt.Errorf("bad intensity %q", part)
		}
		out = append(out, x)
	}
	return out, nil
}

// runChaosSweep runs the intensity ladder and writes BENCH_chaos.json.
func runChaosSweep(cfg cluster.LoadConfig, intensities []float64, seed int64, out string) error {
	sweep, err := cluster.RunChaosSweep(cfg, intensities, seed)
	if err != nil {
		return err
	}

	tb := report.NewTable(fmt.Sprintf("Chaos sweep: %d shards, %d sessions × %d frames, seed %d",
		sweep.Shards, sweep.Sessions, sweep.Ticks, sweep.Seed),
		"Intensity", "Survival", "Migr ok", "Retries", "Giveups", "Repairs", "p99 [ms]")
	for _, pt := range sweep.Points {
		r := pt.Result
		tb.AddRow(fmt.Sprintf("%.2f", pt.Intensity),
			fmt.Sprintf("%.3f", r.SurvivalRate),
			fmt.Sprintf("%.3f", r.MigrationSuccessRate),
			fmt.Sprintf("%d", r.Retries),
			fmt.Sprintf("%d", r.Giveups),
			fmt.Sprintf("%d", r.ReconcileRepairs),
			fmt.Sprintf("%.3f", r.OverallP99Ms))
	}
	fmt.Print(tb.String())

	if out != "" {
		bench := struct {
			Benchmark  string `json:"benchmark"`
			GOMAXPROCS int    `json:"gomaxprocs"`
			NumCPU     int    `json:"num_cpu"`
			*cluster.ChaosSweep
		}{"cluster_chaos_sweep", runtime.GOMAXPROCS(0), runtime.NumCPU(), sweep}
		buf, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", out)
	}
	return nil
}
