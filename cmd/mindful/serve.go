package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"mindful/internal/drift"
	"mindful/internal/fleet"
	"mindful/internal/report"
	"mindful/internal/serve"
	"mindful/internal/serve/checkpoint"
)

// runServe hosts the streaming session gateway until SIGINT/SIGTERM:
//
//	mindful serve [-ctl ADDR] [-stream ADDR] [-snapshot-dir DIR]
//	              [-max-sessions N] [-queue N] [-stall D] [-tick-interval D]
//	              [-decoder NAME] [-drift I] [-adapt]
//
// The control plane is JSON over HTTP on -ctl; the data plane streams
// length-prefixed binary records on -stream. -decoder (kalman, wiener,
// dnn or fixed) attaches that decoder to every session that does not
// name one itself; decoded kinematics stream to "SUB <id> decoded"
// subscribers. -drift I attaches the default nonstationarity profile
// scaled to intensity I to every session that configures none itself;
// -adapt closes the recalibration loop on every linear-decoder session
// that sets no adaptive knob. On shutdown every live session is drained
// and (with -snapshot-dir) checkpointed so it can be restored
// bit-identically.
func runServe() error {
	fs := flag.NewFlagSet("serve", flag.ContinueOnError)
	ctl := fs.String("ctl", "127.0.0.1:7600", "control-plane (HTTP) listen address")
	stream := fs.String("stream", "127.0.0.1:7601", "data-plane (TCP) listen address")
	snapDir := fs.String("snapshot-dir", "", "checkpoint live sessions here on shutdown")
	maxSessions := fs.Int("max-sessions", serve.DefaultMaxSessions, "concurrent session limit")
	queue := fs.Int("queue", serve.DefaultQueueDepth, "per-subscriber record queue depth")
	stall := fs.Duration("stall", serve.DefaultStallTimeout, "evict a subscriber stalled this long (negative disables)")
	tickInterval := fs.Duration("tick-interval", 0, "throttle every session's tick loop (0 = free-run)")
	decoder := fs.String("decoder", "", "default kinematics decoder for new sessions: kalman, wiener, dnn or fixed")
	driftI := fs.Float64("drift", 0, "default nonstationarity intensity for new sessions (0 = off)")
	adapt := fs.Bool("adapt", false, "close the recalibration loop on new linear-decoder sessions by default")
	if err := fs.Parse(flag.Args()[1:]); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if _, err := fleet.ParseDecoderKind(*decoder); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	var defaultDrift *drift.Profile
	if *driftI > 0 {
		p := fleet.DefaultSweepProfile().Scale(*driftI)
		defaultDrift = &p
	}

	srv, err := serve.New(serve.Config{
		ControlAddr:    *ctl,
		StreamAddr:     *stream,
		SnapshotDir:    *snapDir,
		MaxSessions:    *maxSessions,
		QueueDepth:     *queue,
		StallTimeout:   *stall,
		TickInterval:   *tickInterval,
		DefaultDecoder: *decoder,
		DefaultDrift:   defaultDrift,
		DefaultAdapt:   *adapt,
		Observer:       observer,
	})
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "control plane on http://%s  data plane on %s\n",
		srv.ControlAddr(), srv.StreamAddr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop() // restore default handling so a second signal kills hard
	fmt.Fprintln(os.Stderr, "draining sessions...")
	sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	return srv.Shutdown(sctx)
}

// runLoadgen drives a gateway at fleet scale and writes the measured
// throughput and delivery latency as JSON (the BENCH_serve.json schema):
//
//	mindful loadgen [-sessions N] [-subs N] [-ticks T] [-channels C]
//	                [-qam B] [-ebn0 DB] [-seed S] [-decoder NAME]
//	                [-drift I] [-adapt] [-out FILE]
//
// With no flags it runs the baseline 100 sessions × 2 subscribers × 100
// frames against a self-hosted loopback gateway.
func runLoadgen() error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	def := serve.DefaultLoadConfig()
	sessions := fs.Int("sessions", def.Sessions, "concurrent sessions")
	subs := fs.Int("subs", def.SubsPerSession, "subscribers per session")
	ticks := fs.Int("ticks", def.Ticks, "frames per session")
	channels := fs.Int("channels", def.Session.Channels, "channels per implant")
	qam := fs.Int("qam", def.Session.QAMBits, "QAM bits per symbol (0 = OOK)")
	ebn0 := fs.Float64("ebn0", def.Session.EbN0dB, "AWGN operating point Eb/N0 [dB]")
	seed := fs.Int64("seed", def.Session.Seed, "base seed (offset per session)")
	decoder := fs.String("decoder", "", "attach a kinematics decoder to every session: kalman, wiener, dnn or fixed")
	driftI := fs.Float64("drift", 0, "nonstationarity intensity for every session (0 = off)")
	adapt := fs.Bool("adapt", false, "close the recalibration loop on every session (needs a linear -decoder)")
	out := fs.String("out", "BENCH_serve.json", "write the load result as JSON to FILE")
	if err := fs.Parse(flag.Args()[1:]); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	if _, err := fleet.ParseDecoderKind(*decoder); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}

	cfg := serve.LoadConfig{
		Sessions:       *sessions,
		SubsPerSession: *subs,
		Ticks:          *ticks,
		Decoder:        *decoder,
		Session: checkpoint.SessionConfig{
			Channels:     *channels,
			SampleRateHz: def.Session.SampleRateHz,
			SampleBits:   def.Session.SampleBits,
			QAMBits:      *qam,
			EbN0dB:       *ebn0,
			Seed:         *seed,
		},
	}
	if *driftI > 0 {
		p := fleet.DefaultSweepProfile().Scale(*driftI)
		cfg.Session.Drift = &p
	}
	if *adapt {
		cfg.Session.Calibrate, cfg.Session.Track, cfg.Session.Adapt = true, true, true
	}
	res, err := serve.RunLoad(cfg)
	if err != nil {
		return err
	}

	tb := report.NewTable(fmt.Sprintf("Loadgen: %d sessions × %d subscribers × %d frames",
		res.Sessions, res.SubsPerSession, res.Ticks),
		"Metric", "Value")
	tb.AddRow("records received", fmt.Sprintf("%d", res.Records))
	tb.AddRow("dropped frames", fmt.Sprintf("%d", res.Dropped))
	tb.AddRow("evicted subscribers", fmt.Sprintf("%d", res.Evicted))
	if *decoder != "" && *decoder != "none" {
		tb.AddRow("decoded steps", fmt.Sprintf("%d", res.DecodedSteps))
	}
	tb.AddRow("elapsed", fmt.Sprintf("%.3f s", res.ElapsedSeconds))
	tb.AddRow("sessions/s", fmt.Sprintf("%.1f", res.SessionsPerSec))
	tb.AddRow("frames/s", fmt.Sprintf("%.0f", res.FramesPerSec))
	tb.AddRow("p50 delivery latency", fmt.Sprintf("%.3f ms", res.P50LatencyMs))
	tb.AddRow("p99 delivery latency", fmt.Sprintf("%.3f ms", res.P99LatencyMs))
	tb.AddRow("p99.9 delivery latency", fmt.Sprintf("%.3f ms", res.P999LatencyMs))
	tb.AddRow("max delivery latency", fmt.Sprintf("%.3f ms", res.MaxLatencyMs))
	fmt.Print(tb.String())

	if *out != "" {
		bench := struct {
			Benchmark  string `json:"benchmark"`
			GOMAXPROCS int    `json:"gomaxprocs"`
			NumCPU     int    `json:"num_cpu"`
			*serve.LoadResult
		}{"serve_loadgen", runtime.GOMAXPROCS(0), runtime.NumCPU(), res}
		buf, err := json.MarshalIndent(bench, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	return nil
}
