// Command mindful regenerates the paper's evaluation artifacts: Table 1
// and Figures 4–7 and 9–12. Each subcommand prints an aligned table and an
// ASCII chart; -csv and -svg write machine-readable and vector outputs.
//
// Usage:
//
//	mindful [flags] <table1|fig4|fig5|fig6|fig7|fig9|fig10|fig11|fig12|fleet|observe|all|validate>
//	mindful [flags] fleet [-n N] [-workers K] [-ticks T] [-scaling FILE]
//	               [-faults I] [-arq N] [-fec D] [-conceal MODE] [-fault-sweep FILE]
//
// Flags:
//
//	-csv DIR          also write <name>.csv into DIR
//	-svg DIR          also write <name>.svg into DIR
//	-metrics FILE     write a Prometheus-text metrics snapshot at exit
//	-trace FILE       write the span trace as JSON lines at exit
//	-events FILE      write the flight-recorder event log as JSON lines at exit
//	-debug-addr ADDR  serve /metrics, /trace, expvar and pprof while running
//
// The observe subcommand runs the instrumented implant → modem → wearable
// chain plus the thermal and scheduling solvers, so -metrics captures a
// snapshot that spans every layer.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"mindful/internal/dnnmodel"
	"mindful/internal/experiments"
	"mindful/internal/optimize"
	"mindful/internal/report"
	"mindful/internal/sched"
	"mindful/internal/thermal"
	"mindful/internal/units"
	"mindful/internal/wpt"
)

var (
	csvDir = flag.String("csv", "", "directory for CSV output (optional)")
	svgDir = flag.String("svg", "", "directory for SVG output (optional)")
)

// errUsage marks a subcommand flag-parsing failure: the flag package has
// already written the message (or help text) to stderr, so main only
// needs the usage exit code.
var errUsage = errors.New("usage error")

// hasOwnFlags lists the subcommands that parse their own flags from the
// remaining arguments.
var hasOwnFlags = map[string]bool{"fleet": true, "profile": true, "serve": true, "loadgen": true, "cluster": true}

func main() {
	flag.Usage = usage
	flag.Parse()
	// Every subcommand takes exactly one positional argument except the
	// ones that parse their own flags from the remainder.
	if flag.NArg() < 1 || (flag.NArg() > 1 && !hasOwnFlags[flag.Arg(0)]) {
		usage()
		os.Exit(2)
	}
	cmd := flag.Arg(0)
	runners := map[string]func() error{
		"table1":   runTable1,
		"fig4":     runFig4,
		"fig5":     runFig5,
		"fig6":     runFig6,
		"fig7":     runFig7,
		"fig9":     runFig9,
		"fig10":    runFig10,
		"fig11":    runFig11,
		"fig12":    runFig12,
		"ablate":   runAblate,
		"ext":      runExt,
		"fleet":    runFleet,
		"profile":  runProfile,
		"serve":    runServe,
		"loadgen":  runLoadgen,
		"cluster":  runCluster,
		"observe":  runObserve,
		"validate": runValidate,
	}
	// The scheduler backs most figure runners; wiring its package-level
	// hook here means any subcommand's -metrics snapshot carries the
	// solves it triggered.
	sched.SetObserver(observer)
	stopDebug, err := startDebug()
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := writeObsOutputs(); err != nil {
			fail(err)
		}
		if err := stopDebug(); err != nil {
			fail(err)
		}
	}()
	if cmd == "all" {
		for _, name := range []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10", "fig11", "fig12"} {
			if err := runners[name](); err != nil {
				fail(err)
			}
			fmt.Println()
		}
		return
	}
	run, ok := runners[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "mindful: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err := run(); err != nil {
		fail(err)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: mindful [-csv DIR] [-svg DIR] [-metrics FILE] [-trace FILE] [-events FILE] [-debug-addr ADDR] <table1|fig4|fig5|fig6|fig7|fig9|fig10|fig11|fig12|ablate|ext|fleet|profile|serve|loadgen|cluster|observe|all|validate>")
	fmt.Fprintln(os.Stderr, "       mindful fleet [-n N] [-workers K] [-ticks T] [-channels C] [-qam B] [-ebn0 DB] [-seed S] [-scaling FILE]")
	fmt.Fprintln(os.Stderr, "                     [-faults I] [-arq N] [-fec D] [-conceal none|hold|interp] [-fault-sweep FILE] [-stage-timing]")
	fmt.Fprintln(os.Stderr, "       mindful profile [fleet pipeline flags] [-out FILE]")
	fmt.Fprintln(os.Stderr, "       mindful serve [-ctl ADDR] [-stream ADDR] [-snapshot-dir DIR] [-max-sessions N] [-queue N] [-stall D] [-tick-interval D]")
	fmt.Fprintln(os.Stderr, "       mindful loadgen [-sessions N] [-subs N] [-ticks T] [-channels C] [-qam B] [-ebn0 DB] [-seed S] [-out FILE]")
	fmt.Fprintln(os.Stderr, "       mindful cluster [-shards N] [-sessions N] [-subs N] [-ticks T] [-migrations M] [-kill] [-verify] [-out FILE]")
	flag.PrintDefaults()
}

func fail(err error) {
	if errors.Is(err, errUsage) {
		// The flag package already reported the details on stderr.
		os.Exit(2)
	}
	fmt.Fprintln(os.Stderr, "mindful:", err)
	os.Exit(1)
}

func emit(name string, tb *report.Table, chart *report.Chart) error {
	fmt.Print(tb.String())
	if chart != nil {
		fmt.Println()
		fmt.Print(chart.ASCII(72, 18))
	}
	if *csvDir != "" {
		if err := writeFile(*csvDir, name+".csv", tb.CSV()); err != nil {
			return err
		}
	}
	if *svgDir != "" && chart != nil {
		if err := writeFile(*svgDir, name+".svg", chart.SVG(640, 400)); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(dir, name, content string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

func f(v float64, prec int) string { return strconv.FormatFloat(v, 'f', prec, 64) }

func runTable1() error {
	tb := report.NewTable("Table 1: published implanted SoC designs",
		"#", "SoC", "NI", "Ch", "Area [mm²]", "Pd [mW/cm²]", "f [kHz]", "Wireless", "P [mW]")
	for _, r := range experiments.Table1() {
		d := r.Design
		tb.AddRow(strconv.Itoa(d.Num), d.Name, string(d.NI), strconv.Itoa(d.Channels),
			f(d.Area.MM2(), 2), f(d.Density.MWPerCM2(), 1), f(d.SampleRate.KHz(), 0),
			fmt.Sprint(d.Wireless), f(r.PowerMW, 2))
	}
	return emit("table1", tb, nil)
}

func runFig4() error {
	rows := experiments.Fig4()
	tb := report.NewTable("Fig. 4: designs scaled to 1024 channels vs the power budget",
		"#", "SoC", "Area [mm²]", "P [mW]", "Pd [mW/cm²]", "Budget [mW]", "Safe")
	chart := &report.Chart{
		Title:  "Fig. 4: power vs area at 1024 channels (log power)",
		XLabel: "area [mm²]", YLabel: "power [mW]", LogY: true,
	}
	var px, py []float64
	for _, r := range rows {
		tb.AddRow(strconv.Itoa(r.SoC), r.Name, f(r.AreaMM2, 2), f(r.PowerMW, 2),
			f(r.DensityMW, 1), f(r.BudgetMW, 2), fmt.Sprint(r.Safe))
		px = append(px, r.AreaMM2)
		py = append(py, r.PowerMW)
	}
	chart.Series = []report.Series{{Name: "scaled designs", X: px, Y: py}}
	// The budget line P = 0.4 mW/mm² · A.
	var bx, by []float64
	for a := 1.0; a <= 180; a += 5 {
		bx = append(bx, a)
		by = append(by, 0.4*a)
	}
	chart.Series = append(chart.Series, report.Series{Name: "power budget", X: bx, Y: by})
	return emit("fig4", tb, chart)
}

func runFig5() error {
	for _, h := range []experiments.Hypothesis{experiments.Naive, experiments.HighMargin} {
		rows := experiments.Fig5(h)
		tb := report.NewTable(fmt.Sprintf("Fig. 5 (%s design): SoC power vs budget", h),
			"SoC", "Channels", "Sensing [mW]", "Non-sensing [mW]", "Budget [mW]", "P/Budget")
		chart := &report.Chart{
			Title:  fmt.Sprintf("Fig. 5 (%s): P_SoC/P_budget vs channels", h),
			XLabel: "channels", YLabel: "P/Budget",
		}
		series := map[int]*report.Series{}
		var order []int
		for _, r := range rows {
			tb.AddRow(strconv.Itoa(r.SoC), strconv.Itoa(r.Channels), f(r.SensingMW, 2),
				f(r.NonSensingMW, 2), f(r.BudgetMW, 2), f(r.Ratio, 3))
			s, ok := series[r.SoC]
			if !ok {
				s = &report.Series{Name: fmt.Sprintf("SoC %d", r.SoC)}
				series[r.SoC] = s
				order = append(order, r.SoC)
			}
			s.X = append(s.X, float64(r.Channels))
			s.Y = append(s.Y, r.Ratio)
		}
		sort.Ints(order)
		for _, num := range order {
			chart.Series = append(chart.Series, *series[num])
		}
		if err := emit("fig5_"+h.String(), tb, chart); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runFig6() error {
	for _, h := range []experiments.Hypothesis{experiments.Naive, experiments.HighMargin} {
		rows := experiments.Fig6(h)
		tb := report.NewTable(fmt.Sprintf("Fig. 6 (%s design): sensing area fraction", h),
			"SoC", "Channels", "A_sensing/A_SoC")
		chart := &report.Chart{
			Title:  fmt.Sprintf("Fig. 6 (%s): sensing area fraction vs channels", h),
			XLabel: "channels", YLabel: "fraction",
		}
		series := map[int]*report.Series{}
		var order []int
		for _, r := range rows {
			tb.AddRow(strconv.Itoa(r.SoC), strconv.Itoa(r.Channels), f(r.Fraction, 3))
			s, ok := series[r.SoC]
			if !ok {
				s = &report.Series{Name: fmt.Sprintf("SoC %d", r.SoC)}
				series[r.SoC] = s
				order = append(order, r.SoC)
			}
			s.X = append(s.X, float64(r.Channels))
			s.Y = append(s.Y, r.Fraction)
		}
		sort.Ints(order)
		for _, num := range order {
			chart.Series = append(chart.Series, *series[num])
		}
		if err := emit("fig6_"+h.String(), tb, chart); err != nil {
			return err
		}
		fmt.Println()
	}
	return nil
}

func runFig7() error {
	rows, err := experiments.Fig7(experiments.DefaultFig7Config())
	if err != nil {
		return err
	}
	tb := report.NewTable("Fig. 7: minimum QAM efficiency to meet the power budget",
		"SoC", "Channels", "Bits/symbol", "Min efficiency [%]")
	for _, r := range rows {
		if r.Channels%512 != 0 {
			continue // table at coarse steps; the chart keeps all points
		}
		tb.AddRow(strconv.Itoa(r.SoC), strconv.Itoa(r.Channels),
			strconv.Itoa(r.BitsPerSymbol), f(r.MinEfficiency*100, 1))
	}
	ns, avg := experiments.Fig7AverageCurve(rows)
	chart := &report.Chart{
		Title:  "Fig. 7: average minimum QAM efficiency vs channels",
		XLabel: "channels", YLabel: "efficiency",
	}
	var x, y []float64
	for i, n := range ns {
		x = append(x, float64(n))
		y = append(y, avg[i])
	}
	chart.Series = []report.Series{{Name: "average over SoCs 1–8", X: x, Y: y}}
	if err := emit("fig7", tb, chart); err != nil {
		return err
	}
	_, at15 := experiments.Fig7MaxChannelsAt(rows, 0.15)
	_, at20 := experiments.Fig7MaxChannelsAt(rows, 0.20)
	_, at100 := experiments.Fig7MaxChannelsAt(rows, 1.00)
	fmt.Printf("\nAverage supportable channels: %.0f @15%%, %.0f @20%%, %.0f @100%% efficiency\n", at15, at20, at100)
	return nil
}

func runFig9() error {
	rows := experiments.Fig9()
	tb := report.NewTable("Fig. 9: accelerator design points (130 nm, 100 MHz)",
		"Design", "MACseq", "MAChw", "#MACop", "Layer [mW]", "PE [mW]", "PE/Layer [%]")
	chart := &report.Chart{
		Title:  "Fig. 9: layer power and PE share per design point",
		XLabel: "design point", YLabel: "power [mW] (log)",
		LogY: true,
	}
	var x, layer, pe []float64
	for _, r := range rows {
		tb.AddRow(strconv.Itoa(r.Design), strconv.Itoa(r.MACSeq), strconv.Itoa(r.MACHW),
			strconv.Itoa(r.MACOps), f(r.LayerMW, 2), f(r.PEMW, 2), f(r.PEFraction*100, 1))
		x = append(x, float64(r.Design))
		layer = append(layer, r.LayerMW)
		pe = append(pe, r.PEMW)
	}
	chart.Series = []report.Series{
		{Name: "layer power", X: x, Y: layer},
		{Name: "PE power", X: x, Y: pe},
	}
	return emit("fig9", tb, chart)
}

func runFig10() error {
	for _, tmpl := range dnnmodel.Templates() {
		rows, err := experiments.Fig10(tmpl)
		if err != nil {
			return err
		}
		tb := report.NewTable(fmt.Sprintf("Fig. 10 (%s): normalized SoC power with on-implant DNN", tmpl.Name),
			"SoC", "Channels", "P/Budget", "Feasible")
		chart := &report.Chart{
			Title:  fmt.Sprintf("Fig. 10 (%s): P_SoC/P_budget vs channels", tmpl.Name),
			XLabel: "channels", YLabel: "P/Budget",
		}
		series := map[int]*report.Series{}
		var order []int
		for _, r := range rows {
			tb.AddRow(strconv.Itoa(r.SoC), strconv.Itoa(r.Channels), f(r.Utilization, 2), fmt.Sprint(r.Feasible))
			s, ok := series[r.SoC]
			if !ok {
				s = &report.Series{Name: fmt.Sprintf("SoC %d", r.SoC)}
				series[r.SoC] = s
				order = append(order, r.SoC)
			}
			s.X = append(s.X, float64(r.Channels))
			s.Y = append(s.Y, r.Utilization)
		}
		sort.Ints(order)
		for _, num := range order {
			chart.Series = append(chart.Series, *series[num])
		}
		if err := emit("fig10_"+tmpl.Name, tb, chart); err != nil {
			return err
		}
		perSoC, avg, err := experiments.Fig10Crossovers(tmpl)
		if err != nil {
			return err
		}
		var nums []int
		for num := range perSoC {
			nums = append(nums, num)
		}
		sort.Ints(nums)
		fmt.Printf("\nMax feasible channels per SoC (%s): ", tmpl.Name)
		for _, num := range nums {
			fmt.Printf("SoC%d=%d ", num, perSoC[num])
		}
		fmt.Printf("\nAverage over SoCs feasible at 1024: %.0f\n\n", avg)
	}
	return nil
}

func runFig11() error {
	rows, err := experiments.Fig11()
	if err != nil {
		return err
	}
	tb := report.NewTable("Fig. 11: channel-count increase from DNN partitioning",
		"SoC", "Model", "Max (full)", "Max (partitioned)", "Increase")
	var bars []report.Bar
	for _, r := range rows {
		tb.AddRow(strconv.Itoa(r.SoC), r.Model, strconv.Itoa(r.MaxFull),
			strconv.Itoa(r.MaxPartition), f(r.Increase, 3))
		bars = append(bars, report.Bar{Label: fmt.Sprintf("%s SoC %d", r.Model, r.SoC), Value: r.Increase})
	}
	fmt.Print(tb.String())
	fmt.Println()
	fmt.Print(report.BarChart("Fig. 11: increase vs full DNN (1.0 = original)", "×", bars, 40))
	fmt.Printf("\nAverage gain: MLP %.0f%%, DN-CNN %.0f%%\n",
		experiments.Fig11AverageGain(rows, "MLP")*100,
		experiments.Fig11AverageGain(rows, "DN-CNN")*100)
	if *csvDir != "" {
		return writeFile(*csvDir, "fig11.csv", tb.CSV())
	}
	return nil
}

func runFig12() error {
	rows, err := experiments.Fig12()
	if err != nil {
		return err
	}
	tb := report.NewTable("Fig. 12: feasible MLP model size after combined optimizations",
		"SoC", "Channels", "Step", "Active ch", "Model size [%]")
	for _, r := range rows {
		tb.AddRow(strconv.Itoa(r.SoC), strconv.Itoa(r.Channels), r.Step.String(),
			strconv.Itoa(r.ActiveChannels), f(r.ModelFraction*100, 1))
	}
	fmt.Print(tb.String())
	for _, n := range []int{2048, 4096, 8192} {
		avgs := experiments.Fig12Averages(rows, n)
		var bars []report.Bar
		for _, s := range optimize.Steps() {
			bars = append(bars, report.Bar{Label: s.String(), Value: avgs[s] * 100})
		}
		fmt.Println()
		fmt.Print(report.BarChart(fmt.Sprintf("Average model size at n = %d", n), "%", bars, 40))
	}
	if *csvDir != "" {
		return writeFile(*csvDir, "fig12.csv", tb.CSV())
	}
	return nil
}

func runAblate() error {
	fmt.Println("Ablations: sensitivity of the headline results to modeling choices")
	fmt.Println("===================================================================")

	depth, err := experiments.AblateDepthPolicy()
	if err != nil {
		return err
	}
	tb := report.NewTable("DNN depth-scaling policy → Fig. 10 MLP crossover average",
		"Policy", "Avg max channels")
	for _, r := range depth {
		tb.AddRow(r.Policy, f(r.AvgCrossover, 0))
	}
	fmt.Println()
	fmt.Print(tb.String())

	splits, err := experiments.AblateSensingSplit([]float64{0.3, 0.4, 0.5})
	if err != nil {
		return err
	}
	tb = report.NewTable("Sensing-area fraction → Fig. 5 crossing claim & Fig. 10 crossover",
		"Area fraction", "All SoCs cross", "MLP avg crossover")
	for _, r := range splits {
		tb.AddRow(f(r.AreaFrac, 1), fmt.Sprint(r.AllCross), f(r.MLPAvgCrossover, 0))
	}
	fmt.Println()
	fmt.Print(tb.String())

	losses, err := experiments.AblateQAMLoss([]float64{6, 8, 10})
	if err != nil {
		return err
	}
	tb = report.NewTable("QAM implementation loss → Fig. 7 annotations",
		"Loss [dB]", "Ch @15%", "Ch @20%", "Ch @100%")
	for _, r := range losses {
		tb.AddRow(f(r.ImplLossDB, 0), f(r.At15, 0), f(r.At20, 0), f(r.At100, 0))
	}
	fmt.Println()
	fmt.Print(tb.String())

	scheds, err := experiments.AblateScheduling([]int{128, 1024, 2048})
	if err != nil {
		return err
	}
	tb = report.NewTable("Scheduling discipline → MAC-unit lower bound",
		"Model", "Channels", "Non-pipelined", "Pipelined", "Best")
	for _, r := range scheds {
		best := "non-pipelined"
		if r.BestIsPipe {
			best = "pipelined"
		}
		tb.AddRow(r.Model, strconv.Itoa(r.Channels), strconv.Itoa(r.NonPipelined),
			strconv.Itoa(r.Pipelined), best)
	}
	fmt.Println()
	fmt.Print(tb.String())

	flux, err := experiments.AblateFluxSplit([]float64{0.3, 0.5, 0.7})
	if err != nil {
		return err
	}
	tb = report.NewTable("Thermal flux split → tissue rise at 40 mW/cm²",
		"Flux into brain", "Rise [°C]", "In 1–2 °C window")
	for _, r := range flux {
		tb.AddRow(f(r.FluxSplit, 1), f(r.RiseAtLimit, 2), fmt.Sprint(r.WithinPaperWindow))
	}
	fmt.Println()
	fmt.Print(tb.String())

	ac, err := experiments.AblateACRatio([]float64{0.2, 0.4, 0.6, 1.0})
	if err != nil {
		return err
	}
	tb = report.NewTable("SNN accumulate/MAC energy ratio → break-even input activity",
		"AC/MAC ratio", "Break-even activity")
	for _, r := range ac {
		tb.AddRow(f(r.ACOverMAC, 1), f(r.BreakEvenActivity, 2))
	}
	fmt.Println()
	fmt.Print(tb.String())
	return nil
}

func runExt() error {
	fmt.Println("Extension studies: Section 8's future considerations, quantified")
	fmt.Println("=================================================================")

	wptRows, err := experiments.ExtWPT(wpt.TypicalLink())
	if err != nil {
		return err
	}
	tb := report.NewTable("Wireless power transfer: budget after on-implant WPT losses",
		"SoC", "Budget [mW]", "Effective [mW]", "Still feasible", "Tx power [mW]")
	for _, r := range wptRows {
		tb.AddRow(strconv.Itoa(r.SoC), f(r.FullBudgetMW, 1), f(r.EffectiveBudgetMW, 1),
			fmt.Sprint(r.StillFeasible), f(r.TxPowerMW, 1))
	}
	fmt.Println()
	fmt.Print(tb.String())

	afeRows, err := experiments.ExtAFE([]float64{10, 5, 2})
	if err != nil {
		return err
	}
	tb = report.NewTable("Analog front end: density wall vs noise target (NEF model)",
		"Noise [µVrms]", "Per-channel [µW]", "Min safe pitch [µm]", "Meets 20 µm goal")
	for _, r := range afeRows {
		tb.AddRow(f(r.NoiseUVrms, 0), f(r.PerChannelUW, 2), f(r.MinSafePitchUM, 0),
			fmt.Sprint(r.Meets20UMGoal))
	}
	fmt.Println()
	fmt.Print(tb.String())

	stimRows, err := experiments.ExtStim([]int{16, 64, 256}, 100)
	if err != nil {
		return err
	}
	tb = report.NewTable("Closed-loop stimulation at 100 Hz (typical pulse, 20 mm² implant)",
		"Electrodes", "Power [µW]", "Shannon safe", "Budget share [%]")
	for _, r := range stimRows {
		tb.AddRow(strconv.Itoa(r.Electrodes), f(r.PowerUW, 0),
			fmt.Sprint(r.ShannonSafe), f(r.BudgetSharePct, 1))
	}
	fmt.Println()
	fmt.Print(tb.String())
	return nil
}

func runValidate() error {
	// Cross-checks that tie the analytical framework to the substrates.
	fmt.Println("MINDFUL self-checks")
	fmt.Println("===================")
	m := thermal.DefaultModel()
	p, err := m.SteadyState(thermal.SafeDensity)
	if err != nil {
		return err
	}
	fmt.Printf("Pennes bio-heat: tissue rise at 40 mW/cm² = %.2f °C (paper limit: 1–2 °C)\n", p.SurfaceRise())
	maxFlux, err := m.MaxSafeFlux(thermal.MaxTempRise)
	if err != nil {
		return err
	}
	fmt.Printf("Pennes bio-heat: flux for a 2 °C rise = %.1f mW/cm² (paper constant: 40)\n", maxFlux.MWPerCM2())
	budget := thermal.Budget(units.SquareMillimetres(144))
	fmt.Printf("Power budget for a 144 mm² implant = %.1f mW\n", budget.Milliwatts())
	// The uniform-dissipation argument, checked in 2-D.
	m2 := thermal.DefaultModel2D()
	nodes := m2.FootprintWidthNodes()
	uniform, err := m2.SteadyState(thermal.UniformFlux(thermal.SafeDensity, nodes))
	if err != nil {
		return err
	}
	hot, err := m2.SteadyState(thermal.HotspotFlux(thermal.SafeDensity, nodes, 0.1))
	if err != nil {
		return err
	}
	bare := m2
	bare.SpreaderConductivity = 0
	hotBare, err := bare.SteadyState(thermal.HotspotFlux(thermal.SafeDensity, nodes, 0.1))
	if err != nil {
		return err
	}
	fmt.Printf("2-D tissue peak at 40 mW/cm²: uniform %.2f °C; 10%%-stripe hotspot %.2f °C bare, %.2f °C behind 25 µm silicon\n",
		uniform.SurfacePeak(), hotBare.SurfacePeak(), hot.SurfacePeak())
	fmt.Println("All Table 1 designs scaled to 1024 channels sit within the budget:")
	for _, r := range experiments.Fig4()[:11] {
		fmt.Printf("  SoC %-2d %-18s %7.2f mW / %7.2f mW budget (%.1f mW/cm²)\n",
			r.SoC, r.Name, r.PowerMW, r.BudgetMW, r.DensityMW)
	}
	return nil
}
