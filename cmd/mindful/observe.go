package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"mindful/internal/comm"
	"mindful/internal/dnnmodel"
	"mindful/internal/implant"
	"mindful/internal/mac"
	"mindful/internal/obs"
	"mindful/internal/report"
	"mindful/internal/sched"
	"mindful/internal/thermal"
	"mindful/internal/wearable"
)

// Observability flags, honored by every subcommand: any run can snapshot
// the process-wide registry and trace at exit, and -debug-addr serves them
// live alongside net/http/pprof.
var (
	metricsPath = flag.String("metrics", "", "write a Prometheus-text metrics snapshot to this file at exit")
	tracePath   = flag.String("trace", "", "write the span trace as JSON lines to this file at exit")
	eventsPath  = flag.String("events", "", "write the flight-recorder event log as JSON lines to this file at exit")
	debugAddr   = flag.String("debug-addr", "", "serve /metrics, /trace, expvar and pprof on this address while running")
)

// observer is the process-wide sink behind the observability flags.
var observer = obs.New()

// startDebug starts the -debug-addr listener if requested; the returned
// stop function is safe to call either way.
func startDebug() (func() error, error) {
	if *debugAddr == "" {
		return func() error { return nil }, nil
	}
	bound, stop, err := obs.ServeDebug(*debugAddr, observer)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "debug listener on http://%s/metrics\n", bound)
	return stop, nil
}

// writeObsOutputs flushes the -metrics, -trace and -events files.
func writeObsOutputs() error {
	if *metricsPath != "" {
		f, err := os.Create(*metricsPath)
		if err != nil {
			return err
		}
		if err := observer.Metrics.WritePrometheus(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *metricsPath)
	}
	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			return err
		}
		if err := observer.Tracer.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *tracePath)
	}
	if *eventsPath != "" {
		f, err := os.Create(*eventsPath)
		if err != nil {
			return err
		}
		if err := observer.Events.WriteJSONL(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *eventsPath)
	}
	return nil
}

// runObserve drives every obs-wired subsystem into one registry: the
// default implant streams frames through an instrumented QAM modem and an
// AWGN channel into the wearable receiver, then the thermal solver checks
// the safety limit and the scheduler prices the matching DNN — so the
// snapshot spans the implant, the link, and both solvers.
func runObserve() error {
	const ticks = 2000
	cfg := implant.DefaultConfig()
	im, err := implant.New(cfg)
	if err != nil {
		return err
	}
	im.SetObserver(observer)

	modem, err := comm.NewModem(comm.NewQAM(4))
	if err != nil {
		return err
	}
	om := comm.ObserveModem(modem, observer)
	// 13 dB Eb/N0 sits on the 16-QAM waterfall: most frames survive, a
	// visible fraction carries bit errors the receiver's CRC rejects.
	ch := comm.NewAWGNChannel(math.Pow(10, 13.0/10), 1)

	rx, err := wearable.NewReceiver(0)
	if err != nil {
		return err
	}
	rx.SetObserver(observer)

	var rejected int64
	im.OnFrame(func(buf []byte) {
		sent := bytesToBits(buf)
		syms, merr := om.Modulate(sent)
		if merr != nil {
			err = merr
			return
		}
		got := om.Demodulate(ch.Transmit(syms))
		om.CountErrors(sent, got)
		if _, rerr := rx.Receive(bitsToBytes(got)); rerr != nil {
			rejected++
		}
	})
	if rerr := im.Run(ticks); rerr != nil {
		return rerr
	}
	if err != nil {
		return err
	}

	// Thermal: a steady-state solve at the 40 mW/cm² safety limit records
	// solver timing and the max tissue-temperature rise.
	tm := thermal.DefaultModel()
	tm.Obs = observer
	profile, err := tm.SteadyState(thermal.SafeDensity)
	if err != nil {
		return err
	}

	// Scheduling: one lower-bound solve for the matching MLP workload.
	// (main wires sched's package-level observer; do it here too so the
	// runner works standalone, e.g. under test.)
	sched.SetObserver(observer)
	model, err := dnnmodel.MLP().Scale(cfg.Neural.Channels)
	if err != nil {
		return err
	}
	bound, err := sched.Best(model, sched.DeadlineFor(cfg.Neural.SampleRate), mac.NanGate45)
	if err != nil {
		return err
	}

	st := im.Stats()
	rs := rx.Stats()
	tb := report.NewTable("Observability: instrumented end-to-end run",
		"Stage", "Result")
	tb.AddRow("implant", fmt.Sprintf("%d ticks, %d frames, %d bits", st.Ticks, st.Frames, st.BitsSent))
	tb.AddRow("modem", fmt.Sprintf("%s over AWGN, %d frames rejected downstream", modem.Name(), rejected))
	tb.AddRow("wearable", fmt.Sprintf("%d accepted, %d corrupt, %d lost (FER %.4f)",
		rs.Accepted, rs.Corrupted, rs.LostSeq, rs.FrameErrorRate()))
	tb.AddRow("thermal", fmt.Sprintf("rise %.2f °C at the 40 mW/cm² limit", profile.SurfaceRise()))
	tb.AddRow("sched", fmt.Sprintf("%d MAC units lower bound (%s)", bound.MACHW, model.Name))
	fmt.Print(tb.String())
	fmt.Println()
	fmt.Printf("Registry holds the snapshot; rerun with -metrics/-trace to export it,\n")
	fmt.Printf("or -debug-addr to serve /metrics, /trace and pprof live.\n")
	return nil
}

// bytesToBits unpacks bytes MSB-first into the modem's 0/1-per-element
// bit representation.
func bytesToBits(buf []byte) []byte {
	bits := make([]byte, 0, len(buf)*8)
	for _, b := range buf {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (b>>i)&1)
		}
	}
	return bits
}

// bitsToBytes packs 0/1 elements back into bytes MSB-first.
func bitsToBytes(bits []byte) []byte {
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b != 0 {
			out[i/8] |= 1 << (7 - i%8)
		}
	}
	return out
}
