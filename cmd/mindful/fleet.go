package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"mindful/internal/comm"
	"mindful/internal/drift"
	"mindful/internal/fault"
	"mindful/internal/fleet"
	"mindful/internal/obs"
	"mindful/internal/report"
	"mindful/internal/units"
	"mindful/internal/wearable"
)

// fleetFlags registers the pipeline-configuration flags shared by the
// fleet and profile subcommands on fs, returning a builder that resolves
// them into a fleet.Config once fs has parsed.
func fleetFlags(fs *flag.FlagSet) func() (fleet.Config, error) {
	n := fs.Int("n", 64, "number of implants")
	workers := fs.Int("workers", 4, "worker goroutines")
	batch := fs.Int("batch", 0, "implants per worker stepped in tick lockstep through the slab kernels (0 or 1 = scalar)")
	ticks := fs.Int("ticks", 128, "frames per implant")
	channels := fs.Int("channels", 32, "channels per implant")
	qam := fs.Int("qam", 4, "QAM bits per symbol (0 = OOK)")
	ebn0 := fs.Float64("ebn0", 12, "AWGN operating point Eb/N0 [dB]")
	seed := fs.Int64("seed", 1, "base seed for the sharded RNG streams")
	faults := fs.Float64("faults", 0, "fault intensity: default profile scaled by this factor (0 = off)")
	arqRetries := fs.Int("arq", 0, "ARQ retransmission budget per frame (0 = off)")
	fecDepth := fs.Int("fec", 0, "Hamming(7,4) FEC interleaver depth (0 = off)")
	conceal := fs.String("conceal", "none", "gap concealment: none, hold or interp")
	decoder := fs.String("decoder", "none", "kinematics decoder: none, kalman, wiener, dnn or fixed")
	decodeBin := fs.Int("decode-bin", 0, "frames per decoder observation bin (0 = default)")
	driftI := fs.Float64("drift", 0, "nonstationarity intensity: default sweep profile scaled by this factor (0 = off)")
	driftEpoch := fs.Int("drift-epoch", 0, "drift epoch length in ticks (0 = profile default)")
	calibrate := fs.Bool("calibrate", false, "fit the day-0 decoder from the implant's own simulated cortex")
	track := fs.Bool("track", false, "attach the instability meter and decode-error scoring")
	adapt := fs.Bool("adapt", false, "closed-loop decoder recalibration (implies -track)")
	refitEvery := fs.Int("refit-every", 0, "bins between recalibrations (0 = default)")
	refitBuffer := fs.Int("refit-buffer", 0, "supervision ring capacity in bins (0 = default)")
	refitBlend := fs.Float64("refit-blend", 0, "refit blending weight toward the new fit (0 = default)")
	return func() (fleet.Config, error) {
		cfg := fleet.DefaultConfig()
		cfg.Implants = *n
		cfg.Workers = *workers
		cfg.Batch = *batch
		cfg.Ticks = *ticks
		cfg.Channels = *channels
		cfg.SampleRate = units.Kilohertz(2)
		if *qam == 0 {
			cfg.Modulation = comm.OOK{}
		} else {
			cfg.Modulation = comm.NewQAM(*qam)
		}
		cfg.EbN0dB = *ebn0
		cfg.Seed = *seed
		cfg.Observer = observer
		if *arqRetries > 0 {
			cfg.ARQ = comm.ARQConfig{MaxRetries: *arqRetries}
		}
		cfg.FECDepth = *fecDepth
		switch *conceal {
		case "none":
			cfg.Concealment = wearable.ConcealNone
		case "hold":
			cfg.Concealment = wearable.ConcealHold
		case "interp":
			cfg.Concealment = wearable.ConcealInterp
		default:
			return cfg, fmt.Errorf("unknown concealment %q (none, hold or interp)", *conceal)
		}
		if *faults > 0 {
			p := fault.DefaultProfile().Scale(*faults)
			cfg.Faults = &p
		}
		if *driftI > 0 {
			base := fleet.DefaultSweepProfile()
			if *driftEpoch > 0 {
				base.EpochTicks = *driftEpoch
			}
			p := base.Scale(*driftI)
			cfg.Drift = &p
		}
		kind, err := fleet.ParseDecoderKind(*decoder)
		if err != nil {
			return cfg, fmt.Errorf("%w: %v", errUsage, err)
		}
		cfg.Decode = fleet.DecodeConfig{
			Kind:        kind,
			BinTicks:    *decodeBin,
			Calibrate:   *calibrate,
			Track:       *track || *adapt,
			Adapt:       *adapt,
			RefitEvery:  *refitEvery,
			RefitBuffer: *refitBuffer,
			RefitBlend:  *refitBlend,
		}
		return cfg, nil
	}
}

// runFleet executes the parallel fleet simulator:
//
//	mindful fleet [-n N] [-workers K] [-batch B] [-ticks T] [-channels C]
//	              [-qam B] [-ebn0 DB] [-seed S] [-scaling FILE]
//	              [-batch-sweep FILE]
//	              [-faults I] [-arq N] [-fec D] [-conceal MODE]
//	              [-decoder NAME] [-decode-bin T] [-fault-sweep FILE]
//	              [-drift I] [-drift-epoch T] [-calibrate] [-track] [-adapt]
//	              [-refit-every N] [-refit-buffer N] [-refit-blend W]
//	              [-drift-sweep FILE]
//
// -batch B steps each worker's shard in groups of B implants in tick
// lockstep through the slab kernels — bit-identical output, higher
// single-core throughput. With -scaling FILE it additionally measures
// the 1/2/4/8-worker throughput curve on the same configuration and
// writes it as JSON (the BENCH_fleet.json schema); -batch-sweep FILE
// measures the single-worker B ∈ {1,4,16,64} curve instead. -faults I injects the default fault
// profile scaled to intensity I; -arq/-fec/-conceal enable the recovery
// stack. -decoder attaches a kinematics decoder (kalman, wiener, dnn or
// fixed) to every implant's wearable, binning received samples every
// -decode-bin frames. -fault-sweep FILE runs the degradation sweep over
// the default intensity grid and writes the curve as JSON (the
// BENCH_fault.json schema). -stage-timing attaches the per-stage flight
// recorder and prints the ns/frame attribution table after the run.
//
// -drift I attaches the default nonstationarity profile scaled to
// intensity I (-drift-epoch overrides its epoch length); -calibrate
// fits the day-0 decoder from the implant's own simulated cortex;
// -track scores decode error and instability; -adapt closes the loop
// with periodic recalibration tuned by -refit-every/-buffer/-blend.
// -drift-sweep FILE runs the frozen-versus-adaptive degradation sweep
// and writes the curve as JSON (the BENCH_drift.json schema).
func runFleet() error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	build := fleetFlags(fs)
	scaling := fs.String("scaling", "", "measure the 1/2/4/8-worker scaling curve and write it to FILE")
	batchSweep := fs.String("batch-sweep", "", "measure the single-worker batch-size curve and write it to FILE")
	faultSweep := fs.String("fault-sweep", "", "run the degradation sweep and write the curve to FILE")
	driftSweep := fs.String("drift-sweep", "", "run the frozen-vs-adaptive drift sweep and write the curve to FILE")
	stageTiming := fs.Bool("stage-timing", false, "attach the per-stage flight recorder and print the ns/frame table")
	if err := fs.Parse(flag.Args()[1:]); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	cfg, err := build()
	if err != nil {
		return err
	}
	if *stageTiming {
		cfg.StageTiming = obs.NewStageTimer()
	}

	if *faultSweep != "" {
		return runFaultSweep(cfg, *faultSweep)
	}
	if *driftSweep != "" {
		return runDriftSweep(cfg, *driftSweep)
	}

	agg, err := fleet.Run(cfg)
	if err != nil {
		return err
	}

	tb := report.NewTable(fmt.Sprintf("Fleet: %d implants × %d ticks over %d workers (%s @ %g dB)",
		agg.Implants, agg.Ticks, agg.Workers, cfg.Modulation.Name(), cfg.EbN0dB),
		"Shard", "Implants", "Frames", "Accepted", "Corrupt", "Bit errors")
	type shardAcc struct{ implants, frames, accepted, corrupt, bitErrs int64 }
	shards := make([]shardAcc, agg.Workers)
	for _, r := range agg.PerImplant {
		s := &shards[r.Worker]
		s.implants++
		s.frames += r.Frames
		s.accepted += r.Accepted
		s.corrupt += r.Corrupt
		s.bitErrs += r.BitErrors
	}
	for w, s := range shards {
		tb.AddRow(strconv.Itoa(w), strconv.FormatInt(s.implants, 10),
			strconv.FormatInt(s.frames, 10), strconv.FormatInt(s.accepted, 10),
			strconv.FormatInt(s.corrupt, 10), strconv.FormatInt(s.bitErrs, 10))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nBER %.3g  FER %.3g  lost-seq %d  digest %#016x\n",
		agg.BER, agg.FER, agg.LostSeq, agg.Digest)
	if cfg.Faults != nil || cfg.ARQ.Enabled() || cfg.FECDepth > 0 || cfg.Concealment != wearable.ConcealNone {
		fmt.Printf("delivery %.4f  concealed %.4f  effective-BER %.3g\n",
			agg.DeliveryRate(), agg.ConcealedFraction(), agg.EffectiveBER())
		fmt.Printf("blanked %d  link-dropped %d  retransmits %d  recovered %d  arq-failed %d  fec-fixed %d  stale %d\n",
			agg.Blanked, agg.LinkDropped, agg.Retransmits, agg.Recovered, agg.ARQFailed, agg.FECCorrected, agg.Stale)
	}
	if cfg.Decode.Enabled() {
		fmt.Printf("decoder %s: %d steps  %d concealed bins  %d MACs  decode-digest %#016x\n",
			cfg.Decode.Kind, agg.DecodedSteps, agg.DecodeConcealedBins, agg.DecodeMACs, agg.DecodeDigest)
	}
	fmt.Printf("%.0f frames/s over %s (GOMAXPROCS %d)\n",
		agg.FramesPerSecond, agg.Elapsed.Round(time.Microsecond), runtime.GOMAXPROCS(0))
	if cfg.StageTiming != nil {
		fmt.Println()
		fmt.Print(stageTable("Stage timing: attributed ns/frame", cfg.StageTiming.Stats()).String())
	}
	if *csvDir != "" {
		if err := writeFile(*csvDir, "fleet.csv", tb.CSV()); err != nil {
			return err
		}
	}

	if *scaling != "" {
		points, err := fleet.MeasureScaling(cfg, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		curve := struct {
			Benchmark  string               `json:"benchmark"`
			Implants   int                  `json:"implants"`
			Ticks      int                  `json:"ticks"`
			Channels   int                  `json:"channels"`
			Batch      int                  `json:"batch"`
			GOMAXPROCS int                  `json:"gomaxprocs"`
			NumCPU     int                  `json:"num_cpu"`
			Points     []fleet.ScalingPoint `json:"points"`
		}{"fleet_worker_scaling", cfg.Implants, cfg.Ticks, cfg.Channels,
			cfg.Batch, runtime.GOMAXPROCS(0), runtime.NumCPU(), points}
		out, err := json.MarshalIndent(curve, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*scaling, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *scaling)
		for _, p := range points {
			fmt.Printf("workers=%d: %.0f frames/s (%.2fx)\n", p.Workers, p.FramesPerSecond, p.Speedup)
		}
	}

	if *batchSweep != "" {
		points, err := fleet.MeasureBatchSweep(cfg, []int{1, 4, 16, 64})
		if err != nil {
			return err
		}
		curve := struct {
			Benchmark string             `json:"benchmark"`
			Implants  int                `json:"implants"`
			Ticks     int                `json:"ticks"`
			Channels  int                `json:"channels"`
			Points    []fleet.BatchPoint `json:"batch_points"`
		}{"fleet_batch_scaling", cfg.Implants, cfg.Ticks, cfg.Channels, points}
		out, err := json.MarshalIndent(curve, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*batchSweep, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *batchSweep)
		for _, p := range points {
			fmt.Printf("batch=%d: %.0f frames/s (%.2fx)\n", p.Batch, p.FramesPerSecond, p.Speedup)
		}
	}
	return nil
}

// runFaultSweep executes the degradation sweep over the default intensity
// grid and writes the curve as JSON (the BENCH_fault.json schema). The
// config's ARQ/FEC/concealment settings apply to every point, so the
// intensity-0 point measures the recovery stack's fault-free overhead.
func runFaultSweep(cfg fleet.Config, path string) error {
	sw, err := fleet.RunFaultSweep(cfg, fault.DefaultProfile(), nil)
	if err != nil {
		return err
	}

	tb := report.NewTable(fmt.Sprintf("Fault sweep: %d implants × %d ticks (arq %d, fec %d, conceal %s)",
		cfg.Implants, cfg.Ticks, cfg.ARQ.MaxRetries, cfg.FECDepth, concealName(cfg.Concealment)),
		"Intensity", "Delivery", "Concealed", "Eff. BER", "Dropped", "Retransmits", "Recovered", "FEC fixed")
	for _, p := range sw.Points {
		tb.AddRow(fmt.Sprintf("%.2f", p.Intensity), fmt.Sprintf("%.4f", p.DeliveryRate),
			fmt.Sprintf("%.4f", p.ConcealedFraction), fmt.Sprintf("%.3g", p.EffectiveBER),
			strconv.FormatInt(p.LinkDropped, 10), strconv.FormatInt(p.Retransmits, 10),
			strconv.FormatInt(p.Recovered, 10), strconv.FormatInt(p.FECCorrected, 10))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nsweep digest %#016x\n", sw.Digest)

	type pointJSON struct {
		Intensity         float64 `json:"intensity"`
		DeliveryRate      float64 `json:"delivery_rate"`
		ConcealedFraction float64 `json:"concealed_fraction"`
		EffectiveBER      float64 `json:"effective_ber"`
		FER               float64 `json:"fer"`
		Accepted          int64   `json:"accepted"`
		Corrupt           int64   `json:"corrupt"`
		Blanked           int64   `json:"blanked"`
		LinkDropped       int64   `json:"link_dropped"`
		Retransmits       int64   `json:"retransmits"`
		Recovered         int64   `json:"recovered"`
		FECCorrected      int64   `json:"fec_corrected"`
		Concealed         int64   `json:"concealed"`
		Digest            string  `json:"digest"`
	}
	curve := struct {
		Benchmark   string      `json:"benchmark"`
		Implants    int         `json:"implants"`
		Ticks       int         `json:"ticks"`
		Channels    int         `json:"channels"`
		ARQRetries  int         `json:"arq_retries"`
		FECDepth    int         `json:"fec_depth"`
		Concealment string      `json:"concealment"`
		Seed        int64       `json:"seed"`
		SweepDigest string      `json:"sweep_digest"`
		Points      []pointJSON `json:"points"`
	}{"fleet_fault_sweep", cfg.Implants, cfg.Ticks, cfg.Channels,
		cfg.ARQ.MaxRetries, cfg.FECDepth, concealName(cfg.Concealment), cfg.Seed,
		strconv.FormatUint(sw.Digest, 10), nil}
	for _, p := range sw.Points {
		curve.Points = append(curve.Points, pointJSON{
			Intensity: p.Intensity, DeliveryRate: p.DeliveryRate,
			ConcealedFraction: p.ConcealedFraction, EffectiveBER: p.EffectiveBER,
			FER: p.FER, Accepted: p.Accepted, Corrupt: p.Corrupt,
			Blanked: p.Blanked, LinkDropped: p.LinkDropped,
			Retransmits: p.Retransmits, Recovered: p.Recovered,
			FECCorrected: p.FECCorrected, Concealed: p.Concealed,
			Digest: strconv.FormatUint(p.Digest, 10),
		})
	}
	out, err := json.MarshalIndent(curve, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// runDriftSweep executes the frozen-versus-adaptive nonstationarity
// sweep over the default intensity grid and writes the curve as JSON
// (the BENCH_drift.json schema). The config's decoder and refit knobs
// apply to every point; its own -drift flag is ignored (the sweep scales
// the default sweep profile itself).
func runDriftSweep(cfg fleet.Config, path string) error {
	cfg.Drift = nil
	sw, err := fleet.RunDriftSweep(cfg, fleet.DefaultSweepProfile(), nil)
	if err != nil {
		return err
	}

	dc := cfg.Decode
	tb := report.NewTable(fmt.Sprintf("Drift sweep: %d implants × %d ticks (decoder %s, bin %d)",
		cfg.Implants, cfg.Ticks, dc.Kind, dc.BinTicks),
		"Intensity", "Frozen RMSE", "Adaptive RMSE", "Refits", "Turnovers", "Units lost", "KL")
	for _, p := range sw.Points {
		tb.AddRow(fmt.Sprintf("%.2f", p.Intensity), fmt.Sprintf("%.4f", p.FrozenRMSE),
			fmt.Sprintf("%.4f", p.AdaptiveRMSE), strconv.FormatInt(p.Refits, 10),
			strconv.FormatInt(p.DriftTurnovers, 10), strconv.FormatInt(p.DriftUnitsLost, 10),
			fmt.Sprintf("%.3f", p.FrozenKL))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nsweep digest %#016x\n", sw.Digest)

	type pointJSON struct {
		Intensity      float64 `json:"intensity"`
		FrozenRMSE     float64 `json:"frozen_rmse"`
		AdaptiveRMSE   float64 `json:"adaptive_rmse"`
		FrozenKL       float64 `json:"frozen_kl"`
		AdaptiveKL     float64 `json:"adaptive_kl"`
		Refits         int64   `json:"refits"`
		DriftEpochs    int64   `json:"drift_epochs"`
		DriftTurnovers int64   `json:"drift_turnovers"`
		DriftUnitsLost int64   `json:"drift_units_lost"`
		FrameDigest    string  `json:"frame_digest"`
	}
	curve := struct {
		Benchmark   string        `json:"benchmark"`
		Implants    int           `json:"implants"`
		Ticks       int           `json:"ticks"`
		Channels    int           `json:"channels"`
		Decoder     string        `json:"decoder"`
		DecodeBin   int           `json:"decode_bin"`
		RefitEvery  int           `json:"refit_every"`
		RefitBuffer int           `json:"refit_buffer"`
		RefitBlend  float64       `json:"refit_blend"`
		Profile     drift.Profile `json:"profile"`
		Seed        int64         `json:"seed"`
		SweepDigest string        `json:"sweep_digest"`
		Points      []pointJSON   `json:"points"`
	}{"fleet_drift_sweep", cfg.Implants, cfg.Ticks, cfg.Channels,
		dc.Kind.String(), dc.BinTicks, dc.RefitEvery, dc.RefitBuffer, dc.RefitBlend,
		sw.Profile, cfg.Seed, strconv.FormatUint(sw.Digest, 10), nil}
	for _, p := range sw.Points {
		curve.Points = append(curve.Points, pointJSON{
			Intensity: p.Intensity, FrozenRMSE: p.FrozenRMSE,
			AdaptiveRMSE: p.AdaptiveRMSE, FrozenKL: p.FrozenKL,
			AdaptiveKL: p.AdaptiveKL, Refits: p.Refits,
			DriftEpochs: p.DriftEpochs, DriftTurnovers: p.DriftTurnovers,
			DriftUnitsLost: p.DriftUnitsLost,
			FrameDigest:    strconv.FormatUint(p.FrameDigest, 10),
		})
	}
	out, err := json.MarshalIndent(curve, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
	return nil
}

// stageTable renders a per-stage timing breakdown as a report table.
func stageTable(title string, stages []obs.StageStats) *report.Table {
	tb := report.NewTable(title,
		"Stage", "Steps", "Mean [ns]", "EWMA [ns]", "p50 [ns]", "p99 [ns]", "Total [ms]")
	for _, s := range stages {
		tb.AddRow(s.Stage, strconv.FormatInt(s.Count, 10),
			f(s.MeanNs, 0), f(s.EWMANs, 0), f(s.P50Ns, 0), f(s.P99Ns, 0),
			f(float64(s.TotalNs)/1e6, 2))
	}
	return tb
}

// concealName names a concealment mode for reports.
func concealName(c wearable.Concealment) string {
	switch c {
	case wearable.ConcealHold:
		return "hold"
	case wearable.ConcealInterp:
		return "interp"
	default:
		return "none"
	}
}
