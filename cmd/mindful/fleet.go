package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"time"

	"mindful/internal/comm"
	"mindful/internal/fleet"
	"mindful/internal/report"
	"mindful/internal/units"
)

// runFleet executes the parallel fleet simulator:
//
//	mindful fleet [-n N] [-workers K] [-ticks T] [-channels C] [-qam B]
//	              [-ebn0 DB] [-seed S] [-scaling FILE]
//
// With -scaling FILE it additionally measures the 1/2/4/8-worker
// throughput curve on the same configuration and writes it as JSON
// (the BENCH_fleet.json schema).
func runFleet() error {
	fs := flag.NewFlagSet("fleet", flag.ContinueOnError)
	n := fs.Int("n", 64, "number of implants")
	workers := fs.Int("workers", 4, "worker goroutines")
	ticks := fs.Int("ticks", 128, "frames per implant")
	channels := fs.Int("channels", 32, "channels per implant")
	qam := fs.Int("qam", 4, "QAM bits per symbol (0 = OOK)")
	ebn0 := fs.Float64("ebn0", 12, "AWGN operating point Eb/N0 [dB]")
	seed := fs.Int64("seed", 1, "base seed for the sharded RNG streams")
	scaling := fs.String("scaling", "", "measure the 1/2/4/8-worker scaling curve and write it to FILE")
	if err := fs.Parse(flag.Args()[1:]); err != nil {
		return err
	}

	cfg := fleet.DefaultConfig()
	cfg.Implants = *n
	cfg.Workers = *workers
	cfg.Ticks = *ticks
	cfg.Channels = *channels
	cfg.SampleRate = units.Kilohertz(2)
	if *qam == 0 {
		cfg.Modulation = comm.OOK{}
	} else {
		cfg.Modulation = comm.NewQAM(*qam)
	}
	cfg.EbN0dB = *ebn0
	cfg.Seed = *seed
	cfg.Observer = observer

	agg, err := fleet.Run(cfg)
	if err != nil {
		return err
	}

	tb := report.NewTable(fmt.Sprintf("Fleet: %d implants × %d ticks over %d workers (%s @ %g dB)",
		agg.Implants, agg.Ticks, agg.Workers, cfg.Modulation.Name(), cfg.EbN0dB),
		"Shard", "Implants", "Frames", "Accepted", "Corrupt", "Bit errors")
	type shardAcc struct{ implants, frames, accepted, corrupt, bitErrs int64 }
	shards := make([]shardAcc, agg.Workers)
	for _, r := range agg.PerImplant {
		s := &shards[r.Worker]
		s.implants++
		s.frames += r.Frames
		s.accepted += r.Accepted
		s.corrupt += r.Corrupt
		s.bitErrs += r.BitErrors
	}
	for w, s := range shards {
		tb.AddRow(strconv.Itoa(w), strconv.FormatInt(s.implants, 10),
			strconv.FormatInt(s.frames, 10), strconv.FormatInt(s.accepted, 10),
			strconv.FormatInt(s.corrupt, 10), strconv.FormatInt(s.bitErrs, 10))
	}
	fmt.Print(tb.String())
	fmt.Printf("\nBER %.3g  FER %.3g  lost-seq %d  digest %#016x\n",
		agg.BER, agg.FER, agg.LostSeq, agg.Digest)
	fmt.Printf("%.0f frames/s over %s (GOMAXPROCS %d)\n",
		agg.FramesPerSecond, agg.Elapsed.Round(time.Microsecond), runtime.GOMAXPROCS(0))
	if *csvDir != "" {
		if err := writeFile(*csvDir, "fleet.csv", tb.CSV()); err != nil {
			return err
		}
	}

	if *scaling != "" {
		points, err := fleet.MeasureScaling(cfg, []int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		curve := struct {
			Benchmark  string               `json:"benchmark"`
			Implants   int                  `json:"implants"`
			Ticks      int                  `json:"ticks"`
			Channels   int                  `json:"channels"`
			GOMAXPROCS int                  `json:"gomaxprocs"`
			NumCPU     int                  `json:"num_cpu"`
			Points     []fleet.ScalingPoint `json:"points"`
		}{"fleet_worker_scaling", cfg.Implants, cfg.Ticks, cfg.Channels,
			runtime.GOMAXPROCS(0), runtime.NumCPU(), points}
		out, err := json.MarshalIndent(curve, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*scaling, append(out, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *scaling)
		for _, p := range points {
			fmt.Printf("workers=%d: %.0f frames/s (%.2fx)\n", p.Workers, p.FramesPerSecond, p.Speedup)
		}
	}
	return nil
}
