package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"mindful/internal/fleet"
)

// runProfile runs one fleet configuration with the stage flight recorder
// attached and writes the per-stage ns/frame breakdown as JSON (the
// BENCH_stage.json schema):
//
//	mindful profile [-n N] [-workers K] [-batch B] [-ticks T] [-channels C]
//	                [-qam B] [-ebn0 DB] [-seed S] [-faults I] [-arq N]
//	                [-fec D] [-conceal MODE] [-decoder NAME] [-decode-bin T]
//	                [-out FILE]
//
// The timing decorator is digest-neutral, so the reported digest matches
// an untimed `mindful fleet` run of the same configuration. With
// -batch B the batched columns are timed as units and the elapsed time
// spread over the implants stepped, so ns/frame stays comparable with
// the scalar attribution.
func runProfile() error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	build := fleetFlags(fs)
	out := fs.String("out", "BENCH_stage.json", "write the stage profile as JSON to FILE (empty = table only)")
	if err := fs.Parse(flag.Args()[1:]); err != nil {
		return fmt.Errorf("%w: %v", errUsage, err)
	}
	cfg, err := build()
	if err != nil {
		return err
	}

	prof, agg, err := fleet.RunProfile(cfg)
	if err != nil {
		return err
	}

	title := fmt.Sprintf("Stage profile: %d implants × %d ticks over %d workers", prof.Implants, prof.Ticks, prof.Workers)
	if prof.Batch > 1 {
		title += fmt.Sprintf(" (batch %d)", prof.Batch)
	}
	tb := stageTable(title, prof.Stages)
	fmt.Print(tb.String())
	fmt.Printf("\ndigest %s  %.0f frames/s over %s\n",
		prof.Digest, agg.FramesPerSecond, agg.Elapsed.Round(time.Microsecond))

	if *out != "" {
		fh, err := os.Create(*out)
		if err != nil {
			return err
		}
		if err := prof.WriteJSON(fh); err != nil {
			fh.Close()
			return err
		}
		if err := fh.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *out)
	}
	if *csvDir != "" {
		return writeFile(*csvDir, "profile.csv", tb.CSV())
	}
	return nil
}
