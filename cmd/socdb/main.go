// Command socdb queries the Table 1 design database: list the designs,
// inspect one, or scale it to an arbitrary channel count under the
// Section 4 rules.
//
// Usage:
//
//	socdb list
//	socdb show <num>
//	socdb scale <num> [-n CHANNELS]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"mindful"
)

func main() {
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "list":
		list()
	case "show":
		d := mustDesign(args)
		show(d)
	case "scale":
		d := mustDesign(args)
		n := 4096
		if len(args) > 2 {
			v, err := strconv.Atoi(args[2])
			if err != nil || v < 1 {
				fail("scale: bad channel count %q", args[2])
			}
			n = v
		}
		scale(d, n)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: socdb <list | show NUM | scale NUM [CHANNELS]>")
	os.Exit(2)
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "socdb: "+format+"\n", args...)
	os.Exit(1)
}

func mustDesign(args []string) mindful.Design {
	if len(args) < 2 {
		usage()
	}
	num, err := strconv.Atoi(args[1])
	if err != nil {
		fail("bad design number %q", args[1])
	}
	d, ok := mindful.DesignByNum(num)
	if !ok {
		fail("no SoC %d in Table 1 (valid: 1–11)", num)
	}
	return d
}

func list() {
	fmt.Printf("%-3s %-18s %-11s %6s %10s %12s %8s %s\n",
		"#", "Name", "NI", "Ch", "Area", "Density", "f", "Wireless")
	for _, d := range mindful.Table1() {
		fmt.Printf("%-3d %-18s %-11s %6d %10s %12s %8s %v\n",
			d.Num, d.Name, d.NI, d.Channels, d.Area, d.Density, d.SampleRate, d.Wireless)
	}
}

func show(d mindful.Design) {
	fmt.Println(d)
	fmt.Printf("  NI type:        %s\n", d.NI)
	fmt.Printf("  reported:       %v over %v at %v, f = %v\n", d.Power(), d.Area, d.Density, d.SampleRate)
	fmt.Printf("  wireless:       %v\n", d.Wireless)
	b := d.Baseline()
	fmt.Printf("  at 1024 ch:     %v over %v (%v)\n", b.At1024.Power, b.At1024.Area, b.At1024.Density())
	fmt.Printf("  sensing split:  %v / %v\n", b.SensingPower, b.SensingArea)
	fmt.Printf("  radio energy:   %v per bit (implied)\n", b.EnergyPerBit())
	fmt.Printf("  safety:         %v\n", mindful.CheckSafety(b.At1024.Power, b.At1024.Area))
}

func scale(d mindful.Design, n int) {
	b := d.Baseline()
	fmt.Printf("%s projected to %d channels\n", d, n)
	naive := b.Naive(n)
	hm := b.HighMargin(n)
	fmt.Printf("  naive:       %v over %v → %.0f%% of budget\n",
		naive.Power, naive.Area, 100*naive.Power.Watts()/naive.Budget().Watts())
	fmt.Printf("  high-margin: %v over %v → %.0f%% of budget\n",
		hm.Power, hm.Area, 100*hm.Power.Watts()/hm.Budget().Watts())
	fmt.Printf("  sensing fraction: naive %.2f, high-margin %.2f\n",
		b.SensingFractionNaive(n), b.SensingFractionHighMargin(n))
	fmt.Printf("  raw data rate: %v\n", b.SensingThroughputAt(n))
}
