//go:build !race

package mindful_test

// raceEnabled reports whether the race detector instruments this build;
// see race_enabled_test.go.
const raceEnabled = false
