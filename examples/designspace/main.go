// Designspace: an architect's tour of the paper's design space. Given a
// target channel count, the example asks for every published SoC: can a
// communication-centric design stream raw data (and at what QAM
// efficiency), can a computation-centric design host the MLP, and what do
// the Section 6 optimizations buy?
package main

import (
	"flag"
	"fmt"
	"log"

	"mindful"
)

var channels = flag.Int("channels", 2048, "target NI channel count")

func main() {
	flag.Parse()
	n := *channels
	if n < 1024 {
		log.Fatal("designspace: target must be at least 1024 channels")
	}
	fmt.Printf("Design space at %d channels\n", n)
	fmt.Printf("===========================\n\n")

	lb := mindful.NominalLinkBudget(1) // ideal transmitter; we report min efficiency
	bits := (n + mindful.StandardChannels - 1) / mindful.StandardChannels

	for _, d := range mindful.WirelessDesigns() {
		b := d.Baseline()
		budget := b.BudgetAt(n)
		sensing := b.SensingPowerAt(n)
		headroom := budget - sensing
		fmt.Printf("%s\n", d)
		fmt.Printf("  budget %v, sensing %v → headroom %v\n", budget, sensing, headroom)

		// Communication-centric: raw streaming with ⌈n/1024⌉-bit QAM.
		rate := b.SensingThroughputAt(n)
		eff, err := lb.MinEfficiency(mindful.NewQAM(bits), 1e-6, rate, headroom)
		if err != nil {
			log.Fatal(err)
		}
		switch {
		case headroom <= 0:
			fmt.Printf("  stream raw (%v, %d-bit QAM): no headroom at all\n", rate, bits)
		case eff > 1:
			fmt.Printf("  stream raw (%v, %d-bit QAM): infeasible even at 100%% efficiency\n", rate, bits)
		default:
			fmt.Printf("  stream raw (%v, %d-bit QAM): needs ≥ %.0f%% transmitter efficiency\n",
				rate, bits, eff*100)
		}

		// Computation-centric: the full MLP on-implant.
		ev := mindful.NewEvaluator(b, mindful.MLPTemplate())
		a, err := ev.Assess(n, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  full MLP on-implant: %v of %v budget → feasible: %v\n",
			a.Total(), a.Budget, a.Feasible())

		// Section 6: what fraction of the model survives each
		// optimization bundle?
		results, err := ev.ModelSizeAfter(n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  feasible MLP model size:")
		for _, r := range results {
			fmt.Printf("  %s=%.0f%%", r.Step, r.ModelFraction*100)
		}
		fmt.Println()
		fmt.Println()
	}
}
