// Telemetry: the full Fig. 1 link — implant, noisy wireless channel,
// wearable receiver — under increasing bit error rates. The example shows
// what the paper's BER = 1e-6 design target buys: below it the link is
// effectively lossless; a few orders of magnitude worse and the frame
// error rate collapses the stream. The whole sweep runs under one
// observer, so it ends with the aggregated Prometheus-text snapshot.
package main

import (
	"fmt"
	"log"
	"os"

	"mindful"
)

func main() {
	const channels = 64
	const ticks = 2000

	obs := mindful.NewObserver()
	fmt.Printf("%-10s %-10s %-10s %-12s %-12s %s\n",
		"BER", "accepted", "rejected", "lost seq", "FER", "analytic FER")
	for _, ber := range []float64{0, 1e-6, 1e-5, 1e-4, 1e-3} {
		cfg := mindful.DefaultImplantConfig()
		cfg.Neural.Channels = channels
		im, err := mindful.NewImplant(cfg)
		if err != nil {
			log.Fatal(err)
		}
		link, err := mindful.NewLossyLink(ber, 42)
		if err != nil {
			log.Fatal(err)
		}
		link.SetObserver(obs)
		rx, err := mindful.NewWearableReceiver(0)
		if err != nil {
			log.Fatal(err)
		}
		rx.SetObserver(obs)
		// Rejections surface both as Receive errors (counted here) and in
		// the receiver's own stats; the two tallies must agree.
		var frameBytes int
		var rejected int64
		im.OnFrame(func(buf []byte) {
			frameBytes = len(buf)
			if _, err := rx.Receive(link.Transport(buf)); err != nil {
				rejected++
			}
		})
		if err := im.Run(ticks); err != nil {
			log.Fatal(err)
		}
		st := rx.Stats()
		if rejected != st.Corrupted {
			log.Fatalf("telemetry: %d Receive errors but %d frames counted corrupt", rejected, st.Corrupted)
		}
		fmt.Printf("%-10.0e %-10d %-10d %-12d %-12.4f %.4f\n",
			ber, st.Accepted, st.Corrupted, st.LostSeq,
			st.FrameErrorRate(), link.ExpectedFrameErrorRate(frameBytes))
	}

	fmt.Println("\nThe CRC-framed packetizer turns bit errors into clean frame drops;")
	fmt.Println("at the paper's BER = 1e-6 design point the stream is effectively lossless.")

	fmt.Println("\nAggregated metrics over the whole sweep (Prometheus text):")
	if err := obs.Metrics.WritePrometheus(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
