// Motor: the classic online BCI application — decoding a 2-D cursor
// velocity from motor-cortex spiking with a Kalman filter, the linear
// baseline the paper contrasts with DNN decoders (Section 2.3). The
// example records from the synthetic cortex, bins spike counts, trains the
// filter, and reports held-out decoding accuracy alongside the decoder's
// computational cost in MACs.
package main

import (
	"fmt"
	"log"
	"math"

	"mindful"
)

func main() {
	// A 96-channel intracortical-style interface at 1 kHz.
	cfg := mindful.DefaultNeuralConfig()
	cfg.Channels = 96
	cfg.ActiveFraction = 1
	cfg.MeanRateHz = 60
	cfg.ModulationDepth = 0.95
	cfg.SampleRate = mindful.Kilohertz(1)
	gen, err := mindful.NewNeuralGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	gen.RecordSpikes(true)

	// Drive a smooth 2-D reaching trajectory and record spiking.
	const binSamples = 100 // 100 ms bins
	const bins = 600
	states := make([][]float64, bins)
	for b := 0; b < bins; b++ {
		phase := float64(b) * 0.07
		x, y := math.Sin(phase), math.Cos(0.6*phase)
		gen.SetIntent(x, y)
		gen.NextBlock(binSamples)
		states[b] = []float64{x, y}
	}
	obs, err := mindful.BinSpikeCounts(gen.SpikeLog(), bins*binSamples, binSamples)
	if err != nil {
		log.Fatal(err)
	}

	// Train on the first 70%, evaluate on the rest.
	split := bins * 7 / 10
	k, err := mindful.FitKalman(states[:split], obs[:split])
	if err != nil {
		log.Fatal(err)
	}
	est, err := mindful.RunDecoder(k, obs[split:])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Kalman decoder on %d channels, %d training bins, %d test bins\n",
		cfg.Channels, split, bins-split)
	for dim, name := range []string{"x-velocity", "y-velocity"} {
		r := mindful.Correlation(
			mindful.DecodeColumn(states[split:], dim),
			mindful.DecodeColumn(est, dim))
		fmt.Printf("  %s correlation: %.3f\n", name, r)
	}

	// The hardware view: a steady-state gain implementation costs a fixed
	// number of MACs per bin — the quantity the power framework prices.
	fg, err := k.SteadyStateGain(1000, 1e-9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nComputational cost per 100 ms bin:\n")
	fmt.Printf("  full Kalman update:   %6d MACs\n", k.MACsPerStep())
	fmt.Printf("  steady-state gain:    %6d MACs\n", fg.MACsPerStep())

	// Compare with the paper's MLP at the same channel count: the linear
	// decoder is orders of magnitude cheaper, which is why Section 5.3
	// flags DNN integration as the hard problem.
	mlp, err := mindful.MLPTemplate().Scale(cfg.Channels)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  MLP at %d channels:   %6d MACs per inference\n", cfg.Channels, mlp.TotalMACs())
	ratio := float64(mlp.TotalMACs()) / float64(fg.MACsPerStep())
	fmt.Printf("  → the DNN costs %.0f× the linear baseline per step\n", ratio)
}
