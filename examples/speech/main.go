// Speech: the paper's motivating workload — an implant that decodes speech
// features from 128-channel ECoG-like data with an on-implant network.
// This example runs both dataflows of Fig. 3 on the same synthetic brain
// and compares data volume, radio power, and safety.
package main

import (
	"fmt"
	"log"

	"mindful"
)

func buildDecoder(channels, labels int) (*mindful.Network, error) {
	// A small MLP in the spirit of the paper's speech decoder: the output
	// is one value per speech frequency label.
	return mindful.NewRandomMLP(42, channels, 64, labels)
}

func run(flow mindful.Dataflow, net *mindful.Network, ticks int) (mindful.ImplantStats, error) {
	cfg := mindful.DefaultImplantConfig()
	cfg.Neural.Channels = 128
	cfg.Flow = flow
	cfg.Network = nil
	if flow == mindful.ComputeCentric {
		cfg.Network = net
	}
	im, err := mindful.NewImplant(cfg)
	if err != nil {
		return mindful.ImplantStats{}, err
	}
	// Drive a time-varying "speech intent" through the cortex model.
	for i := 0; i < ticks; i++ {
		if i%200 == 0 {
			im.SetIntent(float64(i%400)/400, 1-float64(i%400)/400)
		}
		if err := im.Tick(); err != nil {
			return mindful.ImplantStats{}, err
		}
	}
	return im.Stats(), nil
}

func main() {
	const labels = 40
	net, err := buildDecoder(128, labels)
	if err != nil {
		log.Fatal(err)
	}
	const ticks = 2000 // 1 s at 2 kHz

	fmt.Println("Running both Fig. 3 dataflows on the same 128-channel synthetic cortex…")
	for _, flow := range []mindful.Dataflow{mindful.CommCentric, mindful.ComputeCentric} {
		st, err := run(flow, net, ticks)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%v dataflow\n", st.Flow)
		fmt.Printf("  frames sent:        %d (%d inferences)\n", st.Frames, st.Inferences)
		fmt.Printf("  raw sensing volume: %d bits, transmitted: %d bits (reduction %.1f×)\n",
			st.RawBits(), st.BitsSent, st.CompressionRatio())
		fmt.Printf("  uplink rate:        %v (raw rate %v)\n", st.TxRate, st.SensingRate)
		fmt.Printf("  power: sensing %v + compute %v + radio %v = %v\n",
			st.SensingPower, st.ComputePower, st.RadioPower, st.Total())
		fmt.Printf("  safety: %v\n", st.Safety)
	}

	// The analytical view of the same trade-off at scale.
	fmt.Println("\nAnalytical projection (Section 5.3): when does the full MLP stop fitting?")
	for _, num := range []int{1, 3} {
		d, _ := mindful.DesignByNum(num)
		ev := mindful.NewEvaluator(d.Baseline(), mindful.MLPTemplate())
		max, ok, err := ev.MaxChannels(128, 16384)
		if err != nil {
			log.Fatal(err)
		}
		if ok {
			fmt.Printf("  %s: up to %d channels\n", d, max)
		} else {
			fmt.Printf("  %s: never feasible\n", d)
		}
	}
}
