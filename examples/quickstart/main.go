// Quickstart: load the Table 1 design database, scale a design to the
// 1024-channel standard, check it against the thermal safety budget, and
// ask whether it could host the paper's MLP on-implant.
package main

import (
	"fmt"
	"log"

	"mindful"
)

func main() {
	// 1. Pick a published implanted SoC from the paper's Table 1.
	bisc, ok := mindful.DesignByNum(1)
	if !ok {
		log.Fatal("BISC not in the database")
	}
	fmt.Printf("Design: %s\n", bisc)
	fmt.Printf("  reported: %v over %v at %v\n\n", bisc.Power(), bisc.Area, bisc.Density)

	// 2. Scale it to the current 1024-channel standard (Section 4.1) and
	//    decompose it into sensing and non-sensing shares.
	b := bisc.Baseline()
	fmt.Printf("At %d channels: %v over %v\n", mindful.StandardChannels, b.At1024.Power, b.At1024.Area)
	fmt.Printf("  sensing:     %v / %v\n", b.SensingPower, b.SensingArea)
	fmt.Printf("  non-sensing: %v / %v\n", b.NonSensingPower, b.NonSensingArea)
	fmt.Printf("  implied radio energy: %v per bit\n\n", b.EnergyPerBit())

	// 3. Check the thermal safety budget (40 mW/cm², Section 3.2).
	check := mindful.CheckSafety(b.At1024.Power, b.At1024.Area)
	fmt.Println("Safety:", check)

	// 4. Validate the 40 mW/cm² constant against the bio-heat model.
	tm := mindful.DefaultThermalModel()
	profile, err := tm.SteadyState(mindful.SafePowerDensity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Tissue temperature rise at the limit: %.2f °C (paper: 1–2 °C)\n\n", profile.SurfaceRise())

	// 5. Could this SoC host the paper's MLP speech decoder on-implant?
	ev := mindful.NewEvaluator(b, mindful.MLPTemplate())
	for _, n := range []int{1024, 2048, 4096} {
		a, err := ev.Assess(n, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("MLP at %4d channels: sensing %v + compute %v + radio %v = %v of %v budget → feasible: %v\n",
			n, a.Sensing, a.Comp, a.Comm, a.Total(), a.Budget, a.Feasible())
	}
	max, ok, err := ev.MaxChannels(1024, 16384)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Printf("\nMaximum feasible channel count with the full MLP on-implant: %d\n", max)
		// On the field's seven-year doubling law, that limit has a date.
		year, err := mindful.DefaultRoadmap().YearFor(max)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("On the 7-year channel-doubling roadmap, the standard reaches that around %.0f.\n", year)
	}
}
