// SNN: the computation class the paper's Section 7 marks for future
// MINDFUL extensions. This example runs a spiking network on Poisson-coded
// synthetic neural features and answers the system-level question the
// framework cares about: at what input activity does event-driven
// computation beat the dense MAC lower bound of an equivalent MLP —
// and what does that mean for the implant power budget?
package main

import (
	"fmt"
	"log"

	"mindful"
)

func main() {
	const (
		inputs  = 96
		hidden  = 48
		outputs = 8
		steps   = 4000 // 2 s at 2 kHz
		seconds = 2.0
	)
	net, err := mindful.NewRandomSNN(11, mindful.DefaultLIF(), inputs, hidden, outputs)
	if err != nil {
		log.Fatal(err)
	}
	em := mindful.SNNEnergyFromMAC(mindful.NanGate45.EnergyPerStep())

	fmt.Println("SNN vs dense MLP power at different input activity levels")
	fmt.Println("(same topology, 45 nm; dense = every synapse is a MAC every step)")
	fmt.Println()
	fmt.Printf("%-10s %-12s %-12s %-12s %s\n", "activity", "events", "SNN power", "dense power", "winner")

	for _, rate := range []float64{0.02, 0.05, 0.1, 0.3, 0.6} {
		net.Reset()
		enc, err := mindful.NewSpikeEncoder(3, rate)
		if err != nil {
			log.Fatal(err)
		}
		values := make([]float64, inputs)
		for i := range values {
			values[i] = 1 // encoder rate sets the activity
		}
		for s := 0; s < steps; s++ {
			if _, err := net.Step(enc.Encode(values)); err != nil {
				log.Fatal(err)
			}
		}
		snnPower := em.Power(net.SynapticEvents(), seconds)
		denseJ := float64(net.DenseEquivalentEvents()) * mindful.NanGate45.EnergyPerStep().Joules()
		densePower := mindful.Milliwatts(denseJ / seconds * 1e3)
		winner := "SNN"
		if snnPower.Watts() >= densePower.Watts() {
			winner = "dense"
		}
		fmt.Printf("%-10.2f %-12d %-12v %-12v %s\n",
			net.ActivityFactor(), net.SynapticEvents(), snnPower, densePower, winner)
	}

	// The budget view: on a Neuralink-sized implant (8 mW budget), how
	// much of the sensing headroom would each approach consume?
	d, _ := mindful.DesignByNum(3)
	b := d.Baseline()
	budget := mindful.PowerBudget(b.At1024.Area)
	headroom := budget - b.SensingPower
	fmt.Printf("\nSoC 3 (%s): budget %v, sensing %v → headroom %v for computation\n",
		d.Name, budget, b.SensingPower, headroom)
	fmt.Println("At 10% input activity the event-driven network uses a small fraction")
	fmt.Println("of the dense floor — the quantitative case for SNNs in closed-loop BCIs.")
}
