# MINDFUL-Go developer targets.
#
# `make check` is the tier-1.5 gate: everything tier-1 runs
# (build + tests) plus vet, gofmt drift, the race detector (which covers
# the fleet determinism wall), and a short fuzz smoke of the frame parser
# and Rice codec.

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test check fmt vet race bench fuzz-smoke fault-smoke serve-smoke decode-smoke obs-smoke cluster-smoke chaos-smoke drift-smoke batch-smoke determinism clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...

# The fleet determinism wall on its own (also part of `race`): the same
# seed must be byte-identical for every worker count.
determinism:
	$(GO) test -race -run 'TestFleet(DeterminismWall|Modulations|SeedSensitivity)' -v ./internal/fleet/

# Native Go fuzzing, ~$(FUZZTIME) per target: the comm frame parser and
# packing round trips, and the dsp Delta–Rice codec.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzParsePacket -fuzztime $(FUZZTIME) ./internal/comm/
	$(GO) test -run '^$$' -fuzz FuzzPackSamples -fuzztime $(FUZZTIME) ./internal/comm/
	$(GO) test -run '^$$' -fuzz FuzzBitsBytes -fuzztime $(FUZZTIME) ./internal/comm/
	$(GO) test -run '^$$' -fuzz FuzzFECDecode -fuzztime $(FUZZTIME) ./internal/comm/
	$(GO) test -run '^$$' -fuzz FuzzARQReorder -fuzztime $(FUZZTIME) ./internal/comm/
	$(GO) test -run '^$$' -fuzz FuzzDeltaRiceDecode -fuzztime $(FUZZTIME) ./internal/dsp/
	$(GO) test -run '^$$' -fuzz FuzzDeltaRiceRoundTrip -fuzztime $(FUZZTIME) ./internal/dsp/
	$(GO) test -run '^$$' -fuzz FuzzCheckpointDecode -fuzztime $(FUZZTIME) ./internal/serve/checkpoint/
	$(GO) test -run '^$$' -fuzz FuzzDecodeCheckpointV2 -fuzztime $(FUZZTIME) ./internal/serve/checkpoint/
	$(GO) test -run '^$$' -fuzz FuzzDriftCheckpointV3 -fuzztime $(FUZZTIME) ./internal/serve/checkpoint/
	$(GO) test -run '^$$' -fuzz FuzzInstabilityMetric -fuzztime $(FUZZTIME) ./internal/drift/
	$(GO) test -run '^$$' -fuzz FuzzDecoderStep -fuzztime $(FUZZTIME) ./internal/decode/
	$(GO) test -run '^$$' -fuzz FuzzEventLogDecode -fuzztime $(FUZZTIME) ./internal/obs/
	$(GO) test -run '^$$' -fuzz FuzzMigrationDecode -fuzztime $(FUZZTIME) ./internal/cluster/wire/

# Fault-injection smoke: the fault package's unit tests, the clean-path
# digest pin (fault machinery disabled must stay byte-identical to the
# recorded pre-fault baseline) and the degradation-sweep invariants.
fault-smoke:
	$(GO) test ./internal/fault/
	$(GO) test -run 'TestCleanPathDigestPin|TestFaultSweep|TestRecoveryImprovesDelivery' ./internal/fleet/

# Serving smoke: boot a gateway, create a session over the control plane,
# stream its frames over the data plane, snapshot, restore with an
# extended tick target and assert the continued digest is bit-identical
# to an uninterrupted run — plus the checkpoint determinism wall, all
# under the race detector.
serve-smoke:
	$(GO) test -race -run 'TestServeSmoke|TestPauseResumeSnapshot|TestShutdownDrainsSnapshots' ./internal/serve/
	$(GO) test -race -run 'TestCheckpointResume|TestRestoreContinuesBitIdentically' ./internal/fleet/ ./internal/serve/checkpoint/

# Decode smoke: a tiny fleet run per decoder kind, digest-chained — the
# frame digest must be byte-identical with and without the decoder, the
# decode digest worker-invariant, and a mid-run checkpoint must resume
# bit-identically with decoder temporal state — plus the v1 golden blob
# under the v2 codec and the gateway-layer decoded stream.
decode-smoke:
	$(GO) test -race -run 'TestDecode|TestCheckpointResumeWithDecoder|TestSessionDecoderDeterministic' ./internal/fleet/
	$(GO) test -race -run 'TestGoldenV1|TestRoundTripWithDecoder|TestRestoreContinuesBitIdenticallyWithDecoder' ./internal/serve/checkpoint/
	$(GO) test -race -run 'TestDecodedStream|TestGatewayRestoreWithDecoder|TestDefaultDecoderApplied' ./internal/serve/
	$(GO) test -run 'TestResetEqualsFresh|TestDecoderStepZeroAlloc' ./internal/decode/

# Observability smoke: the flight recorder's guarantees — stage timing
# is digest-neutral and covers all four stages (BENCH_stage.json), the
# disabled path costs under 0.5% of a tick (BENCH_obs.json), the event
# log survives wraparound and round-trips canonically, and the serve
# lifecycle/fault narration fires — under the race detector where the
# recorder runs concurrently.
obs-smoke:
	$(GO) test -run 'TestStageProfileBaseline|TestObserverOverheadBaseline' .
	$(GO) test -race -run 'TestEventLog|TestEventRoundTrip|TestEventJSONCanonical|TestDecodeEventErrors|TestStageTimer|TestHistogramQuantile|TestExportGoldenFiles|TestTracerWraparoundSustained' ./internal/obs/
	$(GO) test -race -run 'TestStageTiming|TestRunProfile' ./internal/fleet/
	$(GO) test -race -run 'TestReadyz|TestSessionStatsEndpoint|TestStatsDeliveryLatency|TestLifecycleEvents|TestFaultPathEvents' ./internal/serve/

# Cluster smoke: the ring property tests (uniformity + minimal
# disruption), the migration determinism wall (every decoder kind,
# bit-identical digests across a live mid-run migration), the chaos
# kill/restore regression (SIGKILL-equivalent shard death, checkpoint
# recovery, split-brain guard), and the drain-readyz contract — all
# under the race detector — then a 3-shard self-hosted run with one
# migration and one kill/restore, digest-checked, emitting
# BENCH_cluster.json.
cluster-smoke:
	$(GO) test -race -run 'TestRing|TestMigration|TestMigrate|TestConcurrentMigrations|TestSubscriberFollowsMigration|TestChaos|TestCluster' ./internal/cluster/
	$(GO) test -race -run 'TestExportImport|TestImportRejects|TestReadyzDraining|TestSubscribeMoved|TestKillIsAbrupt' ./internal/serve/
	$(GO) run ./cmd/mindful cluster -shards 3 -sessions 9 -subs 1 -ticks 150 -migrations 1 -kill -verify -out BENCH_cluster.json

# Chaos-hardening smoke: the deterministic fault-injection primitives
# (CRN monotonicity, per-op isolation, proxy fates), the durable
# checkpoint store's corruption table, the chaos determinism wall
# (seeded control-plane faults, janitor convergence to exactly one copy
# per key, bit-identical digests) and the front-tier restart recovery —
# all under the race detector — then a short chaos sweep across four
# intensities emitting BENCH_chaos.json.
chaos-smoke:
	$(GO) test -race ./internal/chaosnet/ ./internal/cluster/store/
	$(GO) test -race -run 'TestChaosDeterminismWall|TestChaosWallFaultFreePins|TestFrontTierRestartRecovers|TestRecoverShard' ./internal/cluster/
	$(GO) run ./cmd/mindful cluster -shards 3 -sessions 8 -subs 1 -ticks 120 -migrations 2 -kill -chaos-sweep -chaos-seed 1 -chaos-intensities 0,0.5,1,2 -chaos-out BENCH_chaos.json

# Nonstationarity smoke: the drift package's unit tests, the
# intensity-0 digest pin (attaching the drift subsystem at zero scale
# must stay byte-identical to a drift-free run), the adaptive
# determinism wall and checkpoint resume (under the race detector via
# `race`), the frozen-vs-adaptive sweep sanity, the v3 codec round trip
# over the committed v1/v2 goldens, and the migration-mid-refit wall.
drift-smoke:
	$(GO) test ./internal/drift/
	$(GO) test -run 'TestDriftZeroIntensityDigestPin|TestDriftChangesFrameDigest|TestAdaptFrameDigestInvariant|TestDriftSweep' ./internal/fleet/
	$(GO) test -race -run 'TestAdaptDeterminismWall|TestCheckpointResumeAdaptive|TestRestoreRejectsDriftMismatch' ./internal/fleet/
	$(GO) test -race -run 'TestGoldenV1|TestGoldenV2|TestRoundTripAdaptive|TestRestoreContinuesBitIdenticallyAdaptive' ./internal/serve/checkpoint/
	$(GO) test -race -run 'TestGatewayRestoreAdaptive' ./internal/serve/
	$(GO) test -race -run 'TestMigrationMidRefitAdaptive' ./internal/cluster/
	$(GO) run ./cmd/mindful fleet -n 2 -workers 2 -ticks 12000 -channels 16 \
		-decoder kalman -decode-bin 25 -calibrate \
		-refit-every 12 -refit-buffer 48 -refit-blend 0.3 \
		-drift-sweep BENCH_drift.json

# Batched-execution smoke: the bit-identity foundations (packed-modem
# decision thresholds at every boundary ±1 ulp, bulk normal sampler
# draw-for-draw against math/rand), the batched determinism wall
# (batch × workers × scenario digests equal scalar, under the race
# detector), the zero-allocation pin on the batched group step, and the
# scaling baseline with its ungated single-core batched-vs-scalar
# speedup floor (BENCH_fleet.json).
batch-smoke:
	$(GO) test -run 'TestDemodThresholdsExact|TestDemodBoundarySymbols|TestPackedModemIdentical' ./internal/comm/
	$(GO) test -run 'TestFillNormBitIdentical' ./internal/detrand/
	$(GO) test -race -run 'TestBatched|TestBatchValidate|TestReceiveScratch' ./internal/fleet/ ./internal/wearable/
	$(GO) test -run 'TestBatchedStepAllocFree' ./internal/fleet/
	$(GO) test -run 'TestFleetScalingBaseline' .

check: build vet fmt race fault-smoke serve-smoke decode-smoke obs-smoke cluster-smoke chaos-smoke drift-smoke batch-smoke fuzz-smoke

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
