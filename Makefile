# MINDFUL-Go developer targets.
#
# `make check` is the tier-1.5 gate: everything tier-1 runs
# (build + tests) plus vet, gofmt drift, and the race detector.

GO ?= go

.PHONY: all build test check fmt vet race bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

race:
	$(GO) test -race ./...

check: build vet fmt race

bench:
	$(GO) test -bench=. -benchmem ./...

clean:
	$(GO) clean ./...
