// Package mindful is the public API of MINDFUL-Go, a from-scratch Go
// implementation of "MINDFUL: Safe, Implantable, Large-Scale Brain-Computer
// Interfaces from a System-Level Design Perspective" (MICRO 2025).
//
// The framework answers one question: given an implanted BCI SoC that must
// sense n neural channels, compute, and transmit wirelessly — all under the
// 40 mW/cm² thermal safety budget — which designs are feasible, and where
// do they break as n grows?
//
// The API is organized around four layers:
//
//   - Designs: the Table 1 database of published implanted SoCs, the
//     Eq. (1) scaling engine, and the sensing/non-sensing decomposition
//     (Table1, DesignByNum, Design.Baseline).
//   - Safety: the power budget and a Pennes bio-heat solver that recovers
//     the 1–2 °C limit from first principles (PowerBudget, SafetyCheck,
//     ThermalModel).
//   - Communication and computation models: OOK/QAM link budgets
//     (NewQAM, NominalLinkBudget), DNN workload templates and the MAC
//     lower-bound scheduler (MLPTemplate, DNCNNTemplate, NewEvaluator).
//   - The virtual implant: a tick-driven pipeline that runs synthetic
//     cortical data through ADC, packetizer or on-implant network, and a
//     constant-Eb radio, with live power and safety accounting
//     (NewImplant).
//
// The cmd/mindful tool regenerates every table and figure of the paper's
// evaluation; see DESIGN.md and EXPERIMENTS.md for the experiment index.
package mindful

import (
	"fmt"
	"math/rand"
	"net/http"
	"time"

	"mindful/internal/afe"
	"mindful/internal/chaosnet"
	"mindful/internal/cluster"
	"mindful/internal/cluster/store"
	"mindful/internal/comm"
	"mindful/internal/decode"
	"mindful/internal/dnnmodel"
	"mindful/internal/drift"
	"mindful/internal/dsp"
	"mindful/internal/fault"
	"mindful/internal/fleet"
	"mindful/internal/implant"
	"mindful/internal/mac"
	"mindful/internal/neural"
	"mindful/internal/nn"
	"mindful/internal/obs"
	"mindful/internal/optimize"
	"mindful/internal/sched"
	"mindful/internal/serve"
	"mindful/internal/serve/checkpoint"
	"mindful/internal/snn"
	"mindful/internal/soc"
	"mindful/internal/thermal"
	"mindful/internal/units"
	"mindful/internal/wearable"
	"mindful/internal/wpt"
)

// Physical quantities.
type (
	// Power is an electrical power in watts.
	Power = units.Power
	// Area is a surface area in square metres.
	Area = units.Area
	// PowerDensity is power per unit area in W/m².
	PowerDensity = units.PowerDensity
	// Energy is an amount of energy in joules.
	Energy = units.Energy
	// DataRate is a throughput in bits per second.
	DataRate = units.DataRate
	// Frequency is a rate in hertz.
	Frequency = units.Frequency
)

// Quantity constructors.
var (
	Milliwatts        = units.Milliwatts
	Microwatts        = units.Microwatts
	SquareMillimetres = units.SquareMillimetres
	MilliwattsPerCM2  = units.MilliwattsPerCM2
	PicojoulesPerBit  = units.PicojoulesPerBit
	MegabitsPerSecond = units.MegabitsPerSecond
	Kilohertz         = units.Kilohertz
)

// Design database and scaling (Section 4).
type (
	// Design is one published implanted SoC (a Table 1 row).
	Design = soc.Design
	// DesignPoint is a (channels, area, power) point.
	DesignPoint = soc.Point
	// Baseline is a design scaled to 1024 channels and decomposed into
	// sensing and non-sensing shares.
	Baseline = soc.Baseline
)

// StandardChannels is the current 1024-channel NI standard.
const StandardChannels = soc.StandardChannels

// SampleBits is the digitized sample width d used in the paper's examples.
const SampleBits = soc.SampleBits

// Table1 returns the paper's eleven-design database.
func Table1() []Design { return soc.Table1() }

// WirelessDesigns returns SoCs 1–8, the paper's target systems.
func WirelessDesigns() []Design { return soc.WirelessDesigns() }

// DesignByNum looks a design up by its Table 1 number (1–11).
func DesignByNum(num int) (Design, bool) { return soc.ByNum(num) }

// Roadmap is the channel-count scaling law (doubling every seven years).
type Roadmap = soc.Roadmap

// DefaultRoadmap anchors 1024 channels at 2025.
func DefaultRoadmap() Roadmap { return soc.DefaultRoadmap() }

// Safety (Section 3.2).
type (
	// SafetyCheck is the result of a power-density evaluation.
	SafetyCheck = thermal.Check
	// ThermalModel is the 1-D Pennes bio-heat tissue model.
	ThermalModel = thermal.Model
)

// SafePowerDensity is the 40 mW/cm² implant limit.
var SafePowerDensity = thermal.SafeDensity

// PowerBudget returns the safe total power for a contact area (Eq. 3).
func PowerBudget(a Area) Power { return thermal.Budget(a) }

// CheckSafety evaluates power p over area a against the budget.
func CheckSafety(p Power, a Area) SafetyCheck { return thermal.Evaluate(p, a) }

// DefaultThermalModel returns the brain-tissue bio-heat model used to
// validate the safety constant.
func DefaultThermalModel() ThermalModel { return thermal.DefaultModel() }

// Communication (Sections 5.1–5.2).
type (
	// Modulation is an analytic modulation scheme (OOK or M-QAM).
	Modulation = comm.Modulation
	// LinkBudget prices a wireless uplink.
	LinkBudget = comm.LinkBudget
	// Modem is a bit-level modulator/demodulator.
	Modem = comm.Modem
)

// OOK returns the on-off-keying scheme current implants prefer.
func OOK() Modulation { return comm.OOK{} }

// NewQAM returns a k-bit-per-symbol QAM scheme.
func NewQAM(bits int) Modulation { return comm.NewQAM(bits) }

// NewModem returns a bit-accurate modem for a modulation scheme.
func NewModem(m Modulation) (Modem, error) { return comm.NewModem(m) }

// NominalLinkBudget returns the paper's Section 5.2 link assumptions at
// the given transmitter efficiency.
func NominalLinkBudget(efficiency float64) LinkBudget { return comm.NominalBudget(efficiency) }

// Computation (Sections 5.3–6).
type (
	// DNNTemplate is a scalable network family (MLP or DN-CNN).
	DNNTemplate = dnnmodel.Template
	// DNNModel is a concrete scaled network.
	DNNModel = dnnmodel.Model
	// TechNode is a synthesis technology (130/45/12 nm).
	TechNode = mac.TechNode
	// ScheduleResult is the Eq. (11)–(15) MAC lower bound.
	ScheduleResult = sched.Result
	// Evaluator prices computation-centric design points.
	Evaluator = optimize.Evaluator
	// Assessment is one priced computation-centric point.
	Assessment = optimize.Assessment
	// OptimizationStep is a Section 6.2 cumulative optimization bundle.
	OptimizationStep = optimize.Step
)

// Technology nodes.
var (
	TSMC130   = mac.TSMC130
	NanGate45 = mac.NanGate45
	Node12nm  = mac.Node12
)

// MLPTemplate returns the paper's MLP workload family.
func MLPTemplate() DNNTemplate { return dnnmodel.MLP() }

// DNCNNTemplate returns the paper's densely connected CNN workload family.
func DNCNNTemplate() DNNTemplate { return dnnmodel.DNCNN() }

// ScheduleLowerBound returns the minimum-MAC-unit schedule for a model
// under deadline t on a technology node (the better of pipelined and
// non-pipelined).
func ScheduleLowerBound(m DNNModel, deadline time.Duration, node TechNode) (ScheduleResult, error) {
	return sched.Best(m, deadline, node)
}

// DeadlineFor returns the paper's real-time budget t = 1/f.
func DeadlineFor(f Frequency) time.Duration { return sched.DeadlineFor(f) }

// NewEvaluator returns the computation-centric evaluator for one SoC
// baseline and one DNN family (45 nm, unpartitioned).
func NewEvaluator(b Baseline, t DNNTemplate) Evaluator { return optimize.NewEvaluator(b, t) }

// OptimizationSteps lists the Fig. 12 cumulative bundles in order.
func OptimizationSteps() []OptimizationStep { return optimize.Steps() }

// Neural substrate, decoders and networks.
type (
	// NeuralConfig describes a synthetic neural interface.
	NeuralConfig = neural.Config
	// NeuralGenerator produces multichannel cortical signals.
	NeuralGenerator = neural.Generator
	// ADC digitizes analog samples.
	ADC = neural.ADC
	// Network is a runnable feed-forward DNN.
	Network = nn.Network
	// Decoder maps observations to state estimates.
	Decoder = decode.Decoder
	// KalmanDecoder is the classic linear BCI decoder.
	KalmanDecoder = decode.Kalman
)

// DefaultNeuralConfig returns the 128-channel, 2 kHz baseline interface.
func DefaultNeuralConfig() NeuralConfig { return neural.DefaultConfig() }

// NewNeuralGenerator builds a synthetic neural interface.
func NewNeuralGenerator(cfg NeuralConfig) (*NeuralGenerator, error) { return neural.New(cfg) }

// DefaultADC returns the 10-bit converter of the paper's worked examples.
func DefaultADC() ADC { return neural.DefaultADC() }

// NewRandomMLP builds a runnable dense network with Xavier-random weights:
// sizes lists the layer widths from input to output (ReLU between hidden
// layers, linear output). Useful for driving the virtual implant's
// computation-centric dataflow without a training pipeline.
func NewRandomMLP(seed int64, sizes ...int) (*Network, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("mindful: need at least input and output sizes, got %d", len(sizes))
	}
	rng := rand.New(rand.NewSource(seed))
	layers := make([]nn.Layer, 0, len(sizes)-1)
	for i := 0; i+1 < len(sizes); i++ {
		act := nn.ReLU
		if i+2 == len(sizes) {
			act = nn.Identity
		}
		layers = append(layers, nn.RandDense(rng, sizes[i], sizes[i+1], act))
	}
	return nn.NewNetwork(1, sizes[0], layers...)
}

// FitKalman trains a Kalman decoder from (state, observation) pairs.
func FitKalman(states, obs [][]float64) (*KalmanDecoder, error) {
	return decode.FitKalman(states, obs)
}

// BinSpikeCounts converts spike logs into binned rate features.
func BinSpikeCounts(spikeLog [][]int, nSamples, binSamples int) ([][]float64, error) {
	return decode.BinSpikeCounts(spikeLog, nSamples, binSamples)
}

// Decoder evaluation helpers.
var (
	// RunDecoder feeds every observation through a decoder.
	RunDecoder = decode.Run
	// Correlation is the Pearson correlation between two scalar series.
	Correlation = decode.Correlation
	// DecodeColumn extracts one component of a decoded trajectory.
	DecodeColumn = decode.Column
)

// The virtual implant (Fig. 3).
type (
	// Implant is a running tick-driven implant pipeline.
	Implant = implant.Implant
	// ImplantConfig assembles an implant.
	ImplantConfig = implant.Config
	// ImplantStats summarizes a run.
	ImplantStats = implant.Stats
	// Dataflow selects the processing strategy.
	Dataflow = implant.Dataflow
)

// The implant dataflows: Fig. 3's pair plus the reduced-rate strategies.
const (
	CommCentric    = implant.CommCentric
	ComputeCentric = implant.ComputeCentric
	FeatureCentric = implant.FeatureCentric
	SpikeCentric   = implant.SpikeCentric
)

// DefaultImplantConfig returns a 128-channel communication-centric implant.
func DefaultImplantConfig() ImplantConfig { return implant.DefaultConfig() }

// NewImplant builds a virtual implant.
func NewImplant(cfg ImplantConfig) (*Implant, error) { return implant.New(cfg) }

// ChannelDropout configures the Section 6.2 optimization in the virtual
// implant.
type ChannelDropout = implant.Dropout

// The wearable side of the link (Fig. 1's external SoC).
type (
	// WearableReceiver validates and accounts uplink frames.
	WearableReceiver = wearable.Receiver
	// LossyLink injects bit errors into the implant → wearable path.
	LossyLink = wearable.LossyLink
)

// NewWearableReceiver returns a receiver retaining up to keepSamples of
// history per channel.
func NewWearableReceiver(keepSamples int) (*WearableReceiver, error) {
	return wearable.NewReceiver(keepSamples)
}

// NewLossyLink returns a seeded link at the given bit error rate.
func NewLossyLink(ber float64, seed int64) (*LossyLink, error) {
	return wearable.NewLossyLink(ber, seed)
}

// Concealment strategies for gaps in the received frame stream.
type Concealment = wearable.Concealment

// The gap-concealment strategies. Concealed frames carry FrameFlagConcealed.
const (
	ConcealNone   = wearable.ConcealNone
	ConcealHold   = wearable.ConcealHold
	ConcealInterp = wearable.ConcealInterp
)

// FrameFlagConcealed marks a receiver-synthesized frame.
const FrameFlagConcealed = comm.FlagConcealed

// Fault injection and link-layer recovery (the robustness layer).
type (
	// FaultProfile describes a deterministic fault environment (burst
	// link, whole-frame loss, electrode faults, brownouts).
	FaultProfile = fault.Profile
	// FaultInjector bundles one pipeline's seeded fault processes.
	FaultInjector = fault.Injector
	// BurstLink is a seeded Gilbert–Elliott burst channel.
	BurstLink = fault.BurstLink
	// ElectrodeBank applies per-channel front-end faults.
	ElectrodeBank = fault.ElectrodeBank
	// Brownout blanks the transmitter for tick windows.
	Brownout = fault.Brownout
	// ARQConfig bounds the link-layer retransmission loop.
	ARQConfig = comm.ARQConfig
	// ARQ is one sender's bounded recovery loop.
	ARQ = comm.ARQ
	// ARQStats accounts retransmissions and their energy cost.
	ARQStats = comm.ARQStats
	// FEC is the Hamming(7,4) + block-interleaving codec.
	FEC = comm.FEC
)

// DefaultFaultProfile returns the harsh unit-intensity environment fault
// sweeps scale down from.
func DefaultFaultProfile() FaultProfile { return fault.DefaultProfile() }

// NewFaultInjector builds the fault processes for one pipeline from
// independent seeds (e.g. via DeriveSeed streams 2–4).
func NewFaultInjector(p FaultProfile, channels int, linkSeed, electrodeSeed, brownoutSeed int64) (*FaultInjector, error) {
	return fault.NewInjector(p, channels, linkSeed, electrodeSeed, brownoutSeed)
}

// NewBurstLink returns a seeded Gilbert–Elliott link for the profile's
// channel parameters.
func NewBurstLink(p FaultProfile, seed int64) (*BurstLink, error) {
	return fault.NewBurstLink(p, seed)
}

// NewARQ returns a bounded link-layer recovery loop.
func NewARQ(cfg ARQConfig) (*ARQ, error) { return comm.NewARQ(cfg) }

// NewFEC returns a Hamming(7,4) codec at the given interleaver depth.
func NewFEC(depth int) (*FEC, error) { return comm.NewFEC(depth) }

// Fleet simulation: many independent implant → modem → AWGN → wearable
// pipelines run concurrently over a worker pool, with SplitMix64-sharded
// seeds so the aggregate is bit-identical for any worker count.
type (
	// FleetConfig describes one fleet run.
	FleetConfig = fleet.Config
	// FleetAggregate is the fleet-wide summary.
	FleetAggregate = fleet.Aggregate
	// FleetImplantResult is one implant pipeline's outcome.
	FleetImplantResult = fleet.ImplantResult
	// FleetSweep is a degradation curve over fault intensities.
	FleetSweep = fleet.Sweep
	// FleetSweepPoint is one intensity sample of a degradation curve.
	FleetSweepPoint = fleet.SweepPoint
)

// DefaultFleetConfig returns a small 8-implant fleet under 16-QAM at a
// noisy operating point.
func DefaultFleetConfig() FleetConfig { return fleet.DefaultConfig() }

// RunFleet executes a fleet and reduces the per-implant results in index
// order; the deterministic fields never depend on Workers.
func RunFleet(cfg FleetConfig) (*FleetAggregate, error) { return fleet.Run(cfg) }

// RunFleetFaultSweep runs one fleet per intensity, scaling the base fault
// profile, and reduces the degradation curve (delivery rate, concealed
// fraction, effective BER vs intensity). The curve is bit-identical for
// any worker count.
func RunFleetFaultSweep(cfg FleetConfig, base FaultProfile, intensities []float64) (*FleetSweep, error) {
	return fleet.RunFaultSweep(cfg, base, intensities)
}

// DeriveSeed maps (base seed, implant index, stream tag) to an
// independent RNG seed via SplitMix64 splitting.
func DeriveSeed(base int64, index, stream uint64) int64 {
	return fleet.DeriveSeed(base, index, stream)
}

// Stage graph: the pipeline is a fixed-order chain of snapshot-aware
// stages (source → transport → receiver → decode) sharing one Tick
// record per step. The decode stage is optional and purely downstream —
// enabling it never changes the frame digests.
type (
	// PipelineStage is one snapshot-aware pipeline segment.
	PipelineStage = fleet.Stage
	// PipelineTick is the dataflow record one Step threads through the
	// stages.
	PipelineTick = fleet.Tick
	// FleetDecodeConfig attaches a kinematics decoder to every implant's
	// wearable.
	FleetDecodeConfig = fleet.DecodeConfig
	// FleetDecoderKind selects the decoder family.
	FleetDecoderKind = fleet.DecoderKind
	// FleetDecodeState is a decode stage's serializable state.
	FleetDecodeState = fleet.DecodeState
)

// Decoder kinds for FleetDecodeConfig.Kind.
const (
	FleetDecoderNone   = fleet.DecoderNone
	FleetDecoderKalman = fleet.DecoderKalman
	FleetDecoderWiener = fleet.DecoderWiener
	FleetDecoderDNN    = fleet.DecoderDNN
)

// ParseDecoderKind maps a decoder name ("none", "kalman", "wiener",
// "dnn") to its kind.
func ParseDecoderKind(name string) (FleetDecoderKind, error) {
	return fleet.ParseDecoderKind(name)
}

// Observability: the cross-cutting metrics and tracing layer. Stateful
// components (Implant, WearableReceiver, LossyLink) accept an observer via
// SetObserver; the scheduler's free functions use SetSchedulerObserver;
// modems are wrapped with ObserveModem. All instruments are nil-safe, so
// unobserved components pay only inlined nil checks.
type (
	// Observer bundles a metrics registry and a span tracer.
	Observer = obs.Observer
	// MetricsRegistry is the lock-cheap labeled metrics registry, with
	// Prometheus-text and JSON-lines exporters.
	MetricsRegistry = obs.Registry
	// MetricLabel is one key/value metric label.
	MetricLabel = obs.Label
	// Tracer records spans into a bounded ring buffer.
	Tracer = obs.Tracer
	// TraceSpan is one recorded span.
	TraceSpan = obs.Span
	// ObservedModem wraps a Modem with link-quality accounting.
	ObservedModem = comm.ObservedModem
	// Histogram is the atomic-bucket histogram with quantile estimation.
	Histogram = obs.Histogram
	// StageTimer attributes per-stage wall time across a pipeline; attach
	// one via FleetConfig.StageTiming (digest-neutral).
	StageTimer = obs.StageTimer
	// StageClock is one stage's nil-safe timing instrument.
	StageClock = obs.StageClock
	// StageStats is one stage's timing summary (count, mean, EWMA, p50,
	// p99 in nanoseconds).
	StageStats = obs.StageStats
	// EventLog is the flight recorder's bounded structured event log.
	EventLog = obs.EventLog
	// Event is one recorded flight-recorder event.
	Event = obs.Event
	// EventAttr is one numeric event attribute.
	EventAttr = obs.EventAttr
	// StageProfile is a fleet run's per-stage ns/frame breakdown (the
	// BENCH_stage.json schema).
	StageProfile = fleet.StageProfile
	// FleetScalingPoint is one worker count's throughput on a fixed fleet.
	FleetScalingPoint = fleet.ScalingPoint
	// FleetBatchPoint is one batch size's throughput on a fixed
	// single-worker fleet.
	FleetBatchPoint = fleet.BatchPoint
)

// NewObserver returns an observer with a fresh registry and a tracer of
// the default capacity.
func NewObserver() *Observer { return obs.New() }

// NewHistogram returns a histogram over the given ascending bucket
// bounds; ExpBuckets builds exponential bounds.
func NewHistogram(bounds []float64) *Histogram { return obs.NewHistogram(bounds) }

// ExpBuckets returns n exponential bucket bounds starting at start.
func ExpBuckets(start, factor float64, n int) []float64 { return obs.ExpBuckets(start, factor, n) }

// NewStageTimer returns an empty per-stage timing registry.
func NewStageTimer() *StageTimer { return obs.NewStageTimer() }

// NewEventLog returns a flight-recorder event log keeping the newest
// capacity events.
func NewEventLog(capacity int) *EventLog { return obs.NewEventLog(capacity) }

// RunFleetProfile runs the fleet with stage timing attached and returns
// the per-stage breakdown alongside the (digest-identical) aggregate.
func RunFleetProfile(cfg FleetConfig) (*StageProfile, *FleetAggregate, error) {
	return fleet.RunProfile(cfg)
}

// MeasureFleetScaling runs the same fleet at each worker count and
// returns the throughput curve, failing if any point's digest diverges.
func MeasureFleetScaling(cfg FleetConfig, workerCounts []int) ([]FleetScalingPoint, error) {
	return fleet.MeasureScaling(cfg, workerCounts)
}

// MeasureFleetBatchSweep runs the same single-worker fleet at each batch
// size and returns the throughput curve, failing if any point's digest
// diverges — the batched-execution analogue of MeasureFleetScaling.
func MeasureFleetBatchSweep(cfg FleetConfig, batches []int) ([]FleetBatchPoint, error) {
	return fleet.MeasureBatchSweep(cfg, batches)
}

// ObserveModem wraps a modem so its traffic is accounted in o's registry,
// labeled by modulation name.
func ObserveModem(m Modem, o *Observer) *ObservedModem { return comm.ObserveModem(m, o) }

// SetSchedulerObserver wires the scheduling lower-bound solver to an
// observability sink; pass nil to detach.
func SetSchedulerObserver(o *Observer) { sched.SetObserver(o) }

// ServeDebug serves /metrics, /metrics.json, /trace, expvar and
// net/http/pprof for o on addr ("host:port"; port 0 picks one). It returns
// the bound address and a stop function.
func ServeDebug(addr string, o *Observer) (string, func() error, error) {
	return obs.ServeDebug(addr, o)
}

// Analog front end (the physical basis of linear sensing-power scaling).
type (
	// Amplifier is a NEF-characterized low-noise neural amplifier.
	Amplifier = afe.Amplifier
	// FrontEnd is one channel's amplifier + ADC chain.
	FrontEnd = afe.FrontEnd
)

// TypicalFrontEnd returns a representative recording channel.
func TypicalFrontEnd() FrontEnd { return afe.TypicalFrontEnd() }

// Wireless power transfer (Section 8).
type (
	// WPTLink is a two-coil inductive power link.
	WPTLink = wpt.Link
	// WPTDelivery is one power-transfer operating point.
	WPTDelivery = wpt.Delivery
)

// TypicalWPTLink returns a representative transcutaneous link.
func TypicalWPTLink() WPTLink { return wpt.TypicalLink() }

// Spiking neural networks (the related-work computation class).
type (
	// SNN is a feed-forward spiking network with event-driven cost
	// accounting.
	SNN = snn.Network
	// LIFParams are the leaky integrate-and-fire neuron parameters.
	LIFParams = snn.LIF
	// SpikeEncoder converts analog values to Poisson spike trains.
	SpikeEncoder = snn.PoissonEncoder
	// SNNEnergyModel prices synaptic events.
	SNNEnergyModel = snn.EnergyModel
)

// DefaultLIF returns standard neuron parameters.
func DefaultLIF() LIFParams { return snn.DefaultLIF() }

// NewRandomSNN builds a spiking network with random positive weights:
// sizes lists layer widths from input to output.
func NewRandomSNN(seed int64, params LIFParams, sizes ...int) (*SNN, error) {
	if len(sizes) < 2 {
		return nil, fmt.Errorf("mindful: need at least input and output sizes, got %d", len(sizes))
	}
	rng := rand.New(rand.NewSource(seed))
	layers := make([]*snn.Layer, 0, len(sizes)-1)
	for i := 0; i+1 < len(sizes); i++ {
		layers = append(layers, snn.RandLayer(rng, sizes[i], sizes[i+1], params))
	}
	return snn.NewNetwork(layers...)
}

// NewSpikeEncoder returns a seeded Poisson encoder.
func NewSpikeEncoder(seed int64, maxRate float64) (*SpikeEncoder, error) {
	return snn.NewPoissonEncoder(seed, maxRate)
}

// SNNEnergyFromMAC derives the synaptic-event energy from a MAC step.
func SNNEnergyFromMAC(macStep Energy) SNNEnergyModel { return snn.EnergyFromMAC(macStep) }

// Serving: the streaming session gateway. Each session hosts one
// steppable implant pipeline behind a JSON/HTTP control plane and a
// length-prefixed binary TCP data plane with bounded subscriber queues
// (drop-oldest backpressure, stall eviction). Sessions checkpoint to a
// versioned binary blob and restore bit-identically.
type (
	// ServeConfig describes one gateway.
	ServeConfig = serve.Config
	// ServeServer is a running gateway.
	ServeServer = serve.Server
	// ServeSessionInfo is the control plane's view of one session.
	ServeSessionInfo = serve.SessionInfo
	// ServeRecord is one decoded data-plane record.
	ServeRecord = serve.Record
	// ServeLoadConfig describes one load-generation run.
	ServeLoadConfig = serve.LoadConfig
	// ServeLoadResult summarizes a load run (the BENCH_serve schema).
	ServeLoadResult = serve.LoadResult
	// SessionConfig configures one hosted pipeline session.
	SessionConfig = checkpoint.SessionConfig
	// Checkpoint is a decoded session snapshot.
	Checkpoint = checkpoint.Checkpoint
	// Pipeline is one steppable implant → modem → AWGN → wearable chain.
	Pipeline = fleet.Pipeline
	// PipelineState is a pipeline's full serializable state.
	PipelineState = fleet.PipelineState
)

// NewServeServer returns an unstarted gateway; Start binds its planes.
func NewServeServer(cfg ServeConfig) (*ServeServer, error) { return serve.New(cfg) }

// ServeSubscribe opens a data-plane connection and subscribes to a
// session; read records from the returned reader with ReadServeRecord.
var ServeSubscribe = serve.Subscribe

// ServeSubscribeDecoded subscribes to a session's decoded-kinematics
// stream (sessions created with a decoder only).
var ServeSubscribeDecoded = serve.SubscribeDecoded

// ServeDecodeEstimates unpacks a decoded record's payload into the
// decoder's state estimate.
var ServeDecodeEstimates = serve.DecodeEstimates

// ReadServeRecord reads one record from a subscribed stream; io.EOF
// marks a clean end of stream.
var ReadServeRecord = serve.ReadRecord

// RunServeLoad executes a load scenario against a gateway (self-hosting
// one when cfg.Server is nil) and returns its measurements.
func RunServeLoad(cfg ServeLoadConfig) (*ServeLoadResult, error) { return serve.RunLoad(cfg) }

// DefaultServeLoadConfig returns the BENCH_serve baseline scenario.
func DefaultServeLoadConfig() ServeLoadConfig { return serve.DefaultLoadConfig() }

// Cluster serving: a sharded front tier over N gateways. Session keys
// consistent-hash onto shards over a virtual-node ring; the control
// plane proxies to the owner, the data plane redirects subscribers
// (`MOVED`), and sessions migrate live between shards by checkpoint
// transfer — bit-identically, with paused-state preservation and
// checkpoint-based recovery when a shard dies.
type (
	// ClusterConfig describes the front tier and its shard template.
	ClusterConfig = cluster.Config
	// ClusterServer is a running front tier.
	ClusterServer = cluster.Cluster
	// ClusterLoadConfig describes one cluster load-generation run.
	ClusterLoadConfig = cluster.LoadConfig
	// ClusterLoadResult summarizes a cluster load run (the
	// BENCH_cluster schema).
	ClusterLoadResult = cluster.LoadResult
	// Ring is the consistent-hash ring the front tier places with.
	Ring = cluster.Ring
)

// NewCluster returns an unstarted front tier; Start binds its planes,
// then AddShard/JoinShard populate the ring.
func NewCluster(cfg ClusterConfig) (*ClusterServer, error) { return cluster.New(cfg) }

// NewRing builds a consistent-hash ring over the given shard IDs with
// vnodes virtual nodes per shard (0 = default).
func NewRing(shardIDs []string, vnodes int) (*Ring, error) { return cluster.NewRing(shardIDs, vnodes) }

// RunClusterLoad drives a self-hosted sharded front tier at fleet
// scale — live migrations and an optional shard kill/recovery mid-run —
// and returns its measurements.
func RunClusterLoad(cfg ClusterLoadConfig) (*ClusterLoadResult, error) { return cluster.RunLoad(cfg) }

// DefaultClusterLoadConfig returns the BENCH_cluster baseline scenario.
func DefaultClusterLoadConfig() ClusterLoadConfig { return cluster.DefaultLoadConfig() }

// Chaos hardening: deterministic network fault injection and the
// machinery that survives it. A chaosnet transport drops, resets, cuts,
// delays or partitions control-plane calls on a schedule fully
// determined by (seed, operation, attempt) — common-random-number
// semantics, so intensities nest. The cluster answers with
// retry/backoff + idempotency keys, a reconciliation janitor, and a
// durable CRC-framed checkpoint store that survives front-tier
// restarts.
type (
	// ChaosProfile holds per-fate fault probabilities at intensity 1.
	ChaosProfile = chaosnet.Profile
	// ChaosTransport is a seeded fault-injecting http.RoundTripper.
	ChaosTransport = chaosnet.Transport
	// ChaosProxy is a seeded fault-injecting TCP proxy (data plane).
	ChaosProxy = chaosnet.Proxy
	// ChaosStats counts injected faults by fate.
	ChaosStats = chaosnet.Stats
	// ChaosSweep is a survival/latency sweep across a fault-intensity
	// ladder (the BENCH_chaos schema).
	ChaosSweep = cluster.ChaosSweep
	// ChaosSweepPoint is one intensity's load-run result.
	ChaosSweepPoint = cluster.SweepPoint
	// ClusterAuditReport is the invariant auditor's findings: exactly
	// one copy of each routed session, in its intended run state.
	ClusterAuditReport = cluster.AuditReport
	// CheckpointStore is the durable per-session checkpoint store
	// (CRC32C frames, atomic renames, generation fallback).
	CheckpointStore = store.Store
	// CheckpointRecord is one stored checkpoint frame.
	CheckpointRecord = store.Record
)

// DefaultChaosProfile returns the standard fault mix at intensity 1.
func DefaultChaosProfile() ChaosProfile { return chaosnet.DefaultProfile() }

// NewChaosTransport wraps inner (nil = http.DefaultTransport) with
// seeded fault injection; SetIntensity scales the profile without
// changing the underlying draw schedule.
func NewChaosTransport(inner http.RoundTripper, prof ChaosProfile, seed int64) (*ChaosTransport, error) {
	return chaosnet.NewTransport(inner, prof, seed)
}

// NewChaosProxy listens on addr and forwards to upstream with seeded
// connection-level fault injection.
func NewChaosProxy(addr, upstream string, prof ChaosProfile, seed int64) (*ChaosProxy, error) {
	return chaosnet.NewProxy(addr, upstream, prof, seed)
}

// OpenCheckpointStore opens (creating if needed) a durable checkpoint
// store rooted at dir.
func OpenCheckpointStore(dir string) (*CheckpointStore, error) { return store.Open(dir) }

// RunChaosSweep reruns a cluster load scenario at each fault intensity
// with a common chaos seed and collects survival, migration-success,
// retry and latency curves.
func RunChaosSweep(base ClusterLoadConfig, intensities []float64, seed int64) (*ChaosSweep, error) {
	return cluster.RunChaosSweep(base, intensities, seed)
}

// DefaultChaosIntensities returns the standard sweep ladder.
func DefaultChaosIntensities() []float64 { return cluster.DefaultSweepIntensities() }

// Nonstationarity and closed-loop recalibration: a seeded drift process
// walks each unit's tuning, gain and baseline across synthetic
// recording days (with unit turnover and loss) under common-random-
// number semantics — Scale(0) is a byte-identical no-op and intensity
// ladders nest. A KL-divergence instability meter scores the binned
// rate field against a frozen reference window, and a CLDA
// recalibrator periodically refits linear decoders in place from a
// bounded ring of (rates, intended-kinematics) supervision.
type (
	// DriftProfile parameterizes the per-epoch nonstationarity walk.
	DriftProfile = drift.Profile
	// DriftProcess is one implant's seeded drift state machine.
	DriftProcess = drift.Process
	// InstabilityMeter is the reference-vs-recent KL divergence meter.
	InstabilityMeter = drift.Meter
	// RecalConfig holds the CLDA refit knobs (cadence, ring size,
	// blend, label jitter).
	RecalConfig = decode.RecalConfig
	// Recalibrator refits a linear decoder in place from recent
	// supervision.
	Recalibrator = decode.Recalibrator
	// DriftSweepResult is the frozen-vs-adaptive intensity sweep (the
	// BENCH_drift schema).
	DriftSweepResult = fleet.DriftSweep
	// DriftSweepPoint is one intensity's paired-arm measurements.
	DriftSweepPoint = fleet.DriftPoint
)

// DefaultDriftProfile returns a mild general-purpose drift profile.
func DefaultDriftProfile() DriftProfile { return drift.DefaultProfile() }

// DefaultDriftSweepProfile returns the rotation/turnover-dominant
// profile the tracked BENCH_drift baseline sweeps over.
func DefaultDriftSweepProfile() DriftProfile { return fleet.DefaultSweepProfile() }

// NewDriftProcess attaches a seeded drift process to a generator.
func NewDriftProcess(p DriftProfile, g *neural.Generator, seed int64) (*DriftProcess, error) {
	return drift.NewProcess(p, g, seed)
}

// NewInstabilityMeter builds a KL instability meter over channels with
// the given reference- and recent-window sizes (in bins).
func NewInstabilityMeter(channels, refBins, winBins int) (*InstabilityMeter, error) {
	return drift.NewMeter(channels, refBins, winBins)
}

// NewRecalibrator wraps a refittable linear decoder in a CLDA loop.
func NewRecalibrator(d Decoder, cfg RecalConfig) (*Recalibrator, error) {
	return decode.NewRecalibrator(d, cfg)
}

// RunDriftSweep runs the frozen-vs-adaptive decoder comparison across a
// drift-intensity ladder (nil intensities = the standard 0…1 ladder).
func RunDriftSweep(cfg FleetConfig, base DriftProfile, intensities []float64) (*DriftSweepResult, error) {
	return fleet.RunDriftSweep(cfg, base, intensities)
}

// NewPipeline builds one steppable implant pipeline (implant idx of a
// fleet configuration).
func NewPipeline(cfg FleetConfig, idx, worker int) (*Pipeline, error) {
	return fleet.NewPipeline(cfg, idx, worker)
}

// RestorePipeline rebuilds a pipeline from a snapshot taken under the
// same configuration; it continues bit-identically.
func RestorePipeline(cfg FleetConfig, st PipelineState) (*Pipeline, error) {
	return fleet.RestorePipeline(cfg, st)
}

// EncodeCheckpoint serializes a session checkpoint to its versioned
// binary form.
func EncodeCheckpoint(cp Checkpoint) []byte { return checkpoint.Encode(cp) }

// DecodeCheckpoint parses a checkpoint blob, rejecting malformed,
// truncated or trailing bytes.
func DecodeCheckpoint(buf []byte) (Checkpoint, error) { return checkpoint.Decode(buf) }

// Lossless neural-data compression (the data-compressive IC approach).
var (
	// DeltaRiceEncode compresses one channel's sample trace.
	DeltaRiceEncode = dsp.DeltaRiceEncode
	// DeltaRiceDecode reverses DeltaRiceEncode.
	DeltaRiceDecode = dsp.DeltaRiceDecode
	// CompressionRatio measures raw-over-compressed bits for one trace.
	CompressionRatio = dsp.CompressionRatio
)
