// Benchmarks: one per paper artifact (Table 1, Figs. 4–7 and 9–12) plus
// micro-benchmarks for the substrates that back them. Run with
//
//	go test -bench=. -benchmem
//
// The per-figure benchmarks measure full regeneration of each artifact so
// the cost of the experiment harness itself is tracked over time.
package mindful_test

import (
	"testing"

	"mindful"
	"mindful/internal/comm"
	"mindful/internal/dnnmodel"
	"mindful/internal/dsp"
	"mindful/internal/experiments"
	"mindful/internal/fixed"
	"mindful/internal/mac"
	"mindful/internal/neural"
	"mindful/internal/sched"
	"mindful/internal/thermal"
	"mindful/internal/units"
)

func BenchmarkTable1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table1(); len(rows) != 11 {
			b.Fatal("bad table")
		}
	}
}

func BenchmarkFig4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig4(); len(rows) != 12 {
			b.Fatal("bad fig4")
		}
	}
}

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig5(experiments.Naive)
		experiments.Fig5(experiments.HighMargin)
	}
}

func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.Fig6(experiments.Naive)
		experiments.Fig6(experiments.HighMargin)
	}
}

func BenchmarkFig7(b *testing.B) {
	cfg := experiments.DefaultFig7Config()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig7(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := experiments.Fig9(); len(rows) != 12 {
			b.Fatal("bad fig9")
		}
	}
}

func BenchmarkFig10MLP(b *testing.B) {
	tmpl := dnnmodel.MLP()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(tmpl); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10DNCNN(b *testing.B) {
	tmpl := dnnmodel.DNCNN()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(tmpl); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation benchmarks: the DESIGN.md design-choice studies.

func BenchmarkAblateDepthPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateDepthPolicy(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateSensingSplit(b *testing.B) {
	fracs := []float64{0.3, 0.4, 0.5}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateSensingSplit(fracs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateQAMLoss(b *testing.B) {
	losses := []float64{6, 8, 10}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateQAMLoss(losses); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateScheduling(b *testing.B) {
	counts := []int{128, 1024, 2048}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateScheduling(counts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblateFluxSplit(b *testing.B) {
	splits := []float64{0.3, 0.5, 0.7}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AblateFluxSplit(splits); err != nil {
			b.Fatal(err)
		}
	}
}

// Substrate micro-benchmarks.

func BenchmarkThermalSteadyState(b *testing.B) {
	m := thermal.DefaultModel()
	for i := 0; i < b.N; i++ {
		if _, err := m.SteadyState(thermal.SafeDensity); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchedulerMLP1024(b *testing.B) {
	m, err := dnnmodel.MLP().Scale(1024)
	if err != nil {
		b.Fatal(err)
	}
	deadline := sched.DeadlineFor(units.Kilohertz(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := sched.Best(m, deadline, mac.NanGate45)
		if err != nil || !r.Feasible {
			b.Fatal("schedule failed")
		}
	}
}

func BenchmarkQAMRequiredEbN0(b *testing.B) {
	q := comm.NewQAM(6)
	for i := 0; i < b.N; i++ {
		if e := q.RequiredEbN0(1e-6); e <= 0 {
			b.Fatal("bad Eb/N0")
		}
	}
}

func BenchmarkModem16QAM(b *testing.B) {
	modem, err := comm.NewModem(comm.NewQAM(4))
	if err != nil {
		b.Fatal(err)
	}
	bits := make([]byte, 4096)
	for i := range bits {
		bits[i] = byte(i & 1)
	}
	b.SetBytes(int64(len(bits) / 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		syms, err := modem.Modulate(bits)
		if err != nil {
			b.Fatal(err)
		}
		modem.Demodulate(syms)
	}
}

func BenchmarkPacketizer1024ch(b *testing.B) {
	p, err := comm.NewPacketizer(10)
	if err != nil {
		b.Fatal(err)
	}
	samples := make([]uint16, 1024)
	for i := range samples {
		samples[i] = uint16(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf, err := p.Encode(samples)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := comm.Decode(buf); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNeuralGenerator128ch(b *testing.B) {
	g, err := neural.New(neural.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Next()
	}
}

func BenchmarkSpikeDetection(b *testing.B) {
	cfg := neural.DefaultConfig()
	cfg.Channels = 1
	cfg.ActiveFraction = 1
	g, err := neural.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	block := g.NextBlock(4000)
	trace := make([]float64, len(block))
	for i := range block {
		trace[i] = block[i][0]
	}
	det := dsp.NewDetector(cfg.SampleRate.Hz())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		det.Detect(trace)
	}
}

func BenchmarkFixedDot256(b *testing.B) {
	xs := make([]fixed.Value, 256)
	ys := make([]fixed.Value, 256)
	for i := range xs {
		xs[i] = fixed.FromFloat(0.1, fixed.Q7)
		ys[i] = fixed.FromFloat(-0.1, fixed.Q7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fixed.Dot(xs, ys, fixed.Q7)
	}
}

func BenchmarkImplantTickCommCentric(b *testing.B) {
	cfg := mindful.DefaultImplantConfig()
	im, err := mindful.NewImplant(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := im.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImplantTickCommCentricObserved(b *testing.B) {
	cfg := mindful.DefaultImplantConfig()
	im, err := mindful.NewImplant(cfg)
	if err != nil {
		b.Fatal(err)
	}
	im.SetObserver(mindful.NewObserver())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := im.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkImplantTickComputeCentric(b *testing.B) {
	cfg := mindful.DefaultImplantConfig()
	cfg.Flow = mindful.ComputeCentric
	net, err := mindful.NewRandomMLP(1, cfg.Neural.Channels, 64, 40)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Network = net
	im, err := mindful.NewImplant(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := im.Tick(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSNNStep(b *testing.B) {
	net, err := mindful.NewRandomSNN(1, mindful.DefaultLIF(), 128, 64, 8)
	if err != nil {
		b.Fatal(err)
	}
	enc, err := mindful.NewSpikeEncoder(2, 0.2)
	if err != nil {
		b.Fatal(err)
	}
	values := make([]float64, 128)
	for i := range values {
		values[i] = 0.8
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Step(enc.Encode(values)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeltaRiceEncode(b *testing.B) {
	samples := make([]uint16, 4000)
	cur := 512
	for i := range samples {
		cur += i%7 - 3
		samples[i] = uint16(cur)
	}
	b.SetBytes(int64(len(samples) * 2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mindful.DeltaRiceEncode(samples, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLossyLinkTransport(b *testing.B) {
	link, err := mindful.NewLossyLink(1e-4, 1)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 1294) // a 1024-channel frame
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link.Transport(buf)
	}
}
