// Package drift is the multi-day nonstationarity model for the synthetic
// neural substrate: the reason implanted BCIs need recalibration at all.
// The MINDFUL instability work measures how multi-day human intracortical
// recordings wander — tuning directions rotate, units appear and vanish,
// baseline rates shift — until a decoder frozen at calibration time
// degrades. This package reproduces those processes synthetically and
// deterministically: a seeded Process evolves per-unit state once per
// epoch (a synthetic "day") and applies it to a neural.Generator, and a
// Meter quantifies the resulting distribution shift as a KL-style
// divergence between a frozen reference window of binned rates and a
// sliding recent window.
//
// Profile follows internal/fault's common-random-number contract: Scale
// multiplies every magnitude and probability by an intensity, draw counts
// are fixed regardless of outcome, so intensity ladders share one random
// history and nest — and Scale(0) disables the process entirely, leaving
// the pipeline byte-identical to a drift-free run.
package drift

import (
	"fmt"
	"math"

	"mindful/internal/detrand"
	"mindful/internal/neural"
)

// Profile describes a nonstationarity environment at unit intensity. The
// zero value drifts nothing; Scale derives weaker or stronger
// environments for stability sweeps.
type Profile struct {
	// RotationSigma is the per-epoch standard deviation of each unit's
	// preferred-direction random walk, in radians.
	RotationSigma float64
	// GainSigma is the per-epoch log-normal walk width of each unit's
	// spike amplitude (waveform attenuation as tissue shifts).
	GainSigma float64
	// BaselineSigma is the per-epoch log-normal walk width of each
	// unit's baseline firing rate.
	BaselineSigma float64
	// TurnoverProb is the per-unit per-epoch probability the electrode
	// picks up a replacement unit: fresh preferred direction, pristine
	// gain and rate. A replacement revives a previously lost unit.
	TurnoverProb float64
	// LossProb is the per-unit per-epoch probability the unit drops out
	// of range and stops spiking until a turnover revives it.
	LossProb float64
	// EpochTicks is the drift cadence in pipeline ticks — one epoch is
	// one synthetic recording day. 0 means 100.
	EpochTicks int
}

// DefaultProfile returns a deliberately harsh unit-intensity
// environment: preferred directions wander visibly within a few epochs,
// amplitudes and baselines walk, and a few percent of units turn over or
// vanish each epoch — the stress point stability sweeps scale down from.
func DefaultProfile() Profile {
	return Profile{
		RotationSigma: 0.35,
		GainSigma:     0.10,
		BaselineSigma: 0.10,
		TurnoverProb:  0.05,
		LossProb:      0.02,
		EpochTicks:    100,
	}
}

// clamp01 bounds probabilities to [0, 1].
func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Scale returns the profile with every magnitude and probability
// multiplied by intensity (probabilities clamped to [0, 1]); the epoch
// cadence is kept. Scale(0) disables all drift, Scale(1) is the profile
// itself, and because every epoch draws a fixed number of variates per
// channel, intensities share one random history: a ladder of scaled
// profiles under one seed perturbs the same units in the same epochs.
func (p Profile) Scale(intensity float64) Profile {
	if intensity < 0 {
		intensity = 0
	}
	out := p
	out.RotationSigma = p.RotationSigma * intensity
	out.GainSigma = p.GainSigma * intensity
	out.BaselineSigma = p.BaselineSigma * intensity
	out.TurnoverProb = clamp01(p.TurnoverProb * intensity)
	out.LossProb = clamp01(p.LossProb * intensity)
	// Event probabilities partition the per-unit epoch draw: renormalize
	// when scaling pushes their sum past 1.
	if sum := out.TurnoverProb + out.LossProb; sum > 1 {
		out.TurnoverProb /= sum
		out.LossProb /= sum
	}
	return out
}

// Validate checks the profile's ranges.
func (p Profile) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"RotationSigma", p.RotationSigma},
		{"GainSigma", p.GainSigma},
		{"BaselineSigma", p.BaselineSigma},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("drift: %s %g must be finite and non-negative", f.name, f.v)
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"TurnoverProb", p.TurnoverProb},
		{"LossProb", p.LossProb},
	} {
		if math.IsNaN(f.v) || f.v < 0 || f.v > 1 {
			return fmt.Errorf("drift: %s %g outside [0, 1]", f.name, f.v)
		}
	}
	if p.TurnoverProb+p.LossProb > 1 {
		return fmt.Errorf("drift: event probabilities sum to %g > 1", p.TurnoverProb+p.LossProb)
	}
	if p.EpochTicks < 0 {
		return fmt.Errorf("drift: negative epoch length %d", p.EpochTicks)
	}
	return nil
}

// Enabled reports whether the profile drifts anything at all.
func (p Profile) Enabled() bool {
	return p.RotationSigma > 0 || p.GainSigma > 0 || p.BaselineSigma > 0 ||
		p.TurnoverProb > 0 || p.LossProb > 0
}

// epochTicks returns the defaulted cadence.
func (p Profile) epochTicks() int {
	if p.EpochTicks <= 0 {
		return 100
	}
	return p.EpochTicks
}

// gainFloor bounds the multiplicative walks away from zero and infinity
// so long runs degrade rather than explode or denormalize.
const (
	gainFloor   = 0.05
	gainCeiling = 4.0
)

// Process is one implant's seeded nonstationarity history: the absolute
// per-unit state (preferred-direction angle, rate and amplitude scales,
// liveness) evolved once per epoch from a dedicated random stream. The
// state is absolute so a checkpoint restore can rebuild a pristine
// generator from config and re-apply the process verbatim.
type Process struct {
	p        Profile
	epoch    int // defaulted EpochTicks
	channels int
	rng      *detrand.Rand
	tick     int

	theta     []float64
	rateScale []float64
	ampGain   []float64
	alive     []bool

	epochs    int64
	turnovers int64
	lost      int64
}

// NewProcess builds a drift process over the generator's day-0 unit
// state (its drawn tuning angles and activity mask). A profile with
// nothing enabled returns a nil process — the byte-identity guarantee of
// intensity 0. Ticking a nil process is a no-op.
func NewProcess(p Profile, g *neural.Generator, seed int64) (*Process, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if !p.Enabled() {
		return nil, nil
	}
	theta := g.UnitThetas()
	active := g.UnitActive()
	pr := &Process{
		p:         p,
		epoch:     p.epochTicks(),
		channels:  len(theta),
		rng:       detrand.New(seed),
		theta:     theta,
		rateScale: make([]float64, len(theta)),
		ampGain:   make([]float64, len(theta)),
		alive:     active,
	}
	for c := range pr.rateScale {
		pr.rateScale[c], pr.ampGain[c] = 1, 1
	}
	return pr, nil
}

// Tick advances one pipeline tick; on an epoch boundary (tick EpochTicks,
// 2·EpochTicks, …) the per-unit state takes one random-walk step and is
// applied to the generator. Tick 0 applies nothing — day 0 is pristine,
// so short runs are byte-identical to drift-free runs until the first
// epoch ends. Safe on a nil process (no-op).
func (p *Process) Tick(g *neural.Generator) error {
	if p == nil {
		return nil
	}
	t := p.tick
	p.tick++
	if t == 0 || t%p.epoch != 0 {
		return nil
	}
	p.step()
	return p.Apply(g)
}

// step evolves the per-unit state one epoch. Every channel draws exactly
// five variates regardless of outcome — three walk steps, one event
// uniform, one replacement angle — the fixed-draw-count discipline that
// keeps intensity ladders on one shared random history.
func (p *Process) step() {
	p.epochs++
	for c := 0; c < p.channels; c++ {
		rot := p.rng.NormFloat64()
		gw := p.rng.NormFloat64()
		bw := p.rng.NormFloat64()
		u := p.rng.Float64()
		v := p.rng.Float64()
		switch {
		case u < p.p.LossProb:
			if p.alive[c] {
				p.alive[c] = false
				p.lost++
			}
		case u < p.p.LossProb+p.p.TurnoverProb:
			// A replacement unit: fresh direction, pristine scales.
			p.theta[c] = v * 2 * math.Pi
			p.rateScale[c], p.ampGain[c] = 1, 1
			p.alive[c] = true
			p.turnovers++
		default:
			p.theta[c] += p.p.RotationSigma * rot
			p.ampGain[c] = clampGain(p.ampGain[c] * math.Exp(p.p.GainSigma*gw))
			p.rateScale[c] = clampGain(p.rateScale[c] * math.Exp(p.p.BaselineSigma*bw))
		}
	}
}

func clampGain(g float64) float64 {
	if g < gainFloor {
		return gainFloor
	}
	if g > gainCeiling {
		return gainCeiling
	}
	return g
}

// Apply pushes the process's absolute per-unit state into the generator.
// It is idempotent, so a restore path can re-apply a snapshot verbatim.
func (p *Process) Apply(g *neural.Generator) error {
	if p == nil {
		return nil
	}
	for c := 0; c < p.channels; c++ {
		if err := g.SetUnitState(c, p.theta[c], p.rateScale[c], p.ampGain[c], p.alive[c]); err != nil {
			return err
		}
	}
	return nil
}

// Epochs returns the number of epoch steps taken so far.
func (p *Process) Epochs() int64 {
	if p == nil {
		return 0
	}
	return p.epochs
}

// Turnovers returns the number of unit replacements so far.
func (p *Process) Turnovers() int64 {
	if p == nil {
		return 0
	}
	return p.turnovers
}

// Lost returns the number of unit-loss events so far.
func (p *Process) Lost() int64 {
	if p == nil {
		return 0
	}
	return p.lost
}

// ProcessState is a process's serializable mid-run state: the RNG
// position, the tick counter, the absolute per-unit state and the event
// accounting.
type ProcessState struct {
	RNG       detrand.State
	Tick      int
	Theta     []float64
	RateScale []float64
	AmpGain   []float64
	Alive     []bool
	Epochs    int64
	Turnovers int64
	Lost      int64
}

// Snapshot captures the process's mid-run state. Safe on a nil process
// (returns the zero state).
func (p *Process) Snapshot() ProcessState {
	if p == nil {
		return ProcessState{}
	}
	return ProcessState{
		RNG:       p.rng.State(),
		Tick:      p.tick,
		Theta:     append([]float64(nil), p.theta...),
		RateScale: append([]float64(nil), p.rateScale...),
		AmpGain:   append([]float64(nil), p.ampGain...),
		Alive:     append([]bool(nil), p.alive...),
		Epochs:    p.epochs,
		Turnovers: p.turnovers,
		Lost:      p.lost,
	}
}

// RestoreProcess rebuilds a process mid-stream under the same profile
// and generator, re-applying the absolute unit state when any epoch has
// already elapsed (a pristine process leaves the generator untouched,
// matching a fresh pipeline bit for bit).
func RestoreProcess(p Profile, g *neural.Generator, st ProcessState) (*Process, error) {
	pr, err := NewProcess(p, g, st.RNG.Seed)
	if err != nil {
		return nil, err
	}
	if pr == nil {
		return nil, fmt.Errorf("drift: restore under a disabled profile")
	}
	rng, err := detrand.RestoreInto(pr.rng, st.RNG)
	if err != nil {
		return nil, fmt.Errorf("drift: %w", err)
	}
	if len(st.Theta) != pr.channels || len(st.RateScale) != pr.channels ||
		len(st.AmpGain) != pr.channels || len(st.Alive) != pr.channels {
		return nil, fmt.Errorf("drift: state widths %d/%d/%d/%d do not match %d channels",
			len(st.Theta), len(st.RateScale), len(st.AmpGain), len(st.Alive), pr.channels)
	}
	if st.Tick < 0 {
		return nil, fmt.Errorf("drift: negative tick counter %d", st.Tick)
	}
	if st.Epochs < 0 || st.Turnovers < 0 || st.Lost < 0 {
		return nil, fmt.Errorf("drift: negative event counters")
	}
	for c := 0; c < pr.channels; c++ {
		for _, v := range [...]float64{st.Theta[c], st.RateScale[c], st.AmpGain[c]} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("drift: non-finite unit state for channel %d", c)
			}
		}
		if st.RateScale[c] < 0 || st.AmpGain[c] < 0 {
			return nil, fmt.Errorf("drift: negative unit scale for channel %d", c)
		}
	}
	pr.rng = rng
	pr.tick = st.Tick
	copy(pr.theta, st.Theta)
	copy(pr.rateScale, st.RateScale)
	copy(pr.ampGain, st.AmpGain)
	copy(pr.alive, st.Alive)
	pr.epochs, pr.turnovers, pr.lost = st.Epochs, st.Turnovers, st.Lost
	if pr.epochs > 0 {
		if err := pr.Apply(g); err != nil {
			return nil, err
		}
	}
	return pr, nil
}
