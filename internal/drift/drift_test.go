package drift

import (
	"math"
	"testing"

	"mindful/internal/neural"
	"mindful/internal/units"
)

func testGen(t *testing.T, channels int, seed int64) *neural.Generator {
	t.Helper()
	cfg := neural.DefaultConfig()
	cfg.Channels = channels
	cfg.SampleRate = units.Kilohertz(2)
	cfg.Seed = seed
	g, err := neural.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestProfileScaleZeroDisables(t *testing.T) {
	p := DefaultProfile().Scale(0)
	if p.Enabled() {
		t.Fatalf("Scale(0) still enabled: %+v", p)
	}
	g := testGen(t, 8, 7)
	pr, err := NewProcess(p, g, 99)
	if err != nil {
		t.Fatal(err)
	}
	if pr != nil {
		t.Fatal("Scale(0) produced a live process")
	}
	// A nil process must be safe everywhere.
	if err := pr.Tick(g); err != nil {
		t.Fatal(err)
	}
	if pr.Epochs() != 0 || pr.Turnovers() != 0 || pr.Lost() != 0 {
		t.Fatal("nil process reports events")
	}
}

func TestProfileScaleValidates(t *testing.T) {
	for _, i := range []float64{0, 0.1, 0.5, 1, 2, 10} {
		if err := DefaultProfile().Scale(i).Validate(); err != nil {
			t.Fatalf("Scale(%g): %v", i, err)
		}
	}
	bad := Profile{RotationSigma: math.NaN()}
	if err := bad.Validate(); err == nil {
		t.Fatal("NaN sigma validated")
	}
	bad = Profile{TurnoverProb: 0.7, LossProb: 0.7}
	if err := bad.Validate(); err == nil {
		t.Fatal("event probabilities summing past 1 validated")
	}
	if err := (Profile{EpochTicks: -1}).Validate(); err == nil {
		t.Fatal("negative epoch validated")
	}
}

// TestScaleCommonRandomNumbers: under one seed, the set of units hit by
// turnover/loss at a weaker intensity must be a subset of the set hit at
// a stronger one (nested ladders), because every epoch draws a fixed
// number of variates per channel and events trigger on u < p·intensity.
func TestScaleCommonRandomNumbers(t *testing.T) {
	// Continuous rotation/gain walks touch every unit at any intensity;
	// zero them so only the event-gated turnover/loss channels witness the
	// ladder (theta or liveness changes iff an event fired).
	base := DefaultProfile()
	base.RotationSigma = 0
	base.GainSigma = 0
	base.BaselineSigma = 0
	base.EpochTicks = 10
	const channels, ticks = 32, 200

	eventsAt := func(intensity float64) map[int]bool {
		g := testGen(t, channels, 3)
		pr, err := NewProcess(base.Scale(intensity), g, 1234)
		if err != nil {
			t.Fatal(err)
		}
		init := g.UnitThetas()
		for i := 0; i < ticks; i++ {
			if err := pr.Tick(g); err != nil {
				t.Fatal(err)
			}
		}
		st := pr.Snapshot()
		hit := map[int]bool{}
		for c := range st.Theta {
			// With the continuous walks zeroed, theta only moves on a
			// turnover replacement and liveness only flips on a loss —
			// both event-gated, so a hit witnesses u < p·intensity.
			if !st.Alive[c] || st.Theta[c] != init[c] {
				hit[c] = true
			}
		}
		return hit
	}

	weak := eventsAt(0.25)
	strong := eventsAt(1.0)
	for c := range weak {
		if !strong[c] {
			t.Fatalf("channel %d perturbed at intensity 0.25 but untouched at 1.0 — CRN ladder broken", c)
		}
	}
	if len(strong) <= len(weak) {
		t.Fatalf("stronger intensity touched %d units, weaker %d — no monotone growth", len(strong), len(weak))
	}
}

// TestProcessDeterministic: the same (profile, generator seed, process
// seed) triple must produce an identical drift history.
func TestProcessDeterministic(t *testing.T) {
	run := func() ProcessState {
		g := testGen(t, 16, 5)
		pr, err := NewProcess(DefaultProfile(), g, 42)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 350; i++ {
			if err := pr.Tick(g); err != nil {
				t.Fatal(err)
			}
		}
		return pr.Snapshot()
	}
	a, b := run(), run()
	if a.RNG != b.RNG || a.Epochs != b.Epochs || a.Turnovers != b.Turnovers || a.Lost != b.Lost {
		t.Fatalf("drift histories diverge: %+v vs %+v", a, b)
	}
	for c := range a.Theta {
		if a.Theta[c] != b.Theta[c] || a.RateScale[c] != b.RateScale[c] ||
			a.AmpGain[c] != b.AmpGain[c] || a.Alive[c] != b.Alive[c] {
			t.Fatalf("channel %d state diverges", c)
		}
	}
}

// TestProcessSnapshotRestore: restore at tick K and continue — the final
// state must equal an uninterrupted run's, and the restored process must
// have re-applied its absolute unit state to the fresh generator.
func TestProcessSnapshotRestore(t *testing.T) {
	const ticks, snapAt = 400, 250
	p := DefaultProfile()

	g1 := testGen(t, 16, 5)
	pr1, err := NewProcess(p, g1, 42)
	if err != nil {
		t.Fatal(err)
	}
	var mid ProcessState
	for i := 0; i < ticks; i++ {
		if i == snapAt {
			mid = pr1.Snapshot()
		}
		if err := pr1.Tick(g1); err != nil {
			t.Fatal(err)
		}
	}
	want := pr1.Snapshot()

	g2 := testGen(t, 16, 5)
	pr2, err := RestoreProcess(p, g2, mid)
	if err != nil {
		t.Fatal(err)
	}
	for i := snapAt; i < ticks; i++ {
		if err := pr2.Tick(g2); err != nil {
			t.Fatal(err)
		}
	}
	got := pr2.Snapshot()
	if got.RNG != want.RNG || got.Epochs != want.Epochs || got.Turnovers != want.Turnovers || got.Lost != want.Lost {
		t.Fatalf("restored continuation diverges: %+v vs %+v", got, want)
	}
	for c := range want.Theta {
		if got.Theta[c] != want.Theta[c] || got.Alive[c] != want.Alive[c] {
			t.Fatalf("channel %d restored state diverges", c)
		}
	}
}

func TestRestoreProcessRejects(t *testing.T) {
	g := testGen(t, 8, 1)
	pr, err := NewProcess(DefaultProfile(), g, 9)
	if err != nil {
		t.Fatal(err)
	}
	good := pr.Snapshot()

	bad := good
	bad.Theta = good.Theta[:4]
	if _, err := RestoreProcess(DefaultProfile(), g, bad); err == nil {
		t.Fatal("short theta accepted")
	}
	bad = good
	bad.Theta = append([]float64(nil), good.Theta...)
	bad.Theta[0] = math.NaN()
	if _, err := RestoreProcess(DefaultProfile(), g, bad); err == nil {
		t.Fatal("NaN theta accepted")
	}
	bad = good
	bad.Tick = -1
	if _, err := RestoreProcess(DefaultProfile(), g, bad); err == nil {
		t.Fatal("negative tick accepted")
	}
	if _, err := RestoreProcess(Profile{}, g, good); err == nil {
		t.Fatal("restore under disabled profile accepted")
	}
}

// TestDriftChangesSignal: an enabled process must actually change the
// generated samples after the first epoch (the workload is real), while
// the pre-epoch prefix stays byte-identical to a drift-free run.
func TestDriftChangesSignal(t *testing.T) {
	p := DefaultProfile()
	p.EpochTicks = 50
	run := func(enabled bool) [][]float64 {
		g := testGen(t, 16, 5)
		var pr *Process
		if enabled {
			var err error
			if pr, err = NewProcess(p, g, 42); err != nil {
				t.Fatal(err)
			}
		}
		out := make([][]float64, 0, 200)
		for i := 0; i < 200; i++ {
			if err := pr.Tick(g); err != nil {
				t.Fatal(err)
			}
			g.SetIntent(math.Cos(float64(i)/30), math.Sin(float64(i)/30))
			out = append(out, g.Next())
		}
		return out
	}
	clean, drifted := run(false), run(true)
	for i := 0; i < p.EpochTicks; i++ {
		for c := range clean[i] {
			if clean[i][c] != drifted[i][c] {
				t.Fatalf("pre-epoch sample %d/%d differs — day 0 must be pristine", i, c)
			}
		}
	}
	diverged := false
	for i := p.EpochTicks; i < len(clean) && !diverged; i++ {
		for c := range clean[i] {
			if clean[i][c] != drifted[i][c] {
				diverged = true
				break
			}
		}
	}
	if !diverged {
		t.Fatal("drift enabled but the sample stream never changed")
	}
}
