package drift

import (
	"errors"
	"fmt"
	"math"
)

// Meter errors. Degenerate inputs are contract violations the caller
// must see — the metric never silently returns NaN or panics.
var (
	// ErrEmptyObservation is returned for a zero-length rate vector.
	ErrEmptyObservation = errors.New("drift: empty rate observation")
	// ErrNonFinite is returned when an observed rate is NaN or Inf.
	ErrNonFinite = errors.New("drift: non-finite rate observation")
	// ErrNotReady is returned by KL before both windows hold data.
	ErrNotReady = errors.New("drift: windows not yet filled")
	// ErrDegenerate is returned when a window's variance vanishes — a
	// KL divergence between point masses is undefined, not infinite.
	ErrDegenerate = errors.New("drift: zero-variance window")
)

// Meter is MINDFUL's core instability measurement, simplified to the
// binned-rate features the decode stage already extracts: it freezes the
// first RefBins observations as the reference distribution (the
// "calibration day") and maintains a sliding window of the most recent
// WinBins, reporting the KL divergence between diagonal-Gaussian fits of
// the two — 0 for a stationary signal, growing as tuning rotates, units
// turn over and baselines walk.
//
// The meter is pure arithmetic: no randomness, allocation-free after
// construction, and fully serializable (MeterState), so it rides inside
// checkpointed pipelines.
type Meter struct {
	channels int
	refBins  int
	winBins  int

	refSum   []float64
	refSqSum []float64
	refCount int

	ring     []float64 // winBins × channels, oldest overwritten
	ringHead int
	ringFill int

	// scratch for KL (per-channel moments of the sliding window)
	meanBuf, varBuf []float64
}

// NewMeter builds an instability meter over rate vectors of the given
// width. refBins and winBins default to 16 when 0.
func NewMeter(channels, refBins, winBins int) (*Meter, error) {
	if channels < 1 {
		return nil, fmt.Errorf("drift: meter needs at least one channel, got %d", channels)
	}
	if refBins == 0 {
		refBins = 16
	}
	if winBins == 0 {
		winBins = 16
	}
	if refBins < 2 || winBins < 2 {
		return nil, fmt.Errorf("drift: meter windows %d/%d need at least 2 bins", refBins, winBins)
	}
	return &Meter{
		channels: channels,
		refBins:  refBins,
		winBins:  winBins,
		refSum:   make([]float64, channels),
		refSqSum: make([]float64, channels),
		ring:     make([]float64, winBins*channels),
		meanBuf:  make([]float64, channels),
		varBuf:   make([]float64, channels),
	}, nil
}

// Observe feeds one binned-rate vector. The first RefBins observations
// build the frozen reference; every observation enters the sliding
// window. Degenerate input — wrong width, empty, non-finite — is an
// error and leaves the meter unchanged.
func (m *Meter) Observe(rates []float64) error {
	if len(rates) == 0 {
		return ErrEmptyObservation
	}
	if len(rates) != m.channels {
		return fmt.Errorf("drift: observation width %d != %d channels", len(rates), m.channels)
	}
	for i, v := range rates {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: rates[%d] = %v", ErrNonFinite, i, v)
		}
	}
	if m.refCount < m.refBins {
		for c, v := range rates {
			m.refSum[c] += v
			m.refSqSum[c] += v * v
		}
		m.refCount++
	}
	copy(m.ring[m.ringHead*m.channels:(m.ringHead+1)*m.channels], rates)
	m.ringHead = (m.ringHead + 1) % m.winBins
	if m.ringFill < m.winBins {
		m.ringFill++
	}
	return nil
}

// Ready reports whether both windows hold enough data for KL.
func (m *Meter) Ready() bool {
	return m.refCount >= m.refBins && m.ringFill >= m.winBins
}

// varianceFloor regularizes the per-channel variances: binned rates from
// a quantized front end can sit constant over a short window without the
// underlying distribution being a point mass.
const varianceFloor = 1e-9

// KL returns the summed per-channel KL divergence D(recent ‖ reference)
// between diagonal-Gaussian fits of the sliding and reference windows.
// It errors — never NaN, never panics — while the windows are unfilled
// or when every channel's variance vanishes.
func (m *Meter) KL() (float64, error) {
	if !m.Ready() {
		return 0, ErrNotReady
	}
	// Sliding-window moments, recomputed from the ring: no running
	// subtract-on-evict, so the value is a pure function of the window
	// contents regardless of history length.
	n := float64(m.ringFill)
	for c := 0; c < m.channels; c++ {
		m.meanBuf[c], m.varBuf[c] = 0, 0
	}
	for b := 0; b < m.ringFill; b++ {
		row := m.ring[b*m.channels : (b+1)*m.channels]
		for c, v := range row {
			m.meanBuf[c] += v
		}
	}
	for c := range m.meanBuf {
		m.meanBuf[c] /= n
	}
	for b := 0; b < m.ringFill; b++ {
		row := m.ring[b*m.channels : (b+1)*m.channels]
		for c, v := range row {
			d := v - m.meanBuf[c]
			m.varBuf[c] += d * d
		}
	}

	refN := float64(m.refCount)
	kl := 0.0
	degenerate := true
	for c := 0; c < m.channels; c++ {
		refMean := m.refSum[c] / refN
		refVar := m.refSqSum[c]/refN - refMean*refMean
		winVar := m.varBuf[c] / n
		if refVar > varianceFloor || winVar > varianceFloor {
			degenerate = false
		}
		if refVar < varianceFloor {
			refVar = varianceFloor
		}
		if winVar < varianceFloor {
			winVar = varianceFloor
		}
		d := m.meanBuf[c] - refMean
		kl += 0.5 * (math.Log(refVar/winVar) + (winVar+d*d)/refVar - 1)
	}
	if degenerate {
		return 0, ErrDegenerate
	}
	if math.IsNaN(kl) || math.IsInf(kl, 0) {
		return 0, ErrDegenerate
	}
	return kl, nil
}

// MeterState is a meter's serializable mid-run state.
type MeterState struct {
	RefSum   []float64
	RefSqSum []float64
	RefCount int
	Ring     []float64
	RingHead int
	RingFill int
}

// Snapshot captures the meter's mid-run state.
func (m *Meter) Snapshot() MeterState {
	return MeterState{
		RefSum:   append([]float64(nil), m.refSum...),
		RefSqSum: append([]float64(nil), m.refSqSum...),
		RefCount: m.refCount,
		Ring:     append([]float64(nil), m.ring...),
		RingHead: m.ringHead,
		RingFill: m.ringFill,
	}
}

// RestoreMeter rebuilds a meter mid-stream with the same geometry.
func RestoreMeter(channels, refBins, winBins int, st MeterState) (*Meter, error) {
	m, err := NewMeter(channels, refBins, winBins)
	if err != nil {
		return nil, err
	}
	if len(st.RefSum) != m.channels || len(st.RefSqSum) != m.channels || len(st.Ring) != len(m.ring) {
		return nil, fmt.Errorf("drift: meter state widths %d/%d/%d do not match geometry %d/%d",
			len(st.RefSum), len(st.RefSqSum), len(st.Ring), m.channels, len(m.ring))
	}
	if st.RefCount < 0 || st.RefCount > m.refBins {
		return nil, fmt.Errorf("drift: reference fill %d outside 0..%d", st.RefCount, m.refBins)
	}
	if st.RingHead < 0 || st.RingHead >= m.winBins || st.RingFill < 0 || st.RingFill > m.winBins {
		return nil, fmt.Errorf("drift: ring position %d/%d outside window %d", st.RingHead, st.RingFill, m.winBins)
	}
	for _, v := range st.RefSum {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("drift: %w in meter state", ErrNonFinite)
		}
	}
	for _, v := range st.RefSqSum {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("drift: %w in meter state", ErrNonFinite)
		}
	}
	for _, v := range st.Ring {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("drift: %w in meter state", ErrNonFinite)
		}
	}
	copy(m.refSum, st.RefSum)
	copy(m.refSqSum, st.RefSqSum)
	m.refCount = st.RefCount
	copy(m.ring, st.Ring)
	m.ringHead = st.RingHead
	m.ringFill = st.RingFill
	return m, nil
}
