package drift

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

func feedGaussian(t *testing.T, m *Meter, rng *rand.Rand, bins, channels int, mean, sd float64) {
	t.Helper()
	row := make([]float64, channels)
	for b := 0; b < bins; b++ {
		for c := range row {
			row[c] = mean + sd*rng.NormFloat64()
		}
		if err := m.Observe(row); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMeterStationaryNearZero: a stationary stream's KL must be small,
// and a mean-shifted stream's much larger.
func TestMeterStationaryNearZero(t *testing.T) {
	m, err := NewMeter(8, 32, 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	feedGaussian(t, m, rng, 64, 8, 0.5, 0.1)
	stationary, err := m.KL()
	if err != nil {
		t.Fatal(err)
	}
	feedGaussian(t, m, rng, 32, 8, 1.5, 0.1) // shift the window off the reference
	shifted, err := m.KL()
	if err != nil {
		t.Fatal(err)
	}
	if stationary < 0 || shifted < 0 {
		t.Fatalf("negative KL: %g / %g", stationary, shifted)
	}
	if shifted < 10*stationary+1 {
		t.Fatalf("mean shift barely moved KL: stationary %g, shifted %g", stationary, shifted)
	}
}

// TestMeterDegenerateInputs: the unit table the ISSUE demands — empty
// windows, zero-variance windows and non-finite rates are errors, never
// NaN and never a panic.
func TestMeterDegenerateInputs(t *testing.T) {
	m, err := NewMeter(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}

	if err := m.Observe(nil); !errors.Is(err, ErrEmptyObservation) {
		t.Fatalf("empty observation: got %v", err)
	}
	if err := m.Observe([]float64{1, 2}); err == nil {
		t.Fatal("width mismatch accepted")
	}
	for _, bad := range [][]float64{
		{math.NaN(), 0, 0, 0},
		{0, math.Inf(1), 0, 0},
		{0, 0, math.Inf(-1), 0},
	} {
		if err := m.Observe(bad); !errors.Is(err, ErrNonFinite) {
			t.Fatalf("non-finite observation %v: got %v", bad, err)
		}
	}

	// Unfilled windows: KL must refuse, not extrapolate.
	if _, err := m.KL(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("KL on empty meter: got %v", err)
	}
	if err := m.Observe([]float64{1, 1, 1, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.KL(); !errors.Is(err, ErrNotReady) {
		t.Fatalf("KL on partial windows: got %v", err)
	}

	// Zero-variance (constant) windows: degenerate, not ±Inf.
	for i := 0; i < 8; i++ {
		if err := m.Observe([]float64{1, 1, 1, 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.KL(); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("KL on constant stream: got %v", err)
	}

	// A failed Observe must leave the meter unchanged: the constant
	// stream verdict still holds after rejected inputs.
	_ = m.Observe([]float64{math.NaN(), 1, 1, 1})
	if _, err := m.KL(); !errors.Is(err, ErrDegenerate) {
		t.Fatalf("rejected observation mutated the meter: %v", err)
	}

	if _, err := NewMeter(0, 4, 4); err == nil {
		t.Fatal("zero channels accepted")
	}
	if _, err := NewMeter(4, 1, 4); err == nil {
		t.Fatal("one-bin reference accepted")
	}
}

// TestMeterKLProperty: for randomized window geometries and finite
// random inputs, KL either errors or returns a finite non-negative value
// — the property test over the metric's whole input space.
func TestMeterKLProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 200; iter++ {
		channels := 1 + rng.Intn(12)
		refBins := 2 + rng.Intn(12)
		winBins := 2 + rng.Intn(12)
		m, err := NewMeter(channels, refBins, winBins)
		if err != nil {
			t.Fatal(err)
		}
		row := make([]float64, channels)
		feeds := rng.Intn(3 * (refBins + winBins))
		for f := 0; f < feeds; f++ {
			for c := range row {
				switch rng.Intn(8) {
				case 0:
					row[c] = 0 // zero-count bin
				case 1:
					row[c] = float64(rng.Intn(3)) * 1e6 // extreme rate
				default:
					row[c] = rng.NormFloat64()
				}
			}
			if err := m.Observe(row); err != nil {
				t.Fatalf("finite observation rejected: %v", err)
			}
			kl, err := m.KL()
			if err != nil {
				if !errors.Is(err, ErrNotReady) && !errors.Is(err, ErrDegenerate) {
					t.Fatalf("unexpected KL error: %v", err)
				}
				continue
			}
			if math.IsNaN(kl) || math.IsInf(kl, 0) {
				t.Fatalf("non-finite KL %v from finite inputs", kl)
			}
			if kl < -1e-9 {
				t.Fatalf("negative KL %v", kl)
			}
		}
	}
}

// TestMeterSnapshotRestore: a restored meter must report the identical
// KL trajectory as the uninterrupted one.
func TestMeterSnapshotRestore(t *testing.T) {
	const channels, refBins, winBins = 6, 8, 8
	m1, err := NewMeter(channels, refBins, winBins)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	feedGaussian(t, m1, rng, 20, channels, 1, 0.3)
	st := m1.Snapshot()

	m2, err := RestoreMeter(channels, refBins, winBins, st)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float64, channels)
	for b := 0; b < 10; b++ {
		for c := range row {
			row[c] = 2 + 0.3*rng.NormFloat64()
		}
		if err := m1.Observe(append([]float64(nil), row...)); err != nil {
			t.Fatal(err)
		}
		if err := m2.Observe(row); err != nil {
			t.Fatal(err)
		}
		k1, e1 := m1.KL()
		k2, e2 := m2.KL()
		if (e1 == nil) != (e2 == nil) || k1 != k2 {
			t.Fatalf("restored meter diverges at bin %d: %v/%v vs %v/%v", b, k1, e1, k2, e2)
		}
	}
}

func TestRestoreMeterRejects(t *testing.T) {
	m, err := NewMeter(4, 4, 4)
	if err != nil {
		t.Fatal(err)
	}
	good := m.Snapshot()

	bad := good
	bad.Ring = good.Ring[:3]
	if _, err := RestoreMeter(4, 4, 4, bad); err == nil {
		t.Fatal("short ring accepted")
	}
	bad = good
	bad.RefCount = 99
	if _, err := RestoreMeter(4, 4, 4, bad); err == nil {
		t.Fatal("overfull reference accepted")
	}
	bad = good
	bad.RingHead = 7
	if _, err := RestoreMeter(4, 4, 4, bad); err == nil {
		t.Fatal("ring head outside window accepted")
	}
	bad = m.Snapshot()
	bad.RefSum = append([]float64(nil), bad.RefSum...)
	bad.RefSum[0] = math.Inf(1)
	if _, err := RestoreMeter(4, 4, 4, bad); err == nil {
		t.Fatal("non-finite reference accepted")
	}
}

// FuzzInstabilityMetric: arbitrary byte-derived geometries and rate
// streams must never panic and never produce a non-finite KL without an
// error — the fuzz target make fuzz-smoke runs.
func FuzzInstabilityMetric(f *testing.F) {
	f.Add([]byte{4, 4, 4, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{1, 2, 2, 0, 0, 0, 0})
	f.Add([]byte{8, 3, 3, 255, 254, 253, 252})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 3 {
			return
		}
		channels := int(data[0]%16) + 1
		refBins := int(data[1]%8) + 2
		winBins := int(data[2]%8) + 2
		m, err := NewMeter(channels, refBins, winBins)
		if err != nil {
			t.Fatalf("valid geometry rejected: %v", err)
		}
		payload := data[3:]
		row := make([]float64, channels)
		for len(payload) >= channels {
			for c := 0; c < channels; c++ {
				b := payload[c]
				switch {
				case b == 255:
					row[c] = math.NaN()
				case b == 254:
					row[c] = math.Inf(1)
				case b == 253:
					row[c] = math.Inf(-1)
				default:
					row[c] = (float64(b) - 128) / 8
				}
			}
			payload = payload[channels:]
			if err := m.Observe(row); err != nil {
				continue // rejected inputs must leave the meter usable
			}
			kl, err := m.KL()
			if err == nil && (math.IsNaN(kl) || math.IsInf(kl, 0)) {
				t.Fatalf("non-finite KL %v without error", kl)
			}
		}
		// The meter must still round-trip through its snapshot.
		if _, err := RestoreMeter(channels, refBins, winBins, m.Snapshot()); err != nil {
			t.Fatalf("snapshot of live meter does not restore: %v", err)
		}
	})
}
