package serve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"mindful/internal/fleet"
	"mindful/internal/obs"
	"mindful/internal/serve/checkpoint"
)

// Session states.
const (
	// StateRunning: the tick loop is stepping the pipeline.
	StateRunning = "running"
	// StatePaused: the tick loop is blocked on the condition variable;
	// the pipeline is quiescent and snapshots are instant.
	StatePaused = "paused"
	// StateDone: the tick target was reached (or the pipeline failed);
	// subscribers have been flushed and the session awaits snapshot or
	// deletion.
	StateDone = "done"
	// StateStopped: the session was deleted or drained; the pipeline is
	// released and only the final result remains readable.
	StateStopped = "stopped"
)

// Session hosts one implant pipeline behind the gateway: a dedicated
// tick-loop goroutine steps it, publishing every delivered frame to the
// attached subscribers. All pipeline access — stepping, snapshotting,
// result reads — happens under mu, so a snapshot waits at most one tick.
type Session struct {
	// ID is the gateway-assigned session identifier.
	ID string

	srv *Server
	cfg checkpoint.SessionConfig

	mu        sync.Mutex
	cond      *sync.Cond
	state     string
	p         *fleet.Pipeline
	target    int // tick target; 0 = run until deleted
	err       error
	final     *fleet.ImplantResult // result frozen when the loop exits
	finalTick int

	published atomic.Int64 // frames published to the fan-out
	decoded   atomic.Int64 // decoded-kinematics records published
	dropped   atomic.Int64 // frames dropped by full subscriber queues
	evicted   atomic.Int64 // subscribers evicted for stalling

	// lastActive is the wall clock (UnixNano) of the session's last
	// publication (frame or decoded record), seeded at creation — the
	// introspection endpoint's last-activity field.
	lastActive atomic.Int64
	// marks holds the previous tick's fault counters for the flight
	// recorder's fault-path event diffing; only maintained (under mu)
	// when an event log is attached.
	marks faultMarks

	subMu sync.Mutex
	subs  map[*subscriber]struct{}

	done chan struct{} // closed when the tick loop exits
}

// newSession builds a session around an existing pipeline (fresh or
// restored) and starts its tick loop.
func newSession(srv *Server, id string, cfg checkpoint.SessionConfig, p *fleet.Pipeline, target int, paused bool) *Session {
	s := &Session{
		ID:     id,
		srv:    srv,
		cfg:    cfg,
		state:  StateRunning,
		p:      p,
		target: target,
		subs:   make(map[*subscriber]struct{}),
		done:   make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	s.lastActive.Store(time.Now().UnixNano())
	if paused {
		s.state = StatePaused
	}
	if srv.eventsEnabled() {
		// Baseline the fault marks from the pipeline's current counters so
		// a restored session does not replay its history as fresh events.
		res := p.Result()
		s.marks = faultMarks{arqFailed: res.ARQFailed, concealed: res.Concealed, blanked: res.Blanked}
	}
	p.OnDeliver(s.publish)
	if s.hasDecoder() {
		p.OnDecode(s.publishDecoded)
	}
	if cfg.Adapt {
		p.OnRefit(s.recordRefit)
	}
	go s.run()
	return s
}

// recordRefit is the pipeline's OnRefit hook: one flight-recorder event
// and metric bump per applied recalibration, tagged with the instability
// reading that accompanied it. Runs on the tick loop via Step, so it
// needs no locking of its own.
func (s *Session) recordRefit(tick int, refits int64, kl float64) {
	s.srv.mRefits.Inc()
	s.srv.mKL.Set(kl)
	s.srv.event("decoder_refit", s.ID, "",
		obs.EventAttr{Key: "tick", Val: float64(tick)},
		obs.EventAttr{Key: "refits", Val: float64(refits)},
		obs.EventAttr{Key: "kl", Val: kl})
}

// hasDecoder reports whether the session's pipeline runs a decode
// stage, i.e. whether decoded-mode subscriptions make sense.
func (s *Session) hasDecoder() bool {
	return s.cfg.Decoder != "" && s.cfg.Decoder != "none"
}

// run is the tick loop: step while running, wait while paused, finish at
// the target. It owns no resources — cleanup happens in stop().
func (s *Session) run() {
	defer close(s.done)
	interval := s.srv.cfg.TickInterval
	for {
		s.mu.Lock()
		for s.state == StatePaused {
			s.cond.Wait()
		}
		if s.state == StateStopped {
			s.freezeLocked()
			s.mu.Unlock()
			return
		}
		if s.target > 0 && s.p.Tick() >= s.target {
			s.state = StateDone
			s.freezeLocked()
			s.mu.Unlock()
			s.finishSubscribers()
			return
		}
		err := s.p.Step()
		if err != nil {
			s.err = err
			s.state = StateDone
			s.freezeLocked()
			s.mu.Unlock()
			s.finishSubscribers()
			return
		}
		s.srv.obsTick()
		if s.srv.eventsEnabled() {
			s.recordFaultEventsLocked()
		}
		s.mu.Unlock()
		if interval > 0 {
			time.Sleep(interval)
		}
	}
}

// faultMarks is the previous tick's fault-counter snapshot, the basis
// for edge-triggered fault-path events.
type faultMarks struct {
	arqFailed int64
	concealed int64
	blanked   int64
	// concealing/blanking report whether the *previous* tick advanced the
	// corresponding counter — the state that turns per-tick deltas into
	// onset events.
	concealing bool
	blanking   bool
}

// recordFaultEventsLocked diffs the pipeline's fault counters against
// the previous tick and records edge-triggered flight-recorder events:
// every ARQ budget exhaustion, and the onsets of concealment runs and
// brownouts (not every tick inside one). Callers hold mu; only invoked
// when an event log is attached.
func (s *Session) recordFaultEventsLocked() {
	res := s.p.Result()
	tick := obs.EventAttr{Key: "tick", Val: float64(s.p.Tick() - 1)}
	if d := res.ARQFailed - s.marks.arqFailed; d > 0 {
		s.srv.event("arq_exhausted", s.ID, "", tick,
			obs.EventAttr{Key: "frames", Val: float64(d)})
	}
	concealing := res.Concealed > s.marks.concealed
	if concealing && !s.marks.concealing {
		s.srv.event("concealment_run", s.ID, "", tick,
			obs.EventAttr{Key: "concealed_total", Val: float64(res.Concealed)})
	}
	blanking := res.Blanked > s.marks.blanked
	if blanking && !s.marks.blanking {
		s.srv.event("brownout_onset", s.ID, "", tick,
			obs.EventAttr{Key: "blanked_total", Val: float64(res.Blanked)})
	}
	s.marks = faultMarks{
		arqFailed:  res.ARQFailed,
		concealed:  res.Concealed,
		blanked:    res.Blanked,
		concealing: concealing,
		blanking:   blanking,
	}
}

// freezeLocked records the final result while the pipeline is still
// open. Callers hold mu.
func (s *Session) freezeLocked() {
	if s.final == nil && s.p != nil {
		res := s.p.Result()
		s.final = &res
		s.finalTick = s.p.Tick()
	}
}

// publish fans one delivered frame out to every subscriber. It runs
// inside Pipeline.Step, i.e. under mu; the fan-out itself only takes
// subMu and the per-subscriber locks, and never blocks on a slow
// consumer (full queues drop their oldest record).
func (s *Session) publish(tick int, data []byte, accepted bool) {
	s.published.Add(1)
	s.srv.obsPublished()
	now := time.Now().UnixNano()
	s.lastActive.Store(now)
	s.subMu.Lock()
	if len(s.subs) == 0 {
		s.subMu.Unlock()
		return
	}
	var flags byte
	if accepted {
		flags |= RecordFlagAccepted
	}
	rec := record{
		tick:      uint64(tick),
		publishNs: now,
		flags:     flags,
		data:      append([]byte(nil), data...), // shared, read-only
	}
	for sub := range s.subs {
		if !sub.decoded {
			sub.push(rec)
		}
	}
	s.subMu.Unlock()
}

// publishDecoded fans one decoder step out to the decoded-mode
// subscribers. Like publish it runs inside Pipeline.Step; the estimate
// is serialized as big-endian float64s so the payload is byte-stable
// across platforms.
func (s *Session) publishDecoded(tick int, estimate []float64, concealed int) {
	s.decoded.Add(1)
	s.srv.obsDecoded()
	now := time.Now().UnixNano()
	s.lastActive.Store(now)
	s.subMu.Lock()
	if len(s.subs) == 0 {
		s.subMu.Unlock()
		return
	}
	flags := RecordFlagDecoded
	if concealed > 0 {
		flags |= RecordFlagConcealedBin
	}
	data := make([]byte, 0, 8*len(estimate))
	for _, v := range estimate {
		data = binary.BigEndian.AppendUint64(data, math.Float64bits(v))
	}
	rec := record{
		tick:      uint64(tick),
		publishNs: now,
		flags:     flags,
		data:      data,
	}
	for sub := range s.subs {
		if sub.decoded {
			sub.push(rec)
		}
	}
	s.subMu.Unlock()
}

// attach registers a subscriber; it fails once the session can publish
// nothing more.
func (s *Session) attach(sub *subscriber) error {
	s.mu.Lock()
	st := s.state
	s.mu.Unlock()
	if st == StateDone || st == StateStopped {
		return fmt.Errorf("serve: session %s is %s", s.ID, st)
	}
	s.subMu.Lock()
	s.subs[sub] = struct{}{}
	s.subMu.Unlock()
	s.srv.obsSubscribers(+1)
	return nil
}

// detach unregisters a subscriber (idempotent); evicted marks a
// stall-policy eviction rather than a clean disconnect.
func (s *Session) detach(sub *subscriber, evicted bool) {
	s.subMu.Lock()
	_, present := s.subs[sub]
	delete(s.subs, sub)
	s.subMu.Unlock()
	if !present {
		return
	}
	s.srv.obsSubscribers(-1)
	if evicted {
		s.evicted.Add(1)
		s.srv.obsEvicted()
		s.srv.event("subscriber_evict", s.ID, "stall",
			obs.EventAttr{Key: "dropped", Val: float64(sub.droppedCount())})
	}
}

// finishSubscribers lets every subscriber flush its queue and then
// close — the end-of-session drain.
func (s *Session) finishSubscribers() {
	s.subMu.Lock()
	subs := make([]*subscriber, 0, len(s.subs))
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	s.subMu.Unlock()
	for _, sub := range subs {
		sub.finish()
	}
}

// pause suspends the tick loop at the next tick boundary.
func (s *Session) pause() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case StateRunning:
		s.state = StatePaused
		s.srv.event("session_pause", s.ID, "",
			obs.EventAttr{Key: "tick", Val: float64(s.p.Tick())})
		return nil
	case StatePaused:
		return nil
	default:
		return fmt.Errorf("serve: cannot pause a %s session", s.state)
	}
}

// resume restarts a paused tick loop.
func (s *Session) resume() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch s.state {
	case StatePaused:
		s.state = StateRunning
		s.cond.Broadcast()
		s.srv.event("session_resume", s.ID, "",
			obs.EventAttr{Key: "tick", Val: float64(s.p.Tick())})
		return nil
	case StateRunning:
		return nil
	default:
		return fmt.Errorf("serve: cannot resume a %s session", s.state)
	}
}

// snapshot serializes the session's full state. It blocks the tick loop
// for the duration of one encode.
func (s *Session) snapshot() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.p == nil {
		return nil, errors.New("serve: session already released")
	}
	if s.err != nil {
		return nil, fmt.Errorf("%w: %v", errSessionFailed, s.err)
	}
	blob, err := checkpoint.Snapshot(s.cfg, s.p)
	if err == nil {
		s.srv.event("session_snapshot", s.ID, "",
			obs.EventAttr{Key: "tick", Val: float64(s.p.Tick())},
			obs.EventAttr{Key: "bytes", Val: float64(len(blob))})
	}
	return blob, err
}

// exportSnapshot freezes the session for migration: a running tick
// loop is paused at its next boundary (done sessions snapshot as-is),
// then the full state is serialized under the same lock hold so the
// blob and the reported tick cannot diverge. The session stays paused —
// the migration coordinator deletes it after a successful import on the
// target shard, or resumes it to abort.
func (s *Session) exportSnapshot() ([]byte, int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.p == nil {
		return nil, 0, errors.New("serve: session already released")
	}
	if s.err != nil {
		return nil, 0, fmt.Errorf("%w: %v", errSessionFailed, s.err)
	}
	if s.state == StateRunning {
		s.state = StatePaused
		s.srv.event("session_pause", s.ID, "export",
			obs.EventAttr{Key: "tick", Val: float64(s.p.Tick())})
	}
	blob, err := checkpoint.Snapshot(s.cfg, s.p)
	if err != nil {
		return nil, 0, err
	}
	s.srv.event("session_export", s.ID, "",
		obs.EventAttr{Key: "tick", Val: float64(s.p.Tick())},
		obs.EventAttr{Key: "bytes", Val: float64(len(blob))})
	return blob, s.p.Tick(), nil
}

// halt stops the tick loop (if still running) and waits for it to exit.
// The pipeline stays open so a final snapshot can still be taken.
func (s *Session) halt() {
	s.mu.Lock()
	if s.state == StateRunning || s.state == StatePaused {
		s.state = StateStopped
		s.cond.Broadcast()
	}
	s.mu.Unlock()
	<-s.done
}

// release closes every subscriber and the pipeline. halt must have been
// called first.
func (s *Session) release() {
	s.subMu.Lock()
	subs := make([]*subscriber, 0, len(s.subs))
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	s.subMu.Unlock()
	for _, sub := range subs {
		sub.close()
		s.detach(sub, false)
	}
	s.mu.Lock()
	s.freezeLocked()
	if s.p != nil {
		s.p.Close()
		s.p = nil
	}
	s.mu.Unlock()
}

// SessionInfo is the control plane's view of one session.
type SessionInfo struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Tick        int    `json:"tick"`
	Target      int    `json:"ticks"`
	Subscribers int    `json:"subscribers"`
	Published   int64  `json:"frames_published"`
	Dropped     int64  `json:"dropped_frames"`
	Evicted     int64  `json:"evicted_subscribers"`
	// Digest is the pipeline's FNV-1a output digest as a decimal string
	// (JSON numbers lose uint64 precision).
	Digest string `json:"digest"`
	// Frames/Accepted/Concealed summarize the pipeline's accounting.
	Frames    int64 `json:"frames"`
	Accepted  int64 `json:"frames_accepted"`
	Concealed int64 `json:"frames_concealed"`
	// Decoder names the session's decoder ("" when decoding is off);
	// the remaining fields mirror the pipeline's decode accounting.
	// DecodeDigest is a decimal string for the same reason Digest is.
	Decoder          string `json:"decoder,omitempty"`
	DecodedSteps     int64  `json:"decoded_steps,omitempty"`
	DecodedPublished int64  `json:"decoded_published,omitempty"`
	DecodeDigest     string `json:"decode_digest,omitempty"`
	Error            string `json:"error,omitempty"`
}

// info reports the session's current state.
func (s *Session) info() SessionInfo {
	s.mu.Lock()
	var res fleet.ImplantResult
	var tick int
	switch {
	case s.final != nil:
		res = *s.final
		tick = s.finalTick
	case s.p != nil:
		res = s.p.Result()
		tick = s.p.Tick()
	}
	info := SessionInfo{
		ID:        s.ID,
		State:     s.state,
		Tick:      tick,
		Target:    s.target,
		Digest:    fmt.Sprintf("%d", res.Digest),
		Frames:    res.Frames,
		Accepted:  res.Accepted,
		Concealed: res.Concealed,
	}
	if s.hasDecoder() {
		info.Decoder = s.cfg.Decoder
		info.DecodedSteps = res.DecodedSteps
		info.DecodeDigest = fmt.Sprintf("%d", res.DecodeDigest)
	}
	if s.err != nil {
		info.Error = s.err.Error()
	}
	s.mu.Unlock()
	info.DecodedPublished = s.decoded.Load()
	info.Published = s.published.Load()
	info.Dropped = s.dropped.Load()
	info.Evicted = s.evicted.Load()
	s.subMu.Lock()
	info.Subscribers = len(s.subs)
	s.subMu.Unlock()
	return info
}

// QueueStats is one subscriber queue's introspection view.
type QueueStats struct {
	// Mode is "frames" or "decoded".
	Mode string `json:"mode"`
	// Depth is the number of records currently queued; Capacity the ring
	// size the drop-oldest policy enforces.
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
	// Dropped counts records this queue discarded oldest-first.
	Dropped int64 `json:"dropped"`
}

// SessionStats is the per-session introspection view: the control-plane
// info plus queue depths, decode accounting and last activity.
type SessionStats struct {
	SessionInfo
	// LastActivityUnixNs is the wall clock of the last published record
	// (session creation when nothing has published yet).
	LastActivityUnixNs int64 `json:"last_activity_unix_ns"`
	// DecodeConcealedBins and DecodeMACs extend the info's decode
	// accounting for sessions with a decoder.
	DecodeConcealedBins int64 `json:"decode_concealed_bins,omitempty"`
	DecodeMACs          int64 `json:"decode_macs,omitempty"`
	// Queues lists every attached subscriber's queue, unordered.
	Queues []QueueStats `json:"queues"`
}

// stats reports the session's introspection view.
func (s *Session) stats() SessionStats {
	st := SessionStats{
		SessionInfo:        s.info(),
		LastActivityUnixNs: s.lastActive.Load(),
	}
	s.mu.Lock()
	var res fleet.ImplantResult
	switch {
	case s.final != nil:
		res = *s.final
	case s.p != nil:
		res = s.p.Result()
	}
	s.mu.Unlock()
	if s.hasDecoder() {
		st.DecodeConcealedBins = res.DecodeConcealedBins
		st.DecodeMACs = res.DecodeMACs
	}
	s.subMu.Lock()
	st.Queues = make([]QueueStats, 0, len(s.subs))
	for sub := range s.subs {
		st.Queues = append(st.Queues, sub.queueStats())
	}
	s.subMu.Unlock()
	return st
}
