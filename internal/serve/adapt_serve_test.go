package serve

import (
	"io"
	"net/http"
	"testing"
	"time"

	"mindful/internal/drift"
	"mindful/internal/obs"
	"mindful/internal/serve/checkpoint"
)

// adaptiveServeConfig is the everything-on nonstationarity session:
// drift, day-0 calibration, instability tracking and closed-loop
// recalibration, with windows short enough that refits land within the
// session's 50 ticks.
func adaptiveServeConfig(dec string) checkpoint.SessionConfig {
	cfg := decodeSessionConfig(dec)
	p := drift.DefaultProfile()
	p.EpochTicks = 8
	cfg.Drift = &p
	cfg.DecodeBin = 2
	cfg.Calibrate = true
	cfg.Track = true
	cfg.Adapt = true
	cfg.RefitEvery = 4
	cfg.RefitBuffer = 8
	cfg.RefitBlend = 0.3
	cfg.MeterRef = 4
	cfg.MeterWin = 4
	return cfg
}

// TestGatewayRestoreAdaptive: an adaptive session checkpointed through
// the control plane and restored with a doubled target must finish
// bit-identically to the uninterrupted run — the snapshot lands with
// the supervision ring mid-fill and the decoder model already mutated
// by refits, and all of it must cross the codec. The gateway must also
// narrate the refits in the flight recorder.
func TestGatewayRestoreAdaptive(t *testing.T) {
	for _, dec := range []string{"kalman", "fixed", "wiener"} {
		t.Run(dec, func(t *testing.T) {
			o := obs.New()
			srv := startServer(t, Config{Observer: o, TickInterval: time.Millisecond})
			base := "http://" + srv.ControlAddr()
			cfg := adaptiveServeConfig(dec)

			info, err := createSession(base, CreateRequest{SessionConfig: cfg})
			if err != nil {
				t.Fatal(err)
			}
			waitState(t, base, info.ID, StateDone)

			resp, err := http.Get(base + "/api/sessions/" + info.ID + "/checkpoint")
			if err != nil {
				t.Fatal(err)
			}
			blob, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("checkpoint fetch: status %d err %v", resp.StatusCode, err)
			}

			restored, err := restoreSession(base, blob, 2*cfg.Ticks)
			if err != nil {
				t.Fatal(err)
			}
			finished := waitState(t, base, restored.ID, StateDone)
			wantDigest, wantDecode, wantSteps := resultAfter(t, cfg, 2*cfg.Ticks)
			if finished.Digest != wantDigest {
				t.Fatalf("restored digest %s, want uninterrupted %s", finished.Digest, wantDigest)
			}
			if finished.DecodeDigest != wantDecode {
				t.Fatalf("restored decode digest %s, want uninterrupted %s", finished.DecodeDigest, wantDecode)
			}
			if finished.DecodedSteps != wantSteps || wantSteps == 0 {
				t.Fatalf("restored decoded steps %d, want %d (nonzero)", finished.DecodedSteps, wantSteps)
			}
			if n := eventTypes(o.Events)["decoder_refit"]; n == 0 {
				t.Fatal("no decoder_refit events recorded for an adaptive session")
			}
		})
	}
}
