package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mindful/internal/serve/checkpoint"
)

func testSessionConfig() checkpoint.SessionConfig {
	return checkpoint.SessionConfig{
		Channels:     16,
		SampleRateHz: 2000,
		SampleBits:   10,
		QAMBits:      4,
		EbN0dB:       12,
		Seed:         11,
		Ticks:        50,
	}
}

// startServer boots a loopback gateway and tears it down with the test.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

// digestAfter runs the session config uninterrupted for n ticks
// in-process and returns the pipeline digest — the reference for every
// served digest assertion.
func digestAfter(t *testing.T, cfg checkpoint.SessionConfig, n int) string {
	t.Helper()
	p, err := checkpoint.NewPipeline(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < n; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return fmt.Sprintf("%d", p.Result().Digest)
}

// waitState polls until the session reaches the state (or fails the
// test after two seconds).
func waitState(t *testing.T, base, id, state string) SessionInfo {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		info, err := getSession(base, id)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == state {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s stuck in %s, want %s", id, info.State, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestServeSmoke is the end-to-end pass the Makefile smoke target runs:
// create a paused session, subscribe over TCP, resume, stream every
// frame, snapshot the finished session, restore it with an extended
// tick target, and assert the continued digest equals an uninterrupted
// run — checkpoint/restore is invisible to the byte stream.
func TestServeSmoke(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.ControlAddr()
	cfg := testSessionConfig()

	info, err := createSession(base, CreateRequest{SessionConfig: cfg, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StatePaused {
		t.Fatalf("created state %s, want paused", info.State)
	}

	conn, br, err := Subscribe(srv.StreamAddr(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	if err := post(base+"/api/sessions/"+info.ID+"/resume", nil); err != nil {
		t.Fatal(err)
	}

	var records int
	lastTick := -1
	for {
		rec, err := ReadRecord(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if int(rec.Tick) <= lastTick {
			t.Fatalf("tick went backwards: %d after %d", rec.Tick, lastTick)
		}
		lastTick = int(rec.Tick)
		if len(rec.Data) == 0 {
			t.Fatal("empty frame record")
		}
		records++
	}
	if records == 0 {
		t.Fatal("no records streamed")
	}

	done := waitState(t, base, info.ID, StateDone)
	if done.Tick != cfg.Ticks {
		t.Fatalf("finished at tick %d, want %d", done.Tick, cfg.Ticks)
	}
	if want := digestAfter(t, cfg, cfg.Ticks); done.Digest != want {
		t.Fatalf("served digest %s, want %s", done.Digest, want)
	}

	// Snapshot the finished session and restore with double the target.
	resp, err := http.Get(base + "/api/sessions/" + info.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint fetch: status %d err %v", resp.StatusCode, err)
	}

	restored, err := restoreSession(base, blob, 2*cfg.Ticks)
	if err != nil {
		t.Fatal(err)
	}
	finished := waitState(t, base, restored.ID, StateDone)
	if finished.Tick != 2*cfg.Ticks {
		t.Fatalf("restored session finished at tick %d, want %d", finished.Tick, 2*cfg.Ticks)
	}
	if want := digestAfter(t, cfg, 2*cfg.Ticks); finished.Digest != want {
		t.Fatalf("restored digest %s, want uninterrupted %s", finished.Digest, want)
	}
}

// restoreSession posts a checkpoint blob with an extended tick target.
func restoreSession(base string, blob []byte, ticks int) (SessionInfo, error) {
	url := fmt.Sprintf("%s/api/sessions/restore?ticks=%d", base, ticks)
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(blob))
	if err != nil {
		return SessionInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return SessionInfo{}, httpError("restore", resp)
	}
	var info SessionInfo
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// TestSlowConsumerDropsOldest: a subscriber that never reads fills its
// bounded queue; the session drops its oldest records and keeps
// ticking — and a second session on the same gateway is unaffected.
func TestSlowConsumerDropsOldest(t *testing.T) {
	srv := startServer(t, Config{QueueDepth: 4, StallTimeout: time.Hour})
	base := "http://" + srv.ControlAddr()
	cfg := testSessionConfig()

	stalled, err := createSession(base, CreateRequest{SessionConfig: cfg, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.session(stalled.ID)
	if err != nil {
		t.Fatal(err)
	}
	// net.Pipe is unbuffered: the writer blocks on its first record, so
	// the ring demonstrably fills and drops while the tick loop runs on.
	client, server := net.Pipe()
	defer client.Close()
	sub := newSubscriber(sess, server, srv.queueDepth(), srv.stallTimeout())
	if err := sess.attach(sub); err != nil {
		t.Fatal(err)
	}
	go sub.writeLoop()

	healthy, err := createSession(base, CreateRequest{SessionConfig: cfg})
	if err != nil {
		t.Fatal(err)
	}
	if err := post(base+"/api/sessions/"+stalled.ID+"/resume", nil); err != nil {
		t.Fatal(err)
	}

	// The healthy session must finish even though its neighbor's
	// subscriber is wedged.
	waitState(t, base, healthy.ID, StateDone)
	stalledInfo := waitState(t, base, stalled.ID, StateDone)
	if stalledInfo.Tick != cfg.Ticks {
		t.Fatalf("stalled-subscriber session stopped at tick %d, want %d", stalledInfo.Tick, cfg.Ticks)
	}
	if stalledInfo.Dropped == 0 {
		t.Fatal("full queue dropped nothing — drop-oldest policy broken")
	}
	if stalledInfo.Published < int64(stalledInfo.Dropped) {
		t.Fatalf("dropped %d exceeds published %d", stalledInfo.Dropped, stalledInfo.Published)
	}
}

// TestStalledSubscriberEvicted: a subscriber whose connection blocks
// writes past the stall timeout is evicted; the session keeps running.
func TestStalledSubscriberEvicted(t *testing.T) {
	srv := startServer(t, Config{QueueDepth: 4, StallTimeout: 20 * time.Millisecond})
	base := "http://" + srv.ControlAddr()
	cfg := testSessionConfig()

	info, err := createSession(base, CreateRequest{SessionConfig: cfg, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := srv.session(info.ID)
	if err != nil {
		t.Fatal(err)
	}
	client, server := net.Pipe()
	defer client.Close()
	sub := newSubscriber(sess, server, srv.queueDepth(), srv.stallTimeout())
	if err := sess.attach(sub); err != nil {
		t.Fatal(err)
	}
	go sub.writeLoop()

	if err := post(base+"/api/sessions/"+info.ID+"/resume", nil); err != nil {
		t.Fatal(err)
	}
	final := waitState(t, base, info.ID, StateDone)
	if final.Tick != cfg.Ticks {
		t.Fatalf("session stopped at tick %d, want %d — the stalled subscriber blocked the loop", final.Tick, cfg.Ticks)
	}
	// The session can finish before the write deadline fires; the
	// eviction itself lands shortly after.
	deadline := time.Now().Add(2 * time.Second)
	for {
		final, err = getSession(base, info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if final.Evicted == 1 && final.Subscribers == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("evicted=%d subscribers=%d, want 1 and 0", final.Evicted, final.Subscribers)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPauseResumeSnapshot: pausing quiesces the tick loop; a snapshot
// taken while paused restores to the identical continuation.
func TestPauseResumeSnapshot(t *testing.T) {
	srv := startServer(t, Config{TickInterval: time.Millisecond})
	base := "http://" + srv.ControlAddr()
	cfg := testSessionConfig()

	info, err := createSession(base, CreateRequest{SessionConfig: cfg})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	if err := post(base+"/api/sessions/"+info.ID+"/pause", nil); err != nil {
		t.Fatal(err)
	}
	paused := waitState(t, base, info.ID, StatePaused)
	if paused.Tick == 0 || paused.Tick >= cfg.Ticks {
		t.Fatalf("paused at tick %d, want mid-run", paused.Tick)
	}
	resp, err := http.Get(base + "/api/sessions/" + info.ID + "/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := restoreSession(base, blob, cfg.Ticks)
	if err != nil {
		t.Fatal(err)
	}
	if err := post(base+"/api/sessions/"+info.ID+"/resume", nil); err != nil {
		t.Fatal(err)
	}
	a := waitState(t, base, info.ID, StateDone)
	b := waitState(t, base, restored.ID, StateDone)
	if a.Digest != b.Digest {
		t.Fatalf("paused/restored digests diverged: %s vs %s", a.Digest, b.Digest)
	}
}

// TestShutdownDrainsSnapshots: graceful shutdown writes one restorable
// checkpoint per live session.
func TestShutdownDrainsSnapshots(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{SnapshotDir: dir, TickInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.ControlAddr()
	cfg := testSessionConfig()
	cfg.Ticks = 0 // unbounded: only the drain stops it
	var ids []string
	for i := 0; i < 3; i++ {
		scfg := cfg
		scfg.Seed += int64(i)
		info, err := createSession(base, CreateRequest{SessionConfig: scfg})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	time.Sleep(10 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		blob, err := os.ReadFile(filepath.Join(dir, id+".ckpt"))
		if err != nil {
			t.Fatalf("drained snapshot missing: %v", err)
		}
		rcfg, p, err := checkpoint.Restore(blob)
		if err != nil {
			t.Fatalf("drained snapshot unrestorable: %v", err)
		}
		if rcfg.Channels != cfg.Channels {
			t.Fatalf("restored config channels %d, want %d", rcfg.Channels, cfg.Channels)
		}
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
		p.Close()
	}
}
