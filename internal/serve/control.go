package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"mindful/internal/cluster/wire"
	"mindful/internal/obs"
	"mindful/internal/serve/checkpoint"
)

// The control plane is plain JSON over HTTP:
//
//	POST   /api/sessions                 create (body: CreateRequest)
//	GET    /api/sessions                 list session infos
//	GET    /api/sessions/{id}            one session's info
//	POST   /api/sessions/{id}/pause      suspend the tick loop
//	POST   /api/sessions/{id}/resume     resume the tick loop
//	GET    /api/sessions/{id}/checkpoint binary snapshot blob
//	POST   /api/sessions/{id}/export     pause + snapshot into a
//	                                     migration envelope (?key=K
//	                                     stamps the cluster session key)
//	POST   /api/sessions/import          restore a migration envelope
//	                                     paused (checkpoint transfer
//	                                     target)
//	POST   /api/sessions/restore         new session from a blob
//	                                     (?ticks=N extends the target,
//	                                      ?start_paused=1 creates paused)
//	DELETE /api/sessions/{id}            halt, release, forget
//	GET    /api/sessions/{id}/stats      per-session introspection (queue
//	                                     depths, drops, decode stats,
//	                                     last activity)
//	GET    /api/stats                    gateway-wide aggregates +
//	                                     delivery-latency percentiles
//	POST   /api/drain                    toggle rebalance draining
//	                                     (?on=true|false; /readyz is 503
//	                                     while on)
//	GET    /healthz                      liveness
//	GET    /readyz                       readiness (503 until both planes
//	                                     are bound; 503 while draining
//	                                     for a rebalance; 503 again once
//	                                     shutdown begins)
//
// Errors are {"error": "..."} with a meaningful status code.

// maxControlBody bounds request bodies (checkpoint blobs are O(channels)).
const maxControlBody = 16 << 20

// CreateRequest is the session-creation body: the session configuration
// plus gateway-level options.
type CreateRequest struct {
	checkpoint.SessionConfig
	// StartPaused creates the session with its tick loop suspended so
	// subscribers can attach before the first frame.
	StartPaused bool `json:"start_paused"`
}

// StatsResponse is the gateway-wide aggregate view. The latency fields
// are end-to-end publish→subscriber-write percentiles in milliseconds,
// estimated from the delivery histogram; zero until a record has been
// delivered.
type StatsResponse struct {
	Sessions    int   `json:"sessions"`
	Subscribers int   `json:"subscribers"`
	Published   int64 `json:"frames_published"`
	Dropped     int64 `json:"dropped_frames"`
	Evicted     int64 `json:"evicted_subscribers"`

	Delivered            int64   `json:"records_delivered"`
	DeliveryLatencyP50Ms float64 `json:"delivery_latency_p50_ms"`
	DeliveryLatencyP99Ms float64 `json:"delivery_latency_p99_ms"`
	// P999 is the p99.9 tail — the SLO figure stall eviction protects.
	DeliveryLatencyP999Ms float64 `json:"delivery_latency_p999_ms"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

// statusFor maps lookup failures to 404 and everything else to the
// given fallback.
func statusFor(err error, fallback int) int {
	if strings.Contains(err.Error(), "no session") {
		return http.StatusNotFound
	}
	return fallback
}

func (s *Server) controlMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !s.Ready() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "not ready"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
	})
	mux.HandleFunc("POST /api/drain", s.handleDrain)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	mux.HandleFunc("GET /api/sessions/{id}/stats", s.handleSessionStats)
	mux.HandleFunc("POST /api/sessions", s.handleCreate)
	mux.HandleFunc("GET /api/sessions", s.handleList)
	mux.HandleFunc("POST /api/sessions/restore", s.handleRestore)
	mux.HandleFunc("GET /api/sessions/{id}", s.handleGet)
	mux.HandleFunc("POST /api/sessions/{id}/pause", s.handlePause)
	mux.HandleFunc("POST /api/sessions/{id}/resume", s.handleResume)
	mux.HandleFunc("GET /api/sessions/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("POST /api/sessions/{id}/export", s.handleExport)
	mux.HandleFunc("POST /api/sessions/import", s.handleImport)
	mux.HandleFunc("DELETE /api/sessions/{id}", s.handleDelete)
	return mux
}

// handleDrain toggles the draining flag (?on=true|false): while set,
// /readyz answers 503 so nothing new is placed here, but the planes
// stay up for the sessions migrating off — the rebalance coordinator's
// knob.
func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	on, err := strconv.ParseBool(r.URL.Query().Get("on"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, errors.New("on must be a boolean"))
		return
	}
	s.SetDraining(on)
	writeJSON(w, http.StatusOK, map[string]bool{"draining": on})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	var resp StatsResponse
	for _, info := range s.Sessions() {
		resp.Sessions++
		resp.Subscribers += info.Subscribers
		resp.Published += info.Published
		resp.Dropped += info.Dropped
		resp.Evicted += info.Evicted
	}
	resp.Delivered = s.latency.Count()
	const msPerNs = 1e-6
	resp.DeliveryLatencyP50Ms = s.latency.Quantile(0.50) * msPerNs
	resp.DeliveryLatencyP99Ms = s.latency.Quantile(0.99) * msPerNs
	resp.DeliveryLatencyP999Ms = s.latency.Quantile(0.999) * msPerNs
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSessionStats(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.stats())
}

func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req CreateRequest
	dec := json.NewDecoder(io.LimitReader(r.Body, maxControlBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	token := r.Header.Get("Idempotency-Key")
	if prev, ok := s.idemLookup(token); ok {
		writeJSON(w, http.StatusCreated, prev.info())
		return
	}
	sess, err := s.CreateSession(req.SessionConfig, req.StartPaused)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.idemRecord(token, sess.ID)
	writeJSON(w, http.StatusCreated, sess.info())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Sessions())
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	s.handleTransition(w, r, (*Session).pause)
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	s.handleTransition(w, r, (*Session).resume)
}

func (s *Server) handleTransition(w http.ResponseWriter, r *http.Request, f func(*Session) error) {
	sess, err := s.session(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if err := f(sess); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, sess.info())
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	blob, err := sess.snapshot()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(blob)))
	w.WriteHeader(http.StatusOK)
	w.Write(blob)
}

// handleExport is the migration source's half of a checkpoint transfer:
// pause the session (running loops stop at the next tick boundary),
// snapshot it, and return a wire.Envelope stamped with the caller's
// cluster key (?key=...). The session stays paused — the coordinator
// deletes it once the import lands, or resumes it to abort.
func (s *Server) handleExport(w http.ResponseWriter, r *http.Request) {
	sess, err := s.session(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	blob, tick, err := sess.exportSnapshot()
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	env, err := wire.Encode(wire.Envelope{
		Key:      r.URL.Query().Get("key"),
		SourceID: sess.ID,
		Tick:     uint64(tick),
		Blob:     blob,
	})
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(env)))
	w.WriteHeader(http.StatusOK)
	w.Write(env)
}

// handleImport is the migration target's half: decode the envelope,
// restore its checkpoint paused (the coordinator resumes after
// redirecting subscribers), and reject a transfer whose restored tick
// does not match the envelope's — a corrupted or mismatched blob must
// not silently take over a session. An Idempotency-Key header makes a
// retried import at-most-once: a token seen before answers with the
// session the first attempt created instead of restoring a second copy.
func (s *Server) handleImport(w http.ResponseWriter, r *http.Request) {
	token := r.Header.Get("Idempotency-Key")
	if prev, ok := s.idemLookup(token); ok {
		writeJSON(w, http.StatusCreated, prev.info())
		return
	}
	buf, err := io.ReadAll(io.LimitReader(r.Body, maxControlBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	env, err := wire.Decode(buf)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	sess, err := s.RestoreSession(env.Blob, 0, true)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	info := sess.info()
	if info.Tick != int(env.Tick) {
		s.DeleteSession(sess.ID)
		writeErr(w, http.StatusUnprocessableEntity,
			fmt.Errorf("serve: imported tick %d does not match envelope tick %d", info.Tick, env.Tick))
		return
	}
	s.idemRecord(token, sess.ID)
	s.event("session_import", sess.ID, env.Key,
		obs.EventAttr{Key: "tick", Val: float64(info.Tick)})
	writeJSON(w, http.StatusCreated, info)
}

func (s *Server) handleRestore(w http.ResponseWriter, r *http.Request) {
	token := r.Header.Get("Idempotency-Key")
	if prev, ok := s.idemLookup(token); ok {
		writeJSON(w, http.StatusCreated, prev.info())
		return
	}
	blob, err := io.ReadAll(io.LimitReader(r.Body, maxControlBody))
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ticks := 0
	if v := r.URL.Query().Get("ticks"); v != "" {
		ticks, err = strconv.Atoi(v)
		if err != nil || ticks < 0 {
			writeErr(w, http.StatusBadRequest, errors.New("ticks must be a non-negative integer"))
			return
		}
	}
	startPaused := false
	if v := r.URL.Query().Get("start_paused"); v != "" {
		startPaused, err = strconv.ParseBool(v)
		if err != nil {
			writeErr(w, http.StatusBadRequest, errors.New("start_paused must be a boolean"))
			return
		}
	}
	sess, err := s.RestoreSession(blob, ticks, startPaused)
	if err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	s.idemRecord(token, sess.ID)
	writeJSON(w, http.StatusCreated, sess.info())
}

// handleDelete is idempotent: session IDs are never reused, so a 404
// whose ID sits in the recently-deleted record is a retry of a delete
// that already landed and answers success again.
func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.DeleteSession(id); err != nil {
		if s.idemDeleted(id) {
			writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
			return
		}
		writeErr(w, statusFor(err, http.StatusInternalServerError), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "deleted"})
}
