package serve

import (
	"fmt"
	"io"
	"net/http"
	"testing"

	"mindful/internal/serve/checkpoint"
)

// decodeSessionConfig is the serve smoke session with a decoder in the
// loop; the odd bin size means checkpoints land mid-bin.
func decodeSessionConfig(dec string) checkpoint.SessionConfig {
	cfg := testSessionConfig()
	cfg.Decoder = dec
	cfg.DecodeBin = 3
	return cfg
}

// resultAfter runs the session config uninterrupted for n ticks
// in-process and returns the full result — the reference for served
// decode assertions.
func resultAfter(t *testing.T, cfg checkpoint.SessionConfig, n int) (digest, decodeDigest string, steps int64) {
	t.Helper()
	p, err := checkpoint.NewPipeline(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < n; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res := p.Result()
	return fmt.Sprintf("%d", res.Digest), fmt.Sprintf("%d", res.DecodeDigest), res.DecodedSteps
}

// TestDecodedStreamEndToEnd: a decoded-mode subscriber receives exactly
// the decoder's steps as big-endian kinematics records, a frame-mode
// subscriber on the same session never sees them, and the session info
// reports the decode accounting.
func TestDecodedStreamEndToEnd(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.ControlAddr()
	cfg := decodeSessionConfig("kalman")

	info, err := createSession(base, CreateRequest{SessionConfig: cfg, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	if info.Decoder != "kalman" {
		t.Fatalf("created session decoder %q, want kalman", info.Decoder)
	}

	decConn, decBr, err := SubscribeDecoded(srv.StreamAddr(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer decConn.Close()
	frConn, frBr, err := Subscribe(srv.StreamAddr(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer frConn.Close()

	if err := post(base+"/api/sessions/"+info.ID+"/resume", nil); err != nil {
		t.Fatal(err)
	}

	var decodedRecords int
	lastTick := -1
	for {
		rec, err := ReadRecord(decBr)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Flags&RecordFlagDecoded == 0 {
			t.Fatalf("decoded stream delivered a non-decoded record (flags %#x)", rec.Flags)
		}
		if int(rec.Tick) <= lastTick {
			t.Fatalf("decoded tick went backwards: %d after %d", rec.Tick, lastTick)
		}
		lastTick = int(rec.Tick)
		est, err := DecodeEstimates(rec.Data)
		if err != nil {
			t.Fatal(err)
		}
		if len(est) != 2 {
			t.Fatalf("estimate has %d dims, want 2", len(est))
		}
		decodedRecords++
	}
	for {
		rec, err := ReadRecord(frBr)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if rec.Flags&RecordFlagDecoded != 0 {
			t.Fatal("frame stream delivered a decoded record")
		}
	}

	done := waitState(t, base, info.ID, StateDone)
	wantDigest, wantDecode, wantSteps := resultAfter(t, cfg, cfg.Ticks)
	if done.Digest != wantDigest {
		t.Fatalf("served digest %s, want %s", done.Digest, wantDigest)
	}
	if done.DecodeDigest != wantDecode {
		t.Fatalf("served decode digest %s, want %s", done.DecodeDigest, wantDecode)
	}
	if done.DecodedSteps != wantSteps || int64(decodedRecords) != wantSteps {
		t.Fatalf("decoded steps: info %d, streamed %d, want %d", done.DecodedSteps, decodedRecords, wantSteps)
	}
	if done.DecodedPublished != wantSteps {
		t.Fatalf("decoded published %d, want %d", done.DecodedPublished, wantSteps)
	}
	if wantSteps == 0 {
		t.Fatal("reference run decoded nothing — test is vacuous")
	}
}

// TestDecodedSubscribeRejectedWithoutDecoder: decoded-mode subscriptions
// against a decoder-less session fail at the SUB handshake.
func TestDecodedSubscribeRejectedWithoutDecoder(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.ControlAddr()
	info, err := createSession(base, CreateRequest{SessionConfig: testSessionConfig(), StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SubscribeDecoded(srv.StreamAddr(), info.ID); err == nil {
		t.Fatal("decoded subscription accepted on a session without a decoder")
	}
}

// TestGatewayRestoreWithDecoder is the acceptance criterion at the
// gateway layer: run a decoder session to K over HTTP, checkpoint it,
// restore with target 2K, and the continuation's frame and decode
// digests both equal an uninterrupted in-process 2K run.
func TestGatewayRestoreWithDecoder(t *testing.T) {
	for _, dec := range []string{"kalman", "wiener", "dnn"} {
		t.Run(dec, func(t *testing.T) {
			srv := startServer(t, Config{})
			base := "http://" + srv.ControlAddr()
			cfg := decodeSessionConfig(dec)

			info, err := createSession(base, CreateRequest{SessionConfig: cfg})
			if err != nil {
				t.Fatal(err)
			}
			waitState(t, base, info.ID, StateDone)

			resp, err := http.Get(base + "/api/sessions/" + info.ID + "/checkpoint")
			if err != nil {
				t.Fatal(err)
			}
			blob, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil || resp.StatusCode != http.StatusOK {
				t.Fatalf("checkpoint fetch: status %d err %v", resp.StatusCode, err)
			}

			restored, err := restoreSession(base, blob, 2*cfg.Ticks)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Decoder != dec {
				t.Fatalf("restored session decoder %q, want %q", restored.Decoder, dec)
			}
			finished := waitState(t, base, restored.ID, StateDone)
			wantDigest, wantDecode, wantSteps := resultAfter(t, cfg, 2*cfg.Ticks)
			if finished.Digest != wantDigest {
				t.Fatalf("restored digest %s, want uninterrupted %s", finished.Digest, wantDigest)
			}
			if finished.DecodeDigest != wantDecode {
				t.Fatalf("restored decode digest %s, want uninterrupted %s", finished.DecodeDigest, wantDecode)
			}
			if finished.DecodedSteps != wantSteps || wantSteps == 0 {
				t.Fatalf("restored decoded steps %d, want %d (nonzero)", finished.DecodedSteps, wantSteps)
			}
		})
	}
}

// TestDefaultDecoderApplied: a gateway configured with a default decoder
// attaches it to sessions that do not name one, without overriding an
// explicit choice.
func TestDefaultDecoderApplied(t *testing.T) {
	srv := startServer(t, Config{DefaultDecoder: "wiener"})
	base := "http://" + srv.ControlAddr()

	inherited, err := createSession(base, CreateRequest{SessionConfig: testSessionConfig()})
	if err != nil {
		t.Fatal(err)
	}
	if inherited.Decoder != "wiener" {
		t.Fatalf("session decoder %q, want inherited wiener", inherited.Decoder)
	}
	explicit, err := createSession(base, CreateRequest{SessionConfig: decodeSessionConfig("kalman")})
	if err != nil {
		t.Fatal(err)
	}
	if explicit.Decoder != "kalman" {
		t.Fatalf("session decoder %q, want explicit kalman", explicit.Decoder)
	}
	done := waitState(t, base, inherited.ID, StateDone)
	if done.DecodedSteps == 0 {
		t.Fatal("inherited decoder never stepped")
	}
}
