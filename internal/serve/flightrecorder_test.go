package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"mindful/internal/fault"
	"mindful/internal/obs"
	"mindful/internal/serve/checkpoint"
)

// eventTypes returns the set of event types present in the log.
func eventTypes(log *obs.EventLog) map[string]int {
	types := make(map[string]int)
	for _, e := range log.Snapshot() {
		types[e.Type]++
	}
	return types
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("%s: %v", url, err)
		}
	}
	return resp
}

func TestReadyz(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if srv.Ready() {
		t.Error("unstarted server reports ready")
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.ControlAddr()
	if resp := getJSON(t, base+"/readyz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz after Start = %d, want 200", resp.StatusCode)
	}
	if resp := getJSON(t, base+"/healthz", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz = %d, want 200", resp.StatusCode)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if srv.Ready() {
		t.Error("shut-down server reports ready")
	}
}

func TestSessionStatsEndpoint(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.ControlAddr()
	cfg := testSessionConfig()
	cfg.Decoder = "kalman"
	info, err := createSession(base, CreateRequest{SessionConfig: cfg, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	conn, br, err := Subscribe(srv.StreamAddr(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := post(base+"/api/sessions/"+info.ID+"/resume", nil); err != nil {
		t.Fatal(err)
	}
	// Drain to completion so the stats reflect a full run.
	for {
		if _, err := ReadRecord(br); err != nil {
			break
		}
	}
	waitState(t, base, info.ID, StateDone)

	var st SessionStats
	if resp := getJSON(t, base+"/api/sessions/"+info.ID+"/stats", &st); resp.StatusCode != http.StatusOK {
		t.Fatalf("stats status = %d", resp.StatusCode)
	}
	if st.ID != info.ID || st.State != StateDone {
		t.Errorf("stats id/state = %s/%s", st.ID, st.State)
	}
	if st.LastActivityUnixNs == 0 {
		t.Error("stats last activity is zero")
	}
	if st.Published == 0 || st.DecodedSteps == 0 {
		t.Errorf("stats published/decoded = %d/%d, want nonzero", st.Published, st.DecodedSteps)
	}
	if st.DecodeMACs == 0 {
		t.Error("stats decode MACs is zero for a kalman session")
	}
	// The subscriber is already detached (stream finished), so the queue
	// list is empty; a still-attached subscriber must show up. Run a
	// second paused session to pin the attached shape.
	info2, err := createSession(base, CreateRequest{SessionConfig: testSessionConfig(), StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	conn2, _, err := Subscribe(srv.StreamAddr(), info2.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	var st2 SessionStats
	getJSON(t, base+"/api/sessions/"+info2.ID+"/stats", &st2)
	if len(st2.Queues) != 1 {
		t.Fatalf("attached session has %d queues, want 1", len(st2.Queues))
	}
	q := st2.Queues[0]
	if q.Mode != "frames" || q.Capacity != DefaultQueueDepth || q.Depth != 0 || q.Dropped != 0 {
		t.Errorf("queue stats = %+v", q)
	}
	if resp := getJSON(t, base+"/api/sessions/nosuch/stats", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing-session stats status = %d, want 404", resp.StatusCode)
	}
}

func TestStatsDeliveryLatency(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.ControlAddr()
	info, err := createSession(base, CreateRequest{SessionConfig: testSessionConfig(), StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	conn, br, err := Subscribe(srv.StreamAddr(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := post(base+"/api/sessions/"+info.ID+"/resume", nil); err != nil {
		t.Fatal(err)
	}
	records := 0
	for {
		if _, err := ReadRecord(br); err != nil {
			break
		}
		records++
	}
	if records == 0 {
		t.Fatal("no records delivered")
	}
	var stats StatsResponse
	getJSON(t, base+"/api/stats", &stats)
	if stats.Delivered < int64(records) {
		t.Errorf("delivered = %d, want ≥ %d", stats.Delivered, records)
	}
	if stats.DeliveryLatencyP50Ms <= 0 {
		t.Errorf("p50 latency = %g, want > 0", stats.DeliveryLatencyP50Ms)
	}
	if stats.DeliveryLatencyP99Ms < stats.DeliveryLatencyP50Ms {
		t.Errorf("p99 %g < p50 %g", stats.DeliveryLatencyP99Ms, stats.DeliveryLatencyP50Ms)
	}
	if stats.DeliveryLatencyP999Ms < stats.DeliveryLatencyP99Ms {
		t.Errorf("p99.9 %g < p99 %g", stats.DeliveryLatencyP999Ms, stats.DeliveryLatencyP99Ms)
	}
}

// TestLifecycleEvents drives a session through its whole lifecycle and
// checks the flight recorder narrates it: create, pause, resume,
// snapshot, restore, delete, drain.
func TestLifecycleEvents(t *testing.T) {
	o := obs.New()
	srv := startServer(t, Config{Observer: o, TickInterval: time.Millisecond})
	base := "http://" + srv.ControlAddr()
	info, err := createSession(base, CreateRequest{SessionConfig: testSessionConfig(), StartPaused: false})
	if err != nil {
		t.Fatal(err)
	}
	id := info.ID
	if err := post(base+"/api/sessions/"+id+"/pause", nil); err != nil {
		t.Fatal(err)
	}
	if err := post(base+"/api/sessions/"+id+"/resume", nil); err != nil {
		t.Fatal(err)
	}
	if err := post(base+"/api/sessions/"+id+"/pause", nil); err != nil {
		t.Fatal(err)
	}
	sess, err := srv.session(id)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := sess.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := srv.RestoreSession(blob, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.DeleteSession(restored.ID); err != nil {
		t.Fatal(err)
	}

	types := eventTypes(o.Events)
	for _, want := range []string{
		"session_create", "session_pause", "session_resume",
		"session_snapshot", "session_restore", "session_delete",
	} {
		if types[want] == 0 {
			t.Errorf("event log missing %q; have %v", want, types)
		}
	}
	// Shutdown (via Cleanup) drains the remaining session; check here so
	// the assertion runs before the observer goes out of scope.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if types := eventTypes(o.Events); types["session_drain"] == 0 {
		t.Errorf("event log missing session_drain after shutdown; have %v", types)
	}
	// Events must carry monotonic sequence numbers.
	evs := o.Events.Snapshot()
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("event seq not monotonic: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestFaultPathEvents runs a faulty session and checks the recorder
// captures the fault narrative: concealment runs, brownout onsets and
// ARQ budget exhaustions, each edge-triggered with a tick attribute.
func TestFaultPathEvents(t *testing.T) {
	o := obs.New()
	srv := startServer(t, Config{Observer: o})
	base := "http://" + srv.ControlAddr()
	p := fault.DefaultProfile()
	cfg := checkpoint.SessionConfig{
		Channels:         16,
		SampleRateHz:     2000,
		SampleBits:       10,
		QAMBits:          4,
		EbN0dB:           8, // noisy enough that retries exhaust
		Seed:             7,
		Ticks:            400,
		Faults:           &p,
		ARQMaxRetries:    1,
		ARQSlotTime:      time.Millisecond,
		ARQLatencyBudget: 4 * time.Millisecond,
		Concealment:      1, // hold
	}
	info, err := createSession(base, CreateRequest{SessionConfig: cfg})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, base, info.ID, StateDone)
	types := eventTypes(o.Events)
	for _, want := range []string{"concealment_run", "brownout_onset", "arq_exhausted"} {
		if types[want] == 0 {
			t.Errorf("fault run recorded no %q events; have %v", want, types)
		}
	}
	// Every fault event names the session and carries a tick attribute.
	for _, e := range o.Events.Snapshot() {
		switch e.Type {
		case "concealment_run", "brownout_onset", "arq_exhausted":
			if e.Subject != info.ID {
				t.Errorf("%s subject = %q, want %q", e.Type, e.Subject, info.ID)
			}
			found := false
			for i := 0; i < e.NAttrs; i++ {
				if e.Attrs[i].Key == "tick" {
					found = true
				}
			}
			if !found {
				t.Errorf("%s event missing tick attr: %+v", e.Type, e)
			}
		}
	}
}
