package serve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strings"
	"sync"
	"time"
)

// The streaming data plane is a length-prefixed binary protocol over
// TCP. A client opens a connection, sends one subscription line
//
//	SUB <session-id> [mode]\n
//
// where mode is "frames" (default: raw received frame bytes) or
// "decoded" (the session's decoder output — requires a session created
// with a decoder), and then reads records until the server closes the
// stream (session finished or deleted) or evicts it for stalling. A
// gateway that does not host the session but can resolve its owner
// (Config.Redirect — the cluster front tier) answers
//
//	MOVED <stream-addr> <session-id>\n
//
// and closes; the client re-dials the named address (SubscribeFollow
// does this automatically, bounded to a few hops). Each record is
//
//	length    uint32  bytes after this field
//	tick      uint64  pipeline tick the record belongs to
//	publishNs int64   server wall clock at publication (UnixNano)
//	flags     uint8   RecordFlag bits
//	payload   []byte  frame bytes, or big-endian float64 kinematics
//	                  when RecordFlagDecoded is set
//
// Backpressure is explicit: every subscriber owns a bounded queue.
// When the queue is full the oldest record is dropped and counted
// (DroppedFrames); a subscriber whose connection blocks a write longer
// than the stall timeout is evicted. The publishing tick loop never
// waits on either.

// Record flags.
const (
	// RecordFlagAccepted marks a frame the wearable receiver accepted
	// (CRC-clean, in sequence); frame records without it carry corrupt
	// bytes surfaced after an exhausted retry budget.
	RecordFlagAccepted byte = 0x01
	// RecordFlagDecoded marks a decoded-kinematics record: the payload
	// is the decoder's state estimate as big-endian float64s.
	RecordFlagDecoded byte = 0x02
	// RecordFlagConcealedBin marks a decoded record whose observation
	// bin contained at least one concealed (synthesized) frame.
	RecordFlagConcealedBin byte = 0x04
)

// maxRecordLen bounds a record a client will accept: far above any real
// frame (64Ki channels at 16 bits is ~128 KiB) but small enough that a
// corrupt length field cannot force a huge allocation.
const maxRecordLen = 1 << 20

// recordHeaderLen is tick + publishNs + flags.
const recordHeaderLen = 8 + 8 + 1

// record is one queued frame delivery.
type record struct {
	tick      uint64
	publishNs int64
	flags     byte
	data      []byte // shared read-only across subscribers
}

// subscriber is one data-plane consumer: a bounded drop-oldest ring
// drained by a dedicated writer goroutine. push never blocks; the
// writer enforces the stall policy with write deadlines.
type subscriber struct {
	sess    *Session
	conn    net.Conn
	stall   time.Duration
	decoded bool // receive decoded-kinematics records instead of frames

	mu       sync.Mutex
	cond     *sync.Cond
	ring     []record
	head     int
	count    int
	dropped  int64
	closed   bool // stop immediately, queue abandoned
	finished bool // flush the queue, then close
}

func newSubscriber(sess *Session, conn net.Conn, depth int, stall time.Duration) *subscriber {
	sub := &subscriber{
		sess:  sess,
		conn:  conn,
		stall: stall,
		ring:  make([]record, depth),
	}
	sub.cond = sync.NewCond(&sub.mu)
	return sub
}

// push enqueues one record, dropping the oldest when full. Never blocks.
func (s *subscriber) push(rec record) {
	s.mu.Lock()
	if s.closed || s.finished {
		s.mu.Unlock()
		return
	}
	if s.count == len(s.ring) {
		s.head = (s.head + 1) % len(s.ring)
		s.count--
		s.dropped++
		s.sess.dropped.Add(1)
		s.sess.srv.obsDropped()
	}
	s.ring[(s.head+s.count)%len(s.ring)] = rec
	s.count++
	s.cond.Signal()
	s.mu.Unlock()
}

// pop blocks until a record is available or the subscriber is done. The
// second result is false when the writer should exit; drain reports
// whether the queue was flushed (clean finish) rather than abandoned.
func (s *subscriber) pop() (record, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed {
			return record{}, false
		}
		if s.count > 0 {
			rec := s.ring[s.head]
			s.ring[s.head] = record{} // release the shared frame bytes
			s.head = (s.head + 1) % len(s.ring)
			s.count--
			return rec, true
		}
		if s.finished {
			return record{}, false
		}
		s.cond.Wait()
	}
}

// queueStats reports the queue's introspection view.
func (s *subscriber) queueStats() QueueStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	mode := "frames"
	if s.decoded {
		mode = "decoded"
	}
	return QueueStats{Mode: mode, Depth: s.count, Capacity: len(s.ring), Dropped: s.dropped}
}

// droppedCount returns the records this queue has discarded.
func (s *subscriber) droppedCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// finish asks the writer to flush the queue and close cleanly.
func (s *subscriber) finish() {
	s.mu.Lock()
	s.finished = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// close stops the writer immediately, abandoning queued records.
func (s *subscriber) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.conn.Close()
}

// writeLoop drains the queue onto the connection. A write that misses
// the stall deadline — or any other write error — evicts the
// subscriber; the publishing side is never slowed either way.
func (s *subscriber) writeLoop() {
	defer s.conn.Close()
	buf := make([]byte, 0, 512)
	for {
		rec, ok := s.pop()
		if !ok {
			s.sess.detach(s, false)
			return
		}
		buf = appendRecord(buf[:0], rec)
		if s.stall > 0 {
			s.conn.SetWriteDeadline(time.Now().Add(s.stall))
		}
		if _, err := s.conn.Write(buf); err != nil {
			// A missed deadline is a stall eviction; any other error is
			// the client going away on its own.
			evicted := false
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				evicted = true
			}
			s.mu.Lock()
			s.closed = true
			s.cond.Broadcast()
			s.mu.Unlock()
			s.sess.detach(s, evicted)
			return
		}
		// End-to-end delivery latency: publication wall clock → the write
		// completing on this subscriber's connection.
		s.sess.srv.observeDelivery(time.Now().UnixNano() - rec.publishNs)
	}
}

// appendRecord serializes one record onto dst.
func appendRecord(dst []byte, rec record) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(recordHeaderLen+len(rec.data)))
	dst = binary.BigEndian.AppendUint64(dst, rec.tick)
	dst = binary.BigEndian.AppendUint64(dst, uint64(rec.publishNs))
	dst = append(dst, rec.flags)
	return append(dst, rec.data...)
}

// serveStream handles one data-plane connection: parse the SUB line,
// attach, and stream until done.
func (srv *Server) serveStream(conn net.Conn) {
	defer srv.wg.Done()
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	fields := strings.Fields(line)
	if (len(fields) != 2 && len(fields) != 3) || fields[0] != "SUB" {
		fmt.Fprintf(conn, "ERR expected SUB <session-id> [frames|decoded]\n")
		conn.Close()
		return
	}
	decoded := false
	if len(fields) == 3 {
		switch fields[2] {
		case "frames":
		case "decoded":
			decoded = true
		default:
			fmt.Fprintf(conn, "ERR unknown stream mode %q (want frames or decoded)\n", fields[2])
			conn.Close()
			return
		}
	}
	sess, err := srv.session(fields[1])
	if err != nil {
		// A session this gateway does not host may live elsewhere in the
		// cluster: the redirect hook answers MOVED so the client can
		// re-dial the owning shard (the front tier and post-migration
		// stragglers both land here).
		if srv.cfg.Redirect != nil {
			if addr, id, ok := srv.cfg.Redirect(fields[1]); ok {
				fmt.Fprintf(conn, "MOVED %s %s\n", addr, id)
				conn.Close()
				return
			}
		}
		fmt.Fprintf(conn, "ERR %v\n", err)
		conn.Close()
		return
	}
	if decoded && !sess.hasDecoder() {
		fmt.Fprintf(conn, "ERR session %s has no decoder\n", sess.ID)
		conn.Close()
		return
	}
	sub := newSubscriber(sess, conn, srv.queueDepth(), srv.stallTimeout())
	sub.decoded = decoded
	if err := sess.attach(sub); err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		conn.Close()
		return
	}
	if _, err := fmt.Fprintf(conn, "OK %s\n", sess.ID); err != nil {
		sess.detach(sub, false)
		conn.Close()
		return
	}
	sub.writeLoop()
}

// Record is one decoded data-plane record, as read by clients.
type Record struct {
	Tick      uint64
	PublishNs int64
	Flags     byte
	Data      []byte
}

// ReadRecord reads one record from a subscribed stream. io.EOF marks a
// clean end of stream.
func ReadRecord(r io.Reader) (Record, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Record{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < recordHeaderLen || n > maxRecordLen {
		return Record{}, fmt.Errorf("serve: record length %d out of range", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return Record{}, err
	}
	return Record{
		Tick:      binary.BigEndian.Uint64(body[0:8]),
		PublishNs: int64(binary.BigEndian.Uint64(body[8:16])),
		Flags:     body[16],
		Data:      body[recordHeaderLen:],
	}, nil
}

// Subscribe opens a data-plane connection to addr and subscribes to the
// session's frame stream, returning the connection and a buffered
// reader positioned at the first record.
func Subscribe(addr, sessionID string) (net.Conn, *bufio.Reader, error) {
	return subscribe(addr, sessionID, "")
}

// SubscribeDecoded subscribes to the session's decoded-kinematics
// stream; the server rejects the subscription when the session was
// created without a decoder.
func SubscribeDecoded(addr, sessionID string) (net.Conn, *bufio.Reader, error) {
	return subscribe(addr, sessionID, "decoded")
}

// MovedError reports a subscription redirect: the session lives on
// another gateway. Re-dial Addr and subscribe to ID there.
type MovedError struct {
	Addr string
	ID   string
}

func (e *MovedError) Error() string {
	return fmt.Sprintf("serve: session moved to %s as %s", e.Addr, e.ID)
}

func subscribe(addr, sessionID, mode string) (net.Conn, *bufio.Reader, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	line := "SUB " + sessionID
	if mode != "" {
		line += " " + mode
	}
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		conn.Close()
		return nil, nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := br.ReadString('\n')
	if err != nil {
		conn.Close()
		return nil, nil, err
	}
	if fields := strings.Fields(resp); len(fields) == 3 && fields[0] == "MOVED" {
		conn.Close()
		return nil, nil, &MovedError{Addr: fields[1], ID: fields[2]}
	}
	if !strings.HasPrefix(resp, "OK ") {
		conn.Close()
		return nil, nil, fmt.Errorf("serve: subscribe rejected: %s", strings.TrimSpace(resp))
	}
	return conn, br, nil
}

// SubscribeFollow subscribes like Subscribe but follows MOVED redirects
// (at most maxHops of them) — the way to reach a session through the
// cluster front tier, which always answers with the owning shard. mode
// is "" (frames) or "decoded".
func SubscribeFollow(addr, sessionID, mode string, maxHops int) (net.Conn, *bufio.Reader, error) {
	for hop := 0; ; hop++ {
		conn, br, err := subscribe(addr, sessionID, mode)
		var moved *MovedError
		if errors.As(err, &moved) {
			if hop >= maxHops {
				return nil, nil, fmt.Errorf("serve: redirect limit (%d hops): %w", maxHops, err)
			}
			addr, sessionID = moved.Addr, moved.ID
			continue
		}
		return conn, br, err
	}
}

// DecodeEstimates unpacks the payload of a RecordFlagDecoded record into
// the decoder's state estimate.
func DecodeEstimates(data []byte) ([]float64, error) {
	if len(data)%8 != 0 {
		return nil, fmt.Errorf("serve: decoded payload length %d is not a multiple of 8", len(data))
	}
	out := make([]float64, len(data)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.BigEndian.Uint64(data[i*8:]))
	}
	return out, nil
}
