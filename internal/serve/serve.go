// Package serve is the streaming session gateway: many concurrent
// implant → modem → AWGN → wearable pipelines (fleet.Pipeline) hosted
// behind two planes. The control plane is JSON over HTTP — create,
// pause, resume, snapshot, restore and delete sessions, list stats. The
// data plane is a length-prefixed binary stream over TCP — subscribers
// receive every frame a session's wearable hears, with bounded
// per-subscriber queues, an explicit drop-oldest backpressure policy
// and stall-based eviction, so one slow consumer can never stall a tick
// loop or another session.
//
// Checkpoint/restore rides the fleet package's determinism guarantee:
// a session snapshotted at tick K and restored — in this process or
// another — continues bit-identically, digest and all.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"mindful/internal/drift"
	"mindful/internal/obs"
	"mindful/internal/serve/checkpoint"
)

// Defaults for the zero Config values.
const (
	DefaultMaxSessions  = 1024
	DefaultQueueDepth   = 256
	DefaultStallTimeout = 5 * time.Second
)

// Config describes one gateway.
type Config struct {
	// ControlAddr is the HTTP control-plane listen address
	// (e.g. "127.0.0.1:0").
	ControlAddr string
	// StreamAddr is the TCP data-plane listen address.
	StreamAddr string
	// SnapshotDir, when set, receives one checkpoint per live session on
	// graceful shutdown (<id>.ckpt).
	SnapshotDir string
	// MaxSessions bounds concurrently hosted sessions (0 = default).
	MaxSessions int
	// QueueDepth is the per-subscriber record queue (0 = default). When
	// full, the oldest record is dropped and counted.
	QueueDepth int
	// StallTimeout evicts a subscriber whose connection blocks a write
	// longer than this (0 = default; negative disables eviction).
	StallTimeout time.Duration
	// TickInterval throttles every session's tick loop (0 = free-run).
	TickInterval time.Duration
	// DefaultDecoder, when set (e.g. "kalman"), attaches that decoder to
	// every created session whose config does not name one itself.
	DefaultDecoder string
	// DefaultDrift, when set, attaches that nonstationarity profile to
	// every created session that does not configure drift itself.
	DefaultDrift *drift.Profile
	// DefaultAdapt closes the recalibration loop (calibration, tracking
	// and periodic refits with the fleet's default windows) on every
	// created session that runs a linear decoder and does not set any
	// adaptive knob itself.
	DefaultAdapt bool
	// Redirect, when set, resolves sessions this gateway does not host:
	// a data-plane SUB for an unknown ID consults it and, on success,
	// answers "MOVED <addr> <id>" instead of an error — the cluster
	// front tier's subscriber-redirect hook.
	Redirect func(sessionID string) (addr, localID string, ok bool)
	// Observer optionally collects gateway metrics and traces.
	Observer *obs.Observer
}

// Server is one running gateway.
type Server struct {
	cfg Config

	mu       sync.Mutex
	sessions map[string]*Session
	nextID   uint64
	closed   bool

	// At-most-once support for a retrying control plane: restores carry
	// an Idempotency-Key header mapping token → created session, and
	// deletes of recently deleted IDs answer success again instead of
	// 404. Both records are bounded FIFO — session IDs are never reused
	// (nextID only grows), so a record aging out can only turn a very
	// stale retry into an error, never into a duplicate effect.
	idemTokens  map[string]string
	idemFIFO    []string
	deleted     map[string]struct{}
	deletedFIFO []string

	ctlLn    net.Listener
	strLn    net.Listener
	httpSrv  *http.Server
	wg       sync.WaitGroup
	ready    atomic.Bool
	draining atomic.Bool

	// events is the flight recorder's structured log (nil without an
	// observer — every Record call is nil-safe). latency is the
	// end-to-end publish→subscriber-write histogram behind the /api/stats
	// latency percentiles; always live, observed off the tick loop in
	// subscriber write loops.
	events  *obs.EventLog
	latency *obs.Histogram

	mSessions  *obs.Gauge
	mSubs      *obs.Gauge
	mCreated   *obs.Counter
	mRestored  *obs.Counter
	mPublished *obs.Counter
	mDropped   *obs.Counter
	mEvicted   *obs.Counter
	mTicks     *obs.Counter
	mDecoded   *obs.Counter
	mDecSess   *obs.Counter
	mRefits    *obs.Counter
	mKL        *obs.Gauge
}

// New returns an unstarted gateway.
func New(cfg Config) (*Server, error) {
	if cfg.ControlAddr == "" {
		cfg.ControlAddr = "127.0.0.1:0"
	}
	if cfg.StreamAddr == "" {
		cfg.StreamAddr = "127.0.0.1:0"
	}
	if cfg.MaxSessions == 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.MaxSessions < 1 {
		return nil, errors.New("serve: MaxSessions must be positive")
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.QueueDepth < 1 {
		return nil, errors.New("serve: QueueDepth must be positive")
	}
	if cfg.StallTimeout == 0 {
		cfg.StallTimeout = DefaultStallTimeout
	}
	s := &Server{
		cfg:        cfg,
		sessions:   make(map[string]*Session),
		idemTokens: make(map[string]string),
		deleted:    make(map[string]struct{}),
		// 1µs..~8s exponential buckets: a local subscriber writes within
		// microseconds; a stalled one drifts toward the eviction timeout.
		latency: obs.NewHistogram(obs.ExpBuckets(1000, 2, 24)),
	}
	if o := cfg.Observer; o != nil {
		s.events = o.Events
	}
	if o := cfg.Observer; o != nil && o.Metrics != nil {
		m := o.Metrics
		s.mSessions = m.Gauge("serve_sessions_active")
		s.mSubs = m.Gauge("serve_subscribers_active")
		s.mCreated = m.Counter("serve_sessions_created_total")
		s.mRestored = m.Counter("serve_sessions_restored_total")
		s.mPublished = m.Counter("serve_frames_published_total")
		s.mDropped = m.Counter("serve_frames_dropped_total")
		s.mEvicted = m.Counter("serve_subscribers_evicted_total")
		s.mTicks = m.Counter("serve_ticks_total")
		s.mDecoded = m.Counter("serve_decode_steps_total")
		s.mDecSess = m.Counter("serve_decode_sessions_total")
		s.mRefits = m.Counter("serve_decode_refits_total")
		s.mKL = m.Gauge("serve_decode_instability_kl")
		m.Help("serve_sessions_active", "Sessions currently hosted.")
		m.Help("serve_subscribers_active", "Data-plane subscribers currently attached.")
		m.Help("serve_sessions_created_total", "Sessions created fresh.")
		m.Help("serve_sessions_restored_total", "Sessions restored from checkpoints.")
		m.Help("serve_frames_published_total", "Frames published to the data plane.")
		m.Help("serve_frames_dropped_total", "Frames dropped by full subscriber queues.")
		m.Help("serve_subscribers_evicted_total", "Subscribers evicted for stalling.")
		m.Help("serve_ticks_total", "Pipeline ticks stepped across all sessions.")
		m.Help("serve_decode_steps_total", "Decoder steps published across all sessions.")
		m.Help("serve_decode_sessions_total", "Sessions hosted with a decoder in the loop.")
		m.Help("serve_decode_refits_total", "Closed-loop decoder recalibrations applied across all sessions.")
		m.Help("serve_decode_instability_kl", "Latest instability (KL divergence) reading at a refit, any session.")
	}
	return s, nil
}

// event records one flight-recorder entry; a no-op without an observer
// (EventLog.Record is nil-safe).
func (s *Server) event(typ, subject, detail string, attrs ...obs.EventAttr) {
	s.events.Record(typ, subject, detail, attrs...)
}

// eventsEnabled gates the per-tick fault-path diffing: the diff costs a
// Result() call per tick, so sessions skip it entirely when no event log
// is attached.
func (s *Server) eventsEnabled() bool { return s.events != nil }

// observeDelivery records one record's publish→subscriber-write latency.
func (s *Server) observeDelivery(ns int64) {
	if ns < 0 {
		ns = 0
	}
	s.latency.Observe(float64(ns))
}

// Nil-safe metric hooks.
func (s *Server) obsPublished() { s.mPublished.Inc() }
func (s *Server) obsDropped()   { s.mDropped.Inc() }
func (s *Server) obsEvicted()   { s.mEvicted.Inc() }
func (s *Server) obsTick()      { s.mTicks.Inc() }
func (s *Server) obsDecoded()   { s.mDecoded.Inc() }
func (s *Server) obsSubscribers(d float64) {
	if s.mSubs != nil {
		s.mSubs.Add(d)
	}
}

func (s *Server) queueDepth() int { return s.cfg.QueueDepth }
func (s *Server) stallTimeout() time.Duration {
	if s.cfg.StallTimeout < 0 {
		return 0
	}
	return s.cfg.StallTimeout
}

// Start binds both planes and begins serving. It returns immediately;
// use ControlAddr/StreamAddr for the bound addresses.
func (s *Server) Start() error {
	ctl, err := net.Listen("tcp", s.cfg.ControlAddr)
	if err != nil {
		return fmt.Errorf("serve: control plane: %w", err)
	}
	str, err := net.Listen("tcp", s.cfg.StreamAddr)
	if err != nil {
		ctl.Close()
		return fmt.Errorf("serve: data plane: %w", err)
	}
	s.ctlLn, s.strLn = ctl, str
	s.httpSrv = &http.Server{Handler: s.controlMux()}
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		s.httpSrv.Serve(ctl) // returns on Shutdown/Close
	}()
	go func() {
		defer s.wg.Done()
		for {
			conn, err := str.Accept()
			if err != nil {
				return
			}
			s.wg.Add(1)
			go s.serveStream(conn)
		}
	}()
	s.ready.Store(true)
	return nil
}

// Ready reports whether the gateway is accepting work: both planes
// bound, not draining, shutdown not begun — the /readyz contract.
func (s *Server) Ready() bool {
	if !s.ready.Load() || s.draining.Load() {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.closed
}

// SetDraining marks the gateway as draining for a rebalance: /readyz
// answers 503 so load balancers stop placing new work here, while the
// planes stay up for the sessions migrating off. Clearing it restores
// readiness.
func (s *Server) SetDraining(v bool) {
	if s.draining.Swap(v) != v {
		state := "end"
		if v {
			state = "begin"
		}
		s.event("gateway_drain", state, "")
	}
}

// ControlAddr returns the bound control-plane address.
func (s *Server) ControlAddr() string { return s.ctlLn.Addr().String() }

// StreamAddr returns the bound data-plane address.
func (s *Server) StreamAddr() string { return s.strLn.Addr().String() }

// session looks a session up by ID.
func (s *Server) session(id string) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sess, ok := s.sessions[id]
	if !ok {
		return nil, fmt.Errorf("serve: no session %q", id)
	}
	return sess, nil
}

// register assigns an ID and inserts the session builder's product
// under the capacity limit.
func (s *Server) register(build func(id string) (*Session, error)) (*Session, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("serve: server is shutting down")
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, fmt.Errorf("serve: session limit %d reached", s.cfg.MaxSessions)
	}
	s.nextID++
	id := fmt.Sprintf("s%06d", s.nextID)
	sess, err := build(id)
	if err != nil {
		return nil, err
	}
	s.sessions[id] = sess
	if s.mSessions != nil {
		s.mSessions.Add(1)
	}
	return sess, nil
}

// CreateSession builds a fresh pipeline session. With startPaused the
// tick loop waits for an explicit resume — the way to attach
// subscribers before the first frame. A session config that names no
// decoder inherits the gateway's DefaultDecoder; one that configures no
// nonstationarity or adaptation inherits DefaultDrift and DefaultAdapt.
func (s *Server) CreateSession(cfg checkpoint.SessionConfig, startPaused bool) (*Session, error) {
	if cfg.Decoder == "" && s.cfg.DefaultDecoder != "" && s.cfg.DefaultDecoder != "none" {
		cfg.Decoder = s.cfg.DefaultDecoder
	}
	if cfg.Drift == nil && s.cfg.DefaultDrift != nil {
		cfg.Drift = s.cfg.DefaultDrift
	}
	if s.cfg.DefaultAdapt && cfg.Decoder != "" && cfg.Decoder != "none" && cfg.Decoder != "dnn" &&
		!cfg.Calibrate && !cfg.Track && !cfg.Adapt {
		cfg.Calibrate, cfg.Track, cfg.Adapt = true, true, true
	}
	if _, err := cfg.FleetConfig(); err != nil {
		return nil, err
	}
	return s.register(func(id string) (*Session, error) {
		p, err := checkpoint.NewPipeline(cfg, 0)
		if err != nil {
			return nil, err
		}
		s.mCreated.Inc()
		sess := newSession(s, id, cfg, p, cfg.Ticks, startPaused)
		if sess.hasDecoder() {
			s.mDecSess.Inc()
		}
		s.event("session_create", id, cfg.Decoder,
			obs.EventAttr{Key: "channels", Val: float64(cfg.Channels)},
			obs.EventAttr{Key: "ticks", Val: float64(cfg.Ticks)})
		return sess, nil
	})
}

// RestoreSession rebuilds a session from a checkpoint blob. ticks > 0
// overrides the session's tick target — the way to extend a finished
// session's run; 0 keeps the checkpointed target.
func (s *Server) RestoreSession(blob []byte, ticks int, startPaused bool) (*Session, error) {
	cfg, p, err := checkpoint.Restore(blob)
	if err != nil {
		return nil, err
	}
	if ticks > 0 {
		if ticks < p.Tick() {
			p.Close()
			return nil, fmt.Errorf("serve: tick target %d behind checkpoint tick %d", ticks, p.Tick())
		}
		cfg.Ticks = ticks
	}
	sess, err := s.register(func(id string) (*Session, error) {
		s.mRestored.Inc()
		sess := newSession(s, id, cfg, p, cfg.Ticks, startPaused)
		if sess.hasDecoder() {
			s.mDecSess.Inc()
		}
		s.event("session_restore", id, cfg.Decoder,
			obs.EventAttr{Key: "tick", Val: float64(p.Tick())},
			obs.EventAttr{Key: "ticks", Val: float64(cfg.Ticks)})
		return sess, nil
	})
	if err != nil {
		p.Close()
		return nil, err
	}
	return sess, nil
}

// Bounds for the idempotency records: tokens cover in-flight retry
// windows (one per restore call), the deleted ring covers delete
// retries arriving after the first attempt already landed.
const (
	maxIdemTokens = 1024
	maxDeletedIDs = 4096
)

// idemLookup returns the session a prior attempt with this token
// created, if the token is known and the session still exists.
func (s *Server) idemLookup(token string) (*Session, bool) {
	if token == "" {
		return nil, false
	}
	s.mu.Lock()
	id, ok := s.idemTokens[token]
	var sess *Session
	if ok {
		sess = s.sessions[id]
	}
	s.mu.Unlock()
	if !ok || sess == nil {
		return nil, false
	}
	return sess, true
}

// idemRecord binds a token to the session its first attempt created.
// Callers hold no locks.
func (s *Server) idemRecord(token, id string) {
	if token == "" {
		return
	}
	s.mu.Lock()
	if _, dup := s.idemTokens[token]; !dup {
		s.idemTokens[token] = id
		s.idemFIFO = append(s.idemFIFO, token)
		if len(s.idemFIFO) > maxIdemTokens {
			delete(s.idemTokens, s.idemFIFO[0])
			s.idemFIFO = s.idemFIFO[1:]
		}
	}
	s.mu.Unlock()
}

// idemDeleted reports whether an unknown session ID was deleted
// recently — a retried DELETE whose first attempt already landed.
func (s *Server) idemDeleted(id string) bool {
	s.mu.Lock()
	_, ok := s.deleted[id]
	s.mu.Unlock()
	return ok
}

// DeleteSession halts, releases and forgets a session.
func (s *Server) DeleteSession(id string) error {
	s.mu.Lock()
	sess, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
		if _, dup := s.deleted[id]; !dup {
			s.deleted[id] = struct{}{}
			s.deletedFIFO = append(s.deletedFIFO, id)
			if len(s.deletedFIFO) > maxDeletedIDs {
				delete(s.deleted, s.deletedFIFO[0])
				s.deletedFIFO = s.deletedFIFO[1:]
			}
		}
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("serve: no session %q", id)
	}
	s.event("session_delete", id, "")
	sess.halt()
	sess.release()
	if s.mSessions != nil {
		s.mSessions.Add(-1)
	}
	return nil
}

// Sessions lists the hosted sessions' infos, ordered by ID.
func (s *Server) Sessions() []SessionInfo {
	s.mu.Lock()
	list := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		list = append(list, sess)
	}
	s.mu.Unlock()
	infos := make([]SessionInfo, 0, len(list))
	for _, sess := range list {
		infos = append(infos, sess.info())
	}
	sortInfos(infos)
	return infos
}

func sortInfos(infos []SessionInfo) {
	for i := 1; i < len(infos); i++ {
		for j := i; j > 0 && infos[j].ID < infos[j-1].ID; j-- {
			infos[j], infos[j-1] = infos[j-1], infos[j]
		}
	}
}

// Shutdown drains the gateway: stop accepting, halt every tick loop at
// its next boundary, snapshot live sessions to SnapshotDir (when
// configured), release everything and wait for the workers, all bounded
// by ctx.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.sessions = make(map[string]*Session)
	s.mu.Unlock()

	s.strLn.Close()
	httpErr := s.httpSrv.Shutdown(ctx)

	var snapErr error
	for _, sess := range sessions {
		s.event("session_drain", sess.ID, "")
		sess.halt()
		if s.cfg.SnapshotDir != "" {
			if blob, err := sess.snapshot(); err == nil {
				path := filepath.Join(s.cfg.SnapshotDir, sess.ID+".ckpt")
				if err := os.WriteFile(path, blob, 0o644); err != nil && snapErr == nil {
					snapErr = err
				}
			} else if snapErr == nil && !errors.Is(err, errSessionFailed) {
				snapErr = err
			}
		}
		sess.release()
		if s.mSessions != nil {
			s.mSessions.Add(-1)
		}
	}

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if httpErr != nil {
		return httpErr
	}
	return snapErr
}

// Kill stops the gateway the way SIGKILL would, minus the leaked
// goroutines: both listeners close immediately, every subscriber
// connection is severed mid-record, and no drain checkpoints are
// written. Sessions vanish with whatever state they had — recovery is
// the cluster's business, from checkpoints taken before the kill. The
// chaos tests use it to stand in for a gateway process dying.
func (s *Server) Kill() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	sessions := make([]*Session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		sessions = append(sessions, sess)
	}
	s.sessions = make(map[string]*Session)
	s.mu.Unlock()

	s.ready.Store(false)
	s.strLn.Close()
	s.httpSrv.Close() // closes the control listener and every live conn
	for _, sess := range sessions {
		sess.halt()
		sess.release()
		if s.mSessions != nil {
			s.mSessions.Add(-1)
		}
	}
	s.wg.Wait()
}

// errSessionFailed lets Shutdown skip snapshotting failed sessions
// without masking real snapshot errors.
var errSessionFailed = errors.New("serve: session failed")
