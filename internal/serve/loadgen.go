package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"mindful/internal/obs"
	"mindful/internal/serve/checkpoint"
)

// The load generator exercises a gateway end to end: it creates many
// concurrent sessions paused, attaches subscribers over the real TCP
// data plane, resumes everything at once and reads every record,
// measuring client-side delivery latency (read time − publish time).
// It is the source of BENCH_serve.json.

// LoadConfig describes one load run.
type LoadConfig struct {
	// Sessions and SubsPerSession set the fan-out; Ticks the per-session
	// run length.
	Sessions       int
	SubsPerSession int
	Ticks          int

	// Session is the per-session pipeline configuration; the seed is
	// offset per session so no two sessions share streams. Ticks is
	// overridden by the field above.
	Session checkpoint.SessionConfig

	// Decoder, when set, attaches that decoder to every session that does
	// not name one itself — the cost of decode-in-the-loop shows up in
	// the latency percentiles.
	Decoder string

	// Server optionally targets an already-running gateway; nil
	// self-hosts one on loopback for the duration of the run.
	Server *Server
}

// DefaultLoadConfig returns the BENCH_serve baseline: 100 sessions × 2
// subscribers × 100 frames of a 32-channel 16-QAM implant.
func DefaultLoadConfig() LoadConfig {
	return LoadConfig{
		Sessions:       100,
		SubsPerSession: 2,
		Ticks:          100,
		Session: checkpoint.SessionConfig{
			Channels:     32,
			SampleRateHz: 2000,
			SampleBits:   10,
			QAMBits:      4,
			EbN0dB:       12,
			Seed:         1,
		},
	}
}

// LoadResult summarizes one load run.
type LoadResult struct {
	Sessions       int     `json:"sessions"`
	SubsPerSession int     `json:"subs_per_session"`
	Ticks          int     `json:"ticks"`
	Records        int64   `json:"records_received"`
	Dropped        int64   `json:"dropped_frames"`
	Evicted        int64   `json:"evicted_subscribers"`
	DecodedSteps   int64   `json:"decoded_steps,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	FramesPerSec   float64 `json:"frames_per_sec"`
	// Latency percentiles are histogram-estimated (obs.Histogram.Quantile)
	// rather than sorted-sample exact; Max is the exact observed maximum.
	P50LatencyMs  float64 `json:"p50_delivery_latency_ms"`
	P99LatencyMs  float64 `json:"p99_delivery_latency_ms"`
	P999LatencyMs float64 `json:"p999_delivery_latency_ms"`
	MaxLatencyMs  float64 `json:"max_delivery_latency_ms"`
}

// loadLatencyBuckets spans 1µs..~90s in milliseconds — client-side
// delivery latency from loopback microseconds to stall-eviction tails.
func loadLatencyBuckets() []float64 {
	return obs.ExpBuckets(0.001, 1.6, 40)
}

// RunLoad executes the load scenario and returns its measurements.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Sessions < 1 || cfg.SubsPerSession < 0 || cfg.Ticks < 1 {
		return nil, errors.New("serve: load config needs sessions ≥ 1, subs ≥ 0, ticks ≥ 1")
	}
	srv := cfg.Server
	if srv == nil {
		var err error
		srv, err = New(Config{})
		if err != nil {
			return nil, err
		}
		if err := srv.Start(); err != nil {
			return nil, err
		}
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			srv.Shutdown(ctx)
		}()
	}
	ctlURL := "http://" + srv.ControlAddr()
	streamAddr := srv.StreamAddr()

	start := time.Now()

	// Create every session paused, so subscribers attach before frame 0.
	ids := make([]string, cfg.Sessions)
	for i := range ids {
		scfg := cfg.Session
		scfg.Seed += int64(i) // independent streams per session
		scfg.Ticks = cfg.Ticks
		if scfg.Decoder == "" {
			scfg.Decoder = cfg.Decoder
		}
		info, err := createSession(ctlURL, CreateRequest{SessionConfig: scfg, StartPaused: true})
		if err != nil {
			return nil, err
		}
		ids[i] = info.ID
	}

	// Attach the subscribers; each observes the latency of every record
	// into a shared histogram (atomic buckets — no post-hoc sort) and
	// tracks its exact local maximum.
	type subResult struct {
		records int64
		maxMs   float64
		err     error
	}
	latHist := obs.NewHistogram(loadLatencyBuckets())
	nSubs := cfg.Sessions * cfg.SubsPerSession
	results := make([]subResult, nSubs)
	var wg sync.WaitGroup
	ready := make(chan error, nSubs)
	for i := 0; i < nSubs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			conn, br, err := Subscribe(streamAddr, ids[i%cfg.Sessions])
			ready <- err
			if err != nil {
				results[i].err = err
				return
			}
			defer conn.Close()
			for {
				rec, err := ReadRecord(br)
				if err != nil {
					if err != io.EOF {
						results[i].err = err
					}
					break
				}
				results[i].records++
				ms := float64(time.Now().UnixNano()-rec.PublishNs) / 1e6
				latHist.Observe(ms)
				if ms > results[i].maxMs {
					results[i].maxMs = ms
				}
			}
		}(i)
	}
	for i := 0; i < nSubs; i++ {
		if err := <-ready; err != nil {
			return nil, fmt.Errorf("serve: subscribe: %w", err)
		}
	}

	// Fire: resume every session.
	for _, id := range ids {
		if err := post(ctlURL+"/api/sessions/"+id+"/resume", nil); err != nil {
			return nil, err
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := &LoadResult{
		Sessions:       cfg.Sessions,
		SubsPerSession: cfg.SubsPerSession,
		Ticks:          cfg.Ticks,
		ElapsedSeconds: elapsed.Seconds(),
	}
	for i := range results {
		if err := results[i].err; err != nil {
			return nil, fmt.Errorf("serve: subscriber %d: %w", i, err)
		}
		res.Records += results[i].records
		if results[i].maxMs > res.MaxLatencyMs {
			res.MaxLatencyMs = results[i].maxMs
		}
	}
	for _, id := range ids {
		info, err := getSession(ctlURL, id)
		if err != nil {
			return nil, err
		}
		res.Dropped += info.Dropped
		res.Evicted += info.Evicted
		res.DecodedSteps += info.DecodedSteps
	}
	if s := elapsed.Seconds(); s > 0 {
		res.SessionsPerSec = float64(cfg.Sessions) / s
		res.FramesPerSec = float64(res.Records) / s
	}
	res.P50LatencyMs = latHist.Quantile(0.50)
	res.P99LatencyMs = latHist.Quantile(0.99)
	res.P999LatencyMs = latHist.Quantile(0.999)
	return res, nil
}

// Minimal HTTP helpers — the control plane is plain JSON.

func createSession(base string, req CreateRequest) (SessionInfo, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return SessionInfo{}, err
	}
	resp, err := http.Post(base+"/api/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		return SessionInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return SessionInfo{}, httpError("create session", resp)
	}
	var info SessionInfo
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

func getSession(base, id string) (SessionInfo, error) {
	resp, err := http.Get(base + "/api/sessions/" + id)
	if err != nil {
		return SessionInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return SessionInfo{}, httpError("get session", resp)
	}
	var info SessionInfo
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

func post(url string, body []byte) error {
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return httpError("post "+url, resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}

func httpError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	return fmt.Errorf("serve: %s: HTTP %d: %s", op, resp.StatusCode, bytes.TrimSpace(msg))
}
