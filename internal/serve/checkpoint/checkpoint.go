// Package checkpoint is the serve gateway's versioned snapshot codec: a
// session's full configuration and pipeline state serialized to a
// self-describing binary blob. A blob decoded by the same or a newer
// binary restores a pipeline that continues bit-identically — the fleet
// checkpoint tests' guarantee carried across a process boundary.
//
// Format (all integers big-endian):
//
//	magic    [4]byte  "MFCP"
//	version  uint16   format version (currently 2)
//	config   fixed-order session configuration
//	state    fixed-order pipeline state (see encode/decode below)
//
// Version 2 appends the decode-stage sections to the v1 layout: the
// decoder selection after the fault profile in the config, and the
// decoder's serialized state after the electrode gains in the state.
// The v1 prefix is unchanged, so v1 blobs decode under this package
// (decoder absent) bit-identically — the committed golden blob pins it.
//
// Version 3 appends the nonstationarity sections after the v2 layout:
// the drift profile and the adaptive-decoding knobs at the end of the
// config, and the drift-process and adapt-stage (instability meter,
// supervision rings, mutated decoder model) state at the end of the
// state. The v2 prefix is byte-identical, so v1 and v2 blobs decode
// under this package with drift and adaptation absent — the committed
// v1 and v2 golden blobs pin it.
//
// Versioning rules (documented in DESIGN.md): the version is bumped on
// any field change; decoders reject versions they do not know rather
// than guessing; fields are only ever appended within a version's
// lifetime during development, never reordered after release. Every
// length field is bounded, and truncated or trailing bytes are errors —
// malformed input must never panic or allocate unboundedly (the fuzz
// targets FuzzCheckpointDecode and FuzzDecodeCheckpointV2 pin this).
package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"

	"mindful/internal/comm"
	"mindful/internal/decode"
	"mindful/internal/detrand"
	"mindful/internal/drift"
	"mindful/internal/fault"
	"mindful/internal/fleet"
	"mindful/internal/units"
	"mindful/internal/wearable"
)

// Magic identifies a MINDFUL serve checkpoint blob.
var Magic = [4]byte{'M', 'F', 'C', 'P'}

// Version is the current format version. VersionV1 is the oldest
// format this package still decodes.
const (
	Version   uint16 = 3
	VersionV2 uint16 = 2
	VersionV1 uint16 = 1
)

// maxSliceLen bounds every decoded length field: larger values cannot
// come from a real session (pending buffers, gains and sample vectors
// are all O(channels)) and would let a forged header force a huge
// allocation.
const maxSliceLen = 1 << 20

// Decoding errors.
var (
	ErrBadMagic    = errors.New("checkpoint: bad magic")
	ErrBadVersion  = errors.New("checkpoint: unsupported version")
	ErrTruncated   = errors.New("checkpoint: truncated")
	ErrTrailing    = errors.New("checkpoint: trailing bytes")
	ErrLengthBound = errors.New("checkpoint: length field exceeds bound")
	ErrNonFinite   = errors.New("checkpoint: non-finite float field")
)

// SessionConfig is the serializable subset of fleet.Config a serve
// session runs under: everything that determines the simulation, nothing
// that binds to the process (observers, worker counts).
type SessionConfig struct {
	Channels     int     `json:"channels"`
	SampleRateHz float64 `json:"sample_rate_hz"`
	SampleBits   int     `json:"sample_bits"`
	// QAMBits selects the modem: 0 = OOK, 1 = BPSK, an even value n =
	// square 2^n-QAM.
	QAMBits int     `json:"qam_bits"`
	EbN0dB  float64 `json:"ebn0_db"`
	Seed    int64   `json:"seed"`
	// Ticks is the session's planned run length; the tick loop stops
	// there (0 = run until deleted).
	Ticks int `json:"ticks"`

	ARQMaxRetries    int           `json:"arq_max_retries"`
	ARQSlotTime      time.Duration `json:"arq_slot_time"`
	ARQLatencyBudget time.Duration `json:"arq_latency_budget"`
	FECDepth         int           `json:"fec_depth"`
	// Concealment is the wearable strategy (0 none, 1 hold, 2 interp).
	Concealment int `json:"concealment"`

	// Faults optionally enables the deterministic fault profile.
	Faults *fault.Profile `json:"faults,omitempty"`

	// Decoder selects the in-loop decoder ("" or "none" disables;
	// "kalman", "wiener", "dnn" enable). DecodeBin, DecodeLags and
	// DecodeHidden tune it (0 = defaults). Added in format version 2;
	// v1 blobs decode with the zero values.
	Decoder      string `json:"decoder,omitempty"`
	DecodeBin    int    `json:"decode_bin,omitempty"`
	DecodeLags   int    `json:"decode_lags,omitempty"`
	DecodeHidden int    `json:"decode_hidden,omitempty"`

	// Drift optionally enables the nonstationarity process. Added in
	// format version 3; earlier blobs decode with it absent.
	Drift *drift.Profile `json:"drift,omitempty"`

	// Adaptive-decoding knobs (v3): Calibrate fits the day-0 decoder
	// from the implant's own simulated cortex; Track attaches the
	// instability meter and error scoring; Adapt additionally closes
	// the loop with periodic recalibration. The Refit*/Meter* fields
	// tune the loop (0 = fleet defaults).
	Calibrate   bool    `json:"calibrate,omitempty"`
	Track       bool    `json:"track,omitempty"`
	Adapt       bool    `json:"adapt,omitempty"`
	RefitEvery  int     `json:"refit_every,omitempty"`
	RefitBuffer int     `json:"refit_buffer,omitempty"`
	RefitBlend  float64 `json:"refit_blend,omitempty"`
	RefitJitter float64 `json:"refit_jitter,omitempty"`
	MeterRef    int     `json:"meter_ref,omitempty"`
	MeterWin    int     `json:"meter_win,omitempty"`
}

// decodeConfig parses the decoder selection.
func (c SessionConfig) decodeConfig() (fleet.DecodeConfig, error) {
	kind, err := fleet.ParseDecoderKind(c.Decoder)
	if err != nil {
		return fleet.DecodeConfig{}, err
	}
	return fleet.DecodeConfig{
		Kind:        kind,
		BinTicks:    c.DecodeBin,
		Lags:        c.DecodeLags,
		Hidden:      c.DecodeHidden,
		Calibrate:   c.Calibrate,
		Track:       c.Track,
		Adapt:       c.Adapt,
		RefitEvery:  c.RefitEvery,
		RefitBuffer: c.RefitBuffer,
		RefitBlend:  c.RefitBlend,
		RefitJitter: c.RefitJitter,
		MeterRef:    c.MeterRef,
		MeterWin:    c.MeterWin,
	}, nil
}

// FleetConfig expands the session config into a single-implant fleet
// config (Implants/Workers/Observer are the caller's business).
func (c SessionConfig) FleetConfig() (fleet.Config, error) {
	var mod comm.Modulation
	switch {
	case c.QAMBits == 0:
		mod = comm.OOK{}
	case c.QAMBits == 1 || c.QAMBits%2 == 0:
		mod = comm.NewQAM(c.QAMBits)
	default:
		return fleet.Config{}, fmt.Errorf("checkpoint: unsupported QAM bits %d", c.QAMBits)
	}
	if c.Concealment < 0 || c.Concealment > int(wearable.ConcealInterp) {
		return fleet.Config{}, fmt.Errorf("checkpoint: unknown concealment %d", c.Concealment)
	}
	if c.Ticks < 0 {
		return fleet.Config{}, fmt.Errorf("checkpoint: negative ticks %d", c.Ticks)
	}
	dec, err := c.decodeConfig()
	if err != nil {
		return fleet.Config{}, err
	}
	cfg := fleet.Config{
		Implants:    1,
		Workers:     1,
		Ticks:       max(c.Ticks, 1),
		Channels:    c.Channels,
		SampleRate:  units.Hertz(c.SampleRateHz),
		SampleBits:  c.SampleBits,
		Modulation:  mod,
		EbN0dB:      c.EbN0dB,
		Seed:        c.Seed,
		Faults:      c.Faults,
		ARQ:         comm.ARQConfig{MaxRetries: c.ARQMaxRetries, SlotTime: c.ARQSlotTime, LatencyBudget: c.ARQLatencyBudget},
		FECDepth:    c.FECDepth,
		Concealment: wearable.Concealment(c.Concealment),
		Decode:      dec,
		Drift:       c.Drift,
	}
	if err := cfg.Validate(); err != nil {
		return fleet.Config{}, err
	}
	return cfg, nil
}

// Checkpoint is one session's frozen state.
type Checkpoint struct {
	Config SessionConfig
	State  fleet.PipelineState
}

// writer appends fixed-width fields.
type writer struct{ b []byte }

func (w *writer) u8(v uint8)    { w.b = append(w.b, v) }
func (w *writer) u16(v uint16)  { w.b = binary.BigEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32)  { w.b = binary.BigEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64)  { w.b = binary.BigEndian.AppendUint64(w.b, v) }
func (w *writer) i64(v int64)   { w.u64(uint64(v)) }
func (w *writer) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *writer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}

func (w *writer) rng(st detrand.State) {
	w.i64(st.Seed)
	w.u64(st.Draws)
}

func (w *writer) f64s(v []float64) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.f64(x)
	}
}

func (w *writer) bools(v []bool) {
	w.u32(uint32(len(v)))
	for _, x := range v {
		w.boolean(x)
	}
}

// reader consumes fixed-width fields, remembering the first error so
// call sites stay linear.
type reader struct {
	b   []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = ErrTruncated
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *reader) i64() int64 { return int64(r.u64()) }

// f64 rejects non-finite values: no pipeline component can snapshot a
// NaN or Inf (decoders error on non-finite input before it reaches
// state), so any such bit pattern is a forged blob — and NaN would
// silently break the decode/encode round-trip invariant (NaN ≠ NaN).
func (r *reader) f64() float64 {
	v := math.Float64frombits(r.u64())
	if r.err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
		r.err = ErrNonFinite
		return 0
	}
	return v
}

func (r *reader) boolean() bool {
	switch r.u8() {
	case 0:
		return false
	case 1:
		return true
	default:
		if r.err == nil {
			r.err = errors.New("checkpoint: non-canonical bool")
		}
		return false
	}
}

// length reads a u32 length field bounded by maxSliceLen.
func (r *reader) length() int {
	n := r.u32()
	if r.err == nil && n > maxSliceLen {
		r.err = ErrLengthBound
		return 0
	}
	// A length can never exceed the remaining bytes (every element is at
	// least one byte) — reject early instead of allocating on faith.
	if r.err == nil && int(n) > len(r.b) {
		r.err = ErrTruncated
		return 0
	}
	return int(n)
}

func (r *reader) rng() detrand.State {
	return detrand.State{Seed: r.i64(), Draws: r.u64()}
}

func (r *reader) f64s() []float64 {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = r.f64()
	}
	return out
}

func (r *reader) bools() []bool {
	n := r.length()
	if r.err != nil || n == 0 {
		return nil
	}
	out := make([]bool, n)
	for i := range out {
		out[i] = r.boolean()
	}
	return out
}

// Encode serializes the checkpoint.
func Encode(cp Checkpoint) []byte {
	w := &writer{b: make([]byte, 0, 512)}
	w.b = append(w.b, Magic[:]...)
	w.u16(Version)

	// Session configuration.
	c := cp.Config
	w.u32(uint32(c.Channels))
	w.f64(c.SampleRateHz)
	w.u8(uint8(c.SampleBits))
	w.u8(uint8(c.QAMBits))
	w.f64(c.EbN0dB)
	w.i64(c.Seed)
	w.u64(uint64(c.Ticks))
	w.u32(uint32(c.ARQMaxRetries))
	w.i64(int64(c.ARQSlotTime))
	w.i64(int64(c.ARQLatencyBudget))
	w.u32(uint32(c.FECDepth))
	w.u8(uint8(c.Concealment))
	w.boolean(c.Faults != nil)
	if c.Faults != nil {
		p := c.Faults
		w.f64(p.BurstPGB)
		w.f64(p.BurstPBG)
		w.f64(p.BERGood)
		w.f64(p.BERBad)
		w.f64(p.FrameLoss)
		w.f64(p.DeadFrac)
		w.f64(p.StuckFrac)
		w.f64(p.DriftFrac)
		w.f64(p.DriftRate)
		w.f64(p.BrownoutProb)
		w.u32(uint32(p.BrownoutTicks))
	}
	// Decoder selection (v2). Snapshot validates the config, so an
	// unparseable decoder name cannot reach here; encode it as none.
	dec, _ := c.decodeConfig()
	w.u8(uint8(dec.Kind))
	w.u32(uint32(c.DecodeBin))
	w.u32(uint32(c.DecodeLags))
	w.u32(uint32(c.DecodeHidden))
	// Nonstationarity and adaptive-decoding config (v3).
	w.boolean(c.Drift != nil)
	if p := c.Drift; p != nil {
		w.f64(p.RotationSigma)
		w.f64(p.GainSigma)
		w.f64(p.BaselineSigma)
		w.f64(p.TurnoverProb)
		w.f64(p.LossProb)
		w.u32(uint32(p.EpochTicks))
	}
	w.boolean(c.Calibrate)
	w.boolean(c.Track)
	w.boolean(c.Adapt)
	w.u32(uint32(c.RefitEvery))
	w.u32(uint32(c.RefitBuffer))
	w.f64(c.RefitBlend)
	w.f64(c.RefitJitter)
	w.u32(uint32(c.MeterRef))
	w.u32(uint32(c.MeterWin))

	// Pipeline state.
	st := cp.State
	w.u64(uint64(st.Tick))
	res := st.Counters
	w.u32(uint32(res.Index))
	w.u32(uint32(res.Worker))
	for _, v := range []int64{
		res.Frames, res.Accepted, res.Corrupt, res.LostSeq,
		res.BitsSent, res.BitErrors, res.Blanked, res.LinkDropped,
		res.Retransmits, res.Recovered, res.ARQFailed, res.RetransmitBits,
		res.FECCorrected, res.Stale, res.Concealed, res.ConcealedSamples,
		res.DataBits, res.DataBitErrors,
	} {
		w.i64(v)
	}
	w.u32(uint32(res.FaultyChannels))
	w.u64(res.Digest)

	w.rng(st.Gen.RNG)
	w.u32(uint32(len(st.Gen.Pending)))
	for _, v := range st.Gen.Pending {
		w.f64(v)
	}
	w.u32(uint32(len(st.Gen.PendHead)))
	for _, v := range st.Gen.PendHead {
		w.u32(uint32(v))
	}
	w.f64(st.Gen.Intent[0])
	w.f64(st.Gen.Intent[1])
	w.f64(st.Gen.LFPY1)
	w.f64(st.Gen.LFPY2)
	w.u64(uint64(st.Gen.T))

	w.rng(st.Channel.RNG)
	w.u32(st.PktSeq)

	w.boolean(st.Rx.Started)
	w.u32(st.Rx.NextSeq)
	rs := st.Rx.Stats
	for _, v := range []int64{rs.Accepted, rs.Corrupted, rs.LostSeq, rs.Stale, rs.Concealed, rs.ConcealedSamples} {
		w.i64(v)
	}
	w.u32(uint32(len(st.Rx.LastSamples)))
	for _, v := range st.Rx.LastSamples {
		w.u16(v)
	}

	a := st.ARQ
	for _, v := range []int64{a.Sent, a.Delivered, a.Failed, a.Recovered, a.Retransmits, a.RetransmitBits, a.NACKs} {
		w.i64(v)
	}
	w.i64(st.FECCorrected)

	w.boolean(st.Link != nil)
	if st.Link != nil {
		w.rng(st.Link.RNG)
		w.boolean(st.Link.Bad)
		ls := st.Link.Stats
		for _, v := range []int64{ls.Frames, ls.DroppedFrames, ls.BitFlips, ls.BadBits} {
			w.i64(v)
		}
	}
	w.boolean(st.Brown != nil)
	if st.Brown != nil {
		w.rng(st.Brown.RNG)
		w.u32(uint32(st.Brown.Remaining))
		w.i64(st.Brown.Events)
		w.i64(st.Brown.Blanked)
	}
	w.u32(uint32(len(st.ElecGains)))
	for _, v := range st.ElecGains {
		w.f64(v)
	}

	// Decode-stage state (v2).
	w.boolean(st.Decode != nil)
	if d := st.Decode; d != nil {
		w.f64s(d.BinSums)
		w.u32(uint32(d.BinCount))
		w.u32(uint32(d.BinConcealed))
		w.i64(d.Steps)
		w.i64(d.ConcealedBins)
		w.i64(d.MACs)
		w.u64(d.Digest)
		w.f64s(d.KalmanX)
		w.f64s(d.KalmanP)
		w.f64s(d.WienerLag)
	}

	// Drift-process and adapt-stage state (v3).
	w.boolean(st.Drift != nil)
	if d := st.Drift; d != nil {
		w.rng(d.RNG)
		w.u64(uint64(d.Tick))
		w.f64s(d.Theta)
		w.f64s(d.RateScale)
		w.f64s(d.AmpGain)
		w.bools(d.Alive)
		w.i64(d.Epochs)
		w.i64(d.Turnovers)
		w.i64(d.Lost)
	}
	w.boolean(st.Adapt != nil)
	if a := st.Adapt; a != nil {
		m := a.Meter
		w.f64s(m.RefSum)
		w.f64s(m.RefSqSum)
		w.u32(uint32(m.RefCount))
		w.f64s(m.Ring)
		w.u32(uint32(m.RingHead))
		w.u32(uint32(m.RingFill))
		w.boolean(a.Recal != nil)
		if rc := a.Recal; rc != nil {
			w.f64s(rc.Obs)
			w.f64s(rc.Intent)
			w.u32(uint32(rc.Count))
			w.u32(uint32(rc.Head))
			w.u32(uint32(rc.SinceRefit))
			w.i64(rc.Refits)
		}
		w.boolean(a.Model != nil)
		if ms := a.Model; ms != nil {
			w.f64s(ms.H)
			w.f64s(ms.Q)
			w.f64s(ms.W)
			w.f64s(ms.K)
		}
		w.rng(a.RNG)
		w.f64(a.SqErr)
		w.i64(a.ErrBins)
		w.f64(a.LastKL)
		w.boolean(a.KLValid)
	}
	return w.b
}

// Decode parses a checkpoint blob. Malformed input returns an error —
// never a panic, never an unbounded allocation.
func Decode(buf []byte) (Checkpoint, error) {
	var cp Checkpoint
	r := &reader{b: buf}
	if m := r.take(4); r.err != nil || [4]byte(m) != Magic {
		if r.err == nil {
			r.err = ErrBadMagic
		}
		return cp, r.err
	}
	v := r.u16()
	if r.err == nil && (v < VersionV1 || v > Version) {
		r.err = fmt.Errorf("%w: %d (this build supports %d..%d)", ErrBadVersion, v, VersionV1, Version)
	}
	if r.err != nil {
		return cp, r.err
	}

	c := &cp.Config
	c.Channels = int(r.u32())
	c.SampleRateHz = r.f64()
	c.SampleBits = int(r.u8())
	c.QAMBits = int(r.u8())
	c.EbN0dB = r.f64()
	c.Seed = r.i64()
	c.Ticks = int(r.u64())
	c.ARQMaxRetries = int(r.u32())
	c.ARQSlotTime = time.Duration(r.i64())
	c.ARQLatencyBudget = time.Duration(r.i64())
	c.FECDepth = int(r.u32())
	c.Concealment = int(r.u8())
	if r.boolean() {
		var p fault.Profile
		p.BurstPGB = r.f64()
		p.BurstPBG = r.f64()
		p.BERGood = r.f64()
		p.BERBad = r.f64()
		p.FrameLoss = r.f64()
		p.DeadFrac = r.f64()
		p.StuckFrac = r.f64()
		p.DriftFrac = r.f64()
		p.DriftRate = r.f64()
		p.BrownoutProb = r.f64()
		p.BrownoutTicks = int(r.u32())
		c.Faults = &p
	}
	if v >= 2 {
		// v2 predates the fixed-gain decoder, so its blobs cannot name it.
		maxKind := fleet.DecoderDNN
		if v >= 3 {
			maxKind = fleet.DecoderFixed
		}
		kind := fleet.DecoderKind(r.u8())
		if r.err == nil && (kind < fleet.DecoderNone || kind > maxKind) {
			r.err = fmt.Errorf("checkpoint: unknown decoder kind %d", int(kind))
			return cp, r.err
		}
		if kind != fleet.DecoderNone {
			c.Decoder = kind.String()
		}
		c.DecodeBin = int(r.u32())
		c.DecodeLags = int(r.u32())
		c.DecodeHidden = int(r.u32())
	}
	if v >= 3 {
		if r.boolean() {
			var p drift.Profile
			p.RotationSigma = r.f64()
			p.GainSigma = r.f64()
			p.BaselineSigma = r.f64()
			p.TurnoverProb = r.f64()
			p.LossProb = r.f64()
			p.EpochTicks = int(r.u32())
			c.Drift = &p
		}
		c.Calibrate = r.boolean()
		c.Track = r.boolean()
		c.Adapt = r.boolean()
		c.RefitEvery = int(r.u32())
		c.RefitBuffer = int(r.u32())
		c.RefitBlend = r.f64()
		c.RefitJitter = r.f64()
		c.MeterRef = int(r.u32())
		c.MeterWin = int(r.u32())
	}

	st := &cp.State
	st.Tick = int(r.u64())
	res := &st.Counters
	res.Index = int(r.u32())
	res.Worker = int(r.u32())
	for _, dst := range []*int64{
		&res.Frames, &res.Accepted, &res.Corrupt, &res.LostSeq,
		&res.BitsSent, &res.BitErrors, &res.Blanked, &res.LinkDropped,
		&res.Retransmits, &res.Recovered, &res.ARQFailed, &res.RetransmitBits,
		&res.FECCorrected, &res.Stale, &res.Concealed, &res.ConcealedSamples,
		&res.DataBits, &res.DataBitErrors,
	} {
		*dst = r.i64()
	}
	res.FaultyChannels = int(r.u32())
	res.Digest = r.u64()

	st.Gen.RNG = r.rng()
	if n := r.length(); r.err == nil && n > 0 {
		st.Gen.Pending = make([]float64, n)
		for i := range st.Gen.Pending {
			st.Gen.Pending[i] = r.f64()
		}
	}
	if n := r.length(); r.err == nil && n > 0 {
		st.Gen.PendHead = make([]int, n)
		for i := range st.Gen.PendHead {
			st.Gen.PendHead[i] = int(r.u32())
		}
	}
	st.Gen.Intent[0] = r.f64()
	st.Gen.Intent[1] = r.f64()
	st.Gen.LFPY1 = r.f64()
	st.Gen.LFPY2 = r.f64()
	st.Gen.T = int(r.u64())

	st.Channel.RNG = r.rng()
	st.PktSeq = r.u32()

	st.Rx.Started = r.boolean()
	st.Rx.NextSeq = r.u32()
	rs := &st.Rx.Stats
	for _, dst := range []*int64{&rs.Accepted, &rs.Corrupted, &rs.LostSeq, &rs.Stale, &rs.Concealed, &rs.ConcealedSamples} {
		*dst = r.i64()
	}
	if n := r.length(); r.err == nil && n > 0 {
		st.Rx.LastSamples = make([]uint16, n)
		for i := range st.Rx.LastSamples {
			st.Rx.LastSamples[i] = r.u16()
		}
	}

	a := &st.ARQ
	for _, dst := range []*int64{&a.Sent, &a.Delivered, &a.Failed, &a.Recovered, &a.Retransmits, &a.RetransmitBits, &a.NACKs} {
		*dst = r.i64()
	}
	st.FECCorrected = r.i64()

	if r.boolean() {
		var ls fault.BurstLinkState
		ls.RNG = r.rng()
		ls.Bad = r.boolean()
		for _, dst := range []*int64{&ls.Stats.Frames, &ls.Stats.DroppedFrames, &ls.Stats.BitFlips, &ls.Stats.BadBits} {
			*dst = r.i64()
		}
		st.Link = &ls
	}
	if r.boolean() {
		var bs fault.BrownoutState
		bs.RNG = r.rng()
		bs.Remaining = int(r.u32())
		bs.Events = r.i64()
		bs.Blanked = r.i64()
		st.Brown = &bs
	}
	if n := r.length(); r.err == nil && n > 0 {
		st.ElecGains = make([]float64, n)
		for i := range st.ElecGains {
			st.ElecGains[i] = r.f64()
		}
	}

	if v >= 2 && r.boolean() {
		var d fleet.DecodeState
		d.BinSums = r.f64s()
		d.BinCount = int(r.u32())
		d.BinConcealed = int(r.u32())
		d.Steps = r.i64()
		d.ConcealedBins = r.i64()
		d.MACs = r.i64()
		d.Digest = r.u64()
		d.KalmanX = r.f64s()
		d.KalmanP = r.f64s()
		d.WienerLag = r.f64s()
		st.Decode = &d
	}

	if v >= 3 {
		if r.boolean() {
			var d drift.ProcessState
			d.RNG = r.rng()
			d.Tick = int(r.u64())
			d.Theta = r.f64s()
			d.RateScale = r.f64s()
			d.AmpGain = r.f64s()
			d.Alive = r.bools()
			d.Epochs = r.i64()
			d.Turnovers = r.i64()
			d.Lost = r.i64()
			st.Drift = &d
		}
		if r.boolean() {
			var a fleet.AdaptState
			a.Meter.RefSum = r.f64s()
			a.Meter.RefSqSum = r.f64s()
			a.Meter.RefCount = int(r.u32())
			a.Meter.Ring = r.f64s()
			a.Meter.RingHead = int(r.u32())
			a.Meter.RingFill = int(r.u32())
			if r.boolean() {
				var rc decode.RecalState
				rc.Obs = r.f64s()
				rc.Intent = r.f64s()
				rc.Count = int(r.u32())
				rc.Head = int(r.u32())
				rc.SinceRefit = int(r.u32())
				rc.Refits = r.i64()
				a.Recal = &rc
			}
			if r.boolean() {
				var ms decode.ModelState
				ms.H = r.f64s()
				ms.Q = r.f64s()
				ms.W = r.f64s()
				ms.K = r.f64s()
				a.Model = &ms
			}
			a.RNG = r.rng()
			a.SqErr = r.f64()
			a.ErrBins = r.i64()
			a.LastKL = r.f64()
			a.KLValid = r.boolean()
			st.Adapt = &a
		}
	}

	if r.err != nil {
		return Checkpoint{}, r.err
	}
	if len(r.b) != 0 {
		return Checkpoint{}, ErrTrailing
	}
	return cp, nil
}

// Snapshot freezes a pipeline under its session config into a blob. The
// config is validated first so the blob always round-trips.
func Snapshot(cfg SessionConfig, p *fleet.Pipeline) ([]byte, error) {
	if _, err := cfg.FleetConfig(); err != nil {
		return nil, err
	}
	st, err := p.Snapshot()
	if err != nil {
		return nil, err
	}
	return Encode(Checkpoint{Config: cfg, State: st}), nil
}

// Restore decodes a blob and rebuilds its pipeline mid-stream. The
// returned config is the session configuration the blob was taken under.
func Restore(buf []byte) (SessionConfig, *fleet.Pipeline, error) {
	cp, err := Decode(buf)
	if err != nil {
		return SessionConfig{}, nil, err
	}
	fcfg, err := cp.Config.FleetConfig()
	if err != nil {
		return SessionConfig{}, nil, err
	}
	p, err := fleet.RestorePipeline(fcfg, cp.State)
	if err != nil {
		return SessionConfig{}, nil, err
	}
	return cp.Config, p, nil
}

// NewPipeline builds a fresh pipeline for the session config at implant
// index idx.
func NewPipeline(cfg SessionConfig, idx int) (*fleet.Pipeline, error) {
	fcfg, err := cfg.FleetConfig()
	if err != nil {
		return nil, err
	}
	return fleet.NewPipeline(fcfg, idx, 0)
}
