package checkpoint

import (
	"bytes"
	"reflect"
	"testing"

	"mindful/internal/drift"
)

// adaptiveSessionConfig is the everything-on v3 session: nonstationarity,
// day-0 calibration, instability tracking and closed-loop recalibration.
// Windows are shortened so refits and KL readings land within a few
// dozen ticks.
func adaptiveSessionConfig(decoder string) SessionConfig {
	cfg := fullConfig()
	p := drift.DefaultProfile()
	p.EpochTicks = 8
	cfg.Drift = &p
	cfg.Decoder = decoder
	cfg.DecodeBin = 2
	cfg.Calibrate = true
	cfg.Track = true
	cfg.Adapt = true
	cfg.RefitEvery = 4
	cfg.RefitBuffer = 8
	cfg.RefitBlend = 0.3
	cfg.MeterRef = 4
	cfg.MeterWin = 4
	return cfg
}

// adaptiveDecoders are the decoder selections that support the v3 loop.
var adaptiveDecoders = []string{"kalman", "fixed", "wiener"}

// TestRoundTripAdaptive: the v3 sections — drift profile, adaptive knobs,
// drift-process and adapt-stage state — survive Encode → Decode exactly
// and re-encode to the same bytes.
func TestRoundTripAdaptive(t *testing.T) {
	for _, dec := range adaptiveDecoders {
		t.Run(dec, func(t *testing.T) {
			cfg := adaptiveSessionConfig(dec)
			blob := snapshotAfter(t, cfg, 24)
			cp, err := Decode(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cp.Config, cfg) {
				t.Fatalf("config round-trip: got %+v want %+v", cp.Config, cfg)
			}
			if cp.State.Drift == nil || cp.State.Adapt == nil {
				t.Fatal("v3 blob lost the drift or adapt state")
			}
			if cp.State.Adapt.Recal == nil || cp.State.Adapt.Model == nil {
				t.Fatal("adaptive blob lost the recalibration rings or model")
			}
			if again := Encode(cp); !bytes.Equal(again, blob) {
				t.Fatal("re-encoding a decoded checkpoint changed the bytes")
			}
		})
	}
}

// TestRestoreContinuesBitIdenticallyAdaptive: the resume guarantee holds
// across the codec for adaptive sessions — including mid-refit-cycle
// supervision rings and the drifted substrate. K lands between refits.
func TestRestoreContinuesBitIdenticallyAdaptive(t *testing.T) {
	const k = 18
	for _, dec := range adaptiveDecoders {
		t.Run(dec, func(t *testing.T) {
			cfg := adaptiveSessionConfig(dec)
			ref, err := NewPipeline(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2*k; i++ {
				if err := ref.Step(); err != nil {
					t.Fatal(err)
				}
			}
			want := ref.Result()
			ref.Close()
			if want.Refits == 0 {
				t.Fatal("scenario applied no refits")
			}

			blob := snapshotAfter(t, cfg, k)
			rcfg, p, err := Restore(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rcfg, cfg) {
				t.Fatalf("restored config %+v want %+v", rcfg, cfg)
			}
			for i := 0; i < k; i++ {
				if err := p.Step(); err != nil {
					t.Fatal(err)
				}
			}
			if got := p.Result(); got != want {
				t.Fatalf("resumed result %+v\nwant %+v", got, want)
			}
			p.Close()
		})
	}
}

// FuzzDriftCheckpointV3: the v3 drift/adapt sections get the same
// malformed-input treatment as the earlier formats, seeded with adaptive
// blobs (one per decoder kind, plus truncations and tail mutations) so
// the fuzzer starts inside the new fields.
func FuzzDriftCheckpointV3(f *testing.F) {
	for _, dec := range adaptiveDecoders {
		cfg := adaptiveSessionConfig(dec)
		p, err := NewPipeline(cfg, 0)
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 24; i++ {
			if err := p.Step(); err != nil {
				f.Fatal(err)
			}
		}
		blob, err := Snapshot(cfg, p)
		p.Close()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)-9])
		// Flip a byte in the trailing (drift/adapt) third of the blob.
		mut := append([]byte(nil), blob...)
		mut[len(mut)-len(mut)/3] ^= 0x20
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Decode(data)
		if err != nil {
			return
		}
		checkDecoded(t, data, cp)
		if cp.Config.Channels <= 64 && cp.Config.DecodeHidden <= 64 && cp.Config.DecodeLags <= 16 &&
			cp.Config.RefitBuffer <= 256 && cp.Config.MeterRef <= 256 && cp.Config.MeterWin <= 256 {
			if _, p, err := Restore(data); err == nil {
				p.Close()
			}
		}
	})
}
