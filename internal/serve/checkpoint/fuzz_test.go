package checkpoint

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// blobVersion extracts the header version (0 when too short).
func blobVersion(b []byte) uint16 {
	if len(b) < 6 {
		return 0
	}
	return binary.BigEndian.Uint16(b[4:6])
}

// checkDecoded asserts the codec invariants on an accepted blob: a
// current-version blob must be canonical (Encode(Decode(b)) == b), and
// any accepted blob must survive an upgrade round-trip unchanged.
func checkDecoded(t *testing.T, data []byte, cp Checkpoint) {
	t.Helper()
	again := Encode(cp)
	if blobVersion(data) == Version && !bytes.Equal(again, data) {
		t.Fatalf("accepted non-canonical blob: %d bytes re-encode to %d", len(data), len(again))
	}
	cp2, err := Decode(again)
	if err != nil {
		t.Fatalf("re-encoded blob no longer decodes: %v", err)
	}
	if !reflect.DeepEqual(cp, cp2) {
		t.Fatal("upgrade round-trip changed the checkpoint")
	}
}

// FuzzCheckpointDecode: arbitrary bytes must never panic the decoder or
// force unbounded allocation — they either decode to a checkpoint
// satisfying the codec invariants, or they return an error.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Magic[:])
	f.Add(append(append([]byte(nil), Magic[:]...), 0, 1))
	// A well-formed seed for each optional-state shape.
	cleanBlob := func() []byte {
		p, err := NewPipeline(cleanConfig(), 0)
		if err != nil {
			f.Fatal(err)
		}
		defer p.Close()
		for i := 0; i < 4; i++ {
			if err := p.Step(); err != nil {
				f.Fatal(err)
			}
		}
		blob, err := Snapshot(cleanConfig(), p)
		if err != nil {
			f.Fatal(err)
		}
		return blob
	}()
	f.Add(cleanBlob)
	f.Add(cleanBlob[:len(cleanBlob)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Decode(data)
		if err != nil {
			return
		}
		checkDecoded(t, data, cp)
	})
}

// FuzzDecodeCheckpointV2: the v2 decoder sections get the same
// treatment, seeded with decoder-active blobs (one per decoder kind,
// plus a truncation and a version-1 golden-style blob) so the fuzzer
// starts inside the new fields rather than rediscovering the header.
func FuzzDecodeCheckpointV2(f *testing.F) {
	for _, dec := range []string{"kalman", "wiener", "dnn"} {
		cfg := fullConfig()
		cfg.Decoder = dec
		p, err := NewPipeline(cfg, 0)
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if err := p.Step(); err != nil {
				f.Fatal(err)
			}
		}
		blob, err := Snapshot(cfg, p)
		p.Close()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(blob)
		f.Add(blob[:len(blob)-7])
		// Flip a byte in the trailing (decoder) third of the blob.
		mut := append([]byte(nil), blob...)
		mut[len(mut)-len(mut)/4] ^= 0x40
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Decode(data)
		if err != nil {
			return
		}
		checkDecoded(t, data, cp)
		// An accepted blob may still describe an inconsistent session;
		// Restore must reject or succeed, never panic. Skip forged
		// configs large enough to make construction itself the cost.
		if cp.Config.Channels <= 64 && cp.Config.DecodeHidden <= 64 && cp.Config.DecodeLags <= 16 {
			if _, p, err := Restore(data); err == nil {
				p.Close()
			}
		}
	})
}
