package checkpoint

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode: arbitrary bytes must never panic the decoder or
// force unbounded allocation — they either decode to a checkpoint whose
// re-encoding is canonical, or they return an error.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add(Magic[:])
	f.Add(append(append([]byte(nil), Magic[:]...), 0, 1))
	// A well-formed seed for each optional-state shape.
	cleanBlob := func() []byte {
		p, err := NewPipeline(cleanConfig(), 0)
		if err != nil {
			f.Fatal(err)
		}
		defer p.Close()
		for i := 0; i < 4; i++ {
			if err := p.Step(); err != nil {
				f.Fatal(err)
			}
		}
		blob, err := Snapshot(cleanConfig(), p)
		if err != nil {
			f.Fatal(err)
		}
		return blob
	}()
	f.Add(cleanBlob)
	f.Add(cleanBlob[:len(cleanBlob)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		cp, err := Decode(data)
		if err != nil {
			return
		}
		// Accepted blobs must be canonical: Encode(Decode(b)) == b.
		if again := Encode(cp); !bytes.Equal(again, data) {
			t.Fatalf("accepted non-canonical blob: %d bytes re-encode to %d", len(data), len(again))
		}
	})
}
