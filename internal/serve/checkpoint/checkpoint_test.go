package checkpoint

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"time"

	"mindful/internal/fault"
)

// fullConfig exercises every optional state branch: faults, ARQ, FEC and
// concealment all on.
func fullConfig() SessionConfig {
	prof := fault.DefaultProfile()
	return SessionConfig{
		Channels:         16,
		SampleRateHz:     2000,
		SampleBits:       10,
		QAMBits:          4,
		EbN0dB:           8,
		Seed:             7,
		Ticks:            64,
		ARQMaxRetries:    2,
		ARQSlotTime:      time.Millisecond,
		ARQLatencyBudget: 8 * time.Millisecond,
		FECDepth:         4,
		Concealment:      2,
		Faults:           &prof,
	}
}

func cleanConfig() SessionConfig {
	return SessionConfig{
		Channels:     8,
		SampleRateHz: 1000,
		SampleBits:   8,
		QAMBits:      0, // OOK
		EbN0dB:       12,
		Seed:         3,
		Ticks:        32,
	}
}

// snapshotAfter builds a pipeline for cfg, steps it n ticks and encodes
// the checkpoint.
func snapshotAfter(t *testing.T, cfg SessionConfig, n int) []byte {
	t.Helper()
	p, err := NewPipeline(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < n; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := Snapshot(cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestRoundTrip: Encode → Decode must reproduce the checkpoint exactly,
// and re-encoding the decode must give the same bytes (canonical form).
func TestRoundTrip(t *testing.T) {
	for name, cfg := range map[string]SessionConfig{"clean": cleanConfig(), "full": fullConfig()} {
		t.Run(name, func(t *testing.T) {
			blob := snapshotAfter(t, cfg, 16)
			cp, err := Decode(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cp.Config, cfg) {
				t.Fatalf("config round-trip: got %+v want %+v", cp.Config, cfg)
			}
			if cp.State.Tick != 16 {
				t.Fatalf("tick %d, want 16", cp.State.Tick)
			}
			if again := Encode(cp); !bytes.Equal(again, blob) {
				t.Fatal("re-encoding a decoded checkpoint changed the bytes")
			}
		})
	}
}

// TestRestoreContinuesBitIdentically: the codec boundary must preserve
// the fleet-level resume guarantee — K ticks, serialize, restore, K more
// equals the uninterrupted 2K run.
func TestRestoreContinuesBitIdentically(t *testing.T) {
	const k = 16
	for name, cfg := range map[string]SessionConfig{"clean": cleanConfig(), "full": fullConfig()} {
		t.Run(name, func(t *testing.T) {
			ref, err := NewPipeline(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2*k; i++ {
				if err := ref.Step(); err != nil {
					t.Fatal(err)
				}
			}
			want := ref.Result()
			ref.Close()

			blob := snapshotAfter(t, cfg, k)
			rcfg, p, err := Restore(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rcfg, cfg) {
				t.Fatalf("restored config %+v want %+v", rcfg, cfg)
			}
			for i := 0; i < k; i++ {
				if err := p.Step(); err != nil {
					t.Fatal(err)
				}
			}
			if got := p.Result(); got != want {
				t.Fatalf("resumed result %+v\nwant %+v", got, want)
			}
			p.Close()
		})
	}
}

// TestDecodeRejectsMalformed: every corruption class must error cleanly.
func TestDecodeRejectsMalformed(t *testing.T) {
	blob := snapshotAfter(t, fullConfig(), 8)

	if _, err := Decode(nil); err == nil {
		t.Fatal("nil input accepted")
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	if _, err := Decode(bad); err != ErrBadMagic {
		t.Fatalf("bad magic: got %v", err)
	}
	bad = append([]byte(nil), blob...)
	bad[5] = 0xFF // version
	if _, err := Decode(bad); err == nil {
		t.Fatal("future version accepted")
	}
	for _, cut := range []int{1, 4, 6, len(blob) / 2, len(blob) - 1} {
		if _, err := Decode(blob[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if _, err := Decode(append(append([]byte(nil), blob...), 0)); err != ErrTrailing {
		t.Fatalf("trailing byte: got %v", err)
	}
	// Non-finite floats cannot come from a real session, and a NaN that
	// slipped through would break DeepEqual-based round-trip checks.
	cp, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	cp.Config.SampleRateHz = math.NaN()
	if _, err := Decode(Encode(cp)); err != ErrNonFinite {
		t.Fatalf("NaN float: got %v, want ErrNonFinite", err)
	}
	cp.Config.SampleRateHz = math.Inf(1)
	if _, err := Decode(Encode(cp)); err != ErrNonFinite {
		t.Fatalf("+Inf float: got %v, want ErrNonFinite", err)
	}
}

// TestRestoreRejectsTamperedState: a blob whose state no longer matches
// its own config must fail restore, not produce a wrong session.
func TestRestoreRejectsTamperedState(t *testing.T) {
	cfg := fullConfig()
	blob := snapshotAfter(t, cfg, 8)
	cp, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	cp.Config.Seed++ // config now disagrees with the recorded RNG streams
	if _, _, err := Restore(Encode(cp)); err == nil {
		t.Fatal("restore with mismatched seed succeeded")
	}
}
