package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mindful/internal/fault"
	"mindful/internal/fleet"
)

// goldenV1Config is the exact session configuration testdata/v1_golden.ckpt
// was taken under: a 16-channel full-stack session (faults + ARQ + FEC +
// concealment), seed 42, snapshotted at tick 12 of 24 by the version-1
// codec before the v2 format existed.
func goldenV1Config() SessionConfig {
	prof := fault.DefaultProfile()
	return SessionConfig{
		Channels:         16,
		SampleRateHz:     2000,
		SampleBits:       10,
		QAMBits:          4,
		EbN0dB:           8,
		Seed:             42,
		Ticks:            24,
		ARQMaxRetries:    2,
		ARQSlotTime:      time.Millisecond,
		ARQLatencyBudget: 8 * time.Millisecond,
		FECDepth:         4,
		Concealment:      2,
		Faults:           &prof,
	}
}

// goldenV1Result is the pinned uninterrupted 24-tick result of the golden
// session — the continuation a correct v1 restore must reproduce exactly.
var goldenV1Result = fleet.ImplantResult{
	Frames: 20, Accepted: 13, Corrupt: 7, LostSeq: 7,
	BitsSent: 20468, BitErrors: 187, Blanked: 4, LinkDropped: 10,
	Retransmits: 23, Recovered: 7, ARQFailed: 7, RetransmitBits: 10948,
	FECCorrected: 184, Concealed: 7, ConcealedSamples: 112,
	FaultyChannels: 1, DataBits: 5440, DataBitErrors: 13,
	Digest: 10134489101573515607,
}

// goldenV1MidDigest is the digest recorded inside the blob at tick 12.
const goldenV1MidDigest uint64 = 13008298761598898992

func readGolden(t *testing.T) []byte {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("testdata", "v1_golden.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestGoldenV1Decodes: the committed v1 blob must decode under the v2
// codec with every field intact and no phantom decoder state.
func TestGoldenV1Decodes(t *testing.T) {
	cp, err := Decode(readGolden(t))
	if err != nil {
		t.Fatal(err)
	}
	want := goldenV1Config()
	if cp.Config.Decoder != "" || cp.Config.DecodeBin != 0 {
		t.Fatalf("v1 blob decoded with decoder config %q/%d", cp.Config.Decoder, cp.Config.DecodeBin)
	}
	if cp.State.Decode != nil {
		t.Fatal("v1 blob decoded with decoder state")
	}
	if cp.Config.Seed != want.Seed || cp.Config.Channels != want.Channels ||
		cp.Config.FECDepth != want.FECDepth || cp.Config.Concealment != want.Concealment ||
		(cp.Config.Faults == nil) != (want.Faults == nil) {
		t.Fatalf("v1 config mismatch: %+v want %+v", cp.Config, want)
	}
	if cp.State.Tick != 12 {
		t.Fatalf("v1 snapshot tick %d, want 12", cp.State.Tick)
	}
	if cp.State.Counters.Digest != goldenV1MidDigest {
		t.Fatalf("v1 mid-run digest %d, want %d", cp.State.Counters.Digest, goldenV1MidDigest)
	}
}

// TestGoldenV1RestoresBitIdentically: restoring the committed v1 blob and
// stepping the remaining 12 ticks must reproduce the pinned uninterrupted
// result bit for bit — backward compatibility as a digest equality, not a
// "parses without error" claim.
func TestGoldenV1RestoresBitIdentically(t *testing.T) {
	_, p, err := Restore(readGolden(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 12; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Result(); got != goldenV1Result {
		t.Fatalf("restored v1 continuation\n%+v\nwant %+v", got, goldenV1Result)
	}
}

// TestGoldenV1ConfigStillCurrent: a fresh run under the golden config
// must still hit the pinned result — if this fails, the simulation
// changed behavior and the golden blob (plus these pins) must be
// regenerated deliberately.
func TestGoldenV1ConfigStillCurrent(t *testing.T) {
	p, err := NewPipeline(goldenV1Config(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 24; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Result(); got != goldenV1Result {
		t.Fatalf("fresh run under golden config\n%+v\nwant %+v", got, goldenV1Result)
	}
}

// TestGoldenV1UpgradesToV2: re-encoding the decoded v1 checkpoint writes
// a v2 blob that round-trips and restores to the same continuation.
func TestGoldenV1UpgradesToV2(t *testing.T) {
	cp, err := Decode(readGolden(t))
	if err != nil {
		t.Fatal(err)
	}
	v2 := Encode(cp)
	if !bytes.Equal(v2[:4], Magic[:]) || v2[4] != 0 || v2[5] != byte(Version) {
		t.Fatalf("re-encoded header % x not v%d", v2[:6], Version)
	}
	_, p, err := Restore(v2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 12; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Result(); got != goldenV1Result {
		t.Fatalf("v1→v2 upgraded continuation\n%+v\nwant %+v", got, goldenV1Result)
	}
}

// TestUnknownFutureVersionRejected: a version this build does not know
// must fail with ErrBadVersion and a message naming the supported range.
func TestUnknownFutureVersionRejected(t *testing.T) {
	blob := append([]byte(nil), readGolden(t)...)
	for _, v := range []byte{4, 0xFF} {
		blob[4], blob[5] = 0, v
		_, err := Decode(blob)
		if !errors.Is(err, ErrBadVersion) {
			t.Fatalf("version %d: got %v, want ErrBadVersion", v, err)
		}
	}
	blob[4], blob[5] = 0, 0
	if _, err := Decode(blob); !errors.Is(err, ErrBadVersion) {
		t.Fatal("version 0 accepted")
	}
}
