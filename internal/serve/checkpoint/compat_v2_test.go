package checkpoint

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"mindful/internal/fault"
	"mindful/internal/fleet"
)

// goldenV2Config is the exact session configuration testdata/v2_golden.ckpt
// was taken under: a 16-channel full-stack session (faults + ARQ + FEC +
// concealment) with an in-loop Kalman decoder at bin 2, seed 43,
// snapshotted at tick 12 of 24 by the version-2 codec before the v3
// format existed.
func goldenV2Config() SessionConfig {
	prof := fault.DefaultProfile()
	return SessionConfig{
		Channels:         16,
		SampleRateHz:     2000,
		SampleBits:       10,
		QAMBits:          4,
		EbN0dB:           8,
		Seed:             43,
		Ticks:            24,
		ARQMaxRetries:    2,
		ARQSlotTime:      time.Millisecond,
		ARQLatencyBudget: 8 * time.Millisecond,
		FECDepth:         4,
		Concealment:      2,
		Faults:           &prof,
		Decoder:          "kalman",
		DecodeBin:        2,
	}
}

// goldenV2Result is the pinned uninterrupted 24-tick result of the golden
// v2 session — the continuation a correct v2 restore must reproduce
// exactly, decoder temporal state included.
var goldenV2Result = fleet.ImplantResult{
	Frames: 24, Accepted: 19, Corrupt: 5, LostSeq: 2,
	BitsSent: 23324, BitErrors: 216, LinkDropped: 11,
	Retransmits: 25, Recovered: 12, ARQFailed: 5, RetransmitBits: 11900,
	FECCorrected: 209, Concealed: 2, ConcealedSamples: 32,
	FaultyChannels: 3, DataBits: 6528, DataBitErrors: 9,
	Digest:       2744184159313191520,
	DecodedSteps: 10, DecodeConcealedBins: 2, DecodeMACs: 1520,
	DecodeDigest: 12146187164535703923,
}

// Digests recorded inside the blob at tick 12.
const (
	goldenV2MidDigest       uint64 = 18008250860309782093
	goldenV2MidDecodeDigest uint64 = 2858542770851904876
)

func readGoldenV2(t *testing.T) []byte {
	t.Helper()
	blob, err := os.ReadFile(filepath.Join("testdata", "v2_golden.ckpt"))
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestGoldenV2Decodes: the committed v2 blob must decode with every field
// intact — decoder selection and decoder state included — freezing the
// v2 byte layout before any later version appends to it.
func TestGoldenV2Decodes(t *testing.T) {
	cp, err := Decode(readGoldenV2(t))
	if err != nil {
		t.Fatal(err)
	}
	want := goldenV2Config()
	if cp.Config.Decoder != want.Decoder || cp.Config.DecodeBin != want.DecodeBin {
		t.Fatalf("v2 blob decoder config %q/%d, want %q/%d",
			cp.Config.Decoder, cp.Config.DecodeBin, want.Decoder, want.DecodeBin)
	}
	if cp.Config.Seed != want.Seed || cp.Config.Channels != want.Channels ||
		cp.Config.FECDepth != want.FECDepth || cp.Config.Concealment != want.Concealment ||
		(cp.Config.Faults == nil) != (want.Faults == nil) {
		t.Fatalf("v2 config mismatch: %+v want %+v", cp.Config, want)
	}
	if cp.State.Tick != 12 {
		t.Fatalf("v2 snapshot tick %d, want 12", cp.State.Tick)
	}
	if cp.State.Counters.Digest != goldenV2MidDigest {
		t.Fatalf("v2 mid-run digest %d, want %d", cp.State.Counters.Digest, goldenV2MidDigest)
	}
	if cp.State.Decode == nil {
		t.Fatal("v2 blob decoded without decoder state")
	}
	if cp.State.Decode.Digest != goldenV2MidDecodeDigest {
		t.Fatalf("v2 mid-run decode digest %d, want %d",
			cp.State.Decode.Digest, goldenV2MidDecodeDigest)
	}
}

// TestGoldenV2RestoresBitIdentically: restoring the committed v2 blob and
// stepping the remaining 12 ticks must reproduce the pinned uninterrupted
// result bit for bit, decode digest included.
func TestGoldenV2RestoresBitIdentically(t *testing.T) {
	_, p, err := Restore(readGoldenV2(t))
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 12; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Result(); got != goldenV2Result {
		t.Fatalf("restored v2 continuation\n%+v\nwant %+v", got, goldenV2Result)
	}
}

// TestGoldenV2ConfigStillCurrent: a fresh run under the golden v2 config
// must still hit the pinned result — if this fails, the simulation or the
// decode stage changed behavior and the golden blob (plus these pins)
// must be regenerated deliberately.
func TestGoldenV2ConfigStillCurrent(t *testing.T) {
	p, err := NewPipeline(goldenV2Config(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 24; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if got := p.Result(); got != goldenV2Result {
		t.Fatalf("fresh run under golden v2 config\n%+v\nwant %+v", got, goldenV2Result)
	}
}
