package checkpoint

import (
	"bytes"
	"reflect"
	"testing"
)

// decoderConfigs returns the full-stack session with each decoder kind
// attached.
func decoderConfigs() map[string]SessionConfig {
	out := make(map[string]SessionConfig)
	for _, dec := range []string{"kalman", "wiener", "dnn"} {
		cfg := fullConfig()
		cfg.Decoder = dec
		cfg.DecodeBin = 3 // odd vs the snapshot point: a partial bin crosses the boundary
		out[dec] = cfg
	}
	return out
}

// TestRoundTripWithDecoder: v2 blobs carrying decoder state must decode
// to the exact checkpoint and re-encode canonically.
func TestRoundTripWithDecoder(t *testing.T) {
	for name, cfg := range decoderConfigs() {
		t.Run(name, func(t *testing.T) {
			blob := snapshotAfter(t, cfg, 16)
			cp, err := Decode(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cp.Config, cfg) {
				t.Fatalf("config round-trip: got %+v want %+v", cp.Config, cfg)
			}
			if cp.State.Decode == nil {
				t.Fatal("decoder session encoded without decode state")
			}
			if again := Encode(cp); !bytes.Equal(again, blob) {
				t.Fatal("re-encoding a decoded checkpoint changed the bytes")
			}
		})
	}
}

// TestRestoreContinuesBitIdenticallyWithDecoder: the acceptance
// criterion at the codec layer — K ticks, serialize with decoder
// temporal state, restore, K more equals the uninterrupted 2K run
// including the decode digest.
func TestRestoreContinuesBitIdenticallyWithDecoder(t *testing.T) {
	const k = 16
	for name, cfg := range decoderConfigs() {
		t.Run(name, func(t *testing.T) {
			ref, err := NewPipeline(cfg, 0)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 2*k; i++ {
				if err := ref.Step(); err != nil {
					t.Fatal(err)
				}
			}
			want := ref.Result()
			ref.Close()
			if want.DecodedSteps == 0 {
				t.Fatal("decoder never stepped")
			}

			blob := snapshotAfter(t, cfg, k)
			rcfg, p, err := Restore(blob)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(rcfg, cfg) {
				t.Fatalf("restored config %+v want %+v", rcfg, cfg)
			}
			for i := 0; i < k; i++ {
				if err := p.Step(); err != nil {
					t.Fatal(err)
				}
			}
			if got := p.Result(); got != want {
				t.Fatalf("resumed result\n%+v\nwant %+v", got, want)
			}
			p.Close()
		})
	}
}

// TestRejectsUnknownDecoderName: a session config naming a decoder this
// build does not implement must fail at validation, not mid-snapshot.
func TestRejectsUnknownDecoderName(t *testing.T) {
	cfg := fullConfig()
	cfg.Decoder = "transformer"
	if _, err := cfg.FleetConfig(); err == nil {
		t.Fatal("unknown decoder name accepted")
	}
	if _, err := NewPipeline(cfg, 0); err == nil {
		t.Fatal("NewPipeline accepted unknown decoder")
	}
}

// TestRejectsUnknownDecoderKindByte: a v2 blob whose decoder-kind byte
// is out of range must be rejected with a clear error.
func TestRejectsUnknownDecoderKindByte(t *testing.T) {
	cfg := decoderConfigs()["kalman"]
	blob := snapshotAfter(t, cfg, 4)
	cp, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the kind byte deterministically: re-encode with a different
	// kind and diff the two blobs — the first differing byte is it.
	cp2 := cp
	cp2.Config.Decoder = "wiener"
	alt := Encode(cp2)
	diff := -1
	for i := range blob {
		if blob[i] != alt[i] {
			diff = i
			break
		}
	}
	if diff < 0 {
		t.Fatal("could not locate decoder kind byte")
	}
	bad := append([]byte(nil), blob...)
	bad[diff] = 0xEE
	if _, err := Decode(bad); err == nil {
		t.Fatal("out-of-range decoder kind accepted")
	}
}
