package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"testing"
	"time"

	"mindful/internal/cluster/wire"
)

// exportEnvelope drives the migration-source endpoint.
func exportEnvelope(base, id, key string) (wire.Envelope, error) {
	resp, err := http.Post(base+"/api/sessions/"+id+"/export?key="+key, "application/octet-stream", nil)
	if err != nil {
		return wire.Envelope{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return wire.Envelope{}, httpError("export", resp)
	}
	buf, err := io.ReadAll(resp.Body)
	if err != nil {
		return wire.Envelope{}, err
	}
	return wire.Decode(buf)
}

// importEnvelope drives the migration-target endpoint.
func importEnvelope(base string, env wire.Envelope) (SessionInfo, error) {
	buf, err := wire.Encode(env)
	if err != nil {
		return SessionInfo{}, err
	}
	resp, err := http.Post(base+"/api/sessions/import", "application/octet-stream", bytes.NewReader(buf))
	if err != nil {
		return SessionInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return SessionInfo{}, httpError("import", resp)
	}
	var info SessionInfo
	return info, json.NewDecoder(resp.Body).Decode(&info)
}

// TestExportImportTransfersSession: the export/import pair moves a
// running session between two gateways mid-stream, and the continued
// run is bit-identical to an uninterrupted one.
func TestExportImportTransfersSession(t *testing.T) {
	src := startServer(t, Config{TickInterval: time.Millisecond})
	dst := startServer(t, Config{})
	srcBase := "http://" + src.ControlAddr()
	dstBase := "http://" + dst.ControlAddr()
	cfg := testSessionConfig()

	info, err := createSession(srcBase, CreateRequest{SessionConfig: cfg})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond) // let it get mid-stream

	env, err := exportEnvelope(srcBase, info.ID, "c000001")
	if err != nil {
		t.Fatal(err)
	}
	if env.Key != "c000001" || env.SourceID != info.ID {
		t.Fatalf("envelope identity %q/%q, want c000001/%s", env.Key, env.SourceID, info.ID)
	}
	if env.Tick == 0 || env.Tick >= uint64(cfg.Ticks) {
		t.Fatalf("exported at tick %d, want mid-run", env.Tick)
	}
	// Export leaves the source paused.
	paused := waitState(t, srcBase, info.ID, StatePaused)
	if paused.Tick != int(env.Tick) {
		t.Fatalf("source paused at tick %d, envelope says %d", paused.Tick, env.Tick)
	}

	imported, err := importEnvelope(dstBase, env)
	if err != nil {
		t.Fatal(err)
	}
	if imported.State != StatePaused || imported.Tick != int(env.Tick) {
		t.Fatalf("imported state %s@%d, want paused@%d", imported.State, imported.Tick, env.Tick)
	}

	// Coordinator order: delete the source before the target runs, so
	// the session never executes on two shards at once.
	if err := post(srcBase+"/api/sessions/"+info.ID, nil); err == nil {
		t.Fatal("POST to DELETE route unexpectedly succeeded") // guard against mux typos
	}
	if err := del(srcBase + "/api/sessions/" + info.ID); err != nil {
		t.Fatal(err)
	}
	if err := post(dstBase+"/api/sessions/"+imported.ID+"/resume", nil); err != nil {
		t.Fatal(err)
	}
	done := waitState(t, dstBase, imported.ID, StateDone)
	if want := digestAfter(t, cfg, cfg.Ticks); done.Digest != want {
		t.Fatalf("migrated digest %s, want uninterrupted %s", done.Digest, want)
	}
}

// TestImportRejectsTickMismatch: a transfer whose envelope tick
// disagrees with the checkpoint inside it must be rejected, and the
// target must not keep a half-imported session.
func TestImportRejectsTickMismatch(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.ControlAddr()
	cfg := testSessionConfig()

	info, err := createSession(base, CreateRequest{SessionConfig: cfg, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	env, err := exportEnvelope(base, info.ID, "k")
	if err != nil {
		t.Fatal(err)
	}
	env.Tick++
	if _, err := importEnvelope(base, env); err == nil {
		t.Fatal("mismatched envelope imported")
	}
	infos := srv.Sessions()
	if len(infos) != 1 {
		t.Fatalf("%d sessions after rejected import, want the original 1", len(infos))
	}
}

// TestImportRejectsGarbage: the import endpoint must 400 on bytes that
// are not an envelope, never panic.
func TestImportRejectsGarbage(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.ControlAddr()
	for _, body := range [][]byte{nil, []byte("junk"), bytes.Repeat([]byte{0xFF}, 64)} {
		resp, err := http.Post(base+"/api/sessions/import", "application/octet-stream", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("garbage import: status %d, want 400", resp.StatusCode)
		}
	}
}

// TestReadyzDrainingReturns503: /readyz must answer 503 the moment a
// shard starts draining for a rebalance and recover once it ends — the
// contract load balancers key new placements off.
func TestReadyzDrainingReturns503(t *testing.T) {
	srv := startServer(t, Config{})
	base := "http://" + srv.ControlAddr()
	readyz := func() int {
		resp, err := http.Get(base + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := readyz(); code != http.StatusOK {
		t.Fatalf("readyz before drain: %d, want 200", code)
	}
	srv.SetDraining(true)
	if code := readyz(); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d, want 503", code)
	}
	// The control plane itself must stay up for the migration traffic.
	if _, err := createSession(base, CreateRequest{SessionConfig: testSessionConfig(), StartPaused: true}); err != nil {
		t.Fatalf("control plane refused work while draining: %v", err)
	}
	srv.SetDraining(false)
	if code := readyz(); code != http.StatusOK {
		t.Fatalf("readyz after drain: %d, want 200", code)
	}
}

// TestSubscribeMoved: a gateway with a redirect hook answers MOVED for
// sessions it does not host, and SubscribeFollow lands on the target.
func TestSubscribeMoved(t *testing.T) {
	target := startServer(t, Config{})
	tgtBase := "http://" + target.ControlAddr()
	cfg := testSessionConfig()
	hosted, err := createSession(tgtBase, CreateRequest{SessionConfig: cfg, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}

	front := startServer(t, Config{Redirect: func(id string) (string, string, bool) {
		if id == "cluster-1" {
			return target.StreamAddr(), hosted.ID, true
		}
		return "", "", false
	}})

	// Direct subscribe reports the move.
	_, _, err = Subscribe(front.StreamAddr(), "cluster-1")
	var moved *MovedError
	if !errors.As(err, &moved) {
		t.Fatalf("subscribe err = %v, want MovedError", err)
	}
	if moved.Addr != target.StreamAddr() || moved.ID != hosted.ID {
		t.Fatalf("moved to %s/%s, want %s/%s", moved.Addr, moved.ID, target.StreamAddr(), hosted.ID)
	}
	// Unknown IDs still error.
	if _, _, err := Subscribe(front.StreamAddr(), "nope"); err == nil || errors.As(err, &moved) {
		t.Fatalf("unknown session err = %v, want plain rejection", err)
	}

	// The following subscriber streams the real session end to end.
	conn, br, err := SubscribeFollow(front.StreamAddr(), "cluster-1", "", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := post(tgtBase+"/api/sessions/"+hosted.ID+"/resume", nil); err != nil {
		t.Fatal(err)
	}
	var records int
	for {
		if _, err := ReadRecord(br); err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
		records++
	}
	if records == 0 {
		t.Fatal("no records through the redirect")
	}
}

// TestKillIsAbrupt: Kill severs subscribers mid-stream without the
// end-of-session drain and leaves no snapshots behind — the in-process
// stand-in for a gateway dying under SIGKILL.
func TestKillIsAbrupt(t *testing.T) {
	dir := t.TempDir()
	srv, err := New(Config{SnapshotDir: dir, TickInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	base := "http://" + srv.ControlAddr()
	cfg := testSessionConfig()
	cfg.Ticks = 0 // unbounded: only death stops it
	info, err := createSession(base, CreateRequest{SessionConfig: cfg, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	conn, br, err := Subscribe(srv.StreamAddr(), info.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := post(base+"/api/sessions/"+info.ID+"/resume", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRecord(br); err != nil {
		t.Fatal(err)
	}

	srv.Kill()
	// The stream dies with an error, not a clean EOF-after-flush; a
	// clean EOF would mean the drain path ran.
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := ReadRecord(br); err != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("stream still alive after Kill")
		}
	}
	if srv.Ready() {
		t.Fatal("killed gateway reports ready")
	}
	if _, err := getSession(base, info.ID); err == nil {
		t.Fatal("control plane still answering after Kill")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("Kill wrote %d snapshots, want none", len(entries))
	}
	srv.Kill() // idempotent
}

// del issues an HTTP DELETE.
func del(url string) error {
	req, err := http.NewRequest(http.MethodDelete, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return httpError("delete "+url, resp)
	}
	io.Copy(io.Discard, resp.Body)
	return nil
}
