package nn

import (
	"fmt"
	"math/rand"

	"mindful/internal/dnnmodel"
)

// BuildFromSpec instantiates a structural dnnmodel.Model as a runnable
// network with Xavier-random weights. It supports dense-only models (the
// MLP family); hidden layers get ReLU, the final layer is linear. This is
// the bridge that lets the analytical workload be *executed*: the same
// object the power framework prices can be run on data, and its measured
// MAC decomposition cross-checked against Eq. (10).
func BuildFromSpec(m dnnmodel.Model, seed int64) (*Network, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	layers := make([]Layer, 0, len(m.Layers))
	for i, spec := range m.Layers {
		if spec.Kind != dnnmodel.DenseKind {
			return nil, fmt.Errorf("nn: BuildFromSpec supports dense models; layer %d is a convolution", i)
		}
		act := ReLU
		if i == len(m.Layers)-1 {
			act = Identity
		}
		layers = append(layers, RandDense(rng, spec.In, spec.Out, act))
	}
	return NewNetwork(1, m.Layers[0].In, layers...)
}

// BuildConvFromSpec instantiates a structural DN-CNN-family model as a
// runnable network. It walks the flat layer list dnnmodel produces and
// reconstructs the composite structure: a K>1 front convolution, runs of
// K=1 convolutions whose input width exceeds the previous output are
// densely connected (concatenating) block members, K>1 convolutions are
// transitions, trailing K=1 convolutions at constant width are feature
// mixers, and a final dense layer classifies the flattened map.
func BuildConvFromSpec(m dnnmodel.Model, seed int64) (*Network, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if m.Layers[0].Kind != dnnmodel.ConvKind {
		return nil, fmt.Errorf("nn: BuildConvFromSpec needs a convolutional front layer")
	}
	rng := rand.New(rand.NewSource(seed))
	var layers []Layer
	var block *DenseBlock
	flushBlock := func() {
		if block != nil {
			layers = append(layers, block)
			block = nil
		}
	}
	for i, spec := range m.Layers {
		switch {
		case spec.Kind == dnnmodel.DenseKind:
			flushBlock()
			if i != len(m.Layers)-1 {
				return nil, fmt.Errorf("nn: dense layer %d before the end of a conv model", i)
			}
			layers = append(layers, RandDense(rng, spec.In, spec.Out, Identity))
		case spec.K == 1 && i+1 < len(m.Layers) && m.Layers[i+1].In == spec.In+spec.Out && i > 0:
			// Densely connected member: the next layer consumes the
			// concatenation of this layer's input and output.
			if block == nil {
				block = &DenseBlock{}
			}
			block.Convs = append(block.Convs, RandConv1D(rng, spec.In, spec.Out, 1, 1, ReLU))
		default:
			flushBlock()
			layers = append(layers, RandConv1D(rng, spec.In, spec.Out, spec.K, 1, ReLU))
		}
	}
	flushBlock()
	return NewNetwork(m.Layers[0].In, m.Layers[0].InLen, layers...)
}

// VerifyAgainstSpec checks that a network's measured per-layer MAC
// decomposition matches the structural model's f_MAC exactly (Eq. 10). It
// returns a descriptive error on the first mismatch.
func VerifyAgainstSpec(n *Network, m dnnmodel.Model) error {
	profiles, err := n.MACProfiles()
	if err != nil {
		return err
	}
	if len(profiles) != len(m.Layers) {
		return fmt.Errorf("nn: %d layers vs %d specs", len(profiles), len(m.Layers))
	}
	for i, p := range profiles {
		spec := m.Layers[i]
		if p.Ops != spec.MACOps() || p.Seq != spec.MACSeq() {
			return fmt.Errorf("nn: layer %d MACs (%d×%d) != spec f_MAC (%d×%d)",
				i, p.Ops, p.Seq, spec.MACOps(), spec.MACSeq())
		}
	}
	total, err := n.TotalMACs()
	if err != nil {
		return err
	}
	if total != m.TotalMACs() {
		return fmt.Errorf("nn: total MACs %d != spec %d", total, m.TotalMACs())
	}
	return nil
}
