// Package nn is a small DNN inference engine for the network families the
// paper evaluates on-implant: multi-layer perceptrons and densely connected
// 1-D convolutional networks (the DN-CNN). It exists to prove the
// analytical framework's workloads are executable: the same topologies that
// internal/dnnmodel prices analytically can be instantiated here and run on
// synthetic ECoG, in float64 or in the accelerator's 8-bit fixed-point
// arithmetic (via internal/fixed).
//
// Every layer reports its #MAC_op and MAC_seq exactly as Section 5.3
// defines them, so the engine and the analytical model can be
// cross-checked.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"mindful/internal/fixed"
)

// Tensor is a channels × length activation map. Dense layers use Ch = 1.
type Tensor struct {
	Ch, Len int
	Data    []float64
}

// NewTensor allocates a zero tensor.
func NewTensor(ch, ln int) Tensor {
	if ch <= 0 || ln <= 0 {
		panic(fmt.Sprintf("nn: invalid tensor shape %d×%d", ch, ln))
	}
	return Tensor{Ch: ch, Len: ln, Data: make([]float64, ch*ln)}
}

// FromVector wraps a flat vector as a 1×n tensor.
func FromVector(v []float64) Tensor {
	d := make([]float64, len(v))
	copy(d, v)
	return Tensor{Ch: 1, Len: len(v), Data: d}
}

// At returns element (c, i).
func (t Tensor) At(c, i int) float64 { return t.Data[c*t.Len+i] }

// Set assigns element (c, i).
func (t Tensor) Set(c, i int, v float64) { t.Data[c*t.Len+i] = v }

// Size returns the number of elements.
func (t Tensor) Size() int { return t.Ch * t.Len }

// MACProfile is the paper's per-layer decomposition: #MAC_op independent
// multiply-accumulate sequences, each MAC_seq steps long (Eq. 10 / Fig. 8).
type MACProfile struct {
	Ops int // #MAC_op: independent dot products
	Seq int // MAC_seq: accumulation steps per dot product
}

// Total returns the layer's total MAC steps, Ops × Seq.
func (p MACProfile) Total() int { return p.Ops * p.Seq }

// Layer is one feed-forward stage.
type Layer interface {
	// Forward computes the layer output.
	Forward(in Tensor) (Tensor, error)
	// OutShape returns the output shape for a given input shape.
	OutShape(ch, ln int) (int, int, error)
	// MACs returns the paper's MAC decomposition for a given input shape.
	MACs(ch, ln int) (MACProfile, error)
	// Params returns the number of trainable parameters.
	Params() int
}

// Activation is an element-wise non-linearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	ReLU
)

func (a Activation) apply(x float64) float64 {
	if a == ReLU && x < 0 {
		return 0
	}
	return x
}

// Dense is a fully connected layer on flattened input.
type Dense struct {
	// W is Out×In row-major.
	W    [][]float64
	Bias []float64
	Act  Activation
}

// NewDense constructs a dense layer; W must be rectangular with
// len(W) == len(bias).
func NewDense(w [][]float64, bias []float64, act Activation) (*Dense, error) {
	if len(w) == 0 || len(w[0]) == 0 {
		return nil, fmt.Errorf("nn: empty weight matrix")
	}
	for i, row := range w {
		if len(row) != len(w[0]) {
			return nil, fmt.Errorf("nn: ragged weights at row %d", i)
		}
	}
	if len(bias) != len(w) {
		return nil, fmt.Errorf("nn: bias length %d != %d outputs", len(bias), len(w))
	}
	return &Dense{W: w, Bias: bias, Act: act}, nil
}

// Forward implements Layer.
func (d *Dense) Forward(in Tensor) (Tensor, error) {
	if in.Size() != len(d.W[0]) {
		return Tensor{}, fmt.Errorf("nn: dense input %d != %d", in.Size(), len(d.W[0]))
	}
	out := NewTensor(1, len(d.W))
	for o, row := range d.W {
		s := d.Bias[o]
		for i, w := range row {
			s += w * in.Data[i]
		}
		out.Data[o] = d.Act.apply(s)
	}
	return out, nil
}

// OutShape implements Layer.
func (d *Dense) OutShape(ch, ln int) (int, int, error) {
	if ch*ln != len(d.W[0]) {
		return 0, 0, fmt.Errorf("nn: dense input %d != %d", ch*ln, len(d.W[0]))
	}
	return 1, len(d.W), nil
}

// MACs implements Layer: one MAC_op per output neuron, each accumulating
// over the full input (the paper's matrix-vector case).
func (d *Dense) MACs(ch, ln int) (MACProfile, error) {
	if _, _, err := d.OutShape(ch, ln); err != nil {
		return MACProfile{}, err
	}
	return MACProfile{Ops: len(d.W), Seq: len(d.W[0])}, nil
}

// Params implements Layer.
func (d *Dense) Params() int { return len(d.W)*len(d.W[0]) + len(d.Bias) }

// Conv1D is a 1-D convolution with valid padding.
type Conv1D struct {
	// Kernels is OutCh × InCh × K.
	Kernels [][][]float64
	Bias    []float64
	Stride  int
	Act     Activation
}

// NewConv1D validates shapes and returns the layer.
func NewConv1D(kernels [][][]float64, bias []float64, stride int, act Activation) (*Conv1D, error) {
	if len(kernels) == 0 || len(kernels[0]) == 0 || len(kernels[0][0]) == 0 {
		return nil, fmt.Errorf("nn: empty kernel bank")
	}
	inCh, k := len(kernels[0]), len(kernels[0][0])
	for o, oc := range kernels {
		if len(oc) != inCh {
			return nil, fmt.Errorf("nn: kernel %d input channels %d != %d", o, len(oc), inCh)
		}
		for c, ker := range oc {
			if len(ker) != k {
				return nil, fmt.Errorf("nn: kernel %d/%d width %d != %d", o, c, len(ker), k)
			}
		}
	}
	if len(bias) != len(kernels) {
		return nil, fmt.Errorf("nn: bias length %d != %d output channels", len(bias), len(kernels))
	}
	if stride <= 0 {
		return nil, fmt.Errorf("nn: stride %d must be positive", stride)
	}
	return &Conv1D{Kernels: kernels, Bias: bias, Stride: stride, Act: act}, nil
}

// K returns the kernel width.
func (c *Conv1D) K() int { return len(c.Kernels[0][0]) }

// Forward implements Layer.
func (c *Conv1D) Forward(in Tensor) (Tensor, error) {
	outCh, outLen, err := c.OutShape(in.Ch, in.Len)
	if err != nil {
		return Tensor{}, err
	}
	out := NewTensor(outCh, outLen)
	k := c.K()
	for o := 0; o < outCh; o++ {
		for p := 0; p < outLen; p++ {
			s := c.Bias[o]
			base := p * c.Stride
			for ic := 0; ic < in.Ch; ic++ {
				ker := c.Kernels[o][ic]
				row := in.Data[ic*in.Len:]
				for j := 0; j < k; j++ {
					s += ker[j] * row[base+j]
				}
			}
			out.Set(o, p, c.Act.apply(s))
		}
	}
	return out, nil
}

// OutShape implements Layer.
func (c *Conv1D) OutShape(ch, ln int) (int, int, error) {
	if ch != len(c.Kernels[0]) {
		return 0, 0, fmt.Errorf("nn: conv input channels %d != %d", ch, len(c.Kernels[0]))
	}
	if ln < c.K() {
		return 0, 0, fmt.Errorf("nn: conv input length %d < kernel %d", ln, c.K())
	}
	return len(c.Kernels), (ln-c.K())/c.Stride + 1, nil
}

// MACs implements Layer: one MAC_op per output position per output channel,
// each accumulating over K × InCh steps (the paper's convolution case).
func (c *Conv1D) MACs(ch, ln int) (MACProfile, error) {
	outCh, outLen, err := c.OutShape(ch, ln)
	if err != nil {
		return MACProfile{}, err
	}
	return MACProfile{Ops: outCh * outLen, Seq: c.K() * ch}, nil
}

// Params implements Layer.
func (c *Conv1D) Params() int {
	return len(c.Kernels)*len(c.Kernels[0])*c.K() + len(c.Bias)
}

// DenseBlock is the densely connected composite the DN-CNN uses: each
// inner convolution sees the concatenation of the block input and all
// previous inner outputs.
type DenseBlock struct {
	Convs []*Conv1D
}

// Forward implements Layer.
func (b *DenseBlock) Forward(in Tensor) (Tensor, error) {
	cur := in
	for i, cv := range b.Convs {
		out, err := cv.Forward(cur)
		if err != nil {
			return Tensor{}, fmt.Errorf("nn: dense block conv %d: %w", i, err)
		}
		if out.Len != cur.Len {
			return Tensor{}, fmt.Errorf("nn: dense block conv %d changed length %d→%d (use stride 1, K odd? valid padding must preserve length K=1)", i, cur.Len, out.Len)
		}
		cur = concat(cur, out)
	}
	return cur, nil
}

// concat stacks two tensors of equal length along channels.
func concat(a, b Tensor) Tensor {
	out := NewTensor(a.Ch+b.Ch, a.Len)
	copy(out.Data, a.Data)
	copy(out.Data[a.Ch*a.Len:], b.Data)
	return out
}

// OutShape implements Layer.
func (b *DenseBlock) OutShape(ch, ln int) (int, int, error) {
	for i, cv := range b.Convs {
		oc, ol, err := cv.OutShape(ch, ln)
		if err != nil {
			return 0, 0, fmt.Errorf("nn: dense block conv %d: %w", i, err)
		}
		if ol != ln {
			return 0, 0, fmt.Errorf("nn: dense block conv %d must preserve length (%d→%d)", i, ln, ol)
		}
		ch += oc
	}
	return ch, ln, nil
}

// MACs implements Layer by summing the member convolutions at their
// growing input widths; Seq is reported as the weighted average sequence
// length (total steps / total ops) to stay within the two-number profile.
func (b *DenseBlock) MACs(ch, ln int) (MACProfile, error) {
	totalOps, totalSteps := 0, 0
	for i, cv := range b.Convs {
		p, err := cv.MACs(ch, ln)
		if err != nil {
			return MACProfile{}, fmt.Errorf("nn: dense block conv %d: %w", i, err)
		}
		totalOps += p.Ops
		totalSteps += p.Total()
		oc, _, err := cv.OutShape(ch, ln)
		if err != nil {
			return MACProfile{}, err
		}
		ch += oc
	}
	if totalOps == 0 {
		return MACProfile{}, nil
	}
	return MACProfile{Ops: totalOps, Seq: (totalSteps + totalOps - 1) / totalOps}, nil
}

// Params implements Layer.
func (b *DenseBlock) Params() int {
	n := 0
	for _, cv := range b.Convs {
		n += cv.Params()
	}
	return n
}

// Network is a feed-forward stack of layers.
type Network struct {
	Layers []Layer
	// InCh and InLen fix the expected input shape.
	InCh, InLen int
}

// NewNetwork validates that the layers compose over the input shape.
func NewNetwork(inCh, inLen int, layers ...Layer) (*Network, error) {
	if len(layers) == 0 {
		return nil, fmt.Errorf("nn: network needs at least one layer")
	}
	ch, ln := inCh, inLen
	for i, l := range layers {
		var err error
		ch, ln, err = l.OutShape(ch, ln)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
	}
	return &Network{Layers: layers, InCh: inCh, InLen: inLen}, nil
}

// Forward implements inference.
func (n *Network) Forward(in Tensor) (Tensor, error) {
	if in.Ch != n.InCh || in.Len != n.InLen {
		return Tensor{}, fmt.Errorf("nn: input shape %d×%d != %d×%d", in.Ch, in.Len, n.InCh, n.InLen)
	}
	cur := in
	for i, l := range n.Layers {
		var err error
		cur, err = l.Forward(cur)
		if err != nil {
			return Tensor{}, fmt.Errorf("nn: layer %d: %w", i, err)
		}
	}
	return cur, nil
}

// Params returns the total parameter count.
func (n *Network) Params() int {
	t := 0
	for _, l := range n.Layers {
		t += l.Params()
	}
	return t
}

// MACProfiles returns the per-layer MAC decomposition (Eq. 10's f_MAC
// applied to a concrete network).
func (n *Network) MACProfiles() ([]MACProfile, error) {
	out := make([]MACProfile, len(n.Layers))
	ch, ln := n.InCh, n.InLen
	for i, l := range n.Layers {
		p, err := l.MACs(ch, ln)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
		out[i] = p
		ch, ln, err = l.OutShape(ch, ln)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
	}
	return out, nil
}

// TotalMACs returns the whole-network MAC step count.
func (n *Network) TotalMACs() (int, error) {
	ps, err := n.MACProfiles()
	if err != nil {
		return 0, err
	}
	t := 0
	for _, p := range ps {
		t += p.Total()
	}
	return t, nil
}

// Softmax converts logits to probabilities in place and returns the slice.
func Softmax(xs []float64) []float64 {
	if len(xs) == 0 {
		return xs
	}
	max := xs[0]
	for _, x := range xs {
		if x > max {
			max = x
		}
	}
	sum := 0.0
	for i, x := range xs {
		xs[i] = math.Exp(x - max)
		sum += xs[i]
	}
	for i := range xs {
		xs[i] /= sum
	}
	return xs
}

// Argmax returns the index of the largest element (-1 for empty input).
func Argmax(xs []float64) int {
	best := -1
	bestV := math.Inf(-1)
	for i, x := range xs {
		if x > bestV {
			best, bestV = i, x
		}
	}
	return best
}

// RandDense builds a dense layer with Xavier-uniform random weights.
func RandDense(rng *rand.Rand, in, out int, act Activation) *Dense {
	limit := math.Sqrt(6 / float64(in+out))
	w := make([][]float64, out)
	for o := range w {
		row := make([]float64, in)
		for i := range row {
			row[i] = (rng.Float64()*2 - 1) * limit
		}
		w[o] = row
	}
	d, err := NewDense(w, make([]float64, out), act)
	if err != nil {
		panic(err) // construction is correct by shape
	}
	return d
}

// RandConv1D builds a convolution with Xavier-uniform random kernels.
func RandConv1D(rng *rand.Rand, inCh, outCh, k, stride int, act Activation) *Conv1D {
	limit := math.Sqrt(6 / float64(inCh*k+outCh*k))
	kernels := make([][][]float64, outCh)
	for o := range kernels {
		kernels[o] = make([][]float64, inCh)
		for c := range kernels[o] {
			ker := make([]float64, k)
			for j := range ker {
				ker[j] = (rng.Float64()*2 - 1) * limit
			}
			kernels[o][c] = ker
		}
	}
	cv, err := NewConv1D(kernels, make([]float64, outCh), stride, act)
	if err != nil {
		panic(err)
	}
	return cv
}

// QuantizedDense runs a dense layer in the accelerator's fixed-point
// arithmetic: weights and activations are quantized to the given format
// with a dynamic per-tensor scale, accumulated exactly, and rescaled. It
// returns the dequantized output, mirroring what the PE array computes.
func QuantizedDense(d *Dense, in []float64, f fixed.Format) ([]float64, error) {
	if len(in) != len(d.W[0]) {
		return nil, fmt.Errorf("nn: quantized dense input %d != %d", len(in), len(d.W[0]))
	}
	inScale := maxAbs(in)
	if inScale == 0 {
		inScale = 1
	}
	wScale := 0.0
	for _, row := range d.W {
		if m := maxAbs(row); m > wScale {
			wScale = m
		}
	}
	if wScale == 0 {
		wScale = 1
	}
	qin := make([]fixed.Value, len(in))
	for i, x := range in {
		qin[i] = fixed.FromFloat(x/inScale, f)
	}
	out := make([]float64, len(d.W))
	qrow := make([]fixed.Value, len(in))
	for o, row := range d.W {
		for i, w := range row {
			qrow[i] = fixed.FromFloat(w/wScale, f)
		}
		acc := fixed.NewAcc(f)
		for i := range qin {
			acc.MAC(qin[i], qrow[i])
		}
		v := acc.Float()*inScale*wScale + d.Bias[o]
		out[o] = d.Act.apply(v)
	}
	return out, nil
}

func maxAbs(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}
