package nn

import (
	"math/rand"
	"testing"

	"mindful/internal/dnnmodel"
)

func TestBuildFromSpecMatchesAnalyticalModel(t *testing.T) {
	// The core cross-validation: the runnable network and the analytical
	// workload must agree on every layer's f_MAC decomposition, for
	// several channel counts.
	for _, n := range []int{128, 256, 1024} {
		m, err := dnnmodel.MLP().Scale(n)
		if err != nil {
			t.Fatal(err)
		}
		net, err := BuildFromSpec(m, 3)
		if err != nil {
			t.Fatal(err)
		}
		if err := VerifyAgainstSpec(net, m); err != nil {
			t.Errorf("n=%d: %v", n, err)
		}
		// And the network must actually run, producing the fixed 40-label
		// output the paper's scaling argument relies on.
		rng := rand.New(rand.NewSource(int64(n)))
		in := make([]float64, n)
		for i := range in {
			in[i] = rng.NormFloat64() * 0.1
		}
		out, err := net.Forward(FromVector(in))
		if err != nil {
			t.Fatal(err)
		}
		if out.Size() != 40 {
			t.Errorf("n=%d output size = %d, want 40", n, out.Size())
		}
	}
}

func TestBuildFromSpecDeterministic(t *testing.T) {
	m, err := dnnmodel.MLP().Scale(128)
	if err != nil {
		t.Fatal(err)
	}
	a, err := BuildFromSpec(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildFromSpec(m, 7)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, 128)
	in[0] = 1
	oa, err := a.Forward(FromVector(in))
	if err != nil {
		t.Fatal(err)
	}
	ob, err := b.Forward(FromVector(in))
	if err != nil {
		t.Fatal(err)
	}
	for i := range oa.Data {
		if oa.Data[i] != ob.Data[i] {
			t.Fatalf("same seed diverged at output %d", i)
		}
	}
}

func TestBuildFromSpecRejectsConv(t *testing.T) {
	m, err := dnnmodel.DNCNN().Scale(128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildFromSpec(m, 1); err == nil {
		t.Errorf("conv model should be rejected by the dense bridge")
	}
	if _, err := BuildFromSpec(dnnmodel.Model{}, 1); err == nil {
		t.Errorf("empty model should be rejected")
	}
}

func TestVerifyAgainstSpecDetectsMismatch(t *testing.T) {
	m, err := dnnmodel.MLP().Scale(128)
	if err != nil {
		t.Fatal(err)
	}
	net, err := BuildFromSpec(m, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Tamper with the spec: wrong width.
	wrong := m
	wrong.Layers = append([]dnnmodel.LayerSpec(nil), m.Layers...)
	wrong.Layers[1].Out++
	if err := VerifyAgainstSpec(net, wrong); err == nil {
		t.Errorf("mismatched spec should be detected")
	}
	// Wrong layer count.
	short := m
	short.Layers = m.Layers[:len(m.Layers)-1]
	if err := VerifyAgainstSpec(net, short); err == nil {
		t.Errorf("layer-count mismatch should be detected")
	}
}

func TestBuildConvFromSpecRunsDNCNN(t *testing.T) {
	// The DN-CNN must be runnable too: build it for several channel
	// counts, check the total MAC work matches the analytical model, and
	// run an inference.
	for _, n := range []int{128, 256} {
		m, err := dnnmodel.DNCNN().Scale(n)
		if err != nil {
			t.Fatal(err)
		}
		net, err := BuildConvFromSpec(m, 5)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		total, err := net.TotalMACs()
		if err != nil {
			t.Fatal(err)
		}
		// The dense block aggregates its members with a rounded average
		// sequence length; allow 2% slack.
		spec := m.TotalMACs()
		diff := float64(total-spec) / float64(spec)
		if diff < -0.02 || diff > 0.02 {
			t.Errorf("n=%d: network MACs %d vs spec %d (%.1f%% off)", n, total, spec, diff*100)
		}
		in := NewTensor(n, dnnmodel.DNCNNWindow)
		rng := rand.New(rand.NewSource(int64(n)))
		for i := range in.Data {
			in.Data[i] = rng.NormFloat64() * 0.1
		}
		out, err := net.Forward(in)
		if err != nil {
			t.Fatal(err)
		}
		if out.Size() != 40 {
			t.Errorf("n=%d output = %d labels", n, out.Size())
		}
	}
}

func TestBuildConvFromSpecValidation(t *testing.T) {
	if _, err := BuildConvFromSpec(dnnmodel.Model{}, 1); err == nil {
		t.Errorf("empty model should fail")
	}
	m, err := dnnmodel.MLP().Scale(128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildConvFromSpec(m, 1); err == nil {
		t.Errorf("dense front layer should be rejected")
	}
}
