package nn

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mindful/internal/fixed"
)

func TestDenseForwardKnown(t *testing.T) {
	d, err := NewDense([][]float64{{1, 2}, {-1, 0.5}}, []float64{0.5, 0}, Identity)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Forward(FromVector([]float64{2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Data[0]-8.5) > 1e-12 || math.Abs(out.Data[1]+0.5) > 1e-12 {
		t.Errorf("dense output = %v", out.Data)
	}
}

func TestDenseReLU(t *testing.T) {
	d, err := NewDense([][]float64{{1}, {-1}}, []float64{0, 0}, ReLU)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.Forward(FromVector([]float64{2}))
	if err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != 2 || out.Data[1] != 0 {
		t.Errorf("ReLU output = %v", out.Data)
	}
}

func TestDenseValidation(t *testing.T) {
	if _, err := NewDense(nil, nil, Identity); err == nil {
		t.Errorf("empty weights should fail")
	}
	if _, err := NewDense([][]float64{{1, 2}, {1}}, []float64{0, 0}, Identity); err == nil {
		t.Errorf("ragged weights should fail")
	}
	if _, err := NewDense([][]float64{{1}}, []float64{0, 0}, Identity); err == nil {
		t.Errorf("bias mismatch should fail")
	}
	d, _ := NewDense([][]float64{{1, 2}}, []float64{0}, Identity)
	if _, err := d.Forward(FromVector([]float64{1})); err == nil {
		t.Errorf("wrong input size should fail")
	}
}

func TestDenseMACsMatchPaperDefinition(t *testing.T) {
	// Matrix-vector: #MAC_op = out rows, MAC_seq = in columns (Fig. 8).
	d, _ := NewDense(make2D(4, 3), make([]float64, 4), Identity)
	p, err := d.MACs(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops != 4 || p.Seq != 3 {
		t.Errorf("dense MACs = %+v, want {4 3}", p)
	}
	if p.Total() != 12 {
		t.Errorf("total = %d", p.Total())
	}
}

func make2D(r, c int) [][]float64 {
	out := make([][]float64, r)
	for i := range out {
		out[i] = make([]float64, c)
	}
	return out
}

func TestConvForwardKnown(t *testing.T) {
	// One input channel, one kernel [1, -1]: discrete difference.
	cv, err := NewConv1D([][][]float64{{{1, -1}}}, []float64{0}, 1, Identity)
	if err != nil {
		t.Fatal(err)
	}
	in := Tensor{Ch: 1, Len: 4, Data: []float64{1, 3, 6, 10}}
	out, err := cv.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-2, -3, -4}
	for i := range want {
		if math.Abs(out.Data[i]-want[i]) > 1e-12 {
			t.Errorf("conv[%d] = %v, want %v", i, out.Data[i], want[i])
		}
	}
}

func TestConvMACsMatchPaperExample(t *testing.T) {
	// Fig. 8's convolution: 2 input channels, 1 output channel, kernel 4,
	// output size 4 → #MAC_op = 4, MAC_seq = 8.
	kernels := [][][]float64{{make([]float64, 4), make([]float64, 4)}}
	cv, err := NewConv1D(kernels, []float64{0}, 1, Identity)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cv.MACs(2, 7) // length 7, K=4, stride 1 → 4 outputs
	if err != nil {
		t.Fatal(err)
	}
	if p.Ops != 4 || p.Seq != 8 {
		t.Errorf("conv MACs = %+v, want {4 8}", p)
	}
}

func TestConvStrideAndValidation(t *testing.T) {
	kernels := [][][]float64{{{1, 1, 1}}}
	cv, err := NewConv1D(kernels, []float64{0}, 2, Identity)
	if err != nil {
		t.Fatal(err)
	}
	_, ol, err := cv.OutShape(1, 9)
	if err != nil {
		t.Fatal(err)
	}
	if ol != 4 {
		t.Errorf("strided output length = %d, want 4", ol)
	}
	if _, err := NewConv1D(nil, nil, 1, Identity); err == nil {
		t.Errorf("empty kernels should fail")
	}
	if _, err := NewConv1D(kernels, []float64{0}, 0, Identity); err == nil {
		t.Errorf("zero stride should fail")
	}
	if _, err := NewConv1D(kernels, []float64{0, 0}, 1, Identity); err == nil {
		t.Errorf("bias mismatch should fail")
	}
	if _, _, err := cv.OutShape(2, 9); err == nil {
		t.Errorf("channel mismatch should fail")
	}
	if _, _, err := cv.OutShape(1, 2); err == nil {
		t.Errorf("too-short input should fail")
	}
}

func TestDenseBlockConcatenation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// K=1 convolutions preserve length; channels grow 4 → 4+8 → 12+8.
	b := &DenseBlock{Convs: []*Conv1D{
		RandConv1D(rng, 4, 8, 1, 1, ReLU),
		RandConv1D(rng, 12, 8, 1, 1, ReLU),
	}}
	ch, ln, err := b.OutShape(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ch != 20 || ln != 16 {
		t.Errorf("block shape = %d×%d, want 20×16", ch, ln)
	}
	in := NewTensor(4, 16)
	for i := range in.Data {
		in.Data[i] = rng.NormFloat64()
	}
	out, err := b.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Ch != 20 || out.Len != 16 {
		t.Errorf("forward shape = %d×%d", out.Ch, out.Len)
	}
	// The first 4 channels are the input passed through.
	for i := 0; i < 4*16; i++ {
		if out.Data[i] != in.Data[i] {
			t.Fatalf("dense block must carry input forward")
		}
	}
	if b.Params() == 0 {
		t.Errorf("block params = 0")
	}
	p, err := b.MACs(4, 16)
	if err != nil {
		t.Fatal(err)
	}
	// conv1: 8×16 ops, seq 4; conv2: 8×16 ops, seq 12.
	if p.Ops != 256 {
		t.Errorf("block ops = %d, want 256", p.Ops)
	}
	if p.Seq != 8 { // (128·4 + 128·12)/256 = 8
		t.Errorf("block seq = %d, want 8", p.Seq)
	}
}

func TestNetworkComposition(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	net, err := NewNetwork(1, 128,
		RandDense(rng, 128, 64, ReLU),
		RandDense(rng, 64, 40, Identity),
	)
	if err != nil {
		t.Fatal(err)
	}
	in := FromVector(randVec(rng, 128))
	out, err := net.Forward(in)
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 40 {
		t.Errorf("output size = %d", out.Size())
	}
	if got := net.Params(); got != 128*64+64+64*40+40 {
		t.Errorf("params = %d", got)
	}
	total, err := net.TotalMACs()
	if err != nil {
		t.Fatal(err)
	}
	if total != 128*64+64*40 {
		t.Errorf("total MACs = %d", total)
	}
	// Mismatched shapes fail fast.
	if _, err := NewNetwork(1, 100, RandDense(rng, 128, 64, ReLU)); err == nil {
		t.Errorf("shape mismatch should fail at construction")
	}
	if _, err := net.Forward(FromVector(randVec(rng, 100))); err == nil {
		t.Errorf("wrong input shape should fail")
	}
	if _, err := NewNetwork(1, 10); err == nil {
		t.Errorf("empty network should fail")
	}
}

func randVec(rng *rand.Rand, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestSoftmaxAndArgmax(t *testing.T) {
	p := Softmax([]float64{1, 2, 3})
	sum := p[0] + p[1] + p[2]
	if math.Abs(sum-1) > 1e-12 {
		t.Errorf("softmax sum = %v", sum)
	}
	if p[2] <= p[1] || p[1] <= p[0] {
		t.Errorf("softmax not monotone: %v", p)
	}
	if Argmax(p) != 2 {
		t.Errorf("argmax = %d", Argmax(p))
	}
	if Argmax(nil) != -1 {
		t.Errorf("empty argmax should be -1")
	}
	// Large logits must not overflow.
	q := Softmax([]float64{1000, 1001})
	if math.IsNaN(q[0]) || math.Abs(q[0]+q[1]-1) > 1e-12 {
		t.Errorf("softmax overflow: %v", q)
	}
	if got := Softmax(nil); got != nil {
		t.Errorf("empty softmax should pass through")
	}
}

func TestSoftmaxProperty(t *testing.T) {
	f := func(a, b, c float64) bool {
		a, b, c = math.Mod(a, 50), math.Mod(b, 50), math.Mod(c, 50)
		p := Softmax([]float64{a, b, c})
		sum := 0.0
		for _, x := range p {
			if x < 0 || x > 1 {
				return false
			}
			sum += x
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizedDenseTracksFloat(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := RandDense(rng, 64, 16, ReLU)
	in := randVec(rng, 64)
	want, err := d.Forward(FromVector(in))
	if err != nil {
		t.Fatal(err)
	}
	got, err := QuantizedDense(d, in, fixed.Q7)
	if err != nil {
		t.Fatal(err)
	}
	// int8 arithmetic over 64-long dot products: expect small relative
	// error on the output scale.
	scale := maxAbs(want.Data)
	for i := range got {
		if math.Abs(got[i]-want.Data[i]) > 0.08*scale+0.02 {
			t.Errorf("output %d: quantized %v vs float %v", i, got[i], want.Data[i])
		}
	}
	if _, err := QuantizedDense(d, in[:10], fixed.Q7); err == nil {
		t.Errorf("wrong input length should fail")
	}
}

func TestQuantizedClassificationAgrees(t *testing.T) {
	// For a classifier, int8 inference should pick the same class as
	// float inference on the vast majority of random inputs.
	rng := rand.New(rand.NewSource(5))
	d := RandDense(rng, 32, 10, Identity)
	agree := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		in := randVec(rng, 32)
		want, err := d.Forward(FromVector(in))
		if err != nil {
			t.Fatal(err)
		}
		got, err := QuantizedDense(d, in, fixed.Q7)
		if err != nil {
			t.Fatal(err)
		}
		if Argmax(got) == Argmax(want.Data) {
			agree++
		}
	}
	if agree < trials*90/100 {
		t.Errorf("int8/float argmax agreement %d/%d, want ≥90%%", agree, trials)
	}
}

func TestQuantizedDenseZeroInput(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	d := RandDense(rng, 8, 4, Identity)
	out, err := QuantizedDense(d, make([]float64, 8), fixed.Q7)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != d.Bias[i] {
			t.Errorf("zero input output %d = %v, want bias", i, v)
		}
	}
}

func TestTensorHelpers(t *testing.T) {
	tt := NewTensor(2, 3)
	tt.Set(1, 2, 7)
	if tt.At(1, 2) != 7 {
		t.Errorf("At/Set broken")
	}
	if tt.Size() != 6 {
		t.Errorf("Size = %d", tt.Size())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("invalid tensor shape should panic")
			}
		}()
		NewTensor(0, 1)
	}()
	v := FromVector([]float64{1, 2})
	v.Data[0] = 9
	// FromVector must copy.
	src := []float64{1, 2}
	w := FromVector(src)
	src[0] = 100
	if w.Data[0] == 100 {
		t.Errorf("FromVector aliases input")
	}
}
