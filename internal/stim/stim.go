// Package stim models the stimulation side of a closed-loop BCI — the
// extension the paper's Section 7 plans ("we plan to extend this work to
// accommodate closed-loop BCIs"). Stimulation brings its own safety
// envelope, independent of the thermal budget: electrode damage is bounded
// by the Shannon charge-density criterion
//
//	log₁₀(D) ≤ k − log₁₀(Q)
//
// with D the charge density per phase (µC/cm²), Q the charge per phase
// (µC), and k ≈ 1.85 the accepted safety constant. The package provides
// charge-balanced biphasic pulse trains, the Shannon check, and the power
// cost of a stimulation schedule, so a closed-loop implant can be budgeted
// end to end.
package stim

import (
	"fmt"
	"math"

	"mindful/internal/units"
)

// ShannonK is the conventional safety constant of the Shannon criterion.
const ShannonK = 1.85

// Pulse is one symmetric, charge-balanced biphasic current pulse.
type Pulse struct {
	// AmplitudeA is the phase current in amperes.
	AmplitudeA float64
	// PhaseS is the duration of each phase in seconds.
	PhaseS float64
	// GapS is the interphase gap in seconds.
	GapS float64
}

// Validate checks the pulse shape.
func (p Pulse) Validate() error {
	if p.AmplitudeA <= 0 {
		return fmt.Errorf("stim: non-positive amplitude %g", p.AmplitudeA)
	}
	if p.PhaseS <= 0 {
		return fmt.Errorf("stim: non-positive phase width %g", p.PhaseS)
	}
	if p.GapS < 0 {
		return fmt.Errorf("stim: negative interphase gap")
	}
	return nil
}

// ChargePerPhase returns Q in coulombs.
func (p Pulse) ChargePerPhase() float64 { return p.AmplitudeA * p.PhaseS }

// Duration returns the full pulse duration (two phases plus gap).
func (p Pulse) Duration() float64 { return 2*p.PhaseS + p.GapS }

// TypicalPulse returns a representative cortical microstimulation pulse:
// 50 µA, 200 µs per phase, 50 µs gap.
func TypicalPulse() Pulse {
	return Pulse{AmplitudeA: 50e-6, PhaseS: 200e-6, GapS: 50e-6}
}

// Electrode is a stimulating site.
type Electrode struct {
	// Area is the geometric surface area.
	Area units.Area
	// AccessOhms is the access resistance the stimulator drives.
	AccessOhms float64
}

// TypicalMicroelectrode returns a 2000 µm² site with 50 kΩ access
// resistance.
func TypicalMicroelectrode() Electrode {
	return Electrode{Area: units.SquareMicrometres(2000), AccessOhms: 50e3}
}

// Validate checks the electrode.
func (e Electrode) Validate() error {
	if e.Area <= 0 {
		return fmt.Errorf("stim: non-positive electrode area")
	}
	if e.AccessOhms <= 0 {
		return fmt.Errorf("stim: non-positive access resistance")
	}
	return nil
}

// ShannonCheck is the result of a charge-safety evaluation.
type ShannonCheck struct {
	// ChargeUC is the charge per phase in µC.
	ChargeUC float64
	// DensityUCCM2 is the charge density per phase in µC/cm².
	DensityUCCM2 float64
	// K is log₁₀(D) + log₁₀(Q): safe while K ≤ ShannonK.
	K float64
}

// Safe reports whether the point respects the Shannon criterion.
func (c ShannonCheck) Safe() bool { return c.K <= ShannonK }

// String summarizes the check.
func (c ShannonCheck) String() string {
	verdict := "SAFE"
	if !c.Safe() {
		verdict = "UNSAFE"
	}
	return fmt.Sprintf("%s: Q=%.3g µC, D=%.3g µC/cm², k=%.2f (limit %.2f)",
		verdict, c.ChargeUC, c.DensityUCCM2, c.K, ShannonK)
}

// CheckShannon evaluates a pulse on an electrode against the Shannon
// criterion.
func CheckShannon(p Pulse, e Electrode) (ShannonCheck, error) {
	if err := p.Validate(); err != nil {
		return ShannonCheck{}, err
	}
	if err := e.Validate(); err != nil {
		return ShannonCheck{}, err
	}
	qUC := p.ChargePerPhase() * 1e6
	dUC := qUC / e.Area.CM2()
	return ShannonCheck{
		ChargeUC:     qUC,
		DensityUCCM2: dUC,
		K:            math.Log10(dUC) + math.Log10(qUC),
	}, nil
}

// MaxSafeAmplitude returns the largest phase current for which the pulse
// stays Shannon-safe on the electrode (holding the phase width).
func MaxSafeAmplitude(p Pulse, e Electrode) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if err := e.Validate(); err != nil {
		return 0, err
	}
	// k = log(Q²/A) with A in cm²; Q_max = √(10^k · A).
	qMax := math.Sqrt(math.Pow(10, ShannonK) * e.Area.CM2()) // µC
	return qMax * 1e-6 / p.PhaseS, nil
}

// Schedule is a stimulation pattern: a pulse train at a repetition rate on
// some number of simultaneously driven electrodes.
type Schedule struct {
	Pulse Pulse
	// RateHz is the per-electrode pulse repetition rate.
	RateHz float64
	// Electrodes is the number of sites driven concurrently.
	Electrodes int
	// ComplianceV is the stimulator supply (compliance) voltage; the
	// stimulator burns V·I during each phase regardless of the electrode
	// drop — the standard current-source cost model.
	ComplianceV float64
}

// TypicalSchedule returns 16 electrodes at 100 Hz with the typical pulse
// and a 5 V compliance rail.
func TypicalSchedule() Schedule {
	return Schedule{Pulse: TypicalPulse(), RateHz: 100, Electrodes: 16, ComplianceV: 5}
}

// Validate checks the schedule.
func (s Schedule) Validate() error {
	if err := s.Pulse.Validate(); err != nil {
		return err
	}
	if s.RateHz <= 0 {
		return fmt.Errorf("stim: non-positive pulse rate")
	}
	if s.Pulse.Duration()*s.RateHz > 1 {
		return fmt.Errorf("stim: pulses overlap at %g Hz", s.RateHz)
	}
	if s.Electrodes <= 0 {
		return fmt.Errorf("stim: non-positive electrode count")
	}
	if s.ComplianceV <= 0 {
		return fmt.Errorf("stim: non-positive compliance voltage")
	}
	return nil
}

// DutyCycle returns the fraction of time each electrode is driven.
func (s Schedule) DutyCycle() float64 { return 2 * s.Pulse.PhaseS * s.RateHz }

// AveragePower returns the stimulator's average power draw: compliance
// voltage × amplitude × duty cycle × electrodes. This power dissipates on
// the implant and counts against the same 40 mW/cm² budget as everything
// else.
func (s Schedule) AveragePower() (units.Power, error) {
	if err := s.Validate(); err != nil {
		return 0, err
	}
	perElectrode := s.ComplianceV * s.Pulse.AmplitudeA * s.DutyCycle()
	return units.Power(perElectrode * float64(s.Electrodes)), nil
}

// BudgetShare returns the fraction of an implant's thermal budget the
// schedule consumes, given the implant's total power budget.
func (s Schedule) BudgetShare(budget units.Power) (float64, error) {
	p, err := s.AveragePower()
	if err != nil {
		return 0, err
	}
	if budget <= 0 {
		return 0, fmt.Errorf("stim: non-positive budget")
	}
	return p.Watts() / budget.Watts(), nil
}
