package stim

import (
	"math"
	"testing"
	"testing/quick"

	"mindful/internal/thermal"
	"mindful/internal/units"
)

func TestPulseBasics(t *testing.T) {
	p := TypicalPulse()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	// Q = 50 µA × 200 µs = 10 nC = 0.01 µC.
	if got := p.ChargePerPhase(); math.Abs(got-10e-9) > 1e-15 {
		t.Errorf("charge = %v, want 10 nC", got)
	}
	if got := p.Duration(); math.Abs(got-450e-6) > 1e-12 {
		t.Errorf("duration = %v, want 450 µs", got)
	}
	bad := []Pulse{
		{AmplitudeA: 0, PhaseS: 1e-4},
		{AmplitudeA: 1e-5, PhaseS: 0},
		{AmplitudeA: 1e-5, PhaseS: 1e-4, GapS: -1},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("pulse %d should fail", i)
		}
	}
}

func TestShannonCheckTypicalIsSafe(t *testing.T) {
	// 0.01 µC over 2000 µm² (2e-5 cm²) → D = 500 µC/cm²;
	// k = log10(500) + log10(0.01) = 2.7 − 2 = 0.7 ≤ 1.85 → safe.
	c, err := CheckShannon(TypicalPulse(), TypicalMicroelectrode())
	if err != nil {
		t.Fatal(err)
	}
	if !c.Safe() {
		t.Errorf("typical microstimulation should be Shannon-safe: %v", c)
	}
	if math.Abs(c.ChargeUC-0.01) > 1e-12 {
		t.Errorf("Q = %v µC", c.ChargeUC)
	}
	if math.Abs(c.DensityUCCM2-500) > 1e-6 {
		t.Errorf("D = %v µC/cm²", c.DensityUCCM2)
	}
	if math.Abs(c.K-0.69897) > 1e-4 {
		t.Errorf("k = %v", c.K)
	}
}

func TestShannonCheckOverdriveIsUnsafe(t *testing.T) {
	p := TypicalPulse()
	p.AmplitudeA = 5e-3 // 100× the typical current
	c, err := CheckShannon(p, TypicalMicroelectrode())
	if err != nil {
		t.Fatal(err)
	}
	if c.Safe() {
		t.Errorf("100× overdrive should violate Shannon: %v", c)
	}
}

func TestMaxSafeAmplitudeSelfConsistent(t *testing.T) {
	p := TypicalPulse()
	e := TypicalMicroelectrode()
	iMax, err := MaxSafeAmplitude(p, e)
	if err != nil {
		t.Fatal(err)
	}
	if iMax <= p.AmplitudeA {
		t.Fatalf("typical pulse should be below the limit: %v", iMax)
	}
	// At the limit, k equals ShannonK.
	p.AmplitudeA = iMax
	c, err := CheckShannon(p, e)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(c.K-ShannonK) > 1e-9 {
		t.Errorf("k at the limit = %v, want %v", c.K, ShannonK)
	}
	// Just above it fails.
	p.AmplitudeA = iMax * 1.01
	c, _ = CheckShannon(p, e)
	if c.Safe() {
		t.Errorf("1%% above the limit should be unsafe")
	}
}

func TestLargerElectrodeAllowsMoreChargeProperty(t *testing.T) {
	f := func(a, b float64) bool {
		a1 := 500 + math.Abs(math.Mod(a, 5000))
		a2 := a1 + math.Abs(math.Mod(b, 5000)) + 1
		e1 := Electrode{Area: units.SquareMicrometres(a1), AccessOhms: 50e3}
		e2 := Electrode{Area: units.SquareMicrometres(a2), AccessOhms: 50e3}
		p := TypicalPulse()
		i1, err1 := MaxSafeAmplitude(p, e1)
		i2, err2 := MaxSafeAmplitude(p, e2)
		return err1 == nil && err2 == nil && i2 > i1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSchedulePower(t *testing.T) {
	s := TypicalSchedule()
	// Duty = 2 × 200 µs × 100 Hz = 4%; per electrode 5 V × 50 µA × 0.04
	// = 10 µW; ×16 = 160 µW.
	p, err := s.AveragePower()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Microwatts(); math.Abs(got-160) > 1e-9 {
		t.Errorf("schedule power = %v µW, want 160", got)
	}
	if got := s.DutyCycle(); math.Abs(got-0.04) > 1e-12 {
		t.Errorf("duty = %v", got)
	}
	// Against a Neuralink-sized budget (8 mW): a 2% share.
	share, err := s.BudgetShare(thermal.Budget(units.SquareMillimetres(20)))
	if err != nil {
		t.Fatal(err)
	}
	if share < 0.01 || share > 0.05 {
		t.Errorf("budget share = %v, want ≈2%%", share)
	}
	if _, err := s.BudgetShare(0); err == nil {
		t.Errorf("zero budget should fail")
	}
}

func TestScheduleValidation(t *testing.T) {
	s := TypicalSchedule()
	s.RateHz = 0
	if _, err := s.AveragePower(); err == nil {
		t.Errorf("zero rate should fail")
	}
	s = TypicalSchedule()
	s.RateHz = 5000 // 450 µs pulses at 5 kHz overlap
	if _, err := s.AveragePower(); err == nil {
		t.Errorf("overlapping pulses should fail")
	}
	s = TypicalSchedule()
	s.Electrodes = 0
	if _, err := s.AveragePower(); err == nil {
		t.Errorf("zero electrodes should fail")
	}
	s = TypicalSchedule()
	s.ComplianceV = 0
	if _, err := s.AveragePower(); err == nil {
		t.Errorf("zero compliance should fail")
	}
	e := TypicalMicroelectrode()
	e.Area = 0
	if _, err := CheckShannon(TypicalPulse(), e); err == nil {
		t.Errorf("zero-area electrode should fail")
	}
	e = TypicalMicroelectrode()
	e.AccessOhms = 0
	if _, err := CheckShannon(TypicalPulse(), e); err == nil {
		t.Errorf("zero resistance should fail")
	}
	if _, err := MaxSafeAmplitude(Pulse{}, TypicalMicroelectrode()); err == nil {
		t.Errorf("invalid pulse should fail")
	}
}
