package thermal

import (
	"math"
	"testing"

	"mindful/internal/units"
)

func TestModel2DUniformMatches1D(t *testing.T) {
	// A wide implant with uniform flux should reproduce the 1-D surface
	// rise under its center (edge effects aside).
	m := DefaultModel2D()
	m.ImplantWidthM = 0.016 // near-slab geometry
	d := units.MilliwattsPerCM2(40)
	res, err := m.SteadyState(UniformFlux(d, m.FootprintWidthNodes()))
	if err != nil {
		t.Fatal(err)
	}
	center := res.Rise[0][m.NX/2]
	oneD := Model{Tissue: m.Tissue, Depth: m.DepthM, Nodes: m.NY, FluxSplit: m.FluxSplit}
	p, err := oneD.SteadyState(d)
	if err != nil {
		t.Fatal(err)
	}
	want := p.SurfaceRise()
	if math.Abs(center-want) > 0.15*want {
		t.Errorf("2-D center rise %v vs 1-D %v (>15%% off)", center, want)
	}
}

func TestModel2DDecaysLaterally(t *testing.T) {
	m := DefaultModel2D()
	res, err := m.SteadyState(UniformFlux(units.MilliwattsPerCM2(40), m.FootprintWidthNodes()))
	if err != nil {
		t.Fatal(err)
	}
	center := res.Rise[0][m.NX/2]
	edge := res.Rise[0][0]
	if edge >= center/2 {
		t.Errorf("rise should decay away from the implant: center %v, slab edge %v", center, edge)
	}
	if center <= 0 {
		t.Fatalf("degenerate field")
	}
	// Field decays with depth too.
	if res.Rise[m.NY/2][m.NX/2] >= center {
		t.Errorf("rise should decay with depth")
	}
}

func TestHotspotWashedOutBySpreader(t *testing.T) {
	// The Section 3.2 argument, quantified: concentrating the same power
	// into 10% of the footprint raises the tissue peak sharply WITHOUT a
	// spreader, but a 25 µm silicon substrate brings the peak back near
	// the uniform case.
	base := units.MilliwattsPerCM2(40)

	noSpreader := DefaultModel2D()
	noSpreader.SpreaderConductivity = 0
	nodes := noSpreader.FootprintWidthNodes()

	uniform, err := noSpreader.SteadyState(UniformFlux(base, nodes))
	if err != nil {
		t.Fatal(err)
	}
	hotBare, err := noSpreader.SteadyState(HotspotFlux(base, nodes, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	withSpreader := DefaultModel2D()
	hotSpread, err := withSpreader.SteadyState(HotspotFlux(base, nodes, 0.1))
	if err != nil {
		t.Fatal(err)
	}

	uni := uniform.SurfacePeak()
	bare := hotBare.SurfacePeak()
	spread := hotSpread.SurfacePeak()
	if bare < 1.5*uni {
		t.Errorf("bare hotspot peak %v should clearly exceed uniform %v", bare, uni)
	}
	if spread > 1.25*uni {
		t.Errorf("spreader should wash the hotspot out: %v vs uniform %v", spread, uni)
	}
	if spread >= bare {
		t.Errorf("spreader must reduce the peak: %v vs %v", spread, bare)
	}
}

func TestEnergyBalanceUnderSpreading(t *testing.T) {
	// Spreading must conserve total flux.
	m := DefaultModel2D()
	nodes := m.FootprintWidthNodes()
	in := HotspotFlux(units.MilliwattsPerCM2(40), nodes, 0.2)
	out := m.spreadFlux(in.Density)
	sumIn, sumOut := 0.0, 0.0
	for i := range in.Density {
		sumIn += in.Density[i]
		sumOut += out[i]
	}
	if math.Abs(sumIn-sumOut) > 1e-6*sumIn {
		t.Errorf("spreading lost energy: %v vs %v", sumIn, sumOut)
	}
}

func TestModel2DValidation(t *testing.T) {
	bad := []Model2D{
		func() Model2D { m := DefaultModel2D(); m.NX = 2; return m }(),
		func() Model2D { m := DefaultModel2D(); m.WidthM = 0; return m }(),
		func() Model2D { m := DefaultModel2D(); m.ImplantWidthM = 1; return m }(),
		func() Model2D { m := DefaultModel2D(); m.FluxSplit = 2; return m }(),
		func() Model2D { m := DefaultModel2D(); m.SpreaderThicknessM = -1; return m }(),
	}
	for i, m := range bad {
		if _, err := m.SteadyState(UniformFlux(units.MilliwattsPerCM2(10), 4)); err == nil {
			t.Errorf("model %d should fail validation", i)
		}
	}
	// Wrong flux length.
	m := DefaultModel2D()
	if _, err := m.SteadyState(UniformFlux(units.MilliwattsPerCM2(10), 3)); err == nil {
		t.Errorf("mismatched flux profile should fail")
	}
}

func TestHotspotFluxConservesTotal(t *testing.T) {
	d := units.MilliwattsPerCM2(40)
	uni := UniformFlux(d, 32)
	hot := HotspotFlux(d, 32, 0.25)
	sum := func(p FluxProfile) float64 {
		s := 0.0
		for _, v := range p.Density {
			s += v
		}
		return s
	}
	if math.Abs(sum(uni)-sum(hot)) > 1e-9*sum(uni) {
		t.Errorf("hotspot redistribution changed total flux: %v vs %v", sum(uni), sum(hot))
	}
	// The stripe is genuinely hotter.
	peak := 0.0
	for _, v := range hot.Density {
		if v > peak {
			peak = v
		}
	}
	if peak < 3.9*d.WattsPerM2() {
		t.Errorf("hotspot density = %v, want ≈4× uniform", peak)
	}
}
