// Package thermal implements the safety side of the MINDFUL framework.
//
// The paper adopts P_d = 40 mW/cm² as the maximum safe power density for an
// implant in contact with brain tissue (Eq. 3): the power budget of a design
// is P_budget(n) = A_SoC(n) · 40 mW/cm². This package provides that budget
// model, and — because the constant is ultimately a thermal statement — a
// one-dimensional Pennes bio-heat finite-difference solver that recovers the
// ≈1–2 °C tissue temperature rise the limit is derived from. The solver is
// the substitute for in-vivo thermal measurements: it exercises the same
// safety reasoning on a first-principles tissue model.
package thermal

import (
	"fmt"
	"math"
	"time"

	"mindful/internal/obs"
	"mindful/internal/units"
)

// SafeDensity is the paper's maximum safe implant power density,
// 40 mW/cm² (Wolf & Reichert 2008, as cited).
var SafeDensity = units.MilliwattsPerCM2(40)

// MaxTempRise is the maximum allowed tissue temperature increase in kelvin
// (the paper cites 1–2 °C; 2 °C is the upper limit used for checks).
const MaxTempRise = 2.0

// Budget returns the total power an implant of the given contact area may
// dissipate while respecting SafeDensity (Eq. 3).
func Budget(a units.Area) units.Power { return SafeDensity.Over(a) }

// Check is the result of a safety evaluation for one design point.
type Check struct {
	Power   units.Power
	Area    units.Area
	Density units.PowerDensity
	Budget  units.Power
	// Utilization is Power / Budget; ≤ 1 means safe.
	Utilization float64
}

// Safe reports whether the design respects the power budget.
func (c Check) Safe() bool { return c.Utilization <= 1 }

// Headroom returns the unused budget (negative when over budget).
func (c Check) Headroom() units.Power { return c.Budget - c.Power }

// String summarizes the check.
func (c Check) String() string {
	verdict := "SAFE"
	if !c.Safe() {
		verdict = "UNSAFE"
	}
	return fmt.Sprintf("%s: %v over %v = %v (budget %v, %.0f%%)",
		verdict, c.Power, c.Area, c.Density, c.Budget, c.Utilization*100)
}

// Evaluate checks power p dissipated over contact area a against the
// safety budget.
func Evaluate(p units.Power, a units.Area) Check {
	b := Budget(a)
	util := math.Inf(1)
	if b > 0 {
		util = p.Watts() / b.Watts()
	}
	return Check{
		Power:       p,
		Area:        a,
		Density:     units.DensityOf(p, a),
		Budget:      b,
		Utilization: util,
	}
}

// Tissue holds the thermophysical parameters of perfused brain tissue used
// by the Pennes bio-heat model.
type Tissue struct {
	Conductivity  float64 // k, W/(m·K)
	Density       float64 // ρ, kg/m³
	SpecificHeat  float64 // c, J/(kg·K)
	BloodDensity  float64 // ρ_b, kg/m³
	BloodHeat     float64 // c_b, J/(kg·K)
	PerfusionRate float64 // ω_b, 1/s (volumetric blood flow per tissue volume)
	ArterialTempC float64 // T_a, °C
}

// Brain is grey-matter tissue with the high cerebral blood flow the paper
// notes ("one of the highest blood-flow rates in the body"): ≈50 ml per
// 100 g per minute.
var Brain = Tissue{
	Conductivity:  0.5,
	Density:       1040,
	SpecificHeat:  3650,
	BloodDensity:  1060,
	BloodHeat:     3600,
	PerfusionRate: 0.0087,
	ArterialTempC: 37.0,
}

// PenetrationDepth returns the characteristic length L = √(k / (ρ_b·c_b·ω_b))
// over which perfusion absorbs an excess heat flux.
func (ts Tissue) PenetrationDepth() float64 {
	return math.Sqrt(ts.Conductivity / (ts.BloodDensity * ts.BloodHeat * ts.PerfusionRate))
}

// Model is a 1-D Pennes bio-heat model of tissue under an implant that
// injects a uniform heat flux at x = 0. Because heat spreads laterally in
// silicon much faster than into tissue (the paper's uniform-dissipation
// argument), the 1-D depth profile is the governing geometry.
type Model struct {
	Tissue Tissue
	// Depth is the modeled tissue depth in metres; the far boundary is
	// clamped at arterial temperature.
	Depth float64
	// Nodes is the number of finite-difference nodes (≥ 3).
	Nodes int
	// FluxSplit is the fraction of implant power that enters brain tissue;
	// the remainder leaves through the dura/CSF side. A subdural implant
	// dissipating symmetrically has FluxSplit = 0.5.
	FluxSplit float64
	// Obs, when set, accounts solver runs: solve-time histograms, step
	// counters and a max-ΔT gauge. Nil (the zero value) disables it.
	Obs *obs.Observer
}

// solverBuckets spans µs-to-second solver runtimes.
var solverBuckets = obs.ExpBuckets(1e-6, 4, 12)

// recordSolve accounts one solver run and its peak temperature rise.
func recordSolve(o *obs.Observer, solver string, steps int64, elapsed time.Duration, maxRise float64) {
	if o == nil {
		return
	}
	lbl := obs.Label{Key: "solver", Value: solver}
	m := o.Metrics
	m.Counter("thermal_solves_total", lbl).Inc()
	m.Counter("thermal_solver_steps_total", lbl).Add(steps)
	m.Histogram("thermal_solve_seconds", solverBuckets, lbl).Observe(elapsed.Seconds())
	m.Gauge("thermal_max_rise_celsius", lbl).Set(maxRise)
	m.Help("thermal_solves_total", "Thermal solver invocations.")
	m.Help("thermal_solver_steps_total", "Solver rows, timesteps or sweeps executed.")
	m.Help("thermal_solve_seconds", "Wall-clock time per solver run.")
	m.Help("thermal_max_rise_celsius", "Peak tissue temperature rise of the latest solve.")
}

// maxOf returns the maximum of a slice (0 when empty).
func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// DefaultModel returns the model configuration used by the framework:
// 30 mm of brain tissue, 600 nodes, symmetric flux split.
func DefaultModel() Model {
	return Model{Tissue: Brain, Depth: 0.030, Nodes: 600, FluxSplit: 0.5}
}

func (m Model) validate() error {
	if m.Nodes < 3 {
		return fmt.Errorf("thermal: need at least 3 nodes, have %d", m.Nodes)
	}
	if m.Depth <= 0 {
		return fmt.Errorf("thermal: non-positive depth %g", m.Depth)
	}
	if m.FluxSplit < 0 || m.FluxSplit > 1 {
		return fmt.Errorf("thermal: flux split %g outside [0,1]", m.FluxSplit)
	}
	return nil
}

// Profile is a steady-state temperature-rise profile: Rise[i] is the excess
// temperature (K above arterial) at depth X[i] metres.
type Profile struct {
	X    []float64
	Rise []float64
}

// SurfaceRise returns the temperature rise at the implant-tissue interface.
func (p Profile) SurfaceRise() float64 {
	if len(p.Rise) == 0 {
		return 0
	}
	return p.Rise[0]
}

// SteadyState solves the steady Pennes equation
//
//	k·T'' − ρ_b·c_b·ω_b·T = 0,  −k·T'(0) = q″,  T(Depth) = 0
//
// for the excess temperature T (above arterial) under an implant flux
// density q″ (the implant's power density scaled by FluxSplit). The
// tridiagonal system is solved directly with the Thomas algorithm.
func (m Model) SteadyState(d units.PowerDensity) (Profile, error) {
	if err := m.validate(); err != nil {
		return Profile{}, err
	}
	var start time.Time
	if m.Obs != nil {
		start = time.Now()
	}
	n := m.Nodes
	h := m.Depth / float64(n-1)
	k := m.Tissue.Conductivity
	beta := m.Tissue.BloodDensity * m.Tissue.BloodHeat * m.Tissue.PerfusionRate
	flux := d.WattsPerM2() * m.FluxSplit

	// Tridiagonal coefficients: a (sub), b (diag), c (super), r (rhs).
	a := make([]float64, n)
	b := make([]float64, n)
	c := make([]float64, n)
	r := make([]float64, n)

	// Interior nodes: k·(T[i-1] − 2T[i] + T[i+1])/h² − β·T[i] = 0.
	for i := 1; i < n-1; i++ {
		a[i] = k / (h * h)
		b[i] = -2*k/(h*h) - beta
		c[i] = k / (h * h)
	}
	// Flux boundary at node 0 via a ghost node: T[-1] = T[1] + 2h·q″/k,
	// substituted into the interior stencil at i = 0.
	b[0] = -2*k/(h*h) - beta
	c[0] = 2 * k / (h * h)
	r[0] = -2 * flux / h
	// Dirichlet at the far end.
	b[n-1] = 1
	r[n-1] = 0

	rise, err := solveTridiag(a, b, c, r)
	if err != nil {
		return Profile{}, err
	}
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i) * h
	}
	if m.Obs != nil {
		recordSolve(m.Obs, "steady1d", int64(n), time.Since(start), maxOf(rise))
	}
	return Profile{X: xs, Rise: rise}, nil
}

// solveTridiag solves a tridiagonal system with the Thomas algorithm.
func solveTridiag(a, b, c, r []float64) ([]float64, error) {
	n := len(b)
	cp := make([]float64, n)
	rp := make([]float64, n)
	if b[0] == 0 {
		return nil, fmt.Errorf("thermal: singular system")
	}
	cp[0] = c[0] / b[0]
	rp[0] = r[0] / b[0]
	for i := 1; i < n; i++ {
		den := b[i] - a[i]*cp[i-1]
		if den == 0 {
			return nil, fmt.Errorf("thermal: singular system at row %d", i)
		}
		cp[i] = c[i] / den
		rp[i] = (r[i] - a[i]*rp[i-1]) / den
	}
	x := make([]float64, n)
	x[n-1] = rp[n-1]
	for i := n - 2; i >= 0; i-- {
		x[i] = rp[i] - cp[i]*x[i+1]
	}
	return x, nil
}

// AnalyticSurfaceRise returns the closed-form steady surface rise for a
// semi-infinite perfused medium: ΔT(0) = q″·L/k with L the penetration
// depth. Used to validate the numerical solver.
func (m Model) AnalyticSurfaceRise(d units.PowerDensity) float64 {
	l := m.Tissue.PenetrationDepth()
	return d.WattsPerM2() * m.FluxSplit * l / m.Tissue.Conductivity
}

// Transient integrates the time-dependent Pennes equation with explicit
// finite differences from a uniform arterial start, returning the surface
// rise trajectory sampled every sampleEvery seconds for a total duration.
// It is used to study warm-up behaviour after implant power-on.
func (m Model) Transient(d units.PowerDensity, duration, sampleEvery float64) ([]float64, error) {
	if err := m.validate(); err != nil {
		return nil, err
	}
	if duration <= 0 || sampleEvery <= 0 {
		return nil, fmt.Errorf("thermal: non-positive duration or sample interval")
	}
	var start time.Time
	if m.Obs != nil {
		start = time.Now()
	}
	n := m.Nodes
	h := m.Depth / float64(n-1)
	k := m.Tissue.Conductivity
	rhoC := m.Tissue.Density * m.Tissue.SpecificHeat
	beta := m.Tissue.BloodDensity * m.Tissue.BloodHeat * m.Tissue.PerfusionRate
	flux := d.WattsPerM2() * m.FluxSplit

	alpha := k / rhoC
	// CFL stability: dt ≤ h²/(2α); keep a 20% margin.
	dt := 0.4 * h * h / alpha
	if dt > sampleEvery {
		dt = sampleEvery
	}

	tcur := make([]float64, n)
	tnext := make([]float64, n)
	var out []float64
	var steps int64
	elapsed, nextSample := 0.0, sampleEvery
	for elapsed < duration {
		steps++
		// Ghost-node flux boundary at 0.
		tm1 := tcur[1] + 2*h*flux/k
		tnext[0] = tcur[0] + dt*(k*(tm1-2*tcur[0]+tcur[1])/(h*h)-beta*tcur[0])/rhoC
		for i := 1; i < n-1; i++ {
			tnext[i] = tcur[i] + dt*(k*(tcur[i-1]-2*tcur[i]+tcur[i+1])/(h*h)-beta*tcur[i])/rhoC
		}
		tnext[n-1] = 0
		tcur, tnext = tnext, tcur
		elapsed += dt
		if elapsed >= nextSample {
			out = append(out, tcur[0])
			nextSample += sampleEvery
		}
	}
	if m.Obs != nil {
		recordSolve(m.Obs, "transient1d", steps, time.Since(start), maxOf(tcur))
	}
	return out, nil
}

// MaxSafeFlux returns the largest implant power density whose steady-state
// surface rise stays within maxRise kelvin, found by bisection on the
// (linear) steady-state solution.
func (m Model) MaxSafeFlux(maxRise float64) (units.PowerDensity, error) {
	if err := m.validate(); err != nil {
		return 0, err
	}
	// The steady solution is linear in flux: rise(q) = q · rise(1 W/m²).
	p, err := m.SteadyState(units.PowerDensity(1))
	if err != nil {
		return 0, err
	}
	per := p.SurfaceRise()
	if per <= 0 {
		return 0, fmt.Errorf("thermal: degenerate model response")
	}
	return units.PowerDensity(maxRise / per), nil
}
