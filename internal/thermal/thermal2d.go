package thermal

import (
	"fmt"
	"math"
	"time"

	"mindful/internal/obs"
	"mindful/internal/units"
)

// Model2D is a two-dimensional (lateral × depth) steady-state Pennes model
// of tissue under a finite implant. It exists to test the paper's
// uniform-dissipation argument (Section 3.2): because silicon conducts
// heat two orders of magnitude better than tissue, on-chip hotspots wash
// out before reaching the tissue — so the 1-D uniform-flux model is the
// right safety abstraction. This solver lets that argument be *checked*:
// inject a concentrated flux, toggle the silicon spreader, and compare the
// tissue's peak temperature rise.
type Model2D struct {
	Tissue Tissue
	// WidthM and DepthM bound the simulated tissue slab.
	WidthM, DepthM float64
	// NX and NY are the lateral and depth node counts (≥ 3 each).
	NX, NY int
	// ImplantWidthM is the implant footprint centered on the surface.
	ImplantWidthM float64
	// FluxSplit is as in Model.
	FluxSplit float64
	// SpreaderConductivity is the effective lateral conductivity of the
	// implant substrate (W/(m·K)); silicon ≈ 150. Zero disables the
	// spreader (flux enters tissue exactly where it is generated).
	SpreaderConductivity float64
	// SpreaderThicknessM is the substrate thickness (≈ 25–300 µm).
	SpreaderThicknessM float64
	// Obs, when set, accounts solver runs as in Model.Obs.
	Obs *obs.Observer
}

// DefaultModel2D returns a 20 mm × 15 mm slab under a 8 mm implant with a
// 25 µm silicon substrate (the paper's flexible-implant thickness).
func DefaultModel2D() Model2D {
	return Model2D{
		Tissue:               Brain,
		WidthM:               0.020,
		DepthM:               0.015,
		NX:                   80,
		NY:                   60,
		ImplantWidthM:        0.008,
		FluxSplit:            0.5,
		SpreaderConductivity: 150,
		SpreaderThicknessM:   25e-6,
	}
}

func (m Model2D) validate() error {
	if m.NX < 3 || m.NY < 3 {
		return fmt.Errorf("thermal: 2-D grid %d×%d too small", m.NX, m.NY)
	}
	if m.WidthM <= 0 || m.DepthM <= 0 {
		return fmt.Errorf("thermal: non-positive 2-D extent")
	}
	if m.ImplantWidthM <= 0 || m.ImplantWidthM > m.WidthM {
		return fmt.Errorf("thermal: implant width %g outside (0, %g]", m.ImplantWidthM, m.WidthM)
	}
	if m.FluxSplit < 0 || m.FluxSplit > 1 {
		return fmt.Errorf("thermal: flux split %g outside [0,1]", m.FluxSplit)
	}
	if m.SpreaderConductivity < 0 || m.SpreaderThicknessM < 0 {
		return fmt.Errorf("thermal: negative spreader parameter")
	}
	return nil
}

// FluxProfile describes the heat flux density entering the tissue along
// the implant footprint: Density[i] is W/m² at footprint node i.
type FluxProfile struct {
	Density []float64
}

// UniformFlux returns a footprint profile with the given density
// everywhere.
func UniformFlux(d units.PowerDensity, nodes int) FluxProfile {
	p := FluxProfile{Density: make([]float64, nodes)}
	for i := range p.Density {
		p.Density[i] = d.WattsPerM2()
	}
	return p
}

// HotspotFlux concentrates the total power of a uniform profile into the
// central fraction of the footprint (e.g. 0.1 → a 10×-density stripe), the
// worst-case non-uniform on-chip activity.
func HotspotFlux(d units.PowerDensity, nodes int, fraction float64) FluxProfile {
	p := FluxProfile{Density: make([]float64, nodes)}
	hot := int(math.Max(1, math.Round(fraction*float64(nodes))))
	start := (nodes - hot) / 2
	boost := d.WattsPerM2() * float64(nodes) / float64(hot)
	for i := start; i < start+hot && i < nodes; i++ {
		p.Density[i] = boost
	}
	return p
}

// Result2D is a steady 2-D temperature-rise field: Rise[j][i] is the
// excess temperature at depth row j, lateral column i.
type Result2D struct {
	Rise [][]float64
	// FootprintStart and FootprintEnd are the implant's column range.
	FootprintStart, FootprintEnd int
}

// SurfacePeak returns the hottest tissue-surface node.
func (r Result2D) SurfacePeak() float64 {
	peak := 0.0
	for _, v := range r.Rise[0] {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// SurfaceUnderImplant returns the rise profile along the footprint.
func (r Result2D) SurfaceUnderImplant() []float64 {
	return r.Rise[0][r.FootprintStart:r.FootprintEnd]
}

// footprintNodes returns the column range covered by the implant.
func (m Model2D) footprintNodes() (start, end int) {
	dx := m.WidthM / float64(m.NX-1)
	n := int(math.Round(m.ImplantWidthM / dx))
	if n < 1 {
		n = 1
	}
	start = (m.NX - n) / 2
	return start, start + n
}

// FootprintWidthNodes returns how many columns the implant covers.
func (m Model2D) FootprintWidthNodes() int {
	s, e := m.footprintNodes()
	return e - s
}

// SteadyState solves the 2-D Pennes equation by Gauss–Seidel iteration
// with the given footprint flux profile (len must equal
// FootprintWidthNodes). When a spreader is configured, the implant
// substrate first diffuses the injected flux laterally (a 1-D fin
// equation across the footprint) before it enters the tissue.
func (m Model2D) SteadyState(flux FluxProfile) (Result2D, error) {
	if err := m.validate(); err != nil {
		return Result2D{}, err
	}
	start, end := m.footprintNodes()
	if len(flux.Density) != end-start {
		return Result2D{}, fmt.Errorf("thermal: flux profile %d nodes, footprint needs %d",
			len(flux.Density), end-start)
	}
	applied := make([]float64, len(flux.Density))
	copy(applied, flux.Density)
	if m.SpreaderConductivity > 0 && m.SpreaderThicknessM > 0 {
		applied = m.spreadFlux(applied)
	}
	for i := range applied {
		applied[i] *= m.FluxSplit
	}

	dx := m.WidthM / float64(m.NX-1)
	dy := m.DepthM / float64(m.NY-1)
	k := m.Tissue.Conductivity
	beta := m.Tissue.BloodDensity * m.Tissue.BloodHeat * m.Tissue.PerfusionRate

	t := make([][]float64, m.NY)
	for j := range t {
		t[j] = make([]float64, m.NX)
	}
	// Gauss–Seidel sweeps; the perfusion term makes the operator strongly
	// diagonally dominant so convergence is fast.
	var solveStart time.Time
	if m.Obs != nil {
		solveStart = time.Now()
	}
	var sweeps int64
	cx := k / (dx * dx)
	cy := k / (dy * dy)
	for iter := 0; iter < 4000; iter++ {
		sweeps++
		var maxDelta float64
		for j := 0; j < m.NY-1; j++ { // far depth row stays clamped at 0
			for i := 0; i < m.NX; i++ {
				var sum, diag float64
				// Lateral neighbours (insulated side walls via mirror).
				left, right := i-1, i+1
				if left < 0 {
					left = 1
				}
				if right >= m.NX {
					right = m.NX - 2
				}
				sum += cx * (t[j][left] + t[j][right])
				diag += 2 * cx
				// Depth neighbours.
				if j == 0 {
					// Surface: ghost node carries the flux where the
					// implant sits, insulated elsewhere.
					q := 0.0
					if i >= start && i < end {
						q = applied[i-start]
					}
					sum += cy*(2*t[j+1][i]) + 2*q/dy
					diag += 2 * cy
				} else {
					sum += cy * (t[j-1][i] + t[j+1][i])
					diag += 2 * cy
				}
				diag += beta
				next := sum / diag
				if d := math.Abs(next - t[j][i]); d > maxDelta {
					maxDelta = d
				}
				t[j][i] = next
			}
		}
		if maxDelta < 1e-7 {
			break
		}
	}
	res := Result2D{Rise: t, FootprintStart: start, FootprintEnd: end}
	if m.Obs != nil {
		recordSolve(m.Obs, "steady2d", sweeps, time.Since(solveStart), res.SurfacePeak())
	}
	return res, nil
}

// spreadFlux diffuses the footprint flux through the substrate: a 1-D fin
// equation k_s·t_s·T” = q_in − q_out with the tissue acting as the sink.
// Implemented as repeated lateral smoothing whose extent matches the
// spreader's healing length √(k_s·t_s·L_t/k_t), where L_t is the tissue
// penetration depth.
func (m Model2D) spreadFlux(flux []float64) []float64 {
	lt := m.Tissue.PenetrationDepth()
	healing := math.Sqrt(m.SpreaderConductivity * m.SpreaderThicknessM * lt / m.Tissue.Conductivity)
	dx := m.WidthM / float64(m.NX-1)
	// Number of three-point smoothing passes whose diffusion radius
	// ≈ healing length: radius ≈ √(passes/2)·dx.
	passes := int(2 * (healing / dx) * (healing / dx))
	if passes < 1 {
		passes = 1
	}
	if passes > 20000 {
		passes = 20000
	}
	cur := append([]float64(nil), flux...)
	next := make([]float64, len(cur))
	for p := 0; p < passes; p++ {
		for i := range cur {
			l, r := i-1, i+1
			if l < 0 {
				l = 0
			}
			if r >= len(cur) {
				r = len(cur) - 1
			}
			next[i] = 0.25*cur[l] + 0.5*cur[i] + 0.25*cur[r]
		}
		cur, next = next, cur
	}
	return cur
}
