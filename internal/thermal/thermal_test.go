package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"mindful/internal/units"
)

func TestBudget(t *testing.T) {
	// BISC-like implant: 144 mm² at 40 mW/cm² → 57.6 mW.
	got := Budget(units.SquareMillimetres(144)).Milliwatts()
	if math.Abs(got-57.6) > 1e-9 {
		t.Errorf("budget = %v mW, want 57.6", got)
	}
}

func TestEvaluate(t *testing.T) {
	c := Evaluate(units.Milliwatts(28.8), units.SquareMillimetres(144))
	if !c.Safe() {
		t.Errorf("half-budget design should be safe: %v", c)
	}
	if math.Abs(c.Utilization-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", c.Utilization)
	}
	if got := c.Headroom().Milliwatts(); math.Abs(got-28.8) > 1e-9 {
		t.Errorf("headroom = %v mW, want 28.8", got)
	}

	over := Evaluate(units.Milliwatts(100), units.SquareMillimetres(144))
	if over.Safe() {
		t.Errorf("over-budget design should be unsafe: %v", over)
	}
	if over.Headroom() >= 0 {
		t.Errorf("over-budget headroom should be negative")
	}

	zero := Evaluate(units.Milliwatts(1), 0)
	if zero.Safe() || !math.IsInf(zero.Utilization, 1) {
		t.Errorf("zero-area design must be unsafe: %v", zero.Utilization)
	}
}

func TestEvaluateBoundaryExactlyAtBudget(t *testing.T) {
	c := Evaluate(Budget(units.SquareMillimetres(20)), units.SquareMillimetres(20))
	if !c.Safe() {
		t.Errorf("exactly-at-budget should count as safe")
	}
	if math.Abs(c.Density.MWPerCM2()-40) > 1e-9 {
		t.Errorf("density = %v, want 40 mW/cm²", c.Density.MWPerCM2())
	}
}

func TestSafetyMonotoneProperty(t *testing.T) {
	// More power over the same area can never become safer.
	f := func(p1, p2, mm2 float64) bool {
		p1, p2 = math.Abs(p1), math.Abs(p2)
		mm2 = math.Abs(mm2) + 1
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		c1 := Evaluate(units.Milliwatts(p1), units.SquareMillimetres(mm2))
		c2 := Evaluate(units.Milliwatts(p2), units.SquareMillimetres(mm2))
		return c1.Utilization <= c2.Utilization+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPenetrationDepth(t *testing.T) {
	// For brain parameters the perfusion penetration depth is ≈3–5 mm.
	l := Brain.PenetrationDepth()
	if l < 0.002 || l > 0.006 {
		t.Errorf("penetration depth = %v m, want 2–6 mm", l)
	}
}

func TestSteadyStateMatchesAnalytic(t *testing.T) {
	m := DefaultModel()
	d := units.MilliwattsPerCM2(40)
	p, err := m.SteadyState(d)
	if err != nil {
		t.Fatal(err)
	}
	got := p.SurfaceRise()
	want := m.AnalyticSurfaceRise(d)
	if math.Abs(got-want) > 0.02*want {
		t.Errorf("numeric surface rise %v vs analytic %v (>2%% off)", got, want)
	}
}

func TestSafeDensityGivesOneToTwoDegrees(t *testing.T) {
	// The headline safety claim: at the paper's 40 mW/cm² limit the tissue
	// temperature rise must land in the cited 1–2 °C window.
	m := DefaultModel()
	p, err := m.SteadyState(SafeDensity)
	if err != nil {
		t.Fatal(err)
	}
	rise := p.SurfaceRise()
	if rise < 1.0 || rise > 2.0 {
		t.Errorf("rise at 40 mW/cm² = %v °C, want within [1, 2]", rise)
	}
}

func TestProfileDecaysMonotonically(t *testing.T) {
	m := DefaultModel()
	p, err := m.SteadyState(units.MilliwattsPerCM2(40))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(p.Rise); i++ {
		if p.Rise[i] > p.Rise[i-1]+1e-12 {
			t.Fatalf("profile not monotone at node %d: %v > %v", i, p.Rise[i], p.Rise[i-1])
		}
	}
	if last := p.Rise[len(p.Rise)-1]; last != 0 {
		t.Errorf("far boundary rise = %v, want 0", last)
	}
}

func TestSteadyStateLinearInFlux(t *testing.T) {
	m := DefaultModel()
	f := func(scale float64) bool {
		s := math.Abs(math.Mod(scale, 10)) + 0.1
		p1, err1 := m.SteadyState(units.MilliwattsPerCM2(10))
		p2, err2 := m.SteadyState(units.MilliwattsPerCM2(10 * s))
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(p2.SurfaceRise()-s*p1.SurfaceRise()) < 1e-9*(1+s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestMaxSafeFluxConsistency(t *testing.T) {
	m := DefaultModel()
	d, err := m.MaxSafeFlux(MaxTempRise)
	if err != nil {
		t.Fatal(err)
	}
	// The model should recover a limit in the same regime as the paper's
	// 40 mW/cm² constant (within a factor of ~2 either way).
	got := d.MWPerCM2()
	if got < 20 || got > 120 {
		t.Errorf("max safe flux = %v mW/cm², want within [20, 120]", got)
	}
	// And the rise at that flux must be exactly the limit.
	p, err := m.SteadyState(d)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.SurfaceRise()-MaxTempRise) > 1e-6 {
		t.Errorf("rise at max safe flux = %v, want %v", p.SurfaceRise(), MaxTempRise)
	}
}

func TestTransientApproachesSteadyState(t *testing.T) {
	m := DefaultModel()
	m.Nodes = 120 // keep the explicit integration cheap
	d := units.MilliwattsPerCM2(40)
	traj, err := m.Transient(d, 600, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(traj) < 5 {
		t.Fatalf("trajectory too short: %d samples", len(traj))
	}
	// Monotone warm-up.
	for i := 1; i < len(traj); i++ {
		if traj[i] < traj[i-1]-1e-9 {
			t.Fatalf("warm-up not monotone at sample %d", i)
		}
	}
	// Final value close to steady state.
	ss, err := m.SteadyState(d)
	if err != nil {
		t.Fatal(err)
	}
	final := traj[len(traj)-1]
	if math.Abs(final-ss.SurfaceRise()) > 0.05*ss.SurfaceRise() {
		t.Errorf("transient final %v vs steady %v", final, ss.SurfaceRise())
	}
}

func TestModelValidation(t *testing.T) {
	bad := []Model{
		{Tissue: Brain, Depth: 0.03, Nodes: 2, FluxSplit: 0.5},
		{Tissue: Brain, Depth: -1, Nodes: 100, FluxSplit: 0.5},
		{Tissue: Brain, Depth: 0.03, Nodes: 100, FluxSplit: 1.5},
	}
	for i, m := range bad {
		if _, err := m.SteadyState(SafeDensity); err == nil {
			t.Errorf("model %d should fail validation", i)
		}
		if _, err := m.Transient(SafeDensity, 10, 1); err == nil {
			t.Errorf("model %d transient should fail validation", i)
		}
		if _, err := m.MaxSafeFlux(2); err == nil {
			t.Errorf("model %d MaxSafeFlux should fail validation", i)
		}
	}
	m := DefaultModel()
	if _, err := m.Transient(SafeDensity, -1, 1); err == nil {
		t.Errorf("negative duration should fail")
	}
}

func TestCheckString(t *testing.T) {
	c := Evaluate(units.Milliwatts(10), units.SquareMillimetres(100))
	s := c.String()
	if len(s) == 0 || s[:4] != "SAFE" {
		t.Errorf("unexpected check string %q", s)
	}
	u := Evaluate(units.Milliwatts(100), units.SquareMillimetres(100))
	if got := u.String(); got[:6] != "UNSAFE" {
		t.Errorf("unexpected check string %q", got)
	}
}
