package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestQKnownValues(t *testing.T) {
	tests := []struct {
		x, want, tol float64
	}{
		{0, 0.5, 1e-12},
		{1, 0.158655, 1e-6},
		{2, 0.022750, 1e-6},
		{3, 1.349898e-3, 1e-8},
		{4.753424, 1e-6, 2e-8}, // QInv(1e-6) ≈ 4.7534
		{-1, 0.841345, 1e-6},
	}
	for _, tt := range tests {
		if got := Q(tt.x); math.Abs(got-tt.want) > tt.tol {
			t.Errorf("Q(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestQInvRoundTrip(t *testing.T) {
	for _, p := range []float64{0.4, 0.1, 1e-2, 1e-4, 1e-6, 1e-9} {
		x := QInv(p)
		if got := Q(x); math.Abs(got-p) > 1e-9*p+1e-15 {
			t.Errorf("Q(QInv(%v)) = %v", p, got)
		}
	}
}

func TestQInvProperty(t *testing.T) {
	f := func(u float64) bool {
		p := math.Abs(math.Mod(u, 1))
		if p < 1e-12 || p > 1-1e-12 {
			return true
		}
		x := QInv(p)
		return math.Abs(Q(x)-p) < 1e-8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQInvPanicsOutsideDomain(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("QInv(%v) should panic", p)
				}
			}()
			QInv(p)
		}()
	}
}

func TestBisect(t *testing.T) {
	root, err := Bisect(func(x float64) float64 { return x*x - 2 }, 0, 2, 1e-12, 100)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(root-math.Sqrt2) > 1e-10 {
		t.Errorf("root = %v, want √2", root)
	}
	if _, err := Bisect(func(x float64) float64 { return x*x + 1 }, -1, 1, 1e-12, 100); err != ErrNoBracket {
		t.Errorf("expected ErrNoBracket, got %v", err)
	}
	// Endpoints that are exact roots.
	if r, err := Bisect(func(x float64) float64 { return x }, 0, 1, 1e-12, 100); err != nil || r != 0 {
		t.Errorf("root at a: got %v, %v", r, err)
	}
	if r, err := Bisect(func(x float64) float64 { return x - 1 }, 0, 1, 1e-12, 100); err != nil || r != 1 {
		t.Errorf("root at b: got %v, %v", r, err)
	}
}

func TestMinIntWhere(t *testing.T) {
	got, ok := MinIntWhere(1, 1000, func(n int) bool { return n >= 37 })
	if !ok || got != 37 {
		t.Errorf("MinIntWhere = %v, %v; want 37, true", got, ok)
	}
	if _, ok := MinIntWhere(1, 10, func(n int) bool { return false }); ok {
		t.Errorf("MinIntWhere should fail when nothing satisfies")
	}
	if got, ok := MinIntWhere(5, 5, func(n int) bool { return true }); !ok || got != 5 {
		t.Errorf("single-element range: got %v, %v", got, ok)
	}
	if _, ok := MinIntWhere(10, 5, func(n int) bool { return true }); ok {
		t.Errorf("inverted range should fail")
	}
}

func TestMaxIntWhere(t *testing.T) {
	got, ok := MaxIntWhere(1, 1000, func(n int) bool { return n <= 613 })
	if !ok || got != 613 {
		t.Errorf("MaxIntWhere = %v, %v; want 613, true", got, ok)
	}
	if _, ok := MaxIntWhere(1, 10, func(n int) bool { return false }); ok {
		t.Errorf("MaxIntWhere should fail when nothing satisfies")
	}
	if got, ok := MaxIntWhere(1, 10, func(n int) bool { return true }); !ok || got != 10 {
		t.Errorf("all-true range: got %v, %v", got, ok)
	}
}

func TestSearchDuality(t *testing.T) {
	// For a monotone threshold predicate, MinIntWhere(ok) - 1 ==
	// MaxIntWhere(!ok) whenever both exist.
	f := func(thr uint16) bool {
		th := int(thr%500) + 2
		lo, hi := 1, 1000
		minOK, ok1 := MinIntWhere(lo, hi, func(n int) bool { return n >= th })
		maxNot, ok2 := MaxIntWhere(lo, hi, func(n int) bool { return n < th })
		return ok1 && ok2 && minOK == th && maxNot == th-1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCeilDiv(t *testing.T) {
	tests := []struct{ a, b, want int }{
		{10, 3, 4}, {9, 3, 3}, {1, 5, 1}, {0, 5, 0}, {1024, 1024, 1},
	}
	for _, tt := range tests {
		if got := CeilDiv(tt.a, tt.b); got != tt.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("CeilDiv with zero divisor should panic")
			}
		}()
		CeilDiv(1, 0)
	}()
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp high = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp low = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp mid = %v", got)
	}
}

func TestStats(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := StdDev(xs); math.Abs(got-2) > 1e-12 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Mean(nil) != 0 || StdDev(nil) != 0 || StdDev([]float64{1}) != 0 {
		t.Errorf("degenerate stats should be 0")
	}
}

func TestLinspace(t *testing.T) {
	xs := Linspace(0, 1, 5)
	want := []float64{0, 0.25, 0.5, 0.75, 1}
	for i := range want {
		if math.Abs(xs[i]-want[i]) > 1e-12 {
			t.Errorf("Linspace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("Linspace with n<2 should panic")
			}
		}()
		Linspace(0, 1, 1)
	}()
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(100, 100.05, 1e-3) {
		t.Errorf("100 ≈ 100.05 at 1e-3")
	}
	if AlmostEqual(100, 101, 1e-3) {
		t.Errorf("100 !≈ 101 at 1e-3")
	}
	if !AlmostEqual(0, 1e-9, 1e-3) {
		t.Errorf("near-zero values should use absolute floor")
	}
}
