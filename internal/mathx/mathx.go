// Package mathx provides the numerical building blocks shared by the
// MINDFUL analysis packages: the Gaussian Q-function and its inverse,
// root finding, monotone integer search, and small statistics helpers.
package mathx

import (
	"errors"
	"math"
)

// Q returns the Gaussian tail probability Q(x) = P(N(0,1) > x).
func Q(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// QInv returns the x such that Q(x) = p for p in (0, 1).
// It panics outside that domain.
func QInv(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic("mathx: QInv domain is (0, 1)")
	}
	// Q is strictly decreasing; bracket and bisect. Q(-40)≈1, Q(40)≈0.
	x, err := Bisect(func(x float64) float64 { return Q(x) - p }, -40, 40, 1e-12, 200)
	if err != nil {
		// Unreachable for p in (0,1): the bracket always straddles the root.
		panic("mathx: QInv failed to converge: " + err.Error())
	}
	return x
}

// ErrNoBracket is returned by Bisect when f(a) and f(b) have the same sign.
var ErrNoBracket = errors.New("mathx: root not bracketed")

// Bisect finds a root of f in [a, b] by bisection. f(a) and f(b) must have
// opposite signs. tol is the absolute tolerance on x; maxIter bounds the
// number of halvings.
func Bisect(f func(float64) float64, a, b, tol float64, maxIter int) (float64, error) {
	fa, fb := f(a), f(b)
	if fa == 0 {
		return a, nil
	}
	if fb == 0 {
		return b, nil
	}
	if (fa > 0) == (fb > 0) {
		return 0, ErrNoBracket
	}
	for i := 0; i < maxIter; i++ {
		m := 0.5 * (a + b)
		fm := f(m)
		if fm == 0 || (b-a)/2 < tol {
			return m, nil
		}
		if (fm > 0) == (fa > 0) {
			a, fa = m, fm
		} else {
			b = m
		}
	}
	return 0.5 * (a + b), nil
}

// MinIntWhere returns the smallest n in [lo, hi] for which ok(n) is true,
// assuming ok is monotone (false ... false true ... true). The boolean
// result is false when no n in range satisfies ok.
func MinIntWhere(lo, hi int, ok func(int) bool) (int, bool) {
	if lo > hi {
		return 0, false
	}
	if !ok(hi) {
		return 0, false
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, true
}

// MaxIntWhere returns the largest n in [lo, hi] for which ok(n) is true,
// assuming ok is monotone (true ... true false ... false). The boolean
// result is false when no n in range satisfies ok.
func MaxIntWhere(lo, hi int, ok func(int) bool) (int, bool) {
	if lo > hi {
		return 0, false
	}
	if !ok(lo) {
		return 0, false
	}
	for lo < hi {
		mid := lo + (hi-lo+1)/2
		if ok(mid) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo, true
}

// CeilDiv returns ⌈a/b⌉ for positive b.
func CeilDiv(a, b int) int {
	if b <= 0 {
		panic("mathx: CeilDiv requires positive divisor")
	}
	return (a + b - 1) / b
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs, or 0 when
// len(xs) < 2.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)))
}

// Linspace returns n evenly spaced values from a to b inclusive.
// n must be at least 2.
func Linspace(a, b float64, n int) []float64 {
	if n < 2 {
		panic("mathx: Linspace requires n >= 2")
	}
	out := make([]float64, n)
	step := (b - a) / float64(n-1)
	for i := range out {
		out[i] = a + float64(i)*step
	}
	out[n-1] = b
	return out
}

// AlmostEqual reports whether a and b agree to within a relative tolerance
// rel (with an absolute floor of rel for values near zero).
func AlmostEqual(a, b, rel float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return diff <= rel*scale
}
