package fault

import (
	"bytes"
	"math"
	"testing"

	"mindful/internal/obs"
)

func TestProfileScale(t *testing.T) {
	p := DefaultProfile()
	zero := p.Scale(0)
	if zero.Enabled() {
		t.Fatalf("Scale(0) still enabled: %+v", zero)
	}
	one := p.Scale(1)
	if one != p {
		t.Fatalf("Scale(1) changed the profile:\n got %+v\nwant %+v", one, p)
	}
	big := p.Scale(1e6)
	if err := big.Validate(); err != nil {
		t.Fatalf("scaled profile invalid: %v", err)
	}
	if big.FrameLoss != 1 {
		t.Errorf("FrameLoss not clamped: %g", big.FrameLoss)
	}
}

func TestProfileValidate(t *testing.T) {
	p := DefaultProfile()
	if err := p.Validate(); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
	p.FrameLoss = 1.5
	if err := p.Validate(); err == nil {
		t.Error("out-of-range FrameLoss passed validation")
	}
	p = DefaultProfile()
	p.DeadFrac, p.StuckFrac, p.DriftFrac = 0.5, 0.4, 0.3
	if err := p.Validate(); err == nil {
		t.Error("fraction sum > 1 passed validation")
	}
}

// TestBurstLinkDeterminism: the same seed must replay the exact same
// corruption history, and the input buffer must never be modified.
func TestBurstLinkDeterminism(t *testing.T) {
	p := DefaultProfile()
	frame := bytes.Repeat([]byte{0xA5, 0x3C}, 32)
	orig := append([]byte(nil), frame...)

	run := func(seed int64) [][]byte {
		l, err := NewBurstLink(p, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out [][]byte
		for i := 0; i < 64; i++ {
			out = append(out, l.Transport(frame))
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if !bytes.Equal(a[i], b[i]) {
			t.Fatalf("frame %d diverged across replays", i)
		}
	}
	if !bytes.Equal(frame, orig) {
		t.Fatal("Transport mutated the caller's buffer")
	}
	c := run(8)
	same := true
	for i := range a {
		if !bytes.Equal(a[i], c[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical corruption")
	}
}

// TestBurstLinkBurstiness: in a two-state channel with a harsh bad state,
// bit errors must clump — the conditional error rate after an error far
// exceeds the marginal rate.
func TestBurstLinkBurstiness(t *testing.T) {
	p := Profile{BurstPGB: 0.01, BurstPBG: 0.1, BERGood: 0.0005, BERBad: 0.3}
	l, err := NewBurstLink(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	clean := make([]byte, 256)
	var errBits, total, pairs, afterErr int64
	prevErr := false
	for f := 0; f < 200; f++ {
		got := l.Transport(clean)
		for i := range got {
			for b := 7; b >= 0; b-- {
				e := got[i]>>b&1 != 0
				total++
				if e {
					errBits++
				}
				if prevErr {
					pairs++
					if e {
						afterErr++
					}
				}
				prevErr = e
			}
		}
	}
	marginal := float64(errBits) / float64(total)
	conditional := float64(afterErr) / float64(pairs)
	if marginal <= 0 {
		t.Fatal("no errors injected")
	}
	if conditional < 3*marginal {
		t.Errorf("errors not bursty: P(err|err) = %.4f vs marginal %.4f", conditional, marginal)
	}
}

func TestBurstLinkFrameLoss(t *testing.T) {
	p := Profile{FrameLoss: 0.5}
	l, err := NewBurstLink(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	var dropped int
	for i := 0; i < 400; i++ {
		if l.Transport([]byte{1, 2, 3}) == nil {
			dropped++
		}
	}
	if dropped < 150 || dropped > 250 {
		t.Errorf("dropped %d/400 frames at 50%% loss", dropped)
	}
	st := l.Stats()
	if st.Frames != 400 || st.DroppedFrames != int64(dropped) {
		t.Errorf("stats %+v disagree with observed %d/400", st, dropped)
	}
}

func TestBurstLinkObserver(t *testing.T) {
	p := Profile{FrameLoss: 1}
	l, err := NewBurstLink(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	l.SetObserver(o)
	l.Transport([]byte{0xFF})
	if v := o.Metrics.Counter("fault_link_frames_dropped_total").Value(); v != 1 {
		t.Errorf("dropped counter = %d, want 1", v)
	}
	l.SetObserver(nil)
	l.Transport([]byte{0xFF}) // must not panic detached
}

func TestElectrodeBank(t *testing.T) {
	p := Profile{DeadFrac: 0.25, StuckFrac: 0.25, DriftFrac: 0.25, DriftRate: 0.1}
	b, err := NewElectrodeBank(64, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if b.FaultyChannels() == 0 || b.FaultyChannels() == 64 {
		t.Fatalf("implausible faulty count %d/64", b.FaultyChannels())
	}
	samples := make([]float64, 64)
	for i := range samples {
		samples[i] = 1
	}
	b.Apply(samples)
	for c, v := range samples {
		switch b.State(c) {
		case ChannelDead:
			if v != 0 {
				t.Errorf("dead channel %d reads %g", c, v)
			}
		case ChannelStuck:
			if v < -1 || v > 1 {
				t.Errorf("stuck channel %d outside [-1,1]: %g", c, v)
			}
		case ChannelDrift:
			if math.Abs(v-0.9) > 1e-12 {
				t.Errorf("drift channel %d = %g after one tick, want 0.9", c, v)
			}
		case ChannelOK:
			if v != 1 {
				t.Errorf("healthy channel %d modified: %g", c, v)
			}
		}
	}
	// Drift compounds.
	for i := range samples {
		samples[i] = 1
	}
	b.Apply(samples)
	for c, v := range samples {
		if b.State(c) == ChannelDrift && math.Abs(v-0.81) > 1e-12 {
			t.Errorf("drift channel %d = %g after two ticks, want 0.81", c, v)
		}
	}
	// Determinism: same seed, same assignment.
	b2, err := NewElectrodeBank(64, p, 5)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 64; c++ {
		if b.State(c) != b2.State(c) {
			t.Fatalf("channel %d state diverged across same-seed banks", c)
		}
	}
	var nilBank *ElectrodeBank
	nilBank.Apply(samples) // nil bank is a no-op
	if nilBank.FaultyChannels() != 0 {
		t.Error("nil bank reports faulty channels")
	}
}

func TestBrownout(t *testing.T) {
	p := Profile{BrownoutProb: 0.2, BrownoutTicks: 3}
	b, err := NewBrownout(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	blanked := 0
	for i := 0; i < 1000; i++ {
		if b.Tick() {
			blanked++
		}
	}
	if int64(blanked) != b.BlankedTicks() {
		t.Errorf("observed %d blanked ticks, stats say %d", blanked, b.BlankedTicks())
	}
	if b.Events() == 0 {
		t.Fatal("no brownout events in 1000 ticks at 20% onset")
	}
	if avg := float64(b.BlankedTicks()) / float64(b.Events()); avg < 2.5 {
		t.Errorf("average blanking %g ticks, want ≈3 (window)", avg)
	}
	var nilB *Brownout
	if nilB.Tick() || nilB.Events() != 0 || nilB.BlankedTicks() != 0 {
		t.Error("nil brownout not a powered no-op")
	}
}

func TestNewInjector(t *testing.T) {
	inj, err := NewInjector(DefaultProfile(), 32, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if inj == nil || inj.Link == nil || inj.Electrodes == nil || inj.Brownout == nil {
		t.Fatal("enabled profile produced incomplete injector")
	}
	none, err := NewInjector(Profile{}, 32, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if none != nil {
		t.Fatal("disabled profile produced an injector")
	}
}
