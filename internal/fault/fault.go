// Package fault is the deterministic fault-injection framework for the
// implant → wearable pipeline: the failure modes a chronic implant
// actually meets — burst interference on the uplink, whole-frame loss,
// dying electrodes, transmitter brownouts — modeled as seeded, replayable
// processes. Every injector is driven by its own math/rand stream, so a
// pipeline that derives per-purpose seeds (fleet.DeriveSeed) reproduces
// the exact same fault history regardless of scheduling or worker count.
//
// The package deliberately depends only on obs: comm, implant, wearable
// and fleet all consume it without import cycles.
package fault

import (
	"fmt"
	"math/rand"

	"mindful/internal/detrand"
	"mindful/internal/obs"
)

// Profile describes a fault environment at unit intensity. The zero value
// injects nothing; Scale derives weaker or stronger environments for
// degradation sweeps.
type Profile struct {
	// Gilbert–Elliott burst channel: a two-state (good/bad) bit-level
	// process generalizing the i.i.d. LossyLink. Transitions are drawn
	// per transported bit.
	BurstPGB float64 // P(good → bad) per bit
	BurstPBG float64 // P(bad → good) per bit
	BERGood  float64 // bit error rate in the good state
	BERBad   float64 // bit error rate in the bad state

	// FrameLoss is the probability a transported frame vanishes outright
	// (deep fade, MAC collision) before any bit-level corruption.
	FrameLoss float64

	// Electrode faults, as fractions of the channel count. A channel is
	// assigned at most one fault kind, deterministically from the seed.
	DeadFrac  float64 // channel reads 0 (open circuit)
	StuckFrac float64 // channel reads a constant offset (shorted)
	DriftFrac float64 // channel gain decays multiplicatively
	DriftRate float64 // per-tick relative gain decay of drifting channels

	// Brownout: per-tick onset probability of a supply sag that blanks
	// the transmitter for BrownoutTicks consecutive ticks.
	BrownoutProb  float64
	BrownoutTicks int
}

// DefaultProfile returns a deliberately harsh unit-intensity environment:
// bursty uplink, occasional deep fades, a fifth of the array degraded and
// sporadic brownouts — the stress point fault sweeps scale down from.
func DefaultProfile() Profile {
	return Profile{
		BurstPGB:      0.002,
		BurstPBG:      0.05,
		BERGood:       0,
		BERBad:        0.08,
		FrameLoss:     0.15,
		DeadFrac:      0.08,
		StuckFrac:     0.04,
		DriftFrac:     0.08,
		DriftRate:     0.002,
		BrownoutProb:  0.01,
		BrownoutTicks: 4,
	}
}

// clamp01 bounds probabilities and fractions to [0, 1].
func clamp01(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}

// Scale returns the profile with every probability, fraction and rate
// multiplied by intensity (clamped to [0, 1]); window lengths are kept.
// Scale(0) disables all injection, Scale(1) is the profile itself.
func (p Profile) Scale(intensity float64) Profile {
	if intensity < 0 {
		intensity = 0
	}
	out := p
	out.BurstPGB = clamp01(p.BurstPGB * intensity)
	out.BERGood = clamp01(p.BERGood * intensity)
	out.BERBad = clamp01(p.BERBad * intensity)
	out.FrameLoss = clamp01(p.FrameLoss * intensity)
	out.DeadFrac = clamp01(p.DeadFrac * intensity)
	out.StuckFrac = clamp01(p.StuckFrac * intensity)
	out.DriftFrac = clamp01(p.DriftFrac * intensity)
	// Electrode fractions partition the array: renormalize when scaling
	// pushes their sum past 1 (the whole array faulted).
	if sum := out.DeadFrac + out.StuckFrac + out.DriftFrac; sum > 1 {
		out.DeadFrac /= sum
		out.StuckFrac /= sum
		out.DriftFrac /= sum
	}
	out.DriftRate = clamp01(p.DriftRate * intensity)
	out.BrownoutProb = clamp01(p.BrownoutProb * intensity)
	// BurstPBG is a recovery rate: scaling it down with intensity would
	// make bursts longer, which is the intent of "more intense".
	if intensity > 0 {
		out.BurstPBG = clamp01(p.BurstPBG / intensity)
	} else {
		out.BurstPBG = 1
	}
	return out
}

// Validate checks the profile's ranges.
func (p Profile) Validate() error {
	probs := []struct {
		name string
		v    float64
	}{
		{"BurstPGB", p.BurstPGB}, {"BurstPBG", p.BurstPBG},
		{"BERGood", p.BERGood}, {"BERBad", p.BERBad},
		{"FrameLoss", p.FrameLoss}, {"DeadFrac", p.DeadFrac},
		{"StuckFrac", p.StuckFrac}, {"DriftFrac", p.DriftFrac},
		{"DriftRate", p.DriftRate}, {"BrownoutProb", p.BrownoutProb},
	}
	for _, pr := range probs {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("fault: %s %g outside [0, 1]", pr.name, pr.v)
		}
	}
	if p.DeadFrac+p.StuckFrac+p.DriftFrac > 1 {
		return fmt.Errorf("fault: electrode fault fractions sum to %g > 1",
			p.DeadFrac+p.StuckFrac+p.DriftFrac)
	}
	if p.BrownoutTicks < 0 {
		return fmt.Errorf("fault: negative brownout window %d", p.BrownoutTicks)
	}
	return nil
}

// Enabled reports whether the profile injects anything at all.
func (p Profile) Enabled() bool {
	return p.BurstPGB > 0 || p.BERGood > 0 || p.FrameLoss > 0 ||
		p.DeadFrac > 0 || p.StuckFrac > 0 || p.DriftFrac > 0 ||
		p.BrownoutProb > 0
}

// LinkStats accounts a burst link's injections.
type LinkStats struct {
	// Frames and DroppedFrames count transports and whole-frame losses.
	Frames        int64
	DroppedFrames int64
	// BitFlips counts injected bit errors; BadBits the bits transported
	// while the channel sat in the bad state.
	BitFlips int64
	BadBits  int64
}

// BurstLink is a seeded Gilbert–Elliott channel: each transported bit
// first advances the good/bad state, then flips with the state's BER. A
// whole-frame loss draw precedes the bit process. The link never mutates
// the caller's buffer (see AppendTransport).
type BurstLink struct {
	p     Profile
	bad   bool
	rng   *detrand.Rand
	stats LinkStats

	frames, drops, flips *obs.Counter
}

// NewBurstLink returns a seeded burst link for the profile's channel
// parameters (electrode and brownout fields are ignored).
func NewBurstLink(p Profile, seed int64) (*BurstLink, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &BurstLink{p: p, rng: detrand.New(seed)}, nil
}

// BurstLinkState is a link's serializable mid-run state.
type BurstLinkState struct {
	RNG   detrand.State
	Bad   bool
	Stats LinkStats
}

// Snapshot captures the link's RNG position, Gilbert–Elliott state and
// accounting.
func (l *BurstLink) Snapshot() BurstLinkState {
	return BurstLinkState{RNG: l.rng.State(), Bad: l.bad, Stats: l.stats}
}

// RestoreBurstLink rebuilds a link mid-stream under the same profile.
func RestoreBurstLink(p Profile, st BurstLinkState) (*BurstLink, error) {
	l, err := NewBurstLink(p, st.RNG.Seed)
	if err != nil {
		return nil, err
	}
	l.rng = detrand.Restore(st.RNG)
	l.bad = st.Bad
	l.stats = st.Stats
	return l, nil
}

// SetObserver wires the link to an observability sink: transported and
// dropped frame counters plus injected bit flips. Pass nil to detach.
func (l *BurstLink) SetObserver(o *obs.Observer) {
	if o == nil {
		l.frames, l.drops, l.flips = nil, nil, nil
		return
	}
	m := o.Metrics
	l.frames = m.Counter("fault_link_frames_total")
	l.drops = m.Counter("fault_link_frames_dropped_total")
	l.flips = m.Counter("fault_link_bit_flips_total")
	m.Help("fault_link_frames_total", "Frames offered to the burst link.")
	m.Help("fault_link_frames_dropped_total", "Frames lost whole by the burst link.")
	m.Help("fault_link_bit_flips_total", "Bit errors injected by the burst link.")
}

// Transport returns a possibly-corrupted copy of buf, or nil when the
// frame is lost outright. buf itself is never modified.
func (l *BurstLink) Transport(buf []byte) []byte {
	return l.AppendTransport(nil, buf)
}

// AppendTransport appends the transported frame to dst and returns the
// extended slice, or nil when the frame is dropped whole. The input
// buffer is never aliased or modified, so pooled sender frames stay
// pristine; passing a recycled dst[:0] makes the path allocation-free.
func (l *BurstLink) AppendTransport(dst, buf []byte) []byte {
	l.stats.Frames++
	l.frames.Inc()
	if l.p.FrameLoss > 0 && l.rng.Float64() < l.p.FrameLoss {
		l.stats.DroppedFrames++
		l.drops.Inc()
		return nil
	}
	base := len(dst)
	dst = append(dst, buf...)
	if l.p.BurstPGB == 0 && l.p.BERGood == 0 && !l.bad {
		return dst // channel can never corrupt: skip the bit walk
	}
	for i := 0; i < len(buf)*8; i++ {
		// State transition first, then the error draw — one fixed draw
		// order so replays are exact.
		if l.bad {
			if l.rng.Float64() < l.p.BurstPBG {
				l.bad = false
			}
		} else if l.rng.Float64() < l.p.BurstPGB {
			l.bad = true
		}
		ber := l.p.BERGood
		if l.bad {
			ber = l.p.BERBad
			l.stats.BadBits++
		}
		if ber > 0 && l.rng.Float64() < ber {
			dst[base+i/8] ^= 1 << (7 - i%8)
			l.stats.BitFlips++
			l.flips.Inc()
		}
	}
	return dst
}

// Stats returns the link's accounting so far.
func (l *BurstLink) Stats() LinkStats { return l.stats }

// ChannelState classifies one electrode.
type ChannelState uint8

// Electrode states.
const (
	ChannelOK ChannelState = iota
	ChannelDead
	ChannelStuck
	ChannelDrift
)

// String names the state.
func (s ChannelState) String() string {
	switch s {
	case ChannelOK:
		return "ok"
	case ChannelDead:
		return "dead"
	case ChannelStuck:
		return "stuck"
	case ChannelDrift:
		return "drift"
	default:
		return "unknown"
	}
}

// ElectrodeBank applies per-channel front-end faults to raw sample
// vectors before digitization: dead channels read 0, stuck channels a
// constant offset, drifting channels decay multiplicatively each tick.
// Fault assignment is a pure function of (profile, channels, seed).
type ElectrodeBank struct {
	states []ChannelState
	stuck  []float64
	gain   []float64
	rate   float64
	faulty int
}

// NewElectrodeBank deterministically assigns fault kinds to channels by
// the profile's fractions. Stuck offsets are drawn in [-1, 1] (the
// neural substrate's normalized full scale).
func NewElectrodeBank(channels int, p Profile, seed int64) (*ElectrodeBank, error) {
	if channels < 1 {
		return nil, fmt.Errorf("fault: need at least one channel, got %d", channels)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	b := &ElectrodeBank{
		states: make([]ChannelState, channels),
		stuck:  make([]float64, channels),
		gain:   make([]float64, channels),
		rate:   p.DriftRate,
	}
	for c := 0; c < channels; c++ {
		b.gain[c] = 1
		// Two draws per channel regardless of outcome keep the
		// assignment stable under profile scaling.
		u, v := rng.Float64(), rng.Float64()
		switch {
		case u < p.DeadFrac:
			b.states[c] = ChannelDead
		case u < p.DeadFrac+p.StuckFrac:
			b.states[c] = ChannelStuck
			b.stuck[c] = 2*v - 1
		case u < p.DeadFrac+p.StuckFrac+p.DriftFrac:
			b.states[c] = ChannelDrift
		}
		if b.states[c] != ChannelOK {
			b.faulty++
		}
	}
	return b, nil
}

// Apply overwrites faulty channels in samples in place and advances the
// drift state by one tick. Channels beyond the bank's width are left
// untouched. Safe on a nil bank (no-op).
func (b *ElectrodeBank) Apply(samples []float64) {
	if b == nil {
		return
	}
	n := len(samples)
	if n > len(b.states) {
		n = len(b.states)
	}
	for c := 0; c < n; c++ {
		switch b.states[c] {
		case ChannelDead:
			samples[c] = 0
		case ChannelStuck:
			samples[c] = b.stuck[c]
		case ChannelDrift:
			b.gain[c] *= 1 - b.rate
			samples[c] *= b.gain[c]
		}
	}
}

// Gains returns a copy of the per-channel drift gains — the bank's only
// mutable state (assignment is a pure function of profile, channels and
// seed).
func (b *ElectrodeBank) Gains() []float64 {
	if b == nil {
		return nil
	}
	return append([]float64(nil), b.gain...)
}

// RestoreGains overwrites the per-channel drift gains of a bank rebuilt
// from the same (profile, channels, seed) triple.
func (b *ElectrodeBank) RestoreGains(gains []float64) error {
	if b == nil {
		if len(gains) == 0 {
			return nil
		}
		return fmt.Errorf("fault: %d gains for a nil electrode bank", len(gains))
	}
	if len(gains) != len(b.gain) {
		return fmt.Errorf("fault: %d gains for a %d-channel bank", len(gains), len(b.gain))
	}
	copy(b.gain, gains)
	return nil
}

// FaultyChannels returns the number of channels with any fault assigned.
func (b *ElectrodeBank) FaultyChannels() int {
	if b == nil {
		return 0
	}
	return b.faulty
}

// State returns one channel's fault classification.
func (b *ElectrodeBank) State(channel int) ChannelState {
	if b == nil || channel < 0 || channel >= len(b.states) {
		return ChannelOK
	}
	return b.states[channel]
}

// Brownout models transient supply sags that blank the transmitter: each
// tick outside a sag starts one with probability BrownoutProb, blanking
// that tick and the following BrownoutTicks−1.
type Brownout struct {
	prob      float64
	window    int
	remaining int
	rng       *detrand.Rand
	events    int64
	blanked   int64
}

// NewBrownout returns a seeded brownout process for the profile's
// brownout parameters.
func NewBrownout(p Profile, seed int64) (*Brownout, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	window := p.BrownoutTicks
	if window < 1 {
		window = 1
	}
	return &Brownout{prob: p.BrownoutProb, window: window, rng: detrand.New(seed)}, nil
}

// BrownoutState is a brownout process's serializable mid-run state.
type BrownoutState struct {
	RNG       detrand.State
	Remaining int
	Events    int64
	Blanked   int64
}

// Snapshot captures the process's RNG position, open sag window and
// accounting.
func (b *Brownout) Snapshot() BrownoutState {
	return BrownoutState{RNG: b.rng.State(), Remaining: b.remaining, Events: b.events, Blanked: b.blanked}
}

// RestoreBrownout rebuilds a brownout process mid-stream under the same
// profile.
func RestoreBrownout(p Profile, st BrownoutState) (*Brownout, error) {
	b, err := NewBrownout(p, st.RNG.Seed)
	if err != nil {
		return nil, err
	}
	if st.Remaining < 0 || st.Remaining >= b.window {
		return nil, fmt.Errorf("fault: brownout remaining %d outside window %d", st.Remaining, b.window)
	}
	b.rng = detrand.Restore(st.RNG)
	b.remaining = st.Remaining
	b.events = st.Events
	b.blanked = st.Blanked
	return b, nil
}

// Tick advances one tick and reports whether the transmitter is blanked.
// Safe on a nil brownout (always powered).
func (b *Brownout) Tick() bool {
	if b == nil {
		return false
	}
	if b.remaining > 0 {
		b.remaining--
		b.blanked++
		return true
	}
	if b.prob > 0 && b.rng.Float64() < b.prob {
		b.events++
		b.blanked++
		b.remaining = b.window - 1
		return true
	}
	return false
}

// Events returns the number of brownout onsets so far.
func (b *Brownout) Events() int64 {
	if b == nil {
		return 0
	}
	return b.events
}

// BlankedTicks returns the total ticks spent blanked.
func (b *Brownout) BlankedTicks() int64 {
	if b == nil {
		return 0
	}
	return b.blanked
}

// Injector bundles one pipeline's fault processes. Nil fields disable
// the corresponding injection; a nil *Injector disables everything.
type Injector struct {
	Link       *BurstLink
	Electrodes *ElectrodeBank
	Brownout   *Brownout
}

// NewInjector builds the full set of processes for one pipeline from
// independent seeds (one per process, e.g. via fleet.DeriveSeed). A
// profile with nothing enabled returns a nil injector.
func NewInjector(p Profile, channels int, linkSeed, electrodeSeed, brownoutSeed int64) (*Injector, error) {
	if !p.Enabled() {
		return nil, nil
	}
	link, err := NewBurstLink(p, linkSeed)
	if err != nil {
		return nil, err
	}
	bank, err := NewElectrodeBank(channels, p, electrodeSeed)
	if err != nil {
		return nil, err
	}
	bo, err := NewBrownout(p, brownoutSeed)
	if err != nil {
		return nil, err
	}
	return &Injector{Link: link, Electrodes: bank, Brownout: bo}, nil
}
