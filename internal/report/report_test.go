package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "SoC", "Power")
	tb.AddRow("BISC", "38.9 mW")
	tb.AddRow("Neuralink")
	s := tb.String()
	if !strings.Contains(s, "Demo") || !strings.Contains(s, "BISC") {
		t.Errorf("table missing content:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Errorf("lines = %d:\n%s", len(lines), s)
	}
	// Columns aligned: both data rows start "BISC " / "Neuralink".
	if !strings.HasPrefix(lines[3], "BISC ") {
		t.Errorf("row 1 misaligned: %q", lines[3])
	}
	// Short row padded without panic.
	if !strings.HasPrefix(lines[4], "Neuralink") {
		t.Errorf("row 2 wrong: %q", lines[4])
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow("1", `va"l,ue`)
	csv := tb.CSV()
	want := "a,b\n1,\"va\"\"l,ue\"\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestChartASCII(t *testing.T) {
	c := Chart{
		Title:  "Power vs channels",
		XLabel: "channels",
		YLabel: "mW",
		Series: []Series{
			{Name: "SoC 1", X: []float64{1024, 2048, 4096}, Y: []float64{10, 20, 40}},
			{Name: "SoC 2", X: []float64{1024, 2048, 4096}, Y: []float64{5, 25, 35}},
		},
	}
	s := c.ASCII(40, 10)
	if !strings.Contains(s, "Power vs channels") {
		t.Errorf("missing title")
	}
	if !strings.Contains(s, "*") || !strings.Contains(s, "o") {
		t.Errorf("missing markers:\n%s", s)
	}
	if !strings.Contains(s, "SoC 1") || !strings.Contains(s, "SoC 2") {
		t.Errorf("missing legend")
	}
	if !strings.Contains(s, "channels: 1024 .. 4096") {
		t.Errorf("missing x range:\n%s", s)
	}
}

func TestChartASCIILogY(t *testing.T) {
	c := Chart{
		LogY: true,
		Series: []Series{
			{Name: "p", X: []float64{1, 2, 3}, Y: []float64{0.1, 10, 1000}},
		},
	}
	s := c.ASCII(30, 8)
	if !strings.Contains(s, "0.1 .. 1000") {
		t.Errorf("log axis labels missing:\n%s", s)
	}
	// Non-positive values skipped without panic.
	c.Series[0].Y[0] = -1
	_ = c.ASCII(30, 8)
}

func TestChartEmpty(t *testing.T) {
	c := Chart{Title: "nothing"}
	if !strings.Contains(c.ASCII(30, 8), "(no data)") {
		t.Errorf("empty chart should say so")
	}
	svg := c.SVG(200, 100)
	if !strings.Contains(svg, "<svg") || !strings.Contains(svg, "</svg>") {
		t.Errorf("empty SVG malformed")
	}
}

func TestChartSVG(t *testing.T) {
	c := Chart{
		Title:  "t<itle>",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{{Name: "s&1", X: []float64{0, 1, 2}, Y: []float64{0, 1, 4}}},
	}
	svg := c.SVG(300, 200)
	for _, want := range []string{"<svg", "polyline", "circle", "t&lt;itle&gt;", "s&amp;1", "</svg>"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	if strings.Contains(svg, "<itle>") {
		t.Errorf("SVG not escaped")
	}
}

func TestChartSizeClamping(t *testing.T) {
	c := Chart{Series: []Series{{Name: "s", X: []float64{0, 1}, Y: []float64{0, 1}}}}
	if s := c.ASCII(1, 1); len(s) == 0 {
		t.Errorf("tiny ASCII chart empty")
	}
	if s := c.SVG(1, 1); !strings.Contains(s, "<svg") {
		t.Errorf("tiny SVG chart broken")
	}
}

func TestFlatSeries(t *testing.T) {
	// Constant y must not divide by zero.
	c := Chart{Series: []Series{{Name: "flat", X: []float64{0, 1, 2}, Y: []float64{5, 5, 5}}}}
	if s := c.ASCII(30, 8); !strings.Contains(s, "flat") {
		t.Errorf("flat series not rendered")
	}
	// Constant x is degenerate → no data.
	c2 := Chart{Series: []Series{{Name: "v", X: []float64{1, 1}, Y: []float64{0, 2}}}}
	if s := c2.ASCII(30, 8); !strings.Contains(s, "(no data)") {
		t.Errorf("vertical series should be degenerate")
	}
}

func TestBarChart(t *testing.T) {
	s := BarChart("Budget", " mW", []Bar{{"BISC", 57.6}, {"Neuralink", 8}}, 20)
	if !strings.Contains(s, "Budget") || !strings.Contains(s, "█") {
		t.Errorf("bar chart malformed:\n%s", s)
	}
	if !strings.Contains(s, "57.6 mW") {
		t.Errorf("missing value:\n%s", s)
	}
	// Zero values render without panic.
	if z := BarChart("", "", []Bar{{"x", 0}}, 5); !strings.Contains(z, "x") {
		t.Errorf("zero bar missing")
	}
}
