// Package report renders experiment results as aligned text tables, CSV,
// ASCII charts, and standalone SVG files — the stdlib-only replacement for
// the original artifact's matplotlib output.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = displayWidth(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && displayWidth(c) > widths[i] {
				widths[i] = displayWidth(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", widths[i]-displayWidth(c)))
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// displayWidth counts runes (a rough terminal width; the tables use only
// narrow glyphs).
func displayWidth(s string) int { return len([]rune(s)) }

// CSV renders the table as comma-separated values with a header line.
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Series is one named line of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Chart is a collection of series with axis labels.
type Chart struct {
	Title, XLabel, YLabel string
	Series                []Series
	// LogY plots log10(y) instead of y (positive values only).
	LogY bool
}

var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

func (c *Chart) bounds() (xmin, xmax, ymin, ymax float64, ok bool) {
	xmin, ymin = math.Inf(1), math.Inf(1)
	xmax, ymax = math.Inf(-1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			if s.X[i] < xmin {
				xmin = s.X[i]
			}
			if s.X[i] > xmax {
				xmax = s.X[i]
			}
			if y < ymin {
				ymin = y
			}
			if y > ymax {
				ymax = y
			}
		}
	}
	if math.IsInf(xmin, 1) || xmin == xmax {
		return 0, 0, 0, 0, false
	}
	if ymin == ymax {
		ymin, ymax = ymin-1, ymax+1
	}
	return xmin, xmax, ymin, ymax, true
}

// ASCII renders the chart on a character grid of the given size.
func (c *Chart) ASCII(width, height int) string {
	if width < 20 {
		width = 20
	}
	if height < 8 {
		height = 8
	}
	xmin, xmax, ymin, ymax, ok := c.bounds()
	if !ok {
		return c.Title + "\n(no data)\n"
	}
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			y := s.Y[i]
			if c.LogY {
				if y <= 0 {
					continue
				}
				y = math.Log10(y)
			}
			col := int((s.X[i] - xmin) / (xmax - xmin) * float64(width-1))
			row := height - 1 - int((y-ymin)/(ymax-ymin)*float64(height-1))
			if col >= 0 && col < width && row >= 0 && row < height {
				grid[row][col] = m
			}
		}
	}
	var b strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&b, "%s\n", c.Title)
	}
	yl, yh := ymin, ymax
	if c.LogY {
		yl, yh = math.Pow(10, ymin), math.Pow(10, ymax)
	}
	fmt.Fprintf(&b, "%s: %.4g .. %.4g\n", orDefault(c.YLabel, "y"), yl, yh)
	for _, row := range grid {
		b.WriteByte('|')
		b.Write(row)
		b.WriteByte('\n')
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", width))
	b.WriteByte('\n')
	fmt.Fprintf(&b, "%s: %.4g .. %.4g\n", orDefault(c.XLabel, "x"), xmin, xmax)
	for si, s := range c.Series {
		fmt.Fprintf(&b, "  %c %s\n", markers[si%len(markers)], s.Name)
	}
	return b.String()
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

// SVG renders the chart as a standalone SVG document with axes, polylines
// and a legend.
func (c *Chart) SVG(width, height int) string {
	if width < 100 {
		width = 100
	}
	if height < 80 {
		height = 80
	}
	xmin, xmax, ymin, ymax, ok := c.bounds()
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n", width, height, width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	marginL, marginR, marginT, marginB := 60, 20, 30, 40
	plotW := width - marginL - marginR
	plotH := height - marginT - marginB
	fmt.Fprintf(&b, `<text x="%d" y="18" font-size="13" font-family="sans-serif">%s</text>`+"\n", marginL, xmlEscape(c.Title))
	fmt.Fprintf(&b, `<rect x="%d" y="%d" width="%d" height="%d" fill="none" stroke="black"/>`+"\n", marginL, marginT, plotW, plotH)
	if ok {
		colors := []string{"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b", "#e377c2", "#7f7f7f"}
		toPx := func(x, y float64) (float64, float64) {
			if c.LogY {
				y = math.Log10(y)
			}
			px := float64(marginL) + (x-xmin)/(xmax-xmin)*float64(plotW)
			py := float64(marginT+plotH) - (y-ymin)/(ymax-ymin)*float64(plotH)
			return px, py
		}
		for si, s := range c.Series {
			col := colors[si%len(colors)]
			var pts []string
			for i := range s.X {
				if c.LogY && s.Y[i] <= 0 {
					continue
				}
				px, py := toPx(s.X[i], s.Y[i])
				pts = append(pts, fmt.Sprintf("%.1f,%.1f", px, py))
			}
			if len(pts) > 1 {
				fmt.Fprintf(&b, `<polyline fill="none" stroke="%s" stroke-width="1.5" points="%s"/>`+"\n", col, strings.Join(pts, " "))
			}
			for _, p := range pts {
				xy := strings.Split(p, ",")
				fmt.Fprintf(&b, `<circle cx="%s" cy="%s" r="2.5" fill="%s"/>`+"\n", xy[0], xy[1], col)
			}
			fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" font-family="sans-serif" fill="%s">%s</text>`+"\n",
				width-marginR-110, marginT+14*(si+1), col, xmlEscape(s.Name))
		}
		// Axis extremes.
		yl, yh := ymin, ymax
		if c.LogY {
			yl, yh = math.Pow(10, ymin), math.Pow(10, ymax)
		}
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" font-family="sans-serif" text-anchor="end">%.4g</text>`+"\n", marginL-4, marginT+plotH, yl)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" font-family="sans-serif" text-anchor="end">%.4g</text>`+"\n", marginL-4, marginT+10, yh)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" font-family="sans-serif">%.4g</text>`+"\n", marginL, height-marginB+14, xmin)
		fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="10" font-family="sans-serif" text-anchor="end">%.4g</text>`+"\n", marginL+plotW, height-marginB+14, xmax)
	}
	fmt.Fprintf(&b, `<text x="%d" y="%d" font-size="11" font-family="sans-serif" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-8, xmlEscape(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%d" font-size="11" font-family="sans-serif" transform="rotate(-90 14 %d)" text-anchor="middle">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, xmlEscape(c.YLabel))
	b.WriteString("</svg>\n")
	return b.String()
}

func xmlEscape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}

// Bar is one labelled value for bar rendering.
type Bar struct {
	Label string
	Value float64
}

// BarChart renders horizontal ASCII bars scaled to the maximum value.
func BarChart(title string, unit string, bars []Bar, width int) string {
	if width < 10 {
		width = 10
	}
	max := 0.0
	labelW := 0
	for _, b := range bars {
		if b.Value > max {
			max = b.Value
		}
		if l := displayWidth(b.Label); l > labelW {
			labelW = l
		}
	}
	var sb strings.Builder
	if title != "" {
		sb.WriteString(title)
		sb.WriteByte('\n')
	}
	for _, b := range bars {
		n := 0
		if max > 0 {
			n = int(b.Value / max * float64(width))
		}
		fmt.Fprintf(&sb, "%-*s |%s%s %.4g%s\n", labelW, b.Label,
			strings.Repeat("█", n), strings.Repeat(" ", width-n), b.Value, unit)
	}
	return sb.String()
}
