package cluster

import (
	"fmt"
	"sort"
)

// The placement function is a consistent-hash ring with virtual nodes:
// every shard owns VirtualNodes points on a 64-bit circle, and a
// session key belongs to the first point clockwise from its own hash.
// Two properties matter and both are pinned by property tests:
//
//   - Uniformity: with enough virtual nodes (the default 128) the
//     max/min shard load over many keys stays within a small factor.
//   - Minimal disruption: removing one of N shards remaps only the keys
//     that shard owned (~1/N of them); every other key keeps its owner.
//     Likewise a join steals only the keys it now owns.
//
// Hashing is FNV-1a with an avalanche finalizer — deterministic across
// processes and platforms, so every front tier computes the same
// placement from the same member list.

// DefaultVirtualNodes is the per-shard point count. 128 keeps the
// max/min load ratio under ~1.35 for realistic shard counts while the
// ring stays small enough to rebuild on every membership change.
const DefaultVirtualNodes = 128

// ringHash hashes a string onto the circle: 64-bit FNV-1a (inlined to
// avoid allocating a hasher per lookup) followed by a splitmix64-style
// avalanche. The finalizer matters: raw FNV-1a of near-identical
// strings ("shard-0#1", "shard-0#2", ...) leaves the high bits
// correlated, clumping a shard's virtual nodes together and ruining
// uniformity (a measured 4x max/min load ratio at 3 shards without it).
func ringHash(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// ringPoint is one virtual node on the circle.
type ringPoint struct {
	hash  uint64
	shard string
}

// Ring is an immutable consistent-hash ring over a shard set. Build
// one with NewRing; membership changes build a new ring (they are rare
// — joins, leaves, failures — while lookups are per-session).
type Ring struct {
	points []ringPoint
	shards []string // sorted member list
}

// NewRing builds a ring over the shard IDs with vnodes virtual nodes
// per shard (0 = DefaultVirtualNodes). Duplicate IDs are an error —
// they would silently double a shard's share.
func NewRing(shardIDs []string, vnodes int) (*Ring, error) {
	if vnodes == 0 {
		vnodes = DefaultVirtualNodes
	}
	if vnodes < 1 {
		return nil, fmt.Errorf("cluster: virtual nodes must be positive, got %d", vnodes)
	}
	seen := make(map[string]bool, len(shardIDs))
	r := &Ring{
		points: make([]ringPoint, 0, len(shardIDs)*vnodes),
		shards: make([]string, 0, len(shardIDs)),
	}
	for _, id := range shardIDs {
		if id == "" {
			return nil, fmt.Errorf("cluster: empty shard ID")
		}
		if seen[id] {
			return nil, fmt.Errorf("cluster: duplicate shard ID %q", id)
		}
		seen[id] = true
		r.shards = append(r.shards, id)
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  ringHash(fmt.Sprintf("%s#%d", id, v)),
				shard: id,
			})
		}
	}
	sort.Strings(r.shards)
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.hash != b.hash {
			return a.hash < b.hash
		}
		// Hash ties (astronomically rare, but possible on a forged
		// member list) break by shard ID so placement stays deterministic
		// regardless of insertion order.
		return a.shard < b.shard
	})
	return r, nil
}

// Owner returns the shard a session key belongs to ("" on an empty
// ring).
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return r.points[i].shard
}

// Shards returns the sorted member list.
func (r *Ring) Shards() []string {
	return append([]string(nil), r.shards...)
}

// Size returns the member count.
func (r *Ring) Size() int { return len(r.shards) }

// Has reports membership.
func (r *Ring) Has(id string) bool {
	i := sort.SearchStrings(r.shards, id)
	return i < len(r.shards) && r.shards[i] == id
}
