package cluster

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"mindful/internal/serve"
)

// TestMigrationDeterminismWall is the wall the tentpole stands on: for
// every decoder kind, a session live-migrated mid-run (at roughly tick
// K of 2K) finishes with frame AND decode digests identical to an
// uninterrupted run. Migration must be invisible to the simulation —
// not approximately, bit-for-bit.
func TestMigrationDeterminismWall(t *testing.T) {
	for _, kind := range []string{"none", "kalman", "wiener", "dnn"} {
		kind := kind
		t.Run(kind, func(t *testing.T) {
			t.Parallel()
			c := startCluster(t, 2, serve.Config{TickInterval: time.Millisecond})
			cfg := testSessionConfig()
			cfg.Ticks = 40
			if kind != "none" {
				cfg.Decoder = kind
			}
			wantFrame, wantDecode := digests(t, cfg)

			info, err := c.CreateSession(serve.CreateRequest{SessionConfig: cfg})
			if err != nil {
				t.Fatal(err)
			}
			mid := waitKeyTick(t, c, info.Key, cfg.Ticks/2)
			if mid.State == serve.StateDone {
				t.Fatalf("session finished (tick %d) before the migration window", mid.Tick)
			}

			// Move it to whichever shard it is not on.
			target := "shard-0"
			if mid.Shard == target {
				target = "shard-1"
			}
			if err := c.Migrate(info.Key, target); err != nil {
				t.Fatal(err)
			}
			moved, err := c.SessionInfo(info.Key)
			if err != nil {
				t.Fatal(err)
			}
			if moved.Shard != target {
				t.Fatalf("session on %s after migrate, want %s", moved.Shard, target)
			}

			done := waitKeyState(t, c, info.Key, serve.StateDone)
			if done.Digest != wantFrame {
				t.Fatalf("%s: migrated frame digest %s, want uninterrupted %s", kind, done.Digest, wantFrame)
			}
			if kind != "none" && done.DecodeDigest != wantDecode {
				t.Fatalf("%s: migrated decode digest %s, want uninterrupted %s", kind, done.DecodeDigest, wantDecode)
			}
		})
	}
}

// TestMigrateToSameShardIsNoop: migrating a session onto the shard it
// already occupies must not pause, copy, or perturb it.
func TestMigrateToSameShardIsNoop(t *testing.T) {
	c := startCluster(t, 2, serve.Config{})
	info, err := c.CreateSession(serve.CreateRequest{SessionConfig: testSessionConfig(), StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Migrate(info.Key, info.Shard); err != nil {
		t.Fatal(err)
	}
	after, err := c.SessionInfo(info.Key)
	if err != nil {
		t.Fatal(err)
	}
	if after.Shard != info.Shard || after.ID != info.ID {
		t.Fatalf("no-op migrate changed placement %s/%s -> %s/%s",
			info.Shard, info.ID, after.Shard, after.ID)
	}
}

// TestMigrateErrors: unknown keys and unknown targets are rejected
// without touching any session.
func TestMigrateErrors(t *testing.T) {
	c := startCluster(t, 2, serve.Config{})
	if err := c.Migrate("c999999", "shard-0"); err == nil {
		t.Fatal("migrating an unknown key succeeded")
	}
	info, err := c.CreateSession(serve.CreateRequest{SessionConfig: testSessionConfig(), StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Migrate(info.Key, "shard-none"); err == nil {
		t.Fatal("migrating to an unknown shard succeeded")
	}
	after, err := c.SessionInfo(info.Key)
	if err != nil {
		t.Fatal(err)
	}
	if after.State != serve.StatePaused || after.Shard != info.Shard {
		t.Fatalf("failed migrate disturbed the session: %+v", after)
	}
}

// TestConcurrentMigrations: many sessions migrating at once (the
// rebalance shape, but driven from racing goroutines) all land with
// uninterrupted digests. Run under -race this is the cluster's
// coordinator-concurrency wall.
func TestConcurrentMigrations(t *testing.T) {
	const sessions = 8
	c := startCluster(t, 3, serve.Config{TickInterval: time.Millisecond})
	cfg := testSessionConfig()
	cfg.Ticks = 60
	wantFrame, _ := digests(t, cfg)

	keys := make([]string, sessions)
	for i := range keys {
		info, err := c.CreateSession(serve.CreateRequest{SessionConfig: cfg})
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = info.Key
	}
	for _, key := range keys {
		waitKeyTick(t, c, key, 5)
	}

	var wg sync.WaitGroup
	errs := make([]error, sessions)
	for i, key := range keys {
		i, key := i, key
		wg.Add(1)
		go func() {
			defer wg.Done()
			info, err := c.SessionInfo(key)
			if err != nil {
				errs[i] = err
				return
			}
			target := fmt.Sprintf("shard-%d", (i+1)%3)
			if target == info.Shard {
				target = fmt.Sprintf("shard-%d", (i+2)%3)
			}
			errs[i] = c.Migrate(key, target)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("migration %d: %v", i, err)
		}
	}
	for _, key := range keys {
		done := waitKeyState(t, c, key, serve.StateDone)
		if done.Digest != wantFrame {
			t.Fatalf("session %s digest %s after concurrent migration, want %s", key, done.Digest, wantFrame)
		}
	}
}

// TestSubscriberFollowsMigration: a subscriber attached through the
// front tier keeps receiving after its session moves shards by
// re-dialing the front tier — the client-side half of the blackout
// protocol. The migration is driven paused (pause → migrate → re-attach
// → resume), the shape where gapless delivery is actually guaranteed:
// the old shard's stream flushes and closes at the pause tick, and the
// target publishes from the next tick on. A migration of a running
// session instead trades frames published during the subscriber's
// reconnect window for zero coordination — live streams are
// deliberately at-most-once.
func TestSubscriberFollowsMigration(t *testing.T) {
	c := startCluster(t, 2, serve.Config{TickInterval: time.Millisecond})
	cfg := testSessionConfig()
	cfg.Ticks = 200
	info, err := c.CreateSession(serve.CreateRequest{SessionConfig: cfg})
	if err != nil {
		t.Fatal(err)
	}

	conn, br, err := serve.SubscribeFollow(c.StreamAddr(), info.Key, "", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var lastOld uint64
	if rec, err := serve.ReadRecord(br); err != nil {
		t.Fatal(err)
	} else {
		lastOld = rec.Tick
	}

	if err := c.PauseSession(info.Key); err != nil {
		t.Fatal(err)
	}
	target := "shard-0"
	if info.Shard == target {
		target = "shard-1"
	}
	if err := c.Migrate(info.Key, target); err != nil {
		t.Fatal(err)
	}

	// Deleting the source copy flushed and closed the old stream; drain
	// it, remembering the last tick it delivered.
	for {
		rec, err := serve.ReadRecord(br)
		if err != nil {
			break
		}
		lastOld = rec.Tick
	}
	conn.Close()

	// Reconnect through the front tier — the key now resolves to the
	// target shard, where the session sits paused — then resume.
	conn2, br2, err := serve.SubscribeFollow(c.StreamAddr(), info.Key, "", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := c.ResumeSession(info.Key); err != nil {
		t.Fatal(err)
	}
	var firstNew, lastNew uint64
	first := true
	for {
		rec, err := serve.ReadRecord(br2)
		if err != nil {
			break
		}
		if first {
			firstNew, first = rec.Tick, false
		}
		lastNew = rec.Tick
	}
	if first {
		t.Fatal("no records after the migration reconnect")
	}
	if firstNew != lastOld+1 {
		t.Fatalf("stream not gapless across migration: old ended at tick %d, new began at %d", lastOld, firstNew)
	}
	// Record ticks are 0-based: the session's last record is Ticks-1.
	if lastNew != uint64(cfg.Ticks-1) {
		t.Fatalf("stream ended at tick %d, want the session's final tick %d", lastNew, cfg.Ticks-1)
	}
}
