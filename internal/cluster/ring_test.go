package cluster

import (
	"fmt"
	"testing"
)

// ringKeys generates n session-ID-shaped keys (the same c%06d shape
// the front tier mints).
func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("c%06d", i+1)
	}
	return keys
}

func shardIDs(n int) []string {
	ids := make([]string, n)
	for i := range ids {
		ids[i] = fmt.Sprintf("shard-%d", i)
	}
	return ids
}

// TestRingUniformity: with the default virtual-node count, 10k session
// keys spread across the shards with a bounded max/min load ratio —
// the property that makes consistent hashing usable as a load
// balancer at all.
func TestRingUniformity(t *testing.T) {
	for _, shards := range []int{2, 3, 5, 8} {
		r, err := NewRing(shardIDs(shards), 0)
		if err != nil {
			t.Fatal(err)
		}
		counts := make(map[string]int, shards)
		for _, key := range ringKeys(10000) {
			counts[r.Owner(key)]++
		}
		if len(counts) != shards {
			t.Fatalf("%d shards: only %d received keys", shards, len(counts))
		}
		min, max := 10000, 0
		for _, n := range counts {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		// 128 vnodes keeps the spread well inside 2x for small shard
		// counts; the bound has head-room so the test pins the property,
		// not the exact hash layout.
		if ratio := float64(max) / float64(min); ratio > 2.0 {
			t.Fatalf("%d shards: load ratio %.2f (max %d, min %d), want <= 2.0",
				shards, ratio, max, min)
		}
	}
}

// TestRingMinimalDisruptionOnLeave: removing one of N shards remaps
// ONLY the keys that shard owned — every other key keeps its owner —
// and the remapped share is about 1/N.
func TestRingMinimalDisruptionOnLeave(t *testing.T) {
	const shards = 5
	ids := shardIDs(shards)
	before, err := NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	removed := ids[2]
	after, err := NewRing(append(append([]string{}, ids[:2]...), ids[3:]...), 0)
	if err != nil {
		t.Fatal(err)
	}

	keys := ringKeys(10000)
	remapped := 0
	for _, key := range keys {
		was, is := before.Owner(key), after.Owner(key)
		if was == is {
			continue
		}
		if was != removed {
			t.Fatalf("key %s moved %s->%s though %s left — disruption is not minimal",
				key, was, is, removed)
		}
		remapped++
	}
	// The removed shard owned ~1/5 of the keys; allow a wide band
	// around it.
	if remapped < 10000/shards/2 || remapped > 10000*2/shards {
		t.Fatalf("%d of 10000 keys remapped, want about %d", remapped, 10000/shards)
	}
}

// TestRingMinimalDisruptionOnJoin: a joining shard steals only the keys
// it now owns; no key moves between two surviving shards.
func TestRingMinimalDisruptionOnJoin(t *testing.T) {
	ids := shardIDs(4)
	before, err := NewRing(ids, 0)
	if err != nil {
		t.Fatal(err)
	}
	joiner := "shard-new"
	after, err := NewRing(append(append([]string{}, ids...), joiner), 0)
	if err != nil {
		t.Fatal(err)
	}
	stolen := 0
	for _, key := range ringKeys(10000) {
		was, is := before.Owner(key), after.Owner(key)
		if was == is {
			continue
		}
		if is != joiner {
			t.Fatalf("key %s moved %s->%s though only %s joined", key, was, is, joiner)
		}
		stolen++
	}
	if stolen == 0 {
		t.Fatal("joiner stole no keys")
	}
}

// TestRingDeterministic: placement is a pure function of the member
// list — two rings built from the same members (any insertion order)
// agree on every key. Front tiers must not need to gossip placements.
func TestRingDeterministic(t *testing.T) {
	a, err := NewRing([]string{"x", "y", "z"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing([]string{"z", "x", "y"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range ringKeys(1000) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %s: %s vs %s from the same member set", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingErrors: invalid member lists are rejected, empty rings answer
// "" rather than panic.
func TestRingErrors(t *testing.T) {
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate shard ID accepted")
	}
	if _, err := NewRing([]string{""}, 0); err == nil {
		t.Fatal("empty shard ID accepted")
	}
	if _, err := NewRing([]string{"a"}, -1); err == nil {
		t.Fatal("negative virtual nodes accepted")
	}
	empty, err := NewRing(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if owner := empty.Owner("k"); owner != "" {
		t.Fatalf("empty ring owner = %q, want \"\"", owner)
	}
	if empty.Size() != 0 || empty.Has("a") {
		t.Fatal("empty ring reports members")
	}
}

// TestRingMembership: Shards is sorted and Has agrees with it.
func TestRingMembership(t *testing.T) {
	r, err := NewRing([]string{"b", "c", "a"}, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Shards()
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("Shards() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Shards() = %v, want %v", got, want)
		}
		if !r.Has(want[i]) {
			t.Fatalf("Has(%q) = false", want[i])
		}
	}
	if r.Has("d") {
		t.Fatal("Has(d) = true")
	}
}
