package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func testRecord(tick int, running bool, blob string) Record {
	return Record{Blob: []byte(blob), Tick: tick, Running: running}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		key  string
		rec  Record
	}{
		{"basic", "c000001", testRecord(42, true, "checkpoint-bytes")},
		{"paused", "c000002", testRecord(0, false, "x")},
		{"empty-blob", "k", testRecord(7, true, "")},
		{"large-tick", "c999999", testRecord(1<<40, false, "zzz")},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame, err := Encode(tc.key, tc.rec)
			if err != nil {
				t.Fatalf("Encode: %v", err)
			}
			key, rec, err := Decode(frame)
			if err != nil {
				t.Fatalf("Decode: %v", err)
			}
			if key != tc.key {
				t.Errorf("key = %q, want %q", key, tc.key)
			}
			if rec.Tick != tc.rec.Tick || rec.Running != tc.rec.Running {
				t.Errorf("rec = %+v, want %+v", rec, tc.rec)
			}
			if !bytes.Equal(rec.Blob, tc.rec.Blob) {
				t.Errorf("blob = %q, want %q", rec.Blob, tc.rec.Blob)
			}
		})
	}
}

func TestEncodeBounds(t *testing.T) {
	if _, err := Encode("", Record{}); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := Encode(string(make([]byte, maxKeyLen+1)), Record{}); err == nil {
		t.Error("oversized key accepted")
	}
}

// TestDecodeCorruption is the corruption table: every damaged frame
// must come back as a typed error — never a panic, never a Record.
func TestDecodeCorruption(t *testing.T) {
	good, err := Encode("c000123", testRecord(99, true, "the-checkpoint-blob"))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name    string
		mangle  func([]byte) []byte
		wantErr error // nil means "any error"
	}{
		{"bit-flip-header", func(b []byte) []byte { b[5] ^= 0x01; return b }, ErrChecksum},
		{"bit-flip-key-length", func(b []byte) []byte { b[7] ^= 0x80; return b }, ErrChecksum},
		{"bit-flip-blob", func(b []byte) []byte { b[len(b)-8] ^= 0x10; return b }, ErrChecksum},
		{"bit-flip-crc", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, ErrChecksum},
		{"truncate-mid-blob", func(b []byte) []byte { return b[:len(b)-10] }, nil},
		{"truncate-to-header", func(b []byte) []byte { return b[:8] }, ErrTruncated},
		{"truncate-empty", func(b []byte) []byte { return nil }, ErrTruncated},
		{"bad-magic", func(b []byte) []byte { copy(b, "NOPE"); return b }, ErrBadMagic},
		{"trailing-bytes", func(b []byte) []byte { return append(b, 0xAA, 0xBB) }, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			buf := tc.mangle(append([]byte(nil), good...))
			_, _, err := Decode(buf)
			if err == nil {
				t.Fatal("corrupted frame decoded cleanly")
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Errorf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestDecodeVersionGate(t *testing.T) {
	frame, err := Encode("k", testRecord(1, true, "b"))
	if err != nil {
		t.Fatal(err)
	}
	// Bump the version and re-seal the checksum so only the version
	// gate, not the CRC, rejects it.
	frame[5] = 2
	sum := crc32.Checksum(frame[:len(frame)-4], castagnoli)
	binary.BigEndian.PutUint32(frame[len(frame)-4:], sum)
	if _, _, err := Decode(frame); !errors.Is(err, ErrBadVersion) {
		t.Errorf("err = %v, want ErrBadVersion", err)
	}
}

func TestPutLoadDelete(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	want := testRecord(12, true, "blob-a")
	if err := s.Put("c000001", want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("c000001")
	if err != nil {
		t.Fatal(err)
	}
	if got.Tick != want.Tick || got.Running != want.Running || !bytes.Equal(got.Blob, want.Blob) {
		t.Errorf("Load = %+v, want %+v", got, want)
	}
	if _, err := s.Load("c999999"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing key: err = %v, want os.ErrNotExist", err)
	}
	if err := s.Delete("c000001"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("c000001"); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("deleted key: err = %v, want os.ErrNotExist", err)
	}
	if err := s.Put("bad key!", want); err == nil {
		t.Error("invalid key accepted")
	}
}

func TestGenerationRetentionAndPrune(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := s.Put("k", testRecord(i, true, "gen")); err != nil {
			t.Fatal(err)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != keepGenerations {
		t.Errorf("%d files on disk, want %d (pruned)", len(ents), keepGenerations)
	}
	got, err := s.Load("k")
	if err != nil {
		t.Fatal(err)
	}
	if got.Tick != 5 {
		t.Errorf("Tick = %d, want newest generation (5)", got.Tick)
	}
}

// TestCorruptionFallback: a torn newest generation falls back to the
// previous good one, and the fallback is counted.
func TestCorruptionFallback(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", testRecord(1, false, "old-good")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", testRecord(2, true, "new-torn")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest generation in place (torn write simulation).
	newest := s.path("k", 2)
	buf, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(newest, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("k")
	if err != nil {
		t.Fatalf("Load after corruption: %v", err)
	}
	if string(got.Blob) != "old-good" || got.Tick != 1 {
		t.Errorf("fell back to %+v, want the old-good generation", got)
	}
	if s.CorruptFrames() == 0 {
		t.Error("corrupt frame not counted")
	}
	// Both generations corrupt → error, never garbage.
	older := s.path("k", 1)
	if err := os.WriteFile(older, []byte("not a frame"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Load("k"); err == nil {
		t.Error("wholly corrupt key loaded cleanly")
	}
}

// TestReopenScan: a fresh Open over an existing directory finds the
// newest generation per key and ignores temp/foreign files.
func TestReopenScan(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", testRecord(1, true, "aa")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("a", testRecord(2, true, "aa2")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("b", testRecord(9, false, "bb")); err != nil {
		t.Fatal(err)
	}
	// Litter: a stale temp file and a foreign name must not confuse the scan.
	os.WriteFile(filepath.Join(dir, ".tmp-a-123"), []byte("partial"), 0o644)
	os.WriteFile(filepath.Join(dir, "README.txt"), []byte("hi"), 0o644)

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	all, err := s2.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("LoadAll found %d keys, want 2", len(all))
	}
	if all["a"].Tick != 2 || string(all["a"].Blob) != "aa2" {
		t.Errorf("key a = %+v, want newest generation", all["a"])
	}
	if all["b"].Tick != 9 || all["b"].Running {
		t.Errorf("key b = %+v, want tick 9 paused", all["b"])
	}
	keys := s2.Keys()
	if len(keys) != 2 {
		t.Errorf("Keys = %v, want 2 entries", keys)
	}
}

// TestLoadAllSkipsCorruptKey: one wholly corrupt key must not block
// recovering the rest.
func TestLoadAllSkipsCorruptKey(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("good", testRecord(3, true, "fine")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("bad", testRecord(4, true, "doomed")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(s.path("bad", 1), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	all, err := s.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := all["bad"]; ok {
		t.Error("corrupt key surfaced by LoadAll")
	}
	if rec, ok := all["good"]; !ok || string(rec.Blob) != "fine" {
		t.Errorf("good key = %+v, want recovered", rec)
	}
}

func TestParseName(t *testing.T) {
	cases := []struct {
		in  string
		key string
		gen uint64
		ok  bool
	}{
		{"c000001.0000000000000001.mfcs", "c000001", 1, true},
		{"a.b.000000000000000f.mfcs", "a.b", 15, true},
		{".tmp-k-1234", "", 0, false},
		{"k.mfcs", "", 0, false},
		{"k.123.mfcs", "", 0, false},
		{"k.000000000000000z.mfcs", "", 0, false},
		{"k.0000000000000001.other", "", 0, false},
	}
	for _, tc := range cases {
		key, gen, ok := parseName(tc.in)
		if key != tc.key || gen != tc.gen || ok != tc.ok {
			t.Errorf("parseName(%q) = (%q, %d, %v), want (%q, %d, %v)",
				tc.in, key, gen, ok, tc.key, tc.gen, tc.ok)
		}
	}
}
