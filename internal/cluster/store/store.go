// Package store is the front tier's durable checkpoint store: the
// in-memory recovery map (cluster key → latest checkpoint) mirrored to
// disk so a front-tier restart does not forfeit the state a dead
// shard's sessions would restart from. Each checkpoint is one
// CRC32C-framed file written via temp-file + atomic rename, with the
// previous generation retained: a torn or corrupted write is detected
// by the checksum and falls back to the last good generation instead of
// restoring garbage — the same fail-closed posture as the checkpoint
// codec itself.
//
// On-disk layout: one file per (key, generation), named
// "<key>.<generation:016x>.mfcs". Frame (integers big-endian):
//
//	magic    [4]byte  "MFCS"
//	version  uint16   frame version (currently 1)
//	key      uint16 length + bytes, the cluster session key
//	tick     uint64   pipeline tick at snapshot
//	running  uint8    1 when the session was executing at snapshot
//	blob     uint32 length + bytes, the checkpoint blob
//	crc      uint32   CRC32C (Castagnoli) over all preceding bytes
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
)

// Magic identifies a MINDFUL checkpoint-store frame.
var Magic = [4]byte{'M', 'F', 'C', 'S'}

// Version is the current frame version.
const Version uint16 = 1

// Bounds mirror the migration envelope's: keys are short identifiers,
// blobs are capped at the control plane's body limit.
const (
	maxKeyLen  = 256
	maxBlobLen = 16 << 20
)

// keepGenerations is how many generations survive per key: the current
// write plus one fallback.
const keepGenerations = 2

// Framing errors.
var (
	ErrBadMagic    = errors.New("store: bad magic")
	ErrBadVersion  = errors.New("store: unsupported version")
	ErrTruncated   = errors.New("store: truncated frame")
	ErrTrailing    = errors.New("store: trailing bytes")
	ErrLengthBound = errors.New("store: length field exceeds bound")
	ErrChecksum    = errors.New("store: checksum mismatch")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Record is one durable checkpoint.
type Record struct {
	Blob    []byte
	Tick    int
	Running bool
}

// Encode frames a record for disk.
func Encode(key string, rec Record) ([]byte, error) {
	if len(key) == 0 || len(key) > maxKeyLen {
		return nil, fmt.Errorf("%w: key %d bytes", ErrLengthBound, len(key))
	}
	if len(rec.Blob) > maxBlobLen {
		return nil, fmt.Errorf("%w: blob %d bytes", ErrLengthBound, len(rec.Blob))
	}
	b := make([]byte, 0, 4+2+2+len(key)+8+1+4+len(rec.Blob)+4)
	b = append(b, Magic[:]...)
	b = binary.BigEndian.AppendUint16(b, Version)
	b = binary.BigEndian.AppendUint16(b, uint16(len(key)))
	b = append(b, key...)
	b = binary.BigEndian.AppendUint64(b, uint64(rec.Tick))
	if rec.Running {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.BigEndian.AppendUint32(b, uint32(len(rec.Blob)))
	b = append(b, rec.Blob...)
	return binary.BigEndian.AppendUint32(b, crc32.Checksum(b, castagnoli)), nil
}

// Decode parses and verifies one frame, returning the framed key and
// record. Malformed or corrupted input returns an error — never a
// panic, never garbage accepted as a checkpoint.
func Decode(buf []byte) (string, Record, error) {
	if len(buf) < 4 {
		return "", Record{}, ErrTruncated
	}
	if [4]byte(buf[:4]) != Magic {
		return "", Record{}, ErrBadMagic
	}
	if len(buf) < 4+2+2 {
		return "", Record{}, ErrTruncated
	}
	// Verify the checksum before trusting any length field beyond the
	// fixed header: a flipped bit in a length must not drive the parse.
	if len(buf) < 4+2+2+8+1+4+4 {
		return "", Record{}, ErrTruncated
	}
	body, sum := buf[:len(buf)-4], binary.BigEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(body, castagnoli) != sum {
		return "", Record{}, ErrChecksum
	}
	if v := binary.BigEndian.Uint16(buf[4:6]); v != Version {
		return "", Record{}, fmt.Errorf("%w: %d (this build supports %d)", ErrBadVersion, v, Version)
	}
	keyLen := int(binary.BigEndian.Uint16(buf[6:8]))
	if keyLen > maxKeyLen {
		return "", Record{}, ErrLengthBound
	}
	rest := body[8:]
	if len(rest) < keyLen+8+1+4 {
		return "", Record{}, ErrTruncated
	}
	key := string(rest[:keyLen])
	rest = rest[keyLen:]
	tick := binary.BigEndian.Uint64(rest[:8])
	running := rest[8] == 1
	blobLen := int(binary.BigEndian.Uint32(rest[9:13]))
	rest = rest[13:]
	if blobLen > maxBlobLen {
		return "", Record{}, ErrLengthBound
	}
	if len(rest) < blobLen {
		return "", Record{}, ErrTruncated
	}
	if len(rest) > blobLen {
		return "", Record{}, ErrTrailing
	}
	rec := Record{Tick: int(tick), Running: running}
	if blobLen > 0 {
		rec.Blob = append([]byte(nil), rest[:blobLen]...)
	}
	return key, rec, nil
}

// Store is one checkpoint directory.
type Store struct {
	dir string

	mu   sync.Mutex
	gens map[string]uint64 // key → newest generation on disk
	// corrupt counts frames rejected at load time — surfaced so a
	// recovery that fell back a generation is visible, not silent.
	corrupt int
}

// Open creates (if needed) and scans a checkpoint directory.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, gens: make(map[string]uint64)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range entries {
		key, gen, ok := parseName(ent.Name())
		if !ok {
			continue
		}
		if cur, seen := s.gens[key]; !seen || gen > cur {
			s.gens[key] = gen
		}
	}
	return s, nil
}

// parseName splits "<key>.<gen:016x>.mfcs"; sidesteps temp files and
// foreign names.
func parseName(name string) (key string, gen uint64, ok bool) {
	if !strings.HasSuffix(name, ".mfcs") {
		return "", 0, false
	}
	stem := strings.TrimSuffix(name, ".mfcs")
	i := strings.LastIndexByte(stem, '.')
	if i <= 0 || len(stem)-i-1 != 16 {
		return "", 0, false
	}
	gen, err := strconv.ParseUint(stem[i+1:], 16, 64)
	if err != nil {
		return "", 0, false
	}
	return stem[:i], gen, true
}

// validKey rejects keys that cannot be file-name stems.
func validKey(key string) error {
	if key == "" || len(key) > maxKeyLen {
		return fmt.Errorf("store: invalid key %q", key)
	}
	for _, r := range key {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '-', r == '_':
		default:
			return fmt.Errorf("store: invalid key %q", key)
		}
	}
	return nil
}

func (s *Store) path(key string, gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf("%s.%016x.mfcs", key, gen))
}

// Put durably writes a key's next checkpoint generation: frame, temp
// file, fsync, atomic rename, then prune generations beyond the
// retained window.
func (s *Store) Put(key string, rec Record) error {
	if err := validKey(key); err != nil {
		return err
	}
	frame, err := Encode(key, rec)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.gens[key] + 1
	tmp, err := os.CreateTemp(s.dir, ".tmp-"+key+"-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(frame); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, s.path(key, gen)); err != nil {
		os.Remove(tmpName)
		return err
	}
	s.gens[key] = gen
	// Prune: anything older than the retained window is garbage now.
	if gen > keepGenerations {
		for g := gen - keepGenerations; g > 0; g-- {
			if os.Remove(s.path(key, g)) != nil {
				break // older generations were pruned by earlier passes
			}
		}
	}
	return nil
}

// Delete removes every generation of a key (the session is gone).
func (s *Store) Delete(key string) error {
	if err := validKey(key); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gen, ok := s.gens[key]
	if !ok {
		return nil
	}
	delete(s.gens, key)
	for g := gen; g > 0; g-- {
		if os.Remove(s.path(key, g)) != nil && g < gen {
			break
		}
	}
	return nil
}

// Load returns a key's newest good checkpoint, walking back through
// retained generations when the newest frame is torn or corrupted.
// A missing key returns os.ErrNotExist.
func (s *Store) Load(key string) (Record, error) {
	if err := validKey(key); err != nil {
		return Record{}, err
	}
	s.mu.Lock()
	gen, ok := s.gens[key]
	s.mu.Unlock()
	if !ok {
		return Record{}, os.ErrNotExist
	}
	return s.loadFrom(key, gen)
}

func (s *Store) loadFrom(key string, newest uint64) (Record, error) {
	var lastErr error = os.ErrNotExist
	for g := newest; g > 0 && newest-g < keepGenerations; g-- {
		buf, err := os.ReadFile(s.path(key, g))
		if err != nil {
			lastErr = err
			continue
		}
		fkey, rec, err := Decode(buf)
		if err != nil || fkey != key {
			if err == nil {
				err = fmt.Errorf("store: frame for key %q found under %q", fkey, key)
			}
			s.mu.Lock()
			s.corrupt++
			s.mu.Unlock()
			lastErr = err
			continue
		}
		return rec, nil
	}
	return Record{}, lastErr
}

// LoadAll returns the newest good checkpoint per key — the restart
// path. Keys whose every retained generation is corrupt are skipped
// (counted in CorruptFrames), not fatal: losing one session's
// checkpoint must not block recovering the rest.
func (s *Store) LoadAll() (map[string]Record, error) {
	s.mu.Lock()
	gens := make(map[string]uint64, len(s.gens))
	for k, g := range s.gens {
		gens[k] = g
	}
	s.mu.Unlock()
	out := make(map[string]Record, len(gens))
	for key, gen := range gens {
		rec, err := s.loadFrom(key, gen)
		if err != nil {
			continue
		}
		out[key] = rec
	}
	return out, nil
}

// CorruptFrames counts frames rejected since Open.
func (s *Store) CorruptFrames() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.corrupt
}

// Keys lists keys with at least one retained generation.
func (s *Store) Keys() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.gens))
	for k := range s.gens {
		out = append(out, k)
	}
	return out
}
