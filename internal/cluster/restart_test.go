package cluster

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"mindful/internal/cluster/store"
	"mindful/internal/serve"
)

// externalShard runs a gateway outside any front tier, standing in for
// a shard process that outlives a front-tier crash.
func externalShard(t *testing.T) *serve.Server {
	t.Helper()
	srv, err := serve.New(serve.Config{
		ControlAddr:  "127.0.0.1:0",
		StreamAddr:   "127.0.0.1:0",
		TickInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv
}

func attach(t *testing.T, c *Cluster, id string, srv *serve.Server) {
	t.Helper()
	if err := c.AttachShard(id, "http://"+srv.ControlAddr(), srv.StreamAddr()); err != nil {
		t.Fatal(err)
	}
}

// TestFrontTierRestartRecovers is the crash-the-coordinator drill: the
// front tier checkpoints its sessions to the durable store, a shard
// dies, and then the front tier itself crashes before recovering. A
// new front tier over the same store directory must reload every
// checkpoint from disk, declare the dead shard down, and restore the
// sessions on the survivors — the routing table is memory and dies
// with the process, but the recovery state is disk and does not.
func TestFrontTierRestartRecovers(t *testing.T) {
	dir := t.TempDir()
	srvA, srvB := externalShard(t), externalShard(t)

	c1, err := New(Config{
		StoreDir:           dir,
		CheckpointInterval: -1,
		HealthInterval:     -1,
		ReconcileInterval:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.Start(); err != nil {
		t.Fatal(err)
	}
	attach(t, c1, "a", srvA)
	attach(t, c1, "b", srvB)

	cfg := testSessionConfig()
	cfg.Ticks = 2000
	wantFrame, _ := digests(t, cfg)
	keys := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		info, err := c1.CreateSession(serve.CreateRequest{SessionConfig: cfg})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, info.Key)
	}
	for _, key := range keys {
		waitKeyTick(t, c1, key, 10)
	}
	if stored := c1.CheckpointNow(); stored != len(keys) {
		t.Fatalf("checkpointed %d of %d sessions", stored, len(keys))
	}

	// Shard A dies hard, and the front tier crashes before it can
	// recover anything. The external shard B keeps running, oblivious.
	srvA.Kill()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	c1.Shutdown(ctx)
	cancel()

	// The next generation: same store directory, empty routing table.
	c2, err := New(Config{
		StoreDir:           dir,
		CheckpointInterval: -1,
		HealthInterval:     -1,
		ReconcileInterval:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdownCluster(t, c2) })
	attach(t, c2, "b", srvB)
	// Re-register the dead shard so it can be declared down. The join
	// succeeds because the routing table is empty — nothing rebalances
	// onto it before recovery removes it.
	if err := c2.AttachShard("a", "http://"+srvA.ControlAddr(), srvA.StreamAddr()); err != nil {
		t.Fatal(err)
	}

	recovered, lost, err := c2.RecoverShard("a")
	if err != nil {
		t.Fatal(err)
	}
	if recovered != len(keys) || lost != 0 {
		t.Fatalf("recovered %d, lost %d; want %d recovered, 0 lost", recovered, lost, len(keys))
	}

	// New keys must not collide with the crashed generation's.
	fresh, err := c2.CreateSession(serve.CreateRequest{SessionConfig: cfg, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		if fresh.Key == key {
			t.Fatalf("new key %s collides with a recovered session", fresh.Key)
		}
	}
	if err := c2.DeleteSession(fresh.Key); err != nil {
		t.Fatal(err)
	}

	// Shard B still hosts its pre-crash copies — unaddressable without
	// the old routing table. Two janitor passes (sighting + grace)
	// remove them, after which the invariant auditor is clean.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c2.ReconcileNow()
		rep, err := c2.AuditInvariant()
		if err == nil && rep.Ok() && rep.Routed == len(keys) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never converged: %+v err=%v", rep, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Every recovered session replays to the same digest as an
	// uninterrupted run — the crash cost progress, not correctness.
	for _, key := range keys {
		done := waitKeyState(t, c2, key, serve.StateDone)
		if done.Digest != wantFrame {
			t.Fatalf("session %s digest %s after restart recovery, want %s", key, done.Digest, wantFrame)
		}
	}
}

// TestRecoverShardCorruptStore feeds RecoverShard a store whose frames
// have been damaged on disk: a bit-flipped newest generation falls back
// to the previous good one, and a wholly corrupted key is counted lost
// — never a panic, never garbage restored.
func TestRecoverShardCorruptStore(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(t *testing.T, path string)
		// fallback: the older generation still restores the session.
		fallback bool
	}{
		{"bit-flip", func(t *testing.T, path string) {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			buf[len(buf)/3] ^= 0x40
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
		}, true},
		{"truncation", func(t *testing.T, path string) {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, buf[:len(buf)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}, true},
		{"bad-magic", func(t *testing.T, path string) {
			buf, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			copy(buf, "JUNK")
			if err := os.WriteFile(path, buf, 0o644); err != nil {
				t.Fatal(err)
			}
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			c, err := New(Config{
				StoreDir:           dir,
				CheckpointInterval: -1,
				HealthInterval:     -1,
				ReconcileInterval:  -1,
				Shard:              serve.Config{TickInterval: time.Millisecond},
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := c.Start(); err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { shutdownCluster(t, c) })
			for _, id := range []string{"shard-0", "shard-1"} {
				if err := c.AddShard(id); err != nil {
					t.Fatal(err)
				}
			}
			cfg := testSessionConfig()
			cfg.Ticks = 1000
			info, err := c.CreateSession(serve.CreateRequest{SessionConfig: cfg})
			if err != nil {
				t.Fatal(err)
			}
			waitKeyTick(t, c, info.Key, 5)
			// Two checkpoint passes → two on-disk generations.
			if c.CheckpointNow() != 1 {
				t.Fatal("first checkpoint pass stored nothing")
			}
			waitKeyTick(t, c, info.Key, 10)
			if c.CheckpointNow() != 1 {
				t.Fatal("second checkpoint pass stored nothing")
			}

			// Damage the newest generation on disk, then reload the map
			// from the store the way a restarted front tier would.
			newest := newestGeneration(t, dir, info.Key)
			tc.mangle(t, newest)
			st, err := store.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			recs, err := st.LoadAll()
			if err != nil {
				t.Fatal(err)
			}
			c.mu.Lock()
			c.ckpts = make(map[string]storedCkpt, len(recs))
			for key, rec := range recs {
				c.ckpts[key] = storedCkpt{Blob: rec.Blob, Tick: rec.Tick, Running: rec.Running}
			}
			c.mu.Unlock()

			victim := info.Shard
			if err := c.KillShard(victim); err != nil {
				t.Fatal(err)
			}
			recovered, lost, err := c.RecoverShard(victim)
			if err != nil {
				t.Fatal(err)
			}
			if tc.fallback {
				if recovered != 1 || lost != 0 {
					t.Fatalf("recovered %d, lost %d; want fallback restore (1, 0)", recovered, lost)
				}
				done := waitKeyState(t, c, info.Key, serve.StateDone)
				if done.Digest == "" {
					t.Fatal("restored session produced no digest")
				}
			}
		})
	}
}

// TestRecoverShardAllGenerationsCorrupt: when every retained generation
// of a key is damaged, the session is counted lost — loudly, not
// restored as garbage.
func TestRecoverShardAllGenerationsCorrupt(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{
		StoreDir:           dir,
		CheckpointInterval: -1,
		HealthInterval:     -1,
		ReconcileInterval:  -1,
		Shard:              serve.Config{TickInterval: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdownCluster(t, c) })
	for _, id := range []string{"shard-0", "shard-1"} {
		if err := c.AddShard(id); err != nil {
			t.Fatal(err)
		}
	}
	cfg := testSessionConfig()
	cfg.Ticks = 0
	info, err := c.CreateSession(serve.CreateRequest{SessionConfig: cfg})
	if err != nil {
		t.Fatal(err)
	}
	waitKeyTick(t, c, info.Key, 3)
	if c.CheckpointNow() != 1 {
		t.Fatal("checkpoint pass stored nothing")
	}

	// Damage every generation on disk.
	matches, err := filepath.Glob(filepath.Join(dir, info.Key+".*.mfcs"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no store files for %s (err=%v)", info.Key, err)
	}
	for _, path := range matches {
		if err := os.WriteFile(path, []byte("scrambled"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := st.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := recs[info.Key]; ok {
		t.Fatal("corrupt key surfaced by LoadAll")
	}
	c.mu.Lock()
	c.ckpts = make(map[string]storedCkpt)
	c.mu.Unlock()

	victim := info.Shard
	if err := c.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	recovered, lost, err := c.RecoverShard(victim)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != 0 || lost != 1 {
		t.Fatalf("recovered %d, lost %d; want (0, 1) — no checkpoint survived", recovered, lost)
	}
}

// newestGeneration returns the highest-generation store file for a key.
func newestGeneration(t *testing.T, dir, key string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, key+".*.mfcs"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no store files for %s (err=%v)", key, err)
	}
	newest := matches[0]
	for _, m := range matches[1:] {
		if m > newest {
			newest = m
		}
	}
	return newest
}
