package cluster

import (
	"testing"
	"time"

	"mindful/internal/serve"
)

// TestChaosKillRestore is the kill/restore regression: SIGKILL a shard
// mid-stream (no drain, no warning), restore its sessions on the
// survivors from the front tier's periodic checkpoints, reconnect the
// severed subscriber through the front tier, and prove the recovered
// sessions finish with digests identical to uninterrupted runs —
// checkpoint restore is bit-exact, so even a crash is invisible to the
// simulation's output.
func TestChaosKillRestore(t *testing.T) {
	c := startCluster(t, 3, serve.Config{TickInterval: time.Millisecond})
	cfg := testSessionConfig()
	cfg.Ticks = 1000
	wantFrame, _ := digests(t, cfg)

	keys := make([]string, 0, 9)
	for i := 0; i < 9; i++ {
		info, err := c.CreateSession(serve.CreateRequest{SessionConfig: cfg})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, info.Key)
	}
	for _, key := range keys {
		waitKeyTick(t, c, key, 10)
	}

	// The recovery substrate: checkpoint everything, then pick a victim
	// shard that hosts at least one session.
	if stored := c.CheckpointNow(); stored != len(keys) {
		t.Fatalf("checkpointed %d of %d sessions", stored, len(keys))
	}
	var victim string
	var victimSessions int
	for _, sh := range c.Topology().Shards {
		if sh.Sessions > 0 {
			victim, victimSessions = sh.ID, sh.Sessions
			break
		}
	}
	if victim == "" {
		t.Fatal("no shard hosts a session")
	}
	var victimKey string
	for _, key := range keys {
		info, err := c.SessionInfo(key)
		if err != nil {
			t.Fatal(err)
		}
		if info.Shard == victim {
			victimKey = key
			break
		}
	}

	// A subscriber attached through the front tier, mid-stream on the
	// shard about to die.
	conn, br, err := serve.SubscribeFollow(c.StreamAddr(), victimKey, "", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := serve.ReadRecord(br); err != nil {
		t.Fatal(err)
	}

	// Split-brain guard: recovery must refuse while the shard is alive.
	if _, _, err := c.RecoverShard(victim); err == nil {
		t.Fatal("RecoverShard succeeded against a live shard")
	}

	if err := c.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	// The subscriber's stream dies abruptly — an error, not a clean
	// drain.
	for {
		if _, err := serve.ReadRecord(br); err != nil {
			break
		}
	}
	conn.Close()

	recovered, lost, err := c.RecoverShard(victim)
	if err != nil {
		t.Fatal(err)
	}
	if recovered != victimSessions || lost != 0 {
		t.Fatalf("recovered %d, lost %d; want %d recovered, 0 lost", recovered, lost, victimSessions)
	}

	// Topology: the victim is gone, every session routed, each exactly
	// once (placement counts sum to the session count — no key served by
	// two shards).
	topo := c.Topology()
	if len(topo.Shards) != 2 {
		t.Fatalf("%d shards after recovery, want 2", len(topo.Shards))
	}
	placed := 0
	for _, sh := range topo.Shards {
		if sh.ID == victim {
			t.Fatal("victim still in the topology")
		}
		placed += sh.Sessions
	}
	if topo.Sessions != len(keys) || placed != len(keys) {
		t.Fatalf("%d sessions across shards, topology says %d, want %d exactly once each",
			placed, topo.Sessions, len(keys))
	}

	// The severed subscriber reconnects through the front tier and
	// streams the recovered session to its end.
	conn2, br2, err := serve.SubscribeFollow(c.StreamAddr(), victimKey, "", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	got := 0
	for {
		if _, err := serve.ReadRecord(br2); err != nil {
			break
		}
		got++
	}
	if got == 0 {
		t.Fatal("no records from the recovered session")
	}

	// Every session — recovered or untouched — finishes bit-identical to
	// an uninterrupted run.
	for _, key := range keys {
		done := waitKeyState(t, c, key, serve.StateDone)
		if done.Digest != wantFrame {
			t.Fatalf("session %s digest %s after chaos, want %s", key, done.Digest, wantFrame)
		}
	}
}

// TestChaosHealthLoopAutoRecovers: with the background loops on, a
// killed shard is detected by the health probes and its sessions are
// restored without any explicit operator call.
func TestChaosHealthLoopAutoRecovers(t *testing.T) {
	c, err := New(Config{
		CheckpointInterval: 20 * time.Millisecond,
		HealthInterval:     20 * time.Millisecond,
		Shard:              serve.Config{TickInterval: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	defer shutdownCluster(t, c)
	for _, id := range []string{"a", "b", "c"} {
		if err := c.AddShard(id); err != nil {
			t.Fatal(err)
		}
	}

	cfg := testSessionConfig()
	cfg.Ticks = 0 // unbounded: only deletion or death stops these
	keys := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		info, err := c.CreateSession(serve.CreateRequest{SessionConfig: cfg})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, info.Key)
	}
	// Let the checkpoint loop cover every session at least once.
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		covered := len(c.ckpts)
		c.mu.Unlock()
		if covered == len(keys) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("checkpoint loop covered %d of %d sessions", covered, len(keys))
		}
		time.Sleep(5 * time.Millisecond)
	}

	var victim string
	for _, sh := range c.Topology().Shards {
		if sh.Sessions > 0 {
			victim = sh.ID
			break
		}
	}
	if victim == "" {
		t.Fatal("no shard hosts a session")
	}
	if err := c.KillShard(victim); err != nil {
		t.Fatal(err)
	}

	// The health loop needs two failed probes; give it a generous
	// window to notice, recover, and re-route everything.
	deadline = time.Now().Add(5 * time.Second)
	for {
		topo := c.Topology()
		if len(topo.Shards) == 2 && topo.Sessions == len(keys) {
			allRouted := true
			for _, key := range keys {
				info, err := c.SessionInfo(key)
				if err != nil || info.Shard == victim || info.State != serve.StateRunning {
					allRouted = false
					break
				}
			}
			if allRouted {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("auto-recovery incomplete: %d shards, %d sessions", len(topo.Shards), topo.Sessions)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Recovered sessions keep making progress.
	before := make(map[string]int)
	for _, key := range keys {
		info, err := c.SessionInfo(key)
		if err != nil {
			t.Fatal(err)
		}
		before[key] = info.Tick
	}
	for _, key := range keys {
		waitKeyTick(t, c, key, before[key]+5)
	}
}

// TestChaosLastShardLoss: killing the only shard loses its sessions —
// and the cluster says so instead of pretending.
func TestChaosLastShardLoss(t *testing.T) {
	c := startCluster(t, 1, serve.Config{TickInterval: time.Millisecond})
	cfg := testSessionConfig()
	cfg.Ticks = 0
	info, err := c.CreateSession(serve.CreateRequest{SessionConfig: cfg})
	if err != nil {
		t.Fatal(err)
	}
	waitKeyTick(t, c, info.Key, 5)
	c.CheckpointNow()
	if err := c.KillShard("shard-0"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RecoverShard("shard-0"); err == nil {
		t.Fatal("recovering onto an empty cluster succeeded")
	}
	topo := c.Topology()
	if len(topo.Shards) != 0 || topo.Sessions != 0 {
		t.Fatalf("topology after total loss: %d shards, %d sessions, want 0/0", len(topo.Shards), topo.Sessions)
	}
}
