package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"mindful/internal/detrand"
	"mindful/internal/obs"
	"mindful/internal/serve"
)

// The front tier speaks to shards over their existing JSON/HTTP control
// planes — no private RPC channel, so an externally attached gateway is
// indistinguishable from a self-hosted one. Each cluster owns one
// shardClient: its transports are injectable (chaos tests swap in a
// fault-injecting RoundTripper), and every idempotent call is wrapped
// in capped exponential backoff with deterministic jitter. Calls whose
// blind retry could duplicate an effect either carry an Idempotency-Key
// the shard dedupes on (import, restore) or are not retried at all
// (create). Liveness probes use the much shorter probe timeout so a
// dead shard is declared dead in probe-time, not call-time.

// maxShardBody bounds any response body read from a shard (checkpoint
// blobs dominate; this matches the serve side's own body cap).
const maxShardBody = 16 << 20

// Retry defaults for the zero Config values.
const (
	// DefaultRetryMax is the retry budget per idempotent control call.
	DefaultRetryMax = 4
	// DefaultRetryBase is the first backoff step; each retry doubles it.
	DefaultRetryBase = 15 * time.Millisecond
	// DefaultRetryCap bounds a single backoff step.
	DefaultRetryCap = 250 * time.Millisecond
)

// statusError is a shard's non-2xx answer, preserved with its status
// code so the retry loop can tell transient (5xx) from semantic (4xx).
type statusError struct {
	op   string
	code int
	msg  string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("cluster: %s: %s", e.op, e.msg)
}

// shardError converts a non-2xx shard response into a statusError
// carrying the shard's own message.
func shardError(op string, code int, body []byte) error {
	msg := string(bytes.TrimSpace(body))
	if len(msg) > 512 {
		msg = msg[:512]
	}
	if msg == "" {
		msg = http.StatusText(code)
	}
	return &statusError{op: op, code: code, msg: msg}
}

// shardClient is one front tier's control-plane client.
type shardClient struct {
	http  *http.Client
	probe *http.Client

	retryMax  int
	retryBase time.Duration
	retryCap  time.Duration

	// jitter derandomizes thundering-herd backoff deterministically:
	// detrand-seeded, so a fixed-seed chaos run replays the same waits.
	jmu    sync.Mutex
	jitter *detrand.Rand

	// tokens for Idempotency-Key headers: an instance nonce (wall clock
	// at construction) plus a counter, so a restarted front tier never
	// collides with tokens its predecessor left recorded on shards.
	tokenNonce int64
	tokenSeq   atomic.Uint64

	mRetries *obs.Counter // nil-safe
	mGiveups *obs.Counter
}

// newShardClient builds the client from the cluster config (defaults
// applied by the caller) and optional metrics counters.
func newShardClient(cfg Config, retries, giveups *obs.Counter) *shardClient {
	retryMax := cfg.RetryMax
	if retryMax == 0 {
		retryMax = DefaultRetryMax
	}
	if retryMax < 0 {
		retryMax = 0
	}
	base := cfg.RetryBase
	if base <= 0 {
		base = DefaultRetryBase
	}
	ceil := cfg.RetryCap
	if ceil <= 0 {
		ceil = DefaultRetryCap
	}
	return &shardClient{
		http:       &http.Client{Timeout: 10 * time.Second, Transport: cfg.Transport},
		probe:      &http.Client{Timeout: DefaultProbeTimeout, Transport: cfg.ProbeTransport},
		retryMax:   retryMax,
		retryBase:  base,
		retryCap:   ceil,
		jitter:     detrand.New(cfg.RetrySeed),
		tokenNonce: time.Now().UnixNano(),
		mRetries:   retries,
		mGiveups:   giveups,
	}
}

// nextToken mints one Idempotency-Key, reused across every retry of the
// call it was minted for.
func (cl *shardClient) nextToken() string {
	return fmt.Sprintf("%x.%d", cl.tokenNonce, cl.tokenSeq.Add(1))
}

// backoff returns the wait before the n-th retry (1-based): capped
// exponential with deterministic jitter in [d/2, d).
func (cl *shardClient) backoff(n int) time.Duration {
	d := cl.retryBase << (n - 1)
	if d <= 0 || d > cl.retryCap {
		d = cl.retryCap
	}
	cl.jmu.Lock()
	f := cl.jitter.Float64()
	cl.jmu.Unlock()
	return d/2 + time.Duration(f*float64(d/2))
}

// retriable reports whether an attempt's failure is worth another try:
// transport errors and 5xx answers are transient; 4xx answers are the
// shard telling us the request itself is wrong.
func retriable(err error) bool {
	if se, ok := err.(*statusError); ok {
		return se.code >= 500
	}
	return true
}

// call runs one control-plane operation: build the request fresh per
// attempt (bodies must be replayable), bound the response read, and
// retry transient failures up to the budget. hdr entries are applied to
// every attempt — the Idempotency-Key path.
func (cl *shardClient) call(op, method, url string, body []byte, contentType string, hdr map[string]string, wantStatus int, retry bool) ([]byte, error) {
	attempts := 1
	if retry {
		attempts += cl.retryMax
	}
	var lastErr error
	for n := 0; n < attempts; n++ {
		if n > 0 {
			cl.mRetries.Inc()
			time.Sleep(cl.backoff(n))
		}
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, url, rd)
		if err != nil {
			return nil, err
		}
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		resp, err := cl.http.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		buf, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
		resp.Body.Close()
		if err != nil {
			// A body severed mid-read is a transport failure, not an answer.
			lastErr = err
			continue
		}
		if resp.StatusCode != wantStatus {
			lastErr = shardError(op, resp.StatusCode, buf)
			if !retriable(lastErr) {
				return nil, lastErr
			}
			continue
		}
		return buf, nil
	}
	if retry {
		cl.mGiveups.Inc()
	}
	return nil, lastErr
}

// callJSON is call with a JSON-decoded response (skipped when out is
// nil).
func (cl *shardClient) callJSON(op, method, url string, body []byte, contentType string, hdr map[string]string, wantStatus int, out any, retry bool) error {
	buf, err := cl.call(op, method, url, body, contentType, hdr, wantStatus, retry)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(buf, out)
}

// createSession places a session on a shard. The Idempotency-Key makes
// the retries at-most-once: a response lost after the shard created the
// session replays the original answer instead of creating a twin.
func (cl *shardClient) createSession(base string, reqBody serve.CreateRequest) (serve.SessionInfo, error) {
	buf, err := json.Marshal(reqBody)
	if err != nil {
		return serve.SessionInfo{}, err
	}
	var info serve.SessionInfo
	hdr := map[string]string{"Idempotency-Key": cl.nextToken()}
	err = cl.callJSON("create", http.MethodPost, base+"/api/sessions",
		buf, "application/json", hdr, http.StatusCreated, &info, true)
	return info, err
}

// isNotFound reports whether a shard definitively answered "no such
// session" — as opposed to a transport failure, where the session may
// be fine and the network lying.
func isNotFound(err error) bool {
	se, ok := err.(*statusError)
	return ok && se.code == http.StatusNotFound
}

// listSessions fetches every session a shard hosts.
func (cl *shardClient) listSessions(base string) ([]serve.SessionInfo, error) {
	var infos []serve.SessionInfo
	err := cl.callJSON("list", http.MethodGet, base+"/api/sessions",
		nil, "", nil, http.StatusOK, &infos, true)
	return infos, err
}

// getSession fetches a session's info from its shard.
func (cl *shardClient) getSession(base, id string) (serve.SessionInfo, error) {
	var info serve.SessionInfo
	err := cl.callJSON("get "+id, http.MethodGet, base+"/api/sessions/"+id,
		nil, "", nil, http.StatusOK, &info, true)
	return info, err
}

// deleteSession removes a session from a shard. Safe to retry: the
// shard answers success again for recently deleted IDs.
func (cl *shardClient) deleteSession(base, id string) error {
	return cl.callJSON("delete "+id, http.MethodDelete, base+"/api/sessions/"+id,
		nil, "", nil, http.StatusOK, nil, true)
}

// pauseSession suspends a session's tick loop (idempotent on the
// shard: pausing a paused session is a no-op).
func (cl *shardClient) pauseSession(base, id string) error {
	return cl.callJSON("pause "+id, http.MethodPost, base+"/api/sessions/"+id+"/pause",
		nil, "", nil, http.StatusOK, nil, true)
}

// resumeSession releases a paused session (idempotent likewise).
func (cl *shardClient) resumeSession(base, id string) error {
	return cl.callJSON("resume "+id, http.MethodPost, base+"/api/sessions/"+id+"/resume",
		nil, "", nil, http.StatusOK, nil, true)
}

// exportSession drives the migration source: pause + snapshot, returned
// as an encoded wire.Envelope stamped with the cluster key. Re-running
// it re-snapshots the still-paused session to the identical envelope,
// so it retries freely.
func (cl *shardClient) exportSession(base, id, key string) ([]byte, error) {
	return cl.call("export "+id, http.MethodPost,
		base+"/api/sessions/"+id+"/export?key="+key,
		nil, "application/octet-stream", nil, http.StatusOK, true)
}

// importSession drives the migration target: restore the envelope's
// checkpoint paused. The Idempotency-Key makes the retries at-most-once
// — a response lost after the shard restored does not restore twice.
func (cl *shardClient) importSession(base string, env []byte) (serve.SessionInfo, error) {
	var info serve.SessionInfo
	hdr := map[string]string{"Idempotency-Key": cl.nextToken()}
	err := cl.callJSON("import", http.MethodPost, base+"/api/sessions/import",
		env, "application/octet-stream", hdr, http.StatusCreated, &info, true)
	return info, err
}

// checkpointSession snapshots a session without pausing it — the
// periodic-checkpoint feed behind kill recovery. The session's info is
// fetched alongside the blob so the store records the tick and run
// state the checkpoint describes.
func (cl *shardClient) checkpointSession(base, id string) ([]byte, serve.SessionInfo, error) {
	blob, err := cl.call("checkpoint "+id, http.MethodGet,
		base+"/api/sessions/"+id+"/checkpoint",
		nil, "", nil, http.StatusOK, true)
	if err != nil {
		return nil, serve.SessionInfo{}, err
	}
	info, err := cl.getSession(base, id)
	if err != nil {
		return nil, serve.SessionInfo{}, err
	}
	return blob, info, nil
}

// restoreSession replays a stored checkpoint onto a shard (paused when
// startPaused) — the kill-recovery path, idempotency-keyed like import.
func (cl *shardClient) restoreSession(base string, blob []byte, startPaused bool) (serve.SessionInfo, error) {
	url := base + "/api/sessions/restore?start_paused=" + strconv.FormatBool(startPaused)
	var info serve.SessionInfo
	hdr := map[string]string{"Idempotency-Key": cl.nextToken()}
	err := cl.callJSON("restore", http.MethodPost, url,
		blob, "application/octet-stream", hdr, http.StatusCreated, &info, true)
	return info, err
}

// drainShard toggles a shard's draining flag over HTTP (works for
// attached shards the front tier does not host in-process).
func (cl *shardClient) drainShard(base string, on bool) error {
	return cl.callJSON("drain", http.MethodPost, base+"/api/drain?on="+strconv.FormatBool(on),
		nil, "", nil, http.StatusOK, nil, true)
}

// probeReady reports whether a shard answers /readyz with 200 — false
// for dead AND draining shards (neither should receive new placements).
// Probes are single-shot: the probing loops aggregate over time.
func (cl *shardClient) probeReady(base string) bool {
	return cl.probeOK(base + "/readyz")
}

// probeAlive reports whether a shard's control plane answers /healthz
// at all — true for draining shards (alive, just not placeable), false
// only when the process is gone. The health loop keys shard-death
// detection off this, not probeReady, so a drain never looks like a
// crash.
func (cl *shardClient) probeAlive(base string) bool {
	return cl.probeOK(base + "/healthz")
}

func (cl *shardClient) probeOK(url string) bool {
	resp, err := cl.probe.Get(url)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
