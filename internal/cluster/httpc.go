package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"mindful/internal/serve"
)

// The front tier speaks to shards over their existing JSON/HTTP control
// planes — no private RPC channel, so an externally attached gateway is
// indistinguishable from a self-hosted one. Every call is bounded by
// ctlClient's timeout; liveness probes use the much shorter probeClient
// so a dead shard is declared dead in probe-time, not call-time.

// maxShardBody bounds any response body read from a shard (checkpoint
// blobs dominate; this matches the serve side's own body cap).
const maxShardBody = 16 << 20

var ctlClient = &http.Client{Timeout: 10 * time.Second}

var probeClient = &http.Client{Timeout: DefaultProbeTimeout}

// shardError converts a non-2xx shard response into an error carrying
// the shard's own message.
func shardError(op string, resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
	msg := string(bytes.TrimSpace(body))
	if msg == "" {
		msg = resp.Status
	}
	return fmt.Errorf("cluster: %s: %s", op, msg)
}

// doJSON runs a request and decodes a JSON response into out (skipped
// when out is nil).
func doJSON(req *http.Request, wantStatus int, out any) error {
	resp, err := ctlClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		return shardError(req.Method+" "+req.URL.Path, resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, maxShardBody)).Decode(out)
}

// createSession places a session on a shard.
func createSession(base string, reqBody serve.CreateRequest) (serve.SessionInfo, error) {
	buf, err := json.Marshal(reqBody)
	if err != nil {
		return serve.SessionInfo{}, err
	}
	req, err := http.NewRequest(http.MethodPost, base+"/api/sessions", bytes.NewReader(buf))
	if err != nil {
		return serve.SessionInfo{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	var info serve.SessionInfo
	return info, doJSON(req, http.StatusCreated, &info)
}

// getSession fetches a session's info from its shard.
func getSession(base, id string) (serve.SessionInfo, error) {
	req, err := http.NewRequest(http.MethodGet, base+"/api/sessions/"+id, nil)
	if err != nil {
		return serve.SessionInfo{}, err
	}
	var info serve.SessionInfo
	return info, doJSON(req, http.StatusOK, &info)
}

// deleteSession removes a session from a shard.
func deleteSession(base, id string) error {
	req, err := http.NewRequest(http.MethodDelete, base+"/api/sessions/"+id, nil)
	if err != nil {
		return err
	}
	return doJSON(req, http.StatusOK, nil)
}

// pauseSession suspends a session's tick loop.
func pauseSession(base, id string) error {
	req, err := http.NewRequest(http.MethodPost, base+"/api/sessions/"+id+"/pause", nil)
	if err != nil {
		return err
	}
	return doJSON(req, http.StatusOK, nil)
}

// resumeSession releases a paused session.
func resumeSession(base, id string) error {
	req, err := http.NewRequest(http.MethodPost, base+"/api/sessions/"+id+"/resume", nil)
	if err != nil {
		return err
	}
	return doJSON(req, http.StatusOK, nil)
}

// exportSession drives the migration source: pause + snapshot, returned
// as an encoded wire.Envelope stamped with the cluster key.
func exportSession(base, id, key string) ([]byte, error) {
	resp, err := ctlClient.Post(base+"/api/sessions/"+id+"/export?key="+key, "application/octet-stream", nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, shardError("export "+id, resp)
	}
	return io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
}

// importSession drives the migration target: restore the envelope's
// checkpoint paused.
func importSession(base string, env []byte) (serve.SessionInfo, error) {
	req, err := http.NewRequest(http.MethodPost, base+"/api/sessions/import", bytes.NewReader(env))
	if err != nil {
		return serve.SessionInfo{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var info serve.SessionInfo
	return info, doJSON(req, http.StatusCreated, &info)
}

// checkpointSession snapshots a session without pausing it — the
// periodic-checkpoint feed behind kill recovery. The session's info is
// fetched alongside the blob so the store records the tick and run
// state the checkpoint describes.
func checkpointSession(base, id string) ([]byte, serve.SessionInfo, error) {
	resp, err := ctlClient.Get(base + "/api/sessions/" + id + "/checkpoint")
	if err != nil {
		return nil, serve.SessionInfo{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, serve.SessionInfo{}, shardError("checkpoint "+id, resp)
	}
	blob, err := io.ReadAll(io.LimitReader(resp.Body, maxShardBody))
	if err != nil {
		return nil, serve.SessionInfo{}, err
	}
	info, err := getSession(base, id)
	if err != nil {
		return nil, serve.SessionInfo{}, err
	}
	return blob, info, nil
}

// restoreSession replays a stored checkpoint onto a shard (paused when
// startPaused) — the kill-recovery path.
func restoreSession(base string, blob []byte, startPaused bool) (serve.SessionInfo, error) {
	url := base + "/api/sessions/restore?start_paused=" + strconv.FormatBool(startPaused)
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(blob))
	if err != nil {
		return serve.SessionInfo{}, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	var info serve.SessionInfo
	return info, doJSON(req, http.StatusCreated, &info)
}

// drainShard toggles a shard's draining flag over HTTP (works for
// attached shards the front tier does not host in-process).
func drainShard(base string, on bool) error {
	req, err := http.NewRequest(http.MethodPost, base+"/api/drain?on="+strconv.FormatBool(on), nil)
	if err != nil {
		return err
	}
	return doJSON(req, http.StatusOK, nil)
}

// probeReady reports whether a shard answers /readyz with 200 — false
// for dead AND draining shards (neither should receive new placements).
func probeReady(base string) bool {
	resp, err := probeClient.Get(base + "/readyz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

// probeAlive reports whether a shard's control plane answers /healthz
// at all — true for draining shards (alive, just not placeable), false
// only when the process is gone. The health loop keys shard-death
// detection off this, not probeReady, so a drain never looks like a
// crash.
func probeAlive(base string) bool {
	resp, err := probeClient.Get(base + "/healthz")
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}
