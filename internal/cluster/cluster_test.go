package cluster

import (
	"context"
	"fmt"
	"io"
	"testing"
	"time"

	"mindful/internal/serve"
	"mindful/internal/serve/checkpoint"
)

func testSessionConfig() checkpoint.SessionConfig {
	return checkpoint.SessionConfig{
		Channels:     16,
		SampleRateHz: 2000,
		SampleBits:   10,
		QAMBits:      4,
		EbN0dB:       12,
		Seed:         11,
		Ticks:        50,
	}
}

// startCluster boots a front tier with n self-hosted shards on
// loopback. Background loops are off — the tests drive checkpoints and
// recovery explicitly so they stay deterministic.
func startCluster(t *testing.T, n int, shard serve.Config) *Cluster {
	t.Helper()
	c, err := New(Config{
		CheckpointInterval: -1,
		HealthInterval:     -1,
		Shard:              shard,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdownCluster(t, c) })
	for i := 0; i < n; i++ {
		if err := c.AddShard(fmt.Sprintf("shard-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// shutdownCluster tears a front tier (and its self-hosted shards) down.
func shutdownCluster(t *testing.T, c *Cluster) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	c.Shutdown(ctx)
}

// digests runs a session config uninterrupted in-process and returns
// the reference frame and decode digests every clustered assertion
// compares against.
func digests(t *testing.T, cfg checkpoint.SessionConfig) (frame, decode string) {
	t.Helper()
	p, err := checkpoint.NewPipeline(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < cfg.Ticks; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	res := p.Result()
	return fmt.Sprintf("%d", res.Digest), fmt.Sprintf("%d", res.DecodeDigest)
}

// waitKeyState polls the front tier until a session reaches a state.
func waitKeyState(t *testing.T, c *Cluster, key, state string) Info {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := c.SessionInfo(key)
		if err != nil {
			t.Fatal(err)
		}
		if info.State == state {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s stuck in %s, want %s", key, info.State, state)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitKeyTick polls until a session passes a tick.
func waitKeyTick(t *testing.T, c *Cluster, key string, tick int) Info {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		info, err := c.SessionInfo(key)
		if err != nil {
			t.Fatal(err)
		}
		if info.Tick >= tick || info.State == serve.StateDone {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s stuck at tick %d, want >= %d", key, info.Tick, tick)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestClusterPlacesAcrossShards: the front tier spreads sessions over
// the ring, routes per-key reads to the right shard, and deletes
// through.
func TestClusterPlacesAcrossShards(t *testing.T) {
	c := startCluster(t, 3, serve.Config{})
	keys := make([]string, 0, 24)
	for i := 0; i < 24; i++ {
		info, err := c.CreateSession(serve.CreateRequest{SessionConfig: testSessionConfig(), StartPaused: true})
		if err != nil {
			t.Fatal(err)
		}
		if info.Key == "" || info.Shard == "" || info.ID == "" {
			t.Fatalf("incomplete info %+v", info)
		}
		keys = append(keys, info.Key)
	}

	topo := c.Topology()
	if topo.Sessions != 24 {
		t.Fatalf("topology reports %d sessions, want 24", topo.Sessions)
	}
	placed := 0
	for _, sh := range topo.Shards {
		if sh.Sessions == 24 {
			t.Fatalf("all sessions landed on %s — no spreading", sh.ID)
		}
		placed += sh.Sessions
		if !sh.Ready {
			t.Fatalf("shard %s not ready", sh.ID)
		}
	}
	if placed != 24 {
		t.Fatalf("placement counts sum to %d, want 24", placed)
	}

	// Per-key fetch agrees with creation-time placement.
	for _, key := range keys {
		if _, err := c.SessionInfo(key); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := c.Sessions()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 24 {
		t.Fatalf("Sessions() lists %d, want 24", len(infos))
	}

	if err := c.DeleteSession(keys[0]); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SessionInfo(keys[0]); err == nil {
		t.Fatal("deleted session still resolves")
	}
	if _, err := c.CreateSession(serve.CreateRequest{}); err == nil {
		t.Fatal("invalid session config accepted")
	}
}

// TestClusterRedirectStreams: a subscriber that dials the front tier's
// data plane is MOVED to the owning shard and streams the full session.
func TestClusterRedirectStreams(t *testing.T) {
	c := startCluster(t, 3, serve.Config{})
	cfg := testSessionConfig()
	info, err := c.CreateSession(serve.CreateRequest{SessionConfig: cfg, StartPaused: true})
	if err != nil {
		t.Fatal(err)
	}
	conn, br, err := serve.SubscribeFollow(c.StreamAddr(), info.Key, "", 3)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := c.ResumeSession(info.Key); err != nil {
		t.Fatal(err)
	}
	records := 0
	for {
		if _, err := serve.ReadRecord(br); err != nil {
			if err != io.EOF {
				t.Fatal(err)
			}
			break
		}
		records++
	}
	if records != cfg.Ticks {
		t.Fatalf("streamed %d records through the redirect, want %d", records, cfg.Ticks)
	}
	// Unknown keys get a plain rejection, not a redirect loop.
	if _, _, err := serve.SubscribeFollow(c.StreamAddr(), "c999999", "", 3); err == nil {
		t.Fatal("unknown key subscribed")
	}
}

// TestClusterJoinMovesOnlyStolenKeys: adding a shard rebalances exactly
// the sessions the ring now assigns to the joiner; everything else
// stays put — the live counterpart of the ring's minimal-disruption
// property.
func TestClusterJoinMovesOnlyStolenKeys(t *testing.T) {
	c := startCluster(t, 2, serve.Config{})
	before := make(map[string]string)
	for i := 0; i < 16; i++ {
		info, err := c.CreateSession(serve.CreateRequest{SessionConfig: testSessionConfig(), StartPaused: true})
		if err != nil {
			t.Fatal(err)
		}
		before[info.Key] = info.Shard
	}

	if err := c.AddShard("shard-late"); err != nil {
		t.Fatal(err)
	}

	moved := 0
	for key, was := range before {
		info, err := c.SessionInfo(key)
		if err != nil {
			t.Fatal(err)
		}
		if info.Shard != was {
			if info.Shard != "shard-late" {
				t.Fatalf("session %s moved %s->%s on a join — not minimal", key, was, info.Shard)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("join moved no sessions (16 keys, 3 shards — statistically impossible)")
	}
	// Paused sessions must still be paused after their migration: the
	// rebalance must not silently start them.
	for key := range before {
		info, err := c.SessionInfo(key)
		if err != nil {
			t.Fatal(err)
		}
		if info.State != serve.StatePaused {
			t.Fatalf("session %s is %s after rebalance, want still paused", key, info.State)
		}
	}
}

// TestClusterRemoveShardDrains: removing a shard migrates its sessions
// off before the member disappears; no session is lost.
func TestClusterRemoveShardDrains(t *testing.T) {
	c := startCluster(t, 3, serve.Config{})
	keys := make([]string, 0, 12)
	for i := 0; i < 12; i++ {
		info, err := c.CreateSession(serve.CreateRequest{SessionConfig: testSessionConfig(), StartPaused: true})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, info.Key)
	}
	if err := c.RemoveShard("shard-1"); err != nil {
		t.Fatal(err)
	}
	topo := c.Topology()
	if len(topo.Shards) != 2 {
		t.Fatalf("%d shards after remove, want 2", len(topo.Shards))
	}
	if topo.Sessions != 12 {
		t.Fatalf("%d sessions after remove, want all 12", topo.Sessions)
	}
	for _, key := range keys {
		info, err := c.SessionInfo(key)
		if err != nil {
			t.Fatal(err)
		}
		if info.Shard == "shard-1" {
			t.Fatalf("session %s still on the removed shard", key)
		}
	}
	if err := c.RemoveShard("shard-1"); err == nil {
		t.Fatal("removing a removed shard succeeded")
	}
}
