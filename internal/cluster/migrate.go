package cluster

import (
	"errors"
	"fmt"
	"time"

	"mindful/internal/cluster/store"
	"mindful/internal/cluster/wire"
	"mindful/internal/obs"
	"mindful/internal/serve"
)

// Live migration is a checkpoint transfer with a strict order that
// keeps the split-brain invariant — a session never executes on two
// shards at once:
//
//  1. export on the source pauses the session at its next tick boundary
//     and snapshots it (blob + tick, one lock hold);
//  2. import on the target restores the checkpoint PAUSED and rejects a
//     tick mismatch;
//  3. the routing table flips to the target (new subscribers and MOVED
//     redirects now land there);
//  4. the paused source copy is deleted;
//  5. only then does the target resume.
//
// Between 1 and 5 nothing executes — that window is the migration
// blackout, measured here (pause→resume wall time) and by the cluster
// harness from the subscriber side (last frame before the move → first
// frame after). If the import fails, the paused source is resumed and
// the migration aborts with the session intact.
//
// The same checkpoint restore primitive, fed by the front tier's
// periodic per-session checkpoints, recovers the sessions of a shard
// that dies without warning: RecoverShard drops the corpse from the
// ring and replays each stored checkpoint onto the key's new owner.
// Recovery refuses to run against a shard that still answers /healthz —
// restoring a session whose original is alive would be the very
// split-brain migration is ordered to prevent.

// ErrMigrating marks a session already mid-migration.
var ErrMigrating = errors.New("cluster: session is already migrating")

// Migrate moves one session to the named shard and waits for it to run
// there. Migrating a session to the shard it is on is a no-op.
func (c *Cluster) Migrate(key, targetID string) error {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	return c.migrateKey(key, targetID)
}

// migrateKey is the coordinator body. Callers hold topoMu.
func (c *Cluster) migrateKey(key, targetID string) error {
	c.mu.Lock()
	p, ok := c.table[key]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no session %q", key)
	}
	if c.migrating[key] {
		c.mu.Unlock()
		return ErrMigrating
	}
	if p.ShardID == targetID {
		c.mu.Unlock()
		return nil
	}
	src, ok := c.shards[p.ShardID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: session %q placed on missing shard %q", key, p.ShardID)
	}
	dst, ok := c.shards[targetID]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no shard %q", targetID)
	}
	c.migrating[key] = true
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		delete(c.migrating, key)
		c.mu.Unlock()
	}()

	// Migration preserves the session's run state: a deliberately paused
	// session arrives paused; anything else (running, or already done —
	// a done session restores paused at its final tick and the resume
	// immediately re-completes it) is resumed on the target.
	pre, err := c.client.getSession(src.CtlBase, p.LocalID)
	if err != nil {
		c.mMigFailed.Inc()
		return fmt.Errorf("cluster: inspect %s on %s: %w", key, src.ID, err)
	}
	wasRunning := pre.State != serve.StatePaused

	start := time.Now()
	envBuf, err := c.client.exportSession(src.CtlBase, p.LocalID, key)
	if err != nil {
		c.mMigFailed.Inc()
		// The export may have paused the source before its answer was
		// lost; an abort must not leave a should-run session frozen.
		c.abortResume(key, src, p.LocalID, wasRunning, 0)
		return fmt.Errorf("cluster: export %s from %s: %w", key, src.ID, err)
	}
	env, err := wire.Decode(envBuf)
	if err != nil {
		// The source produced a malformed envelope; it is still paused —
		// resume it so the abort leaves the session running where it was.
		c.abortResume(key, src, p.LocalID, wasRunning, 0)
		c.mMigFailed.Inc()
		return fmt.Errorf("cluster: export %s produced bad envelope: %w", key, err)
	}

	info, err := c.client.importSession(dst.CtlBase, envBuf)
	if err != nil {
		c.abortResume(key, src, p.LocalID, wasRunning, env.Tick)
		c.mMigFailed.Inc()
		return fmt.Errorf("cluster: import %s onto %s: %w", key, targetID, err)
	}

	// Routing flips before the source copy disappears: a subscriber that
	// reconnects mid-window is redirected to the target, where the
	// session sits paused until step 5.
	c.mu.Lock()
	c.table[key] = placement{ShardID: targetID, LocalID: info.ID, WantRun: p.WantRun}
	c.mu.Unlock()
	c.storeCkpt(key, storedCkpt{Blob: env.Blob, Tick: int(env.Tick), Running: wasRunning})

	// Delete the paused source BEFORE resuming the target: the one
	// ordering that makes two-shards-running impossible. A failed delete
	// (the source just died, or every retry failed) leaves at most a
	// paused orphan — the janitor's scan deletes it once the shard
	// answers again.
	if err := c.client.deleteSession(src.CtlBase, p.LocalID); err != nil {
		c.event("migrate_orphan", key, src.ID,
			obs.EventAttr{Key: "tick", Val: float64(env.Tick)})
	}
	if wasRunning {
		if err := c.client.resumeSession(dst.CtlBase, info.ID); err != nil {
			// A session exported at its final tick restores already done;
			// anything else leaves the target paused for the janitor.
			if cur, gerr := c.client.getSession(dst.CtlBase, info.ID); gerr != nil || cur.State != serve.StateDone {
				c.mMigFailed.Inc()
				c.event("migrate_stuck", key, "target resume failed; janitor will converge",
					obs.EventAttr{Key: "tick", Val: float64(env.Tick)})
				return fmt.Errorf("cluster: resume %s on %s: %w", key, targetID, err)
			}
		}
	}

	blackoutMs := float64(time.Since(start).Microseconds()) / 1e3
	c.mBlackout.Observe(blackoutMs)
	c.mMigrations.Inc()
	c.event("migrate", key, src.ID+"->"+targetID,
		obs.EventAttr{Key: "tick", Val: float64(env.Tick)},
		obs.EventAttr{Key: "blackout_ms", Val: blackoutMs})
	return nil
}

// abortResume is a failed migration's compensation: the source copy
// may be paused (the export ran) while the control plane wants it
// running. The resume is retried — once through the client's own retry
// budget, then one more full round — and a compensation that still
// fails is handed to the janitor: the key stays routed with
// WantRun intent intact, so the next reconcile pass converges it
// instead of the session staying frozen forever.
func (c *Cluster) abortResume(key string, src *shard, localID string, wasRunning bool, tick uint64) {
	if !wasRunning {
		return // deliberately paused; the abort leaves it as intended
	}
	var err error
	for round := 0; round < 2; round++ {
		if err = c.client.resumeSession(src.CtlBase, localID); err == nil {
			return
		}
	}
	c.event("migrate_stuck", key, "abort resume failed on "+src.ID+"; janitor will converge",
		obs.EventAttr{Key: "tick", Val: float64(tick)})
}

// Rebalance migrates every session whose routing disagrees with the
// current ring onto its ring owner. Returns the number moved.
func (c *Cluster) Rebalance() (int, error) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	n, err := c.rebalance()
	if err != nil {
		return n, err
	}
	return n, nil
}

// rebalanceLocked is the join/leave path's rebalance (topoMu held).
func (c *Cluster) rebalanceLocked() error {
	_, err := c.rebalance()
	return err
}

func (c *Cluster) rebalance() (int, error) {
	c.mu.Lock()
	ring := c.ring
	moves := make(map[string]string)
	for key, p := range c.table {
		if owner := ring.Owner(key); owner != p.ShardID {
			moves[key] = owner
		}
	}
	c.mu.Unlock()

	keys := make([]string, 0, len(moves))
	for key := range moves {
		keys = append(keys, key)
	}
	sortStrings(keys)

	var firstErr error
	moved := 0
	for _, key := range keys {
		if err := c.migrateKey(key, moves[key]); err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		moved++
	}
	c.mRebalances.Inc()
	c.event("rebalance", "", "",
		obs.EventAttr{Key: "moved", Val: float64(moved)},
		obs.EventAttr{Key: "sessions", Val: float64(len(keys))})
	return moved, firstErr
}

// CheckpointNow snapshots every routed session into the front tier's
// recovery store — the state a dead shard's sessions restart from.
// Sessions that cannot snapshot right now (mid-migration, failed) are
// skipped; their previous checkpoint stands.
func (c *Cluster) CheckpointNow() int {
	c.mu.Lock()
	type target struct {
		key     string
		localID string
		base    string
	}
	targets := make([]target, 0, len(c.table))
	for key, p := range c.table {
		if c.migrating[key] {
			continue
		}
		if sh, ok := c.shards[p.ShardID]; ok {
			targets = append(targets, target{key, p.LocalID, sh.CtlBase})
		}
	}
	c.mu.Unlock()

	stored := 0
	for _, t := range targets {
		blob, info, err := c.client.checkpointSession(t.base, t.localID)
		if err != nil {
			continue
		}
		ck := storedCkpt{
			Blob: blob,
			Tick: info.Tick,
			// Same rule as migration: only a deliberate pause survives
			// recovery; running and done sessions restart running (a
			// done session re-completes on its first resumed step).
			Running: info.State != serve.StatePaused,
		}
		c.mu.Lock()
		// The placement may have moved while we snapshotted; only store
		// a checkpoint that still describes the routed copy.
		ok := false
		if p, has := c.table[t.key]; has && p.LocalID == t.localID {
			c.ckpts[t.key] = ck
			ok = true
			stored++
		}
		c.mu.Unlock()
		if ok && c.store != nil {
			c.store.Put(t.key, store.Record{Blob: ck.Blob, Tick: ck.Tick, Running: ck.Running})
		}
	}
	return stored
}

// checkpointLoop runs CheckpointNow on the configured cadence.
func (c *Cluster) checkpointLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.CheckpointNow()
		}
	}
}

// healthLoop probes every shard's /healthz and recovers the ones that
// stop answering. Two consecutive failed probes are required so one
// dropped connection cannot trigger a recovery storm.
func (c *Cluster) healthLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.HealthInterval)
	defer t.Stop()
	failed := make(map[string]int)
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.mu.Lock()
			bases := make(map[string]string, len(c.shards))
			for id, sh := range c.shards {
				bases[id] = sh.CtlBase
			}
			c.mu.Unlock()
			for id, base := range bases {
				if c.client.probeAlive(base) {
					delete(failed, id)
					continue
				}
				failed[id]++
				if failed[id] >= 2 {
					delete(failed, id)
					c.RecoverShard(id)
				}
			}
		}
	}
}

// RecoverShard declares a shard dead and restores its sessions on the
// survivors from the front tier's stored checkpoints. It refuses while
// the shard still answers /healthz: recovering a live shard would run
// its sessions twice. Returns recovered and lost counts.
func (c *Cluster) RecoverShard(id string) (recovered, lost int, err error) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()

	c.mu.Lock()
	sh, ok := c.shards[id]
	c.mu.Unlock()
	if !ok {
		return 0, 0, fmt.Errorf("cluster: no shard %q", id)
	}
	// Confirm death with multiple probes: under injected network chaos a
	// single failed probe can be the network lying, and recovering a live
	// shard would run its sessions twice. Any success refuses recovery.
	alive := false
	for i := 0; i < 3 && !alive; i++ {
		alive = c.client.probeAlive(sh.CtlBase)
	}
	if alive {
		return 0, 0, fmt.Errorf("cluster: shard %q is alive; refusing recovery (split-brain guard)", id)
	}

	// Drop the corpse from the ring first so restored keys hash onto
	// survivors only.
	c.mu.Lock()
	ids := make([]string, 0, len(c.shards)-1)
	for sid := range c.shards {
		if sid != id {
			ids = append(ids, sid)
		}
	}
	ring, rerr := NewRing(ids, c.cfg.VirtualNodes)
	if rerr != nil {
		c.mu.Unlock()
		return 0, 0, rerr
	}
	c.ring = ring
	delete(c.shards, id)
	if c.mShards != nil {
		c.mShards.Add(-1)
	}
	type orphan struct {
		key  string
		ckpt storedCkpt
		has  bool
	}
	orphans := make([]orphan, 0)
	for key, p := range c.table {
		if p.ShardID != id {
			continue
		}
		ck, has := c.ckpts[key]
		orphans = append(orphans, orphan{key, ck, has})
	}
	// A restarted front tier reloads its durable checkpoints but not the
	// memory-only routing table, so the crashed generation's sessions
	// show up here as stored checkpoints with no routing entry. Declaring
	// a shard dead is the signal that the old generation is gone: adopt
	// every unrouted checkpoint alongside the shard's routed orphans. In
	// steady state the unrouted set is empty (forget drops a key's
	// checkpoint with its routing entry), so this only fires after a
	// restart. A surviving shard may still host the pre-crash copy of an
	// adopted key; that copy is unaddressable without the old table and
	// the janitor's orphan scan removes it.
	for key, ck := range c.ckpts {
		if _, routed := c.table[key]; !routed {
			orphans = append(orphans, orphan{key, ck, true})
		}
	}
	c.mu.Unlock()

	c.mShardDown.Inc()
	c.event("shard_down", id, "",
		obs.EventAttr{Key: "orphans", Val: float64(len(orphans))},
		obs.EventAttr{Key: "shards", Val: float64(ring.Size())})

	if ring.Size() == 0 {
		for _, o := range orphans {
			c.forget(o.key)
			c.mLost.Inc()
		}
		return 0, len(orphans), fmt.Errorf("cluster: shard %q was the last member; %d sessions lost", id, len(orphans))
	}

	for _, o := range orphans {
		if !o.has {
			c.forget(o.key)
			c.mLost.Inc()
			c.event("session_lost", o.key, id)
			lost++
			continue
		}
		owner := ring.Owner(o.key)
		c.mu.Lock()
		dst := c.shards[owner]
		c.mu.Unlock()
		info, err := c.client.restoreSession(dst.CtlBase, o.ckpt.Blob, true)
		if err != nil {
			c.forget(o.key)
			c.mLost.Inc()
			c.event("session_lost", o.key, "restore failed on "+owner)
			lost++
			continue
		}
		c.mu.Lock()
		c.table[o.key] = placement{ShardID: owner, LocalID: info.ID, WantRun: o.ckpt.Running}
		c.mu.Unlock()
		if o.ckpt.Running {
			if err := c.client.resumeSession(dst.CtlBase, info.ID); err != nil {
				if cur, gerr := c.client.getSession(dst.CtlBase, info.ID); gerr != nil || cur.State != serve.StateDone {
					// The copy is restored and routed, just paused: count it
					// recovered and leave the resume to the janitor instead
					// of declaring it lost.
					c.event("session_stuck", o.key, "resume failed on "+owner)
				}
			}
		}
		c.mRecovered.Inc()
		c.event("session_recover", o.key, id+"->"+owner,
			obs.EventAttr{Key: "tick", Val: float64(o.ckpt.Tick)})
		recovered++
	}
	return recovered, lost, nil
}
