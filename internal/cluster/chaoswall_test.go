package cluster

import (
	"fmt"
	"testing"
	"time"

	"mindful/internal/chaosnet"
	"mindful/internal/serve"
)

// The chaos determinism wall: under a seeded fault schedule on the
// control plane, every migration either completes or fully reconciles,
// the invariant auditor ends clean (exactly one copy per session key,
// in the intended run state), and every surviving session's digest is
// byte-identical to an uninterrupted run — injected network faults may
// cost time and retries, never correctness. Runs under -race in CI.

const (
	wallSeed      = 42
	wallIntensity = 1.5
)

// chaosCluster boots a front tier whose control-plane client rides a
// seeded chaosnet transport, with the janitor on a tight cadence.
func chaosCluster(t *testing.T, shards int) (*Cluster, *chaosnet.Transport) {
	t.Helper()
	tr, err := chaosnet.NewTransport(nil, chaosnet.DefaultProfile(), wallSeed)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetIntensity(0) // fault-free while the fixture assembles
	c, err := New(Config{
		CheckpointInterval: -1,
		HealthInterval:     -1,
		ReconcileInterval:  25 * time.Millisecond,
		Transport:          tr,
		RetrySeed:          wallSeed,
		Shard:              serve.Config{TickInterval: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdownCluster(t, c) })
	for i := 0; i < shards; i++ {
		if err := c.AddShard(fmt.Sprintf("shard-%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return c, tr
}

// waitKeyStateChaos is waitKeyState with chaos manners: a transient
// control-plane error is retried, not fatal.
func waitKeyStateChaos(t *testing.T, c *Cluster, key, state string) Info {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		info, err := c.SessionInfo(key)
		if err == nil && info.State == state {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("session %s never reached %s (last: %+v, err=%v)", key, state, info, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestChaosDeterminismWall(t *testing.T) {
	c, tr := chaosCluster(t, 3)
	cfg := testSessionConfig()
	cfg.Ticks = 600
	wantFrame, _ := digests(t, cfg)

	keys := make([]string, 0, 6)
	for i := 0; i < 6; i++ {
		info, err := c.CreateSession(serve.CreateRequest{SessionConfig: cfg})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, info.Key)
	}
	for _, key := range keys {
		waitKeyTick(t, c, key, 5)
	}

	// Storm on: every control-plane call from here — exports, imports,
	// table flips' deletes, compensating resumes — can be dropped,
	// reset, cut, delayed, or caught in a partition window, on a
	// schedule fully determined by (seed, op, attempt).
	tr.SetIntensity(wallIntensity)

	// Two migration rounds per key. A failed Migrate is acceptable —
	// the abort path plus the janitor owe us a converged session — but
	// the error must never leave a key unrouted.
	attempted, failed := 0, 0
	for round := 0; round < 2; round++ {
		for _, key := range keys {
			info, err := c.SessionInfo(key)
			if err != nil {
				continue // transient read failure; the key stays where it is
			}
			if info.State == serve.StateDone {
				continue
			}
			target := ""
			for _, id := range []string{"shard-0", "shard-1", "shard-2"} {
				if id != info.Shard {
					target = id
					break
				}
			}
			attempted++
			if err := c.Migrate(key, target); err != nil {
				failed++
			}
			if _, _, err := c.lookup(key); err != nil {
				t.Fatalf("migration left %s unrouted: %v", key, err)
			}
		}
	}
	t.Logf("migrations: %d attempted, %d failed (reconciled); faults: %+v",
		attempted, failed, tr.Stats())

	// Storm off, then require convergence: the janitor must repair every
	// stranded state until the auditor finds exactly one copy per key in
	// its intended run state — no orphans, no stuck pauses, no ghosts.
	tr.SetIntensity(0)
	deadline := time.Now().Add(15 * time.Second)
	for {
		c.ReconcileNow()
		rep, err := c.AuditInvariant()
		if err == nil && rep.Ok() && rep.Routed == len(keys) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("never converged: %+v err=%v", rep, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Correctness floor: every session finishes bit-identical to an
	// uninterrupted run. Faults cost retries and blackout, never state.
	for _, key := range keys {
		done := waitKeyStateChaos(t, c, key, serve.StateDone)
		if done.Digest != wantFrame {
			t.Fatalf("session %s digest %s under chaos, want %s", key, done.Digest, wantFrame)
		}
	}

	if v := c.mRetries.Value(); v == 0 && failed == 0 && tr.Stats().Drops == 0 {
		t.Fatal("the storm injected nothing; the wall proved nothing")
	}
}

// TestChaosWallFaultFreePins: at intensity 0 the chaos transport must
// be a perfect no-op — the wall's baseline is byte-identical to a run
// with no transport injection at all.
func TestChaosWallFaultFreePins(t *testing.T) {
	c, tr := chaosCluster(t, 2) // intensity stays 0
	cfg := testSessionConfig()
	cfg.Ticks = 80
	wantFrame, _ := digests(t, cfg)

	info, err := c.CreateSession(serve.CreateRequest{SessionConfig: cfg})
	if err != nil {
		t.Fatal(err)
	}
	target := "shard-0"
	if cur, err := c.SessionInfo(info.Key); err == nil && cur.Shard == "shard-0" {
		target = "shard-1"
	}
	if err := c.Migrate(info.Key, target); err != nil {
		t.Fatal(err)
	}
	done := waitKeyState(t, c, info.Key, serve.StateDone)
	if done.Digest != wantFrame {
		t.Fatalf("digest %s at intensity 0, want %s", done.Digest, wantFrame)
	}
	st := tr.Stats()
	if st.Drops != 0 || st.Resets != 0 || st.Cuts != 0 || st.Delays != 0 || st.Partitioned != 0 {
		t.Fatalf("intensity 0 injected faults: %+v", st)
	}
	if st.Requests == 0 {
		t.Fatal("transport saw no traffic; the pin proved nothing")
	}
}
