package cluster

import (
	"fmt"
	"time"

	"mindful/internal/obs"
	"mindful/internal/serve"
)

// The janitor is the cluster's reconciliation loop: migrations and
// recoveries are multi-step protocols over a lossy network, and any
// step's answer can vanish after the effect landed. Instead of making
// every coordinator path handle every partial outcome, the coordinator
// records intent (placement.WantRun) and the janitor converges actual
// state toward it. The states a single injected fault can strand:
//
//   - stuck pause: the routed copy is paused but the control plane
//     wants it running (a migration aborted after its export paused the
//     source, and the compensating resume failed too) → resume it;
//   - wrong run: the routed copy is running but a pause was requested
//     (the pause's answer was lost mid-compensation) → pause it;
//   - missing copy: the routed shard definitively answers "no session"
//     (an import landed nowhere, or a delete raced a crash) → restore
//     the stored checkpoint onto the key's ring owner;
//   - routed to a ghost: the routing entry names a shard no longer in
//     the member set → same restore path;
//   - orphan copy: a shard hosts a session no routing entry points at
//     (a migration's source delete failed) → delete it, after it stays
//     orphaned for two consecutive passes — the grace pass keeps an
//     in-flight create (registered on the shard, not yet in the table)
//     from being reaped.
//
// ReconcileNow holds topoMu, so a pass never observes a migration's
// intermediate states — every repair acts on a settled, stranded state.

// janitorLoop runs ReconcileNow on the configured cadence.
func (c *Cluster) janitorLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.ReconcileInterval)
	defer t.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-t.C:
			c.ReconcileNow()
		}
	}
}

// ReconcileNow runs one reconciliation pass and returns the number of
// stuck states repaired.
func (c *Cluster) ReconcileNow() int {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()
	c.mReconciles.Inc()

	repaired := 0
	repaired += c.reconcileRouted()
	repaired += c.reconcileOrphans()
	if repaired > 0 {
		c.mRepaired.Add(int64(repaired))
	}
	return repaired
}

// reconcileRouted converges every routing entry: the routed copy must
// exist and its run state must match the recorded intent. Callers hold
// topoMu.
func (c *Cluster) reconcileRouted() int {
	c.mu.Lock()
	type entry struct {
		key string
		p   placement
		sh  *shard // nil when the placement names a ghost shard
	}
	entries := make([]entry, 0, len(c.table))
	for key, p := range c.table {
		entries = append(entries, entry{key, p, c.shards[p.ShardID]})
	}
	c.mu.Unlock()
	keys := make([]string, 0, len(entries))
	byKey := make(map[string]entry, len(entries))
	for _, e := range entries {
		keys = append(keys, e.key)
		byKey[e.key] = e
	}
	sortStrings(keys)

	repaired := 0
	for _, key := range keys {
		e := byKey[key]
		if e.sh == nil {
			if c.restoreOnOwner(e.key, e.p.WantRun, "routed to removed shard") {
				repaired++
			}
			continue
		}
		info, err := c.client.getSession(e.sh.CtlBase, e.p.LocalID)
		if err != nil {
			if !isNotFound(err) {
				continue // shard unreachable: the health loop's case, not ours
			}
			if c.restoreOnOwner(e.key, e.p.WantRun, "routed copy missing on "+e.sh.ID) {
				repaired++
			}
			continue
		}
		switch {
		case info.State == serve.StatePaused && e.p.WantRun:
			if c.client.resumeSession(e.sh.CtlBase, e.p.LocalID) == nil {
				c.event("reconcile_resume", e.key, e.sh.ID,
					obs.EventAttr{Key: "tick", Val: float64(info.Tick)})
				repaired++
			}
		case info.State == serve.StateRunning && !e.p.WantRun:
			if c.client.pauseSession(e.sh.CtlBase, e.p.LocalID) == nil {
				c.event("reconcile_pause", e.key, e.sh.ID,
					obs.EventAttr{Key: "tick", Val: float64(info.Tick)})
				repaired++
			}
		}
	}
	return repaired
}

// restoreOnOwner replays a key's stored checkpoint onto its current
// ring owner — the repair for a routing entry whose copy is gone. No
// checkpoint means the session is unrecoverable: forget it, count it
// lost. Callers hold topoMu.
func (c *Cluster) restoreOnOwner(key string, wantRun bool, why string) bool {
	c.mu.Lock()
	ck, has := c.ckpts[key]
	var dst *shard
	if c.ring.Size() > 0 {
		dst = c.shards[c.ring.Owner(key)]
	}
	c.mu.Unlock()
	if !has || dst == nil {
		c.forget(key)
		c.mLost.Inc()
		c.event("session_lost", key, why)
		return false
	}
	info, err := c.client.restoreSession(dst.CtlBase, ck.Blob, true)
	if err != nil {
		// Leave the entry for the next pass: the owner may be mid-chaos.
		return false
	}
	c.mu.Lock()
	c.table[key] = placement{ShardID: dst.ID, LocalID: info.ID, WantRun: wantRun}
	c.mu.Unlock()
	if wantRun {
		if err := c.client.resumeSession(dst.CtlBase, info.ID); err != nil {
			if cur, gerr := c.client.getSession(dst.CtlBase, info.ID); gerr != nil || cur.State != serve.StateDone {
				// Restored but still paused: the next pass's stuck-pause
				// case picks it up.
				c.event("reconcile_restore", key, dst.ID+" (paused: "+why+")",
					obs.EventAttr{Key: "tick", Val: float64(ck.Tick)})
				return true
			}
		}
	}
	c.event("reconcile_restore", key, dst.ID+" ("+why+")",
		obs.EventAttr{Key: "tick", Val: float64(ck.Tick)})
	return true
}

// reconcileOrphans deletes shard-hosted copies no routing entry points
// at. An orphan must be seen in two consecutive passes before it is
// deleted: a create that has registered on its shard but not yet in the
// routing table looks orphaned for exactly one observation. Callers
// hold topoMu.
func (c *Cluster) reconcileOrphans() int {
	c.mu.Lock()
	shards := make([]*shard, 0, len(c.shards))
	for _, sh := range c.shards {
		shards = append(shards, sh)
	}
	c.mu.Unlock()

	repaired := 0
	next := make(map[string]bool)
	for _, sh := range shards {
		infos, err := c.client.listSessions(sh.CtlBase)
		if err != nil {
			continue // unreachable shard: nothing to judge this pass
		}
		// The routed set is read AFTER the listing: any create whose
		// shard-side effect we can see has either registered by now or
		// will earn its grace pass below.
		c.mu.Lock()
		routed := make(map[string]bool)
		for _, p := range c.table {
			if p.ShardID == sh.ID {
				routed[p.LocalID] = true
			}
		}
		c.mu.Unlock()
		for _, info := range infos {
			if routed[info.ID] {
				continue
			}
			mark := sh.ID + "/" + info.ID
			if !c.orphanSuspects[mark] {
				next[mark] = true // first sighting: grace pass
				continue
			}
			if c.client.deleteSession(sh.CtlBase, info.ID) == nil {
				c.event("reconcile_orphan", mark, "deleted",
					obs.EventAttr{Key: "tick", Val: float64(info.Tick)})
				repaired++
			} else {
				next[mark] = true // still there next pass
			}
		}
	}
	c.orphanSuspects = next
	return repaired
}

// AuditReport is AuditInvariant's verdict on the cluster's core
// invariant: exactly one copy per routed session key, in the run state
// the control plane intends.
type AuditReport struct {
	// Routed is the routing-table size at audit time.
	Routed int
	// Copies counts shard-hosted session copies observed.
	Copies int
	// Violations describes every invariant breach found; empty means
	// the invariant holds.
	Violations []string
}

// Ok reports whether the invariant holds.
func (r AuditReport) Ok() bool { return len(r.Violations) == 0 }

// AuditInvariant checks "exactly one running copy per session key"
// across the whole cluster: every routing entry's copy exists on its
// shard in the intended state (Done is terminal and always fine), and
// no shard hosts a copy the routing table does not know. It holds
// topoMu so it never reads mid-migration state. Probes every shard —
// an unreachable shard fails the audit rather than hiding its copies.
func (c *Cluster) AuditInvariant() (AuditReport, error) {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()

	c.mu.Lock()
	shards := make([]*shard, 0, len(c.shards))
	for _, sh := range c.shards {
		shards = append(shards, sh)
	}
	table := make(map[string]placement, len(c.table))
	for k, p := range c.table {
		table[k] = p
	}
	c.mu.Unlock()

	var rep AuditReport
	rep.Routed = len(table)
	hosted := make(map[string]map[string]serve.SessionInfo, len(shards)) // shard → localID → info
	for _, sh := range shards {
		infos, err := c.client.listSessions(sh.CtlBase)
		if err != nil {
			return rep, fmt.Errorf("cluster: audit: shard %s unreachable: %w", sh.ID, err)
		}
		m := make(map[string]serve.SessionInfo, len(infos))
		for _, info := range infos {
			m[info.ID] = info
			rep.Copies++
		}
		hosted[sh.ID] = m
	}

	referenced := make(map[string]bool, len(table)) // "shard/local" routed copies
	keys := make([]string, 0, len(table))
	for key := range table {
		keys = append(keys, key)
	}
	sortStrings(keys)
	for _, key := range keys {
		p := table[key]
		m, ok := hosted[p.ShardID]
		if !ok {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s routed to unknown shard %s", key, p.ShardID))
			continue
		}
		info, ok := m[p.LocalID]
		if !ok {
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s routed to %s/%s but no such copy", key, p.ShardID, p.LocalID))
			continue
		}
		referenced[p.ShardID+"/"+p.LocalID] = true
		switch info.State {
		case serve.StateDone:
			// Terminal: intent no longer applies.
		case serve.StateRunning:
			if !p.WantRun {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s running on %s but intent is paused", key, p.ShardID))
			}
		case serve.StatePaused:
			if p.WantRun {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("%s paused on %s but intent is running", key, p.ShardID))
			}
		default:
			rep.Violations = append(rep.Violations,
				fmt.Sprintf("%s on %s in state %s", key, p.ShardID, info.State))
		}
	}
	for _, sh := range shards {
		for id := range hosted[sh.ID] {
			if !referenced[sh.ID+"/"+id] {
				rep.Violations = append(rep.Violations,
					fmt.Sprintf("orphan copy %s/%s (no routing entry)", sh.ID, id))
			}
		}
	}
	return rep, nil
}
