package cluster

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"time"
)

// The front tier's data plane is a pure redirector: a subscriber dials
// it with the same SUB line it would send a gateway, and the answer is
// always MOVED <owning-shard-stream-addr> <local-session-id> (or ERR
// for unknown keys). Frames never flow through the front tier — after
// one round trip the subscriber is connected straight to the shard, so
// the front tier adds no per-frame latency and no bandwidth bottleneck.
// serve.SubscribeFollow performs the hop automatically; it also heals
// subscribers after a migration or shard death, because re-dialing the
// front tier re-resolves the key against the current routing table.
func (c *Cluster) serveRedirect(conn net.Conn) {
	defer c.wg.Done()
	defer conn.Close()
	br := bufio.NewReader(conn)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := br.ReadString('\n')
	if err != nil {
		return
	}
	// The deadline exists to bound the handshake, not the connection:
	// left armed, it would sever the write side mid-answer if the MOVED
	// reply ever blocked past it.
	conn.SetReadDeadline(time.Time{})
	fields := strings.Fields(line)
	if (len(fields) != 2 && len(fields) != 3) || fields[0] != "SUB" {
		fmt.Fprintf(conn, "ERR expected SUB <session-key> [frames|decoded]\n")
		return
	}
	addr, localID, ok := c.Resolve(fields[1])
	if !ok {
		fmt.Fprintf(conn, "ERR cluster: no session %q\n", fields[1])
		return
	}
	c.mRedirects.Inc()
	fmt.Fprintf(conn, "MOVED %s %s\n", addr, localID)
}
