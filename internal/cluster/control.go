package cluster

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"mindful/internal/serve"
)

// The front tier's control plane mirrors the gateway's JSON/HTTP shape
// so clients move between single-gateway and clustered deployments by
// changing an address. Session routes take cluster keys (c000001) and
// proxy to the owning shard; topology routes manage the shard set.
//
//	GET    /healthz                       liveness
//	GET    /readyz                        ready when ≥1 shard is placeable
//	GET    /api/cluster                   topology: shards, liveness, placements
//	POST   /api/shards                    join: {"id":...} self-hosts; +{"ctl","stream"} attaches
//	DELETE /api/shards/{id}               drain and remove a shard (sessions migrate off)
//	POST   /api/shards/{id}/kill          chaos: SIGKILL-equivalent on a self-hosted shard
//	POST   /api/shards/{id}/recover       declare a dead shard down and restore its sessions
//	POST   /api/rebalance                 re-place every session onto its ring owner
//	POST   /api/checkpoint                snapshot every session into the recovery store
//	POST   /api/sessions                  create on the key's ring owner
//	GET    /api/sessions                  list all routed sessions
//	GET    /api/sessions/{key}            fetch one session via its shard
//	DELETE /api/sessions/{key}            delete from its shard and the table
//	POST   /api/sessions/{key}/pause      proxy pause
//	POST   /api/sessions/{key}/resume     proxy resume
//	POST   /api/sessions/{key}/migrate    live-migrate (?target=<shard-id>)

// writeJSON writes a JSON response body.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeErr writes a plain-text error body (matching the gateway's
// error shape).
func writeErr(w http.ResponseWriter, status int, err error) {
	http.Error(w, err.Error(), status)
}

// joinRequest is the POST /api/shards body.
type joinRequest struct {
	ID string `json:"id"`
	// Ctl and Stream attach an externally running gateway; empty means
	// self-host a new one in the front-tier process.
	Ctl    string `json:"ctl"`
	Stream string `json:"stream"`
}

func (c *Cluster) controlMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		for _, sh := range c.Topology().Shards {
			if sh.Ready {
				w.WriteHeader(http.StatusOK)
				return
			}
		}
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	mux.HandleFunc("GET /api/cluster", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, c.Topology())
	})
	mux.HandleFunc("POST /api/shards", c.handleJoin)
	mux.HandleFunc("DELETE /api/shards/{id}", c.handleLeave)
	mux.HandleFunc("POST /api/shards/{id}/kill", c.handleKill)
	mux.HandleFunc("POST /api/shards/{id}/recover", c.handleRecover)
	mux.HandleFunc("POST /api/rebalance", func(w http.ResponseWriter, r *http.Request) {
		moved, err := c.Rebalance()
		if err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]int{"moved": moved})
	})
	mux.HandleFunc("POST /api/checkpoint", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]int{"stored": c.CheckpointNow()})
	})
	mux.HandleFunc("POST /api/sessions", c.handleCreate)
	mux.HandleFunc("GET /api/sessions", func(w http.ResponseWriter, r *http.Request) {
		infos, err := c.Sessions()
		if err != nil {
			writeErr(w, http.StatusInternalServerError, err)
			return
		}
		if infos == nil {
			infos = []Info{}
		}
		writeJSON(w, http.StatusOK, infos)
	})
	mux.HandleFunc("GET /api/sessions/{key}", func(w http.ResponseWriter, r *http.Request) {
		info, err := c.SessionInfo(r.PathValue("key"))
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, info)
	})
	mux.HandleFunc("DELETE /api/sessions/{key}", func(w http.ResponseWriter, r *http.Request) {
		if err := c.DeleteSession(r.PathValue("key")); err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": r.PathValue("key")})
	})
	mux.HandleFunc("POST /api/sessions/{key}/pause", c.proxyLifecycle(c.PauseSession))
	mux.HandleFunc("POST /api/sessions/{key}/resume", c.proxyLifecycle(c.ResumeSession))
	mux.HandleFunc("POST /api/sessions/{key}/migrate", c.handleMigrate)
	mux.HandleFunc("POST /api/reconcile", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]int{"repaired": c.ReconcileNow()})
	})
	return mux
}

func (c *Cluster) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req joinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	if req.ID == "" {
		writeErr(w, http.StatusBadRequest, errors.New("id is required"))
		return
	}
	if (req.Ctl == "") != (req.Stream == "") {
		writeErr(w, http.StatusBadRequest, errors.New("ctl and stream must be given together"))
		return
	}
	var err error
	if req.Ctl != "" {
		err = c.AttachShard(req.ID, req.Ctl, req.Stream)
	} else {
		err = c.AddShard(req.ID)
	}
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, c.Topology())
}

func (c *Cluster) handleLeave(w http.ResponseWriter, r *http.Request) {
	if err := c.RemoveShard(r.PathValue("id")); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Topology())
}

func (c *Cluster) handleKill(w http.ResponseWriter, r *http.Request) {
	if err := c.KillShard(r.PathValue("id")); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"killed": r.PathValue("id")})
}

func (c *Cluster) handleRecover(w http.ResponseWriter, r *http.Request) {
	recovered, lost, err := c.RecoverShard(r.PathValue("id"))
	if err != nil && recovered == 0 && lost == 0 {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]int{"recovered": recovered, "lost": lost})
}

func (c *Cluster) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req serve.CreateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	info, err := c.CreateSession(req)
	if err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (c *Cluster) handleMigrate(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	target := r.URL.Query().Get("target")
	if target == "" {
		writeErr(w, http.StatusBadRequest, errors.New("target shard is required (?target=)"))
		return
	}
	if err := c.Migrate(key, target); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	info, err := c.SessionInfo(key)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("migrated but unreadable: %w", err))
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// proxyLifecycle adapts a cluster-level lifecycle call (which records
// run intent for the janitor) into a front-tier route on the key.
func (c *Cluster) proxyLifecycle(call func(key string) error) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.PathValue("key")
		p, _, err := c.lookup(key)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		if err := call(key); err != nil {
			writeErr(w, http.StatusConflict, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"key": key, "shard": p.ShardID})
	}
}
