package cluster

import (
	"fmt"
	"testing"
	"time"

	"mindful/internal/obs"
	"mindful/internal/serve"
)

func eventTypes(log *obs.EventLog) map[string]int {
	types := make(map[string]int)
	for _, e := range log.Snapshot() {
		types[e.Type]++
	}
	return types
}

// TestClusterFlightRecorder pins the observability contract: an
// attached observer sees the cluster_* metrics move and the event log
// narrate joins, placements, migrations, shard death and recovery.
func TestClusterFlightRecorder(t *testing.T) {
	o := obs.New()
	c, err := New(Config{
		CheckpointInterval: -1,
		HealthInterval:     -1,
		Shard:              serve.Config{TickInterval: time.Millisecond},
		Observer:           o,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { shutdownCluster(t, c) })
	for i := 0; i < 2; i++ {
		if err := c.AddShard(fmt.Sprintf("shard-%d", i)); err != nil {
			t.Fatal(err)
		}
	}

	cfg := testSessionConfig()
	cfg.Ticks = 0 // unbounded: stays live through migration and kill
	var keys []string
	for i := 0; i < 4; i++ {
		sc := cfg
		sc.Seed += int64(i)
		info, err := c.CreateSession(serve.CreateRequest{SessionConfig: sc})
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, info.Key)
	}

	// Migrate the first session to the other shard, then kill the
	// migration target — it provably hosts ≥ 1 session — and recover.
	first, err := c.SessionInfo(keys[0])
	if err != nil {
		t.Fatal(err)
	}
	victim := "shard-0"
	if first.Shard == victim {
		victim = "shard-1"
	}
	if err := c.Migrate(keys[0], victim); err != nil {
		t.Fatal(err)
	}
	if n := c.CheckpointNow(); n != len(keys) {
		t.Fatalf("checkpointed %d sessions, want %d", n, len(keys))
	}
	if err := c.KillShard(victim); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.RecoverShard(victim); err != nil {
		t.Fatal(err)
	}

	counters := map[string]int64{
		"cluster_sessions_created_total":   int64(len(keys)),
		"cluster_migrations_total":         1,
		"cluster_shard_down_total":         1,
		"cluster_sessions_recovered_total": 1,
	}
	for name, min := range counters {
		if got := o.Metrics.Counter(name).Value(); got < min {
			t.Errorf("%s = %d, want ≥ %d", name, got, min)
		}
	}
	if got := o.Metrics.Counter("cluster_migration_failures_total").Value(); got != 0 {
		t.Errorf("cluster_migration_failures_total = %d, want 0", got)
	}
	if got := o.Metrics.Gauge("cluster_shards_active").Value(); got != 1 {
		t.Errorf("cluster_shards_active = %v, want 1", got)
	}
	if got := o.Metrics.Gauge("cluster_sessions_routed").Value(); got != float64(len(keys)) {
		// Sessions without a checkpoint on the dead shard would be lost;
		// CheckpointNow covered all of them, so none may go missing.
		t.Errorf("cluster_sessions_routed = %v, want %d", got, len(keys))
	}

	types := eventTypes(o.Events)
	for _, w := range []string{
		"shard_join", "cluster_create", "migrate", "shard_down", "session_recover",
	} {
		if types[w] == 0 {
			t.Errorf("event log missing %q; have %v", w, types)
		}
	}
}
