package cluster

import (
	"testing"
	"time"

	"mindful/internal/drift"
	"mindful/internal/serve"
	"mindful/internal/serve/checkpoint"
)

// adaptiveKeyConfig is the cluster variant of the everything-on
// nonstationarity session: drift, calibration, tracking and closed-loop
// recalibration, with a refit cadence (every 4 bins of 2 ticks) chosen
// so a mid-run migration almost surely lands with the supervision ring
// partially filled.
func adaptiveKeyConfig(dec string) checkpoint.SessionConfig {
	cfg := testSessionConfig()
	p := drift.DefaultProfile()
	p.EpochTicks = 8
	cfg.Drift = &p
	cfg.Decoder = dec
	cfg.DecodeBin = 2
	cfg.Calibrate = true
	cfg.Track = true
	cfg.Adapt = true
	cfg.RefitEvery = 4
	cfg.RefitBuffer = 8
	cfg.RefitBlend = 0.3
	cfg.MeterRef = 4
	cfg.MeterWin = 4
	return cfg
}

// TestMigrationMidRefitAdaptive: a recalibrating session live-migrated
// between shards mid-run — mid-refit-cycle, with the drift process and
// mutated decoder model in flight — must finish with frame AND decode
// digests identical to an uninterrupted run. The nonstationarity
// subsystem rides the same export/import path as everything else, so
// migration stays invisible to the adaptation loop bit for bit.
func TestMigrationMidRefitAdaptive(t *testing.T) {
	for _, dec := range []string{"kalman", "fixed", "wiener"} {
		dec := dec
		t.Run(dec, func(t *testing.T) {
			t.Parallel()
			c := startCluster(t, 2, serve.Config{TickInterval: time.Millisecond})
			cfg := adaptiveKeyConfig(dec)
			cfg.Ticks = 40
			wantFrame, wantDecode := digests(t, cfg)

			info, err := c.CreateSession(serve.CreateRequest{SessionConfig: cfg})
			if err != nil {
				t.Fatal(err)
			}
			mid := waitKeyTick(t, c, info.Key, cfg.Ticks/2)
			if mid.State == serve.StateDone {
				t.Fatalf("session finished (tick %d) before the migration window", mid.Tick)
			}

			target := "shard-0"
			if mid.Shard == target {
				target = "shard-1"
			}
			if err := c.Migrate(info.Key, target); err != nil {
				t.Fatal(err)
			}

			done := waitKeyState(t, c, info.Key, serve.StateDone)
			if done.Digest != wantFrame {
				t.Fatalf("%s: migrated frame digest %s, want uninterrupted %s", dec, done.Digest, wantFrame)
			}
			if done.DecodeDigest != wantDecode {
				t.Fatalf("%s: migrated decode digest %s, want uninterrupted %s", dec, done.DecodeDigest, wantDecode)
			}
		})
	}
}
