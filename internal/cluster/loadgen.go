package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"time"

	"mindful/internal/chaosnet"
	"mindful/internal/obs"
	"mindful/internal/serve"
	"mindful/internal/serve/checkpoint"
)

// newShutdownContext bounds the harness's teardown.
func newShutdownContext() (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), 30*time.Second)
}

// The cluster load generator is the sharded counterpart of the serve
// harness: it boots a front tier with N self-hosted shards, spreads
// sessions across the ring, attaches every subscriber through the
// front tier's redirect plane, and then injects the two disruptions
// the tentpole exists for — live migrations and a shard kill with
// checkpoint recovery — while the subscribers keep reading. It is the
// source of BENCH_cluster.json: per-shard delivery-latency
// percentiles, per-migration blackout as the subscriber saw it (last
// record from the old shard → first record from the new one), and the
// kill-recovery numbers.

// LoadConfig describes one cluster load run.
type LoadConfig struct {
	// Shards is the self-hosted gateway count.
	Shards int
	// Sessions, SubsPerSession and Ticks set the fan-out and run length.
	Sessions       int
	SubsPerSession int
	Ticks          int
	// TickInterval paces the shards (the disruption windows need real
	// time to land mid-run; 0 = 1ms).
	TickInterval time.Duration

	// Session is the per-session pipeline configuration; the seed is
	// offset per session so no two sessions share streams.
	Session checkpoint.SessionConfig
	// Decoder, when set, attaches that decoder to every session.
	Decoder string

	// Migrations is how many sessions to live-migrate mid-run.
	Migrations int
	// Kill, when set, SIGKILLs one shard mid-run and recovers its
	// sessions from the front tier's checkpoints.
	Kill bool
	// VerifyDigests re-runs every session's pipeline uninterrupted
	// in-process and requires the served digests to match bit-for-bit —
	// the smoke harness's proof that migration and recovery were
	// invisible. Doubles the compute; off for pure benchmarking.
	VerifyDigests bool

	// Observer, when set, instruments the self-hosted front tier
	// (cluster_* metrics, migrate/shard_down narration).
	Observer *obs.Observer

	// ChaosIntensity > 0 injects deterministic control-plane faults
	// (drops, resets, cuts, delays, partitions) through a seeded
	// chaosnet transport scaled by this factor, turns on the janitor,
	// and makes disruptions non-fatal: failed migrations are counted
	// and left for reconciliation instead of aborting the run. Zero
	// keeps the exact fault-free baseline path.
	ChaosIntensity float64
	// ChaosSeed keys the fault schedule; same seed + same intensity =
	// same faults (and a higher intensity strictly adds faults).
	ChaosSeed int64
	// ChaosProfile overrides chaosnet.DefaultProfile's base rates.
	ChaosProfile *chaosnet.Profile
}

// DefaultLoadConfig returns the BENCH_cluster baseline: 3 shards, 24
// sessions × 1 subscriber × 300 frames of a 32-channel 16-QAM implant,
// 3 live migrations and one shard kill mid-run.
func DefaultLoadConfig() LoadConfig {
	return LoadConfig{
		Shards:         3,
		Sessions:       24,
		SubsPerSession: 1,
		Ticks:          300,
		Migrations:     3,
		Kill:           true,
		Session: checkpoint.SessionConfig{
			Channels:     32,
			SampleRateHz: 2000,
			SampleBits:   10,
			QAMBits:      4,
			EbN0dB:       12,
			Seed:         1,
		},
	}
}

// ShardStats is one gateway's slice of a load run.
type ShardStats struct {
	ID       string  `json:"id"`
	Sessions int     `json:"sessions_final"`
	Records  int64   `json:"records_delivered"`
	P50Ms    float64 `json:"p50_delivery_latency_ms"`
	P99Ms    float64 `json:"p99_delivery_latency_ms"`
	MaxMs    float64 `json:"max_delivery_latency_ms"`
}

// MigrationStats is one live migration as both sides saw it.
type MigrationStats struct {
	Key  string `json:"key"`
	From string `json:"from"`
	To   string `json:"to"`
	// CoordinatorMs is the pause→resume wall time at the front tier.
	CoordinatorMs float64 `json:"coordinator_ms"`
	// BlackoutMs is the subscriber-observed gap: last record delivered
	// by the old shard → first record delivered by the new one
	// (negative when no subscriber reconnect was observed).
	BlackoutMs float64 `json:"blackout_ms"`
}

// LoadResult summarizes one cluster load run.
type LoadResult struct {
	Shards         int     `json:"shards"`
	Sessions       int     `json:"sessions"`
	SubsPerSession int     `json:"subs_per_session"`
	Ticks          int     `json:"ticks"`
	Records        int64   `json:"records_received"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
	FramesPerSec   float64 `json:"frames_per_sec"`

	PerShard   []ShardStats     `json:"per_shard"`
	Migrations []MigrationStats `json:"migrations,omitempty"`
	// Aggregate blackout over the run's migrations (subscriber-observed).
	BlackoutP50Ms float64 `json:"migration_blackout_p50_ms,omitempty"`
	BlackoutMaxMs float64 `json:"migration_blackout_max_ms,omitempty"`

	Killed           string  `json:"killed_shard,omitempty"`
	Recovered        int     `json:"sessions_recovered,omitempty"`
	Lost             int     `json:"sessions_lost,omitempty"`
	RecoverySeconds  float64 `json:"recovery_seconds,omitempty"`
	DigestsVerified  int     `json:"digests_verified,omitempty"`
	DigestMismatches int     `json:"digest_mismatches,omitempty"`

	// Overall delivery latency across every shard (subscriber-observed).
	OverallP50Ms float64 `json:"p50_delivery_latency_ms"`
	OverallP99Ms float64 `json:"p99_delivery_latency_ms"`

	// Chaos accounting (only meaningful when ChaosIntensity > 0).
	ChaosIntensity      float64        `json:"chaos_intensity"`
	ChaosSeed           int64          `json:"chaos_seed,omitempty"`
	ChaosStats          chaosnet.Stats `json:"chaos_faults"`
	MigrationsAttempted int            `json:"migrations_attempted"`
	MigrationsFailed    int            `json:"migrations_failed"`
	// SurvivalRate is finished-or-reconciled sessions over created ones.
	SurvivalRate float64 `json:"session_survival_rate"`
	// MigrationSuccessRate counts migrations that completed first-try
	// (reconciled aborts are survival, not migration success).
	MigrationSuccessRate float64 `json:"migration_success_rate"`
	Retries              int64   `json:"ctl_retries"`
	Giveups              int64   `json:"ctl_giveups"`
	ReconcilePasses      int64   `json:"reconcile_passes"`
	ReconcileRepairs     int64   `json:"reconcile_repairs"`
}

// subTracker is one subscriber's accounting, updated only by its own
// goroutine; lastNs is read by the migration driver under the harness
// mutex after the subscriber exits, never concurrently.
type subTracker struct {
	mu       sync.Mutex
	records  int64
	maxMs    float64
	lastNs   int64 // wall clock of the most recent record
	gaps     []gap // reconnect gaps: stream sever → first record after
	err      error
	reshards int
}

type gap struct {
	severNs int64
	firstNs int64
}

// RunLoad executes the cluster load scenario and returns its
// measurements.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	if cfg.Shards < 1 || cfg.Sessions < 1 || cfg.SubsPerSession < 0 || cfg.Ticks < 1 {
		return nil, errors.New("cluster: load config needs shards ≥ 1, sessions ≥ 1, subs ≥ 0, ticks ≥ 1")
	}
	if cfg.Migrations > 0 && cfg.Shards < 2 {
		return nil, errors.New("cluster: migrations need at least 2 shards")
	}
	if cfg.Kill && cfg.Shards < 2 {
		return nil, errors.New("cluster: kill/recovery needs at least 2 shards")
	}
	tickInterval := cfg.TickInterval
	if tickInterval == 0 {
		tickInterval = time.Millisecond
	}

	// Chaos wiring: a seeded fault-injecting transport on the control
	// plane, the janitor on a tight cadence to converge what the faults
	// strand, and an observer (the run's own if the caller brought none)
	// so retry/reconcile counters are readable afterwards. Probes stay on
	// a clean transport: the harness kills shards deliberately, and a
	// lying probe would misattribute those numbers.
	chaos := cfg.ChaosIntensity > 0
	var chaosT *chaosnet.Transport
	clcfg := Config{
		CheckpointInterval: -1, // the harness checkpoints explicitly
		HealthInterval:     -1, // and recovers explicitly, so the numbers are attributable
		ReconcileInterval:  -1,
		Shard:              serve.Config{TickInterval: tickInterval},
		Observer:           cfg.Observer,
	}
	if chaos {
		prof := chaosnet.DefaultProfile()
		if cfg.ChaosProfile != nil {
			prof = *cfg.ChaosProfile
		}
		t, err := chaosnet.NewTransport(http.DefaultTransport, prof, cfg.ChaosSeed)
		if err != nil {
			return nil, err
		}
		t.SetIntensity(cfg.ChaosIntensity)
		chaosT = t
		clcfg.Transport = t
		clcfg.ReconcileInterval = 50 * time.Millisecond
		clcfg.RetrySeed = cfg.ChaosSeed
		if clcfg.Observer == nil {
			clcfg.Observer = obs.New()
		}
	}
	c, err := New(clcfg)
	if err != nil {
		return nil, err
	}
	if err := c.Start(); err != nil {
		return nil, err
	}
	defer func() {
		ctx, cancel := newShutdownContext()
		defer cancel()
		c.Shutdown(ctx)
	}()

	shardIDs := make([]string, cfg.Shards)
	for i := range shardIDs {
		shardIDs[i] = fmt.Sprintf("shard-%d", i)
		if err := c.AddShard(shardIDs[i]); err != nil {
			return nil, err
		}
	}
	// Stream-address → shard-ID map for per-shard latency attribution
	// (the addresses outlive a kill: a dead shard just stops answering).
	addrToShard := make(map[string]string, cfg.Shards)
	shardHists := make(map[string]*obs.Histogram, cfg.Shards)
	for _, sh := range c.Topology().Shards {
		addrToShard[sh.StreamAddr] = sh.ID
		shardHists[sh.ID] = obs.NewHistogram(obs.ExpBuckets(0.001, 1.6, 40))
	}
	overall := obs.NewHistogram(obs.ExpBuckets(0.001, 1.6, 40))

	start := time.Now()

	// Create every session paused so subscribers attach before frame 0.
	keys := make([]string, cfg.Sessions)
	seeds := make([]int64, cfg.Sessions)
	for i := range keys {
		scfg := cfg.Session
		scfg.Seed += int64(i)
		scfg.Ticks = cfg.Ticks
		if scfg.Decoder == "" {
			scfg.Decoder = cfg.Decoder
		}
		seeds[i] = scfg.Seed
		info, err := c.CreateSession(serve.CreateRequest{SessionConfig: scfg, StartPaused: true})
		if err != nil {
			return nil, err
		}
		keys[i] = info.Key
	}

	// Subscribers dial the front tier and follow MOVED redirects; on a
	// sever (migration or kill) they re-dial the front tier, which
	// re-resolves the key against the current routing table. Records
	// attribute to the shard the connection landed on.
	nSubs := cfg.Sessions * cfg.SubsPerSession
	trackers := make([]*subTracker, nSubs)
	var wg sync.WaitGroup
	ready := make(chan error, nSubs)
	deadline := time.Now().Add(5 * time.Minute)
	for i := 0; i < nSubs; i++ {
		trackers[i] = &subTracker{}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr := trackers[i]
			key := keys[i%cfg.Sessions]
			firstDial := true
			var severNs int64
			for {
				conn, br, err := serve.SubscribeFollow(c.StreamAddr(), key, "", 4)
				if firstDial {
					ready <- err
					firstDial = false
				}
				if err != nil {
					// Mid-kill the key may be unrouted until recovery runs;
					// keep retrying until the session is truly gone or done.
					if time.Now().After(deadline) {
						tr.mu.Lock()
						tr.err = fmt.Errorf("cluster: resubscribe %s: %w", key, err)
						tr.mu.Unlock()
						return
					}
					if done, gone := sessionLook(c, key, chaos); done || gone {
						return
					}
					time.Sleep(5 * time.Millisecond)
					continue
				}
				shardID := addrToShard[conn.RemoteAddr().String()]
				hist := shardHists[shardID]
				gotFirst := false
				var readErr error
				for {
					rec, err := serve.ReadRecord(br)
					if err != nil {
						readErr = err
						break
					}
					now := time.Now().UnixNano()
					ms := float64(now-rec.PublishNs) / 1e6
					if hist != nil {
						hist.Observe(ms)
					}
					overall.Observe(ms)
					tr.mu.Lock()
					tr.records++
					tr.lastNs = now
					if ms > tr.maxMs {
						tr.maxMs = ms
					}
					if !gotFirst && severNs != 0 {
						tr.gaps = append(tr.gaps, gap{severNs: severNs, firstNs: now})
						severNs = 0
					}
					tr.mu.Unlock()
					gotFirst = true
				}
				conn.Close()
				// A clean close means the session finished or was deleted;
				// anything else is a sever worth reconnecting across.
				if done, gone := sessionLook(c, key, chaos); done || gone {
					return
				}
				_ = readErr
				tr.mu.Lock()
				tr.reshards++
				severNs = tr.lastNs
				tr.mu.Unlock()
				if time.Now().After(deadline) {
					tr.mu.Lock()
					tr.err = errors.New("cluster: subscriber deadline exceeded")
					tr.mu.Unlock()
					return
				}
			}
		}(i)
	}
	for i := 0; i < nSubs; i++ {
		if err := <-ready; err != nil {
			return nil, fmt.Errorf("cluster: subscribe: %w", err)
		}
	}

	// Fire: resume every session.
	for _, key := range keys {
		if err := c.ResumeSession(key); err != nil {
			return nil, err
		}
	}

	res := &LoadResult{
		Shards:         cfg.Shards,
		Sessions:       cfg.Sessions,
		SubsPerSession: cfg.SubsPerSession,
		Ticks:          cfg.Ticks,
	}

	// Disruption 1: live migrations, spread across the run's first half.
	// Under chaos a failed migration is data, not a harness error: the
	// abort path plus the janitor owe us a converged session, and the
	// failure lands in the success-rate curve.
	for m := 0; m < cfg.Migrations; m++ {
		key := keys[m%len(keys)]
		info, err := c.SessionInfo(key)
		if err != nil {
			if !chaos {
				return nil, err
			}
			res.MigrationsAttempted++
			res.MigrationsFailed++
			continue
		}
		if info.State == serve.StateDone {
			continue // the run outpaced the driver; nothing left to move
		}
		target := ""
		for _, id := range shardIDs {
			if id != info.Shard {
				target = id
				break
			}
		}
		t0 := time.Now()
		res.MigrationsAttempted++
		if err := c.Migrate(key, target); err != nil {
			if !chaos {
				return nil, fmt.Errorf("cluster: load migration %d: %w", m, err)
			}
			res.MigrationsFailed++
			continue
		}
		res.Migrations = append(res.Migrations, MigrationStats{
			Key:           key,
			From:          info.Shard,
			To:            target,
			CoordinatorMs: float64(time.Since(t0).Microseconds()) / 1e3,
			BlackoutMs:    -1, // filled from the subscriber gap below
		})
	}

	// Disruption 2: checkpoint everything, kill a shard, recover.
	if cfg.Kill {
		c.CheckpointNow()
		victim := ""
		for _, sh := range c.Topology().Shards {
			if sh.Sessions > 0 {
				victim = sh.ID
				break
			}
		}
		if victim != "" {
			t0 := time.Now()
			if err := c.KillShard(victim); err != nil {
				return nil, err
			}
			recovered, lost, err := c.RecoverShard(victim)
			if err != nil {
				return nil, fmt.Errorf("cluster: recovery: %w", err)
			}
			res.Killed = victim
			res.Recovered = recovered
			res.Lost = lost
			res.RecoverySeconds = time.Since(t0).Seconds()
		}
	}

	// Wait for every session to finish, then for the subscribers to
	// drain. Under chaos a transient read error is retried (the janitor
	// may still be converging the key); only a definitively unrouted key
	// is given up as lost.
	goneKeys := make(map[string]bool)
	for _, key := range keys {
		for {
			info, err := c.SessionInfo(key)
			if err == nil && info.State == serve.StateDone {
				break
			}
			if err != nil {
				if !chaos {
					return nil, err
				}
				if _, _, lerr := c.lookup(key); lerr != nil {
					goneKeys[key] = true
					break
				}
			}
			if time.Now().After(deadline) {
				return nil, fmt.Errorf("cluster: session %s did not finish", key)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	wg.Wait()
	elapsed := time.Since(start)
	res.ElapsedSeconds = elapsed.Seconds()

	// Subscriber accounting: totals, and the first observed reconnect
	// gap per migrated key becomes that migration's blackout.
	blackouts := obs.NewHistogram(obs.ExpBuckets(0.1, 2, 20))
	for i, tr := range trackers {
		tr.mu.Lock()
		if tr.err != nil {
			err := tr.err
			tr.mu.Unlock()
			return nil, fmt.Errorf("cluster: subscriber %d: %w", i, err)
		}
		res.Records += tr.records
		key := keys[i%cfg.Sessions]
		for mi := range res.Migrations {
			if res.Migrations[mi].Key == key && res.Migrations[mi].BlackoutMs < 0 && len(tr.gaps) > 0 {
				g := tr.gaps[0]
				res.Migrations[mi].BlackoutMs = float64(g.firstNs-g.severNs) / 1e6
			}
		}
		for _, g := range tr.gaps {
			blackouts.Observe(float64(g.firstNs-g.severNs) / 1e6)
		}
		tr.mu.Unlock()
	}
	if blackouts.Count() > 0 {
		res.BlackoutP50Ms = blackouts.Quantile(0.50)
		res.BlackoutMaxMs = blackouts.Quantile(1.0)
	}
	if s := elapsed.Seconds(); s > 0 {
		res.FramesPerSec = float64(res.Records) / s
	}

	// Per-shard stats: latency from the attribution histograms, final
	// placement from the topology.
	topo := c.Topology()
	finalCounts := make(map[string]int, len(topo.Shards))
	for _, sh := range topo.Shards {
		finalCounts[sh.ID] = sh.Sessions
	}
	for _, id := range shardIDs {
		h := shardHists[id]
		st := ShardStats{ID: id, Sessions: finalCounts[id]}
		if h.Count() > 0 {
			st.Records = h.Count()
			st.P50Ms = h.Quantile(0.50)
			st.P99Ms = h.Quantile(0.99)
			st.MaxMs = h.Quantile(1.0)
		}
		res.PerShard = append(res.PerShard, st)
	}

	// Overall latency and the chaos curve's inputs.
	if overall.Count() > 0 {
		res.OverallP50Ms = overall.Quantile(0.50)
		res.OverallP99Ms = overall.Quantile(0.99)
	}
	res.ChaosIntensity = cfg.ChaosIntensity
	if chaosT != nil {
		res.ChaosSeed = cfg.ChaosSeed
		res.ChaosStats = chaosT.Stats()
	}
	res.Retries = c.mRetries.Value()
	res.Giveups = c.mGiveups.Value()
	res.ReconcilePasses = c.mReconciles.Value()
	res.ReconcileRepairs = c.mRepaired.Value()
	res.SurvivalRate = float64(cfg.Sessions-len(goneKeys)) / float64(cfg.Sessions)
	res.MigrationSuccessRate = 1
	if res.MigrationsAttempted > 0 {
		res.MigrationSuccessRate = float64(res.MigrationsAttempted-res.MigrationsFailed) /
			float64(res.MigrationsAttempted)
	}

	// Optional determinism audit: every served digest must equal an
	// uninterrupted in-process run of the same seed (lost sessions have
	// nothing left to audit).
	if cfg.VerifyDigests {
		for i, key := range keys {
			if goneKeys[key] {
				continue
			}
			info, err := c.SessionInfo(key)
			if err != nil {
				return nil, err
			}
			scfg := cfg.Session
			scfg.Seed = seeds[i]
			scfg.Ticks = cfg.Ticks
			if scfg.Decoder == "" {
				scfg.Decoder = cfg.Decoder
			}
			want, err := referenceDigest(scfg)
			if err != nil {
				return nil, err
			}
			res.DigestsVerified++
			if info.Digest != want {
				res.DigestMismatches++
			}
		}
		if res.DigestMismatches > 0 {
			return res, fmt.Errorf("cluster: %d of %d digests diverged from uninterrupted runs",
				res.DigestMismatches, res.DigestsVerified)
		}
	}
	return res, nil
}

// sessionLook probes a key for subscriber exit decisions. Outside
// chaos any read error ends the subscriber (the baseline behavior);
// under chaos only a definitively unrouted key does — a transient
// control-plane failure or a missing-but-routed copy may yet be
// reconciled, so the subscriber keeps retrying.
func sessionLook(c *Cluster, key string, chaos bool) (done, gone bool) {
	info, err := c.SessionInfo(key)
	if err == nil {
		return info.State == serve.StateDone, false
	}
	if !chaos {
		return false, true
	}
	if _, _, lerr := c.lookup(key); lerr != nil {
		return false, true
	}
	return false, false
}

// referenceDigest runs a session config uninterrupted in-process.
func referenceDigest(cfg checkpoint.SessionConfig) (string, error) {
	p, err := checkpoint.NewPipeline(cfg, 0)
	if err != nil {
		return "", err
	}
	defer p.Close()
	for i := 0; i < cfg.Ticks; i++ {
		if err := p.Step(); err != nil {
			return "", err
		}
	}
	return fmt.Sprintf("%d", p.Result().Digest), nil
}
