// Package cluster is the multi-gateway front tier: one process that
// consistent-hashes session keys across N serve gateways (shards),
// proxies the JSON/HTTP control plane to the owning shard, redirects
// TCP subscribers there, and moves live sessions between shards by
// checkpoint transfer — pause on the source, snapshot, restore paused
// on the target, flip the routing table, delete the source copy, and
// resume. Because the checkpoint codec round-trips sessions
// bit-identically, a migrated session's digests equal an uninterrupted
// run's: live migration is invisible to the simulation.
//
// The same primitive powers elasticity and failure recovery. A joining
// shard steals only the keys the ring now assigns it (drain-and-
// rebalance); a leaving shard is drained (its /readyz answers 503)
// and its sessions migrate off before it is removed; a shard that dies
// without warning is detected by health probes and its sessions are
// restored on the survivors from the front tier's periodic checkpoints.
// The routing table maps every key to exactly one shard at all times —
// the split-brain guard the chaos tests pin.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"mindful/internal/cluster/store"
	"mindful/internal/obs"
	"mindful/internal/serve"
)

// Defaults for the zero Config values.
const (
	// DefaultCheckpointInterval is the periodic per-session checkpoint
	// cadence backing kill recovery.
	DefaultCheckpointInterval = 2 * time.Second
	// DefaultHealthInterval is the shard health-probe cadence.
	DefaultHealthInterval = time.Second
	// DefaultProbeTimeout bounds one health probe.
	DefaultProbeTimeout = 500 * time.Millisecond
	// DefaultReconcileInterval is the janitor cadence.
	DefaultReconcileInterval = 2 * time.Second
)

// Config describes one front tier.
type Config struct {
	// ControlAddr is the front tier's HTTP control-plane listen address
	// (e.g. "127.0.0.1:0").
	ControlAddr string
	// StreamAddr is the front tier's TCP listen address; subscribers
	// connect here and are redirected (MOVED) to the owning shard.
	StreamAddr string
	// VirtualNodes is the per-shard ring point count (0 = default 128).
	VirtualNodes int
	// CheckpointInterval is the periodic checkpoint cadence for kill
	// recovery (0 = default; negative disables the loop — tests drive
	// CheckpointNow explicitly).
	CheckpointInterval time.Duration
	// HealthInterval is the shard probe cadence (0 = default; negative
	// disables the loop — tests drive RecoverShard explicitly).
	HealthInterval time.Duration
	// ReconcileInterval is the janitor cadence: each pass converges
	// stuck migration states (paused source with no routed copy,
	// orphaned target copy, routing entry at a dead shard) back to
	// exactly one running copy per key (0 = default; negative disables
	// the loop — tests drive ReconcileNow explicitly).
	ReconcileInterval time.Duration
	// StoreDir, when set, backs the checkpoint map with a durable
	// on-disk store (internal/cluster/store): every stored checkpoint
	// is also framed to disk, and New reloads the directory so a
	// restarted front tier can still recover a dead shard's sessions.
	StoreDir string
	// Transport optionally replaces the control-plane HTTP transport —
	// the chaos tests' injection point.
	Transport http.RoundTripper
	// ProbeTransport optionally replaces the health/readiness probe
	// transport (separate so probe chaos can be gated independently).
	ProbeTransport http.RoundTripper
	// RetryMax is the retry budget per idempotent control call
	// (0 = default; negative disables retries).
	RetryMax int
	// RetryBase and RetryCap bound the exponential backoff between
	// retries (0 = defaults).
	RetryBase time.Duration
	RetryCap  time.Duration
	// RetrySeed seeds the deterministic backoff jitter.
	RetrySeed int64
	// Shard is the template for self-hosted shards: listen addresses
	// are overridden to loopback ephemeral ports, everything else
	// (queue depth, tick interval, default decoder, observer) applies
	// to every shard this front tier hosts.
	Shard serve.Config
	// Observer optionally collects cluster metrics and events.
	Observer *obs.Observer
}

// placement is one session's current home. WantRun is the control
// plane's intent — whether the session should be executing — recorded
// at create/pause/resume/migrate time so the janitor can tell a
// deliberately paused session from one a failed migration stranded.
type placement struct {
	ShardID string
	LocalID string
	WantRun bool
}

// storedCkpt is one session's most recent checkpoint — the recovery
// state a dead shard's sessions restart from. Running records whether
// the session was executing when snapshotted, so recovery restores
// deliberately paused sessions paused.
type storedCkpt struct {
	Blob    []byte
	Tick    int
	Running bool
}

// shard is one gateway in the cluster, self-hosted or attached.
type shard struct {
	ID         string
	CtlBase    string // control-plane base URL, e.g. "http://127.0.0.1:7600"
	StreamAddr string
	srv        *serve.Server // non-nil when self-hosted in this process
}

// Cluster is one running front tier.
type Cluster struct {
	cfg Config

	// topoMu serializes whole topology operations (join, leave,
	// rebalance, recovery) against each other; mu guards the routing
	// state with short holds and is never held across a network call.
	topoMu sync.Mutex

	mu        sync.Mutex
	shards    map[string]*shard
	ring      *Ring
	table     map[string]placement
	ckpts     map[string]storedCkpt
	migrating map[string]bool
	nextKey   uint64
	closed    bool

	// orphanSuspects holds "shard/localID" copies seen unrouted on the
	// previous janitor pass; only a second consecutive sighting deletes.
	// Guarded by topoMu (only the janitor touches it).
	orphanSuspects map[string]bool

	ctlLn   net.Listener
	strLn   net.Listener
	httpSrv *http.Server
	wg      sync.WaitGroup
	stop    chan struct{}

	client *shardClient
	store  *store.Store // nil without Config.StoreDir

	events *obs.EventLog

	mShards     *obs.Gauge
	mRouted     *obs.Gauge
	mCreated    *obs.Counter
	mMigrations *obs.Counter
	mMigFailed  *obs.Counter
	mRebalances *obs.Counter
	mShardDown  *obs.Counter
	mRecovered  *obs.Counter
	mLost       *obs.Counter
	mRedirects  *obs.Counter
	mRetries    *obs.Counter
	mGiveups    *obs.Counter
	mReconciles *obs.Counter
	mRepaired   *obs.Counter
	mBlackout   *obs.Histogram
}

// New returns an unstarted front tier with no shards.
func New(cfg Config) (*Cluster, error) {
	if cfg.ControlAddr == "" {
		cfg.ControlAddr = "127.0.0.1:0"
	}
	if cfg.StreamAddr == "" {
		cfg.StreamAddr = "127.0.0.1:0"
	}
	if cfg.CheckpointInterval == 0 {
		cfg.CheckpointInterval = DefaultCheckpointInterval
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.ReconcileInterval == 0 {
		cfg.ReconcileInterval = DefaultReconcileInterval
	}
	ring, err := NewRing(nil, cfg.VirtualNodes)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:       cfg,
		shards:    make(map[string]*shard),
		ring:      ring,
		table:     make(map[string]placement),
		ckpts:     make(map[string]storedCkpt),
		migrating: make(map[string]bool),
		stop:      make(chan struct{}),

		orphanSuspects: make(map[string]bool),
		// Blackout spans sub-millisecond loopback flips to multi-second
		// stalls: 0.1 ms .. ~1.6 min exponential buckets.
		mBlackout: obs.NewHistogram(obs.ExpBuckets(0.1, 2, 20)),
	}
	if o := cfg.Observer; o != nil {
		c.events = o.Events
	}
	if o := cfg.Observer; o != nil && o.Metrics != nil {
		m := o.Metrics
		c.mShards = m.Gauge("cluster_shards_active")
		c.mRouted = m.Gauge("cluster_sessions_routed")
		c.mCreated = m.Counter("cluster_sessions_created_total")
		c.mMigrations = m.Counter("cluster_migrations_total")
		c.mMigFailed = m.Counter("cluster_migration_failures_total")
		c.mRebalances = m.Counter("cluster_rebalances_total")
		c.mShardDown = m.Counter("cluster_shard_down_total")
		c.mRecovered = m.Counter("cluster_sessions_recovered_total")
		c.mLost = m.Counter("cluster_sessions_lost_total")
		c.mRedirects = m.Counter("cluster_redirects_total")
		c.mRetries = m.Counter("cluster_ctl_retries_total")
		c.mGiveups = m.Counter("cluster_ctl_giveups_total")
		c.mReconciles = m.Counter("cluster_reconcile_passes_total")
		c.mRepaired = m.Counter("cluster_reconcile_repairs_total")
		m.Help("cluster_shards_active", "Gateways currently in the ring.")
		m.Help("cluster_sessions_routed", "Sessions in the routing table.")
		m.Help("cluster_sessions_created_total", "Sessions created through the front tier.")
		m.Help("cluster_migrations_total", "Live migrations completed.")
		m.Help("cluster_migration_failures_total", "Live migrations aborted.")
		m.Help("cluster_rebalances_total", "Rebalance passes run.")
		m.Help("cluster_shard_down_total", "Shards declared dead and removed.")
		m.Help("cluster_sessions_recovered_total", "Sessions restored from checkpoints after a shard death.")
		m.Help("cluster_sessions_lost_total", "Sessions lost with a dead shard (no checkpoint).")
		m.Help("cluster_redirects_total", "Data-plane MOVED redirects answered.")
		m.Help("cluster_ctl_retries_total", "Control-plane call retries after transient failures.")
		m.Help("cluster_ctl_giveups_total", "Control-plane calls that exhausted their retry budget.")
		m.Help("cluster_reconcile_passes_total", "Janitor reconciliation passes run.")
		m.Help("cluster_reconcile_repairs_total", "Stuck migration states converged by the janitor.")
	}
	c.client = newShardClient(cfg, c.mRetries, c.mGiveups)
	if cfg.StoreDir != "" {
		st, err := store.Open(cfg.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("cluster: checkpoint store: %w", err)
		}
		c.store = st
		// A restarted front tier reloads every durable checkpoint: the
		// routing table is memory-only, but the recovery state survives,
		// so RecoverShard can still resurrect a dead shard's sessions.
		recs, err := st.LoadAll()
		if err != nil {
			return nil, fmt.Errorf("cluster: checkpoint store: %w", err)
		}
		for key, rec := range recs {
			c.ckpts[key] = storedCkpt{Blob: rec.Blob, Tick: rec.Tick, Running: rec.Running}
			// Keys minted by this generation must not collide with the
			// crashed generation's: advance past every stored key.
			var n uint64
			if _, err := fmt.Sscanf(key, "c%d", &n); err == nil && n > c.nextKey {
				c.nextKey = n
			}
		}
	}
	return c, nil
}

// event records one flight-recorder entry (nil-safe without an
// observer).
func (c *Cluster) event(typ, subject, detail string, attrs ...obs.EventAttr) {
	c.events.Record(typ, subject, detail, attrs...)
}

// Start binds the front tier's planes and begins the checkpoint and
// health loops (when their intervals are positive).
func (c *Cluster) Start() error {
	ctl, err := net.Listen("tcp", c.cfg.ControlAddr)
	if err != nil {
		return fmt.Errorf("cluster: control plane: %w", err)
	}
	str, err := net.Listen("tcp", c.cfg.StreamAddr)
	if err != nil {
		ctl.Close()
		return fmt.Errorf("cluster: stream plane: %w", err)
	}
	c.ctlLn, c.strLn = ctl, str
	c.httpSrv = &http.Server{Handler: c.controlMux()}
	c.wg.Add(2)
	go func() {
		defer c.wg.Done()
		c.httpSrv.Serve(ctl)
	}()
	go func() {
		defer c.wg.Done()
		for {
			conn, err := str.Accept()
			if err != nil {
				return
			}
			c.wg.Add(1)
			go c.serveRedirect(conn)
		}
	}()
	if c.cfg.CheckpointInterval > 0 {
		c.wg.Add(1)
		go c.checkpointLoop()
	}
	if c.cfg.HealthInterval > 0 {
		c.wg.Add(1)
		go c.healthLoop()
	}
	if c.cfg.ReconcileInterval > 0 {
		c.wg.Add(1)
		go c.janitorLoop()
	}
	return nil
}

// ControlAddr returns the bound front-tier control-plane address.
func (c *Cluster) ControlAddr() string { return c.ctlLn.Addr().String() }

// StreamAddr returns the bound front-tier data-plane address.
func (c *Cluster) StreamAddr() string { return c.strLn.Addr().String() }

// AddShard self-hosts a new gateway on loopback ephemeral ports under
// the given ID, adds it to the ring and rebalances: the joiner steals
// exactly the sessions the ring now assigns it.
func (c *Cluster) AddShard(id string) error {
	scfg := c.cfg.Shard
	scfg.ControlAddr = "127.0.0.1:0"
	scfg.StreamAddr = "127.0.0.1:0"
	scfg.Redirect = c.Resolve
	srv, err := serve.New(scfg)
	if err != nil {
		return err
	}
	if err := srv.Start(); err != nil {
		return err
	}
	if err := c.JoinShard(id, "http://"+srv.ControlAddr(), srv.StreamAddr(), srv); err != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
		return err
	}
	return nil
}

// AttachShard adds an externally running gateway (its control base URL
// and stream address) to the ring and rebalances onto it.
func (c *Cluster) AttachShard(id, ctlBase, streamAddr string) error {
	return c.JoinShard(id, ctlBase, streamAddr, nil)
}

// JoinShard is the shared join path. srv is non-nil for self-hosted
// shards (enables Kill-based chaos testing and graceful shutdown).
func (c *Cluster) JoinShard(id, ctlBase, streamAddr string, srv *serve.Server) error {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("cluster: shutting down")
	}
	if _, ok := c.shards[id]; ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: shard %q already present", id)
	}
	ids := make([]string, 0, len(c.shards)+1)
	for sid := range c.shards {
		ids = append(ids, sid)
	}
	ids = append(ids, id)
	ring, err := NewRing(ids, c.cfg.VirtualNodes)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.shards[id] = &shard{ID: id, CtlBase: ctlBase, StreamAddr: streamAddr, srv: srv}
	c.ring = ring
	if c.mShards != nil {
		c.mShards.Add(1)
	}
	c.mu.Unlock()

	c.event("shard_join", id, streamAddr,
		obs.EventAttr{Key: "shards", Val: float64(ring.Size())})
	return c.rebalanceLocked()
}

// RemoveShard drains a shard for leave: mark it draining (/readyz goes
// 503), rebuild the ring without it, migrate every hosted session to
// its new owner, then drop the member. The shard process itself is the
// caller's to stop; self-hosted shards are shut down gracefully.
func (c *Cluster) RemoveShard(id string) error {
	c.topoMu.Lock()
	defer c.topoMu.Unlock()

	c.mu.Lock()
	sh, ok := c.shards[id]
	if !ok {
		c.mu.Unlock()
		return fmt.Errorf("cluster: no shard %q", id)
	}
	if len(c.shards) < 2 && c.sessionsOnLocked(id) > 0 {
		c.mu.Unlock()
		return fmt.Errorf("cluster: cannot remove last shard %q while it hosts sessions", id)
	}
	c.mu.Unlock()

	// Drain first: stop new placements while the sessions move off.
	if err := c.client.drainShard(sh.CtlBase, true); err != nil {
		return fmt.Errorf("cluster: drain %s: %w", id, err)
	}

	c.mu.Lock()
	ids := make([]string, 0, len(c.shards)-1)
	for sid := range c.shards {
		if sid != id {
			ids = append(ids, sid)
		}
	}
	ring, err := NewRing(ids, c.cfg.VirtualNodes)
	if err != nil {
		c.mu.Unlock()
		return err
	}
	c.ring = ring
	c.mu.Unlock()

	if err := c.rebalanceLocked(); err != nil {
		return err
	}

	c.mu.Lock()
	delete(c.shards, id)
	if c.mShards != nil {
		c.mShards.Add(-1)
	}
	c.mu.Unlock()
	c.event("shard_leave", id, "",
		obs.EventAttr{Key: "shards", Val: float64(ring.Size())})

	if sh.srv != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		return sh.srv.Shutdown(ctx)
	}
	return nil
}

// KillShard kills a self-hosted shard the way SIGKILL would — no
// drain, no snapshots, subscribers severed — without telling the
// cluster, which must notice via health probes (or an explicit
// RecoverShard). The chaos tests' murder weapon.
func (c *Cluster) KillShard(id string) error {
	c.mu.Lock()
	sh, ok := c.shards[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("cluster: no shard %q", id)
	}
	if sh.srv == nil {
		return fmt.Errorf("cluster: shard %q is not self-hosted", id)
	}
	sh.srv.Kill()
	return nil
}

// sessionsOnLocked counts table entries placed on a shard. Callers
// hold mu.
func (c *Cluster) sessionsOnLocked(shardID string) int {
	n := 0
	for _, p := range c.table {
		if p.ShardID == shardID {
			n++
		}
	}
	return n
}

// Resolve maps a cluster session key to its owning shard's stream
// address and local session ID — the serve.Config.Redirect hook every
// self-hosted shard and the front tier's own data plane share.
func (c *Cluster) Resolve(key string) (addr, localID string, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.table[key]
	if !ok {
		return "", "", false
	}
	sh, ok := c.shards[p.ShardID]
	if !ok {
		return "", "", false
	}
	return sh.StreamAddr, p.LocalID, true
}

// lookup returns a session's placement and shard.
func (c *Cluster) lookup(key string) (placement, *shard, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	p, ok := c.table[key]
	if !ok {
		return placement{}, nil, fmt.Errorf("cluster: no session %q", key)
	}
	sh, ok := c.shards[p.ShardID]
	if !ok {
		return placement{}, nil, fmt.Errorf("cluster: session %q placed on missing shard %q", key, p.ShardID)
	}
	return p, sh, nil
}

// CreateSession places a new session on its ring owner and records the
// routing entry.
func (c *Cluster) CreateSession(req serve.CreateRequest) (Info, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return Info{}, errors.New("cluster: shutting down")
	}
	if c.ring.Size() == 0 {
		c.mu.Unlock()
		return Info{}, errors.New("cluster: no shards")
	}
	c.nextKey++
	key := fmt.Sprintf("c%06d", c.nextKey)
	owner := c.ring.Owner(key)
	sh := c.shards[owner]
	c.mu.Unlock()

	info, err := c.client.createSession(sh.CtlBase, req)
	if err != nil {
		return Info{}, err
	}

	c.mu.Lock()
	c.table[key] = placement{ShardID: owner, LocalID: info.ID, WantRun: !req.StartPaused}
	if c.mRouted != nil {
		c.mRouted.Add(1)
	}
	c.mu.Unlock()
	c.mCreated.Inc()
	c.event("cluster_create", key, owner,
		obs.EventAttr{Key: "ticks", Val: float64(req.Ticks)})
	return Info{Key: key, Shard: owner, SessionInfo: info}, nil
}

// DeleteSession removes a session from its shard and the table.
func (c *Cluster) DeleteSession(key string) error {
	p, sh, err := c.lookup(key)
	if err != nil {
		return err
	}
	if err := c.client.deleteSession(sh.CtlBase, p.LocalID); err != nil {
		return err
	}
	c.forget(key)
	c.event("cluster_delete", key, p.ShardID)
	return nil
}

// forget drops a session's routing entry and stored checkpoint (the
// durable copy too).
func (c *Cluster) forget(key string) {
	c.mu.Lock()
	if _, ok := c.table[key]; ok {
		delete(c.table, key)
		if c.mRouted != nil {
			c.mRouted.Add(-1)
		}
	}
	delete(c.ckpts, key)
	c.mu.Unlock()
	if c.store != nil {
		c.store.Delete(key)
	}
}

// storeCkpt records a session's latest checkpoint in memory and, when
// a store is configured, durably on disk.
func (c *Cluster) storeCkpt(key string, ck storedCkpt) {
	c.mu.Lock()
	c.ckpts[key] = ck
	c.mu.Unlock()
	if c.store != nil {
		c.store.Put(key, store.Record{Blob: ck.Blob, Tick: ck.Tick, Running: ck.Running})
	}
}

// setWantRun records the control plane's run intent for a key.
func (c *Cluster) setWantRun(key string, v bool) {
	c.mu.Lock()
	if p, ok := c.table[key]; ok {
		p.WantRun = v
		c.table[key] = p
	}
	c.mu.Unlock()
}

// PauseSession suspends a session's tick loop via its shard.
func (c *Cluster) PauseSession(key string) error {
	p, sh, err := c.lookup(key)
	if err != nil {
		return err
	}
	if err := c.client.pauseSession(sh.CtlBase, p.LocalID); err != nil {
		return err
	}
	c.setWantRun(key, false)
	return nil
}

// ResumeSession releases a paused session via its shard.
func (c *Cluster) ResumeSession(key string) error {
	p, sh, err := c.lookup(key)
	if err != nil {
		return err
	}
	if err := c.client.resumeSession(sh.CtlBase, p.LocalID); err != nil {
		return err
	}
	c.setWantRun(key, true)
	return nil
}

// Info is the front tier's view of one session: the cluster key and
// owning shard wrapped around the shard's own info.
type Info struct {
	Key   string `json:"key"`
	Shard string `json:"shard"`
	serve.SessionInfo
}

// SessionInfo fetches one session's current info from its shard.
func (c *Cluster) SessionInfo(key string) (Info, error) {
	p, sh, err := c.lookup(key)
	if err != nil {
		return Info{}, err
	}
	info, err := c.client.getSession(sh.CtlBase, p.LocalID)
	if err != nil {
		return Info{}, err
	}
	return Info{Key: key, Shard: p.ShardID, SessionInfo: info}, nil
}

// Sessions lists every routed session's info, ordered by key.
func (c *Cluster) Sessions() ([]Info, error) {
	c.mu.Lock()
	keys := make([]string, 0, len(c.table))
	for key := range c.table {
		keys = append(keys, key)
	}
	c.mu.Unlock()
	sortStrings(keys)
	infos := make([]Info, 0, len(keys))
	for _, key := range keys {
		info, err := c.SessionInfo(key)
		if err != nil {
			// A session can vanish between the snapshot and the fetch
			// (deleted, or its shard died); skip rather than fail the list.
			continue
		}
		infos = append(infos, info)
	}
	return infos, nil
}

// ShardInfo is the control plane's view of one shard.
type ShardInfo struct {
	ID         string `json:"id"`
	CtlBase    string `json:"ctl"`
	StreamAddr string `json:"stream"`
	SelfHosted bool   `json:"self_hosted"`
	Ready      bool   `json:"ready"`
	Sessions   int    `json:"sessions"`
}

// ClusterInfo is the control plane's topology view.
type ClusterInfo struct {
	Shards   []ShardInfo `json:"shards"`
	Sessions int         `json:"sessions"`
}

// Topology reports the shard set with liveness and placement counts.
func (c *Cluster) Topology() ClusterInfo {
	c.mu.Lock()
	shards := make([]*shard, 0, len(c.shards))
	for _, sh := range c.shards {
		shards = append(shards, sh)
	}
	sessions := len(c.table)
	counts := make(map[string]int, len(shards))
	for _, p := range c.table {
		counts[p.ShardID]++
	}
	c.mu.Unlock()

	info := ClusterInfo{Sessions: sessions}
	for _, sh := range shards {
		info.Shards = append(info.Shards, ShardInfo{
			ID:         sh.ID,
			CtlBase:    sh.CtlBase,
			StreamAddr: sh.StreamAddr,
			SelfHosted: sh.srv != nil,
			Ready:      c.client.probeReady(sh.CtlBase),
			Sessions:   counts[sh.ID],
		})
	}
	sortShardInfos(info.Shards)
	return info
}

// Shutdown stops the loops, shuts the front tier's planes, and
// gracefully shuts down every self-hosted shard.
func (c *Cluster) Shutdown(ctx context.Context) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	shards := make([]*shard, 0, len(c.shards))
	for _, sh := range c.shards {
		shards = append(shards, sh)
	}
	c.mu.Unlock()

	close(c.stop)
	c.strLn.Close()
	httpErr := c.httpSrv.Shutdown(ctx)

	var shardErr error
	for _, sh := range shards {
		if sh.srv != nil {
			if err := sh.srv.Shutdown(ctx); err != nil && shardErr == nil {
				shardErr = err
			}
		}
	}

	done := make(chan struct{})
	go func() {
		c.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	if httpErr != nil {
		return httpErr
	}
	return shardErr
}

// sortStrings is an allocation-free insertion sort for short key lists.
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func sortShardInfos(s []ShardInfo) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].ID < s[j-1].ID; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
