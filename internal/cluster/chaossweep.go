package cluster

import (
	"errors"
	"fmt"

	"mindful/internal/chaosnet"
)

// The chaos sweep is the robustness counterpart of BENCH_cluster: the
// same clustered load scenario, run at a ladder of fault intensities
// with a fixed chaos seed, so the output is a set of curves — session
// survival, migration success, retry volume, delivery p99 — over how
// hostile the network is. The seeded transport gives common random
// numbers across the ladder: intensity 0.5 injects a strict subset of
// intensity 1.0's faults, so the curves are monotone by construction
// and a regression shows up as a shape change, not sampling noise.
// Intensity 0 takes the exact fault-free code path, pinning the
// sweep's baseline to BENCH_cluster's numbers.

// DefaultSweepIntensities is the standard ladder.
func DefaultSweepIntensities() []float64 { return []float64{0, 0.25, 0.5, 1.0, 2.0} }

// SweepPoint is one intensity's run.
type SweepPoint struct {
	Intensity float64     `json:"intensity"`
	Result    *LoadResult `json:"result"`
}

// ChaosSweep is the BENCH_chaos.json document.
type ChaosSweep struct {
	Seed        int64            `json:"chaos_seed"`
	Profile     chaosnet.Profile `json:"profile"`
	Shards      int              `json:"shards"`
	Sessions    int              `json:"sessions"`
	Ticks       int              `json:"ticks"`
	Points      []SweepPoint     `json:"points"`
	TotalFaults int64            `json:"total_faults_injected"`
}

// RunChaosSweep runs the load scenario once per intensity and collects
// the curves. The base config's own chaos fields are overridden per
// point; everything else (shards, sessions, migrations, kill) is held
// fixed so intensity is the only moving variable.
func RunChaosSweep(base LoadConfig, intensities []float64, seed int64) (*ChaosSweep, error) {
	if len(intensities) == 0 {
		intensities = DefaultSweepIntensities()
	}
	prof := chaosnet.DefaultProfile()
	if base.ChaosProfile != nil {
		prof = *base.ChaosProfile
	}
	sweep := &ChaosSweep{
		Seed:     seed,
		Profile:  prof,
		Shards:   base.Shards,
		Sessions: base.Sessions,
		Ticks:    base.Ticks,
	}
	for _, x := range intensities {
		if x < 0 {
			return nil, errors.New("cluster: sweep intensity must be >= 0")
		}
		cfg := base
		cfg.ChaosIntensity = x
		cfg.ChaosSeed = seed
		res, err := RunLoad(cfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: chaos sweep at intensity %g: %w", x, err)
		}
		sweep.Points = append(sweep.Points, SweepPoint{Intensity: x, Result: res})
		s := res.ChaosStats
		sweep.TotalFaults += s.Drops + s.Resets + s.Cuts + s.Partitioned
	}
	return sweep, nil
}
