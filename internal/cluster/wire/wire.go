// Package wire is the inter-gateway checkpoint-transfer format: one
// live session frozen into a self-describing envelope that a source
// shard exports and a target shard imports during migration. The
// envelope wraps the versioned checkpoint blob (internal/serve/
// checkpoint) with the cluster-level identity the shards themselves do
// not know — the cluster session key — plus the tick the snapshot was
// taken at, so the importer can sanity-check the transfer before it
// rebuilds a pipeline.
//
// Format (all integers big-endian):
//
//	magic    [4]byte  "MFMG"
//	version  uint16   envelope version (currently 1)
//	key      uint16 length + bytes, the cluster session key
//	source   uint16 length + bytes, the exporting shard's local ID
//	tick     uint64   pipeline tick at snapshot
//	blob     uint32 length + bytes, the checkpoint blob
//
// The same versioning rules as the checkpoint codec apply: decoders
// reject versions they do not know, every length field is bounded, and
// truncated or trailing bytes are errors — malformed input must never
// panic or force an unbounded allocation (FuzzMigrationDecode pins
// this). The checkpoint blob itself is passed through opaquely; its own
// codec validates it on restore.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Magic identifies a MINDFUL migration envelope.
var Magic = [4]byte{'M', 'F', 'M', 'G'}

// Version is the current envelope version.
const Version uint16 = 1

// Bounds on decoded length fields: keys and shard IDs are short
// human-readable strings; the blob bound matches the control plane's
// request-body cap so an envelope can always travel over it.
const (
	maxKeyLen  = 256
	maxBlobLen = 16 << 20
)

// Decoding errors.
var (
	ErrBadMagic    = errors.New("wire: bad magic")
	ErrBadVersion  = errors.New("wire: unsupported version")
	ErrTruncated   = errors.New("wire: truncated")
	ErrTrailing    = errors.New("wire: trailing bytes")
	ErrLengthBound = errors.New("wire: length field exceeds bound")
)

// Envelope is one migrating session on the wire.
type Envelope struct {
	// Key is the cluster-wide session key the front tier routes by.
	Key string
	// SourceID is the exporting shard's local session ID — diagnostic
	// only; the importer assigns its own.
	SourceID string
	// Tick is the pipeline tick the checkpoint was taken at.
	Tick uint64
	// Blob is the opaque checkpoint blob (internal/serve/checkpoint).
	Blob []byte
}

// Encode serializes the envelope.
func Encode(e Envelope) ([]byte, error) {
	if len(e.Key) > maxKeyLen {
		return nil, fmt.Errorf("%w: key %d bytes", ErrLengthBound, len(e.Key))
	}
	if len(e.SourceID) > maxKeyLen {
		return nil, fmt.Errorf("%w: source ID %d bytes", ErrLengthBound, len(e.SourceID))
	}
	if len(e.Blob) > maxBlobLen {
		return nil, fmt.Errorf("%w: blob %d bytes", ErrLengthBound, len(e.Blob))
	}
	b := make([]byte, 0, 4+2+2+len(e.Key)+2+len(e.SourceID)+8+4+len(e.Blob))
	b = append(b, Magic[:]...)
	b = binary.BigEndian.AppendUint16(b, Version)
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.Key)))
	b = append(b, e.Key...)
	b = binary.BigEndian.AppendUint16(b, uint16(len(e.SourceID)))
	b = append(b, e.SourceID...)
	b = binary.BigEndian.AppendUint64(b, e.Tick)
	b = binary.BigEndian.AppendUint32(b, uint32(len(e.Blob)))
	return append(b, e.Blob...), nil
}

// reader consumes fixed-width fields, remembering the first error so
// call sites stay linear (the checkpoint codec's pattern).
type reader struct {
	b   []byte
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = ErrTruncated
		return nil
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out
}

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

// str reads a u16-length-prefixed string bounded by maxKeyLen.
func (r *reader) str() string {
	n := int(r.u16())
	if r.err == nil && n > maxKeyLen {
		r.err = ErrLengthBound
		return ""
	}
	b := r.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// Decode parses an envelope. Malformed input returns an error — never a
// panic, never an allocation beyond the input's own length.
func Decode(buf []byte) (Envelope, error) {
	var e Envelope
	r := &reader{b: buf}
	if m := r.take(4); r.err != nil || [4]byte(m) != Magic {
		if r.err == nil {
			r.err = ErrBadMagic
		}
		return Envelope{}, r.err
	}
	if v := r.u16(); r.err == nil && v != Version {
		r.err = fmt.Errorf("%w: %d (this build supports %d)", ErrBadVersion, v, Version)
	}
	e.Key = r.str()
	e.SourceID = r.str()
	e.Tick = r.u64()
	n := int(r.u32())
	if r.err == nil && n > maxBlobLen {
		r.err = ErrLengthBound
	}
	// The blob can never exceed the remaining bytes — reject before
	// allocating on a forged length.
	if r.err == nil && n > len(r.b) {
		r.err = ErrTruncated
	}
	if b := r.take(n); b != nil && n > 0 {
		e.Blob = append([]byte(nil), b...)
	}
	if r.err != nil {
		return Envelope{}, r.err
	}
	if len(r.b) != 0 {
		return Envelope{}, ErrTrailing
	}
	return e, nil
}
