package wire

import (
	"bytes"
	"testing"
)

// FuzzMigrationDecode pins the decoder's two contracts on hostile
// input: errors, never panics, and no allocation beyond the input's own
// length (a forged length field must be rejected before make). Valid
// envelopes must re-encode byte-identically — the canonical-form
// invariant the migration path relies on.
func FuzzMigrationDecode(f *testing.F) {
	seed, err := Encode(Envelope{Key: "c000001", SourceID: "s000001", Tick: 42, Blob: []byte{1, 2, 3, 4}})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte{})
	f.Add(Magic[:])
	f.Add(append(append([]byte{}, Magic[:]...), 0, 1, 0xFF, 0xFF))
	f.Fuzz(func(t *testing.T, buf []byte) {
		e, err := Decode(buf)
		if err != nil {
			return
		}
		if len(e.Blob) > len(buf) {
			t.Fatalf("decoded blob %d bytes from %d input bytes", len(e.Blob), len(buf))
		}
		out, err := Encode(e)
		if err != nil {
			t.Fatalf("valid envelope failed to re-encode: %v", err)
		}
		if !bytes.Equal(out, buf) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", buf, out)
		}
	})
}
