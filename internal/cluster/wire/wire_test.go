package wire

import (
	"bytes"
	"strings"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	cases := []Envelope{
		{},
		{Key: "c000001", SourceID: "s000042", Tick: 123, Blob: []byte{1, 2, 3}},
		{Key: strings.Repeat("k", maxKeyLen), Tick: 1<<64 - 1, Blob: bytes.Repeat([]byte{0xAB}, 4096)},
	}
	for _, want := range cases {
		buf, err := Encode(want)
		if err != nil {
			t.Fatalf("Encode(%+v): %v", want, err)
		}
		got, err := Decode(buf)
		if err != nil {
			t.Fatalf("Decode: %v", err)
		}
		if got.Key != want.Key || got.SourceID != want.SourceID || got.Tick != want.Tick || !bytes.Equal(got.Blob, want.Blob) {
			t.Fatalf("round trip %+v != %+v", got, want)
		}
	}
}

func TestEncodeBounds(t *testing.T) {
	if _, err := Encode(Envelope{Key: strings.Repeat("k", maxKeyLen+1)}); err == nil {
		t.Fatal("oversized key encoded")
	}
	if _, err := Encode(Envelope{SourceID: strings.Repeat("s", maxKeyLen+1)}); err == nil {
		t.Fatal("oversized source ID encoded")
	}
	if _, err := Encode(Envelope{Blob: make([]byte, maxBlobLen+1)}); err == nil {
		t.Fatal("oversized blob encoded")
	}
}

func TestDecodeErrors(t *testing.T) {
	good, err := Encode(Envelope{Key: "c1", SourceID: "s1", Tick: 7, Blob: []byte{9, 9}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       nil,
		"bad magic":   []byte("NOPE\x00\x01"),
		"bad version": append(append([]byte{}, Magic[:]...), 0x00, 0x63),
		"truncated":   good[:len(good)-1],
		"trailing":    append(append([]byte{}, good...), 0),
	}
	// A forged blob length must not allocate: claim 16 MiB with 2 bytes
	// of payload behind it.
	forged := append([]byte{}, good[:len(good)-6]...)
	forged = append(forged, 0x00, 0xFF, 0xFF, 0xFF, 9, 9)
	cases["forged blob length"] = forged
	for name, buf := range cases {
		if _, err := Decode(buf); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
}
