package sched

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"mindful/internal/dnnmodel"
	"mindful/internal/mac"
	"mindful/internal/units"
)

// model builds a dense-only model from (in, out) pairs.
func model(dims ...int) dnnmodel.Model {
	layers := make([]dnnmodel.LayerSpec, 0, len(dims)-1)
	for i := 0; i+1 < len(dims); i++ {
		layers = append(layers, dnnmodel.LayerSpec{Kind: dnnmodel.DenseKind, In: dims[i], Out: dims[i+1]})
	}
	return dnnmodel.Model{Name: "test", Channels: dims[0], Alpha: 1, Labels: dims[len(dims)-1], Layers: layers}
}

func TestNonPipelinedHandComputed(t *testing.T) {
	// One layer: 8 ops × 100 seq at t_MAC = 2 ns → work per unit pass =
	// 200 ns. Deadline 400 ns → need ⌈8/h⌉·200 ≤ 400 → h = 4.
	m := model(100, 8)
	r, err := NonPipelined(m, 400*time.Nanosecond, mac.NanGate45)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || r.MACHW != 4 {
		t.Errorf("result = %+v, want 4 units", r)
	}
	// Power = 4 × 0.05 mW.
	if got := r.Power.Milliwatts(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("power = %v mW, want 0.2", got)
	}
}

func TestNonPipelinedInfeasible(t *testing.T) {
	// MAC_seq alone exceeds the deadline: 100 seq × 2 ns = 200 ns > 100 ns
	// even with one unit per op.
	m := model(100, 8)
	r, err := NonPipelined(m, 100*time.Nanosecond, mac.NanGate45)
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible {
		t.Errorf("expected infeasible, got %+v", r)
	}
}

func TestPipelinedHandComputed(t *testing.T) {
	// Two layers: L1 = 16 ops × 50 seq, L2 = 4 ops × 100 seq, t_MAC = 2 ns,
	// deadline 400 ns.
	// L1: ⌈16/h⌉·100 ≤ 400 → h₁ = 4. L2: ⌈4/h⌉·200 ≤ 400 → h₂ = 2.
	m := dnnmodel.Model{Name: "t", Channels: 50, Alpha: 1, Labels: 4, Layers: []dnnmodel.LayerSpec{
		{Kind: dnnmodel.DenseKind, In: 50, Out: 16},
		{Kind: dnnmodel.DenseKind, In: 100, Out: 4},
	}}
	r, err := Pipelined(m, 400*time.Nanosecond, mac.NanGate45)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible || r.MACHW != 6 {
		t.Fatalf("result = %+v, want 6 units", r)
	}
	if len(r.PerLayer) != 2 || r.PerLayer[0] != 4 || r.PerLayer[1] != 2 {
		t.Errorf("per-layer = %v, want [4 2]", r.PerLayer)
	}
}

func TestBestPicksCheaper(t *testing.T) {
	m := model(256, 64, 40)
	deadline := DeadlineFor(units.Kilohertz(8))
	np, err := NonPipelined(m, deadline, mac.NanGate45)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Pipelined(m, deadline, mac.NanGate45)
	if err != nil {
		t.Fatal(err)
	}
	best, err := Best(m, deadline, mac.NanGate45)
	if err != nil {
		t.Fatal(err)
	}
	want := np.MACHW
	if pl.Feasible && (!np.Feasible || pl.MACHW < np.MACHW) {
		want = pl.MACHW
	}
	if !best.Feasible || best.MACHW != want {
		t.Errorf("best = %+v, np = %+v, pl = %+v", best, np, pl)
	}
}

func TestSolverRespectsWorkFloorProperty(t *testing.T) {
	// No feasible schedule may beat the work-density floor, and the found
	// minimum must be genuinely minimal (h−1 must fail).
	f := func(inRaw, outRaw, fRaw uint16) bool {
		in := int(inRaw%500) + 1
		out := int(outRaw%500) + 1
		freq := float64(fRaw%30000) + 1000
		m := model(in, out, 40)
		deadline := DeadlineFor(units.Hertz(freq))
		r, err := NonPipelined(m, deadline, mac.NanGate45)
		if err != nil {
			return false
		}
		if !r.Feasible {
			return true
		}
		if r.MACHW < MinMACsFloor(m, deadline, mac.NanGate45) {
			return false
		}
		if r.MACHW > 1 {
			// h−1 must be insufficient: recompute the total time.
			var total time.Duration
			for _, l := range m.Layers {
				total += layerTime(l, r.MACHW-1, mac.NanGate45.TMAC)
			}
			if total <= deadline {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestDeadlineMonotoneProperty(t *testing.T) {
	// A longer deadline never needs more units.
	m := model(512, 128, 40)
	f := func(a, b uint16) bool {
		d1 := time.Duration(int(a%1000)+50) * time.Microsecond
		d2 := d1 + time.Duration(int(b%1000))*time.Microsecond
		r1, err1 := Best(m, d1, mac.NanGate45)
		r2, err2 := Best(m, d2, mac.NanGate45)
		if err1 != nil || err2 != nil {
			return false
		}
		if !r1.Feasible {
			return true
		}
		return r2.Feasible && r2.MACHW <= r1.MACHW
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestTechnologyScalingReducesPower(t *testing.T) {
	// Section 6.2: moving from 45 nm to 12 nm must cut the power floor.
	m, err := dnnmodel.MLP().Scale(1024)
	if err != nil {
		t.Fatal(err)
	}
	deadline := DeadlineFor(units.Kilohertz(8))
	r45, err := Best(m, deadline, mac.NanGate45)
	if err != nil {
		t.Fatal(err)
	}
	r12, err := Best(m, deadline, mac.Node12)
	if err != nil {
		t.Fatal(err)
	}
	if !r45.Feasible || !r12.Feasible {
		t.Fatalf("expected both nodes feasible: %+v / %+v", r45, r12)
	}
	if r12.Power.Watts() >= r45.Power.Watts() {
		t.Errorf("12 nm power %v not below 45 nm %v", r12.Power, r45.Power)
	}
	// 12 nm is also faster, so it needs no more units.
	if r12.MACHW > r45.MACHW {
		t.Errorf("12 nm units %d > 45 nm %d", r12.MACHW, r45.MACHW)
	}
}

func TestPaperScaleMagnitudes(t *testing.T) {
	// Calibration guard for Fig. 10: the MLP at 1024 channels on a
	// BISC-like SoC (f = 8 kHz, 45 nm) must land in the tens-of-mW
	// regime — large enough to pressure budgets, small enough that the
	// roomiest SoCs can host it.
	m, err := dnnmodel.MLP().Scale(1024)
	if err != nil {
		t.Fatal(err)
	}
	r, err := Best(m, DeadlineFor(units.Kilohertz(8)), mac.NanGate45)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Feasible {
		t.Fatal("MLP@1024 must be schedulable")
	}
	if mw := r.Power.Milliwatts(); mw < 5 || mw > 80 {
		t.Errorf("MLP@1024 power floor = %v mW, want 5–80 mW", mw)
	}
}

func TestInputValidation(t *testing.T) {
	m := model(10, 5)
	if _, err := NonPipelined(m, 0, mac.NanGate45); err == nil {
		t.Errorf("zero deadline should fail")
	}
	if _, err := Pipelined(m, -time.Second, mac.NanGate45); err == nil {
		t.Errorf("negative deadline should fail")
	}
	if _, err := Best(dnnmodel.Model{}, time.Second, mac.NanGate45); err == nil {
		t.Errorf("empty model should fail")
	}
	if _, err := NonPipelined(m, time.Second, mac.TechNode{Name: "broken"}); err == nil {
		t.Errorf("node without timing should fail")
	}
}

func TestBestBothInfeasible(t *testing.T) {
	m := model(100000, 1)
	r, err := Best(m, time.Nanosecond, mac.NanGate45)
	if err != nil {
		t.Fatal(err)
	}
	if r.Feasible {
		t.Errorf("expected infeasible")
	}
}

func TestDeadlineFor(t *testing.T) {
	if got := DeadlineFor(units.Kilohertz(8)); got != 125*time.Microsecond {
		t.Errorf("deadline = %v, want 125µs", got)
	}
}
