// Package sched computes the paper's architecture-independent lower bound
// on on-implant DNN computation (Section 5.3, Equations 11–15): the
// minimum number of MAC units (#MAC_hw) that can execute a network within
// the real-time deadline t = 1/f, and the resulting power floor
// P_comp = #MAC_hw · P_MAC (Eq. 13).
//
// Two execution disciplines are supported, mirroring the paper:
//
//   - Non-pipelined (Eq. 11–12): one shared pool of MAC units processes the
//     layers in sequence; Σᵢ MAC_seqᵢ·t_MAC·⌈#MAC_opᵢ/#MAC_hw⌉ ≤ t, with
//     #MAC_hw bounded by the widest layer.
//   - Pipelined (Eq. 14–15): each layer has its own units and the slowest
//     stage bounds the rate; per layer, MAC_seqᵢ·t_MAC·⌈#MAC_opᵢ/hᵢ⌉ ≤ t.
//
// The paper reports the better of the two for each design point; Best does
// the same.
package sched

import (
	"fmt"
	"sync/atomic"
	"time"

	"mindful/internal/dnnmodel"
	"mindful/internal/mac"
	"mindful/internal/mathx"
	"mindful/internal/obs"
	"mindful/internal/units"
)

// observer is the package-wide observability sink (the scheduler's entry
// points are free functions, so the hook is package-scoped). Set with
// SetObserver; nil disables accounting.
var observer atomic.Pointer[obs.Observer]

// SetObserver wires the scheduler to an observability sink: per-solve
// counters, solve-time histograms and a MAC-unit gauge, labeled by model
// and discipline. Pass nil to detach.
func SetObserver(o *obs.Observer) { observer.Store(o) }

var solveBuckets = obs.ExpBuckets(1e-6, 4, 10)

// recordSolve accounts one Best solve.
func recordSolve(m dnnmodel.Model, node mac.TechNode, r Result, elapsed time.Duration) {
	o := observer.Load()
	if o == nil {
		return
	}
	discipline := "non-pipelined"
	if r.Pipelined {
		discipline = "pipelined"
	}
	if !r.Feasible {
		discipline = "infeasible"
	}
	lbls := []obs.Label{
		{Key: "model", Value: m.Name},
		{Key: "node", Value: node.Name},
		{Key: "discipline", Value: discipline},
	}
	reg := o.Metrics
	reg.Counter("sched_solves_total", lbls...).Inc()
	reg.Histogram("sched_solve_seconds", solveBuckets, lbls...).Observe(elapsed.Seconds())
	reg.Gauge("sched_mac_units", lbls...).Set(float64(r.MACHW))
	reg.Help("sched_solves_total", "Lower-bound scheduling solves.")
	reg.Help("sched_solve_seconds", "Wall-clock time per scheduling solve.")
	reg.Help("sched_mac_units", "MAC units of the latest solve (Eq. 13 lower bound).")
}

// Result is the outcome of a lower-bound scheduling problem.
type Result struct {
	// Feasible is false when no unit count meets the deadline (a single
	// MAC_op's sequence alone overruns t).
	Feasible bool
	// Pipelined records which discipline produced this result.
	Pipelined bool
	// MACHW is the total number of MAC units (Σ hᵢ when pipelined).
	MACHW int
	// PerLayer holds hᵢ for pipelined results (nil otherwise).
	PerLayer []int
	// Power is the Eq. (13) lower bound #MAC_hw · P_MAC.
	Power units.Power
}

func checkInputs(m dnnmodel.Model, deadline time.Duration, node mac.TechNode) error {
	if err := m.Validate(); err != nil {
		return err
	}
	if deadline <= 0 {
		return fmt.Errorf("sched: non-positive deadline %v", deadline)
	}
	if node.TMAC <= 0 {
		return fmt.Errorf("sched: node %q has no MAC timing", node.Name)
	}
	return nil
}

// layerTime returns the execution time of one layer on h shared units.
func layerTime(l dnnmodel.LayerSpec, h int, tmac time.Duration) time.Duration {
	passes := mathx.CeilDiv(l.MACOps(), h)
	return time.Duration(l.MACSeq()) * tmac * time.Duration(passes)
}

// NonPipelined solves Eq. (11)–(12): the smallest shared pool meeting the
// deadline.
func NonPipelined(m dnnmodel.Model, deadline time.Duration, node mac.TechNode) (Result, error) {
	if err := checkInputs(m, deadline, node); err != nil {
		return Result{}, err
	}
	maxOps := 0
	for _, l := range m.Layers {
		if ops := l.MACOps(); ops > maxOps {
			maxOps = ops
		}
	}
	fits := func(h int) bool {
		var total time.Duration
		for _, l := range m.Layers {
			total += layerTime(l, h, node.TMAC)
			if total > deadline {
				return false
			}
		}
		return true
	}
	h, ok := mathx.MinIntWhere(1, maxOps, fits)
	if !ok {
		return Result{Feasible: false}, nil
	}
	return Result{
		Feasible: true,
		MACHW:    h,
		Power:    units.Power(float64(h) * node.PMAC.Watts()),
	}, nil
}

// Pipelined solves Eq. (14)–(15): per-layer unit counts with every stage
// meeting the deadline independently.
func Pipelined(m dnnmodel.Model, deadline time.Duration, node mac.TechNode) (Result, error) {
	if err := checkInputs(m, deadline, node); err != nil {
		return Result{}, err
	}
	per := make([]int, len(m.Layers))
	total := 0
	for i, l := range m.Layers {
		l := l
		h, ok := mathx.MinIntWhere(1, l.MACOps(), func(h int) bool {
			return layerTime(l, h, node.TMAC) <= deadline
		})
		if !ok {
			return Result{Feasible: false, Pipelined: true}, nil
		}
		per[i] = h
		total += h
	}
	return Result{
		Feasible:  true,
		Pipelined: true,
		MACHW:     total,
		PerLayer:  per,
		Power:     units.Power(float64(total) * node.PMAC.Watts()),
	}, nil
}

// Best returns the lower-power feasible result of the two disciplines, as
// the paper reports "the best result between a pipelined and a
// non-pipelined design". If neither is feasible the returned result has
// Feasible == false.
func Best(m dnnmodel.Model, deadline time.Duration, node mac.TechNode) (Result, error) {
	start := time.Now()
	np, err := NonPipelined(m, deadline, node)
	if err != nil {
		return Result{}, err
	}
	pl, err := Pipelined(m, deadline, node)
	if err != nil {
		return Result{}, err
	}
	var best Result
	switch {
	case np.Feasible && pl.Feasible:
		best = np
		if pl.MACHW < np.MACHW {
			best = pl
		}
	case np.Feasible:
		best = np
	case pl.Feasible:
		best = pl
	default:
		best = Result{Feasible: false}
	}
	recordSolve(m, node, best, time.Since(start))
	return best, nil
}

// DeadlineFor returns the real-time budget for a sampling frequency: the
// paper's t = 1/f (processing keeps pace with the NI sampling rate).
func DeadlineFor(f units.Frequency) time.Duration {
	return time.Duration(f.Period() * float64(time.Second))
}

// MinMACsFloor returns the information-theoretic floor ⌈totalMACs·t_MAC/t⌉:
// no schedule can use fewer units than the work-density bound. Useful as a
// sanity check on solver results.
func MinMACsFloor(m dnnmodel.Model, deadline time.Duration, node mac.TechNode) int {
	work := time.Duration(m.TotalMACs()) * node.TMAC
	return int((work + deadline - 1) / deadline)
}
