// Package afe models the analog front end of a neural recording channel:
// the low-noise amplifier, priced by its noise efficiency factor (NEF),
// and the ADC, priced by its Walden figure of merit.
//
// This is the physical basis of the paper's Section 4.1 scaling assumption:
// Simmich et al. (the paper's citation [107]) show that amplifier power at
// constant signal quality — constant NEF and input-referred noise — scales
// linearly with channel count. Here that result is derived rather than
// assumed: per-channel power follows from the NEF definition
//
//	NEF = V_ni,rms · √( 2·I_tot / (π·U_T·4kT·BW) )
//
// solved for the total supply current I_tot, and total sensing power is
// channels × (amplifier + ADC share).
package afe

import (
	"fmt"
	"math"

	"mindful/internal/units"
)

// Physical constants at body temperature.
const (
	// ThermalVoltage is U_T = kT/q at 310 K, in volts.
	ThermalVoltage = 0.0267
	// FourKT is 4kT at 310 K, in J.
	FourKT = 4 * units.Boltzmann * units.BodyTemperature
)

// Amplifier is a low-noise neural amplifier characterized by its NEF.
type Amplifier struct {
	// NEF is the noise efficiency factor (≥ 1 in theory; 2–4 for good
	// neural amplifiers).
	NEF float64
	// SupplyV is the supply voltage in volts.
	SupplyV float64
	// BandwidthHz is the amplifier's noise bandwidth.
	BandwidthHz float64
	// InputNoiseVrms is the input-referred RMS noise in volts.
	InputNoiseVrms float64
}

// TypicalNeuralAmp returns a representative action-potential-band
// amplifier: NEF 3, 1 V supply, 10 kHz bandwidth, 5 µV rms input noise.
func TypicalNeuralAmp() Amplifier {
	return Amplifier{NEF: 3, SupplyV: 1.0, BandwidthHz: 10e3, InputNoiseVrms: 5e-6}
}

// Validate checks physical plausibility.
func (a Amplifier) Validate() error {
	if a.NEF < 1 {
		return fmt.Errorf("afe: NEF %g below the theoretical limit of 1", a.NEF)
	}
	if a.SupplyV <= 0 || a.BandwidthHz <= 0 || a.InputNoiseVrms <= 0 {
		return fmt.Errorf("afe: non-positive amplifier parameter")
	}
	return nil
}

// SupplyCurrent returns the total current implied by the NEF definition:
//
//	I_tot = NEF² · π·U_T·4kT·BW / (2·V_ni²)
func (a Amplifier) SupplyCurrent() (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	num := a.NEF * a.NEF * math.Pi * ThermalVoltage * FourKT * a.BandwidthHz
	return num / (2 * a.InputNoiseVrms * a.InputNoiseVrms), nil
}

// Power returns the amplifier's supply power.
func (a Amplifier) Power() (units.Power, error) {
	i, err := a.SupplyCurrent()
	if err != nil {
		return 0, err
	}
	return units.Power(i * a.SupplyV), nil
}

// NoiseForPower inverts the trade-off: the input-referred noise achievable
// at a given per-channel amplifier power (holding NEF, supply, bandwidth).
// Lower noise costs quadratically more power — the reason signal quality,
// not logic, dominates the sensing budget.
func (a Amplifier) NoiseForPower(p units.Power) (float64, error) {
	if err := a.Validate(); err != nil {
		return 0, err
	}
	if p <= 0 {
		return 0, fmt.Errorf("afe: non-positive power")
	}
	i := p.Watts() / a.SupplyV
	num := a.NEF * a.NEF * math.Pi * ThermalVoltage * FourKT * a.BandwidthHz
	return math.Sqrt(num / (2 * i)), nil
}

// ADC is an analog-to-digital converter priced by the Walden figure of
// merit: P = FOM · 2^bits · f_s.
type ADC struct {
	// Bits is the resolution.
	Bits int
	// SampleRateHz is the per-channel conversion rate.
	SampleRateHz float64
	// WaldenFOMJ is the energy per conversion step in joules (good
	// medical-grade SAR ADCs: 10–100 fJ).
	WaldenFOMJ float64
}

// TypicalNeuralADC returns a 10-bit, 20 kS/s SAR converter at 30 fJ/step.
func TypicalNeuralADC() ADC {
	return ADC{Bits: 10, SampleRateHz: 20e3, WaldenFOMJ: 30e-15}
}

// Validate checks plausibility.
func (c ADC) Validate() error {
	if c.Bits < 1 || c.Bits > 24 {
		return fmt.Errorf("afe: ADC bits %d outside 1..24", c.Bits)
	}
	if c.SampleRateHz <= 0 || c.WaldenFOMJ <= 0 {
		return fmt.Errorf("afe: non-positive ADC parameter")
	}
	return nil
}

// Power returns the converter's power.
func (c ADC) Power() (units.Power, error) {
	if err := c.Validate(); err != nil {
		return 0, err
	}
	return units.Power(c.WaldenFOMJ * math.Pow(2, float64(c.Bits)) * c.SampleRateHz), nil
}

// FrontEnd is one recording channel's analog chain. MuxRatio channels may
// share one ADC through time multiplexing (the multiplexed-ADC
// architecture large arrays use); the ADC then runs MuxRatio times faster.
type FrontEnd struct {
	Amp Amplifier
	ADC ADC
	// MuxRatio is the number of channels sharing one ADC (≥ 1).
	MuxRatio int
}

// TypicalFrontEnd returns a representative channel with an 8:1 multiplexed
// ADC.
func TypicalFrontEnd() FrontEnd {
	return FrontEnd{Amp: TypicalNeuralAmp(), ADC: TypicalNeuralADC(), MuxRatio: 8}
}

// Validate checks the chain.
func (f FrontEnd) Validate() error {
	if err := f.Amp.Validate(); err != nil {
		return err
	}
	if err := f.ADC.Validate(); err != nil {
		return err
	}
	if f.MuxRatio < 1 {
		return fmt.Errorf("afe: mux ratio %d must be ≥ 1", f.MuxRatio)
	}
	return nil
}

// PerChannelPower returns one channel's share of the analog chain:
// its amplifier plus 1/MuxRatio of a MuxRatio-times-faster ADC (which is
// exactly one ADC's power at the base rate — multiplexing saves area, not
// first-order power — plus nothing else here).
func (f FrontEnd) PerChannelPower() (units.Power, error) {
	if err := f.Validate(); err != nil {
		return 0, err
	}
	amp, err := f.Amp.Power()
	if err != nil {
		return 0, err
	}
	fast := f.ADC
	fast.SampleRateHz *= float64(f.MuxRatio)
	adc, err := fast.Power()
	if err != nil {
		return 0, err
	}
	return amp + units.Power(adc.Watts()/float64(f.MuxRatio)), nil
}

// SensingPower returns the total analog power for n channels — linear in
// n at constant signal quality, the Section 4.1 first-order scaling law.
func (f FrontEnd) SensingPower(n int) (units.Power, error) {
	if n < 0 {
		return 0, fmt.Errorf("afe: negative channel count %d", n)
	}
	pc, err := f.PerChannelPower()
	if err != nil {
		return 0, err
	}
	return units.Power(pc.Watts() * float64(n)), nil
}

// SensingAreaBudget reports whether n channels of the given per-channel
// analog power fit the paper's power-density limit on a sensing area with
// the given channel pitch (metres): density = P_channel / pitch².
func (f FrontEnd) DensityAtPitch(pitch float64) (units.PowerDensity, error) {
	if pitch <= 0 {
		return 0, fmt.Errorf("afe: non-positive pitch")
	}
	pc, err := f.PerChannelPower()
	if err != nil {
		return 0, err
	}
	return units.DensityOf(pc, units.Area(pitch*pitch)), nil
}

// MaxChannelDensity returns the tightest channel pitch (metres) that keeps
// the sensing array within a power-density limit — the analog-side
// counterpart of the paper's 20 µm spacing goal (Section 3.2).
func (f FrontEnd) MinSafePitch(limit units.PowerDensity) (float64, error) {
	if limit <= 0 {
		return 0, fmt.Errorf("afe: non-positive density limit")
	}
	pc, err := f.PerChannelPower()
	if err != nil {
		return 0, err
	}
	return math.Sqrt(pc.Watts() / limit.WattsPerM2()), nil
}
