package afe

import (
	"math"
	"testing"
	"testing/quick"

	"mindful/internal/thermal"
	"mindful/internal/units"
)

func TestAmplifierPowerMagnitude(t *testing.T) {
	// A typical neural amplifier lands in the single-digit µW regime —
	// consistent with the per-channel powers behind Table 1 (e.g. BISC's
	// ≈19 µW/channel for the whole chain).
	p, err := TypicalNeuralAmp().Power()
	if err != nil {
		t.Fatal(err)
	}
	if uw := p.Microwatts(); uw < 0.5 || uw > 20 {
		t.Errorf("amplifier power = %v µW, want single-digit µW", uw)
	}
}

func TestAmplifierHandComputed(t *testing.T) {
	// I = NEF²·π·U_T·4kT·BW / (2·Vni²) with NEF=2, 1 V, 10 kHz, 10 µV.
	a := Amplifier{NEF: 2, SupplyV: 1, BandwidthHz: 10e3, InputNoiseVrms: 10e-6}
	i, err := a.SupplyCurrent()
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * math.Pi * ThermalVoltage * FourKT * 10e3 / (2 * 1e-10)
	if math.Abs(i-want) > 1e-12*want {
		t.Errorf("current = %v, want %v", i, want)
	}
}

func TestNoisePowerTradeoffQuadratic(t *testing.T) {
	// Halving the input noise must quadruple the power — the fundamental
	// analog scaling wall the paper's Section 8 points at.
	a := TypicalNeuralAmp()
	p1, err := a.Power()
	if err != nil {
		t.Fatal(err)
	}
	a.InputNoiseVrms /= 2
	p2, err := a.Power()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2.Watts()/p1.Watts()-4) > 1e-9 {
		t.Errorf("power ratio = %v, want 4", p2.Watts()/p1.Watts())
	}
}

func TestNoiseForPowerInverse(t *testing.T) {
	a := TypicalNeuralAmp()
	p, err := a.Power()
	if err != nil {
		t.Fatal(err)
	}
	noise, err := a.NoiseForPower(p)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(noise-a.InputNoiseVrms) > 1e-12 {
		t.Errorf("inverse noise = %v, want %v", noise, a.InputNoiseVrms)
	}
	if _, err := a.NoiseForPower(0); err == nil {
		t.Errorf("zero power should fail")
	}
}

func TestNEFPropertyMonotone(t *testing.T) {
	// Power grows with NEF² and with bandwidth; decreases with noise².
	f := func(nefRaw, bwRaw, noiseRaw float64) bool {
		nef := 1 + math.Abs(math.Mod(nefRaw, 5))
		bw := 1e3 + math.Abs(math.Mod(bwRaw, 1e5))
		noise := 1e-6 + math.Abs(math.Mod(noiseRaw, 1e-5))
		a := Amplifier{NEF: nef, SupplyV: 1, BandwidthHz: bw, InputNoiseVrms: noise}
		p1, err := a.Power()
		if err != nil {
			return false
		}
		a.NEF *= 2
		p2, err := a.Power()
		if err != nil {
			return false
		}
		return math.Abs(p2.Watts()/p1.Watts()-4) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAmplifierValidation(t *testing.T) {
	bad := []Amplifier{
		{NEF: 0.5, SupplyV: 1, BandwidthHz: 1e4, InputNoiseVrms: 1e-6},
		{NEF: 3, SupplyV: 0, BandwidthHz: 1e4, InputNoiseVrms: 1e-6},
		{NEF: 3, SupplyV: 1, BandwidthHz: 0, InputNoiseVrms: 1e-6},
		{NEF: 3, SupplyV: 1, BandwidthHz: 1e4, InputNoiseVrms: 0},
	}
	for i, a := range bad {
		if _, err := a.Power(); err == nil {
			t.Errorf("amplifier %d should fail validation", i)
		}
	}
}

func TestADCPower(t *testing.T) {
	// 30 fJ × 2¹⁰ × 20 kS/s ≈ 0.61 µW.
	p, err := TypicalNeuralADC().Power()
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Microwatts(); math.Abs(got-0.6144) > 1e-6 {
		t.Errorf("ADC power = %v µW, want 0.6144", got)
	}
	bad := ADC{Bits: 0, SampleRateHz: 1e4, WaldenFOMJ: 1e-14}
	if _, err := bad.Power(); err == nil {
		t.Errorf("invalid ADC should fail")
	}
	if _, err := (ADC{Bits: 30, SampleRateHz: 1e4, WaldenFOMJ: 1e-14}).Power(); err == nil {
		t.Errorf("too-wide ADC should fail")
	}
}

func TestFrontEndPerChannel(t *testing.T) {
	fe := TypicalFrontEnd()
	pc, err := fe.PerChannelPower()
	if err != nil {
		t.Fatal(err)
	}
	amp, _ := fe.Amp.Power()
	adc, _ := fe.ADC.Power()
	// Per-channel = amplifier + exactly one base-rate ADC's power.
	want := amp.Watts() + adc.Watts()
	if math.Abs(pc.Watts()-want) > 1e-15 {
		t.Errorf("per-channel = %v, want %v", pc.Watts(), want)
	}
	// A full-chain channel stays in the µW regime, below the ≈19 µW
	// per-channel total of BISC (which also includes digital control).
	if uw := pc.Microwatts(); uw < 1 || uw > 19 {
		t.Errorf("per-channel power = %v µW, want 1–19", uw)
	}
}

func TestSensingPowerLinear(t *testing.T) {
	// The Simmich result the paper's Eq. (5) rests on: constant quality →
	// linear power in channel count.
	fe := TypicalFrontEnd()
	p1024, err := fe.SensingPower(1024)
	if err != nil {
		t.Fatal(err)
	}
	p2048, err := fe.SensingPower(2048)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p2048.Watts()-2*p1024.Watts()) > 1e-15 {
		t.Errorf("sensing power not linear: %v vs %v", p1024, p2048)
	}
	if p0, err := fe.SensingPower(0); err != nil || p0 != 0 {
		t.Errorf("zero channels: %v, %v", p0, err)
	}
	if _, err := fe.SensingPower(-1); err == nil {
		t.Errorf("negative channels should fail")
	}
}

func TestDensityAtPitchAndMinSafePitch(t *testing.T) {
	fe := TypicalFrontEnd()
	// At the paper's 20 µm one-channel-per-neuron goal, the analog chain
	// alone blows far past 40 mW/cm² — quantifying why dense NI scaling
	// needs either duty cycling or better amplifiers.
	d20, err := fe.DensityAtPitch(20e-6)
	if err != nil {
		t.Fatal(err)
	}
	if d20.MWPerCM2() < 100 {
		t.Errorf("density at 20 µm pitch = %v, expected ≫ 40 mW/cm²", d20)
	}
	// The minimum safe pitch is self-consistent.
	pitch, err := fe.MinSafePitch(thermal.SafeDensity)
	if err != nil {
		t.Fatal(err)
	}
	d, err := fe.DensityAtPitch(pitch)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.MWPerCM2()-40) > 1e-6 {
		t.Errorf("density at min safe pitch = %v, want 40", d.MWPerCM2())
	}
	// And it lands near ≈100 µm for the typical chain, between today's
	// ECoG pitches and the 20 µm goal.
	if pitch < 30e-6 || pitch > 300e-6 {
		t.Errorf("min safe pitch = %v m, want tens-to-hundreds of µm", pitch)
	}
	if _, err := fe.DensityAtPitch(0); err == nil {
		t.Errorf("zero pitch should fail")
	}
	if _, err := fe.MinSafePitch(0); err == nil {
		t.Errorf("zero limit should fail")
	}
}

func TestFrontEndValidation(t *testing.T) {
	fe := TypicalFrontEnd()
	fe.MuxRatio = 0
	if _, err := fe.PerChannelPower(); err == nil {
		t.Errorf("zero mux ratio should fail")
	}
	fe = TypicalFrontEnd()
	fe.Amp.NEF = 0.1
	if _, err := fe.SensingPower(10); err == nil {
		t.Errorf("invalid amplifier should propagate")
	}
	fe = TypicalFrontEnd()
	fe.ADC.Bits = 0
	if err := fe.Validate(); err == nil {
		t.Errorf("invalid ADC should propagate")
	}
	fe = TypicalFrontEnd()
	fe.Amp.NEF = 0.5
	if _, err := fe.DensityAtPitch(1e-4); err == nil {
		t.Errorf("invalid amp should propagate to density")
	}
	if _, err := fe.MinSafePitch(units.MilliwattsPerCM2(40)); err == nil {
		t.Errorf("invalid amp should propagate to pitch")
	}
}
