package fleet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"mindful/internal/decode"
	"mindful/internal/fixed"
	"mindful/internal/nn"
)

// DecoderKind selects the control algorithm a pipeline's decode stage
// runs — the paper's §2.3/§5 comparison axis (Kalman/Wiener baselines vs
// a fixed-point DNN) inside one serving loop.
type DecoderKind int

// The decoder kinds.
const (
	// DecoderNone disables the decode stage; the pipeline stops at the
	// wearable receiver, exactly as before decoders existed.
	DecoderNone DecoderKind = iota
	// DecoderKalman runs a full (time-varying gain) Kalman filter.
	DecoderKalman
	// DecoderWiener runs a lagged linear (Wiener) filter.
	DecoderWiener
	// DecoderDNN runs a small MLP through the 8-bit fixed-point
	// datapath model — the implanted-ASIC inference arm.
	DecoderDNN
)

// String returns the kind's CLI spelling.
func (k DecoderKind) String() string {
	switch k {
	case DecoderNone:
		return "none"
	case DecoderKalman:
		return "kalman"
	case DecoderWiener:
		return "wiener"
	case DecoderDNN:
		return "dnn"
	}
	return fmt.Sprintf("DecoderKind(%d)", int(k))
}

// ParseDecoderKind maps a CLI spelling to its kind.
func ParseDecoderKind(s string) (DecoderKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none", "off":
		return DecoderNone, nil
	case "kalman":
		return DecoderKalman, nil
	case "wiener":
		return DecoderWiener, nil
	case "dnn":
		return DecoderDNN, nil
	}
	return DecoderNone, fmt.Errorf("fleet: unknown decoder %q (want none, kalman, wiener or dnn)", s)
}

// intentDims is the decoded state dimensionality: the 2-D intent
// (cos θ, sin θ) every implant's generator is driven with.
const intentDims = 2

// DecodeConfig configures the optional decode stage.
type DecodeConfig struct {
	// Kind selects the decoder; DecoderNone (the zero value) disables
	// the stage entirely.
	Kind DecoderKind
	// BinTicks is the number of frames (accepted or concealed) averaged
	// into one decoder observation; 0 means 4.
	BinTicks int
	// Lags is the Wiener filter's lag depth; 0 means 3.
	Lags int
	// Hidden is the DNN decoder's hidden-layer width; 0 means 16.
	Hidden int
}

// Enabled reports whether the config adds a decode stage.
func (c DecodeConfig) Enabled() bool { return c.Kind != DecoderNone }

// withDefaults fills the zero knobs.
func (c DecodeConfig) withDefaults() DecodeConfig {
	if c.BinTicks == 0 {
		c.BinTicks = 4
	}
	if c.Lags == 0 {
		c.Lags = 3
	}
	if c.Hidden == 0 {
		c.Hidden = 16
	}
	return c
}

// Validate checks the configuration.
func (c DecodeConfig) Validate() error {
	if c.Kind < DecoderNone || c.Kind > DecoderDNN {
		return fmt.Errorf("fleet: unknown decoder kind %d", int(c.Kind))
	}
	if c.BinTicks < 0 {
		return fmt.Errorf("fleet: negative decode bin %d", c.BinTicks)
	}
	if c.Lags < 0 {
		return fmt.Errorf("fleet: negative decode lags %d", c.Lags)
	}
	if c.Hidden < 0 {
		return fmt.Errorf("fleet: negative decode hidden width %d", c.Hidden)
	}
	return nil
}

// newSessionDecoder builds implant idx's decoder. Everything is a pure
// function of (seed, index): the calibration set is synthesized from the
// same intent trajectory the generator follows, observed through random
// per-channel tuning gains drawn from the implant's StreamDecode stream,
// so a restored session refits the identical decoder.
func newSessionDecoder(cfg Config, idx int) (decode.Decoder, error) {
	dc := cfg.Decode.withDefaults()
	rng := rand.New(rand.NewSource(DeriveSeed(cfg.Seed, uint64(idx), StreamDecode)))
	ch := cfg.Channels

	if dc.Kind == DecoderDNN {
		net, err := nn.NewNetwork(1, ch,
			nn.RandDense(rng, ch, dc.Hidden, nn.ReLU),
			nn.RandDense(rng, dc.Hidden, intentDims, nn.Identity))
		if err != nil {
			return nil, err
		}
		return decode.NewNNDecoder(net, fixed.Q4_3)
	}

	// Linear decoders are fit on a synthetic calibration pass: intent
	// states x_t on the unit circle (period 200, as the pipeline drives
	// them) observed as z = G·x + noise through random tuning gains.
	const calTicks = 192
	gains := make([]float64, ch*intentDims)
	for i := range gains {
		gains[i] = 2*rng.Float64() - 1
	}
	states := make([][]float64, calTicks)
	obs := make([][]float64, calTicks)
	for t := 0; t < calTicks; t++ {
		theta := 2 * math.Pi * float64(t) / 200
		x := []float64{math.Cos(theta), math.Sin(theta)}
		z := make([]float64, ch)
		for c := 0; c < ch; c++ {
			z[c] = gains[c*intentDims]*x[0] + gains[c*intentDims+1]*x[1] + 0.05*rng.NormFloat64()
		}
		states[t], obs[t] = x, z
	}
	switch dc.Kind {
	case DecoderKalman:
		return decode.FitKalman(states, obs)
	case DecoderWiener:
		return decode.FitWiener(states, obs, dc.Lags, 1e-3)
	}
	return nil, fmt.Errorf("fleet: unknown decoder kind %d", int(dc.Kind))
}

// decodeStage closes the loop the wearable left open: accepted and
// concealed frames are binned into per-channel mean rates (normalized to
// the ADC's ±1 span) and each full bin is stepped through the session's
// decoder. Concealed frames enter the bin in arrival order — the
// receiver synthesizes them, via OnConcealed, before the accepted frame
// that revealed the gap — so the decode digest is as schedule-free as
// the frame digest. The decoder's output digest is kept separate from
// the frame digest: a pipeline with a decoder produces byte-identical
// frame digests to one without.
type decodeStage struct {
	cfg      DecodeConfig // defaults applied
	dec      decode.Decoder
	channels int
	maxCode  float64
	tk       *Tick // the pipeline's shared tick record

	binSums      []float64
	obsBuf       []float64
	binCount     int
	binConcealed int

	steps         int64
	concealedBins int64
	macs          int64
	digest        uint64
	err           error

	onDecode func(tick int, estimate []float64, concealed int)
}

func newDecodeStage(cfg Config, idx int, tk *Tick) (*decodeStage, error) {
	dec, err := newSessionDecoder(cfg, idx)
	if err != nil {
		return nil, err
	}
	return &decodeStage{
		cfg:      cfg.Decode.withDefaults(),
		dec:      dec,
		channels: cfg.Channels,
		maxCode:  float64((uint32(1) << cfg.SampleBits) - 1),
		tk:       tk,
		binSums:  make([]float64, cfg.Channels),
		obsBuf:   make([]float64, cfg.Channels),
		digest:   fnvOffset,
	}, nil
}

func (d *decodeStage) Name() string { return "decode" }

// accumulate folds one frame's samples into the current bin, flushing a
// full bin through the decoder. It is called both from Step (accepted
// frames) and from the receiver's OnConcealed hook (synthesized gap
// frames, which arrive first).
func (d *decodeStage) accumulate(samples []uint16, concealed bool) {
	if d.err != nil {
		return
	}
	if len(samples) != d.channels {
		d.err = fmt.Errorf("fleet: decode stage got %d samples, want %d", len(samples), d.channels)
		return
	}
	for c, s := range samples {
		d.binSums[c] += 2*float64(s)/d.maxCode - 1
	}
	d.binCount++
	if concealed {
		d.binConcealed++
	}
	if d.binCount >= d.cfg.BinTicks {
		d.flush()
	}
}

// flush steps the decoder on the bin mean and folds the estimate into
// the decode digest.
func (d *decodeStage) flush() {
	n := float64(d.binCount)
	for c := range d.obsBuf {
		d.obsBuf[c] = d.binSums[c] / n
	}
	x, err := d.dec.Step(d.obsBuf)
	if err != nil {
		d.err = err
		return
	}
	d.steps++
	d.macs += int64(d.dec.MACsPerStep())
	if d.binConcealed > 0 {
		d.concealedBins++
	}
	for _, v := range x {
		bits := math.Float64bits(v)
		for shift := 56; shift >= 0; shift -= 8 {
			d.digest = (d.digest ^ (bits >> uint(shift) & 0xFF)) * fnvPrime
		}
	}
	if d.onDecode != nil {
		d.onDecode(d.tk.N, x, d.binConcealed)
	}
	for c := range d.binSums {
		d.binSums[c] = 0
	}
	d.binCount, d.binConcealed = 0, 0
}

func (d *decodeStage) Step(tk *Tick) error {
	// Concealed frames were already accumulated during the receiver
	// stage's Step (the OnConcealed hook fires inside Receive); only the
	// accepted frame remains.
	if tk.RxOK {
		d.accumulate(tk.RxFrame.Samples, false)
	}
	return d.err
}

// DecodeState is the decode stage's serializable mid-run state: the
// partial bin, the accounting, and the decoder's temporal state (kind
// dependent — the DNN is stateless between steps).
type DecodeState struct {
	// BinSums is the partial bin's per-channel sum; BinCount the frames
	// accumulated so far and BinConcealed how many were synthesized.
	BinSums      []float64
	BinCount     int
	BinConcealed int

	// Steps, ConcealedBins and MACs are the running decode counters;
	// Digest the FNV-1a hash over every decoded estimate.
	Steps         int64
	ConcealedBins int64
	MACs          int64
	Digest        uint64

	// KalmanX/KalmanP carry the Kalman estimate and covariance;
	// WienerLag the lag history, newest vector first. Unused fields are
	// nil for the other kinds.
	KalmanX   []float64
	KalmanP   []float64
	WienerLag []float64
}

func (d *decodeStage) Snapshot(st *PipelineState) {
	ds := &DecodeState{
		BinSums:       append([]float64(nil), d.binSums...),
		BinCount:      d.binCount,
		BinConcealed:  d.binConcealed,
		Steps:         d.steps,
		ConcealedBins: d.concealedBins,
		MACs:          d.macs,
		Digest:        d.digest,
	}
	switch dec := d.dec.(type) {
	case *decode.Kalman:
		ks := dec.State()
		ds.KalmanX, ds.KalmanP = ks.X, ks.P
	case *decode.Wiener:
		ds.WienerLag = dec.State().Lagged
	}
	st.Decode = ds
}

func (d *decodeStage) Restore(cfg Config, st *PipelineState) error {
	ds := st.Decode
	if ds == nil {
		return errors.New("fleet: checkpoint carries no decoder state but config enables a decoder")
	}
	if len(ds.BinSums) != d.channels {
		return fmt.Errorf("fleet: decode bin width %d does not match %d channels", len(ds.BinSums), d.channels)
	}
	if ds.BinCount < 0 || ds.BinCount >= d.cfg.BinTicks || ds.BinConcealed < 0 || ds.BinConcealed > ds.BinCount {
		return fmt.Errorf("fleet: decode bin fill %d/%d invalid for bin of %d", ds.BinConcealed, ds.BinCount, d.cfg.BinTicks)
	}
	copy(d.binSums, ds.BinSums)
	d.binCount, d.binConcealed = ds.BinCount, ds.BinConcealed
	d.steps, d.concealedBins = ds.Steps, ds.ConcealedBins
	d.macs, d.digest = ds.MACs, ds.Digest
	switch dec := d.dec.(type) {
	case *decode.Kalman:
		return dec.RestoreState(decode.KalmanState{X: ds.KalmanX, P: ds.KalmanP})
	case *decode.Wiener:
		return dec.RestoreState(decode.WienerState{Lagged: ds.WienerLag})
	}
	return nil
}

func (d *decodeStage) Close() {}
