package fleet

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"

	"mindful/internal/decode"
	"mindful/internal/fixed"
	"mindful/internal/neural"
	"mindful/internal/nn"
)

// DecoderKind selects the control algorithm a pipeline's decode stage
// runs — the paper's §2.3/§5 comparison axis (Kalman/Wiener baselines vs
// a fixed-point DNN) inside one serving loop.
type DecoderKind int

// The decoder kinds.
const (
	// DecoderNone disables the decode stage; the pipeline stops at the
	// wearable receiver, exactly as before decoders existed.
	DecoderNone DecoderKind = iota
	// DecoderKalman runs a full (time-varying gain) Kalman filter.
	DecoderKalman
	// DecoderWiener runs a lagged linear (Wiener) filter.
	DecoderWiener
	// DecoderDNN runs a small MLP through the 8-bit fixed-point
	// datapath model — the implanted-ASIC inference arm.
	DecoderDNN
	// DecoderFixed runs a steady-state (fixed-gain) Kalman decoder — the
	// constant-coefficient form implanted hardware executes, derived by
	// converging the Kalman covariance recursion at fit time.
	DecoderFixed
)

// String returns the kind's CLI spelling.
func (k DecoderKind) String() string {
	switch k {
	case DecoderNone:
		return "none"
	case DecoderKalman:
		return "kalman"
	case DecoderWiener:
		return "wiener"
	case DecoderDNN:
		return "dnn"
	case DecoderFixed:
		return "fixed"
	}
	return fmt.Sprintf("DecoderKind(%d)", int(k))
}

// ParseDecoderKind maps a CLI spelling to its kind.
func ParseDecoderKind(s string) (DecoderKind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "none", "off":
		return DecoderNone, nil
	case "kalman":
		return DecoderKalman, nil
	case "wiener":
		return DecoderWiener, nil
	case "dnn":
		return DecoderDNN, nil
	case "fixed", "ssgain":
		return DecoderFixed, nil
	}
	return DecoderNone, fmt.Errorf("fleet: unknown decoder %q (want none, kalman, wiener, dnn or fixed)", s)
}

// intentDims is the decoded state dimensionality: the 2-D intent
// (cos θ, sin θ) every implant's generator is driven with.
const intentDims = 2

// DecodeConfig configures the optional decode stage.
type DecodeConfig struct {
	// Kind selects the decoder; DecoderNone (the zero value) disables
	// the stage entirely.
	Kind DecoderKind
	// BinTicks is the number of frames (accepted or concealed) averaged
	// into one decoder observation; 0 means 4.
	BinTicks int
	// Lags is the Wiener filter's lag depth; 0 means 3.
	Lags int
	// Hidden is the DNN decoder's hidden-layer width; 0 means 16.
	Hidden int

	// Calibrate fits the linear decoders on a twin-generator calibration
	// pass — a day-0 recording of the implant's own synthetic cortex
	// (same StreamNeural seed), digitized and binned exactly like the
	// live pipeline — instead of the legacy synthetic-gains set. False
	// keeps the historical decoder and its digest pins byte-identical.
	Calibrate bool
	// Track attaches the adapt stage in observation-only mode: decode
	// error against true intent and instability (KL) metrics, no model
	// mutation.
	Track bool
	// Adapt enables closed-loop recalibration (CLDA): the adapt stage
	// feeds supervised pairs into a Recalibrator that periodically
	// refits the decoder. Implies tracking. Linear decoders only.
	Adapt bool

	// RefitEvery is the adaptation period in decoder bins; 0 means 16.
	RefitEvery int
	// RefitBuffer is the supervision ring capacity in bins; 0 means 64.
	RefitBuffer int
	// RefitBlend is the smoothbatch λ in (0, 1]; 0 means 0.5.
	RefitBlend float64
	// RefitJitter is the σ of the Gaussian jitter added to the intent
	// labels fed to the recalibrator (imperfect intent inference). The
	// two per-bin jitter variates are drawn from StreamRefit regardless
	// of the width, so jitter ladders share one random history.
	RefitJitter float64
	// MeterRef and MeterWin are the instability meter's reference and
	// sliding window lengths in bins; 0 means 16 each.
	MeterRef int
	MeterWin int
}

// Enabled reports whether the config adds a decode stage.
func (c DecodeConfig) Enabled() bool { return c.Kind != DecoderNone }

// withDefaults fills the zero knobs.
func (c DecodeConfig) withDefaults() DecodeConfig {
	if c.BinTicks == 0 {
		c.BinTicks = 4
	}
	if c.Lags == 0 {
		c.Lags = 3
	}
	if c.Hidden == 0 {
		c.Hidden = 16
	}
	if c.RefitEvery == 0 {
		c.RefitEvery = 16
	}
	if c.RefitBuffer == 0 {
		c.RefitBuffer = 64
	}
	if c.RefitBlend == 0 {
		c.RefitBlend = 0.5
	}
	if c.MeterRef == 0 {
		c.MeterRef = 16
	}
	if c.MeterWin == 0 {
		c.MeterWin = 16
	}
	return c
}

// Validate checks the configuration.
func (c DecodeConfig) Validate() error {
	if c.Kind < DecoderNone || c.Kind > DecoderFixed {
		return fmt.Errorf("fleet: unknown decoder kind %d", int(c.Kind))
	}
	if c.BinTicks < 0 {
		return fmt.Errorf("fleet: negative decode bin %d", c.BinTicks)
	}
	if c.Lags < 0 {
		return fmt.Errorf("fleet: negative decode lags %d", c.Lags)
	}
	if c.Hidden < 0 {
		return fmt.Errorf("fleet: negative decode hidden width %d", c.Hidden)
	}
	if (c.Calibrate || c.Track || c.Adapt) && c.Kind == DecoderNone {
		return errors.New("fleet: calibrate/track/adapt require a decoder")
	}
	if c.Kind == DecoderDNN {
		if c.Adapt {
			return errors.New("fleet: the DNN decoder does not support adaptation")
		}
		if c.Calibrate {
			return errors.New("fleet: the DNN decoder does not support calibration fitting")
		}
	}
	if c.RefitEvery < 0 || c.RefitBuffer < 0 {
		return fmt.Errorf("fleet: negative refit parameters %d/%d", c.RefitEvery, c.RefitBuffer)
	}
	if c.RefitBlend < 0 || c.RefitBlend > 1 || math.IsNaN(c.RefitBlend) {
		return fmt.Errorf("fleet: refit blend %g outside [0, 1]", c.RefitBlend)
	}
	if c.RefitJitter < 0 || math.IsNaN(c.RefitJitter) || math.IsInf(c.RefitJitter, 0) {
		return fmt.Errorf("fleet: refit jitter %g must be finite and non-negative", c.RefitJitter)
	}
	if c.MeterRef < 0 || c.MeterWin < 0 {
		return fmt.Errorf("fleet: negative meter windows %d/%d", c.MeterRef, c.MeterWin)
	}
	if c.Adapt {
		rc := decode.RecalConfig{Buffer: c.RefitBuffer, Every: c.RefitEvery, Blend: c.RefitBlend}
		if err := rc.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// newSessionDecoder builds implant idx's decoder. Everything is a pure
// function of (seed, index): the calibration set is synthesized from the
// same intent trajectory the generator follows, observed through random
// per-channel tuning gains drawn from the implant's StreamDecode stream,
// so a restored session refits the identical decoder.
func newSessionDecoder(cfg Config, idx int) (decode.Decoder, error) {
	dc := cfg.Decode.withDefaults()
	rng := rand.New(rand.NewSource(DeriveSeed(cfg.Seed, uint64(idx), StreamDecode)))
	ch := cfg.Channels

	if dc.Kind == DecoderDNN {
		net, err := nn.NewNetwork(1, ch,
			nn.RandDense(rng, ch, dc.Hidden, nn.ReLU),
			nn.RandDense(rng, dc.Hidden, intentDims, nn.Identity))
		if err != nil {
			return nil, err
		}
		return decode.NewNNDecoder(net, fixed.Q4_3)
	}

	var states, obs [][]float64
	if dc.Calibrate {
		var err error
		if states, obs, err = calibrationPass(cfg, idx, dc); err != nil {
			return nil, err
		}
	} else {
		// Legacy calibration set: intent states x_t on the unit circle
		// (period 200, as the pipeline drives them) observed as
		// z = G·x + noise through random tuning gains.
		const calTicks = 192
		gains := make([]float64, ch*intentDims)
		for i := range gains {
			gains[i] = 2*rng.Float64() - 1
		}
		states = make([][]float64, calTicks)
		obs = make([][]float64, calTicks)
		for t := 0; t < calTicks; t++ {
			theta := 2 * math.Pi * float64(t) / 200
			x := []float64{math.Cos(theta), math.Sin(theta)}
			z := make([]float64, ch)
			for c := 0; c < ch; c++ {
				z[c] = gains[c*intentDims]*x[0] + gains[c*intentDims+1]*x[1] + 0.05*rng.NormFloat64()
			}
			states[t], obs[t] = x, z
		}
	}
	switch dc.Kind {
	case DecoderKalman:
		k, err := decode.FitKalman(states, obs)
		if err != nil {
			return nil, err
		}
		// The calibration states follow the intent circle almost exactly,
		// so the fitted process noise collapses to ~0 and the filter
		// would trust dead reckoning over the electrodes. Floor W with
		// the same process-noise prior the recalibrator assumes; the
		// legacy synthetic fit is left untouched to keep its digest pins.
		if dc.Calibrate {
			floorProcessNoise(k)
		}
		return k, nil
	case DecoderWiener:
		return decode.FitWiener(states, obs, dc.Lags, 1e-3)
	case DecoderFixed:
		k, err := decode.FitKalman(states, obs)
		if err != nil {
			return nil, err
		}
		// Always floored: without it the Riccati recursion crawls toward
		// a vanishing gain and fails to converge.
		floorProcessNoise(k)
		return k.SteadyStateGain(500, 1e-9)
	}
	return nil, fmt.Errorf("fleet: unknown decoder kind %d", int(dc.Kind))
}

// floorProcessNoise adds the recalibrator's process-noise prior to the
// fitted Kalman W diagonal.
func floorProcessNoise(k *decode.Kalman) {
	for i := 0; i < k.W.Rows; i++ {
		k.W.Data[i*k.W.Cols+i] += 0.01
	}
}

// calibrationPass replays implant idx's own day-0 cortex — a twin
// generator on the same StreamNeural seed, before any drift has been
// applied — through the live digitization path (ADC quantization, ±1
// normalization, BinTicks binning) and returns the (intent, rates)
// pairs the decoder is fit on. This is the bench recording the drift
// sweep measures from: the fitted model matches the live signal's units
// exactly at tick 0 and decays as the substrate drifts away from it.
// Electrode faults are deliberately excluded — calibration models a
// supervised recording session, not the degraded field array.
func calibrationPass(cfg Config, idx int, dc DecodeConfig) (states, obs [][]float64, err error) {
	gen, err := neural.New(neuralConfig(cfg, idx))
	if err != nil {
		return nil, nil, err
	}
	adc := neural.ADC{Bits: cfg.SampleBits, FullScale: 2.0}
	maxCode := float64((uint32(1) << cfg.SampleBits) - 1)
	phase := 2 * math.Pi * 0.381966 * float64(idx)

	// Enough bins that the readout and covariance fits generalize: Q is
	// channels² parameters, so the pass scales with the array rather
	// than using a fixed window.
	calBins := 4 * cfg.Channels
	if calBins < 64 {
		calBins = 64
	}
	states = make([][]float64, 0, calBins)
	obs = make([][]float64, 0, calBins)
	sums := make([]float64, cfg.Channels)
	var sampleBuf []float64
	var codeBuf []uint16
	count := 0
	for t := 0; t < calBins*dc.BinTicks; t++ {
		gen.SetIntent(intentAt(phase, t))
		sampleBuf = gen.NextInto(sampleBuf)
		codeBuf = adc.AppendQuantize(codeBuf[:0], sampleBuf)
		for c, s := range codeBuf {
			sums[c] += 2*float64(s)/maxCode - 1
		}
		count++
		if count == dc.BinTicks {
			row := make([]float64, cfg.Channels)
			for c := range row {
				row[c] = sums[c] / float64(count)
				sums[c] = 0
			}
			ix, iy := intentAt(phase, t)
			states = append(states, []float64{ix, iy})
			obs = append(obs, row)
			count = 0
		}
	}
	return states, obs, nil
}

// decodeStage closes the loop the wearable left open: accepted and
// concealed frames are binned into per-channel mean rates (normalized to
// the ADC's ±1 span) and each full bin is stepped through the session's
// decoder. Concealed frames enter the bin in arrival order — the
// receiver synthesizes them, via OnConcealed, before the accepted frame
// that revealed the gap — so the decode digest is as schedule-free as
// the frame digest. The decoder's output digest is kept separate from
// the frame digest: a pipeline with a decoder produces byte-identical
// frame digests to one without.
type decodeStage struct {
	cfg      DecodeConfig // defaults applied
	dec      decode.Decoder
	channels int
	maxCode  float64
	tk       *Tick // the pipeline's shared tick record

	binSums      []float64
	obsBuf       []float64
	binCount     int
	binConcealed int

	steps         int64
	concealedBins int64
	macs          int64
	digest        uint64
	err           error

	onDecode func(tick int, estimate []float64, concealed int)
	// onBin is the adapt stage's tap: it additionally sees the binned
	// observation the decoder was stepped on. Both slices are stage-owned
	// and reused next bin.
	onBin func(tick int, obs, estimate []float64, concealed int)
}

func newDecodeStage(cfg Config, idx int, tk *Tick) (*decodeStage, error) {
	dec, err := newSessionDecoder(cfg, idx)
	if err != nil {
		return nil, err
	}
	return &decodeStage{
		cfg:      cfg.Decode.withDefaults(),
		dec:      dec,
		channels: cfg.Channels,
		maxCode:  float64((uint32(1) << cfg.SampleBits) - 1),
		tk:       tk,
		binSums:  make([]float64, cfg.Channels),
		obsBuf:   make([]float64, cfg.Channels),
		digest:   fnvOffset,
	}, nil
}

func (d *decodeStage) Name() string { return "decode" }

// accumulate folds one frame's samples into the current bin, flushing a
// full bin through the decoder. It is called both from Step (accepted
// frames) and from the receiver's OnConcealed hook (synthesized gap
// frames, which arrive first).
func (d *decodeStage) accumulate(samples []uint16, concealed bool) {
	if d.err != nil {
		return
	}
	if len(samples) != d.channels {
		d.err = fmt.Errorf("fleet: decode stage got %d samples, want %d", len(samples), d.channels)
		return
	}
	for c, s := range samples {
		d.binSums[c] += 2*float64(s)/d.maxCode - 1
	}
	d.binCount++
	if concealed {
		d.binConcealed++
	}
	if d.binCount >= d.cfg.BinTicks {
		d.flush()
	}
}

// flush steps the decoder on the bin mean and folds the estimate into
// the decode digest.
func (d *decodeStage) flush() {
	n := float64(d.binCount)
	for c := range d.obsBuf {
		d.obsBuf[c] = d.binSums[c] / n
	}
	x, err := d.dec.Step(d.obsBuf)
	if err != nil {
		d.err = err
		return
	}
	d.steps++
	d.macs += int64(d.dec.MACsPerStep())
	if d.binConcealed > 0 {
		d.concealedBins++
	}
	for _, v := range x {
		bits := math.Float64bits(v)
		for shift := 56; shift >= 0; shift -= 8 {
			d.digest = (d.digest ^ (bits >> uint(shift) & 0xFF)) * fnvPrime
		}
	}
	if d.onDecode != nil {
		d.onDecode(d.tk.N, x, d.binConcealed)
	}
	if d.onBin != nil {
		d.onBin(d.tk.N, d.obsBuf, x, d.binConcealed)
	}
	for c := range d.binSums {
		d.binSums[c] = 0
	}
	d.binCount, d.binConcealed = 0, 0
}

func (d *decodeStage) Step(tk *Tick) error {
	// Concealed frames were already accumulated during the receiver
	// stage's Step (the OnConcealed hook fires inside Receive); only the
	// accepted frame remains.
	if tk.RxOK {
		d.accumulate(tk.RxFrame.Samples, false)
	}
	return d.err
}

// DecodeState is the decode stage's serializable mid-run state: the
// partial bin, the accounting, and the decoder's temporal state (kind
// dependent — the DNN is stateless between steps).
type DecodeState struct {
	// BinSums is the partial bin's per-channel sum; BinCount the frames
	// accumulated so far and BinConcealed how many were synthesized.
	BinSums      []float64
	BinCount     int
	BinConcealed int

	// Steps, ConcealedBins and MACs are the running decode counters;
	// Digest the FNV-1a hash over every decoded estimate.
	Steps         int64
	ConcealedBins int64
	MACs          int64
	Digest        uint64

	// KalmanX/KalmanP carry the Kalman estimate and covariance;
	// WienerLag the lag history, newest vector first. The fixed-gain
	// decoder's estimate reuses KalmanX (its only temporal state).
	// Unused fields are nil for the other kinds.
	KalmanX   []float64
	KalmanP   []float64
	WienerLag []float64
}

func (d *decodeStage) Snapshot(st *PipelineState) {
	ds := &DecodeState{
		BinSums:       append([]float64(nil), d.binSums...),
		BinCount:      d.binCount,
		BinConcealed:  d.binConcealed,
		Steps:         d.steps,
		ConcealedBins: d.concealedBins,
		MACs:          d.macs,
		Digest:        d.digest,
	}
	switch dec := d.dec.(type) {
	case *decode.Kalman:
		ks := dec.State()
		ds.KalmanX, ds.KalmanP = ks.X, ks.P
	case *decode.FixedGain:
		ds.KalmanX = dec.State()
	case *decode.Wiener:
		ds.WienerLag = dec.State().Lagged
	}
	st.Decode = ds
}

func (d *decodeStage) Restore(cfg Config, st *PipelineState) error {
	ds := st.Decode
	if ds == nil {
		return errors.New("fleet: checkpoint carries no decoder state but config enables a decoder")
	}
	if len(ds.BinSums) != d.channels {
		return fmt.Errorf("fleet: decode bin width %d does not match %d channels", len(ds.BinSums), d.channels)
	}
	if ds.BinCount < 0 || ds.BinCount >= d.cfg.BinTicks || ds.BinConcealed < 0 || ds.BinConcealed > ds.BinCount {
		return fmt.Errorf("fleet: decode bin fill %d/%d invalid for bin of %d", ds.BinConcealed, ds.BinCount, d.cfg.BinTicks)
	}
	copy(d.binSums, ds.BinSums)
	d.binCount, d.binConcealed = ds.BinCount, ds.BinConcealed
	d.steps, d.concealedBins = ds.Steps, ds.ConcealedBins
	d.macs, d.digest = ds.MACs, ds.Digest
	switch dec := d.dec.(type) {
	case *decode.Kalman:
		return dec.RestoreState(decode.KalmanState{X: ds.KalmanX, P: ds.KalmanP})
	case *decode.FixedGain:
		return dec.RestoreState(ds.KalmanX)
	case *decode.Wiener:
		return dec.RestoreState(decode.WienerState{Lagged: ds.WienerLag})
	}
	return nil
}

func (d *decodeStage) Close() {}
