package fleet

import (
	"errors"
	"fmt"
	"math"

	"mindful/internal/comm"
	"mindful/internal/drift"
	"mindful/internal/fault"
	"mindful/internal/neural"
	"mindful/internal/wearable"
)

// Pipeline is one implant's full dataflow — synthetic cortex → ADC →
// frame → bits → (FEC) → symbols → AWGN → bits → frame → wearable →
// (decoder) — exposed one tick at a time. Run drives a fleet of these to
// completion; the serve gateway steps them under session control,
// pausing, resuming and checkpointing mid-stream.
//
// Internally the dataflow is a stage graph: source → transport →
// receiver → (decode), each a Stage sharing one Tick record per step.
// The builder assembles the graph so that every random draw comes from
// the same derived streams in the same order as the original hardwired
// pipeline — a Pipeline stepped N times produces byte-for-byte the
// counters and digest of runImplant over N ticks, with or without a
// decode stage attached. Snapshot/RestorePipeline extend that guarantee
// across a serialization boundary: a restored pipeline continues the
// exact draw sequences, so checkpoint/resume is invisible to the digest.
//
// A Pipeline is not safe for concurrent use; Close returns its pooled
// buffers and must be called exactly once when done.
type Pipeline struct {
	cfg  Config
	tick int
	res  ImplantResult
	tk   Tick

	stages []Stage
	src    *sourceStage
	trans  *transportStage
	recv   *receiverStage
	dec    *decodeStage // nil without a decoder
	adapt  *adaptStage  // nil unless tracking or adapting

	closed bool
}

// neuralConfig derives implant idx's neural source configuration.
func neuralConfig(cfg Config, idx int) neural.Config {
	ncfg := neural.DefaultConfig()
	ncfg.Channels = cfg.Channels
	ncfg.SampleRate = cfg.SampleRate
	ncfg.Seed = DeriveSeed(cfg.Seed, uint64(idx), StreamNeural)
	return ncfg
}

// intentAt returns the 2-D intent the generator is driven with at tick
// t: a point on the unit circle with period 200, phase-offset per
// implant.
func intentAt(phase float64, t int) (float64, float64) {
	theta := phase + 2*math.Pi*float64(t)/200
	return math.Cos(theta), math.Sin(theta)
}

// NewPipeline builds implant idx's pipeline under the fleet config.
// worker is recorded in the result as the shard label; it has no effect
// on the simulation.
func NewPipeline(cfg Config, idx, worker int) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if idx < 0 {
		return nil, fmt.Errorf("fleet: negative implant index %d", idx)
	}
	p := &Pipeline{
		cfg: cfg,
		res: ImplantResult{Index: idx, Worker: worker, Digest: fnvOffset},
	}

	// Golden-angle phase offset decorrelates the implants' intent
	// trajectories without extra randomness.
	src := &sourceStage{phase: 2 * math.Pi * 0.381966 * float64(idx)}
	gen, err := neural.New(neuralConfig(cfg, idx))
	if err != nil {
		return nil, err
	}
	src.gen = gen
	if cfg.Drift != nil {
		// nil process when the profile is disabled — the clean path stays
		// byte-identical.
		src.drift, err = drift.NewProcess(*cfg.Drift, gen,
			DeriveSeed(cfg.Seed, uint64(idx), StreamDrift))
		if err != nil {
			return nil, err
		}
	}
	src.adc = neural.ADC{Bits: cfg.SampleBits, FullScale: 2.0}
	if src.pkt, err = comm.NewPacketizer(cfg.SampleBits); err != nil {
		return nil, err
	}

	trans := &transportStage{}
	if trans.modem, err = comm.NewModem(cfg.Modulation); err != nil {
		return nil, err
	}
	trans.channel = comm.NewAWGNChannel(math.Pow(10, cfg.EbN0dB/10),
		DeriveSeed(cfg.Seed, uint64(idx), StreamChannel))

	recv := &receiverStage{}
	if recv.rx, err = wearable.NewReceiver(0); err != nil {
		return nil, err
	}
	recv.rx.Concealment = cfg.Concealment

	// Fault processes, each on its own derived stream so the injected
	// history is a pure function of (seed, index) — never of scheduling.
	if cfg.Faults != nil {
		inj, err := fault.NewInjector(*cfg.Faults, cfg.Channels,
			DeriveSeed(cfg.Seed, uint64(idx), StreamLink),
			DeriveSeed(cfg.Seed, uint64(idx), StreamElectrode),
			DeriveSeed(cfg.Seed, uint64(idx), StreamBrownout))
		if err != nil {
			return nil, err
		}
		if inj != nil {
			trans.link, src.elec, src.brown = inj.Link, inj.Electrodes, inj.Brownout
			p.res.FaultyChannels = src.elec.FaultyChannels()
		}
	}
	if cfg.FECDepth > 0 {
		if trans.fec, err = comm.NewFEC(cfg.FECDepth); err != nil {
			return nil, err
		}
	}
	if cfg.ARQ.Enabled() {
		if trans.arq, err = comm.NewARQ(cfg.ARQ); err != nil {
			return nil, err
		}
	}

	// Pooled buffers: the tick path is allocation-free once these have
	// grown to steady-state capacity. Close returns them.
	src.framePtr = comm.GetByteBuf()
	trans.rxFramePtr = comm.GetByteBuf()
	trans.bitPtr = comm.GetBitBuf()
	trans.rxBitPtr = comm.GetBitBuf()
	trans.symPtr = comm.GetSymbolBuf()
	if trans.fec != nil {
		trans.codedPtr = comm.GetBitBuf()
		trans.decPtr = comm.GetBitBuf()
	}
	if trans.link != nil {
		trans.linkPtr = comm.GetByteBuf()
	}
	trans.k = trans.modem.BitsPerSymbol()

	p.src, p.trans, p.recv = src, trans, recv
	p.stages = []Stage{src, trans, recv}
	if cfg.Decode.Enabled() {
		dec, err := newDecodeStage(cfg, idx, &p.tk)
		if err != nil {
			return nil, err
		}
		// Concealed gap frames reach the decoder through the receiver's
		// hook, in synthesis order, ahead of the accepted frame.
		recv.rx.OnConcealed = func(f comm.Frame) { dec.accumulate(f.Samples, true) }
		p.dec = dec
		p.stages = append(p.stages, dec)
		if cfg.Decode.Track || cfg.Decode.Adapt {
			ad, err := newAdaptStage(cfg, idx, dec)
			if err != nil {
				return nil, err
			}
			dec.onBin = ad.observeBin
			p.adapt = ad
			p.stages = append(p.stages, ad)
		}
	}
	// Timing decoration happens last so every stage — including the
	// decode stage — is wrapped. Typed references (p.src etc.) stay
	// unwrapped: hooks and Result() read components directly.
	wrapTimed(p.stages, cfg.StageTiming)
	return p, nil
}

// Stages returns the stage names in step order — the pipeline's graph
// as built.
func (p *Pipeline) Stages() []string {
	names := make([]string, len(p.stages))
	for i, s := range p.stages {
		names[i] = s.Name()
	}
	return names
}

// OnDeliver installs a hook called for every frame that reaches the
// wearable: the tick it belongs to, the received bytes (which may be
// corrupt), and whether the receiver accepted them. The byte slice is
// recycled on the next tick — sinks must copy what they keep. Pass nil
// to detach.
func (p *Pipeline) OnDeliver(fn func(tick int, data []byte, accepted bool)) {
	p.recv.onDeliver = fn
}

// OnDecode installs a hook called for every decoder step: the tick the
// bin completed on, the state estimate, and how many of the bin's
// frames were concealed. The estimate slice is decoder-owned and reused
// — sinks must copy what they keep. A no-op without a decode stage;
// pass nil to detach.
func (p *Pipeline) OnDecode(fn func(tick int, estimate []float64, concealed int)) {
	if p.dec != nil {
		p.dec.onDecode = fn
	}
}

// OnRefit installs a hook called every time the adapt stage applies a
// decoder recalibration: the tick the refit landed on, the cumulative
// refit count, and the last instability (KL) reading (0 until the meter
// fills). A no-op unless the pipeline adapts; pass nil to detach.
func (p *Pipeline) OnRefit(fn func(tick int, refits int64, kl float64)) {
	if p.adapt != nil {
		p.adapt.onRefit = fn
	}
}

// Tick returns the number of ticks stepped so far.
func (p *Pipeline) Tick() int { return p.tick }

// Index returns the pipeline's implant index.
func (p *Pipeline) Index() int { return p.res.Index }

// Close returns the pipeline's pooled buffers. It is idempotent; the
// pipeline must not be stepped afterwards.
func (p *Pipeline) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, s := range p.stages {
		s.Close()
	}
}

// Step advances the pipeline one tick: synthesize, digitize, frame and
// (unless browned out) transmit with the configured recovery, stepping
// each stage of the graph in order over a shared Tick record. Ticks are
// unbounded — Config.Ticks is the planned run length Run enforces, not a
// property of the pipeline.
func (p *Pipeline) Step() error {
	if p.closed {
		return errors.New("fleet: step on closed pipeline")
	}
	t := p.tick
	p.tick++
	p.tk = Tick{N: t, Res: &p.res}
	for _, s := range p.stages {
		if err := s.Step(&p.tk); err != nil {
			return err
		}
	}
	return nil
}

// Result returns the pipeline's accounting so far. It is idempotent and
// may be called between steps.
func (p *Pipeline) Result() ImplantResult {
	res := p.res
	if p.trans.arq != nil {
		ast := p.trans.arq.Stats()
		res.Retransmits = ast.Retransmits
		res.Recovered = ast.Recovered
		res.ARQFailed = ast.Failed
		res.RetransmitBits = ast.RetransmitBits
	}
	st := p.recv.rx.Stats()
	res.Accepted, res.Corrupt, res.LostSeq = st.Accepted, st.Corrupted, st.LostSeq
	res.Stale, res.Concealed, res.ConcealedSamples = st.Stale, st.Concealed, st.ConcealedSamples
	if p.dec != nil {
		res.DecodedSteps = p.dec.steps
		res.DecodeConcealedBins = p.dec.concealedBins
		res.DecodeMACs = p.dec.macs
		res.DecodeDigest = p.dec.digest
	}
	if p.adapt != nil {
		res.DecodeSqErr = p.adapt.sqErr
		res.DecodeErrBins = p.adapt.errBins
		res.Refits = p.adapt.refits()
		res.LastKL = p.adapt.lastKL
	}
	if p.src.drift != nil {
		res.DriftEpochs = p.src.drift.Epochs()
		res.DriftTurnovers = p.src.drift.Turnovers()
		res.DriftUnitsLost = p.src.drift.Lost()
	}
	return res
}

// PipelineState is a pipeline's complete serializable mid-run state:
// every RNG stream position, every mutable component state, and the
// running counters. Snapshot at tick T, RestorePipeline, and the
// continuation is draw-for-draw identical to the uninterrupted run —
// the property the checkpoint tests pin by digest.
type PipelineState struct {
	// Tick is the number of ticks stepped before the snapshot.
	Tick int
	// Counters are the raw running counters, including the digest
	// accumulator. ARQ-, receiver- and decoder-derived fields are
	// excluded (they live in their components' states below); Err must
	// be nil.
	Counters ImplantResult

	Gen     neural.GeneratorState
	Channel comm.AWGNState
	PktSeq  uint32
	Rx      wearable.ReceiverState

	// ARQ accounting (zero value when ARQ is disabled) and the FEC
	// correction counter (0 when FEC is disabled).
	ARQ          comm.ARQStats
	FECCorrected int64

	// Fault-process states; nil when the config injects no faults.
	Link      *fault.BurstLinkState
	Brown     *fault.BrownoutState
	ElecGains []float64

	// Decode is the decode stage's state; nil without a decoder.
	Decode *DecodeState

	// Drift is the nonstationarity process's state; nil without drift.
	Drift *drift.ProcessState
	// Adapt is the adapt stage's state; nil unless tracking or adapting.
	Adapt *AdaptState
}

// Snapshot captures the pipeline's complete mid-run state by asking
// each stage for its slice. The pipeline remains usable afterwards.
func (p *Pipeline) Snapshot() (PipelineState, error) {
	if p.closed {
		return PipelineState{}, errors.New("fleet: snapshot of closed pipeline")
	}
	if p.res.Err != nil {
		return PipelineState{}, fmt.Errorf("fleet: snapshot of failed pipeline: %w", p.res.Err)
	}
	st := PipelineState{
		Tick:     p.tick,
		Counters: p.res,
	}
	for _, s := range p.stages {
		s.Snapshot(&st)
	}
	return st, nil
}

// RestorePipeline rebuilds a pipeline from a snapshot taken under the
// same config. Static structure is regenerated from the config; every
// RNG stream is fast-forwarded to its recorded position; mutable state
// and counters are overwritten. The config must match the one the
// snapshot was taken under — mismatched fault/FEC/ARQ/decoder shapes
// are rejected, and mismatched seeds fail the RNG position validation.
func RestorePipeline(cfg Config, st PipelineState) (*Pipeline, error) {
	if st.Tick < 0 {
		return nil, fmt.Errorf("fleet: negative checkpoint tick %d", st.Tick)
	}
	p, err := NewPipeline(cfg, st.Counters.Index, st.Counters.Worker)
	if err != nil {
		return nil, err
	}
	restoreErr := func(err error) (*Pipeline, error) {
		p.Close()
		return nil, err
	}
	if p.dec == nil && st.Decode != nil {
		return restoreErr(errors.New("fleet: checkpoint carries decoder state but config disables the decoder"))
	}
	if p.adapt == nil && st.Adapt != nil {
		return restoreErr(errors.New("fleet: checkpoint carries adapt state but config disables tracking"))
	}
	if p.src.drift == nil && st.Drift != nil {
		return restoreErr(errors.New("fleet: checkpoint carries drift state but config disables drift"))
	}
	for _, s := range p.stages {
		if err := s.Restore(cfg, &st); err != nil {
			return restoreErr(err)
		}
	}
	faulty := p.res.FaultyChannels
	p.res = st.Counters
	p.res.FaultyChannels = faulty // derived from config, not carried state
	p.tick = st.Tick
	return p, nil
}
