package fleet

import (
	"errors"
	"fmt"
	"math"
	mathbits "math/bits"

	"mindful/internal/comm"
	"mindful/internal/fault"
	"mindful/internal/neural"
	"mindful/internal/wearable"
)

// Pipeline is one implant's full dataflow — synthetic cortex → ADC →
// frame → bits → (FEC) → symbols → AWGN → bits → frame → wearable —
// exposed one tick at a time. Run drives a fleet of these to completion;
// the serve gateway steps them under session control, pausing, resuming
// and checkpointing mid-stream.
//
// A Pipeline stepped N times produces byte-for-byte the counters and
// digest of runImplant over N ticks: the tick loop below is the same
// code, and every random draw comes from the same derived streams in the
// same order. Snapshot/RestorePipeline extend that guarantee across a
// serialization boundary — a restored pipeline continues the exact draw
// sequences, so checkpoint/resume is invisible to the digest.
//
// A Pipeline is not safe for concurrent use; Close returns its pooled
// buffers and must be called exactly once when done.
type Pipeline struct {
	cfg  Config
	tick int
	res  ImplantResult

	gen     *neural.Generator
	adc     neural.ADC
	pkt     *comm.Packetizer
	modem   comm.Modem
	channel *comm.AWGNChannel
	rx      *wearable.Receiver
	link    *fault.BurstLink
	elec    *fault.ElectrodeBank
	brown   *fault.Brownout
	fec     *comm.FEC
	arq     *comm.ARQ

	k     int
	phase float64

	framePtr, rxFramePtr *[]byte
	bitPtr, rxBitPtr     *[]byte
	symPtr               *[]comm.Symbol
	codedPtr, decPtr     *[]byte
	linkPtr              *[]byte
	sampleBuf            []float64
	codeBuf              []uint16
	finalBuf             []byte
	closed               bool

	onDeliver func(tick int, data []byte, accepted bool)
}

// neuralConfig derives implant idx's neural source configuration.
func neuralConfig(cfg Config, idx int) neural.Config {
	ncfg := neural.DefaultConfig()
	ncfg.Channels = cfg.Channels
	ncfg.SampleRate = cfg.SampleRate
	ncfg.Seed = DeriveSeed(cfg.Seed, uint64(idx), StreamNeural)
	return ncfg
}

// NewPipeline builds implant idx's pipeline under the fleet config.
// worker is recorded in the result as the shard label; it has no effect
// on the simulation.
func NewPipeline(cfg Config, idx, worker int) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if idx < 0 {
		return nil, fmt.Errorf("fleet: negative implant index %d", idx)
	}
	p := &Pipeline{
		cfg: cfg,
		res: ImplantResult{Index: idx, Worker: worker, Digest: fnvOffset},
		// Golden-angle phase offset decorrelates the implants' intent
		// trajectories without extra randomness.
		phase: 2 * math.Pi * 0.381966 * float64(idx),
	}

	gen, err := neural.New(neuralConfig(cfg, idx))
	if err != nil {
		return nil, err
	}
	p.gen = gen
	p.adc = neural.ADC{Bits: cfg.SampleBits, FullScale: 2.0}
	if p.pkt, err = comm.NewPacketizer(cfg.SampleBits); err != nil {
		return nil, err
	}
	if p.modem, err = comm.NewModem(cfg.Modulation); err != nil {
		return nil, err
	}
	p.channel = comm.NewAWGNChannel(math.Pow(10, cfg.EbN0dB/10),
		DeriveSeed(cfg.Seed, uint64(idx), StreamChannel))
	if p.rx, err = wearable.NewReceiver(0); err != nil {
		return nil, err
	}
	p.rx.Concealment = cfg.Concealment

	// Fault processes, each on its own derived stream so the injected
	// history is a pure function of (seed, index) — never of scheduling.
	if cfg.Faults != nil {
		inj, err := fault.NewInjector(*cfg.Faults, cfg.Channels,
			DeriveSeed(cfg.Seed, uint64(idx), StreamLink),
			DeriveSeed(cfg.Seed, uint64(idx), StreamElectrode),
			DeriveSeed(cfg.Seed, uint64(idx), StreamBrownout))
		if err != nil {
			return nil, err
		}
		if inj != nil {
			p.link, p.elec, p.brown = inj.Link, inj.Electrodes, inj.Brownout
			p.res.FaultyChannels = p.elec.FaultyChannels()
		}
	}
	if cfg.FECDepth > 0 {
		if p.fec, err = comm.NewFEC(cfg.FECDepth); err != nil {
			return nil, err
		}
	}
	if cfg.ARQ.Enabled() {
		if p.arq, err = comm.NewARQ(cfg.ARQ); err != nil {
			return nil, err
		}
	}

	// Pooled buffers: the tick path is allocation-free once these have
	// grown to steady-state capacity. Close returns them.
	p.framePtr = comm.GetByteBuf()
	p.rxFramePtr = comm.GetByteBuf()
	p.bitPtr = comm.GetBitBuf()
	p.rxBitPtr = comm.GetBitBuf()
	p.symPtr = comm.GetSymbolBuf()
	if p.fec != nil {
		p.codedPtr = comm.GetBitBuf()
		p.decPtr = comm.GetBitBuf()
	}
	if p.link != nil {
		p.linkPtr = comm.GetByteBuf()
	}
	p.k = p.modem.BitsPerSymbol()
	return p, nil
}

// OnDeliver installs a hook called for every frame that reaches the
// wearable: the tick it belongs to, the received bytes (which may be
// corrupt), and whether the receiver accepted them. The byte slice is
// recycled on the next tick — sinks must copy what they keep. Pass nil
// to detach.
func (p *Pipeline) OnDeliver(fn func(tick int, data []byte, accepted bool)) {
	p.onDeliver = fn
}

// Tick returns the number of ticks stepped so far.
func (p *Pipeline) Tick() int { return p.tick }

// Index returns the pipeline's implant index.
func (p *Pipeline) Index() int { return p.res.Index }

// Close returns the pipeline's pooled buffers. It is idempotent; the
// pipeline must not be stepped afterwards.
func (p *Pipeline) Close() {
	if p.closed {
		return
	}
	p.closed = true
	comm.PutByteBuf(p.framePtr)
	comm.PutByteBuf(p.rxFramePtr)
	comm.PutBitBuf(p.bitPtr)
	comm.PutBitBuf(p.rxBitPtr)
	comm.PutSymbolBuf(p.symPtr)
	if p.codedPtr != nil {
		comm.PutBitBuf(p.codedPtr)
		comm.PutBitBuf(p.decPtr)
	}
	if p.linkPtr != nil {
		comm.PutByteBuf(p.linkPtr)
	}
}

// attempt runs one full transmission: frame bits → (FEC) → symbols →
// AWGN → demodulation → (FEC decode) → bytes → (burst link). It returns
// the bytes that arrived at the wearable, or nil when the burst link
// swallowed the frame whole. With every fault and coding stage disabled
// it performs exactly the draws, in exactly the order, of the original
// fault-free pipeline — the clean-path byte-identity invariant the
// determinism wall pins.
func (p *Pipeline) attempt() ([]byte, error) {
	frame := *p.framePtr
	raw := comm.AppendBytesAsBits((*p.bitPtr)[:0], frame)
	*p.bitPtr = raw
	tx := raw
	codedLen := len(raw)
	if p.fec != nil {
		coded := p.fec.AppendEncode((*p.codedPtr)[:0], raw)
		tx = coded
		codedLen = len(coded)
	}
	// Pad to a symbol boundary; the pad is dropped after demodulation.
	for len(tx)%p.k != 0 {
		tx = append(tx, 0)
	}
	if p.fec != nil {
		*p.codedPtr = tx
	} else {
		*p.bitPtr = tx
	}
	syms, merr := p.modem.AppendModulate((*p.symPtr)[:0], tx)
	if merr != nil {
		return nil, merr
	}
	*p.symPtr = syms
	p.channel.TransmitInPlace(syms)
	rxBits := p.modem.AppendDemodulate((*p.rxBitPtr)[:0], syms)
	*p.rxBitPtr = rxBits
	for i := range tx {
		if tx[i] != rxBits[i] {
			p.res.BitErrors++
		}
	}
	p.res.BitsSent += int64(len(tx))

	data := rxBits[:codedLen]
	if p.fec != nil {
		dec, fixed, derr := p.fec.AppendDecode((*p.decPtr)[:0], data)
		if derr != nil {
			return nil, derr
		}
		*p.decPtr = dec
		p.res.FECCorrected += int64(fixed)
		data = dec
	}
	rxFrame := comm.AppendBitsAsBytes((*p.rxFramePtr)[:0], data[:len(frame)*8])
	*p.rxFramePtr = rxFrame
	if p.link != nil {
		out := p.link.AppendTransport((*p.linkPtr)[:0], rxFrame)
		if out == nil {
			p.res.LinkDropped++
			return nil, nil
		}
		*p.linkPtr = out
		rxFrame = out
	}
	return rxFrame, nil
}

// deliver hands the received bytes to the wearable, measures the
// residual (post-FEC) payload errors, folds the bytes into the
// determinism digest, and fires the OnDeliver hook.
func (p *Pipeline) deliver(t int, got []byte) {
	_, rerr := p.rx.Receive(got) // CRC-rejected frames are counted as corrupt
	frame := *p.framePtr
	p.res.DataBits += int64(len(frame) * 8)
	for i, b := range frame {
		if i < len(got) {
			p.res.DataBitErrors += int64(mathbits.OnesCount8(b ^ got[i]))
		} else {
			p.res.DataBitErrors += 8
		}
	}
	for _, b := range got {
		p.res.Digest = (p.res.Digest ^ uint64(b)) * fnvPrime
	}
	if p.onDeliver != nil {
		p.onDeliver(t, got, rerr == nil)
	}
}

// Step advances the pipeline one tick: synthesize, digitize, frame and
// (unless browned out) transmit with the configured recovery. Ticks are
// unbounded — Config.Ticks is the planned run length Run enforces, not a
// property of the pipeline.
func (p *Pipeline) Step() error {
	if p.closed {
		return errors.New("fleet: step on closed pipeline")
	}
	t := p.tick
	p.tick++
	theta := p.phase + 2*math.Pi*float64(t)/200
	p.gen.SetIntent(math.Cos(theta), math.Sin(theta))
	blanked := p.brown.Tick()
	p.sampleBuf = p.gen.NextInto(p.sampleBuf)
	p.elec.Apply(p.sampleBuf) // nil-safe: no-op without electrode faults
	p.codeBuf = p.adc.AppendQuantize(p.codeBuf[:0], p.sampleBuf)
	frame, err := p.pkt.AppendEncode((*p.framePtr)[:0], p.codeBuf)
	if err != nil {
		return err
	}
	*p.framePtr = frame
	if blanked {
		// Brownout: the frame was built (the sequence counter advanced)
		// but the radio is dark; the wearable will see a sequence gap and
		// conceal it if configured.
		p.res.Blanked++
		return nil
	}
	p.res.Frames++

	if p.arq == nil {
		got, aerr := p.attempt()
		if aerr != nil {
			return aerr
		}
		if got != nil {
			p.deliver(t, got)
		}
		return nil
	}
	// ARQ: retry until the frame decodes cleanly or the budget runs out.
	// The wearable keeps the last bytes it heard, so an exhausted budget
	// still surfaces the corrupt frame (counted as such) rather than
	// silently vanishing.
	air := len(frame) * 8
	if p.fec != nil {
		air = p.fec.CodedBits(air)
	}
	if rem := air % p.k; rem != 0 {
		air += p.k - rem
	}
	haveFinal := false
	var attemptErr error
	p.arq.Send(frame, air, func([]byte) bool {
		got, aerr := p.attempt()
		if aerr != nil {
			attemptErr = aerr
			return false
		}
		if got == nil {
			return false
		}
		p.finalBuf = append(p.finalBuf[:0], got...)
		haveFinal = true
		_, derr := comm.Decode(got)
		return derr == nil
	})
	if attemptErr != nil {
		return attemptErr
	}
	if haveFinal {
		p.deliver(t, p.finalBuf)
	}
	return nil
}

// Result returns the pipeline's accounting so far. It is idempotent and
// may be called between steps.
func (p *Pipeline) Result() ImplantResult {
	res := p.res
	if p.arq != nil {
		ast := p.arq.Stats()
		res.Retransmits = ast.Retransmits
		res.Recovered = ast.Recovered
		res.ARQFailed = ast.Failed
		res.RetransmitBits = ast.RetransmitBits
	}
	st := p.rx.Stats()
	res.Accepted, res.Corrupt, res.LostSeq = st.Accepted, st.Corrupted, st.LostSeq
	res.Stale, res.Concealed, res.ConcealedSamples = st.Stale, st.Concealed, st.ConcealedSamples
	return res
}

// PipelineState is a pipeline's complete serializable mid-run state:
// every RNG stream position, every mutable component state, and the
// running counters. Snapshot at tick T, RestorePipeline, and the
// continuation is draw-for-draw identical to the uninterrupted run —
// the property the checkpoint tests pin by digest.
type PipelineState struct {
	// Tick is the number of ticks stepped before the snapshot.
	Tick int
	// Counters are the raw running counters, including the digest
	// accumulator. ARQ/receiver-derived fields are excluded (they live
	// in their components' states below); Err must be nil.
	Counters ImplantResult

	Gen     neural.GeneratorState
	Channel comm.AWGNState
	PktSeq  uint32
	Rx      wearable.ReceiverState

	// ARQ accounting (zero value when ARQ is disabled) and the FEC
	// correction counter (0 when FEC is disabled).
	ARQ          comm.ARQStats
	FECCorrected int64

	// Fault-process states; nil when the config injects no faults.
	Link      *fault.BurstLinkState
	Brown     *fault.BrownoutState
	ElecGains []float64
}

// Snapshot captures the pipeline's complete mid-run state. The pipeline
// remains usable afterwards.
func (p *Pipeline) Snapshot() (PipelineState, error) {
	if p.closed {
		return PipelineState{}, errors.New("fleet: snapshot of closed pipeline")
	}
	if p.res.Err != nil {
		return PipelineState{}, fmt.Errorf("fleet: snapshot of failed pipeline: %w", p.res.Err)
	}
	st := PipelineState{
		Tick:     p.tick,
		Counters: p.res,
		Gen:      p.gen.Snapshot(),
		Channel:  p.channel.Snapshot(),
		PktSeq:   p.pkt.Seq(),
		Rx:       p.rx.Snapshot(),
	}
	if p.arq != nil {
		st.ARQ = p.arq.Stats()
	}
	if p.fec != nil {
		st.FECCorrected = p.fec.Corrected()
	}
	if p.link != nil {
		ls := p.link.Snapshot()
		st.Link = &ls
	}
	if p.brown != nil {
		bs := p.brown.Snapshot()
		st.Brown = &bs
	}
	if p.elec != nil {
		st.ElecGains = p.elec.Gains()
	}
	return st, nil
}

// RestorePipeline rebuilds a pipeline from a snapshot taken under the
// same config. Static structure is regenerated from the config; every
// RNG stream is fast-forwarded to its recorded position; mutable state
// and counters are overwritten. The config must match the one the
// snapshot was taken under — mismatched fault/FEC/ARQ shapes are
// rejected, and mismatched seeds fail the RNG position validation.
func RestorePipeline(cfg Config, st PipelineState) (*Pipeline, error) {
	if st.Tick < 0 {
		return nil, fmt.Errorf("fleet: negative checkpoint tick %d", st.Tick)
	}
	p, err := NewPipeline(cfg, st.Counters.Index, st.Counters.Worker)
	if err != nil {
		return nil, err
	}
	restoreErr := func(err error) (*Pipeline, error) {
		p.Close()
		return nil, err
	}
	if p.gen, err = neural.RestoreGenerator(neuralConfig(cfg, st.Counters.Index), st.Gen); err != nil {
		return restoreErr(err)
	}
	if want := DeriveSeed(cfg.Seed, uint64(st.Counters.Index), StreamChannel); st.Channel.RNG.Seed != want {
		return restoreErr(fmt.Errorf("fleet: channel RNG seed %d does not derive from config seed %d", st.Channel.RNG.Seed, cfg.Seed))
	}
	p.channel = comm.RestoreAWGNChannel(math.Pow(10, cfg.EbN0dB/10), st.Channel)
	p.pkt.SetSeq(st.PktSeq)
	if err := p.rx.RestoreState(st.Rx); err != nil {
		return restoreErr(err)
	}
	if p.arq == nil && st.ARQ != (comm.ARQStats{}) {
		return restoreErr(errors.New("fleet: checkpoint carries ARQ state but config disables ARQ"))
	}
	if p.arq != nil {
		p.arq.RestoreStats(st.ARQ)
	}
	if p.fec == nil && st.FECCorrected != 0 {
		return restoreErr(errors.New("fleet: checkpoint carries FEC state but config disables FEC"))
	}
	if p.fec != nil {
		p.fec.RestoreCorrected(st.FECCorrected)
	}
	if (p.link != nil) != (st.Link != nil) {
		return restoreErr(errors.New("fleet: burst-link state does not match config"))
	}
	if p.link != nil {
		if p.link, err = fault.RestoreBurstLink(*cfg.Faults, *st.Link); err != nil {
			return restoreErr(err)
		}
	}
	if (p.brown != nil) != (st.Brown != nil) {
		return restoreErr(errors.New("fleet: brownout state does not match config"))
	}
	if p.brown != nil {
		if p.brown, err = fault.RestoreBrownout(*cfg.Faults, *st.Brown); err != nil {
			return restoreErr(err)
		}
	}
	if p.elec != nil || len(st.ElecGains) > 0 {
		if p.elec == nil {
			return restoreErr(errors.New("fleet: electrode gains do not match config"))
		}
		if err := p.elec.RestoreGains(st.ElecGains); err != nil {
			return restoreErr(err)
		}
	}
	faulty := p.res.FaultyChannels
	p.res = st.Counters
	p.res.FaultyChannels = faulty // derived from config, not carried state
	p.tick = st.Tick
	return p, nil
}
