package fleet

import (
	"fmt"
	"reflect"
	"testing"

	"mindful/internal/comm"
	"mindful/internal/fault"
)

// packedFaultConfig returns a scenario that keeps the packed transport
// eligible (no ARQ, no FEC) while injecting every per-implant fault
// process — burst link drops, brownouts and electrode faults all ride
// through the batched columns.
func packedFaultConfig() Config {
	cfg := testConfig()
	p := fault.DefaultProfile()
	cfg.Faults = &p
	return cfg
}

// TestBatchedDeterminismWall is the batched half of the determinism
// wall: for every scenario — packed fast path, every scalar-fallback
// trigger (FEC, ARQ, non-packable modulation), faults, drift and the
// closed decode loop — the batched runner must produce byte-identical
// aggregates and per-implant results to the scalar reference, for every
// batch size × worker count, under -race (the tier-1.5 gate runs this
// file with the race detector).
func TestBatchedDeterminismWall(t *testing.T) {
	drifting := packedFaultConfig()
	driftProf := driftProfile()
	drifting.Drift = &driftProf
	drifting.Decode = DecodeConfig{Kind: DecoderKalman, Track: true, Adapt: true}

	fecOnly := testConfig()
	fecOnly.FECDepth = 4

	qam64 := testConfig()
	qam64.Modulation = comm.NewQAM(6)
	qam64.EbN0dB = 16

	scenarios := []struct {
		name string
		cfg  Config
	}{
		// Packed transport: square QAM, no FEC, no ARQ.
		{"clean", testConfig()},
		// Packed transport with every fault process injected.
		{"faults", packedFaultConfig()},
		// Packed transport + scalar decode/adapt columns + drift.
		{"drift_decode", drifting},
		// Scalar-fallback transport: FEC breaks packed eligibility.
		{"fec", fecOnly},
		// Scalar-fallback transport: ARQ + FEC + full fault profile.
		{"harsh", faultConfig()},
		// Scalar-fallback transport: 6 bits/symbol does not divide 8.
		{"qam64", qam64},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			cfg := sc.cfg
			cfg.Workers = 1
			cfg.Batch = 0
			ref, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ref.BitErrors == 0 {
				t.Fatal("operating point produced zero bit errors; the wall would not exercise the noisy path")
			}
			want := deterministicFields(ref)
			for _, batch := range []int{1, 4, 16} {
				for _, workers := range []int{1, 2, 4} {
					batch, workers := batch, workers
					t.Run(fmt.Sprintf("batch=%d/workers=%d", batch, workers), func(t *testing.T) {
						t.Parallel()
						c := cfg
						c.Batch = batch
						c.Workers = workers
						got, err := Run(c)
						if err != nil {
							t.Fatal(err)
						}
						if g := deterministicFields(got); !reflect.DeepEqual(g, want) {
							t.Errorf("aggregate diverged:\n got %+v\nwant %+v", g, want)
						}
						for i := range got.PerImplant {
							g, w := got.PerImplant[i], ref.PerImplant[i]
							g.Worker, w.Worker = 0, 0
							if g != w {
								t.Errorf("implant %d diverged:\n got %+v\nwant %+v", i, g, w)
							}
						}
					})
				}
			}
		})
	}
}

// TestBatchedStageTiming checks the batched runner's timing attribution:
// one clock per column, frame counts equal to implants × ticks, and the
// digest untouched by the decorator.
func TestBatchedStageTiming(t *testing.T) {
	cfg := testConfig()
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof, agg, err := RunProfile(withBatch(cfg, 4))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Digest != ref.Digest {
		t.Errorf("timed batched digest %#x != scalar %#x", agg.Digest, ref.Digest)
	}
	if prof.Batch != 4 {
		t.Errorf("profile batch = %d, want 4", prof.Batch)
	}
	frames := int64(cfg.Implants * cfg.Ticks)
	for _, s := range prof.Stages {
		if s.Count != frames {
			t.Errorf("stage %s count = %d, want %d", s.Stage, s.Count, frames)
		}
		if s.Count > 0 && (s.P50Ns < float64(s.MinNs) || s.P99Ns > float64(s.MaxNs)) {
			t.Errorf("stage %s quantiles outside [min,max]", s.Stage)
		}
	}
}

func withBatch(cfg Config, b int) Config {
	cfg.Batch = b
	return cfg
}

// TestBatchedCheckpointCompatible pins the serve-path interaction: a
// pipeline snapshot taken from a scalar run restores and continues
// identically whether the original fleet ran batched or not — Batch is
// a runner choice, not simulation state.
func TestBatchedCheckpointCompatible(t *testing.T) {
	cfg := testConfig()
	cfg.Batch = 4
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	p, err := NewPipeline(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for i := 0; i < 10; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	q, err := RestorePipeline(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for i := 0; i < 10; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
		if err := q.Step(); err != nil {
			t.Fatal(err)
		}
	}
	pr, qr := p.Result(), q.Result()
	if pr.Digest != qr.Digest {
		t.Errorf("restored digest %#x != original %#x", qr.Digest, pr.Digest)
	}
}

// TestBatchValidate pins the new config checks.
func TestBatchValidate(t *testing.T) {
	cfg := testConfig()
	cfg.Batch = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative batch accepted")
	}
	cfg.Batch = 1
	if err := cfg.Validate(); err != nil {
		t.Errorf("batch=1 rejected: %v", err)
	}
}
