package fleet

import (
	"fmt"
	"time"
)

// ScalingPoint is one worker count's performance on a fixed fleet.
type ScalingPoint struct {
	Workers         int           `json:"workers"`
	Elapsed         time.Duration `json:"elapsed_ns"`
	FramesPerSecond float64       `json:"frames_per_second"`
	// Speedup is relative to the first measured point.
	Speedup float64 `json:"speedup"`
	// Digest witnesses that every point computed identical output
	// (serialized as a string: 64-bit values overflow JSON numbers).
	Digest uint64 `json:"digest,string"`
}

// BatchPoint is one batch size's performance on a fixed single-worker
// fleet.
type BatchPoint struct {
	Batch           int           `json:"batch"`
	Elapsed         time.Duration `json:"elapsed_ns"`
	FramesPerSecond float64       `json:"frames_per_second"`
	// Speedup is relative to the first measured point (batch sweeps
	// conventionally start at 1, the scalar baseline).
	Speedup float64 `json:"speedup"`
	// Digest witnesses that every point computed identical output.
	Digest uint64 `json:"digest,string"`
}

// MeasureBatchSweep runs the same fleet at each batch size on a single
// worker and reports the throughput curve — the batched-execution
// analogue of MeasureScaling, isolating the slab kernels' effect from
// parallelism. It fails if any point's digest diverges.
func MeasureBatchSweep(cfg Config, batches []int) ([]BatchPoint, error) {
	if len(batches) == 0 {
		return nil, fmt.Errorf("fleet: no batch sizes to measure")
	}
	cfg.Workers = 1
	points := make([]BatchPoint, 0, len(batches))
	var base float64
	var digest uint64
	for i, b := range batches {
		c := cfg
		c.Batch = b
		agg, err := Run(c)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = agg.FramesPerSecond
			digest = agg.Digest
		} else if agg.Digest != digest {
			return nil, fmt.Errorf("fleet: digest diverged at batch %d: %#x vs %#x", b, agg.Digest, digest)
		}
		p := BatchPoint{
			Batch:           b,
			Elapsed:         agg.Elapsed,
			FramesPerSecond: agg.FramesPerSecond,
			Digest:          agg.Digest,
		}
		if base > 0 {
			p.Speedup = agg.FramesPerSecond / base
		}
		points = append(points, p)
	}
	return points, nil
}

// MeasureScaling runs the same fleet at each worker count and reports the
// throughput curve. It fails if any point's digest diverges — a scaling
// measurement that changes the answer measures nothing.
func MeasureScaling(cfg Config, workerCounts []int) ([]ScalingPoint, error) {
	if len(workerCounts) == 0 {
		return nil, fmt.Errorf("fleet: no worker counts to measure")
	}
	points := make([]ScalingPoint, 0, len(workerCounts))
	var base float64
	var digest uint64
	for i, w := range workerCounts {
		c := cfg
		c.Workers = w
		agg, err := Run(c)
		if err != nil {
			return nil, err
		}
		if i == 0 {
			base = agg.FramesPerSecond
			digest = agg.Digest
		} else if agg.Digest != digest {
			return nil, fmt.Errorf("fleet: digest diverged at %d workers: %#x vs %#x", w, agg.Digest, digest)
		}
		p := ScalingPoint{
			Workers:         w,
			Elapsed:         agg.Elapsed,
			FramesPerSecond: agg.FramesPerSecond,
			Digest:          agg.Digest,
		}
		if base > 0 {
			p.Speedup = agg.FramesPerSecond / base
		}
		points = append(points, p)
	}
	return points, nil
}
