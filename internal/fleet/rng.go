package fleet

// Sharded seed derivation. A fleet run needs one independent random
// stream per (implant, purpose) pair, bit-identical no matter how the
// implants are later distributed over workers. SplitMix64 gives exactly
// that: a single base seed is mixed with the implant index and a stream
// tag through an avalanche-quality finalizer, so neighbouring indices
// land on decorrelated 64-bit states and the derivation itself is pure
// arithmetic — no shared RNG whose draw order could depend on
// scheduling.

// Stream tags for DeriveSeed: every randomized stage of one implant's
// pipeline draws from its own derived stream.
const (
	// StreamNeural seeds the synthetic cortical signal generator.
	StreamNeural uint64 = 0
	// StreamChannel seeds the AWGN channel noise.
	StreamChannel uint64 = 1
	// StreamLink seeds the burst-loss link impairments (fault.BurstLink).
	StreamLink uint64 = 2
	// StreamElectrode seeds the per-channel electrode fault assignment.
	StreamElectrode uint64 = 3
	// StreamBrownout seeds the transmitter brownout process.
	StreamBrownout uint64 = 4
	// StreamDecode seeds the decode stage's deterministic calibration
	// (tuning gains and network initialization).
	StreamDecode uint64 = 5
	// StreamDrift seeds the multi-day nonstationarity process
	// (drift.Process): tuning rotation, gain walks and unit turnover.
	StreamDrift uint64 = 6
	// StreamRefit seeds the adaptive decoder's recalibration loop: the
	// CLDA intent-label jitter drawn per buffered training pair.
	StreamRefit uint64 = 7
)

// splitmix64 is the SplitMix64 state-advance + finalizer: increment by
// the golden-ratio constant, then avalanche.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// DeriveSeed maps (base seed, implant index, stream tag) to an
// independent RNG seed. The derivation is a pure function of its
// arguments, so per-implant pipelines are reproducible regardless of
// worker count, GOMAXPROCS or execution order.
func DeriveSeed(base int64, index, stream uint64) int64 {
	h := splitmix64(uint64(base))
	h = splitmix64(h ^ (index+1)*0xD1B54A32D192ED03)
	h = splitmix64(h ^ (stream+1)*0x8CB92BA72F3D8DD7)
	return int64(h)
}
