package fleet

import (
	"testing"
)

// newBenchGroup builds a batch group of n implants under cfg with every
// per-implant buffer warmed by a few ticks, mirroring runBatchShard's
// assembly (timing stripped from the build config, columns assembled
// against the original).
func newBenchGroup(tb testing.TB, cfg Config, n int) *batchGroup {
	tb.Helper()
	buildCfg := cfg
	buildCfg.StageTiming = nil
	ps := make([]*Pipeline, n)
	for i := 0; i < n; i++ {
		p, err := NewPipeline(buildCfg, i, 0)
		if err != nil {
			tb.Fatal(err)
		}
		ps[i] = p
		tb.Cleanup(p.Close)
	}
	g := newBatchGroup(cfg, ps, &batchArena{})
	for i := 0; i < 64; i++ {
		if err := g.step(); err != nil {
			tb.Fatal(err)
		}
	}
	return g
}

// TestBatchedStepAllocFree pins the batched hot loop's allocation
// behavior: once buffers reach steady state, a whole group tick — all
// columns over all implants — allocates nothing. This is the property
// the arena, the Append*Fast kernels and the scratch receiver exist
// for; any regression here silently costs the 3× batched speedup to GC
// pressure.
func TestBatchedStepAllocFree(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Implants = 16
	cfg.Batch = 16
	g := newBenchGroup(t, cfg, cfg.Implants)
	avg := testing.AllocsPerRun(200, func() {
		if err := g.step(); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("batched group step allocates %.2f times at steady state, want 0", avg)
	}
}

// benchmarkBatchedStage times one batched column in isolation: the
// other columns still run every iteration (the pipeline's state must
// advance coherently) but outside the timer window. ns/op is the
// column's cost per group tick; ns/frame divides by the batch size for
// comparison with the scalar per-implant numbers.
func benchmarkBatchedStage(b *testing.B, col string) {
	const n = 16
	cfg := DefaultConfig()
	cfg.Implants = n
	cfg.Batch = n
	g := newBenchGroup(b, cfg, n)
	target := -1
	for i, c := range g.cols {
		if c.Name() == col {
			target = i
		}
	}
	if target < 0 {
		b.Fatalf("no %q column", col)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		g.beginTick()
		for j := 0; j < target; j++ {
			if err := g.cols[j].BatchStep(g.tks); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		err := g.cols[target].BatchStep(g.tks)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		for j := target + 1; j < len(g.cols); j++ {
			if err := g.cols[j].BatchStep(g.tks); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*n), "ns/frame")
}

func BenchmarkBatchedStageStep(b *testing.B) {
	b.Run("source", func(b *testing.B) { benchmarkBatchedStage(b, "source") })
	b.Run("transport", func(b *testing.B) { benchmarkBatchedStage(b, "transport") })
	b.Run("receiver", func(b *testing.B) { benchmarkBatchedStage(b, "receiver") })
}

// benchmarkScalarStage is the scalar counterpart: one implant stepped
// through the ordinary stage list, timing only the named stage.
func benchmarkScalarStage(b *testing.B, col string) {
	cfg := DefaultConfig()
	cfg.Implants = 1
	p, err := NewPipeline(cfg, 0, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(p.Close)
	target := -1
	for i, s := range p.stages {
		if s.Name() == col {
			target = i
		}
	}
	if target < 0 {
		b.Fatalf("no %q stage", col)
	}
	for i := 0; i < 64; i++ {
		if err := p.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.StopTimer()
	for i := 0; i < b.N; i++ {
		p.tk = Tick{N: p.tick, Res: &p.res}
		p.tick++
		for j := 0; j < target; j++ {
			if err := p.stages[j].Step(&p.tk); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		err := p.stages[target].Step(&p.tk)
		b.StopTimer()
		if err != nil {
			b.Fatal(err)
		}
		for j := target + 1; j < len(p.stages); j++ {
			if err := p.stages[j].Step(&p.tk); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N), "ns/frame")
}

func BenchmarkScalarStageStep(b *testing.B) {
	b.Run("source", func(b *testing.B) { benchmarkScalarStage(b, "source") })
	b.Run("transport", func(b *testing.B) { benchmarkScalarStage(b, "transport") })
	b.Run("receiver", func(b *testing.B) { benchmarkScalarStage(b, "receiver") })
}
