package fleet

import (
	"math"
	"reflect"
	"testing"

	"mindful/internal/drift"
)

// driftProfile returns the nonstationarity the fleet drift tests run:
// epochs short enough that a 32-tick scenario crosses several.
func driftProfile() drift.Profile {
	p := drift.DefaultProfile()
	p.EpochTicks = 8
	return p
}

// adaptiveConfig returns the full-stack checkpoint scenario with drift,
// a calibrated decoder and closed-loop recalibration all enabled — the
// everything-on configuration the adaptive checkpoint and determinism
// tests exercise. Refit and meter windows are shortened so refits and
// KL readings happen inside 32 ticks.
func adaptiveConfig(kind DecoderKind) Config {
	cfg := checkpointConfigs()["full-stack"]
	p := driftProfile()
	cfg.Drift = &p
	cfg.Decode = DecodeConfig{
		Kind:        kind,
		BinTicks:    2,
		Calibrate:   true,
		Adapt:       true,
		RefitEvery:  4,
		RefitBuffer: 8,
		MeterRef:    4,
		MeterWin:    4,
	}
	return cfg
}

// adaptiveKinds are the decoder arms that support recalibration.
var adaptiveKinds = []DecoderKind{DecoderKalman, DecoderFixed, DecoderWiener}

// TestDriftZeroIntensityDigestPin: a drift profile scaled to zero must
// leave every digest and counter byte-identical to a run with no drift
// configured at all — the CRN ladder's anchor, and the guarantee that
// attaching the subsystem costs existing runs nothing.
func TestDriftZeroIntensityDigestPin(t *testing.T) {
	for name, base := range checkpointConfigs() {
		t.Run(name, func(t *testing.T) {
			cfg := base
			cfg.Decode = DecodeConfig{Kind: DecoderKalman}
			ref, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			zero := driftProfile().Scale(0)
			cfg.Drift = &zero
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.Digest != ref.Digest || got.DecodeDigest != ref.DecodeDigest {
				t.Fatalf("zero-intensity drift changed digests: %d/%d != %d/%d",
					got.Digest, got.DecodeDigest, ref.Digest, ref.DecodeDigest)
			}
			if g, w := deterministicFields(got), deterministicFields(ref); !reflect.DeepEqual(g, w) {
				t.Fatalf("zero-intensity drift changed the aggregate:\n got %+v\nwant %+v", g, w)
			}
			if got.DriftEpochs != 0 {
				t.Fatalf("disabled drift accounted %d epochs", got.DriftEpochs)
			}
		})
	}
}

// TestDriftChangesFrameDigest: full-intensity drift must actually move
// the radiated bytes (the pin above is not vacuous), and the process
// accounting must be live.
func TestDriftChangesFrameDigest(t *testing.T) {
	cfg := checkpointConfigs()["clean"]
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p := driftProfile()
	cfg.Drift = &p
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest == ref.Digest {
		t.Fatal("full-intensity drift left the frame digest unchanged")
	}
	if got.DriftEpochs == 0 {
		t.Fatal("drift crossed no epochs in the scenario")
	}
}

// TestAdaptFrameDigestInvariant: tracking and adaptation ride the decode
// path only — the frame digest must stay byte-identical whether the
// adapt stage is off, tracking, or rewriting the decoder, while the
// decode digest must actually change once refits land.
func TestAdaptFrameDigestInvariant(t *testing.T) {
	base := adaptiveConfig(DecoderKalman)
	base.Decode.Track, base.Decode.Adapt = false, false
	ref, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	track := base
	track.Decode.Track = true
	trackAgg, err := Run(track)
	if err != nil {
		t.Fatal(err)
	}
	if trackAgg.Digest != ref.Digest || trackAgg.DecodeDigest != ref.DecodeDigest {
		t.Fatal("observation-only tracking changed a digest")
	}
	if trackAgg.DecodeErrBins == 0 {
		t.Fatal("tracking accumulated no error bins")
	}

	adapt := base
	adapt.Decode.Adapt = true
	adaptAgg, err := Run(adapt)
	if err != nil {
		t.Fatal(err)
	}
	if adaptAgg.Digest != ref.Digest {
		t.Fatal("adaptation changed the frame digest")
	}
	if adaptAgg.Refits == 0 {
		t.Fatal("adaptation applied no refits in the scenario")
	}
	if adaptAgg.DecodeDigest == ref.DecodeDigest {
		t.Fatal("refits landed but the decode digest never moved")
	}
}

// TestAdaptDeterminismWall: the everything-on configuration — drift,
// calibration, concealment-aware decoding, KL tracking and closed-loop
// recalibration — must stay bit-identical for every worker count, for
// every adaptive decoder kind. Runs under -race via the tier-1.5 gate.
func TestAdaptDeterminismWall(t *testing.T) {
	for _, kind := range adaptiveKinds {
		cfg := adaptiveConfig(kind)
		cfg.Workers = 1
		ref, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref.Refits == 0 {
			t.Fatalf("%v: scenario applied no refits", kind)
		}
		want := deterministicFields(ref)
		for _, workers := range []int{2, 4} {
			c := cfg
			c.Workers = workers
			got, err := Run(c)
			if err != nil {
				t.Fatal(err)
			}
			if g := deterministicFields(got); !reflect.DeepEqual(g, want) {
				t.Fatalf("%v workers=%d: aggregate diverged:\n got %+v\nwant %+v", kind, workers, g, want)
			}
		}
	}
}

// TestCheckpointResumeAdaptive: snapshot at K, restore, K more ticks
// must equal the uninterrupted 2K run bit-for-bit — including the drift
// process, the instability meter, the supervision ring mid-refit-cycle
// and the mutated decoder model. K is chosen so the snapshot lands
// between refits with a partially filled ring.
func TestCheckpointResumeAdaptive(t *testing.T) {
	const k = 16
	for _, kind := range adaptiveKinds {
		cfg := adaptiveConfig(kind)
		for idx := 0; idx < cfg.Implants; idx++ {
			ref, err := NewPipeline(cfg, idx, 0)
			if err != nil {
				t.Fatal(err)
			}
			stepN(t, ref, 2*k)
			want := ref.Result()
			ref.Close()
			if want.Refits == 0 {
				t.Fatalf("%v implant %d: no refits in 2K ticks", kind, idx)
			}

			first, err := NewPipeline(cfg, idx, 0)
			if err != nil {
				t.Fatal(err)
			}
			stepN(t, first, k)
			st, err := first.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			stepN(t, first, k)
			if got := first.Result(); got != want {
				t.Fatalf("%v implant %d: snapshot disturbed the pipeline:\n%+v\nwant %+v", kind, idx, got, want)
			}
			first.Close()

			if st.Drift == nil || st.Adapt == nil || st.Adapt.Recal == nil || st.Adapt.Model == nil {
				t.Fatalf("%v: snapshot missing drift/adapt state", kind)
			}
			resumed, err := RestorePipeline(cfg, st)
			if err != nil {
				t.Fatal(err)
			}
			stepN(t, resumed, k)
			if got := resumed.Result(); got != want {
				t.Fatalf("%v implant %d: resumed result\n%+v\nwant %+v", kind, idx, got, want)
			}
			resumed.Close()
		}
	}
}

// TestRestoreRejectsDriftMismatch: drift and adapt state presence must
// match the config in both directions.
func TestRestoreRejectsDriftMismatch(t *testing.T) {
	cfg := adaptiveConfig(DecoderKalman)
	p, err := NewPipeline(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, p, 16)
	st, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	p.Close()

	noDrift := cfg
	noDrift.Drift = nil
	if _, err := RestorePipeline(noDrift, st); err == nil {
		t.Fatal("restore without drift accepted a drifting checkpoint")
	}
	noAdapt := cfg
	noAdapt.Decode.Adapt = false
	noAdapt.Decode.Track = false
	if _, err := RestorePipeline(noAdapt, st); err == nil {
		t.Fatal("restore without tracking accepted an adaptive checkpoint")
	}
	trackOnly := cfg
	trackOnly.Decode.Adapt = false
	trackOnly.Decode.Track = true
	if _, err := RestorePipeline(trackOnly, st); err == nil {
		t.Fatal("track-only restore accepted a recalibrating checkpoint")
	}

	plain := cfg
	plain.Drift = nil
	plain.Decode.Adapt = false
	plain.Decode.Track = false
	q, err := NewPipeline(plain, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, q, 16)
	st2, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	q.Close()
	if _, err := RestorePipeline(cfg, st2); err == nil {
		t.Fatal("adaptive restore accepted a drift-free, adapt-free checkpoint")
	}
}

// TestDriftSweepFrozenVsAdaptive: the headline claim, end to end — the
// frozen decoder's error grows as drift intensity rises while the
// recalibrating decoder's stays bounded, and both arms share the frame
// stream at every point.
// The run is long (multi-epoch, period-aligned bins) because the claim
// is about slow physiology: the intent cycle is 200 ticks, so BinTicks
// 25 makes one cycle 8 bins and the 16-bin meter windows two whole
// cycles; epochs of 1000 ticks keep each refit buffer (48 bins = 1200
// ticks) spanning roughly one drift epoch, so supervision is stale by
// at most one epoch. Every value below is deterministic (fixed seed),
// so the assertions are exact, not statistical.
func TestDriftSweepFrozenVsAdaptive(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Implants = 2
	cfg.Ticks = 12000
	cfg.Channels = 16
	cfg.Decode = DecodeConfig{Kind: DecoderKalman, BinTicks: 25, RefitEvery: 12, RefitBuffer: 48, RefitBlend: 0.3, MeterRef: 16, MeterWin: 16}

	sw, err := RunDriftSweep(cfg, DefaultSweepProfile(), []float64{0, 0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Points) != 3 {
		t.Fatalf("sweep returned %d points, want 3", len(sw.Points))
	}
	for i, pt := range sw.Points {
		if i > 0 && pt.FrozenRMSE <= sw.Points[i-1].FrozenRMSE {
			t.Errorf("frozen RMSE not increasing: point %d %.4f <= point %d %.4f",
				i, pt.FrozenRMSE, i-1, sw.Points[i-1].FrozenRMSE)
		}
		if pt.AdaptiveRMSE >= pt.FrozenRMSE {
			t.Errorf("point %d: adaptation did not help: %.4f >= %.4f",
				i, pt.AdaptiveRMSE, pt.FrozenRMSE)
		}
		if pt.Refits == 0 {
			t.Errorf("point %d: adaptive arm never refitted", i)
		}
		if pt.FrozenKL < 0 || math.IsNaN(pt.FrozenKL) || math.IsInf(pt.FrozenKL, 0) {
			t.Errorf("point %d: invalid KL reading %v", i, pt.FrozenKL)
		}
	}
	first, last := sw.Points[0], sw.Points[len(sw.Points)-1]
	// Bounded: full-intensity drift costs the adaptive arm at most a
	// modest premium over its own drift-free error, while the frozen
	// arm degrades several times as much in absolute terms.
	if bound := 1.25 * first.AdaptiveRMSE; last.AdaptiveRMSE > bound {
		t.Errorf("adaptive RMSE %.4f exceeded bound %.4f (1.25x drift-free %.4f)",
			last.AdaptiveRMSE, bound, first.AdaptiveRMSE)
	}
	if last.DriftEpochs == 0 || last.DriftTurnovers == 0 {
		t.Errorf("drift accounting implausible: epochs %d, turnovers %d",
			last.DriftEpochs, last.DriftTurnovers)
	}
}

// TestDriftSweepWorkerInvariance: the sweep digest is bit-identical for
// any worker count, like every other fleet artifact.
func TestDriftSweepWorkerInvariance(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Implants = 3
	cfg.Ticks = 64
	cfg.Channels = 16
	cfg.Decode = DecodeConfig{Kind: DecoderKalman, BinTicks: 2, RefitEvery: 4, RefitBuffer: 8, MeterRef: 4, MeterWin: 4}
	base := driftProfile()

	cfg.Workers = 1
	ref, err := RunDriftSweep(cfg, base, []float64{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		c := cfg
		c.Workers = workers
		got, err := RunDriftSweep(c, base, []float64{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest != ref.Digest {
			t.Fatalf("workers=%d: sweep digest %d != %d", workers, got.Digest, ref.Digest)
		}
	}
}

// TestDriftSweepRejectsBadInput covers the sweep's validation.
func TestDriftSweepRejectsBadInput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Implants = 1
	cfg.Ticks = 8
	base := driftProfile()
	if _, err := RunDriftSweep(cfg, base, []float64{-1}); err == nil {
		t.Fatal("negative intensity accepted")
	}
	bad := base
	bad.RotationSigma = -1
	if _, err := RunDriftSweep(cfg, bad, nil); err == nil {
		t.Fatal("invalid profile accepted")
	}
	dnn := cfg
	dnn.Decode = DecodeConfig{Kind: DecoderDNN}
	if _, err := RunDriftSweep(dnn, base, nil); err == nil {
		t.Fatal("DNN sweep accepted")
	}
}

// TestDecodeConfigValidateAdapt covers the new knobs' validation.
func TestDecodeConfigValidateAdapt(t *testing.T) {
	for _, bad := range []DecodeConfig{
		{Track: true},
		{Adapt: true},
		{Calibrate: true},
		{Kind: DecoderDNN, Adapt: true},
		{Kind: DecoderDNN, Calibrate: true},
		{Kind: DecoderKalman, RefitBlend: 1.5},
		{Kind: DecoderKalman, RefitJitter: -0.1},
		{Kind: DecoderKalman, MeterRef: -1},
		{Kind: DecoderKalman, Adapt: true, RefitEvery: 100, RefitBuffer: 8},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
	good := DecodeConfig{Kind: DecoderFixed, Calibrate: true, Adapt: true, RefitJitter: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid adaptive config rejected: %v", err)
	}
}
