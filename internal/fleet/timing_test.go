package fleet

import (
	"reflect"
	"strings"
	"testing"

	"mindful/internal/obs"
)

// timedConfig is the harshest timed scenario: faults, ARQ, FEC,
// concealment and a decoder, so the decorator wraps all four stages.
func timedConfig() Config {
	cfg := faultConfig()
	cfg.Decode = DecodeConfig{Kind: DecoderKalman}
	return cfg
}

// TestStageTimingDigestNeutral pins the flight recorder's core contract:
// wrapping every stage in the timing decorator changes nothing about the
// simulation. Aggregates — including the frame digest and the decode
// digest — must be byte-identical to the untimed run.
func TestStageTimingDigestNeutral(t *testing.T) {
	cfg := timedConfig()
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.StageTiming = obs.NewStageTimer()
	timed, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := deterministicFields(timed), deterministicFields(ref); !reflect.DeepEqual(g, w) {
		t.Errorf("timed aggregate diverged:\n got %+v\nwant %+v", g, w)
	}
	for i := range timed.PerImplant {
		g, w := timed.PerImplant[i], ref.PerImplant[i]
		g.Worker, w.Worker = 0, 0
		if g != w {
			t.Errorf("implant %d diverged under timing:\n got %+v\nwant %+v", i, g, w)
		}
	}
}

// TestStageTimingCoversAllStages checks attribution completeness: every
// stage of the graph lands in the timer with one observation per tick
// per implant (blanked ticks still step every stage).
func TestStageTimingCoversAllStages(t *testing.T) {
	cfg := timedConfig()
	cfg.StageTiming = obs.NewStageTimer()
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	stats := cfg.StageTiming.Stats()
	var names []string
	for _, s := range stats {
		names = append(names, s.Stage)
		if want := int64(cfg.Implants * cfg.Ticks); s.Count != want {
			t.Errorf("stage %s count = %d, want %d", s.Stage, s.Count, want)
		}
		if s.TotalNs <= 0 || s.MeanNs <= 0 {
			t.Errorf("stage %s has no attributed time: %+v", s.Stage, s)
		}
	}
	if got, want := strings.Join(names, ","), "decode,receiver,source,transport"; got != want {
		t.Errorf("timed stages = %s, want %s", got, want)
	}
}

// TestStageTimingCheckpointNeutral drives snapshot/restore through timed
// pipelines: the decorator must delegate state transparently, and the
// interrupted timed run must reproduce the uninterrupted untimed digest.
func TestStageTimingCheckpointNeutral(t *testing.T) {
	cfg := timedConfig()
	ref := runImplant(cfg, 0, 0)
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}

	cfg.StageTiming = obs.NewStageTimer()
	p, err := NewPipeline(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	half := cfg.Ticks / 2
	for i := 0; i < half; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	p.Close()
	resumed, err := RestorePipeline(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	for i := half; i < cfg.Ticks; i++ {
		if err := resumed.Step(); err != nil {
			t.Fatal(err)
		}
	}
	got := resumed.Result()
	if got != ref {
		t.Errorf("timed checkpoint run diverged:\n got %+v\nwant %+v", got, ref)
	}
}

// TestRunProfile covers the profile artifact: digest matches an untimed
// run, every stage reports, and the JSON round-trips.
func TestRunProfile(t *testing.T) {
	cfg := timedConfig()
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prof, agg, err := RunProfile(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Digest != ref.Digest || agg.DecodeDigest != ref.DecodeDigest {
		t.Errorf("profiled digests %016x/%016x, want %016x/%016x",
			agg.Digest, agg.DecodeDigest, ref.Digest, ref.DecodeDigest)
	}
	if len(prof.Stages) != 4 {
		t.Fatalf("profile has %d stages, want 4: %+v", len(prof.Stages), prof.Stages)
	}
	for _, s := range prof.Stages {
		if s.Count == 0 || s.MeanNs <= 0 {
			t.Errorf("profile stage %s empty: %+v", s.Stage, s)
		}
	}
	var b strings.Builder
	if err := prof.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"stages"`, `"mean_ns"`, `"digest"`, `"source"`, `"decode"`} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("profile JSON missing %s:\n%s", want, b.String())
		}
	}
}
