package fleet

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"mindful/internal/comm"
	"mindful/internal/fault"
	"mindful/internal/obs"
	"mindful/internal/units"
	"mindful/internal/wearable"
)

// testConfig returns a small fleet that still exercises frame corruption
// (12 dB 16-QAM leaves a measurable BER).
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Implants = 6
	cfg.Ticks = 32
	cfg.Channels = 16
	return cfg
}

// deterministicFields strips the wall-clock fields so aggregates can be
// compared for byte identity.
func deterministicFields(a *Aggregate) Aggregate {
	out := *a
	out.Workers = 0
	out.Elapsed = 0
	out.FramesPerSecond = 0
	out.PerImplant = nil
	return out
}

// faultConfig returns the wall's fault-enabled scenario: the full harsh
// profile with ARQ, FEC and concealment all active, so every recovery
// path runs under the race detector.
func faultConfig() Config {
	cfg := testConfig()
	p := fault.DefaultProfile()
	cfg.Faults = &p
	cfg.ARQ = comm.ARQConfig{MaxRetries: 2, SlotTime: time.Millisecond, LatencyBudget: 8 * time.Millisecond}
	cfg.FECDepth = 4
	cfg.Concealment = wearable.ConcealHold
	return cfg
}

// TestFleetDeterminismWall is the determinism wall: the same seed must
// produce byte-identical aggregates for every worker count, including
// under -race (the tier-1.5 gate runs this file with the race detector).
// The wall covers both the clean pipeline and the fully fault-enabled
// one (burst link + brownouts + electrode faults + ARQ + FEC +
// concealment).
func TestFleetDeterminismWall(t *testing.T) {
	timed := faultConfig()
	timed.Decode = DecodeConfig{Kind: DecoderKalman}
	timed.StageTiming = obs.NewStageTimer()
	drifting := faultConfig()
	driftProf := driftProfile()
	drifting.Drift = &driftProf
	drifting.Decode = DecodeConfig{Kind: DecoderKalman}
	scenarios := []struct {
		name string
		cfg  Config
	}{
		{"clean", testConfig()},
		{"faults", faultConfig()},
		// The flight recorder's digest-neutrality contract: the wall must
		// hold with the timing decorator wrapping all four stages (the
		// timer is shared across every worker-count run — it accumulates
		// wall time, never touches the simulation).
		{"timed", timed},
		{"drift", drifting},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			cfg := sc.cfg
			ref, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if ref.Frames+ref.Blanked != int64(cfg.Implants*cfg.Ticks) {
				t.Fatalf("frames %d + blanked %d, want %d", ref.Frames, ref.Blanked, cfg.Implants*cfg.Ticks)
			}
			if ref.BitErrors == 0 {
				t.Fatal("operating point produced zero bit errors; the wall would not exercise the noisy path")
			}
			if cfg.Faults != nil && ref.LinkDropped == 0 && ref.Blanked == 0 {
				t.Fatal("fault scenario injected nothing; the wall would not exercise the recovery path")
			}
			want := deterministicFields(ref)
			for _, workers := range []int{1, 2, 4, 8} {
				workers := workers
				t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
					t.Parallel()
					c := cfg
					c.Workers = workers
					got, err := Run(c)
					if err != nil {
						t.Fatal(err)
					}
					if g := deterministicFields(got); !reflect.DeepEqual(g, want) {
						t.Errorf("workers=%d aggregate diverged:\n got %+v\nwant %+v", workers, g, want)
					}
					// Per-implant results must match field-for-field too (modulo
					// the worker assignment, which legitimately changes).
					for i := range got.PerImplant {
						g, w := got.PerImplant[i], ref.PerImplant[i]
						g.Worker, w.Worker = 0, 0
						if g != w {
							t.Errorf("workers=%d implant %d diverged:\n got %+v\nwant %+v", workers, i, g, w)
						}
					}
				})
			}
		})
	}
}

// TestFleetSeedSensitivity checks that different base seeds actually
// change the output (the digest is not vacuous).
func TestFleetSeedSensitivity(t *testing.T) {
	cfg := testConfig()
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Fatalf("digest %#x identical across seeds", a.Digest)
	}
}

// TestFleetModulations runs the wall's core identity check across every
// supported modem family.
func TestFleetModulations(t *testing.T) {
	for _, m := range []comm.Modulation{comm.OOK{}, comm.NewQAM(1), comm.NewQAM(2), comm.NewQAM(6)} {
		cfg := testConfig()
		cfg.Implants = 3
		cfg.Ticks = 8
		cfg.Modulation = m
		cfg.Workers = 1
		a, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		cfg.Workers = 3
		b, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		if a.Digest != b.Digest {
			t.Errorf("%s: digest %#x (1 worker) != %#x (3 workers)", m.Name(), a.Digest, b.Digest)
		}
	}
}

// TestFleetObserverShards checks the shard-labeled metrics reduce to the
// same totals as the aggregate.
func TestFleetObserverShards(t *testing.T) {
	cfg := testConfig()
	cfg.Observer = obs.New()
	cfg.Workers = 3
	agg, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var frames int64
	for w := 0; w < cfg.Workers; w++ {
		lbl := obs.Label{Key: "shard", Value: string(rune('0' + w))}
		frames += cfg.Observer.Metrics.Counter("fleet_frames_total", lbl).Value()
	}
	if frames != agg.Frames {
		t.Errorf("shard frame counters sum to %d, aggregate has %d", frames, agg.Frames)
	}
}

func TestDeriveSeedIndependence(t *testing.T) {
	seen := map[int64]string{}
	for base := int64(0); base < 3; base++ {
		for idx := uint64(0); idx < 64; idx++ {
			for stream := uint64(0); stream < 3; stream++ {
				s := DeriveSeed(base, idx, stream)
				if prev, dup := seen[s]; dup {
					t.Fatalf("seed collision: (%d,%d,%d) and %s both map to %d", base, idx, stream, prev, s)
				}
				seen[s] = string(rune('a'))
				if s2 := DeriveSeed(base, idx, stream); s2 != s {
					t.Fatalf("DeriveSeed not pure: %d vs %d", s, s2)
				}
			}
		}
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Implants = 0 },
		func(c *Config) { c.Ticks = 0 },
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.SampleRate = units.Hertz(0) },
		func(c *Config) { c.SampleBits = 0 },
		func(c *Config) { c.SampleBits = 17 },
		func(c *Config) { c.Modulation = nil },
		func(c *Config) { c.Modulation = comm.NewQAM(3) }, // non-square QAM has no modem
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config passed validation", i)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
}
