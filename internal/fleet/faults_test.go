package fleet

import (
	"testing"
	"time"

	"mindful/internal/comm"
	"mindful/internal/fault"
	"mindful/internal/wearable"
)

// benchPinDigest is the aggregate digest of the BENCH_fleet.json baseline
// configuration (64 implants × 48 ticks × 32 channels, 16-QAM @ 12 dB,
// seed 1). The fault machinery must not move it while disabled: this pin
// is the clean-path byte-identity contract with the pre-fault simulator.
const benchPinDigest uint64 = 6453660145860964667

func benchPinConfig() Config {
	cfg := DefaultConfig()
	cfg.Implants = 64
	cfg.Ticks = 48
	cfg.Channels = 32
	return cfg
}

// TestCleanPathDigestPin: with faults, ARQ, FEC and concealment all
// disabled the fleet must reproduce the recorded pre-fault digest bit for
// bit. A zero-valued (disabled) profile must behave identically to nil.
func TestCleanPathDigestPin(t *testing.T) {
	agg, err := Run(benchPinConfig())
	if err != nil {
		t.Fatal(err)
	}
	if agg.Digest != benchPinDigest {
		t.Fatalf("clean digest %d, want pinned %d — the fault changes moved the disabled path", agg.Digest, benchPinDigest)
	}
	cfg := benchPinConfig()
	cfg.Faults = &fault.Profile{} // nothing enabled
	cfg.Concealment = wearable.ConcealHold
	agg2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if agg2.Digest != benchPinDigest {
		t.Fatalf("disabled-profile digest %d, want pinned %d", agg2.Digest, benchPinDigest)
	}
	// No injection may occur; concealment still reacts to ordinary AWGN
	// corruption (CRC losses), which is its job, without moving the digest.
	if agg2.Blanked != 0 || agg2.LinkDropped != 0 || agg2.Retransmits != 0 || agg2.FECCorrected != 0 {
		t.Fatalf("disabled profile injected: blanked %d dropped %d retransmits %d corrected %d",
			agg2.Blanked, agg2.LinkDropped, agg2.Retransmits, agg2.FECCorrected)
	}
	if agg2.Concealed == 0 {
		t.Fatal("ConcealHold hid no AWGN losses at this operating point")
	}
}

// sweepConfig is the shared sweep scenario: small fleet, full recovery
// stack enabled.
func sweepConfig() Config {
	cfg := DefaultConfig()
	cfg.Implants = 8
	cfg.Ticks = 64
	cfg.Channels = 16
	cfg.ARQ = comm.ARQConfig{MaxRetries: 2, SlotTime: time.Millisecond, LatencyBudget: 8 * time.Millisecond}
	cfg.FECDepth = 4
	cfg.Concealment = wearable.ConcealHold
	return cfg
}

// TestFaultSweepWorkerInvariance: the sweep digest (and every point) must
// be bit-identical for any worker count — the acceptance criterion of the
// fault-sweep mode.
func TestFaultSweepWorkerInvariance(t *testing.T) {
	cfg := sweepConfig()
	ref, err := RunFaultSweep(cfg, fault.DefaultProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 8} {
		c := cfg
		c.Workers = workers
		got, err := RunFaultSweep(c, fault.DefaultProfile(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if got.Digest != ref.Digest {
			t.Errorf("workers=%d sweep digest %d != reference %d", workers, got.Digest, ref.Digest)
		}
		for i := range got.Points {
			if got.Points[i] != ref.Points[i] {
				t.Errorf("workers=%d point %d diverged:\n got %+v\nwant %+v",
					workers, i, got.Points[i], ref.Points[i])
			}
		}
	}
}

// TestFaultSweepDegradesMonotonically: with common random numbers across
// intensities the delivery rate must fall (weakly) as the environment
// worsens, starting from a healthy link and ending visibly degraded.
func TestFaultSweepDegradesMonotonically(t *testing.T) {
	sw, err := RunFaultSweep(sweepConfig(), fault.DefaultProfile(), nil)
	if err != nil {
		t.Fatal(err)
	}
	first, last := sw.Points[0], sw.Points[len(sw.Points)-1]
	if first.DeliveryRate < 0.99 {
		t.Fatalf("fault-free point delivers %.3f, want ≈1 (ARQ+FEC should carry 12 dB cleanly)", first.DeliveryRate)
	}
	for i := 1; i < len(sw.Points); i++ {
		prev, cur := sw.Points[i-1], sw.Points[i]
		if cur.DeliveryRate > prev.DeliveryRate {
			t.Errorf("delivery rate rose %.4f → %.4f between intensity %g and %g",
				prev.DeliveryRate, cur.DeliveryRate, prev.Intensity, cur.Intensity)
		}
	}
	if last.DeliveryRate >= first.DeliveryRate {
		t.Fatalf("sweep shows no degradation: %.4f → %.4f", first.DeliveryRate, last.DeliveryRate)
	}
	if last.Concealed == 0 {
		t.Fatal("harsh point concealed nothing despite ConcealHold")
	}
	if last.Recovered == 0 {
		t.Fatal("harsh point recovered nothing despite ARQ")
	}
	if last.FECCorrected == 0 {
		t.Fatal("harsh point corrected nothing despite FEC")
	}
}

// TestFaultSweepSeedSensitivity: different base seeds must change the
// sweep digest (it is not vacuous).
func TestFaultSweepSeedSensitivity(t *testing.T) {
	cfg := sweepConfig()
	a, err := RunFaultSweep(cfg, fault.DefaultProfile(), []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := RunFaultSweep(cfg, fault.DefaultProfile(), []float64{0.5, 1})
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest == b.Digest {
		t.Fatalf("sweep digest %d identical across seeds", a.Digest)
	}
}

// TestRecoveryImprovesDelivery: at a fixed mid intensity, ARQ + FEC +
// concealment must deliver strictly more frames than the bare pipeline —
// the whole point of the recovery stack.
func TestRecoveryImprovesDelivery(t *testing.T) {
	p := fault.DefaultProfile().Scale(0.5)

	bare := DefaultConfig()
	bare.Implants = 8
	bare.Ticks = 64
	bare.Channels = 16
	bare.Faults = &p
	aggBare, err := Run(bare)
	if err != nil {
		t.Fatal(err)
	}

	protected := bare
	protected.ARQ = comm.ARQConfig{MaxRetries: 3}
	protected.FECDepth = 4
	protected.Concealment = wearable.ConcealInterp
	aggProt, err := Run(protected)
	if err != nil {
		t.Fatal(err)
	}

	if aggProt.DeliveryRate() <= aggBare.DeliveryRate() {
		t.Fatalf("recovery stack did not help: protected %.4f <= bare %.4f",
			aggProt.DeliveryRate(), aggBare.DeliveryRate())
	}
	if aggProt.Recovered == 0 {
		t.Fatal("ARQ recovered nothing at 50% intensity")
	}
	if aggProt.Concealed == 0 {
		t.Fatal("concealment synthesized nothing at 50% intensity")
	}
	if aggBare.Retransmits != 0 || aggBare.FECCorrected != 0 {
		t.Fatalf("bare run shows recovery activity: %+v", aggBare)
	}
}

// TestSweepRejectsBadInput covers the sweep's validation paths.
func TestSweepRejectsBadInput(t *testing.T) {
	cfg := sweepConfig()
	if _, err := RunFaultSweep(cfg, fault.Profile{DeadFrac: 2}, nil); err == nil {
		t.Error("invalid profile accepted")
	}
	if _, err := RunFaultSweep(cfg, fault.DefaultProfile(), []float64{-1}); err == nil {
		t.Error("negative intensity accepted")
	}
}
