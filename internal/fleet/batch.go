package fleet

import (
	"fmt"
	mathbits "math/bits"
	"time"

	"mindful/internal/comm"
	"mindful/internal/neural"
	"mindful/internal/obs"
)

// Batched execution: instead of stepping each implant's pipeline to
// completion one at a time, a worker partitions its shard into groups of
// Config.Batch implants and steps the whole group tick-by-tick, one
// stage column at a time — all sources, then all transports, then all
// receivers. The columns run over contiguous structure-of-arrays slabs
// (one sample row per implant, one symbol segment per implant) shared
// through a per-worker arena, which is where the throughput comes from:
// the slab kernels in neural, dsp and comm amortize per-call dispatch
// and keep their inner loops free of allocation and interface hops.
//
// Bit-identity with the scalar path is by construction, not by luck:
// every random draw in the simulation comes from a per-(implant, purpose)
// SplitMix64-derived stream, so interleaving implants at tick granularity
// cannot reorder any single implant's draws — each stream advances
// exactly when that implant's stage would have advanced it in the scalar
// schedule. Stages with cross-tick feedback that has no batched kernel
// (decode, adapt) and transports the packed modem cannot express (ARQ,
// FEC, OOK/BPSK/QAM64) run through scalarBatch, the compatibility column
// that steps the ordinary per-implant stages — so every configuration
// batches, and the determinism wall pins batched == scalar digests for
// all of them.

// batchArena is the per-worker scratch shared by every group the worker
// steps: one sample slab (implants × channels) and one symbol slab
// (implants × symbols-per-frame). Groups run sequentially on their
// worker, so sharing is safe and steady-state ticks allocate nothing.
type batchArena struct {
	samples []float64
	syms    []comm.Symbol
	noise   []float64
}

// batchedSource steps the source column: per-implant drift, intent and
// brownout phases (each on its own derived stream), one NextSlab fill
// over the group's sample slab, then per-implant electrode faults,
// ADC quantization and frame encoding through the allocation-free fast
// kernels. The phase split preserves each implant's draw order because
// no phase shares a stream across implants.
type batchedSource struct {
	channels int
	srcs     []*sourceStage
	gens     []*neural.Generator
	slab     []float64
}

func (b *batchedSource) Name() string { return "source" }

func (b *batchedSource) BatchStep(tks []*Tick) error {
	for i, s := range b.srcs {
		tk := tks[i]
		if err := s.drift.Tick(s.gen); err != nil {
			tk.Res.Err = err
			return err
		}
		s.gen.SetIntent(intentAt(s.phase, tk.N))
		tk.Blanked = s.brown.Tick()
		b.gens[i] = s.gen
	}
	if err := neural.NextSlab(b.gens, b.slab, b.channels); err != nil {
		tks[0].Res.Err = err
		return err
	}
	for i, s := range b.srcs {
		tk := tks[i]
		row := b.slab[i*b.channels : (i+1)*b.channels]
		s.elec.Apply(row) // nil-safe: no-op without electrode faults
		s.codeBuf = s.adc.AppendQuantizeFast(s.codeBuf[:0], row)
		frame, err := s.pkt.AppendEncodeFast((*s.framePtr)[:0], s.codeBuf)
		if err != nil {
			tk.Res.Err = err
			return err
		}
		*s.framePtr = frame
		tk.Frame = frame
		if tk.Blanked {
			tk.Res.Blanked++
		} else {
			tk.Res.Frames++
		}
	}
	return nil
}

// batchedTransport steps the uplink column through the packed byte
// modem: modulate every implant's frame into one symbol slab, run each
// implant's AWGN channel over its segment (the only phase that draws
// randomness, per-implant streams), then demodulate straight back to
// bytes and count bit errors by XOR+popcount. It exists only for
// configurations the packed modem proves equivalent for — square QAM
// with 8 % bits == 0, no FEC, no ARQ — where a frame maps to a whole
// number of symbols with no pad bits, so the popcount equals the scalar
// path's per-bit comparison exactly. The burst link is per-implant
// state on its own stream and composes unchanged.
type batchedTransport struct {
	pm    *comm.PackedModem
	ts    []*transportStage
	arena *batchArena
}

func (b *batchedTransport) Name() string { return "transport" }

func (b *batchedTransport) BatchStep(tks []*Tick) error {
	k := b.pm.BitsPerSymbol()
	spf := 0
	for _, tk := range tks {
		if !tk.Blanked {
			spf = len(tk.Frame) * 8 / k
			break
		}
	}
	if spf == 0 {
		return nil // the whole group is browned out this tick
	}
	if need := len(tks) * spf; cap(b.arena.syms) < need {
		b.arena.syms = make([]comm.Symbol, 0, need)
	}
	syms := b.arena.syms[:0]
	for _, tk := range tks {
		if tk.Blanked {
			continue
		}
		if len(tk.Frame)*8/k != spf {
			err := fmt.Errorf("fleet: batched frame length diverged: %d vs %d symbols", len(tk.Frame)*8/k, spf)
			tk.Res.Err = err
			return err
		}
		syms = b.pm.AppendModulateBytes(syms, tk.Frame)
	}
	b.arena.syms = syms
	off := 0
	for i, tk := range tks {
		if tk.Blanked {
			continue
		}
		b.arena.noise = b.ts[i].channel.TransmitSlabFast(syms[off:off+spf], b.arena.noise)
		off += spf
	}
	off = 0
	for i, tk := range tks {
		if tk.Blanked {
			continue
		}
		t := b.ts[i]
		frame := tk.Frame
		rxFrame := b.pm.AppendDemodulateBytes((*t.rxFramePtr)[:0], syms[off:off+spf])
		off += spf
		*t.rxFramePtr = rxFrame
		for j := range frame {
			tk.Res.BitErrors += int64(mathbits.OnesCount8(frame[j] ^ rxFrame[j]))
		}
		tk.Res.BitsSent += int64(len(frame) * 8)
		if t.link != nil {
			out := t.link.AppendTransport((*t.linkPtr)[:0], rxFrame)
			if out == nil {
				tk.Res.LinkDropped++
				continue
			}
			*t.linkPtr = out
			rxFrame = out
		}
		tk.Delivered = rxFrame
	}
	return nil
}

// batchedReceiver steps the wearable column through the scratch-decode
// path: same validation, counters, concealment and digest as the scalar
// receiver stage, with frame samples decoded into a per-implant scratch
// slice instead of a fresh allocation.
type batchedReceiver struct {
	rs []*receiverStage
}

func (b *batchedReceiver) Name() string { return "receiver" }

func (b *batchedReceiver) BatchStep(tks []*Tick) error {
	for i, r := range b.rs {
		if err := r.stepScratch(tks[i]); err != nil {
			tks[i].Res.Err = err
			return err
		}
	}
	return nil
}

// scalarBatch adapts one column of per-implant scalar stages to the
// batched runner — the compatibility fallback that keeps every
// configuration batchable: decode and adapt always run here, and the
// transport column does when ARQ, FEC or a non-packable modulation is
// configured. Stepping the scalar stages in group order is trivially
// draw-order preserving (each call is exactly the scalar schedule's
// call, on streams no other implant touches).
type scalarBatch struct {
	name   string
	stages []Stage
}

func scalarColumn(ps []*Pipeline, j int) *scalarBatch {
	b := &scalarBatch{name: ps[0].stages[j].Name(), stages: make([]Stage, len(ps))}
	for i, p := range ps {
		b.stages[i] = p.stages[j]
	}
	return b
}

func (b *scalarBatch) Name() string { return b.name }

func (b *scalarBatch) BatchStep(tks []*Tick) error {
	for i, s := range b.stages {
		if err := s.Step(tks[i]); err != nil {
			tks[i].Res.Err = err
			return err
		}
	}
	return nil
}

// timedExec decorates a batch column with wall-time attribution:
// ObserveBatch spreads the column's elapsed time over the implants it
// stepped, so Count keeps its frames meaning and MeanNs stays ns/frame,
// comparable with the scalar per-step timings. Digest-neutral, like the
// scalar timedStage.
type timedExec struct {
	inner BatchStage
	clock *obs.StageClock
}

func (t *timedExec) Name() string { return t.inner.Name() }

func (t *timedExec) BatchStep(tks []*Tick) error {
	start := time.Now()
	err := t.inner.BatchStep(tks)
	t.clock.ObserveBatch(time.Since(start).Nanoseconds(), len(tks))
	return err
}

// batchGroup is one group of pipelines stepped in tick lockstep through
// the stage columns.
type batchGroup struct {
	ps   []*Pipeline
	tks  []*Tick
	cols []BatchStage
}

// newBatchGroup assembles the column executors for a group of pipelines
// built under the same config. The pipelines must have been built with
// StageTiming stripped (the columns are timed as units here, against the
// original config's timer).
func newBatchGroup(cfg Config, ps []*Pipeline, arena *batchArena) *batchGroup {
	n := len(ps)
	g := &batchGroup{ps: ps, tks: make([]*Tick, n)}

	bs := &batchedSource{
		channels: cfg.Channels,
		srcs:     make([]*sourceStage, n),
		gens:     make([]*neural.Generator, n),
	}
	for i, p := range ps {
		bs.srcs[i] = p.src
	}
	if need := n * cfg.Channels; cap(arena.samples) < need {
		arena.samples = make([]float64, need)
	}
	bs.slab = arena.samples[:n*cfg.Channels]
	g.cols = append(g.cols, bs)

	if pm, ok := comm.NewPackedModem(cfg.Modulation); ok && cfg.FECDepth == 0 && !cfg.ARQ.Enabled() {
		bt := &batchedTransport{pm: pm, ts: make([]*transportStage, n), arena: arena}
		for i, p := range ps {
			bt.ts[i] = p.trans
		}
		g.cols = append(g.cols, bt)
	} else {
		g.cols = append(g.cols, scalarColumn(ps, 1))
	}

	br := &batchedReceiver{rs: make([]*receiverStage, n)}
	for i, p := range ps {
		br.rs[i] = p.recv
	}
	g.cols = append(g.cols, br)

	for j := 3; j < len(ps[0].stages); j++ {
		g.cols = append(g.cols, scalarColumn(ps, j))
	}

	if cfg.StageTiming != nil {
		for i, c := range g.cols {
			g.cols[i] = &timedExec{inner: c, clock: cfg.StageTiming.Clock(c.Name())}
		}
	}
	return g
}

// beginTick rebuilds every pipeline's Tick record in place (decode
// stages hold a pointer to it), exactly as the scalar Step does.
func (g *batchGroup) beginTick() {
	for i, p := range g.ps {
		p.tk = Tick{N: p.tick, Res: &p.res}
		p.tick++
		g.tks[i] = &p.tk
	}
}

// step advances every pipeline in the group one tick, column by column.
func (g *batchGroup) step() error {
	g.beginTick()
	for _, c := range g.cols {
		if err := c.BatchStep(g.tks); err != nil {
			return err
		}
	}
	return nil
}

// runBatchShard is the batched counterpart of the runImplant loop: the
// worker's implants, in shard order, partitioned into groups of
// cfg.Batch and stepped in lockstep. Results land in the same disjoint
// slots, so aggregation is identical to the scalar path.
func runBatchShard(cfg Config, w, workers int, results []ImplantResult) {
	buildCfg := cfg
	buildCfg.StageTiming = nil // columns are timed whole by timedExec
	var idxs []int
	for i := w; i < cfg.Implants; i += workers {
		idxs = append(idxs, i)
	}
	arena := &batchArena{}
	for start := 0; start < len(idxs); start += cfg.Batch {
		end := start + cfg.Batch
		if end > len(idxs) {
			end = len(idxs)
		}
		ps := make([]*Pipeline, 0, end-start)
		for _, idx := range idxs[start:end] {
			p, err := NewPipeline(buildCfg, idx, w)
			if err != nil {
				results[idx] = ImplantResult{Index: idx, Worker: w, Digest: fnvOffset, Err: err}
				continue
			}
			ps = append(ps, p)
		}
		if len(ps) == 0 {
			continue
		}
		g := newBatchGroup(cfg, ps, arena)
		for t := 0; t < cfg.Ticks; t++ {
			if err := g.step(); err != nil {
				carried := false
				for _, p := range ps {
					if p.res.Err != nil {
						carried = true
						break
					}
				}
				if !carried {
					ps[0].res.Err = err
				}
				break
			}
		}
		for _, p := range ps {
			res := p.Result()
			if res.Err == nil {
				flushObserver(cfg, res, w)
			}
			results[res.Index] = res
			p.Close()
		}
	}
}
