package fleet

// Drift sweeps: run the same fleet at increasing nonstationarity
// intensity, twice per point — once with the calibration-day decoder
// frozen, once with closed-loop recalibration — and report the decode
// error of each arm. The frozen arm's error grows with intensity (the
// substrate walks away from the fitted model); the adaptive arm's stays
// bounded (the recalibrator tracks it). All points share the base seed
// (common random numbers), both arms share each point's frame stream
// byte for byte, and every run inherits Run's worker-count invariance,
// so the sweep digest is bit-identical for any Workers value.

import (
	"errors"
	"fmt"
	"math"

	"mindful/internal/drift"
)

// DriftPoint is one intensity sample of a drift sweep.
type DriftPoint struct {
	// Intensity is the Profile.Scale factor of this point.
	Intensity float64

	// FrozenRMSE and AdaptiveRMSE are the per-dimension decode RMSE
	// against the true intent for the frozen and recalibrating arms.
	FrozenRMSE   float64
	AdaptiveRMSE float64

	// FrozenKL and AdaptiveKL are the worst final instability (KL
	// divergence) readings across the fleet, per arm.
	FrozenKL   float64
	AdaptiveKL float64

	// Refits is the adaptive arm's total recalibration count.
	Refits int64

	// Drift-process accounting, summed over the fleet (identical in
	// both arms — the process never sees the decoder).
	DriftEpochs    int64
	DriftTurnovers int64
	DriftUnitsLost int64

	// FrameDigest is the shared frame-path digest of both arms;
	// FrozenDecodeDigest and AdaptiveDecodeDigest the per-arm decode
	// digests.
	FrameDigest          uint64
	FrozenDecodeDigest   uint64
	AdaptiveDecodeDigest uint64
}

// DriftSweep is a full frozen-versus-adaptive degradation curve.
type DriftSweep struct {
	// Profile is the unit-intensity nonstationarity the points scale.
	Profile drift.Profile
	// Points holds one sample per intensity, in input order.
	Points []DriftPoint
	// Digest chains every point's intensity, digests and counters —
	// equal digests mean the whole sweep was bit-identical.
	Digest uint64
}

// DefaultSweepProfile returns the stock sweep nonstationarity: tuning
// rotation and unit turnover dominate, with mild gain/baseline wander
// and rare outright unit loss, over epochs shorter than a session but
// longer than the recalibration buffer. Rotation and turnover scramble
// the frozen decoder's fitted tuning map yet leave the units firing, so
// the adaptive arm has signal to re-learn from — the regime where
// closed-loop recalibration demonstrably pays (heavy unit *loss*, by
// contrast, starves both arms equally).
func DefaultSweepProfile() drift.Profile {
	return drift.Profile{
		RotationSigma: 0.4,
		GainSigma:     0.1,
		BaselineSigma: 0.1,
		TurnoverProb:  0.06,
		LossProb:      0.005,
		EpochTicks:    1000,
	}
}

// RunDriftSweep executes two fleet runs per intensity — frozen and
// adaptive — scaling the base drift profile. The config's own Drift
// field is ignored. The decode config is forced onto the calibration
// path (Calibrate, Track) so both arms start from the same day-0 fit of
// the implant's own cortex; a disabled decoder defaults to the Kalman
// filter. The adaptive arm additionally sets Adapt.
func RunDriftSweep(cfg Config, base drift.Profile, intensities []float64) (*DriftSweep, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if len(intensities) == 0 {
		intensities = DefaultIntensities()
	}
	if !cfg.Decode.Enabled() {
		cfg.Decode.Kind = DecoderKalman
	}
	if cfg.Decode.Kind == DecoderDNN {
		return nil, errors.New("fleet: drift sweep needs a linear decoder")
	}
	cfg.Decode.Calibrate = true
	cfg.Decode.Track = true

	sw := &DriftSweep{Profile: base, Digest: fnvOffset}
	for _, intensity := range intensities {
		if intensity < 0 || math.IsNaN(intensity) {
			return nil, fmt.Errorf("fleet: invalid sweep intensity %g", intensity)
		}
		scaled := base.Scale(intensity)

		frozenCfg := cfg
		frozenCfg.Drift = &scaled
		frozenCfg.Decode.Adapt = false
		frozen, err := Run(frozenCfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: drift sweep intensity %g (frozen): %w", intensity, err)
		}

		adaptCfg := cfg
		adaptCfg.Drift = &scaled
		adaptCfg.Decode.Adapt = true
		adaptive, err := Run(adaptCfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: drift sweep intensity %g (adaptive): %w", intensity, err)
		}

		// The decode path never feeds back into the frame path, so the
		// two arms must radiate identical bytes; a mismatch means the
		// isolation invariant broke.
		if frozen.Digest != adaptive.Digest {
			return nil, fmt.Errorf("fleet: drift sweep intensity %g: arms diverged on the frame path (%#x vs %#x)",
				intensity, frozen.Digest, adaptive.Digest)
		}

		pt := DriftPoint{
			Intensity:            intensity,
			FrozenRMSE:           frozen.DecodeRMSE(),
			AdaptiveRMSE:         adaptive.DecodeRMSE(),
			FrozenKL:             frozen.MaxLastKL,
			AdaptiveKL:           adaptive.MaxLastKL,
			Refits:               adaptive.Refits,
			DriftEpochs:          frozen.DriftEpochs,
			DriftTurnovers:       frozen.DriftTurnovers,
			DriftUnitsLost:       frozen.DriftUnitsLost,
			FrameDigest:          frozen.Digest,
			FrozenDecodeDigest:   frozen.DecodeDigest,
			AdaptiveDecodeDigest: adaptive.DecodeDigest,
		}
		sw.Points = append(sw.Points, pt)
		sw.Digest = fnvMix(sw.Digest, math.Float64bits(intensity))
		sw.Digest = fnvMix(sw.Digest, pt.FrameDigest)
		sw.Digest = fnvMix(sw.Digest, pt.FrozenDecodeDigest)
		sw.Digest = fnvMix(sw.Digest, pt.AdaptiveDecodeDigest)
		sw.Digest = fnvMix(sw.Digest, math.Float64bits(pt.FrozenRMSE))
		sw.Digest = fnvMix(sw.Digest, math.Float64bits(pt.AdaptiveRMSE))
		for _, v := range []int64{
			pt.Refits, pt.DriftEpochs, pt.DriftTurnovers, pt.DriftUnitsLost,
		} {
			sw.Digest = fnvMix(sw.Digest, uint64(v))
		}
	}
	if len(sw.Points) == 0 {
		return nil, errors.New("fleet: empty drift sweep")
	}
	return sw, nil
}
