package fleet

import (
	"encoding/json"
	"fmt"
	"io"

	"mindful/internal/obs"
)

// StageProfile is the flight recorder's answer to "where does the tick
// go": a fleet run's per-stage ns/frame breakdown, the raw material the
// ROADMAP's batched-stage-execution item needs to make regressions
// attributable. Serialized as BENCH_stage.json by `mindful profile`.
type StageProfile struct {
	Implants  int    `json:"implants"`
	Workers   int    `json:"workers"`
	Ticks     int    `json:"ticks"`
	Batch     int    `json:"batch"`
	Digest    string `json:"digest"`
	ElapsedNs int64  `json:"elapsed_ns"`
	// Stages is sorted by stage name; Count is Steps (implants×ticks for
	// a full run), MeanNs the attributed ns/frame.
	Stages []obs.StageStats `json:"stages"`
}

// RunProfile runs the fleet with stage timing enabled and returns the
// per-stage breakdown alongside the aggregate. The timing decorator is
// digest-neutral, so the aggregate is byte-identical to an untimed
// Run of the same config.
func RunProfile(cfg Config) (*StageProfile, *Aggregate, error) {
	timer := obs.NewStageTimer()
	cfg.StageTiming = timer
	agg, err := Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	prof := &StageProfile{
		Implants:  agg.Implants,
		Workers:   agg.Workers,
		Ticks:     agg.Ticks,
		Batch:     cfg.Batch,
		Digest:    fmt.Sprintf("%016x", agg.Digest),
		ElapsedNs: agg.Elapsed.Nanoseconds(),
		Stages:    timer.Stats(),
	}
	return prof, agg, nil
}

// WriteJSON writes the profile as indented JSON (the BENCH_stage.json
// format).
func (p *StageProfile) WriteJSON(w io.Writer) error {
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(out, '\n'))
	return err
}
