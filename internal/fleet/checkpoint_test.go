package fleet

import (
	"sync"
	"testing"
	"time"

	"mindful/internal/comm"
	"mindful/internal/fault"
	"mindful/internal/wearable"
)

// checkpointConfigs returns the scenarios the checkpoint wall runs:
// the clean path and the full recovery stack (faults + ARQ + FEC +
// concealment), which exercises every serializable component state.
func checkpointConfigs() map[string]Config {
	clean := DefaultConfig()
	clean.Implants = 4
	clean.Ticks = 32
	clean.Channels = 16

	full := DefaultConfig()
	full.Implants = 4
	full.Ticks = 32
	full.Channels = 16
	full.EbN0dB = 8 // noisy enough to exercise retries and concealment
	prof := fault.DefaultProfile()
	full.Faults = &prof
	full.ARQ = comm.ARQConfig{MaxRetries: 2, SlotTime: time.Millisecond, LatencyBudget: 8 * time.Millisecond}
	full.FECDepth = 4
	full.Concealment = wearable.ConcealInterp

	return map[string]Config{"clean": clean, "full-stack": full}
}

// stepN steps the pipeline n times, failing the test on error.
func stepN(t *testing.T, p *Pipeline, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := p.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestPipelineMatchesRunImplant: a pipeline stepped Ticks times must
// reproduce runImplant's result exactly — the extraction invariant.
func TestPipelineMatchesRunImplant(t *testing.T) {
	for name, cfg := range checkpointConfigs() {
		t.Run(name, func(t *testing.T) {
			for idx := 0; idx < cfg.Implants; idx++ {
				want := runImplant(cfg, idx, 0)
				if want.Err != nil {
					t.Fatal(want.Err)
				}
				p, err := NewPipeline(cfg, idx, 0)
				if err != nil {
					t.Fatal(err)
				}
				stepN(t, p, cfg.Ticks)
				if got := p.Result(); got != want {
					t.Fatalf("implant %d: pipeline result %+v\nwant %+v", idx, got, want)
				}
				p.Close()
			}
		})
	}
}

// TestCheckpointResumeBitIdentical: run K ticks, snapshot, restore, run
// K more — every counter and the digest must equal the uninterrupted 2K
// run. This is the serve gateway's snapshot/restore guarantee.
func TestCheckpointResumeBitIdentical(t *testing.T) {
	const k = 16
	for name, cfg := range checkpointConfigs() {
		cfg := cfg
		t.Run(name, func(t *testing.T) {
			for idx := 0; idx < cfg.Implants; idx++ {
				ref, err := NewPipeline(cfg, idx, 0)
				if err != nil {
					t.Fatal(err)
				}
				stepN(t, ref, 2*k)
				want := ref.Result()
				ref.Close()

				first, err := NewPipeline(cfg, idx, 0)
				if err != nil {
					t.Fatal(err)
				}
				stepN(t, first, k)
				st, err := first.Snapshot()
				if err != nil {
					t.Fatal(err)
				}
				// The snapshotted pipeline keeps running: a snapshot must
				// not disturb the original.
				stepN(t, first, k)
				if got := first.Result(); got != want {
					t.Fatalf("implant %d: snapshot disturbed the running pipeline: %+v want %+v", idx, got, want)
				}
				first.Close()

				resumed, err := RestorePipeline(cfg, st)
				if err != nil {
					t.Fatal(err)
				}
				if resumed.Tick() != k {
					t.Fatalf("restored tick %d, want %d", resumed.Tick(), k)
				}
				stepN(t, resumed, k)
				if got := resumed.Result(); got != want {
					t.Fatalf("implant %d: resumed result %+v\nwant %+v", idx, got, want)
				}
				resumed.Close()
			}
		})
	}
}

// TestCheckpointResumeWorkerInvariance: a sharded fleet where every
// implant is snapshotted and restored mid-run must reproduce the
// uninterrupted aggregate digest for any worker count — checkpointing
// composes with the fleet's scheduling-independence guarantee. Runs
// under -race via the race target.
func TestCheckpointResumeWorkerInvariance(t *testing.T) {
	cfg := checkpointConfigs()["full-stack"]
	const k = 16
	ref, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 4} {
		digests := make([]uint64, cfg.Implants)
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < cfg.Implants; i += workers {
					p, err := NewPipeline(cfg, i, w)
					if err != nil {
						errs[w] = err
						return
					}
					for t := 0; t < k; t++ {
						if err := p.Step(); err != nil {
							errs[w] = err
							return
						}
					}
					st, err := p.Snapshot()
					p.Close()
					if err != nil {
						errs[w] = err
						return
					}
					r, err := RestorePipeline(cfg, st)
					if err != nil {
						errs[w] = err
						return
					}
					for t := k; t < cfg.Ticks; t++ {
						if err := r.Step(); err != nil {
							errs[w] = err
							return
						}
					}
					digests[i] = r.Result().Digest
					r.Close()
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				t.Fatal(err)
			}
		}
		digest := uint64(fnvOffset)
		for _, d := range digests {
			for shift := 56; shift >= 0; shift -= 8 {
				digest = (digest ^ (d >> shift & 0xFF)) * fnvPrime
			}
		}
		if digest != ref.Digest {
			t.Fatalf("workers=%d: checkpointed fleet digest %d, want %d", workers, digest, ref.Digest)
		}
	}
}

// TestRestoreRejectsMismatchedConfig: a snapshot must not silently
// restore under a config with a different shape or seed.
func TestRestoreRejectsMismatchedConfig(t *testing.T) {
	cfg := checkpointConfigs()["full-stack"]
	p, err := NewPipeline(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, p, 8)
	st, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	p.Close()

	bad := cfg
	bad.Seed = cfg.Seed + 1
	if _, err := RestorePipeline(bad, st); err == nil {
		t.Fatal("restore under a different seed succeeded")
	}
	noFaults := cfg
	noFaults.Faults = nil
	if _, err := RestorePipeline(noFaults, st); err == nil {
		t.Fatal("restore without the fault profile succeeded")
	}
	noARQ := cfg
	noARQ.ARQ = comm.ARQConfig{}
	if _, err := RestorePipeline(noARQ, st); err == nil {
		t.Fatal("restore without ARQ succeeded")
	}
}
