package fleet

import (
	"errors"
	"fmt"
	"math"
	mathbits "math/bits"

	"mindful/internal/comm"
	"mindful/internal/drift"
	"mindful/internal/fault"
	"mindful/internal/neural"
	"mindful/internal/wearable"
)

// Tick is the dataflow record one pipeline tick threads through the
// stage graph. Each stage reads the fields upstream stages produced and
// writes its own; the record is reset at the top of every tick and the
// slices inside it are stage-owned pooled buffers, recycled on the next
// tick — sinks must copy what they keep.
type Tick struct {
	// N is the tick number (0-based).
	N int
	// Res is the pipeline's running counters; stages account into it.
	Res *ImplantResult
	// Blanked reports a transmitter brownout: the frame was built (the
	// sequence counter advanced) but the radio is dark.
	Blanked bool
	// Frame is the encoded frame the source stage produced this tick.
	Frame []byte
	// Delivered is the byte stream that arrived at the wearable (possibly
	// corrupt), or nil when the link swallowed the frame whole.
	Delivered []byte
	// RxFrame and RxOK are the receiver stage's outcome: the decoded
	// frame when the wearable accepted it in order.
	RxFrame comm.Frame
	RxOK    bool
}

// Stage is one segment of an implant pipeline's dataflow. Stages are
// stepped in graph order once per tick, sharing a Tick record; each owns
// its components, its slice of the serializable PipelineState, and its
// pooled buffers. The builder in NewPipeline assembles the default graph
// — source → transport → receiver → (decode) — preserving the exact
// random draw order of the original hardwired pipeline, which is what
// keeps the determinism digests byte-identical across the refactor.
type Stage interface {
	// Name identifies the stage in the pipeline's stage listing.
	Name() string
	// Step advances the stage one tick, reading and writing the shared
	// Tick record.
	Step(tk *Tick) error
	// Snapshot writes the stage's serializable state into st.
	Snapshot(st *PipelineState)
	// Restore overwrites the stage's state from a snapshot taken under
	// the same config, validating shape and seed lineage.
	Restore(cfg Config, st *PipelineState) error
	// Close returns the stage's pooled buffers; the stage must not be
	// stepped afterwards.
	Close()
}

// BatchStage is the batched-execution capability of the stage layer: one
// invocation steps a whole group of implants' Tick records, letting the
// implementation run slab kernels across the batch. The scalar Step
// remains the compatibility path — any stage without a batched executor
// runs through scalarBatch, which steps the per-implant stages in group
// order. Per-implant digests are bit-identical either way because every
// random draw comes from a per-(implant, purpose) stream that only that
// implant's stages advance.
type BatchStage interface {
	// Name identifies the column, matching the scalar stage's name so
	// timing attribution lines up across execution modes.
	Name() string
	// BatchStep advances every tick in the batch through this column.
	BatchStep(tks []*Tick) error
}

// sourceStage is the implant side: synthetic cortex → electrode faults →
// ADC → frame encoder, with the brownout process gating the radio.
type sourceStage struct {
	phase float64
	gen   *neural.Generator
	adc   neural.ADC
	pkt   *comm.Packetizer
	elec  *fault.ElectrodeBank
	brown *fault.Brownout
	drift *drift.Process

	framePtr  *[]byte
	sampleBuf []float64
	codeBuf   []uint16
}

func (s *sourceStage) Name() string { return "source" }

func (s *sourceStage) Step(tk *Tick) error {
	// Drift mutates the cortex before anything observes it this tick;
	// nil-safe, and tick 0 applies nothing (day 0 is pristine).
	if err := s.drift.Tick(s.gen); err != nil {
		return err
	}
	s.gen.SetIntent(intentAt(s.phase, tk.N))
	tk.Blanked = s.brown.Tick()
	s.sampleBuf = s.gen.NextInto(s.sampleBuf)
	s.elec.Apply(s.sampleBuf) // nil-safe: no-op without electrode faults
	s.codeBuf = s.adc.AppendQuantize(s.codeBuf[:0], s.sampleBuf)
	frame, err := s.pkt.AppendEncode((*s.framePtr)[:0], s.codeBuf)
	if err != nil {
		return err
	}
	*s.framePtr = frame
	tk.Frame = frame
	if tk.Blanked {
		// Brownout: the wearable will see a sequence gap and conceal it
		// if configured.
		tk.Res.Blanked++
		return nil
	}
	tk.Res.Frames++
	return nil
}

func (s *sourceStage) Snapshot(st *PipelineState) {
	st.Gen = s.gen.Snapshot()
	st.PktSeq = s.pkt.Seq()
	if s.brown != nil {
		bs := s.brown.Snapshot()
		st.Brown = &bs
	}
	if s.elec != nil {
		st.ElecGains = s.elec.Gains()
	}
	if s.drift != nil {
		ds := s.drift.Snapshot()
		st.Drift = &ds
	}
}

func (s *sourceStage) Restore(cfg Config, st *PipelineState) error {
	gen, err := neural.RestoreGenerator(neuralConfig(cfg, st.Counters.Index), st.Gen)
	if err != nil {
		return err
	}
	s.gen = gen
	s.pkt.SetSeq(st.PktSeq)
	if (s.brown != nil) != (st.Brown != nil) {
		return errors.New("fleet: brownout state does not match config")
	}
	if s.brown != nil {
		if s.brown, err = fault.RestoreBrownout(*cfg.Faults, *st.Brown); err != nil {
			return err
		}
	}
	if s.elec != nil || len(st.ElecGains) > 0 {
		if s.elec == nil {
			return errors.New("fleet: electrode gains do not match config")
		}
		if err := s.elec.RestoreGains(st.ElecGains); err != nil {
			return err
		}
	}
	if (s.drift != nil) != (st.Drift != nil) {
		return errors.New("fleet: drift state does not match config")
	}
	if s.drift != nil {
		// Restore after the generator so the drifted unit state lands on
		// the restored cortex.
		if s.drift, err = drift.RestoreProcess(*cfg.Drift, s.gen, *st.Drift); err != nil {
			return err
		}
	}
	return nil
}

func (s *sourceStage) Close() {
	comm.PutByteBuf(s.framePtr)
}

// transportStage is the uplink: frame bits → (FEC) → symbols → AWGN →
// demodulation → (FEC decode) → bytes → (burst link), with the ARQ loop
// retrying failed frames inside the tick.
type transportStage struct {
	modem   comm.Modem
	channel *comm.AWGNChannel
	fec     *comm.FEC
	arq     *comm.ARQ
	link    *fault.BurstLink
	k       int // bits per symbol

	bitPtr, rxBitPtr *[]byte
	symPtr           *[]comm.Symbol
	codedPtr, decPtr *[]byte
	linkPtr          *[]byte
	rxFramePtr       *[]byte
	finalBuf         []byte
}

func (t *transportStage) Name() string { return "transport" }

// attempt runs one full transmission of the tick's frame. It returns
// the bytes that arrived at the wearable, or nil when the burst link
// swallowed the frame whole. With every fault and coding stage disabled
// it performs exactly the draws, in exactly the order, of the original
// fault-free pipeline — the clean-path byte-identity invariant the
// determinism wall pins.
func (t *transportStage) attempt(tk *Tick) ([]byte, error) {
	frame := tk.Frame
	raw := comm.AppendBytesAsBits((*t.bitPtr)[:0], frame)
	*t.bitPtr = raw
	tx := raw
	codedLen := len(raw)
	if t.fec != nil {
		coded := t.fec.AppendEncode((*t.codedPtr)[:0], raw)
		tx = coded
		codedLen = len(coded)
	}
	// Pad to a symbol boundary; the pad is dropped after demodulation.
	for len(tx)%t.k != 0 {
		tx = append(tx, 0)
	}
	if t.fec != nil {
		*t.codedPtr = tx
	} else {
		*t.bitPtr = tx
	}
	syms, merr := t.modem.AppendModulate((*t.symPtr)[:0], tx)
	if merr != nil {
		return nil, merr
	}
	*t.symPtr = syms
	t.channel.TransmitInPlace(syms)
	rxBits := t.modem.AppendDemodulate((*t.rxBitPtr)[:0], syms)
	*t.rxBitPtr = rxBits
	for i := range tx {
		if tx[i] != rxBits[i] {
			tk.Res.BitErrors++
		}
	}
	tk.Res.BitsSent += int64(len(tx))

	data := rxBits[:codedLen]
	if t.fec != nil {
		dec, fixed, derr := t.fec.AppendDecode((*t.decPtr)[:0], data)
		if derr != nil {
			return nil, derr
		}
		*t.decPtr = dec
		tk.Res.FECCorrected += int64(fixed)
		data = dec
	}
	rxFrame := comm.AppendBitsAsBytes((*t.rxFramePtr)[:0], data[:len(frame)*8])
	*t.rxFramePtr = rxFrame
	if t.link != nil {
		out := t.link.AppendTransport((*t.linkPtr)[:0], rxFrame)
		if out == nil {
			tk.Res.LinkDropped++
			return nil, nil
		}
		*t.linkPtr = out
		rxFrame = out
	}
	return rxFrame, nil
}

func (t *transportStage) Step(tk *Tick) error {
	if tk.Blanked {
		return nil
	}
	if t.arq == nil {
		got, err := t.attempt(tk)
		if err != nil {
			return err
		}
		tk.Delivered = got
		return nil
	}
	// ARQ: retry until the frame decodes cleanly or the budget runs out.
	// The wearable keeps the last bytes it heard, so an exhausted budget
	// still surfaces the corrupt frame (counted as such) rather than
	// silently vanishing.
	air := len(tk.Frame) * 8
	if t.fec != nil {
		air = t.fec.CodedBits(air)
	}
	if rem := air % t.k; rem != 0 {
		air += t.k - rem
	}
	haveFinal := false
	var attemptErr error
	t.arq.Send(tk.Frame, air, func([]byte) bool {
		got, aerr := t.attempt(tk)
		if aerr != nil {
			attemptErr = aerr
			return false
		}
		if got == nil {
			return false
		}
		t.finalBuf = append(t.finalBuf[:0], got...)
		haveFinal = true
		_, derr := comm.Decode(got)
		return derr == nil
	})
	if attemptErr != nil {
		return attemptErr
	}
	if haveFinal {
		tk.Delivered = t.finalBuf
	}
	return nil
}

func (t *transportStage) Snapshot(st *PipelineState) {
	st.Channel = t.channel.Snapshot()
	if t.arq != nil {
		st.ARQ = t.arq.Stats()
	}
	if t.fec != nil {
		st.FECCorrected = t.fec.Corrected()
	}
	if t.link != nil {
		ls := t.link.Snapshot()
		st.Link = &ls
	}
}

func (t *transportStage) Restore(cfg Config, st *PipelineState) error {
	if want := DeriveSeed(cfg.Seed, uint64(st.Counters.Index), StreamChannel); st.Channel.RNG.Seed != want {
		return fmt.Errorf("fleet: channel RNG seed %d does not derive from config seed %d", st.Channel.RNG.Seed, cfg.Seed)
	}
	t.channel = comm.RestoreAWGNChannel(math.Pow(10, cfg.EbN0dB/10), st.Channel)
	if t.arq == nil && st.ARQ != (comm.ARQStats{}) {
		return errors.New("fleet: checkpoint carries ARQ state but config disables ARQ")
	}
	if t.arq != nil {
		t.arq.RestoreStats(st.ARQ)
	}
	if t.fec == nil && st.FECCorrected != 0 {
		return errors.New("fleet: checkpoint carries FEC state but config disables FEC")
	}
	if t.fec != nil {
		t.fec.RestoreCorrected(st.FECCorrected)
	}
	if (t.link != nil) != (st.Link != nil) {
		return errors.New("fleet: burst-link state does not match config")
	}
	if t.link != nil {
		link, err := fault.RestoreBurstLink(*cfg.Faults, *st.Link)
		if err != nil {
			return err
		}
		t.link = link
	}
	return nil
}

func (t *transportStage) Close() {
	comm.PutByteBuf(t.rxFramePtr)
	comm.PutBitBuf(t.bitPtr)
	comm.PutBitBuf(t.rxBitPtr)
	comm.PutSymbolBuf(t.symPtr)
	if t.codedPtr != nil {
		comm.PutBitBuf(t.codedPtr)
		comm.PutBitBuf(t.decPtr)
	}
	if t.linkPtr != nil {
		comm.PutByteBuf(t.linkPtr)
	}
}

// receiverStage is the wearable side: frame validation, sequence
// tracking and gap concealment, plus the residual-error accounting and
// the determinism digest over every delivered byte.
type receiverStage struct {
	rx        *wearable.Receiver
	onDeliver func(tick int, data []byte, accepted bool)
	// scratch backs the batched path's allocation-free frame decode; the
	// decoded samples alias it until the implant's next tick.
	scratch []uint16
}

func (r *receiverStage) Name() string { return "receiver" }

func (r *receiverStage) Step(tk *Tick) error {
	if tk.Blanked || tk.Delivered == nil {
		return nil
	}
	got := tk.Delivered
	fr, rerr := r.rx.Receive(got) // CRC-rejected frames are counted as corrupt
	frame := tk.Frame
	tk.Res.DataBits += int64(len(frame) * 8)
	for i, b := range frame {
		if i < len(got) {
			tk.Res.DataBitErrors += int64(mathbits.OnesCount8(b ^ got[i]))
		} else {
			tk.Res.DataBitErrors += 8
		}
	}
	for _, b := range got {
		tk.Res.Digest = (tk.Res.Digest ^ uint64(b)) * fnvPrime
	}
	if rerr == nil {
		tk.RxFrame = fr
		tk.RxOK = true
	}
	if r.onDeliver != nil {
		r.onDeliver(tk.N, got, rerr == nil)
	}
	return nil
}

// stepScratch is Step for the batched path: identical accounting with
// the frame decoded into the stage-owned scratch slice. Bit-identical
// because ReceiveScratch mirrors Receive exactly and every consumer of
// the samples (record, remember, conceal, decode accumulate) copies or
// folds synchronously.
func (r *receiverStage) stepScratch(tk *Tick) error {
	if tk.Blanked || tk.Delivered == nil {
		return nil
	}
	got := tk.Delivered
	var fr comm.Frame
	var rerr error
	fr, r.scratch, rerr = r.rx.ReceiveScratch(got, r.scratch)
	frame := tk.Frame
	tk.Res.DataBits += int64(len(frame) * 8)
	for i, b := range frame {
		if i < len(got) {
			tk.Res.DataBitErrors += int64(mathbits.OnesCount8(b ^ got[i]))
		} else {
			tk.Res.DataBitErrors += 8
		}
	}
	for _, b := range got {
		tk.Res.Digest = (tk.Res.Digest ^ uint64(b)) * fnvPrime
	}
	if rerr == nil {
		tk.RxFrame = fr
		tk.RxOK = true
	}
	if r.onDeliver != nil {
		r.onDeliver(tk.N, got, rerr == nil)
	}
	return nil
}

func (r *receiverStage) Snapshot(st *PipelineState) {
	st.Rx = r.rx.Snapshot()
}

func (r *receiverStage) Restore(cfg Config, st *PipelineState) error {
	return r.rx.RestoreState(st.Rx)
}

func (r *receiverStage) Close() {}
