package fleet

// Fault sweeps: run the same fleet at increasing fault intensity and
// report the degradation curve — frame-delivery rate, concealed-sample
// fraction and residual (post-FEC) bit error rate versus intensity. All
// points share the base seed (common random numbers), so the curve
// isolates the intensity effect, and every point inherits Run's
// worker-count invariance: the sweep digest is bit-identical for any
// Workers value.

import (
	"errors"
	"fmt"
	"math"

	"mindful/internal/fault"
)

// SweepPoint is one intensity sample of a degradation sweep.
type SweepPoint struct {
	// Intensity is the Profile.Scale factor of this point.
	Intensity float64

	// DeliveryRate is accepted frames over frames framed (the headline
	// degradation figure); ConcealedFraction the share of decoder-visible
	// frames that were synthesized; EffectiveBER the residual payload bit
	// error rate after FEC; FER the receiver's frame error rate.
	DeliveryRate      float64
	ConcealedFraction float64
	EffectiveBER      float64
	FER               float64

	// Raw counters, summed over the fleet.
	Accepted     int64
	Corrupt      int64
	LostSeq      int64
	Blanked      int64
	LinkDropped  int64
	Retransmits  int64
	Recovered    int64
	FECCorrected int64
	Concealed    int64

	// Digest is the underlying fleet run's aggregate digest.
	Digest uint64
}

// Sweep is a full degradation curve.
type Sweep struct {
	// Profile is the unit-intensity environment the points scale.
	Profile fault.Profile
	// Points holds one sample per intensity, in input order.
	Points []SweepPoint
	// Digest chains every point's intensity, run digest and counters —
	// equal digests mean the whole sweep was bit-identical.
	Digest uint64
}

// DefaultIntensities returns the standard sweep grid from fault-free to
// the full profile.
func DefaultIntensities() []float64 { return []float64{0, 0.25, 0.5, 0.75, 1} }

// fnvMix folds one 64-bit value into an FNV-1a digest, big-endian.
func fnvMix(d, v uint64) uint64 {
	for shift := 56; shift >= 0; shift -= 8 {
		d = (d ^ (v >> uint(shift) & 0xFF)) * fnvPrime
	}
	return d
}

// RunFaultSweep executes one fleet run per intensity, scaling the base
// profile, and reduces the degradation curve. The config's own Faults
// field is ignored; ARQ, FEC and concealment settings apply to every
// point (intensity 0 then measures their fault-free overhead).
func RunFaultSweep(cfg Config, base fault.Profile, intensities []float64) (*Sweep, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if len(intensities) == 0 {
		intensities = DefaultIntensities()
	}
	sw := &Sweep{Profile: base, Digest: fnvOffset}
	for _, intensity := range intensities {
		if intensity < 0 || math.IsNaN(intensity) {
			return nil, fmt.Errorf("fleet: invalid sweep intensity %g", intensity)
		}
		scaled := base.Scale(intensity)
		ptCfg := cfg
		ptCfg.Faults = &scaled
		agg, err := Run(ptCfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: sweep intensity %g: %w", intensity, err)
		}
		pt := SweepPoint{
			Intensity:         intensity,
			DeliveryRate:      agg.DeliveryRate(),
			ConcealedFraction: agg.ConcealedFraction(),
			EffectiveBER:      agg.EffectiveBER(),
			FER:               agg.FER,
			Accepted:          agg.Accepted,
			Corrupt:           agg.Corrupt,
			LostSeq:           agg.LostSeq,
			Blanked:           agg.Blanked,
			LinkDropped:       agg.LinkDropped,
			Retransmits:       agg.Retransmits,
			Recovered:         agg.Recovered,
			FECCorrected:      agg.FECCorrected,
			Concealed:         agg.Concealed,
		}
		pt.Digest = agg.Digest
		sw.Points = append(sw.Points, pt)
		sw.Digest = fnvMix(sw.Digest, math.Float64bits(intensity))
		sw.Digest = fnvMix(sw.Digest, pt.Digest)
		for _, v := range []int64{
			pt.Accepted, pt.Corrupt, pt.LostSeq, pt.Blanked, pt.LinkDropped,
			pt.Retransmits, pt.Recovered, pt.FECCorrected, pt.Concealed,
		} {
			sw.Digest = fnvMix(sw.Digest, uint64(v))
		}
	}
	if len(sw.Points) == 0 {
		return nil, errors.New("fleet: empty fault sweep")
	}
	return sw, nil
}
