package fleet

import (
	"testing"

	"mindful/internal/decode"
)

// decodeKinds are the active decoder arms every decode test sweeps.
var decodeKinds = []DecoderKind{DecoderKalman, DecoderWiener, DecoderDNN}

// decodeConfig returns the full-stack checkpoint scenario with the given
// decoder attached — faults, ARQ, FEC and concealment all on, so the
// concealed-frame path into the decoder is exercised.
func decodeConfig(kind DecoderKind) Config {
	cfg := checkpointConfigs()["full-stack"]
	cfg.Decode = DecodeConfig{Kind: kind}
	return cfg
}

// TestDecodeFrameDigestInvariant: attaching a decode stage must not
// change a single received frame byte — the decoder is purely
// downstream of the link, on its own derived stream. This is the
// refactor's central invariant: the stage graph with a decoder produces
// byte-identical frame digests to the pre-refactor pipeline without one.
func TestDecodeFrameDigestInvariant(t *testing.T) {
	for name, base := range checkpointConfigs() {
		t.Run(name, func(t *testing.T) {
			ref, err := Run(base)
			if err != nil {
				t.Fatal(err)
			}
			for _, kind := range decodeKinds {
				cfg := base
				cfg.Decode = DecodeConfig{Kind: kind}
				got, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got.Digest != ref.Digest {
					t.Fatalf("%v: frame digest %d != decoder-free %d", kind, got.Digest, ref.Digest)
				}
				if got.DecodedSteps == 0 {
					t.Fatalf("%v: decoder never stepped", kind)
				}
				if got.DecodeDigest == ref.DecodeDigest {
					t.Fatalf("%v: decode digest %d equals decoder-free value", kind, got.DecodeDigest)
				}
				if got.DecodeMACs == 0 {
					t.Fatalf("%v: no MACs accounted", kind)
				}
			}
		})
	}
}

// TestDecodeWorkerInvariance: the decode digest must be bit-identical
// for every worker count, like the frame digest — decoder state is
// per-implant and draw order never crosses implants.
func TestDecodeWorkerInvariance(t *testing.T) {
	for _, kind := range decodeKinds {
		cfg := decodeConfig(kind)
		cfg.Workers = 1
		ref, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref.DecodedSteps == 0 {
			t.Fatalf("%v: decoder never stepped", kind)
		}
		for _, workers := range []int{2, 4} {
			cfg.Workers = workers
			got, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.Digest != ref.Digest || got.DecodeDigest != ref.DecodeDigest {
				t.Fatalf("%v workers=%d: digests %d/%d != %d/%d",
					kind, workers, got.Digest, got.DecodeDigest, ref.Digest, ref.DecodeDigest)
			}
			if got.DecodedSteps != ref.DecodedSteps || got.DecodeConcealedBins != ref.DecodeConcealedBins {
				t.Fatalf("%v workers=%d: decode accounting diverged", kind, workers)
			}
		}
	}
}

// TestDecodeConcealedBins: under the full fault stack with concealment,
// some bins must contain concealed frames — the concealment-aware path
// through the receiver's hook is live, not dead code.
func TestDecodeConcealedBins(t *testing.T) {
	agg, err := Run(decodeConfig(DecoderKalman))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Concealed == 0 {
		t.Skip("scenario produced no concealed frames")
	}
	if agg.DecodeConcealedBins == 0 {
		t.Fatal("concealed frames occurred but no bin was marked concealed")
	}
}

// TestCheckpointResumeWithDecoder: snapshot at K, restore, K more ticks
// must equal the uninterrupted 2K run bit-for-bit — including the
// decoder's temporal state (Kalman x/P, Wiener lag ring) and the partial
// bin. This is the acceptance criterion at the fleet layer.
func TestCheckpointResumeWithDecoder(t *testing.T) {
	const k = 16
	for _, kind := range decodeKinds {
		cfg := decodeConfig(kind)
		// An odd bin size relative to k leaves a partially filled bin at
		// the snapshot point, so the mid-bin state is exercised too.
		cfg.Decode.BinTicks = 3
		for idx := 0; idx < cfg.Implants; idx++ {
			ref, err := NewPipeline(cfg, idx, 0)
			if err != nil {
				t.Fatal(err)
			}
			stepN(t, ref, 2*k)
			want := ref.Result()
			ref.Close()
			if want.DecodedSteps == 0 {
				t.Fatalf("%v implant %d: decoder never stepped in 2K ticks", kind, idx)
			}

			first, err := NewPipeline(cfg, idx, 0)
			if err != nil {
				t.Fatal(err)
			}
			stepN(t, first, k)
			st, err := first.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			stepN(t, first, k)
			if got := first.Result(); got != want {
				t.Fatalf("%v implant %d: snapshot disturbed the pipeline:\n%+v\nwant %+v", kind, idx, got, want)
			}
			first.Close()

			if st.Decode == nil {
				t.Fatalf("%v: snapshot carries no decode state", kind)
			}
			resumed, err := RestorePipeline(cfg, st)
			if err != nil {
				t.Fatal(err)
			}
			stepN(t, resumed, k)
			if got := resumed.Result(); got != want {
				t.Fatalf("%v implant %d: resumed result\n%+v\nwant %+v", kind, idx, got, want)
			}
			resumed.Close()
		}
	}
}

// TestRestoreRejectsDecoderMismatch: decoder presence must match
// between checkpoint and config in both directions.
func TestRestoreRejectsDecoderMismatch(t *testing.T) {
	cfg := decodeConfig(DecoderKalman)
	p, err := NewPipeline(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, p, 8)
	st, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	p.Close()

	noDec := cfg
	noDec.Decode = DecodeConfig{}
	if _, err := RestorePipeline(noDec, st); err == nil {
		t.Fatal("restore without the decoder succeeded")
	}

	plain := noDec
	q, err := NewPipeline(plain, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	stepN(t, q, 8)
	st2, err := q.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	q.Close()
	if _, err := RestorePipeline(cfg, st2); err == nil {
		t.Fatal("restore of a decoder-free checkpoint under a decoder config succeeded")
	}
}

// TestSessionDecoderDeterministic: the fitted decoder is a pure function
// of (seed, index) — two builds step identically on the same input.
func TestSessionDecoderDeterministic(t *testing.T) {
	cfg := decodeConfig(DecoderKalman)
	for _, kind := range decodeKinds {
		cfg.Decode.Kind = kind
		a, err := newSessionDecoder(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		b, err := newSessionDecoder(cfg, 3)
		if err != nil {
			t.Fatal(err)
		}
		z := make([]float64, cfg.Channels)
		for i := range z {
			z[i] = 0.25 * float64(i%5)
		}
		for step := 0; step < 5; step++ {
			xa, err := a.Step(z)
			if err != nil {
				t.Fatal(err)
			}
			xb, err := b.Step(z)
			if err != nil {
				t.Fatal(err)
			}
			for i := range xa {
				if xa[i] != xb[i] {
					t.Fatalf("%v step %d: estimates diverge: %v vs %v", kind, step, xa, xb)
				}
			}
		}
	}
}

// TestStageListing: the graph is introspectable, and the decode stage
// appears exactly when configured.
func TestStageListing(t *testing.T) {
	cfg := checkpointConfigs()["clean"]
	p, err := NewPipeline(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	want := []string{"source", "transport", "receiver"}
	got := p.Stages()
	if len(got) != len(want) {
		t.Fatalf("stages %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stages %v, want %v", got, want)
		}
	}

	cfg.Decode = DecodeConfig{Kind: DecoderWiener}
	q, err := NewPipeline(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if s := q.Stages(); len(s) != 4 || s[3] != "decode" {
		t.Fatalf("decoder pipeline stages %v, want trailing decode", s)
	}
}

// TestOnDecodeHook: the hook sees every decoder step, in tick order,
// with the configured output dimensionality.
func TestOnDecodeHook(t *testing.T) {
	cfg := decodeConfig(DecoderWiener)
	p, err := NewPipeline(cfg, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	var ticks []int
	p.OnDecode(func(tick int, estimate []float64, concealed int) {
		if len(estimate) != intentDims {
			t.Fatalf("estimate dims %d, want %d", len(estimate), intentDims)
		}
		if concealed < 0 {
			t.Fatalf("negative concealed count %d", concealed)
		}
		ticks = append(ticks, tick)
	})
	stepN(t, p, cfg.Ticks)
	if int64(len(ticks)) != p.Result().DecodedSteps {
		t.Fatalf("hook fired %d times, %d steps accounted", len(ticks), p.Result().DecodedSteps)
	}
	for i := 1; i < len(ticks); i++ {
		if ticks[i] < ticks[i-1] {
			t.Fatalf("hook ticks out of order: %v", ticks)
		}
	}
}

// TestParseDecoderKind covers the CLI spellings and round-trips.
func TestParseDecoderKind(t *testing.T) {
	for _, kind := range append([]DecoderKind{DecoderNone}, decodeKinds...) {
		got, err := ParseDecoderKind(kind.String())
		if err != nil || got != kind {
			t.Fatalf("round-trip %v: got %v, %v", kind, got, err)
		}
	}
	if _, err := ParseDecoderKind("lstm"); err == nil {
		t.Fatal("unknown decoder accepted")
	}
	if k, err := ParseDecoderKind(""); err != nil || k != DecoderNone {
		t.Fatalf("empty spelling: got %v, %v", k, err)
	}
}

// TestNewSessionDecoderKinds: each kind yields a decoder of the
// expected concrete type (the snapshot/restore type switch relies on
// this mapping).
func TestNewSessionDecoderKinds(t *testing.T) {
	cfg := decodeConfig(DecoderKalman)
	for kind, check := range map[DecoderKind]func(decode.Decoder) bool{
		DecoderKalman: func(d decode.Decoder) bool { _, ok := d.(*decode.Kalman); return ok },
		DecoderWiener: func(d decode.Decoder) bool { _, ok := d.(*decode.Wiener); return ok },
		DecoderDNN:    func(d decode.Decoder) bool { _, ok := d.(*decode.NNDecoder); return ok },
		DecoderFixed:  func(d decode.Decoder) bool { _, ok := d.(*decode.FixedGain); return ok },
	} {
		cfg.Decode.Kind = kind
		d, err := newSessionDecoder(cfg, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !check(d) {
			t.Fatalf("%v: wrong concrete decoder type %T", kind, d)
		}
	}
}
