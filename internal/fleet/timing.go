package fleet

import (
	"time"

	"mindful/internal/obs"
)

// timedStage decorates a Stage with wall-time attribution. The contract
// is digest neutrality: Step reads the clock, delegates, reads the
// clock again — no RNG draws, no Tick mutation, no behavioral branch —
// so a timed pipeline's counters and digests are byte-identical to the
// untimed run (TestStageTimingDigestNeutral pins this). Everything else
// delegates verbatim, so snapshot/restore and Close see the graph
// exactly as built.
type timedStage struct {
	inner Stage
	clock *obs.StageClock
}

// wrapTimed decorates each stage in place when a timer is configured.
// Clock handles are resolved here, once, so Step stays on the atomic
// fast path.
func wrapTimed(stages []Stage, timer *obs.StageTimer) {
	if timer == nil {
		return
	}
	for i, s := range stages {
		stages[i] = &timedStage{inner: s, clock: timer.Clock(s.Name())}
	}
}

func (t *timedStage) Name() string { return t.inner.Name() }

func (t *timedStage) Step(tk *Tick) error {
	start := time.Now()
	err := t.inner.Step(tk)
	t.clock.Observe(time.Since(start).Nanoseconds())
	return err
}

func (t *timedStage) Snapshot(st *PipelineState) { t.inner.Snapshot(st) }

func (t *timedStage) Restore(cfg Config, st *PipelineState) error {
	return t.inner.Restore(cfg, st)
}

func (t *timedStage) Close() { t.inner.Close() }
