// Package fleet runs many independent implant → modem → AWGN → wearable
// pipelines concurrently — the system-level scaling experiment behind the
// paper's Fig. 1 deployment picture, where one wearable serves a fleet of
// implanted sensors.
//
// Determinism is the design center: every implant pipeline is fully
// self-seeded through SplitMix64-derived streams (DeriveSeed), implants
// are assigned to workers by static round-robin, each result lands in a
// disjoint slice slot, and aggregation walks the slots in index order.
// The aggregate is therefore bit-identical for any worker count or
// GOMAXPROCS — the property the determinism test wall pins down.
//
// The per-tick hot path is allocation-free at steady state: sample, code,
// bit, symbol and frame buffers come from the comm package's sync.Pools
// and are recycled through the Append* APIs.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"mindful/internal/comm"
	"mindful/internal/neural"
	"mindful/internal/obs"
	"mindful/internal/units"
	"mindful/internal/wearable"
)

// FNV-1a 64-bit parameters for the result digests.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Config describes one fleet run.
type Config struct {
	// Implants is the number of independent implant pipelines.
	Implants int
	// Workers is the number of concurrent worker goroutines; values < 1
	// run single-threaded. The result is identical for every value.
	Workers int
	// Ticks is the number of frames each implant transmits.
	Ticks int
	// Channels is the per-implant electrode count.
	Channels int
	// SampleRate is the per-channel sampling frequency.
	SampleRate units.Frequency
	// SampleBits is the ADC width d (1..16).
	SampleBits int
	// Modulation selects the uplink modem (OOK, BPSK or square QAM).
	Modulation comm.Modulation
	// EbN0dB is the AWGN operating point in dB.
	EbN0dB float64
	// Seed is the base seed all per-implant streams derive from.
	Seed int64
	// Observer optionally collects shard-labeled fleet metrics.
	Observer *obs.Observer
}

// DefaultConfig returns a small fleet at a noisy but workable operating
// point: 8 implants of 32 channels under 16-QAM at 12 dB Eb/N0.
func DefaultConfig() Config {
	return Config{
		Implants:   8,
		Workers:    4,
		Ticks:      128,
		Channels:   32,
		SampleRate: units.Kilohertz(2),
		SampleBits: 10,
		Modulation: comm.NewQAM(4),
		EbN0dB:     12,
		Seed:       1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Implants < 1 {
		return errors.New("fleet: need at least one implant")
	}
	if c.Ticks < 1 {
		return errors.New("fleet: need at least one tick")
	}
	if c.Channels < 1 {
		return errors.New("fleet: need at least one channel")
	}
	if c.SampleRate.Hz() <= 0 {
		return errors.New("fleet: sample rate must be positive")
	}
	if c.SampleBits < 1 || c.SampleBits > 16 {
		return fmt.Errorf("fleet: sample bits %d outside 1..16", c.SampleBits)
	}
	if c.Modulation == nil {
		return errors.New("fleet: no modulation configured")
	}
	if _, err := comm.NewModem(c.Modulation); err != nil {
		return err
	}
	return nil
}

// ImplantResult is the outcome of one implant's pipeline.
type ImplantResult struct {
	// Index is the implant's position in the fleet.
	Index int
	// Worker is the shard (worker goroutine) that ran the pipeline.
	Worker int
	// Frames is the number of frames transmitted.
	Frames int64
	// Accepted, Corrupt and LostSeq are the wearable receiver's frame
	// accounting after the noisy link.
	Accepted int64
	Corrupt  int64
	LostSeq  int64
	// BitsSent and BitErrors count the on-air bits and the demodulation
	// errors against the known transmitted stream.
	BitsSent  int64
	BitErrors int64
	// Digest is an FNV-1a hash over every received frame byte, in tick
	// order — the byte-identity witness of the determinism tests.
	Digest uint64
	// Err is the first pipeline error, if any.
	Err error
}

// Aggregate is the fleet-wide summary, reduced in implant-index order.
type Aggregate struct {
	Implants int
	Workers  int
	Ticks    int

	Frames    int64
	Accepted  int64
	Corrupt   int64
	LostSeq   int64
	BitsSent  int64
	BitErrors int64

	// BER is the measured uplink bit error rate; FER the frame error rate
	// at the receiver.
	BER float64
	FER float64

	// Digest chains the per-implant digests in index order — equal
	// digests mean byte-identical fleet output.
	Digest uint64

	// Elapsed and FramesPerSecond describe this run's wall-clock
	// performance; they are the only non-deterministic fields.
	Elapsed         time.Duration
	FramesPerSecond float64

	// PerImplant holds the individual results, ordered by Index.
	PerImplant []ImplantResult
}

// Run executes the fleet and reduces the per-implant results. The
// deterministic fields of the aggregate depend only on the Config's
// simulation parameters, never on Workers or scheduling.
func Run(cfg Config) (*Aggregate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Implants {
		workers = cfg.Implants
	}

	results := make([]ImplantResult, cfg.Implants)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Static round-robin sharding: implant i always belongs to
			// shard i mod workers, and each slot is written exactly once.
			for i := w; i < cfg.Implants; i += workers {
				results[i] = runImplant(cfg, i, w)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	agg := &Aggregate{
		Implants:   cfg.Implants,
		Workers:    workers,
		Ticks:      cfg.Ticks,
		Digest:     fnvOffset,
		Elapsed:    elapsed,
		PerImplant: results,
	}
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			return nil, fmt.Errorf("fleet: implant %d: %w", r.Index, r.Err)
		}
		agg.Frames += r.Frames
		agg.Accepted += r.Accepted
		agg.Corrupt += r.Corrupt
		agg.LostSeq += r.LostSeq
		agg.BitsSent += r.BitsSent
		agg.BitErrors += r.BitErrors
		for shift := 56; shift >= 0; shift -= 8 {
			agg.Digest = (agg.Digest ^ (r.Digest >> shift & 0xFF)) * fnvPrime
		}
	}
	if agg.BitsSent > 0 {
		agg.BER = float64(agg.BitErrors) / float64(agg.BitsSent)
	}
	if total := agg.Accepted + agg.Corrupt; total > 0 {
		agg.FER = float64(agg.Corrupt) / float64(total)
	}
	if s := elapsed.Seconds(); s > 0 {
		agg.FramesPerSecond = float64(agg.Frames) / s
	}
	return agg, nil
}

// runImplant executes one implant's full pipeline: synthetic cortex →
// ADC → frame → bits → symbols → AWGN → bits → frame → wearable.
func runImplant(cfg Config, idx, worker int) ImplantResult {
	res := ImplantResult{Index: idx, Worker: worker, Digest: fnvOffset}
	fail := func(err error) ImplantResult {
		res.Err = err
		return res
	}

	ncfg := neural.DefaultConfig()
	ncfg.Channels = cfg.Channels
	ncfg.SampleRate = cfg.SampleRate
	ncfg.Seed = DeriveSeed(cfg.Seed, uint64(idx), StreamNeural)
	gen, err := neural.New(ncfg)
	if err != nil {
		return fail(err)
	}
	adc := neural.ADC{Bits: cfg.SampleBits, FullScale: 2.0}
	pkt, err := comm.NewPacketizer(cfg.SampleBits)
	if err != nil {
		return fail(err)
	}
	modem, err := comm.NewModem(cfg.Modulation)
	if err != nil {
		return fail(err)
	}
	channel := comm.NewAWGNChannel(math.Pow(10, cfg.EbN0dB/10),
		DeriveSeed(cfg.Seed, uint64(idx), StreamChannel))
	rx, err := wearable.NewReceiver(0)
	if err != nil {
		return fail(err)
	}

	// Pooled buffers: the whole tick loop below is allocation-free once
	// these have grown to steady-state capacity.
	framePtr := comm.GetByteBuf()
	defer comm.PutByteBuf(framePtr)
	rxFramePtr := comm.GetByteBuf()
	defer comm.PutByteBuf(rxFramePtr)
	bitPtr := comm.GetBitBuf()
	defer comm.PutBitBuf(bitPtr)
	rxBitPtr := comm.GetBitBuf()
	defer comm.PutBitBuf(rxBitPtr)
	symPtr := comm.GetSymbolBuf()
	defer comm.PutSymbolBuf(symPtr)
	var sampleBuf []float64
	var codeBuf []uint16

	k := modem.BitsPerSymbol()
	// Golden-angle phase offset decorrelates the implants' intent
	// trajectories without extra randomness.
	phase := 2 * math.Pi * 0.381966 * float64(idx)
	for t := 0; t < cfg.Ticks; t++ {
		theta := phase + 2*math.Pi*float64(t)/200
		gen.SetIntent(math.Cos(theta), math.Sin(theta))
		sampleBuf = gen.NextInto(sampleBuf)
		codeBuf = adc.AppendQuantize(codeBuf[:0], sampleBuf)
		frame, err := pkt.AppendEncode((*framePtr)[:0], codeBuf)
		if err != nil {
			return fail(err)
		}
		*framePtr = frame

		bits := comm.AppendBytesAsBits((*bitPtr)[:0], frame)
		// Pad to a symbol boundary; the pad is dropped after demodulation.
		for len(bits)%k != 0 {
			bits = append(bits, 0)
		}
		*bitPtr = bits
		syms, err := modem.AppendModulate((*symPtr)[:0], bits)
		if err != nil {
			return fail(err)
		}
		*symPtr = syms
		channel.TransmitInPlace(syms)
		rxBits := modem.AppendDemodulate((*rxBitPtr)[:0], syms)
		*rxBitPtr = rxBits
		for i := range bits {
			if bits[i] != rxBits[i] {
				res.BitErrors++
			}
		}
		res.BitsSent += int64(len(bits))

		rxFrame := comm.AppendBitsAsBytes((*rxFramePtr)[:0], rxBits[:len(frame)*8])
		*rxFramePtr = rxFrame
		res.Frames++
		rx.Receive(rxFrame) // CRC-rejected frames are counted as corrupt
		for _, b := range rxFrame {
			res.Digest = (res.Digest ^ uint64(b)) * fnvPrime
		}
	}
	st := rx.Stats()
	res.Accepted, res.Corrupt, res.LostSeq = st.Accepted, st.Corrupted, st.LostSeq

	if cfg.Observer != nil {
		reg := cfg.Observer.Metrics
		lbl := obs.Label{Key: "shard", Value: strconv.Itoa(worker)}
		reg.Counter("fleet_frames_total", lbl).Add(res.Frames)
		reg.Counter("fleet_frames_accepted_total", lbl).Add(res.Accepted)
		reg.Counter("fleet_frames_corrupt_total", lbl).Add(res.Corrupt)
		reg.Counter("fleet_bits_sent_total", lbl).Add(res.BitsSent)
		reg.Counter("fleet_bit_errors_total", lbl).Add(res.BitErrors)
		reg.Help("fleet_frames_total", "Frames transmitted by the shard's implants.")
		reg.Help("fleet_frames_accepted_total", "Frames accepted by the wearable receiver.")
		reg.Help("fleet_frames_corrupt_total", "Frames rejected as corrupt after the noisy link.")
		reg.Help("fleet_bits_sent_total", "On-air bits transmitted (including symbol padding).")
		reg.Help("fleet_bit_errors_total", "Demodulated bits differing from the transmitted stream.")
	}
	return res
}
