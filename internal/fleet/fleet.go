// Package fleet runs many independent implant → modem → AWGN → wearable
// pipelines concurrently — the system-level scaling experiment behind the
// paper's Fig. 1 deployment picture, where one wearable serves a fleet of
// implanted sensors.
//
// Determinism is the design center: every implant pipeline is fully
// self-seeded through SplitMix64-derived streams (DeriveSeed), implants
// are assigned to workers by static round-robin, each result lands in a
// disjoint slice slot, and aggregation walks the slots in index order.
// The aggregate is therefore bit-identical for any worker count or
// GOMAXPROCS — the property the determinism test wall pins down.
//
// The per-tick hot path is allocation-free at steady state: sample, code,
// bit, symbol and frame buffers come from the comm package's sync.Pools
// and are recycled through the Append* APIs.
package fleet

import (
	"errors"
	"fmt"
	"math"
	mathbits "math/bits"
	"strconv"
	"sync"
	"time"

	"mindful/internal/comm"
	"mindful/internal/fault"
	"mindful/internal/neural"
	"mindful/internal/obs"
	"mindful/internal/units"
	"mindful/internal/wearable"
)

// FNV-1a 64-bit parameters for the result digests.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Config describes one fleet run.
type Config struct {
	// Implants is the number of independent implant pipelines.
	Implants int
	// Workers is the number of concurrent worker goroutines; values < 1
	// run single-threaded. The result is identical for every value.
	Workers int
	// Ticks is the number of frames each implant transmits.
	Ticks int
	// Channels is the per-implant electrode count.
	Channels int
	// SampleRate is the per-channel sampling frequency.
	SampleRate units.Frequency
	// SampleBits is the ADC width d (1..16).
	SampleBits int
	// Modulation selects the uplink modem (OOK, BPSK or square QAM).
	Modulation comm.Modulation
	// EbN0dB is the AWGN operating point in dB.
	EbN0dB float64
	// Seed is the base seed all per-implant streams derive from.
	Seed int64
	// Observer optionally collects shard-labeled fleet metrics.
	Observer *obs.Observer

	// Faults optionally injects the profile's deterministic failure modes
	// (electrode faults, brownouts, burst link) into every implant, each
	// seeded from its own derived stream. Nil, or a profile with nothing
	// enabled, leaves the pipeline byte-identical to the fault-free run.
	Faults *fault.Profile
	// ARQ bounds the link-layer retransmission loop; the zero value
	// disables recovery (each frame is transmitted exactly once).
	ARQ comm.ARQConfig
	// FECDepth enables Hamming(7,4) coding with the given interleaver
	// depth when > 0; zero transmits uncoded frames.
	FECDepth int
	// Concealment selects the wearable's gap-concealment strategy for
	// frames lost to drops, brownouts or exhausted retries.
	Concealment wearable.Concealment
}

// DefaultConfig returns a small fleet at a noisy but workable operating
// point: 8 implants of 32 channels under 16-QAM at 12 dB Eb/N0.
func DefaultConfig() Config {
	return Config{
		Implants:   8,
		Workers:    4,
		Ticks:      128,
		Channels:   32,
		SampleRate: units.Kilohertz(2),
		SampleBits: 10,
		Modulation: comm.NewQAM(4),
		EbN0dB:     12,
		Seed:       1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Implants < 1 {
		return errors.New("fleet: need at least one implant")
	}
	if c.Ticks < 1 {
		return errors.New("fleet: need at least one tick")
	}
	if c.Channels < 1 {
		return errors.New("fleet: need at least one channel")
	}
	if c.SampleRate.Hz() <= 0 {
		return errors.New("fleet: sample rate must be positive")
	}
	if c.SampleBits < 1 || c.SampleBits > 16 {
		return fmt.Errorf("fleet: sample bits %d outside 1..16", c.SampleBits)
	}
	if c.Modulation == nil {
		return errors.New("fleet: no modulation configured")
	}
	if _, err := comm.NewModem(c.Modulation); err != nil {
		return err
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if err := c.ARQ.Validate(); err != nil {
		return err
	}
	if c.FECDepth < 0 {
		return fmt.Errorf("fleet: negative FEC depth %d", c.FECDepth)
	}
	return nil
}

// ImplantResult is the outcome of one implant's pipeline.
type ImplantResult struct {
	// Index is the implant's position in the fleet.
	Index int
	// Worker is the shard (worker goroutine) that ran the pipeline.
	Worker int
	// Frames is the number of frames transmitted.
	Frames int64
	// Accepted, Corrupt and LostSeq are the wearable receiver's frame
	// accounting after the noisy link.
	Accepted int64
	Corrupt  int64
	LostSeq  int64
	// BitsSent and BitErrors count the on-air bits and the demodulation
	// errors against the known transmitted stream.
	BitsSent  int64
	BitErrors int64
	// Blanked counts frames framed but never radiated (brownouts);
	// LinkDropped frames lost whole by the burst link across all attempts.
	Blanked     int64
	LinkDropped int64
	// Retransmits, Recovered and ARQFailed are the implant's link-layer
	// recovery accounting; RetransmitBits the on-air bits retries burned.
	Retransmits    int64
	Recovered      int64
	ARQFailed      int64
	RetransmitBits int64
	// FECCorrected counts bit errors fixed by the Hamming decoder.
	FECCorrected int64
	// Stale, Concealed and ConcealedSamples are the wearable's degradation
	// accounting: late duplicates discarded and gaps filled synthetically.
	Stale            int64
	Concealed        int64
	ConcealedSamples int64
	// FaultyChannels is the electrode count with an injected fault.
	FaultyChannels int
	// DataBits and DataBitErrors measure the post-FEC payload stream of
	// delivered frames — the residual (effective) error rate after coding.
	DataBits      int64
	DataBitErrors int64
	// Digest is an FNV-1a hash over every received frame byte, in tick
	// order — the byte-identity witness of the determinism tests.
	Digest uint64
	// Err is the first pipeline error, if any.
	Err error
}

// Aggregate is the fleet-wide summary, reduced in implant-index order.
type Aggregate struct {
	Implants int
	Workers  int
	Ticks    int

	Frames    int64
	Accepted  int64
	Corrupt   int64
	LostSeq   int64
	BitsSent  int64
	BitErrors int64

	// Fault, recovery and degradation accounting, summed over implants.
	Blanked          int64
	LinkDropped      int64
	Retransmits      int64
	Recovered        int64
	ARQFailed        int64
	RetransmitBits   int64
	FECCorrected     int64
	Stale            int64
	Concealed        int64
	ConcealedSamples int64
	FaultyChannels   int
	DataBits         int64
	DataBitErrors    int64

	// BER is the measured uplink bit error rate; FER the frame error rate
	// at the receiver.
	BER float64
	FER float64

	// Digest chains the per-implant digests in index order — equal
	// digests mean byte-identical fleet output.
	Digest uint64

	// Elapsed and FramesPerSecond describe this run's wall-clock
	// performance; they are the only non-deterministic fields.
	Elapsed         time.Duration
	FramesPerSecond float64

	// PerImplant holds the individual results, ordered by Index.
	PerImplant []ImplantResult
}

// ExpectedFrames returns the frames the fleet framed (radiated or not).
func (a *Aggregate) ExpectedFrames() int64 {
	return int64(a.Implants) * int64(a.Ticks)
}

// DeliveryRate returns the fraction of framed payloads the wearable
// accepted intact — the degradation curve's headline figure (0 when no
// frames were expected).
func (a *Aggregate) DeliveryRate() float64 {
	if a.ExpectedFrames() == 0 {
		return 0
	}
	return float64(a.Accepted) / float64(a.ExpectedFrames())
}

// ConcealedFraction returns concealed frames over frames presented to the
// decoder (accepted + concealed), 0 when nothing was presented.
func (a *Aggregate) ConcealedFraction() float64 {
	if total := a.Accepted + a.Concealed; total > 0 {
		return float64(a.Concealed) / float64(total)
	}
	return 0
}

// EffectiveBER returns the residual payload bit error rate after FEC, over
// delivered frames (0 when nothing was delivered).
func (a *Aggregate) EffectiveBER() float64 {
	if a.DataBits == 0 {
		return 0
	}
	return float64(a.DataBitErrors) / float64(a.DataBits)
}

// Run executes the fleet and reduces the per-implant results. The
// deterministic fields of the aggregate depend only on the Config's
// simulation parameters, never on Workers or scheduling.
func Run(cfg Config) (*Aggregate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Implants {
		workers = cfg.Implants
	}

	results := make([]ImplantResult, cfg.Implants)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Static round-robin sharding: implant i always belongs to
			// shard i mod workers, and each slot is written exactly once.
			for i := w; i < cfg.Implants; i += workers {
				results[i] = runImplant(cfg, i, w)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	agg := &Aggregate{
		Implants:   cfg.Implants,
		Workers:    workers,
		Ticks:      cfg.Ticks,
		Digest:     fnvOffset,
		Elapsed:    elapsed,
		PerImplant: results,
	}
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			return nil, fmt.Errorf("fleet: implant %d: %w", r.Index, r.Err)
		}
		agg.Frames += r.Frames
		agg.Accepted += r.Accepted
		agg.Corrupt += r.Corrupt
		agg.LostSeq += r.LostSeq
		agg.BitsSent += r.BitsSent
		agg.BitErrors += r.BitErrors
		agg.Blanked += r.Blanked
		agg.LinkDropped += r.LinkDropped
		agg.Retransmits += r.Retransmits
		agg.Recovered += r.Recovered
		agg.ARQFailed += r.ARQFailed
		agg.RetransmitBits += r.RetransmitBits
		agg.FECCorrected += r.FECCorrected
		agg.Stale += r.Stale
		agg.Concealed += r.Concealed
		agg.ConcealedSamples += r.ConcealedSamples
		agg.FaultyChannels += r.FaultyChannels
		agg.DataBits += r.DataBits
		agg.DataBitErrors += r.DataBitErrors
		for shift := 56; shift >= 0; shift -= 8 {
			agg.Digest = (agg.Digest ^ (r.Digest >> shift & 0xFF)) * fnvPrime
		}
	}
	if agg.BitsSent > 0 {
		agg.BER = float64(agg.BitErrors) / float64(agg.BitsSent)
	}
	if total := agg.Accepted + agg.Corrupt; total > 0 {
		agg.FER = float64(agg.Corrupt) / float64(total)
	}
	if s := elapsed.Seconds(); s > 0 {
		agg.FramesPerSecond = float64(agg.Frames) / s
	}
	return agg, nil
}

// runImplant executes one implant's full pipeline: synthetic cortex →
// ADC → frame → bits → symbols → AWGN → bits → frame → wearable.
func runImplant(cfg Config, idx, worker int) ImplantResult {
	res := ImplantResult{Index: idx, Worker: worker, Digest: fnvOffset}
	fail := func(err error) ImplantResult {
		res.Err = err
		return res
	}

	ncfg := neural.DefaultConfig()
	ncfg.Channels = cfg.Channels
	ncfg.SampleRate = cfg.SampleRate
	ncfg.Seed = DeriveSeed(cfg.Seed, uint64(idx), StreamNeural)
	gen, err := neural.New(ncfg)
	if err != nil {
		return fail(err)
	}
	adc := neural.ADC{Bits: cfg.SampleBits, FullScale: 2.0}
	pkt, err := comm.NewPacketizer(cfg.SampleBits)
	if err != nil {
		return fail(err)
	}
	modem, err := comm.NewModem(cfg.Modulation)
	if err != nil {
		return fail(err)
	}
	channel := comm.NewAWGNChannel(math.Pow(10, cfg.EbN0dB/10),
		DeriveSeed(cfg.Seed, uint64(idx), StreamChannel))
	rx, err := wearable.NewReceiver(0)
	if err != nil {
		return fail(err)
	}
	rx.Concealment = cfg.Concealment

	// Fault processes, each on its own derived stream so the injected
	// history is a pure function of (seed, index) — never of scheduling.
	var inj *fault.Injector
	if cfg.Faults != nil {
		inj, err = fault.NewInjector(*cfg.Faults, cfg.Channels,
			DeriveSeed(cfg.Seed, uint64(idx), StreamLink),
			DeriveSeed(cfg.Seed, uint64(idx), StreamElectrode),
			DeriveSeed(cfg.Seed, uint64(idx), StreamBrownout))
		if err != nil {
			return fail(err)
		}
	}
	var link *fault.BurstLink
	var elec *fault.ElectrodeBank
	var brown *fault.Brownout
	if inj != nil {
		link, elec, brown = inj.Link, inj.Electrodes, inj.Brownout
		res.FaultyChannels = elec.FaultyChannels()
	}
	var fec *comm.FEC
	if cfg.FECDepth > 0 {
		if fec, err = comm.NewFEC(cfg.FECDepth); err != nil {
			return fail(err)
		}
	}
	var arq *comm.ARQ
	if cfg.ARQ.Enabled() {
		if arq, err = comm.NewARQ(cfg.ARQ); err != nil {
			return fail(err)
		}
	}

	// Pooled buffers: the whole tick loop below is allocation-free once
	// these have grown to steady-state capacity.
	framePtr := comm.GetByteBuf()
	defer comm.PutByteBuf(framePtr)
	rxFramePtr := comm.GetByteBuf()
	defer comm.PutByteBuf(rxFramePtr)
	bitPtr := comm.GetBitBuf()
	defer comm.PutBitBuf(bitPtr)
	rxBitPtr := comm.GetBitBuf()
	defer comm.PutBitBuf(rxBitPtr)
	symPtr := comm.GetSymbolBuf()
	defer comm.PutSymbolBuf(symPtr)
	var sampleBuf []float64
	var codeBuf []uint16
	var codedPtr, decPtr *[]byte
	if fec != nil {
		codedPtr = comm.GetBitBuf()
		defer comm.PutBitBuf(codedPtr)
		decPtr = comm.GetBitBuf()
		defer comm.PutBitBuf(decPtr)
	}
	var linkPtr *[]byte
	if link != nil {
		linkPtr = comm.GetByteBuf()
		defer comm.PutByteBuf(linkPtr)
	}
	var finalBuf []byte

	k := modem.BitsPerSymbol()

	// attempt runs one full transmission: frame bits → (FEC) → symbols →
	// AWGN → demodulation → (FEC decode) → bytes → (burst link). It
	// returns the bytes that arrived at the wearable, or nil when the
	// burst link swallowed the frame whole. With every fault and coding
	// stage disabled it performs exactly the draws, in exactly the order,
	// of the original fault-free pipeline — the clean-path byte-identity
	// invariant the determinism wall pins.
	var attemptErr error
	attempt := func() []byte {
		frame := *framePtr
		raw := comm.AppendBytesAsBits((*bitPtr)[:0], frame)
		*bitPtr = raw
		tx := raw
		codedLen := len(raw)
		if fec != nil {
			coded := fec.AppendEncode((*codedPtr)[:0], raw)
			tx = coded
			codedLen = len(coded)
		}
		// Pad to a symbol boundary; the pad is dropped after demodulation.
		for len(tx)%k != 0 {
			tx = append(tx, 0)
		}
		if fec != nil {
			*codedPtr = tx
		} else {
			*bitPtr = tx
		}
		syms, merr := modem.AppendModulate((*symPtr)[:0], tx)
		if merr != nil {
			attemptErr = merr
			return nil
		}
		*symPtr = syms
		channel.TransmitInPlace(syms)
		rxBits := modem.AppendDemodulate((*rxBitPtr)[:0], syms)
		*rxBitPtr = rxBits
		for i := range tx {
			if tx[i] != rxBits[i] {
				res.BitErrors++
			}
		}
		res.BitsSent += int64(len(tx))

		data := rxBits[:codedLen]
		if fec != nil {
			dec, fixed, derr := fec.AppendDecode((*decPtr)[:0], data)
			if derr != nil {
				attemptErr = derr
				return nil
			}
			*decPtr = dec
			res.FECCorrected += int64(fixed)
			data = dec
		}
		rxFrame := comm.AppendBitsAsBytes((*rxFramePtr)[:0], data[:len(frame)*8])
		*rxFramePtr = rxFrame
		if link != nil {
			out := link.AppendTransport((*linkPtr)[:0], rxFrame)
			if out == nil {
				res.LinkDropped++
				return nil
			}
			*linkPtr = out
			rxFrame = out
		}
		return rxFrame
	}
	// deliver hands the received bytes to the wearable, measures the
	// residual (post-FEC) payload errors and folds the bytes into the
	// determinism digest.
	deliver := func(got []byte) {
		rx.Receive(got) // CRC-rejected frames are counted as corrupt
		frame := *framePtr
		res.DataBits += int64(len(frame) * 8)
		for i, b := range frame {
			if i < len(got) {
				res.DataBitErrors += int64(mathbits.OnesCount8(b ^ got[i]))
			} else {
				res.DataBitErrors += 8
			}
		}
		for _, b := range got {
			res.Digest = (res.Digest ^ uint64(b)) * fnvPrime
		}
	}

	// Golden-angle phase offset decorrelates the implants' intent
	// trajectories without extra randomness.
	phase := 2 * math.Pi * 0.381966 * float64(idx)
	for t := 0; t < cfg.Ticks; t++ {
		theta := phase + 2*math.Pi*float64(t)/200
		gen.SetIntent(math.Cos(theta), math.Sin(theta))
		blanked := brown.Tick()
		sampleBuf = gen.NextInto(sampleBuf)
		elec.Apply(sampleBuf) // nil-safe: no-op without electrode faults
		codeBuf = adc.AppendQuantize(codeBuf[:0], sampleBuf)
		frame, err := pkt.AppendEncode((*framePtr)[:0], codeBuf)
		if err != nil {
			return fail(err)
		}
		*framePtr = frame
		if blanked {
			// Brownout: the frame was built (the sequence counter
			// advanced) but the radio is dark; the wearable will see a
			// sequence gap and conceal it if configured.
			res.Blanked++
			continue
		}
		res.Frames++

		if arq == nil {
			if got := attempt(); got != nil {
				deliver(got)
			} else if attemptErr != nil {
				return fail(attemptErr)
			}
			continue
		}
		// ARQ: retry until the frame decodes cleanly or the budget runs
		// out. The wearable keeps the last bytes it heard, so an
		// exhausted budget still surfaces the corrupt frame (counted as
		// such) rather than silently vanishing.
		air := len(frame) * 8
		if fec != nil {
			air = fec.CodedBits(air)
		}
		if rem := air % k; rem != 0 {
			air += k - rem
		}
		haveFinal := false
		arq.Send(frame, air, func([]byte) bool {
			got := attempt()
			if got == nil {
				return false
			}
			finalBuf = append(finalBuf[:0], got...)
			haveFinal = true
			_, derr := comm.Decode(got)
			return derr == nil
		})
		if attemptErr != nil {
			return fail(attemptErr)
		}
		if haveFinal {
			deliver(finalBuf)
		}
	}
	if arq != nil {
		ast := arq.Stats()
		res.Retransmits = ast.Retransmits
		res.Recovered = ast.Recovered
		res.ARQFailed = ast.Failed
		res.RetransmitBits = ast.RetransmitBits
	}
	st := rx.Stats()
	res.Accepted, res.Corrupt, res.LostSeq = st.Accepted, st.Corrupted, st.LostSeq
	res.Stale, res.Concealed, res.ConcealedSamples = st.Stale, st.Concealed, st.ConcealedSamples

	if cfg.Observer != nil {
		reg := cfg.Observer.Metrics
		lbl := obs.Label{Key: "shard", Value: strconv.Itoa(worker)}
		reg.Counter("fleet_frames_total", lbl).Add(res.Frames)
		reg.Counter("fleet_frames_accepted_total", lbl).Add(res.Accepted)
		reg.Counter("fleet_frames_corrupt_total", lbl).Add(res.Corrupt)
		reg.Counter("fleet_bits_sent_total", lbl).Add(res.BitsSent)
		reg.Counter("fleet_bit_errors_total", lbl).Add(res.BitErrors)
		reg.Counter("fleet_frames_blanked_total", lbl).Add(res.Blanked)
		reg.Counter("fleet_frames_link_dropped_total", lbl).Add(res.LinkDropped)
		reg.Counter("fleet_arq_retransmits_total", lbl).Add(res.Retransmits)
		reg.Counter("fleet_arq_recovered_total", lbl).Add(res.Recovered)
		reg.Counter("fleet_fec_corrected_bits_total", lbl).Add(res.FECCorrected)
		reg.Counter("fleet_frames_concealed_total", lbl).Add(res.Concealed)
		reg.Help("fleet_frames_total", "Frames transmitted by the shard's implants.")
		reg.Help("fleet_frames_accepted_total", "Frames accepted by the wearable receiver.")
		reg.Help("fleet_frames_corrupt_total", "Frames rejected as corrupt after the noisy link.")
		reg.Help("fleet_bits_sent_total", "On-air bits transmitted (including symbol padding).")
		reg.Help("fleet_bit_errors_total", "Demodulated bits differing from the transmitted stream.")
		reg.Help("fleet_frames_blanked_total", "Frames framed but never radiated (brownouts).")
		reg.Help("fleet_frames_link_dropped_total", "Frames lost whole by the burst link.")
		reg.Help("fleet_arq_retransmits_total", "Link-layer retransmission attempts.")
		reg.Help("fleet_arq_recovered_total", "Frames delivered only via retransmission.")
		reg.Help("fleet_fec_corrected_bits_total", "Bit errors fixed by the Hamming decoder.")
		reg.Help("fleet_frames_concealed_total", "Gap frames synthesized by the wearable.")
	}
	return res
}
