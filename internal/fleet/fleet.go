// Package fleet runs many independent implant → modem → AWGN → wearable
// pipelines concurrently — the system-level scaling experiment behind the
// paper's Fig. 1 deployment picture, where one wearable serves a fleet of
// implanted sensors.
//
// Determinism is the design center: every implant pipeline is fully
// self-seeded through SplitMix64-derived streams (DeriveSeed), implants
// are assigned to workers by static round-robin, each result lands in a
// disjoint slice slot, and aggregation walks the slots in index order.
// The aggregate is therefore bit-identical for any worker count or
// GOMAXPROCS — the property the determinism test wall pins down.
//
// The per-tick hot path is allocation-free at steady state: sample, code,
// bit, symbol and frame buffers come from the comm package's sync.Pools
// and are recycled through the Append* APIs.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync"
	"time"

	"mindful/internal/comm"
	"mindful/internal/drift"
	"mindful/internal/fault"
	"mindful/internal/obs"
	"mindful/internal/units"
	"mindful/internal/wearable"
)

// FNV-1a 64-bit parameters for the result digests.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

// Config describes one fleet run.
type Config struct {
	// Implants is the number of independent implant pipelines.
	Implants int
	// Workers is the number of concurrent worker goroutines; values < 1
	// run single-threaded. The result is identical for every value.
	Workers int
	// Batch is the number of implants each worker steps in tick lockstep
	// per stage invocation, over shared structure-of-arrays slabs; values
	// < 2 run the scalar per-implant path. Every deterministic output —
	// aggregate and per-implant digests included — is identical for every
	// value: batching interleaves implants at tick granularity, which
	// cannot reorder any single implant's per-stream random draws.
	Batch int
	// Ticks is the number of frames each implant transmits.
	Ticks int
	// Channels is the per-implant electrode count.
	Channels int
	// SampleRate is the per-channel sampling frequency.
	SampleRate units.Frequency
	// SampleBits is the ADC width d (1..16).
	SampleBits int
	// Modulation selects the uplink modem (OOK, BPSK or square QAM).
	Modulation comm.Modulation
	// EbN0dB is the AWGN operating point in dB.
	EbN0dB float64
	// Seed is the base seed all per-implant streams derive from.
	Seed int64
	// Observer optionally collects shard-labeled fleet metrics.
	Observer *obs.Observer
	// StageTiming optionally attributes per-stage wall time: when non-nil
	// every pipeline stage's Step is timed into the clock named after the
	// stage. The decorator is digest-neutral — it draws no randomness and
	// never touches the Tick — so every digest pin holds with timing
	// enabled. Process-local observability: not serialized in checkpoints,
	// ignored by config comparison.
	StageTiming *obs.StageTimer

	// Faults optionally injects the profile's deterministic failure modes
	// (electrode faults, brownouts, burst link) into every implant, each
	// seeded from its own derived stream. Nil, or a profile with nothing
	// enabled, leaves the pipeline byte-identical to the fault-free run.
	Faults *fault.Profile
	// ARQ bounds the link-layer retransmission loop; the zero value
	// disables recovery (each frame is transmitted exactly once).
	ARQ comm.ARQConfig
	// FECDepth enables Hamming(7,4) coding with the given interleaver
	// depth when > 0; zero transmits uncoded frames.
	FECDepth int
	// Concealment selects the wearable's gap-concealment strategy for
	// frames lost to drops, brownouts or exhausted retries.
	Concealment wearable.Concealment
	// Decode optionally closes the loop with a per-implant decoder fed
	// concealment-aware binned rates; the zero value stops the pipeline
	// at the wearable, byte-identical to the decoder-free run.
	Decode DecodeConfig
	// Drift optionally applies the multi-day nonstationarity model to
	// every implant's synthetic cortex: tuning rotation, gain and
	// baseline walks, unit turnover and loss, each implant on its own
	// derived StreamDrift stream. Nil, or a profile scaled to zero,
	// leaves every digest byte-identical to the drift-free run.
	Drift *drift.Profile
}

// DefaultConfig returns a small fleet at a noisy but workable operating
// point: 8 implants of 32 channels under 16-QAM at 12 dB Eb/N0.
func DefaultConfig() Config {
	return Config{
		Implants:   8,
		Workers:    4,
		Ticks:      128,
		Channels:   32,
		SampleRate: units.Kilohertz(2),
		SampleBits: 10,
		Modulation: comm.NewQAM(4),
		EbN0dB:     12,
		Seed:       1,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Implants < 1 {
		return errors.New("fleet: need at least one implant")
	}
	if c.Ticks < 1 {
		return errors.New("fleet: need at least one tick")
	}
	if c.Batch < 0 {
		return fmt.Errorf("fleet: negative batch size %d", c.Batch)
	}
	if c.Channels < 1 {
		return errors.New("fleet: need at least one channel")
	}
	if c.SampleRate.Hz() <= 0 {
		return errors.New("fleet: sample rate must be positive")
	}
	if c.SampleBits < 1 || c.SampleBits > 16 {
		return fmt.Errorf("fleet: sample bits %d outside 1..16", c.SampleBits)
	}
	if c.Modulation == nil {
		return errors.New("fleet: no modulation configured")
	}
	if _, err := comm.NewModem(c.Modulation); err != nil {
		return err
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return err
		}
	}
	if err := c.ARQ.Validate(); err != nil {
		return err
	}
	if c.FECDepth < 0 {
		return fmt.Errorf("fleet: negative FEC depth %d", c.FECDepth)
	}
	if err := c.Decode.Validate(); err != nil {
		return err
	}
	if c.Drift != nil {
		if err := c.Drift.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ImplantResult is the outcome of one implant's pipeline.
type ImplantResult struct {
	// Index is the implant's position in the fleet.
	Index int
	// Worker is the shard (worker goroutine) that ran the pipeline.
	Worker int
	// Frames is the number of frames transmitted.
	Frames int64
	// Accepted, Corrupt and LostSeq are the wearable receiver's frame
	// accounting after the noisy link.
	Accepted int64
	Corrupt  int64
	LostSeq  int64
	// BitsSent and BitErrors count the on-air bits and the demodulation
	// errors against the known transmitted stream.
	BitsSent  int64
	BitErrors int64
	// Blanked counts frames framed but never radiated (brownouts);
	// LinkDropped frames lost whole by the burst link across all attempts.
	Blanked     int64
	LinkDropped int64
	// Retransmits, Recovered and ARQFailed are the implant's link-layer
	// recovery accounting; RetransmitBits the on-air bits retries burned.
	Retransmits    int64
	Recovered      int64
	ARQFailed      int64
	RetransmitBits int64
	// FECCorrected counts bit errors fixed by the Hamming decoder.
	FECCorrected int64
	// Stale, Concealed and ConcealedSamples are the wearable's degradation
	// accounting: late duplicates discarded and gaps filled synthetically.
	Stale            int64
	Concealed        int64
	ConcealedSamples int64
	// FaultyChannels is the electrode count with an injected fault.
	FaultyChannels int
	// DataBits and DataBitErrors measure the post-FEC payload stream of
	// delivered frames — the residual (effective) error rate after coding.
	DataBits      int64
	DataBitErrors int64
	// Digest is an FNV-1a hash over every received frame byte, in tick
	// order — the byte-identity witness of the determinism tests.
	Digest uint64
	// DecodedSteps, DecodeConcealedBins and DecodeMACs are the decode
	// stage's accounting: decoder steps taken, bins containing at least
	// one concealed frame, and multiply-accumulates spent. All zero
	// without a decoder.
	DecodedSteps        int64
	DecodeConcealedBins int64
	DecodeMACs          int64
	// DecodeDigest is an FNV-1a hash over every decoded estimate, the
	// decode-path analogue of Digest (0 without a decoder).
	DecodeDigest uint64
	// DecodeSqErr and DecodeErrBins are the adapt stage's decode-error
	// accounting: the summed squared estimate error against the true
	// intent and the bins it was accumulated over. Zero unless the
	// decode config tracks or adapts.
	DecodeSqErr   float64
	DecodeErrBins int64
	// Refits counts decoder recalibrations applied; LastKL is the final
	// instability (KL divergence) reading. Zero without adaptation /
	// tracking respectively.
	Refits int64
	LastKL float64
	// DriftEpochs, DriftTurnovers and DriftUnitsLost are the drift
	// process's accounting: epoch boundaries crossed, units that swapped
	// tuning, and units currently dead. All zero without drift.
	DriftEpochs    int64
	DriftTurnovers int64
	DriftUnitsLost int64
	// Err is the first pipeline error, if any.
	Err error
}

// Aggregate is the fleet-wide summary, reduced in implant-index order.
type Aggregate struct {
	Implants int
	Workers  int
	Ticks    int

	Frames    int64
	Accepted  int64
	Corrupt   int64
	LostSeq   int64
	BitsSent  int64
	BitErrors int64

	// Fault, recovery and degradation accounting, summed over implants.
	Blanked          int64
	LinkDropped      int64
	Retransmits      int64
	Recovered        int64
	ARQFailed        int64
	RetransmitBits   int64
	FECCorrected     int64
	Stale            int64
	Concealed        int64
	ConcealedSamples int64
	FaultyChannels   int
	DataBits         int64
	DataBitErrors    int64

	// Decode-stage accounting, summed over implants (zero without a
	// decoder).
	DecodedSteps        int64
	DecodeConcealedBins int64
	DecodeMACs          int64

	// Adaptation and drift accounting, summed over implants; MaxLastKL
	// is the worst final instability reading across the fleet. All zero
	// without tracking/adaptation/drift.
	DecodeSqErr    float64
	DecodeErrBins  int64
	Refits         int64
	MaxLastKL      float64
	DriftEpochs    int64
	DriftTurnovers int64
	DriftUnitsLost int64

	// BER is the measured uplink bit error rate; FER the frame error rate
	// at the receiver.
	BER float64
	FER float64

	// Digest chains the per-implant digests in index order — equal
	// digests mean byte-identical fleet output. DecodeDigest chains the
	// per-implant decode digests the same way (0 without a decoder).
	Digest       uint64
	DecodeDigest uint64

	// Elapsed and FramesPerSecond describe this run's wall-clock
	// performance; they are the only non-deterministic fields.
	Elapsed         time.Duration
	FramesPerSecond float64

	// PerImplant holds the individual results, ordered by Index.
	PerImplant []ImplantResult
}

// ExpectedFrames returns the frames the fleet framed (radiated or not).
func (a *Aggregate) ExpectedFrames() int64 {
	return int64(a.Implants) * int64(a.Ticks)
}

// DeliveryRate returns the fraction of framed payloads the wearable
// accepted intact — the degradation curve's headline figure (0 when no
// frames were expected).
func (a *Aggregate) DeliveryRate() float64 {
	if a.ExpectedFrames() == 0 {
		return 0
	}
	return float64(a.Accepted) / float64(a.ExpectedFrames())
}

// ConcealedFraction returns concealed frames over frames presented to the
// decoder (accepted + concealed), 0 when nothing was presented.
func (a *Aggregate) ConcealedFraction() float64 {
	if total := a.Accepted + a.Concealed; total > 0 {
		return float64(a.Concealed) / float64(total)
	}
	return 0
}

// DecodeRMSE returns the root-mean-square decode error against the true
// intent, per dimension, over every tracked bin (0 when the adapt stage
// was off or saw no bins).
func (a *Aggregate) DecodeRMSE() float64 {
	if a.DecodeErrBins == 0 {
		return 0
	}
	return math.Sqrt(a.DecodeSqErr / float64(intentDims*a.DecodeErrBins))
}

// EffectiveBER returns the residual payload bit error rate after FEC, over
// delivered frames (0 when nothing was delivered).
func (a *Aggregate) EffectiveBER() float64 {
	if a.DataBits == 0 {
		return 0
	}
	return float64(a.DataBitErrors) / float64(a.DataBits)
}

// Run executes the fleet and reduces the per-implant results. The
// deterministic fields of the aggregate depend only on the Config's
// simulation parameters, never on Workers or scheduling.
func Run(cfg Config) (*Aggregate, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	workers := cfg.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > cfg.Implants {
		workers = cfg.Implants
	}

	results := make([]ImplantResult, cfg.Implants)
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Static round-robin sharding: implant i always belongs to
			// shard i mod workers, and each slot is written exactly once.
			if cfg.Batch > 1 {
				runBatchShard(cfg, w, workers, results)
				return
			}
			for i := w; i < cfg.Implants; i += workers {
				results[i] = runImplant(cfg, i, w)
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	agg := &Aggregate{
		Implants:   cfg.Implants,
		Workers:    workers,
		Ticks:      cfg.Ticks,
		Digest:     fnvOffset,
		Elapsed:    elapsed,
		PerImplant: results,
	}
	if cfg.Decode.Enabled() {
		agg.DecodeDigest = fnvOffset
	}
	for i := range results {
		r := &results[i]
		if r.Err != nil {
			return nil, fmt.Errorf("fleet: implant %d: %w", r.Index, r.Err)
		}
		agg.Frames += r.Frames
		agg.Accepted += r.Accepted
		agg.Corrupt += r.Corrupt
		agg.LostSeq += r.LostSeq
		agg.BitsSent += r.BitsSent
		agg.BitErrors += r.BitErrors
		agg.Blanked += r.Blanked
		agg.LinkDropped += r.LinkDropped
		agg.Retransmits += r.Retransmits
		agg.Recovered += r.Recovered
		agg.ARQFailed += r.ARQFailed
		agg.RetransmitBits += r.RetransmitBits
		agg.FECCorrected += r.FECCorrected
		agg.Stale += r.Stale
		agg.Concealed += r.Concealed
		agg.ConcealedSamples += r.ConcealedSamples
		agg.FaultyChannels += r.FaultyChannels
		agg.DataBits += r.DataBits
		agg.DataBitErrors += r.DataBitErrors
		agg.DecodedSteps += r.DecodedSteps
		agg.DecodeConcealedBins += r.DecodeConcealedBins
		agg.DecodeMACs += r.DecodeMACs
		agg.DecodeSqErr += r.DecodeSqErr
		agg.DecodeErrBins += r.DecodeErrBins
		agg.Refits += r.Refits
		if r.LastKL > agg.MaxLastKL {
			agg.MaxLastKL = r.LastKL
		}
		agg.DriftEpochs += r.DriftEpochs
		agg.DriftTurnovers += r.DriftTurnovers
		agg.DriftUnitsLost += r.DriftUnitsLost
		for shift := 56; shift >= 0; shift -= 8 {
			agg.Digest = (agg.Digest ^ (r.Digest >> shift & 0xFF)) * fnvPrime
		}
		if cfg.Decode.Enabled() {
			for shift := 56; shift >= 0; shift -= 8 {
				agg.DecodeDigest = (agg.DecodeDigest ^ (r.DecodeDigest >> shift & 0xFF)) * fnvPrime
			}
		}
	}
	if agg.BitsSent > 0 {
		agg.BER = float64(agg.BitErrors) / float64(agg.BitsSent)
	}
	if total := agg.Accepted + agg.Corrupt; total > 0 {
		agg.FER = float64(agg.Corrupt) / float64(total)
	}
	if s := elapsed.Seconds(); s > 0 {
		agg.FramesPerSecond = float64(agg.Frames) / s
	}
	return agg, nil
}

// runImplant executes one implant's full pipeline to Config.Ticks by
// stepping a Pipeline — the same dataflow the serve gateway drives
// incrementally — and flushes the shard-labeled metrics.
func runImplant(cfg Config, idx, worker int) ImplantResult {
	p, err := NewPipeline(cfg, idx, worker)
	if err != nil {
		return ImplantResult{Index: idx, Worker: worker, Digest: fnvOffset, Err: err}
	}
	defer p.Close()
	for t := 0; t < cfg.Ticks; t++ {
		if err := p.Step(); err != nil {
			res := p.Result()
			res.Err = err
			return res
		}
	}
	res := p.Result()
	flushObserver(cfg, res, worker)
	return res
}

// flushObserver publishes one implant's finished counters to the
// configured observer under its shard label. Called from both execution
// modes once an implant completes without error.
func flushObserver(cfg Config, res ImplantResult, worker int) {
	if cfg.Observer != nil {
		reg := cfg.Observer.Metrics
		lbl := obs.Label{Key: "shard", Value: strconv.Itoa(worker)}
		reg.Counter("fleet_frames_total", lbl).Add(res.Frames)
		reg.Counter("fleet_frames_accepted_total", lbl).Add(res.Accepted)
		reg.Counter("fleet_frames_corrupt_total", lbl).Add(res.Corrupt)
		reg.Counter("fleet_bits_sent_total", lbl).Add(res.BitsSent)
		reg.Counter("fleet_bit_errors_total", lbl).Add(res.BitErrors)
		reg.Counter("fleet_frames_blanked_total", lbl).Add(res.Blanked)
		reg.Counter("fleet_frames_link_dropped_total", lbl).Add(res.LinkDropped)
		reg.Counter("fleet_arq_retransmits_total", lbl).Add(res.Retransmits)
		reg.Counter("fleet_arq_recovered_total", lbl).Add(res.Recovered)
		reg.Counter("fleet_fec_corrected_bits_total", lbl).Add(res.FECCorrected)
		reg.Counter("fleet_frames_concealed_total", lbl).Add(res.Concealed)
		if cfg.Decode.Enabled() {
			reg.Counter("fleet_decode_steps_total", lbl).Add(res.DecodedSteps)
			reg.Counter("fleet_decode_concealed_bins_total", lbl).Add(res.DecodeConcealedBins)
			reg.Counter("fleet_decode_macs_total", lbl).Add(res.DecodeMACs)
			reg.Help("fleet_decode_steps_total", "Decoder steps taken by the shard's implants.")
			reg.Help("fleet_decode_concealed_bins_total", "Decoder bins containing at least one concealed frame.")
			reg.Help("fleet_decode_macs_total", "Multiply-accumulates spent by the shard's decoders.")
		}
		if cfg.Decode.Track || cfg.Decode.Adapt {
			reg.Counter("fleet_decode_refits_total", lbl).Add(res.Refits)
			reg.Gauge("fleet_decode_instability_kl", lbl).Set(res.LastKL)
			reg.Help("fleet_decode_refits_total", "Decoder recalibrations applied by the shard's implants.")
			reg.Help("fleet_decode_instability_kl", "Last instability (KL divergence) reading per shard.")
		}
		if cfg.Drift != nil && cfg.Drift.Enabled() {
			reg.Counter("fleet_drift_epochs_total", lbl).Add(res.DriftEpochs)
			reg.Counter("fleet_drift_turnovers_total", lbl).Add(res.DriftTurnovers)
			reg.Counter("fleet_drift_units_lost_total", lbl).Add(res.DriftUnitsLost)
			reg.Help("fleet_drift_epochs_total", "Drift epoch boundaries crossed by the shard's implants.")
			reg.Help("fleet_drift_turnovers_total", "Units that swapped tuning across the shard's implants.")
			reg.Help("fleet_drift_units_lost_total", "Units currently dead across the shard's implants.")
		}
		reg.Help("fleet_frames_total", "Frames transmitted by the shard's implants.")
		reg.Help("fleet_frames_accepted_total", "Frames accepted by the wearable receiver.")
		reg.Help("fleet_frames_corrupt_total", "Frames rejected as corrupt after the noisy link.")
		reg.Help("fleet_bits_sent_total", "On-air bits transmitted (including symbol padding).")
		reg.Help("fleet_bit_errors_total", "Demodulated bits differing from the transmitted stream.")
		reg.Help("fleet_frames_blanked_total", "Frames framed but never radiated (brownouts).")
		reg.Help("fleet_frames_link_dropped_total", "Frames lost whole by the burst link.")
		reg.Help("fleet_arq_retransmits_total", "Link-layer retransmission attempts.")
		reg.Help("fleet_arq_recovered_total", "Frames delivered only via retransmission.")
		reg.Help("fleet_fec_corrected_bits_total", "Bit errors fixed by the Hamming decoder.")
		reg.Help("fleet_frames_concealed_total", "Gap frames synthesized by the wearable.")
	}
}
