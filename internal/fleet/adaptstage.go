package fleet

import (
	"errors"
	"fmt"
	"math"

	"mindful/internal/decode"
	"mindful/internal/detrand"
	"mindful/internal/drift"
)

// adaptStage closes the stability loop: it watches every decoded bin,
// scores the estimate against the intent the generator was actually
// driven with, feeds the binned rates to the instability meter
// (KL divergence of recent activity against the frozen calibration-day
// reference), and — when adaptation is on — feeds (rates, intended
// kinematics) supervision into the decoder's Recalibrator so the model
// tracks the drifting substrate.
//
// The supervision labels are the true intent plus an optional Gaussian
// jitter modelling imperfect intent inference; the two jitter variates
// are drawn per bin from the implant's dedicated StreamRefit stream
// regardless of the jitter width, so the refit history is a pure
// function of (seed, index) and jitter ladders share one random history.
//
// The stage is observation-only with respect to the frame path: it
// never touches the Tick record, draws nothing from the other streams,
// and leaves the frame digest byte-identical to a run without it.
type adaptStage struct {
	phase    float64
	channels int

	meter *drift.Meter
	recal *decode.Recalibrator // nil when tracking only
	rng   *detrand.Rand        // nil when tracking only

	jitter    float64
	intentBuf []float64

	sqErr   float64
	errBins int64
	lastKL  float64
	klValid bool
	err     error

	onRefit func(tick int, refits int64, kl float64)
}

// newAdaptStage builds implant idx's tracking/adaptation stage over the
// decode stage's decoder. cfg.Decode must be enabled with Track or
// Adapt set.
func newAdaptStage(cfg Config, idx int, d *decodeStage) (*adaptStage, error) {
	dc := cfg.Decode.withDefaults()
	a := &adaptStage{
		phase:     2 * math.Pi * 0.381966 * float64(idx),
		channels:  cfg.Channels,
		jitter:    dc.RefitJitter,
		intentBuf: make([]float64, intentDims),
	}
	m, err := drift.NewMeter(cfg.Channels, dc.MeterRef, dc.MeterWin)
	if err != nil {
		return nil, err
	}
	a.meter = m
	if dc.Adapt {
		r, err := decode.NewRecalibrator(d.dec, decode.RecalConfig{
			Buffer: dc.RefitBuffer,
			Every:  dc.RefitEvery,
			Blend:  dc.RefitBlend,
		})
		if err != nil {
			return nil, err
		}
		a.recal = r
		a.rng = detrand.New(DeriveSeed(cfg.Seed, uint64(idx), StreamRefit))
	}
	return a, nil
}

// observeBin is the decode stage's onBin hook: one call per decoder
// step, with the stage-owned observation and estimate buffers.
func (a *adaptStage) observeBin(tick int, obs, estimate []float64, concealed int) {
	if a.err != nil {
		return
	}
	ix, iy := intentAt(a.phase, tick)
	dx, dy := estimate[0]-ix, estimate[1]-iy
	a.sqErr += dx*dx + dy*dy
	a.errBins++

	if err := a.meter.Observe(obs); err != nil {
		a.err = fmt.Errorf("fleet: instability meter: %w", err)
		return
	}
	if a.meter.Ready() {
		// A degenerate window (flat-lined rates) keeps the last valid
		// reading rather than failing the run; any other error is a bug.
		switch kl, err := a.meter.KL(); {
		case err == nil:
			a.lastKL, a.klValid = kl, true
		case !errors.Is(err, drift.ErrDegenerate):
			a.err = fmt.Errorf("fleet: instability meter: %w", err)
			return
		}
	}

	if a.recal == nil {
		return
	}
	// Fixed draw count per bin: two jitter variates, used or not.
	jx := a.rng.NormFloat64()
	jy := a.rng.NormFloat64()
	a.intentBuf[0] = ix + a.jitter*jx
	a.intentBuf[1] = iy + a.jitter*jy
	refit, err := a.recal.Feed(obs, a.intentBuf)
	if err != nil {
		a.err = fmt.Errorf("fleet: recalibration: %w", err)
		return
	}
	if refit && a.onRefit != nil {
		a.onRefit(tick, a.recal.Refits(), a.lastKL)
	}
}

func (a *adaptStage) Name() string { return "adapt" }

// Step only surfaces errors: the stage's work happens inside the decode
// stage's flush, via observeBin, so the supervision is recorded in the
// same call order for any worker count.
func (a *adaptStage) Step(tk *Tick) error { return a.err }

func (a *adaptStage) refits() int64 {
	if a.recal == nil {
		return 0
	}
	return a.recal.Refits()
}

// AdaptState is the adapt stage's serializable mid-run state: the
// instability meter, the recalibration buffer and mutated decoder model,
// the jitter stream position, and the error accounting. Recal, Model and
// RNG are nil/zero when the stage only tracks.
type AdaptState struct {
	Meter drift.MeterState
	Recal *decode.RecalState
	Model *decode.ModelState
	RNG   detrand.State

	SqErr   float64
	ErrBins int64
	LastKL  float64
	KLValid bool
}

func (a *adaptStage) Snapshot(st *PipelineState) {
	as := &AdaptState{
		Meter:   a.meter.Snapshot(),
		SqErr:   a.sqErr,
		ErrBins: a.errBins,
		LastKL:  a.lastKL,
		KLValid: a.klValid,
	}
	if a.recal != nil {
		rs := a.recal.State()
		ms := a.recal.ModelState()
		as.Recal, as.Model = &rs, &ms
		as.RNG = a.rng.State()
	}
	st.Adapt = as
}

func (a *adaptStage) Restore(cfg Config, st *PipelineState) error {
	as := st.Adapt
	if as == nil {
		return errors.New("fleet: checkpoint carries no adapt state but config enables tracking")
	}
	dc := cfg.Decode.withDefaults()
	m, err := drift.RestoreMeter(a.channels, dc.MeterRef, dc.MeterWin, as.Meter)
	if err != nil {
		return err
	}
	a.meter = m
	if (a.recal != nil) != (as.Recal != nil) {
		return errors.New("fleet: recalibration state does not match config")
	}
	if a.recal != nil {
		if as.Model == nil {
			return errors.New("fleet: checkpoint carries no decoder model for adaptive session")
		}
		if err := a.recal.RestoreState(*as.Recal); err != nil {
			return err
		}
		if err := a.recal.RestoreModel(*as.Model); err != nil {
			return err
		}
		rng, err := detrand.RestoreInto(a.rng, as.RNG)
		if err != nil {
			return fmt.Errorf("fleet: refit stream: %w", err)
		}
		a.rng = rng
	}
	if as.ErrBins < 0 {
		return fmt.Errorf("fleet: negative adapt error bins %d", as.ErrBins)
	}
	for _, v := range [...]float64{as.SqErr, as.LastKL} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("fleet: non-finite adapt accounting %v", v)
		}
	}
	a.sqErr, a.errBins = as.SqErr, as.ErrBins
	a.lastKL, a.klValid = as.LastKL, as.KLValid
	return nil
}

func (a *adaptStage) Close() {}
