// Package optimize evaluates computation-centric implanted SoCs
// (Section 5.3) and the combined optimization strategies of Section 6:
// DNN partitioning (layer reduction), channel dropout, technology scaling,
// and channel density.
//
// The system model prices one design point as
//
//	P_SoC(n) = P_sensing(n) + P_comp(DNN) + P_comm(n_out)
//
// with sensing from the SoC baseline (Eq. 5), computation from the
// sched lower bound (Eq. 13), and communication of the DNN output at the
// design's calibrated energy per bit. Feasibility compares against
// P_budget(n) (Eq. 3) under the frozen-non-sensing-area assumption.
package optimize

import (
	"fmt"

	"mindful/internal/dnnmodel"
	"mindful/internal/mac"
	"mindful/internal/mathx"
	"mindful/internal/sched"
	"mindful/internal/soc"
	"mindful/internal/thermal"
	"mindful/internal/units"
)

// Evaluator prices computation-centric design points for one SoC and one
// DNN family.
type Evaluator struct {
	Baseline soc.Baseline
	Template dnnmodel.Template
	// Node is the synthesis technology for the MAC array (NanGate45 in
	// Section 5.3; Node12 with the Tech optimization).
	Node mac.TechNode
	// Partitioned applies Section 6.1's layer reduction: only the prefix
	// up to the earliest transmittable cut runs on the implant.
	Partitioned bool
	// SensingAreaScale scales the per-channel sensing area (the Dense
	// optimization halves it, which also shrinks the power budget).
	SensingAreaScale float64
}

// NewEvaluator returns the Section 5.3 baseline evaluator (45 nm, full
// model on implant, nominal density).
func NewEvaluator(b soc.Baseline, t dnnmodel.Template) Evaluator {
	return Evaluator{Baseline: b, Template: t, Node: mac.NanGate45, SensingAreaScale: 1}
}

// Assessment is one priced design point.
type Assessment struct {
	Channels int
	// Model is the full application DNN at this channel count; OnImplant
	// is the part that runs on the implant (equal to Model unless
	// partitioned).
	Model     dnnmodel.Model
	OnImplant dnnmodel.Model
	// Cut is the partition index (−1 when the full model is on-implant).
	Cut int
	// OutValues is the number of values transmitted per inference.
	OutValues int

	Sched   sched.Result
	Sensing units.Power
	Comp    units.Power
	Comm    units.Power
	Budget  units.Power
}

// Total returns P_SoC.
func (a Assessment) Total() units.Power { return a.Sensing + a.Comp + a.Comm }

// Feasible reports whether the point is schedulable and within budget.
func (a Assessment) Feasible() bool {
	return a.Sched.Feasible && a.Total() <= a.Budget
}

// Utilization returns P_SoC / P_budget.
func (a Assessment) Utilization() float64 {
	if a.Budget <= 0 {
		return 0
	}
	return a.Total().Watts() / a.Budget.Watts()
}

func (e Evaluator) validate() error {
	if e.SensingAreaScale <= 0 {
		return fmt.Errorf("optimize: non-positive sensing area scale %g", e.SensingAreaScale)
	}
	return nil
}

// budgetAt returns P_budget(n) with the evaluator's sensing-area scale.
func (e Evaluator) budgetAt(n int) units.Power {
	area := units.Area(e.Baseline.SensingAreaAt(n).M2()*e.SensingAreaScale + e.Baseline.NonSensingArea.M2())
	return thermal.Budget(area)
}

// commPower prices transmitting outValues per inference at the design's
// calibrated Eb: T = outValues · d · f_app, where f_app is the
// application's inference rate (Eq. 8).
func (e Evaluator) commPower(outValues int, inferenceRate units.Frequency) units.Power {
	rate := units.BitsPerSecond(float64(outValues) * soc.SampleBits * inferenceRate.Hz())
	return rate.TimesEnergyPerBit(e.Baseline.EnergyPerBit())
}

// Assess prices the design at n NI channels with the DNN scaled for
// modelChannels active channels (modelChannels = n unless channel dropout
// is applied).
func (e Evaluator) Assess(n, modelChannels int) (Assessment, error) {
	if err := e.validate(); err != nil {
		return Assessment{}, err
	}
	if n <= 0 || modelChannels <= 0 || modelChannels > n {
		return Assessment{}, fmt.Errorf("optimize: invalid channel counts n=%d model=%d", n, modelChannels)
	}
	full, err := e.Template.Scale(modelChannels)
	if err != nil {
		return Assessment{}, err
	}
	onImplant := full
	cut := -1
	outValues := full.OutputValues()
	if e.Partitioned {
		// Section 6.1: cut at the earliest layer whose output volume fits
		// the transmission budget of a 1024-channel comm-centric design.
		if c, ok := full.Partition(soc.StandardChannels); ok {
			prefix, err := full.Prefix(c)
			if err != nil {
				return Assessment{}, err
			}
			onImplant, cut, outValues = prefix, c, full.Layers[c].OutputValues()
		}
	}
	// The real-time deadline is set by the application's own sampling
	// rate (one inference per application sample period). Using the
	// workload rate rather than each SoC's NI rate reproduces the
	// paper's reported feasibility pattern — e.g. Muller (1 kHz NI) is
	// infeasible for the MLP while Yang (20 kHz NI) is not.
	deadline := sched.DeadlineFor(full.SampleRate)
	res, err := sched.Best(onImplant, deadline, e.Node)
	if err != nil {
		return Assessment{}, err
	}
	return Assessment{
		Channels:  n,
		Model:     full,
		OnImplant: onImplant,
		Cut:       cut,
		OutValues: outValues,
		Sched:     res,
		Sensing:   e.Baseline.SensingPowerAt(n),
		Comp:      res.Power,
		Comm:      e.commPower(outValues, full.SampleRate),
		Budget:    e.budgetAt(n),
	}, nil
}

// MaxChannels returns the largest n in [lo, hi] at which the full-rate
// design (modelChannels = n) is feasible. ok is false when even lo fails.
func (e Evaluator) MaxChannels(lo, hi int) (int, bool, error) {
	var firstErr error
	n, ok := mathx.MaxIntWhere(lo, hi, func(n int) bool {
		a, err := e.Assess(n, n)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return false
		}
		return a.Feasible()
	})
	return n, ok, firstErr
}

// MaxActiveChannels returns the Section 6.2 channel-dropout solution: the
// largest n′ ≤ n for which the DNN scaled to n′ active channels fits the
// budget at a full NI of n channels. ok is false when not even n′ = 1 fits.
func (e Evaluator) MaxActiveChannels(n int) (int, bool, error) {
	var firstErr error
	np, ok := mathx.MaxIntWhere(1, n, func(np int) bool {
		a, err := e.Assess(n, np)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return false
		}
		return a.Feasible()
	})
	return np, ok, firstErr
}

// Step is one Section 6.2 optimization bundle (each includes the previous).
type Step int

// Optimization steps in the paper's order.
const (
	// ChDr: channel dropout only.
	ChDr Step = iota
	// La: adds layer reduction (DNN partitioning).
	La
	// Tech: adds 12 nm technology scaling for the MAC array.
	Tech
	// Dense: adds 2× channel density (halves sensing area and budget).
	Dense
)

// String names the cumulative step as in Fig. 12.
func (s Step) String() string {
	switch s {
	case ChDr:
		return "ChDr"
	case La:
		return "La+ChDr"
	case Tech:
		return "La+ChDr+Tech"
	case Dense:
		return "La+ChDr+Tech+Dense"
	default:
		return fmt.Sprintf("Step(%d)", int(s))
	}
}

// Steps lists the cumulative optimization bundles in order.
func Steps() []Step { return []Step{ChDr, La, Tech, Dense} }

// Apply configures an evaluator for the cumulative step.
func (e Evaluator) Apply(s Step) Evaluator {
	out := e
	out.Partitioned = s >= La
	if s >= Tech {
		out.Node = mac.Node12
	} else {
		out.Node = mac.NanGate45
	}
	if s >= Dense {
		out.SensingAreaScale = 0.5
	} else {
		out.SensingAreaScale = 1
	}
	return out
}

// SizeResult is one Fig. 12 bar: the feasible model size after an
// optimization bundle.
type SizeResult struct {
	Step Step
	// ActiveChannels is the dropout solution n′.
	ActiveChannels int
	// ModelFraction is weights(n′)/weights(n) — Fig. 12's normalized
	// model size. Zero when nothing fits.
	ModelFraction float64
}

// ModelSizeAfter runs the cumulative optimization bundles at NI channel
// count n and returns one SizeResult per step.
func (e Evaluator) ModelSizeAfter(n int) ([]SizeResult, error) {
	fullAtN, err := e.Template.Scale(n)
	if err != nil {
		return nil, err
	}
	ref := float64(fullAtN.TotalWeights())
	out := make([]SizeResult, 0, 4)
	for _, s := range Steps() {
		ev := e.Apply(s)
		np, ok, err := ev.MaxActiveChannels(n)
		if err != nil {
			return nil, err
		}
		r := SizeResult{Step: s}
		if ok {
			m, err := e.Template.Scale(np)
			if err != nil {
				return nil, err
			}
			r.ActiveChannels = np
			r.ModelFraction = float64(m.TotalWeights()) / ref
		}
		out = append(out, r)
	}
	return out, nil
}
