package optimize

import (
	"math"
	"testing"
	"testing/quick"

	"mindful/internal/dnnmodel"
	"mindful/internal/mac"
	"mindful/internal/soc"
)

func baseline(t *testing.T, num int) soc.Baseline {
	t.Helper()
	d, ok := soc.ByNum(num)
	if !ok {
		t.Fatalf("SoC %d missing", num)
	}
	return d.Baseline()
}

func TestAssessmentDecomposes(t *testing.T) {
	ev := NewEvaluator(baseline(t, 1), dnnmodel.MLP())
	a, err := ev.Assess(1024, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.Total().Watts(); math.Abs(got-(a.Sensing+a.Comp+a.Comm).Watts()) > 1e-15 {
		t.Errorf("total does not decompose")
	}
	if a.Cut != -1 || a.OnImplant.TotalMACs() != a.Model.TotalMACs() {
		t.Errorf("unpartitioned assessment should keep the full model on-implant")
	}
	if a.OutValues != 40 {
		t.Errorf("out values = %d, want 40 labels", a.OutValues)
	}
	if !a.Sched.Feasible {
		t.Errorf("MLP@1024 must be schedulable")
	}
}

func TestPaperFeasibilitySetsAt1024(t *testing.T) {
	// Section 5.3's headline results. MLP: only SoCs 3–5 cannot integrate
	// it at 1024 channels. DN-CNN: only SoCs 1 and 2 can.
	mlpInfeasible := map[int]bool{3: true, 4: true, 5: true}
	cnnFeasible := map[int]bool{1: true, 2: true}
	for _, d := range soc.WirelessDesigns() {
		evM := NewEvaluator(d.Baseline(), dnnmodel.MLP())
		am, err := evM.Assess(1024, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if am.Feasible() == mlpInfeasible[d.Num] {
			t.Errorf("%s MLP feasibility = %v, paper says infeasible=%v (util %.2f)",
				d, am.Feasible(), mlpInfeasible[d.Num], am.Utilization())
		}
		evC := NewEvaluator(d.Baseline(), dnnmodel.DNCNN())
		ac, err := evC.Assess(1024, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if ac.Feasible() != cnnFeasible[d.Num] {
			t.Errorf("%s DN-CNN feasibility = %v, paper says %v (util %.2f)",
				d, ac.Feasible(), cnnFeasible[d.Num], ac.Utilization())
		}
	}
}

func TestDNCNNFiveTimesOverBudget(t *testing.T) {
	// "SoCs 4 and 5 exceed the power budget by a factor of 5× and fall
	// outside the bounds of the plot."
	for _, num := range []int{4, 5} {
		ev := NewEvaluator(baseline(t, num), dnnmodel.DNCNN())
		a, err := ev.Assess(1024, 1024)
		if err != nil {
			t.Fatal(err)
		}
		if u := a.Utilization(); u < 4 || u > 7 {
			t.Errorf("SoC %d DN-CNN utilization = %.1f, paper says ≈5×", num, u)
		}
	}
}

func TestAverageCrossovers(t *testing.T) {
	// "The average maximum channel count appears at n ≈ 1800 for MLP and
	// n ≈ 1400 for DN-CNN" among the SoCs that accommodate the DNNs at
	// 1024 channels.
	avgMax := func(tmpl dnnmodel.Template) float64 {
		var sum, cnt float64
		for _, d := range soc.WirelessDesigns() {
			ev := NewEvaluator(d.Baseline(), tmpl)
			at1024, err := ev.Assess(1024, 1024)
			if err != nil {
				t.Fatal(err)
			}
			if !at1024.Feasible() {
				continue
			}
			max, ok, err := ev.MaxChannels(1024, 16384)
			if err != nil || !ok {
				t.Fatalf("%s: max channels failed: %v", d, err)
			}
			sum += float64(max)
			cnt++
		}
		return sum / cnt
	}
	if got := avgMax(dnnmodel.MLP()); got < 1500 || got > 2200 {
		t.Errorf("MLP average crossover = %.0f, paper says ≈1800", got)
	}
	if got := avgMax(dnnmodel.DNCNN()); got < 1100 || got > 1700 {
		t.Errorf("DN-CNN average crossover = %.0f, paper says ≈1400", got)
	}
}

func TestPartitioningGains(t *testing.T) {
	// Section 6.1: layer reduction buys the MLP ≈20% more channels on
	// average; the DN-CNN gains nothing.
	gain := func(tmpl dnnmodel.Template) float64 {
		var sum, cnt float64
		for _, d := range soc.WirelessDesigns() {
			ev := NewEvaluator(d.Baseline(), tmpl)
			full, ok, err := ev.MaxChannels(128, 16384)
			if err != nil || !ok {
				t.Fatalf("%s: %v", d, err)
			}
			evP := ev
			evP.Partitioned = true
			part, ok, err := evP.MaxChannels(128, 16384)
			if err != nil || !ok {
				t.Fatalf("%s: %v", d, err)
			}
			sum += float64(part)/float64(full) - 1
			cnt++
		}
		return sum / cnt
	}
	mlpGain := gain(dnnmodel.MLP())
	if mlpGain < 0.10 || mlpGain > 0.35 {
		t.Errorf("MLP partition gain = %.0f%%, paper says ≈20%%", mlpGain*100)
	}
	cnnGain := gain(dnnmodel.DNCNN())
	if math.Abs(cnnGain) > 0.02 {
		t.Errorf("DN-CNN partition gain = %.0f%%, paper says ≈0%%", cnnGain*100)
	}
}

func TestPartitionNeverHurtsProperty(t *testing.T) {
	// The partitioned max channel count can never be *worse* than the
	// full-model one for the MLP: the evaluator only cuts when a cut
	// exists, and a cut strictly reduces on-implant compute at bounded
	// comm cost... unless comm dominates. We assert the aggregate
	// property on the paper's SoC set (it holds there).
	for _, d := range soc.WirelessDesigns() {
		ev := NewEvaluator(d.Baseline(), dnnmodel.MLP())
		full, _, err := ev.MaxChannels(128, 16384)
		if err != nil {
			t.Fatal(err)
		}
		evP := ev
		evP.Partitioned = true
		part, _, err := evP.MaxChannels(128, 16384)
		if err != nil {
			t.Fatal(err)
		}
		if part < full-16 { // allow rounding slack at the cut boundary
			t.Errorf("%s: partitioning reduced max channels %d → %d", d, full, part)
		}
	}
}

func TestStepsConfiguration(t *testing.T) {
	ev := NewEvaluator(baseline(t, 1), dnnmodel.MLP())
	if got := ev.Apply(ChDr); got.Partitioned || got.Node != mac.NanGate45 || got.SensingAreaScale != 1 {
		t.Errorf("ChDr config wrong: %+v", got)
	}
	if got := ev.Apply(La); !got.Partitioned || got.Node != mac.NanGate45 {
		t.Errorf("La config wrong: %+v", got)
	}
	if got := ev.Apply(Tech); !got.Partitioned || got.Node != mac.Node12 || got.SensingAreaScale != 1 {
		t.Errorf("Tech config wrong: %+v", got)
	}
	if got := ev.Apply(Dense); got.SensingAreaScale != 0.5 || got.Node != mac.Node12 {
		t.Errorf("Dense config wrong: %+v", got)
	}
	names := []string{"ChDr", "La+ChDr", "La+ChDr+Tech", "La+ChDr+Tech+Dense"}
	for i, s := range Steps() {
		if s.String() != names[i] {
			t.Errorf("step %d name = %q", i, s.String())
		}
	}
	if Step(9).String() != "Step(9)" {
		t.Errorf("unknown step string")
	}
}

func TestModelSizeAfterShape(t *testing.T) {
	// Fig. 12's qualitative structure, averaged over SoCs 1–8:
	//  - feasible model size shrinks as n grows;
	//  - La ≥ ChDr; Tech ≥ La; Dense ≤ Tech.
	avg := func(n int) [4]float64 {
		var sums [4]float64
		for _, d := range soc.WirelessDesigns() {
			ev := NewEvaluator(d.Baseline(), dnnmodel.MLP())
			rs, err := ev.ModelSizeAfter(n)
			if err != nil {
				t.Fatal(err)
			}
			if len(rs) != 4 {
				t.Fatalf("got %d steps", len(rs))
			}
			for i, r := range rs {
				if r.ModelFraction < 0 || r.ModelFraction > 1.0001 {
					t.Fatalf("fraction out of range: %+v", r)
				}
				sums[i] += r.ModelFraction
			}
		}
		for i := range sums {
			sums[i] /= 8
		}
		return sums
	}
	a2048 := avg(2048)
	a4096 := avg(4096)
	a8192 := avg(8192)
	for i := 0; i < 4; i++ {
		if !(a2048[i] > a4096[i] && a4096[i] > a8192[i]) {
			t.Errorf("step %d fractions not decreasing with n: %v %v %v", i, a2048[i], a4096[i], a8192[i])
		}
	}
	for _, a := range [][4]float64{a2048, a4096, a8192} {
		if a[1] < a[0]-1e-9 {
			t.Errorf("La reduced feasible size: %v", a)
		}
		if a[2] < a[1]-1e-9 {
			t.Errorf("Tech reduced feasible size: %v", a)
		}
		if a[3] > a[2]+1e-9 {
			t.Errorf("Dense increased feasible size: %v", a)
		}
	}
	// Magnitude anchors (paper: 32% at 2048, 6% at 4096, 2% at 8192 for
	// ChDr; our calibrated model lands in the same decade).
	if a2048[0] < 0.2 || a2048[0] > 0.8 {
		t.Errorf("ChDr@2048 = %v, want ≈0.3–0.6", a2048[0])
	}
	if a8192[0] > 0.15 {
		t.Errorf("ChDr@8192 = %v, want ≤0.15", a8192[0])
	}
}

func TestMaxActiveChannelsMonotoneProperty(t *testing.T) {
	ev := NewEvaluator(baseline(t, 1), dnnmodel.MLP())
	f := func(raw uint16) bool {
		n := int(raw)%8192 + 1024
		np, ok, err := ev.MaxActiveChannels(n)
		if err != nil || !ok {
			return false
		}
		if np > n {
			return false
		}
		// The dropout solution must itself be feasible and n′+1 not.
		a, err := ev.Assess(n, np)
		if err != nil || !a.Feasible() {
			return false
		}
		if np < n {
			a2, err := ev.Assess(n, np+1)
			if err != nil || a2.Feasible() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestAssessValidation(t *testing.T) {
	ev := NewEvaluator(baseline(t, 1), dnnmodel.MLP())
	if _, err := ev.Assess(0, 1); err == nil {
		t.Errorf("zero channels should fail")
	}
	if _, err := ev.Assess(1024, 0); err == nil {
		t.Errorf("zero model channels should fail")
	}
	if _, err := ev.Assess(1024, 2048); err == nil {
		t.Errorf("model channels above n should fail")
	}
	bad := ev
	bad.SensingAreaScale = 0
	if _, err := bad.Assess(1024, 1024); err == nil {
		t.Errorf("zero area scale should fail")
	}
}

func TestUtilizationZeroBudget(t *testing.T) {
	a := Assessment{}
	if a.Utilization() != 0 {
		t.Errorf("zero-budget utilization should be 0")
	}
}
