package soc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRoadmapDoubling(t *testing.T) {
	r := DefaultRoadmap()
	// One doubling period after the anchor: 2048 channels.
	n, err := r.ChannelsAt(2032)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2048 {
		t.Errorf("channels at 2032 = %d, want 2048", n)
	}
	// Three periods: 8192 in 2046 — the top of the paper's sweeps.
	n, err = r.ChannelsAt(2046)
	if err != nil {
		t.Fatal(err)
	}
	if n != 8192 {
		t.Errorf("channels at 2046 = %d, want 8192", n)
	}
	// Backwards too: 512 channels seven years before the anchor.
	n, err = r.ChannelsAt(2018)
	if err != nil {
		t.Fatal(err)
	}
	if n != 512 {
		t.Errorf("channels at 2018 = %d, want 512", n)
	}
}

func TestRoadmapYearFor(t *testing.T) {
	r := DefaultRoadmap()
	y, err := r.YearFor(2048)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-2032) > 1e-9 {
		t.Errorf("year for 2048 = %v, want 2032", y)
	}
	// The MLP crossover (≈1833 channels) lands in the early 2030s: the
	// paper's "short-term goal" framing in calendar form.
	y, err = r.YearFor(1833)
	if err != nil {
		t.Fatal(err)
	}
	if y < 2030 || y > 2032 {
		t.Errorf("year for the MLP crossover = %v, want early 2030s", y)
	}
	h, err := r.Horizon(1833)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(h-(y-2025)) > 1e-12 {
		t.Errorf("horizon inconsistent with YearFor")
	}
}

func TestRoadmapRoundTripProperty(t *testing.T) {
	r := DefaultRoadmap()
	f := func(raw uint16) bool {
		n := int(raw)%100000 + 64
		y, err := r.YearFor(n)
		if err != nil {
			return false
		}
		back, err := r.ChannelsAt(int(math.Round(y)))
		if err != nil {
			return false
		}
		// Rounding the year loses up to half a year: allow the matching
		// channel drift (2^(0.5/7) ≈ 5%).
		return math.Abs(float64(back-n)) <= 0.06*float64(n)+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoadmapValidation(t *testing.T) {
	bad := Roadmap{BaseYear: 2025, BaseChannels: 0, DoublingYears: 7}
	if _, err := bad.ChannelsAt(2030); err == nil {
		t.Errorf("zero base channels should fail")
	}
	bad = Roadmap{BaseYear: 2025, BaseChannels: 1024, DoublingYears: 0}
	if _, err := bad.YearFor(2048); err == nil {
		t.Errorf("zero doubling period should fail")
	}
	r := DefaultRoadmap()
	if _, err := r.YearFor(0); err == nil {
		t.Errorf("zero channels should fail")
	}
	if _, err := r.ChannelsAt(2500); err == nil {
		t.Errorf("absurd projection should overflow-guard")
	}
	// Far past clamps to one channel.
	if n, err := r.ChannelsAt(1800); err != nil || n != 1 {
		t.Errorf("deep past = %d, %v", n, err)
	}
}
