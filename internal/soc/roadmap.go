package soc

import (
	"fmt"
	"math"
)

// Roadmap is the neural-interface scaling law the paper builds on: channel
// counts double roughly every seven years (Stevenson & Kording, the
// paper's reference [113]). It converts between calendar years and channel
// counts so design-space results ("feasible up to 1833 channels") can be
// read as time horizons ("mid-2030s").
type Roadmap struct {
	// BaseYear anchors the law at BaseChannels.
	BaseYear int
	// BaseChannels is the standard at BaseYear.
	BaseChannels int
	// DoublingYears is the doubling period.
	DoublingYears float64
}

// DefaultRoadmap anchors 1024 channels at 2025 with the paper's
// seven-year doubling.
func DefaultRoadmap() Roadmap {
	return Roadmap{BaseYear: 2025, BaseChannels: StandardChannels, DoublingYears: 7}
}

// Validate checks the law's parameters.
func (r Roadmap) Validate() error {
	if r.BaseChannels <= 0 {
		return fmt.Errorf("soc: roadmap base channels %d must be positive", r.BaseChannels)
	}
	if r.DoublingYears <= 0 {
		return fmt.Errorf("soc: roadmap doubling period %g must be positive", r.DoublingYears)
	}
	return nil
}

// ChannelsAt projects the channel standard in a given year.
func (r Roadmap) ChannelsAt(year int) (int, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	exp := float64(year-r.BaseYear) / r.DoublingYears
	n := float64(r.BaseChannels) * math.Pow(2, exp)
	if n < 1 {
		return 1, nil
	}
	if n > math.MaxInt32 {
		return 0, fmt.Errorf("soc: projection overflows at year %d", year)
	}
	return int(math.Round(n)), nil
}

// YearFor returns the (possibly fractional) year at which the standard
// reaches n channels.
func (r Roadmap) YearFor(n int) (float64, error) {
	if err := r.Validate(); err != nil {
		return 0, err
	}
	if n <= 0 {
		return 0, fmt.Errorf("soc: channel count %d must be positive", n)
	}
	return float64(r.BaseYear) + r.DoublingYears*math.Log2(float64(n)/float64(r.BaseChannels)), nil
}

// Horizon translates a feasibility limit into a time budget: how many
// years after BaseYear the standard overtakes maxChannels. Zero or
// negative means the limit is already behind the standard.
func (r Roadmap) Horizon(maxChannels int) (float64, error) {
	y, err := r.YearFor(maxChannels)
	if err != nil {
		return 0, err
	}
	return y - float64(r.BaseYear), nil
}
