package soc

import (
	"math"
	"testing"
	"testing/quick"

	"mindful/internal/units"
)

func TestTable1Shape(t *testing.T) {
	designs := Table1()
	if len(designs) != 11 {
		t.Fatalf("Table 1 has %d designs, want 11", len(designs))
	}
	for i, d := range designs {
		if d.Num != i+1 {
			t.Errorf("design %d numbered %d", i, d.Num)
		}
		if d.Channels <= 0 || d.Area <= 0 || d.Density <= 0 || d.SampleRate <= 0 {
			t.Errorf("%s has degenerate parameters", d)
		}
		if d.SensingAreaFrac != 0.4 || d.SensingPowerFrac != 0.5 {
			t.Errorf("%s default split not applied", d)
		}
	}
	if n := len(WirelessDesigns()); n != 8 {
		t.Errorf("wireless designs = %d, want 8 (SoCs 1–8)", n)
	}
	if _, ok := ByNum(3); !ok {
		t.Errorf("ByNum(3) failed")
	}
	if _, ok := ByNum(12); ok {
		t.Errorf("ByNum(12) should fail")
	}
}

func TestKnownPowers(t *testing.T) {
	// BISC: 27 mW/cm² × 1.44 cm² = 38.88 mW.
	bisc, _ := ByNum(1)
	if got := bisc.Power().Milliwatts(); math.Abs(got-38.88) > 1e-9 {
		t.Errorf("BISC power = %v mW, want 38.88", got)
	}
	// HALO: 1500 mW/cm² × 0.01 cm² = 15 mW (the published HALO power).
	halo, _ := ByNum(8)
	if got := halo.Power().Milliwatts(); math.Abs(got-15) > 1e-9 {
		t.Errorf("HALO power = %v mW, want 15", got)
	}
}

func TestEq1PaperCrossChecks(t *testing.T) {
	// The two derived statements in Section 4.1 that pin down the Eq. (1)
	// interpretation.
	muller, _ := ByNum(5)
	p := muller.ScaleEq1(1024)
	if got := p.Density().MWPerCM2(); math.Abs(got-10) > 0.01 {
		t.Errorf("Muller Eq.1 density = %v, paper says ≈10 mW/cm²", got)
	}
	wim, _ := ByNum(7)
	w := wim.ScaleEq1(1024)
	w.Area /= 2
	if got := w.Density().MWPerCM2(); math.Abs(got-30.4) > 0.1 {
		t.Errorf("WIMAGINE 2×-cut density = %v, paper says 30 mW/cm²", got)
	}
	if got := w.ChannelSpacing(); math.Abs(got-1.96e-3) > 0.02e-3 {
		t.Errorf("WIMAGINE spacing = %v m, paper says ≈2 mm", got)
	}
}

func TestScaleTo1024SpecialCases(t *testing.T) {
	muller, _ := ByNum(5)
	mp := muller.ScaleTo1024()
	if got := mp.Density().MWPerCM2(); math.Abs(got-20) > 0.01 {
		t.Errorf("Muller final density = %v, want 20 (paper)", got)
	}
	wim, _ := ByNum(7)
	wp := wim.ScaleTo1024()
	// 50× reduction on the 2×-cut design: area 78.4 mm², density preserved.
	if got := wp.Area.MM2(); math.Abs(got-78.4) > 0.1 {
		t.Errorf("WIMAGINE* area = %v mm², want 78.4", got)
	}
	if got := wp.Density().MWPerCM2(); math.Abs(got-30.4) > 0.1 {
		t.Errorf("WIMAGINE* density = %v, want ≈30", got)
	}
	// Spacing lands near the paper's "realistic ~200 µm" target.
	if sp := wp.ChannelSpacing(); sp < 150e-6 || sp > 350e-6 {
		t.Errorf("WIMAGINE* spacing = %v m, want ≈200–300 µm", sp)
	}
	// Neuropixels scales linearly: density unchanged.
	npx, _ := ByNum(9)
	np := npx.ScaleTo1024()
	if got := np.Density().MWPerCM2(); math.Abs(got-21) > 1e-9 {
		t.Errorf("Neuropixels density = %v, want 21 (linear scaling)", got)
	}
	if got := np.Area.MM2(); math.Abs(got-22.0*1024/384) > 1e-9 {
		t.Errorf("Neuropixels area = %v", got)
	}
	// Identity for designs already at 1024.
	bisc, _ := ByNum(1)
	bp := bisc.ScaleTo1024()
	if bp.Area != bisc.Area || math.Abs(bp.Power.Watts()-bisc.Power().Watts()) > 1e-15 {
		t.Errorf("BISC should scale to itself")
	}
}

func TestFig4AllScaledDesignsSafe(t *testing.T) {
	// Fig. 4's headline: every design scaled to 1024 channels sits within
	// the 40 mW/cm² power budget.
	for _, d := range Table1() {
		p := d.ScaleTo1024()
		if !p.Safe() {
			t.Errorf("%s scaled point unsafe: %v over %v (%v)", d, p.Power, p.Area, p.Density())
		}
		if p.Channels != 1024 {
			t.Errorf("%s scaled to %d channels", d, p.Channels)
		}
	}
	// And raw HALO (without the * adjustment) must violate the budget —
	// the reason the paper introduces HALO*.
	halo, _ := ByNum(8)
	if halo.ScaleEq1(1024).Safe() {
		t.Errorf("unmodified HALO should exceed the budget")
	}
}

func TestBaselineSplit(t *testing.T) {
	bisc, _ := ByNum(1)
	b := bisc.Baseline()
	if math.Abs(b.SensingPower.Watts()+b.NonSensingPower.Watts()-b.At1024.Power.Watts()) > 1e-15 {
		t.Errorf("power split does not sum")
	}
	if math.Abs(b.SensingArea.M2()+b.NonSensingArea.M2()-b.At1024.Area.M2()) > 1e-18 {
		t.Errorf("area split does not sum")
	}
	// Eq. 5 linearity.
	if got := b.SensingPowerAt(2048).Watts(); math.Abs(got-2*b.SensingPower.Watts()) > 1e-15 {
		t.Errorf("sensing power not linear")
	}
	if got := b.SensingAreaAt(512).M2(); math.Abs(got-b.SensingArea.M2()/2) > 1e-18 {
		t.Errorf("sensing area not linear")
	}
}

func TestSensingThroughput(t *testing.T) {
	bisc, _ := ByNum(1)
	b := bisc.Baseline()
	// 1024 ch × 10 b × 8 kHz = 81.92 Mbps (the paper's worked example).
	if got := b.SensingThroughputAt(1024).Mbps(); math.Abs(got-81.92) > 1e-9 {
		t.Errorf("T_sensing = %v Mbps, want 81.92", got)
	}
}

func TestEnergyPerBitCalibration(t *testing.T) {
	// BISC: non-sensing power 19.44 mW over 81.92 Mbps ≈ 237 pJ/b —
	// the right order for published implant transceivers (tens to
	// hundreds of pJ/b).
	bisc, _ := ByNum(1)
	eb := bisc.Baseline().EnergyPerBit()
	if pj := eb.Picojoules(); pj < 20 || pj > 2000 {
		t.Errorf("BISC implied Eb = %v pJ/b, want 20–2000", pj)
	}
}

func TestNaiveDesignConstantMargin(t *testing.T) {
	// Fig. 5 left: P_SoC/P_budget is constant in n for the naive design.
	for _, d := range WirelessDesigns() {
		b := d.Baseline()
		base := b.Naive(1024)
		r0 := base.Power.Watts() / base.Budget().Watts()
		for _, n := range []int{2048, 4096, 8192} {
			p := b.Naive(n)
			r := p.Power.Watts() / p.Budget().Watts()
			if math.Abs(r-r0) > 1e-9 {
				t.Errorf("%s naive ratio drifts: %v vs %v at n=%d", d, r, r0, n)
			}
		}
	}
}

func TestHighMarginEventuallyExceedsBudget(t *testing.T) {
	// Fig. 5 right: the high-margin design crosses the budget for every
	// SoC at some channel count.
	for _, d := range WirelessDesigns() {
		b := d.Baseline()
		crossed := false
		for n := 1024; n <= 1<<26; n *= 2 {
			p := b.HighMargin(n)
			if p.Power.Watts() > p.Budget().Watts() {
				crossed = true
				break
			}
		}
		if !crossed {
			t.Errorf("%s high-margin never exceeds budget", d)
		}
	}
}

func TestSensingFractionTrends(t *testing.T) {
	// Fig. 6: naive fraction flat; high-margin fraction rises toward 1.
	for _, d := range WirelessDesigns() {
		b := d.Baseline()
		if got := b.SensingFractionNaive(8192); got != b.Design.SensingAreaFrac {
			t.Errorf("%s naive fraction = %v", d, got)
		}
		prev := 0.0
		for _, n := range []int{1024, 2048, 4096, 8192} {
			f := b.SensingFractionHighMargin(n)
			if f <= prev {
				t.Errorf("%s high-margin fraction not increasing at %d", d, n)
			}
			prev = f
		}
		if prev <= b.Design.SensingAreaFrac {
			t.Errorf("%s high-margin fraction should exceed the flat naive value", d)
		}
		// Limit is 1 (Eq. 4).
		if f := b.SensingFractionHighMargin(1 << 26); f < 0.99 {
			t.Errorf("%s fraction limit = %v, want → 1", d, f)
		}
	}
}

func TestScalingMonotoneProperty(t *testing.T) {
	bisc, _ := ByNum(1)
	b := bisc.Baseline()
	f := func(aRaw, bRaw uint16) bool {
		n1 := int(aRaw)%16384 + 1024
		n2 := n1 + int(bRaw)%16384
		for _, pair := range [][2]Point{
			{b.Naive(n1), b.Naive(n2)},
			{b.HighMargin(n1), b.HighMargin(n2)},
		} {
			if pair[1].Power < pair[0].Power || pair[1].Area < pair[0].Area {
				return false
			}
		}
		return b.BudgetAt(n2) >= b.BudgetAt(n1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestComputeCentricAreaAndBudget(t *testing.T) {
	bisc, _ := ByNum(1)
	b := bisc.Baseline()
	// At 1024 the compute-centric area equals the full scaled area.
	if got := b.ComputeCentricArea(1024).MM2(); math.Abs(got-144) > 1e-9 {
		t.Errorf("area at 1024 = %v mm²", got)
	}
	// At 2048: sensing doubles (57.6→115.2 mm²), non-sensing fixed
	// (86.4 mm²) → 201.6 mm².
	if got := b.ComputeCentricArea(2048).MM2(); math.Abs(got-201.6) > 1e-9 {
		t.Errorf("area at 2048 = %v mm²", got)
	}
	if got := b.BudgetAt(2048).Milliwatts(); math.Abs(got-0.4*201.6) > 1e-9 {
		t.Errorf("budget at 2048 = %v mW", got)
	}
}

func TestChannelSpacing(t *testing.T) {
	p := Point{Channels: 1024, Area: units.SquareMillimetres(144)}
	// 144 mm² over 1024 channels → 375 µm pitch.
	if got := p.ChannelSpacing(); math.Abs(got-375e-6) > 1e-9 {
		t.Errorf("spacing = %v", got)
	}
	if !math.IsNaN((Point{}).ChannelSpacing()) {
		t.Errorf("zero-channel spacing should be NaN")
	}
}
