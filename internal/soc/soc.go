// Package soc is the design database and scaling engine at the heart of
// MINDFUL: the eleven published implanted SoCs of Table 1, the Section 4.1
// procedure that scales each to the 1024-channel standard (Eq. 1 plus the
// paper's per-design special cases), and the Section 4.2 decomposition into
// sensing and non-sensing area/power (Eq. 2 and 5) from which the naive and
// high-margin projections of Section 5.1 follow.
//
// Two Table 1 entries are printed ambiguously in the paper (the PDF's
// power-density column loses decimal points); their values here are fixed
// by cross-checking against the paper's own derived statements:
//
//   - Muller (SoC 5): P_d = 2.5 mW/cm², because the paper states Eq. (1)
//     scaling yields "approximately 10 mW/cm²" and Eq. (1) multiplies the
//     density by √(1024/64) = 4.
//   - Yang (SoC 6): P_d = 1.3 mW/cm², because Fig. 4 shows every scaled
//     design inside the 40 mW/cm² budget and Eq. (1) multiplies Yang's
//     density by 16.
//
// WIMAGINE's special case reproduces both of the paper's checks exactly:
// Eq. (1) scaling + 2× area cut gives 30.4 mW/cm² ("30") at 1.96 mm
// spacing ("around 2 mm").
package soc

import (
	"fmt"
	"math"

	"mindful/internal/thermal"
	"mindful/internal/units"
)

// NIType is the sensing technology of a neural interface.
type NIType string

// Supported NI types.
const (
	Electrodes NIType = "Electrodes"
	SPAD       NIType = "SPAD"
)

// Design is one published implanted SoC (a Table 1 row).
type Design struct {
	// Num is the paper's SoC number (1–11).
	Num  int
	Name string
	NI   NIType
	// Channels is the active channel count as reported.
	Channels int
	// Area is the die area in contact with tissue.
	Area units.Area
	// Density is the reported power density.
	Density units.PowerDensity
	// SampleRate is the per-channel sampling frequency f.
	SampleRate units.Frequency
	// Wireless reports integrated wireless communication.
	Wireless bool
	// SensingPowerFrac / SensingAreaFrac split the 1024-channel design
	// point into sensing and non-sensing shares. The paper does not
	// tabulate these; the defaults are 0.5 for power and 0.4 for area.
	// The area default is pinned by Fig. 5's claim that the high-margin
	// design eventually exceeds the budget for *every* SoC: the
	// asymptotic density is density(1024)/SensingAreaFrac, which must
	// exceed 40 mW/cm² even for the least dense scaled design
	// (Shen, 17.6 mW/cm² → fraction < 0.44).
	SensingPowerFrac, SensingAreaFrac float64
}

// Power returns the design's total power at its native channel count.
func (d Design) Power() units.Power { return d.Density.Over(d.Area) }

// String identifies the design.
func (d Design) String() string {
	return fmt.Sprintf("SoC %d (%s, %d ch)", d.Num, d.Name, d.Channels)
}

// StandardChannels is the current NI channel-count standard the paper
// scales every design to.
const StandardChannels = 1024

// SampleBits is the digitized sample width d used throughout the paper's
// worked examples (10 bits).
const SampleBits = 10

func defaults(d Design) Design {
	if d.SensingPowerFrac == 0 {
		d.SensingPowerFrac = 0.5
	}
	if d.SensingAreaFrac == 0 {
		d.SensingAreaFrac = 0.4
	}
	return d
}

// Table1 returns the eleven designs of Table 1.
func Table1() []Design {
	list := []Design{
		{Num: 1, Name: "BISC", NI: Electrodes, Channels: 1024, Area: units.SquareMillimetres(144), Density: units.MilliwattsPerCM2(27), SampleRate: units.Kilohertz(8), Wireless: true},
		{Num: 2, Name: "Gilhotra et al.", NI: SPAD, Channels: 1024, Area: units.SquareMillimetres(144), Density: units.MilliwattsPerCM2(33), SampleRate: units.Kilohertz(8), Wireless: true},
		{Num: 3, Name: "Neuralink", NI: Electrodes, Channels: 1024, Area: units.SquareMillimetres(20), Density: units.MilliwattsPerCM2(39), SampleRate: units.Kilohertz(10), Wireless: true},
		{Num: 4, Name: "Shen et al.", NI: Electrodes, Channels: 16, Area: units.SquareMillimetres(1.34), Density: units.MilliwattsPerCM2(2.2), SampleRate: units.Kilohertz(10), Wireless: true},
		{Num: 5, Name: "Muller et al.", NI: Electrodes, Channels: 64, Area: units.SquareMillimetres(5.76), Density: units.MilliwattsPerCM2(2.5), SampleRate: units.Kilohertz(1), Wireless: true},
		{Num: 6, Name: "Yang et al.", NI: Electrodes, Channels: 4, Area: units.SquareMillimetres(4), Density: units.MilliwattsPerCM2(1.3), SampleRate: units.Kilohertz(20), Wireless: true},
		{Num: 7, Name: "WIMAGINE", NI: Electrodes, Channels: 64, Area: units.SquareMillimetres(1960), Density: units.MilliwattsPerCM2(3.8), SampleRate: units.Kilohertz(30), Wireless: true},
		{Num: 8, Name: "HALO", NI: Electrodes, Channels: 96, Area: units.SquareMillimetres(1), Density: units.MilliwattsPerCM2(1500), SampleRate: units.Kilohertz(30), Wireless: true},
		{Num: 9, Name: "Neuropixels", NI: Electrodes, Channels: 384, Area: units.SquareMillimetres(22), Density: units.MilliwattsPerCM2(21), SampleRate: units.Kilohertz(30), Wireless: false},
		{Num: 10, Name: "Jang et al.", NI: Electrodes, Channels: 1024, Area: units.SquareMillimetres(3), Density: units.MilliwattsPerCM2(17), SampleRate: units.Kilohertz(20), Wireless: false},
		{Num: 11, Name: "Pollman et al.", NI: SPAD, Channels: 1024, Area: units.SquareMillimetres(50), Density: units.MilliwattsPerCM2(36), SampleRate: units.Kilohertz(8), Wireless: false},
	}
	for i := range list {
		list[i] = defaults(list[i])
	}
	return list
}

// WirelessDesigns returns SoCs 1–8, the paper's target systems for the
// Section 5–6 analyses (SoC 8 becomes HALO* when scaled).
func WirelessDesigns() []Design {
	var out []Design
	for _, d := range Table1() {
		if d.Wireless {
			out = append(out, d)
		}
	}
	return out
}

// ByNum looks a design up by its Table 1 number.
func ByNum(num int) (Design, bool) {
	for _, d := range Table1() {
		if d.Num == num {
			return d, true
		}
	}
	return Design{}, false
}

// Point is one (channels, area, power) design point.
type Point struct {
	Channels int
	Area     units.Area
	Power    units.Power
}

// Density returns the point's power density.
func (p Point) Density() units.PowerDensity { return units.DensityOf(p.Power, p.Area) }

// Budget returns the point's safe power budget (Eq. 3).
func (p Point) Budget() units.Power { return thermal.Budget(p.Area) }

// Safe reports whether the point respects the power budget.
func (p Point) Safe() bool { return p.Power <= p.Budget() }

// ChannelSpacing returns the implied channel pitch √(A/n) in metres.
func (p Point) ChannelSpacing() float64 {
	if p.Channels <= 0 {
		return math.NaN()
	}
	return math.Sqrt(p.Area.M2() / float64(p.Channels))
}

// ScaleEq1 applies Equation (1) verbatim: power scales linearly with
// channels, area with the square root (to improve volumetric efficiency).
func (d Design) ScaleEq1(n int) Point {
	ratio := float64(n) / float64(d.Channels)
	return Point{
		Channels: n,
		Area:     units.Area(d.Area.M2() * math.Sqrt(ratio)),
		Power:    units.Power(d.Power().Watts() * ratio),
	}
}

// scaleLinear scales both power and area linearly (shank replication, used
// for Neuropixels).
func (d Design) scaleLinear(n int) Point {
	ratio := float64(n) / float64(d.Channels)
	return Point{
		Channels: n,
		Area:     units.Area(d.Area.M2() * ratio),
		Power:    units.Power(d.Power().Watts() * ratio),
	}
}

// HALOStar is the paper's modified HALO design point: the Eq.-(1) scaling
// of HALO exceeds the power budget by two orders of magnitude, so the paper
// rescales area and power to sit just inside the budget. The exact values
// are not printed; these land at ≈29 mW/cm², matching Fig. 4's placement
// and keeping HALO* in the paper's MLP-feasible set at 1024 channels.
var HALOStar = Point{
	Channels: StandardChannels,
	Area:     units.SquareMillimetres(34),
	Power:    units.Milliwatts(10),
}

// ScaleTo1024 applies the Section 4.1 procedure: Eq. (1) with the paper's
// per-design special cases. The result for every design is a plausible,
// budget-compliant 1024-channel point (Fig. 4).
func (d Design) ScaleTo1024() Point {
	switch {
	case d.Channels == StandardChannels:
		// SoCs 1–3, 10 already meet the standard; SPAD designs (2, 11)
		// use their nominal 1024-channel configuration parameters.
		return Point{Channels: StandardChannels, Area: d.Area, Power: d.Power()}
	case d.Num == 5:
		// Muller: Eq. (1) yields an unrealistically low ~10 mW/cm²;
		// apply an extra 2× area reduction (→ 20 mW/cm²).
		p := d.ScaleEq1(StandardChannels)
		p.Area /= 2
		return p
	case d.Num == 7:
		// WIMAGINE: Eq. (1) yields an impractically large device; a 2×
		// area cut gives 30 mW/cm² but ~2 mm pitch, so the paper models
		// a more evolved design with a 50× reduction in power and area.
		p := d.ScaleEq1(StandardChannels)
		p.Area /= 2
		p.Area /= 50
		p.Power /= 50
		return p
	case d.Num == 8:
		// HALO → HALO*.
		return HALOStar
	case d.Num == 9:
		// Neuropixels scales by adding shanks: linear in area and power.
		return d.scaleLinear(StandardChannels)
	default:
		return d.ScaleEq1(StandardChannels)
	}
}

// Baseline is a design anchored at 1024 channels and decomposed into
// sensing and non-sensing shares (the Eq. 2/5 anchor for all projections).
type Baseline struct {
	Design Design
	At1024 Point

	SensingArea     units.Area
	NonSensingArea  units.Area
	SensingPower    units.Power
	NonSensingPower units.Power
}

// Baseline scales the design to 1024 channels and splits it.
func (d Design) Baseline() Baseline {
	d = defaults(d)
	p := d.ScaleTo1024()
	return Baseline{
		Design:          d,
		At1024:          p,
		SensingArea:     units.Area(p.Area.M2() * d.SensingAreaFrac),
		NonSensingArea:  units.Area(p.Area.M2() * (1 - d.SensingAreaFrac)),
		SensingPower:    units.Power(p.Power.Watts() * d.SensingPowerFrac),
		NonSensingPower: units.Power(p.Power.Watts() * (1 - d.SensingPowerFrac)),
	}
}

// SensingAreaAt returns Eq. (5): sensing area scales linearly in n.
func (b Baseline) SensingAreaAt(n int) units.Area {
	return units.Area(b.SensingArea.M2() * float64(n) / StandardChannels)
}

// SensingPowerAt returns Eq. (5): sensing power scales linearly in n.
func (b Baseline) SensingPowerAt(n int) units.Power {
	return units.Power(b.SensingPower.Watts() * float64(n) / StandardChannels)
}

// SensingThroughputAt returns Eq. (6): T_sensing(n) = d·n·f.
func (b Baseline) SensingThroughputAt(n int) units.DataRate {
	return units.BitsPerSecond(float64(SampleBits) * float64(n) * b.Design.SampleRate.Hz())
}

// EnergyPerBit returns the design's implied communication energy per bit:
// the non-sensing power at 1024 channels divided by the 1024-channel raw
// data rate. This calibrates the constant-E_b transceiver model of
// Section 5.1 to each published design.
func (b Baseline) EnergyPerBit() units.Energy {
	t := b.SensingThroughputAt(StandardChannels)
	if t <= 0 {
		return 0
	}
	return units.Energy(b.NonSensingPower.Watts() / t.BPS())
}

// Naive projects the Section 5.1 naive design to n channels: every channel
// brings its own sensing and non-sensing increment, so area and power both
// scale linearly and the budget margin is constant.
func (b Baseline) Naive(n int) Point {
	ratio := float64(n) / StandardChannels
	return Point{
		Channels: n,
		Area:     units.Area(b.At1024.Area.M2() * ratio),
		Power:    units.Power(b.At1024.Power.Watts() * ratio),
	}
}

// HighMargin projects the Section 5.1 high-margin design to n channels:
// sensing area/power scale linearly, non-sensing power scales with the
// data rate (constant E_b), and non-sensing area stays fixed because the
// existing transceiver absorbs the higher rate.
func (b Baseline) HighMargin(n int) Point {
	ratio := float64(n) / StandardChannels
	return Point{
		Channels: n,
		Area:     units.Area(b.SensingArea.M2()*ratio + b.NonSensingArea.M2()),
		Power:    units.Power(b.SensingPower.Watts()*ratio + b.NonSensingPower.Watts()*ratio),
	}
}

// ComputeCentricArea returns the SoC area used by the computation-centric
// analyses (Sections 5.2–6): sensing area grows linearly while non-sensing
// area is frozen at its 1024-channel extent for volumetric efficiency.
func (b Baseline) ComputeCentricArea(n int) units.Area {
	return units.Area(b.SensingAreaAt(n).M2() + b.NonSensingArea.M2())
}

// BudgetAt returns P_budget(n) = A_SoC(n) · 40 mW/cm² under the
// computation-centric area assumption.
func (b Baseline) BudgetAt(n int) units.Power {
	return thermal.Budget(b.ComputeCentricArea(n))
}

// SensingFractionNaive returns A_sensing/A_SoC for the naive design (it is
// independent of n — the naive design's volumetric-efficiency flaw).
func (b Baseline) SensingFractionNaive(n int) float64 {
	return b.Design.SensingAreaFrac
}

// SensingFractionHighMargin returns A_sensing/A_SoC for the high-margin
// design, which approaches 1 as n grows (Eq. 4).
func (b Baseline) SensingFractionHighMargin(n int) float64 {
	s := b.SensingAreaAt(n).M2()
	return s / (s + b.NonSensingArea.M2())
}
