// Package linalg provides the small dense linear algebra kernel used by
// the decoder baselines and the neural-network engine: a row-major matrix
// type with multiplication, transpose, inversion (Gauss–Jordan with partial
// pivoting) and least-squares solving. It is deliberately minimal — the
// framework's matrices are tiny (state dimensions and layer widths), so
// clarity beats asymptotic cleverness.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix returns a zeroed r×c matrix.
func NewMatrix(r, c int) Matrix {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("linalg: invalid dimensions %d×%d", r, c))
	}
	return Matrix{Rows: r, Cols: c, Data: make([]float64, r*c)}
}

// FromRows builds a matrix from row slices, which must be equal length.
func FromRows(rows [][]float64) Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("linalg: FromRows requires a non-empty rectangle")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, row := range rows {
		if len(row) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Data[i*m.Cols:], row)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// At returns element (i, j).
func (m Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Clone returns a deep copy.
func (m Matrix) Clone() Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// T returns the transpose.
func (m Matrix) T() Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Mul returns m·b.
func (m Matrix) Mul(b Matrix) Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul dimension mismatch %d×%d · %d×%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// MulVec returns m·v for a vector of length Cols.
func (m Matrix) MulVec(v []float64) []float64 {
	if len(v) != m.Cols {
		panic(fmt.Sprintf("linalg: MulVec length %d != cols %d", len(v), m.Cols))
	}
	out := make([]float64, m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range v {
			s += row[j] * x
		}
		out[i] = s
	}
	return out
}

// Add returns m + b.
func (m Matrix) Add(b Matrix) Matrix { return m.axpy(b, 1) }

// Sub returns m − b.
func (m Matrix) Sub(b Matrix) Matrix { return m.axpy(b, -1) }

func (m Matrix) axpy(b Matrix, sign float64) Matrix {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic("linalg: shape mismatch")
	}
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] += sign * b.Data[i]
	}
	return out
}

// Scale returns s·m.
func (m Matrix) Scale(s float64) Matrix {
	out := m.Clone()
	for i := range out.Data {
		out.Data[i] *= s
	}
	return out
}

// ErrSingular is returned when a matrix cannot be inverted.
var ErrSingular = errors.New("linalg: singular matrix")

// Inverse returns m⁻¹ by Gauss–Jordan elimination with partial pivoting.
func (m Matrix) Inverse() (Matrix, error) {
	if m.Rows != m.Cols {
		return Matrix{}, fmt.Errorf("linalg: cannot invert %d×%d matrix", m.Rows, m.Cols)
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Pivot.
		pivot, best := col, math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-12 {
			return Matrix{}, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalize pivot row.
		p := a.At(col, col)
		for j := 0; j < n; j++ {
			a.Set(col, j, a.At(col, j)/p)
			inv.Set(col, j, inv.At(col, j)/p)
		}
		// Eliminate.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				a.Set(r, j, a.At(r, j)-f*a.At(col, j))
				inv.Set(r, j, inv.At(r, j)-f*inv.At(col, j))
			}
		}
	}
	return inv, nil
}

func swapRows(m Matrix, a, b int) {
	ra := m.Data[a*m.Cols : (a+1)*m.Cols]
	rb := m.Data[b*m.Cols : (b+1)*m.Cols]
	for i := range ra {
		ra[i], rb[i] = rb[i], ra[i]
	}
}

// LeastSquares solves min‖A·x − B‖² column-wise with ridge regularization
// λ ≥ 0, returning x = (AᵀA + λI)⁻¹AᵀB.
func LeastSquares(a, b Matrix, lambda float64) (Matrix, error) {
	if a.Rows != b.Rows {
		return Matrix{}, fmt.Errorf("linalg: LeastSquares row mismatch %d vs %d", a.Rows, b.Rows)
	}
	if lambda < 0 {
		return Matrix{}, fmt.Errorf("linalg: negative ridge %g", lambda)
	}
	at := a.T()
	gram := at.Mul(a)
	for i := 0; i < gram.Rows; i++ {
		gram.Set(i, i, gram.At(i, i)+lambda)
	}
	inv, err := gram.Inverse()
	if err != nil {
		return Matrix{}, err
	}
	return inv.Mul(at.Mul(b)), nil
}

// MaxAbsDiff returns the largest absolute element-wise difference between
// two equal-shape matrices.
func MaxAbsDiff(a, b Matrix) float64 {
	if a.Rows != b.Rows || a.Cols != b.Cols {
		panic("linalg: shape mismatch")
	}
	worst := 0.0
	for i := range a.Data {
		if d := math.Abs(a.Data[i] - b.Data[i]); d > worst {
			worst = d
		}
	}
	return worst
}
