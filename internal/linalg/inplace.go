package linalg

import (
	"fmt"
	"math"
)

// In-place variants of the matrix operations. The allocating methods on
// Matrix stay the ergonomic default for fitting code; these exist for the
// per-step hot paths (the Kalman and Wiener decoders in internal/decode)
// where every tick would otherwise allocate a handful of intermediates.
// All destinations must be pre-shaped by the caller and — unless noted —
// must not alias the sources.

// shapeCheck panics with a descriptive message on a shape mismatch; the
// in-place API keeps the package's panic-on-misuse convention (shapes are
// static properties of the calling decoder, not data-dependent).
func shapeCheck(cond bool, format string, args ...any) {
	if !cond {
		panic("linalg: " + fmt.Sprintf(format, args...))
	}
}

// MulInto computes a·b into dst. dst must be a.Rows×b.Cols and must not
// alias a or b.
func MulInto(dst, a, b Matrix) {
	shapeCheck(a.Cols == b.Rows, "MulInto inner dimension %d != %d", a.Cols, b.Rows)
	shapeCheck(dst.Rows == a.Rows && dst.Cols == b.Cols,
		"MulInto destination %d×%d != %d×%d", dst.Rows, dst.Cols, a.Rows, b.Cols)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < a.Rows; i++ {
		for k := 0; k < a.Cols; k++ {
			v := a.At(i, k)
			if v == 0 {
				continue
			}
			dstRow := dst.Data[i*dst.Cols : (i+1)*dst.Cols]
			bRow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j := range dstRow {
				dstRow[j] += v * bRow[j]
			}
		}
	}
}

// AddInto computes a + b into dst. dst may alias a or b.
func AddInto(dst, a, b Matrix) {
	shapeCheck(a.Rows == b.Rows && a.Cols == b.Cols && dst.Rows == a.Rows && dst.Cols == a.Cols,
		"AddInto shape mismatch")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] + b.Data[i]
	}
}

// SubInto computes a − b into dst. dst may alias a or b.
func SubInto(dst, a, b Matrix) {
	shapeCheck(a.Rows == b.Rows && a.Cols == b.Cols && dst.Rows == a.Rows && dst.Cols == a.Cols,
		"SubInto shape mismatch")
	for i := range dst.Data {
		dst.Data[i] = a.Data[i] - b.Data[i]
	}
}

// TInto writes aᵀ into dst. dst must be a.Cols×a.Rows and not alias a.
func TInto(dst, a Matrix) {
	shapeCheck(dst.Rows == a.Cols && dst.Cols == a.Rows,
		"TInto destination %d×%d != %d×%d", dst.Rows, dst.Cols, a.Cols, a.Rows)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < a.Cols; j++ {
			dst.Set(j, i, a.At(i, j))
		}
	}
}

// CopyInto copies a into dst of the same shape.
func CopyInto(dst, a Matrix) {
	shapeCheck(dst.Rows == a.Rows && dst.Cols == a.Cols, "CopyInto shape mismatch")
	copy(dst.Data, a.Data)
}

// IdentityInto overwrites the square dst with the identity.
func IdentityInto(dst Matrix) {
	shapeCheck(dst.Rows == dst.Cols, "IdentityInto needs a square matrix, got %d×%d", dst.Rows, dst.Cols)
	for i := range dst.Data {
		dst.Data[i] = 0
	}
	for i := 0; i < dst.Rows; i++ {
		dst.Set(i, i, 1)
	}
}

// InverseInto inverts a into dst using work as elimination scratch; a is
// preserved. dst and work must be square matrices of a's shape and must
// not alias a or each other. The pivoting and tolerance match Inverse
// exactly, so both paths return ErrSingular on the same inputs.
func InverseInto(dst, work, a Matrix) error {
	if a.Rows != a.Cols {
		return fmt.Errorf("linalg: cannot invert %d×%d matrix", a.Rows, a.Cols)
	}
	shapeCheck(dst.Rows == a.Rows && dst.Cols == a.Cols, "InverseInto destination shape mismatch")
	shapeCheck(work.Rows == a.Rows && work.Cols == a.Cols, "InverseInto scratch shape mismatch")
	n := a.Rows
	CopyInto(work, a)
	IdentityInto(dst)
	for col := 0; col < n; col++ {
		pivot, best := col, math.Abs(work.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(work.At(r, col)); v > best {
				pivot, best = r, v
			}
		}
		if best < 1e-12 {
			return ErrSingular
		}
		if pivot != col {
			swapRows(work, pivot, col)
			swapRows(dst, pivot, col)
		}
		p := work.At(col, col)
		for j := 0; j < n; j++ {
			work.Set(col, j, work.At(col, j)/p)
			dst.Set(col, j, dst.At(col, j)/p)
		}
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.At(r, col)
			if f == 0 {
				continue
			}
			for j := 0; j < n; j++ {
				work.Set(r, j, work.At(r, j)-f*work.At(col, j))
				dst.Set(r, j, dst.At(r, j)-f*dst.At(col, j))
			}
		}
	}
	return nil
}

// MulVecInto computes m·v into dst of length m.Rows. dst must not alias v.
func MulVecInto(dst []float64, m Matrix, v []float64) {
	shapeCheck(len(v) == m.Cols, "MulVecInto length %d != cols %d", len(v), m.Cols)
	shapeCheck(len(dst) == m.Rows, "MulVecInto destination length %d != rows %d", len(dst), m.Rows)
	for i := 0; i < m.Rows; i++ {
		s := 0.0
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		for j, x := range v {
			s += row[j] * x
		}
		dst[i] = s
	}
}
