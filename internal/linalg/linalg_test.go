package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasicOps(t *testing.T) {
	a := FromRows([][]float64{{1, 2}, {3, 4}})
	b := FromRows([][]float64{{5, 6}, {7, 8}})
	prod := a.Mul(b)
	want := FromRows([][]float64{{19, 22}, {43, 50}})
	if MaxAbsDiff(prod, want) > 1e-12 {
		t.Errorf("Mul = %+v", prod)
	}
	if MaxAbsDiff(a.Add(b), FromRows([][]float64{{6, 8}, {10, 12}})) > 1e-12 {
		t.Errorf("Add wrong")
	}
	if MaxAbsDiff(b.Sub(a), FromRows([][]float64{{4, 4}, {4, 4}})) > 1e-12 {
		t.Errorf("Sub wrong")
	}
	if MaxAbsDiff(a.Scale(2), FromRows([][]float64{{2, 4}, {6, 8}})) > 1e-12 {
		t.Errorf("Scale wrong")
	}
	if MaxAbsDiff(a.T(), FromRows([][]float64{{1, 3}, {2, 4}})) > 1e-12 {
		t.Errorf("T wrong")
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MulVec = %v", got)
	}
}

func TestIdentityAndClone(t *testing.T) {
	i3 := Identity(3)
	a := FromRows([][]float64{{2, 0, 1}, {1, 3, 2}, {0, 1, 1}})
	if MaxAbsDiff(a.Mul(i3), a) > 1e-12 {
		t.Errorf("A·I != A")
	}
	c := a.Clone()
	c.Set(0, 0, 99)
	if a.At(0, 0) == 99 {
		t.Errorf("Clone aliases data")
	}
}

func TestInverseKnown(t *testing.T) {
	a := FromRows([][]float64{{4, 7}, {2, 6}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([][]float64{{0.6, -0.7}, {-0.2, 0.4}})
	if MaxAbsDiff(inv, want) > 1e-12 {
		t.Errorf("inverse = %+v", inv)
	}
}

func TestInverseProperty(t *testing.T) {
	// A·A⁻¹ = I for random well-conditioned matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + int(seed%5+5)%5
		a := NewMatrix(n, n)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		// Diagonal dominance keeps it invertible.
		for i := 0; i < n; i++ {
			a.Set(i, i, a.At(i, i)+float64(n)*2)
		}
		inv, err := a.Inverse()
		if err != nil {
			return false
		}
		return MaxAbsDiff(a.Mul(inv), Identity(n)) < 1e-8
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestInverseErrors(t *testing.T) {
	if _, err := NewMatrix(2, 3).Inverse(); err == nil {
		t.Errorf("non-square inversion should fail")
	}
	sing := FromRows([][]float64{{1, 2}, {2, 4}})
	if _, err := sing.Inverse(); err != ErrSingular {
		t.Errorf("singular matrix error = %v", err)
	}
}

func TestInverseNeedsPivoting(t *testing.T) {
	// Zero leading pivot: fails without partial pivoting.
	a := FromRows([][]float64{{0, 1}, {1, 0}})
	inv, err := a.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(inv, a) > 1e-12 {
		t.Errorf("permutation inverse wrong: %+v", inv)
	}
}

func TestLeastSquaresExact(t *testing.T) {
	// Overdetermined consistent system: recover exact coefficients.
	x := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}, {2, 1}})
	coef := FromRows([][]float64{{3}, {-2}})
	y := x.Mul(coef)
	got, err := LeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if MaxAbsDiff(got, coef) > 1e-9 {
		t.Errorf("coefficients = %+v", got)
	}
}

func TestLeastSquaresRidgeShrinks(t *testing.T) {
	x := FromRows([][]float64{{1, 0}, {0, 1}, {1, 1}})
	y := FromRows([][]float64{{2}, {2}, {4}})
	unreg, err := LeastSquares(x, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	reg, err := LeastSquares(x, y, 10)
	if err != nil {
		t.Fatal(err)
	}
	normU := math.Hypot(unreg.At(0, 0), unreg.At(1, 0))
	normR := math.Hypot(reg.At(0, 0), reg.At(1, 0))
	if normR >= normU {
		t.Errorf("ridge did not shrink: %v vs %v", normR, normU)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	x := NewMatrix(3, 2)
	y := NewMatrix(4, 1)
	if _, err := LeastSquares(x, y, 0); err == nil {
		t.Errorf("row mismatch should fail")
	}
	if _, err := LeastSquares(x, NewMatrix(3, 1), -1); err == nil {
		t.Errorf("negative ridge should fail")
	}
	// Collinear columns without ridge: singular.
	col := FromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	if _, err := LeastSquares(col, NewMatrix(3, 1), 0); err == nil {
		t.Errorf("collinear design should fail unregularized")
	}
	// With ridge it succeeds.
	if _, err := LeastSquares(col, NewMatrix(3, 1), 0.1); err != nil {
		t.Errorf("ridge should fix collinearity: %v", err)
	}
}

func TestPanics(t *testing.T) {
	cases := []func(){
		func() { NewMatrix(0, 1) },
		func() { FromRows(nil) },
		func() { FromRows([][]float64{{1, 2}, {1}}) },
		func() { NewMatrix(2, 2).Mul(NewMatrix(3, 3)) },
		func() { NewMatrix(2, 2).MulVec([]float64{1}) },
		func() { NewMatrix(2, 2).Add(NewMatrix(2, 3)) },
		func() { MaxAbsDiff(NewMatrix(2, 2), NewMatrix(2, 3)) },
	}
	for i, fn := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			fn()
		}()
	}
}
