package implant

import (
	"testing"

	"mindful/internal/comm"
	"mindful/internal/units"
)

func dropoutConfig(channels, keep, calib int) Config {
	cfg := DefaultConfig()
	cfg.Neural.Channels = channels
	cfg.Neural.ActiveFraction = 0.5 // half the channels have units
	cfg.Neural.MeanRateHz = 60
	cfg.Neural.NoiseRMS = 0.05
	cfg.Neural.LFPAmplitude = 0.05
	cfg.Neural.SampleRate = units.Kilohertz(8)
	cfg.Dropout = Dropout{Enabled: true, CalibrationTicks: calib, Keep: keep}
	return cfg
}

func TestDropoutSelectsActiveChannels(t *testing.T) {
	const channels, keep, calib = 64, 16, 8000 // 1 s calibration
	im, err := New(dropoutConfig(channels, keep, calib))
	if err != nil {
		t.Fatal(err)
	}
	// During calibration: full-width frames, no selection yet.
	if err := im.Run(calib - 1); err != nil {
		t.Fatal(err)
	}
	if im.ActiveChannels() != nil {
		t.Fatalf("selection appeared before the window filled")
	}
	var lastFrame []byte
	im.OnFrame(func(buf []byte) { lastFrame = append(lastFrame[:0], buf...) })
	if err := im.Run(1); err != nil { // window fills here; selection applies immediately
		t.Fatal(err)
	}
	sel := im.ActiveChannels()
	if len(sel) != keep {
		t.Fatalf("selected %d channels, want %d", len(sel), keep)
	}
	// Post-calibration frames carry only the subset.
	if err := im.Run(10); err != nil {
		t.Fatal(err)
	}
	f, err := comm.Decode(lastFrame)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Samples) != keep {
		t.Errorf("post-dropout frame carries %d channels, want %d", len(f.Samples), keep)
	}
	// The selection should favour genuinely spiking channels: most picks
	// must be in the generator's active set.
	activeSet := map[int]bool{}
	for _, c := range im.gen.ActiveChannels() {
		activeSet[c] = true
	}
	hits := 0
	for _, c := range sel {
		if activeSet[c] {
			hits++
		}
	}
	if hits < keep*3/4 {
		t.Errorf("only %d/%d selected channels are truly active", hits, keep)
	}
}

func TestDropoutReducesUplinkRate(t *testing.T) {
	const channels, keep, calib = 64, 16, 2000
	withDrop, err := New(dropoutConfig(channels, keep, calib))
	if err != nil {
		t.Fatal(err)
	}
	noDropCfg := dropoutConfig(channels, keep, calib)
	noDropCfg.Dropout.Enabled = false
	noDrop, err := New(noDropCfg)
	if err != nil {
		t.Fatal(err)
	}
	const ticks = 10000
	if err := withDrop.Run(ticks); err != nil {
		t.Fatal(err)
	}
	if err := noDrop.Run(ticks); err != nil {
		t.Fatal(err)
	}
	bitsWith := withDrop.Stats().BitsSent
	bitsWithout := noDrop.Stats().BitsSent
	// 80% of the run is post-dropout at 1/4 width: expect roughly a 3×
	// reduction (framing overhead dampens it).
	if float64(bitsWithout)/float64(bitsWith) < 2 {
		t.Errorf("dropout reduced uplink only %0.1f× (%d vs %d bits)",
			float64(bitsWithout)/float64(bitsWith), bitsWithout, bitsWith)
	}
}

func TestDropoutValidation(t *testing.T) {
	cfg := dropoutConfig(32, 8, 100)
	cfg.Flow = ComputeCentric
	cfg.Network = smallNetwork(t, 32, 4)
	if _, err := New(cfg); err == nil {
		t.Errorf("dropout with compute flow should be rejected")
	}
	cfg = dropoutConfig(32, 0, 100)
	if _, err := New(cfg); err == nil {
		t.Errorf("keep=0 should be rejected")
	}
	cfg = dropoutConfig(32, 64, 100)
	if _, err := New(cfg); err == nil {
		t.Errorf("keep > channels should be rejected")
	}
	cfg = dropoutConfig(32, 8, 0)
	if _, err := New(cfg); err == nil {
		t.Errorf("zero calibration window should be rejected")
	}
	// Disabled dropout: nil state everywhere, no selection ever.
	cfg = dropoutConfig(32, 8, 100)
	cfg.Dropout.Enabled = false
	im, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Run(300); err != nil {
		t.Fatal(err)
	}
	if im.ActiveChannels() != nil {
		t.Errorf("disabled dropout should never select")
	}
}
