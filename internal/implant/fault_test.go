package implant

import (
	"testing"

	"mindful/internal/comm"
	"mindful/internal/fault"
	"mindful/internal/obs"
)

// TestElectrodeFaultsReachADC: a dead channel must digitize to the ADC's
// zero code on every tick, while healthy channels keep moving.
func TestElectrodeFaultsReachADC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Neural.Channels = 8
	bank, err := fault.NewElectrodeBank(8, fault.Profile{DeadFrac: 0.99}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bank.FaultyChannels() == 0 {
		t.Fatal("bank assigned no faults at 99% dead fraction")
	}
	cfg.Electrodes = bank
	im, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zero := cfg.ADC.Quantize(0)
	var deadSeen int
	im.OnFrame(func(buf []byte) {
		f, err := comm.Decode(buf)
		if err != nil {
			t.Fatalf("decode emitted frame: %v", err)
		}
		for c, code := range f.Samples {
			if bank.State(c) == fault.ChannelDead {
				if code != zero {
					t.Fatalf("dead channel %d digitized to %d, want zero code %d", c, code, zero)
				}
				deadSeen++
			}
		}
	})
	for tick := 0; tick < 10; tick++ {
		if err := im.Tick(); err != nil {
			t.Fatal(err)
		}
	}
	if deadSeen == 0 {
		t.Fatal("no dead-channel samples observed")
	}
	st := im.Stats()
	if st.FaultyChannels != bank.FaultyChannels() {
		t.Errorf("Stats.FaultyChannels = %d, want %d", st.FaultyChannels, bank.FaultyChannels())
	}
}

// TestBrownoutBlanksTransmitter: blanked ticks must advance the sequence
// counter without radiating, so the wearable sees gaps, and the radio
// energy accounting must exclude them.
func TestBrownoutBlanksTransmitter(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Neural.Channels = 4
	bo, err := fault.NewBrownout(fault.Profile{BrownoutProb: 0.5, BrownoutTicks: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Brownout = bo
	im, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New()
	im.SetObserver(o)
	var radiated int64
	im.OnFrame(func([]byte) { radiated++ })
	const ticks = 200
	if err := im.Run(ticks); err != nil {
		t.Fatal(err)
	}
	st := im.Stats()
	if st.BlankedFrames == 0 {
		t.Fatal("no frames blanked at 50% brownout onset")
	}
	if st.Frames != radiated {
		t.Errorf("Stats.Frames %d != radiated %d", st.Frames, radiated)
	}
	if st.Frames+st.BlankedFrames != ticks {
		t.Errorf("frames %d + blanked %d != ticks %d", st.Frames, st.BlankedFrames, ticks)
	}
	if bo.BlankedTicks() != st.BlankedFrames {
		t.Errorf("brownout counted %d ticks, implant %d", bo.BlankedTicks(), st.BlankedFrames)
	}
	if v := o.Metrics.Counter("implant_frames_blanked_total",
		obs.Label{Key: "flow", Value: "communication-centric"}).Value(); v != st.BlankedFrames {
		t.Errorf("blanked counter %d, want %d", v, st.BlankedFrames)
	}
	// Blanked frames must not be billed to the radio.
	expectBits := st.Frames * int64(len(im.frameBuf)) * 8
	if st.BitsSent != expectBits {
		t.Errorf("bits sent %d, want %d (radiated frames only)", st.BitsSent, expectBits)
	}
}

// TestFaultFreeConfigUnchanged: nil fault hooks must leave the pipeline
// byte-identical to the pre-fault behavior.
func TestFaultFreeConfigUnchanged(t *testing.T) {
	run := func(cfg Config) []byte {
		im, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var last []byte
		im.OnFrame(func(buf []byte) { last = append(last[:0], buf...) })
		if err := im.Run(50); err != nil {
			t.Fatal(err)
		}
		return last
	}
	a := run(DefaultConfig())
	b := run(DefaultConfig())
	if string(a) != string(b) {
		t.Fatal("fault-free pipeline not reproducible")
	}
}
