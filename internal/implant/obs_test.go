package implant

import (
	"strings"
	"testing"

	"mindful/internal/obs"
)

// TestObserverCountsMatchStats runs an observed implant and checks that
// the registry's counters agree exactly with the implant's own Stats.
func TestObserverCountsMatchStats(t *testing.T) {
	o := obs.New()
	im, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	im.SetObserver(o)
	if err := im.Run(50); err != nil {
		t.Fatal(err)
	}
	st := im.Stats()
	flow := obs.Label{Key: "flow", Value: st.Flow.String()}
	m := o.Metrics
	if got := m.Counter("implant_ticks_total", flow).Value(); got != st.Ticks {
		t.Errorf("ticks counter = %d, stats = %d", got, st.Ticks)
	}
	if got := m.Counter("implant_frames_total", flow).Value(); got != st.Frames {
		t.Errorf("frames counter = %d, stats = %d", got, st.Frames)
	}
	if got := m.Counter("implant_bits_sent_total", flow).Value(); got != st.BitsSent {
		t.Errorf("bits counter = %d, stats = %d", got, st.BitsSent)
	}
}

// TestObserverSpansPerTick checks the tracer records the comm-centric
// stage chain sense → adc → transmit under each tick root.
func TestObserverSpansPerTick(t *testing.T) {
	o := obs.New()
	im, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	im.SetObserver(o)
	if err := im.Run(3); err != nil {
		t.Fatal(err)
	}
	spans := o.Tracer.Snapshot()
	if len(spans) != 3*4 {
		t.Fatalf("got %d spans, want 12 (4 per tick)", len(spans))
	}
	wantOrder := []string{"implant.tick", "implant.sense", "implant.adc", "implant.transmit"}
	for i, s := range spans {
		want := wantOrder[i%4]
		if s.Name != want {
			t.Errorf("span %d = %q, want %q", i, s.Name, want)
		}
		if s.End == 0 {
			t.Errorf("span %d (%s) never ended", i, s.Name)
		}
		if s.Name != "implant.tick" {
			root := spans[i-i%4]
			if s.Parent != root.ID {
				t.Errorf("span %d (%s) parent = %d, want %d", i, s.Name, s.Parent, root.ID)
			}
		}
	}
}

// TestObserverDetach checks SetObserver(nil) stops all accounting.
func TestObserverDetach(t *testing.T) {
	o := obs.New()
	im, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	im.SetObserver(o)
	if err := im.Run(2); err != nil {
		t.Fatal(err)
	}
	im.SetObserver(nil)
	if err := im.Run(8); err != nil {
		t.Fatal(err)
	}
	flow := obs.Label{Key: "flow", Value: CommCentric.String()}
	if got := o.Metrics.Counter("implant_ticks_total", flow).Value(); got != 2 {
		t.Errorf("ticks after detach = %d, want 2", got)
	}
}

// TestObservedFlows runs every dataflow observed and checks the exported
// snapshot names the flow-specific counters.
func TestObservedFlows(t *testing.T) {
	o := obs.New()
	for _, flow := range []Dataflow{FeatureCentric, SpikeCentric} {
		cfg := DefaultConfig()
		cfg.Flow = flow
		im, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		im.SetObserver(o)
		if err := im.Run(300); err != nil {
			t.Fatal(err)
		}
	}
	var b strings.Builder
	if err := o.Metrics.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`implant_feature_vectors_total{flow="feature-centric"}`,
		`implant_spike_events_total{flow="spike-centric"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("snapshot missing %s", want)
		}
	}
}
