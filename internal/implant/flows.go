package implant

import (
	"errors"

	"mindful/internal/dsp"
)

// The two reduced-rate dataflows beyond Fig. 3's pair: feature-centric
// (transmit band-power features at a decimated rate) and spike-centric
// (transmit spike events only — the on-chip detection path Neuralink-style
// designs use). Both are "hardware-efficient methods to detect patterns in
// neural activity" in the paper's Section 7 sense: they buy uplink
// reduction with far less computation than a DNN.

// featureState holds the per-channel extractors of the feature flow.
type featureState struct {
	extractors []*dsp.BandPowerExtractor
	// scale maps envelope power to the ADC's input range.
	scale float64
	// buf is the reused output vector (valid until the next process call).
	buf []float64
}

func newFeatureState(channels int, fsHz float64, fullScale float64) (*featureState, error) {
	st := &featureState{scale: fullScale}
	for c := 0; c < channels; c++ {
		// High-gamma extractor when the band fits; otherwise a generic
		// low/quarter-Nyquist band so low-rate interfaces still work.
		var e *dsp.BandPowerExtractor
		var err error
		if fsHz > 400 {
			e, err = dsp.NewHighGammaExtractor(fsHz)
		} else {
			e, err = dsp.NewBandPowerExtractor(fsHz/20, fsHz/4, fsHz/50, fsHz, 10)
		}
		if err != nil {
			return nil, err
		}
		st.extractors = append(st.extractors, e)
	}
	return st, nil
}

// process consumes one sample vector; when the decimator fires it returns
// the feature vector mapped into [−fullScale, fullScale] for the ADC. The
// returned slice is reused by the next call.
func (st *featureState) process(samples []float64) ([]float64, bool) {
	var out []float64
	emitted := false
	for c, x := range samples {
		v, ok := st.extractors[c].Process(x)
		if ok {
			if out == nil {
				if cap(st.buf) < len(samples) {
					st.buf = make([]float64, len(samples))
				}
				out = st.buf[:len(samples)]
				for i := range out {
					out[i] = 0
				}
			}
			// Envelope power is non-negative; clamp into the ADC range.
			if v > st.scale {
				v = st.scale
			}
			out[c] = v
			emitted = true
		}
	}
	return out, emitted
}

// spikeState holds the per-channel streaming detectors of the spike flow.
type spikeState struct {
	detectors []*dsp.StreamingDetector
	// events is the reused event vector (valid until the next process call).
	events []uint16
}

func newSpikeState(channels int, fsHz float64, calibration int) (*spikeState, error) {
	if calibration < 8 {
		return nil, errors.New("implant: spike flow needs a calibration window of at least 8 samples")
	}
	st := &spikeState{}
	for c := 0; c < channels; c++ {
		d, err := dsp.NewStreamingDetector(fsHz, calibration)
		if err != nil {
			return nil, err
		}
		st.detectors = append(st.detectors, d)
	}
	return st, nil
}

// process returns the indices of channels that spiked this tick. The
// returned slice is reused by the next call.
func (st *spikeState) process(samples []float64) []uint16 {
	events := st.events[:0]
	for c, x := range samples {
		if st.detectors[c].Process(x) {
			events = append(events, uint16(c))
		}
	}
	st.events = events
	return events
}
