package implant

import (
	"testing"

	"mindful/internal/comm"
	"mindful/internal/units"
)

func TestFeatureCentricFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Neural.Channels = 32
	cfg.Flow = FeatureCentric
	im, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var frames int
	var width int
	im.OnFrame(func(buf []byte) {
		f, err := comm.Decode(buf)
		if err != nil {
			t.Fatalf("feature frame corrupt: %v", err)
		}
		frames++
		width = len(f.Samples)
	})
	const ticks = 2000 // 1 s at 2 kHz
	if err := im.Run(ticks); err != nil {
		t.Fatal(err)
	}
	st := im.Stats()
	// High-gamma extractor at 2 kHz decimates ÷20 → 100 vectors/s.
	if st.FeatureVectors != ticks/20 {
		t.Errorf("feature vectors = %d, want %d", st.FeatureVectors, ticks/20)
	}
	if frames != int(st.FeatureVectors) || width != 32 {
		t.Errorf("frames = %d (width %d)", frames, width)
	}
	// The whole point: a large uplink reduction vs raw streaming.
	if cr := st.CompressionRatio(); cr < 10 {
		t.Errorf("feature flow compression = %.1f×, want ≥ 10×", cr)
	}
	if st.Flow.String() != "feature-centric" {
		t.Errorf("flow name = %q", st.Flow)
	}
}

func TestSpikeCentricFlow(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Neural.Channels = 32
	cfg.Neural.ActiveFraction = 1
	cfg.Neural.MeanRateHz = 20
	cfg.Neural.NoiseRMS = 0.06
	cfg.Neural.LFPAmplitude = 0.05
	cfg.Neural.SampleRate = units.Kilohertz(8)
	cfg.Flow = SpikeCentric
	cfg.SpikeCalibrationTicks = 2000
	im, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	im.OnFrame(func(buf []byte) {
		f, err := comm.Decode(buf)
		if err != nil {
			t.Fatalf("spike frame corrupt: %v", err)
		}
		for _, ch := range f.Samples {
			if int(ch) >= cfg.Neural.Channels {
				t.Fatalf("spike event names channel %d of %d", ch, cfg.Neural.Channels)
			}
		}
	})
	const seconds = 3
	ticks := int(cfg.Neural.SampleRate.Hz()) * seconds
	if err := im.Run(ticks); err != nil {
		t.Fatal(err)
	}
	st := im.Stats()
	// Expected events ≈ channels × rate × post-calibration time; detectors
	// also miss some and false-trigger some — allow a wide band.
	expected := float64(32 * 20 * seconds)
	if float64(st.SpikeEvents) < 0.3*expected || float64(st.SpikeEvents) > 2.5*expected {
		t.Errorf("spike events = %d, expected ≈%v", st.SpikeEvents, expected)
	}
	// Event streaming must crush the uplink relative to raw data.
	if cr := st.CompressionRatio(); cr < 20 {
		t.Errorf("spike flow compression = %.1f×, want ≥ 20×", cr)
	}
	if st.Flow.String() != "spike-centric" {
		t.Errorf("flow name = %q", st.Flow)
	}
}

func TestSpikeFlowValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flow = SpikeCentric
	cfg.SpikeCalibrationTicks = 4 // too short
	if _, err := New(cfg); err == nil {
		t.Errorf("tiny calibration window should fail")
	}
	// Default window applies when zero.
	cfg.SpikeCalibrationTicks = 0
	if _, err := New(cfg); err != nil {
		t.Errorf("default calibration should work: %v", err)
	}
}

func TestUnknownFlowName(t *testing.T) {
	if Dataflow(99).String() != "unknown" {
		t.Errorf("unknown flow name wrong")
	}
}
