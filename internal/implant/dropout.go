package implant

import (
	"errors"
	"fmt"

	"mindful/internal/dsp"
)

// Dropout configures the Section 6.2 channel-dropout optimization in the
// running pipeline: during a calibration window the implant records all
// channels and ranks them by detected spiking activity (the hardware-
// efficient proxy for information content); afterwards only the Keep most
// active channels are digitized and transmitted, shrinking both the
// computation input and the uplink volume.
type Dropout struct {
	// Enabled turns the optimization on.
	Enabled bool
	// CalibrationTicks is the length of the ranking window in samples.
	CalibrationTicks int
	// Keep is the number of channels retained after calibration (n′).
	Keep int
}

// dropoutState tracks calibration progress inside an implant.
type dropoutState struct {
	cfg      Dropout
	calBlock [][]float64
	selected []int // nil until calibration completes
}

func newDropoutState(cfg Dropout, channels int) (*dropoutState, error) {
	if !cfg.Enabled {
		return nil, nil
	}
	if cfg.CalibrationTicks <= 0 {
		return nil, errors.New("implant: dropout needs a positive calibration window")
	}
	if cfg.Keep <= 0 || cfg.Keep > channels {
		return nil, fmt.Errorf("implant: dropout keep %d outside 1..%d", cfg.Keep, channels)
	}
	return &dropoutState{cfg: cfg}, nil
}

// observe consumes one full-width sample vector during calibration; once
// the window fills it computes the selection. It returns the channel
// subset to transmit (nil while still calibrating on the full set).
func (s *dropoutState) observe(samples []float64, fsHz float64) []int {
	if s == nil {
		return nil
	}
	if s.selected != nil {
		return s.selected
	}
	row := make([]float64, len(samples))
	copy(row, samples)
	s.calBlock = append(s.calBlock, row)
	if len(s.calBlock) >= s.cfg.CalibrationTicks {
		ranked := dsp.RankChannels(s.calBlock, fsHz)
		s.selected = dsp.SelectActive(ranked, s.cfg.Keep)
		s.calBlock = nil
	}
	return s.selected
}

// Selected returns the chosen channel subset (nil before calibration
// completes).
func (s *dropoutState) Selected() []int {
	if s == nil {
		return nil
	}
	return s.selected
}
