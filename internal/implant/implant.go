// Package implant is the end-to-end virtual implant: it wires the
// synthetic neural interface, the ADC, and either the packetizer
// (communication-centric dataflow) or an on-implant network
// (computation-centric dataflow) into one tick-driven pipeline with
// throughput, energy and safety accounting — the runnable counterpart of
// the paper's Fig. 3.
package implant

import (
	"errors"
	"fmt"

	"mindful/internal/comm"
	"mindful/internal/fault"
	"mindful/internal/mac"
	"mindful/internal/neural"
	"mindful/internal/nn"
	"mindful/internal/obs"
	"mindful/internal/thermal"
	"mindful/internal/units"
)

// Dataflow selects the Section 3.1 processing strategy.
type Dataflow int

// The dataflows: Fig. 3's pair plus the two reduced-rate strategies the
// paper's Section 7 points at (pattern detection instead of full DNNs).
const (
	// CommCentric digitizes, packetizes and transmits raw neural data.
	CommCentric Dataflow = iota
	// ComputeCentric runs an on-implant network and transmits its output.
	ComputeCentric
	// FeatureCentric transmits band-power features at a decimated rate.
	FeatureCentric
	// SpikeCentric transmits spike events from on-chip detection.
	SpikeCentric
)

// String names the dataflow.
func (d Dataflow) String() string {
	switch d {
	case CommCentric:
		return "communication-centric"
	case ComputeCentric:
		return "computation-centric"
	case FeatureCentric:
		return "feature-centric"
	case SpikeCentric:
		return "spike-centric"
	default:
		return "unknown"
	}
}

// Config assembles an implant.
type Config struct {
	Neural neural.Config
	ADC    neural.ADC
	Flow   Dataflow
	// Network is required for ComputeCentric: its input shape must be
	// 1 × channels (one inference per sample vector, the paper's
	// real-time discipline).
	Network *nn.Network
	// Radio is the constant-Eb transceiver.
	Radio comm.FixedEbTransmitter
	// ComputeNode prices on-implant MACs (energy per step).
	ComputeNode mac.TechNode
	// SensingPower is the analog front end's draw.
	SensingPower units.Power
	// Area is the implant's tissue-contact area for safety checks.
	Area units.Area
	// Dropout enables the Section 6.2 channel-dropout optimization
	// (communication-centric flow only).
	Dropout Dropout
	// SpikeCalibrationTicks is the noise-calibration window of the
	// spike-centric flow (default 256 samples when zero).
	SpikeCalibrationTicks int
	// Electrodes optionally injects per-channel front-end faults
	// (dead / stuck-at / gain drift) into the raw samples before
	// digitization. Nil disables injection.
	Electrodes *fault.ElectrodeBank
	// Brownout optionally blanks the transmitter for tick windows: the
	// pipeline keeps sampling and framing (the sequence counter
	// advances), but blanked frames are never radiated, so the wearable
	// sees a sequence gap. Nil keeps the radio always powered.
	Brownout *fault.Brownout
}

// DefaultConfig returns a 128-channel communication-centric implant
// matching SoC 1's per-channel characteristics at reduced scale.
func DefaultConfig() Config {
	ncfg := neural.DefaultConfig()
	return Config{
		Neural:       ncfg,
		ADC:          neural.DefaultADC(),
		Flow:         CommCentric,
		Radio:        comm.FixedEbTransmitter{Eb: units.PicojoulesPerBit(237)},
		ComputeNode:  mac.NanGate45,
		SensingPower: units.Milliwatts(2.4), // ≈19 µW/channel, BISC-like
		Area:         units.SquareMillimetres(18),
	}
}

// Implant is a running pipeline instance.
type Implant struct {
	cfg  Config
	gen  *neural.Generator
	pkt  *comm.Packetizer
	drop *dropoutState
	feat *featureState
	spk  *spikeState

	spikeEvents    int64
	featureVectors int64

	// blanked counts frames framed but never radiated (brownout);
	// blankedNow is the current tick's brownout state.
	blanked    int64
	blankedNow bool

	ticks      int64
	frames     int64
	inferences int64
	bitsSent   int64
	macSteps   int64
	// lastOutput is the most recent DNN output (compute-centric).
	lastOutput []float64
	// onFrame receives every encoded frame when set (the "wearable").
	onFrame func([]byte)
	// Scratch buffers reused across ticks so the steady-state tick loop
	// stays allocation-free (see OnFrame for the aliasing contract).
	sampleBuf  []float64
	subBuf     []float64
	inBuf      []float64
	codeBuf    []uint16
	outCodeBuf []uint16
	frameBuf   []byte
	// o holds pre-resolved observability handles; its zero value (and nil
	// instruments) short-circuits every hook, keeping the unobserved tick
	// loop within a few nil checks of the bare pipeline.
	o implantObs
}

// implantObs is the implant's bundle of pre-resolved metric handles and
// tracer. All obs instruments are nil-receiver-safe, so the zero value is
// a complete no-op observer.
type implantObs struct {
	attached bool
	tracer   *obs.Tracer

	ticks, frames, bits        *obs.Counter
	inferences, macSteps       *obs.Counter
	features, spikes           *obs.Counter
	droppedChannelSamples      *obs.Counter
	blankedFrames              *obs.Counter
	faultyChannels             *obs.Gauge
	computeEnergy, radioEnergy *obs.Gauge

	// Cached per-unit energies so per-tick gauge updates stay mul+store.
	stepJoules, bitJoules float64
}

// SetObserver wires the implant's hot path to an observability sink:
// per-tick stage spans (sense → adc → process → transmit), frame/bit/drop
// counters and cumulative energy gauges. Pass nil to detach; without an
// observer the instrumentation short-circuits to nil checks.
func (im *Implant) SetObserver(o *obs.Observer) {
	if o == nil {
		im.o = implantObs{}
		return
	}
	m := o.Metrics
	flow := obs.Label{Key: "flow", Value: im.cfg.Flow.String()}
	im.o = implantObs{
		attached:              true,
		tracer:                o.Tracer,
		ticks:                 m.Counter("implant_ticks_total", flow),
		frames:                m.Counter("implant_frames_total", flow),
		bits:                  m.Counter("implant_bits_sent_total", flow),
		inferences:            m.Counter("implant_inferences_total", flow),
		macSteps:              m.Counter("implant_mac_steps_total", flow),
		features:              m.Counter("implant_feature_vectors_total", flow),
		spikes:                m.Counter("implant_spike_events_total", flow),
		droppedChannelSamples: m.Counter("implant_dropped_channel_samples_total", flow),
		blankedFrames:         m.Counter("implant_frames_blanked_total", flow),
		faultyChannels:        m.Gauge("implant_faulty_channels", flow),
		computeEnergy:         m.Gauge("implant_compute_energy_joules", flow),
		radioEnergy:           m.Gauge("implant_radio_energy_joules", flow),
		stepJoules:            im.cfg.ComputeNode.EnergyPerStep().Joules(),
		bitJoules:             im.cfg.Radio.Eb.Joules(),
	}
	im.o.faultyChannels.Set(float64(im.cfg.Electrodes.FaultyChannels()))
	m.Help("implant_ticks_total", "Pipeline ticks executed.")
	m.Help("implant_frames_total", "Uplink frames emitted.")
	m.Help("implant_bits_sent_total", "Bits handed to the radio.")
	m.Help("implant_inferences_total", "On-implant DNN inferences.")
	m.Help("implant_mac_steps_total", "MAC steps executed on-implant.")
	m.Help("implant_feature_vectors_total", "Band-power feature vectors emitted.")
	m.Help("implant_spike_events_total", "Detected spike events.")
	m.Help("implant_dropped_channel_samples_total", "Samples suppressed by channel dropout.")
	m.Help("implant_frames_blanked_total", "Frames framed but not radiated during brownouts.")
	m.Help("implant_faulty_channels", "Electrode channels with an injected front-end fault.")
	m.Help("implant_compute_energy_joules", "Cumulative on-implant compute energy.")
	m.Help("implant_radio_energy_joules", "Cumulative radio transmit energy.")
}

// New validates the configuration and builds the pipeline.
func New(cfg Config) (*Implant, error) {
	gen, err := neural.New(cfg.Neural)
	if err != nil {
		return nil, err
	}
	if cfg.Flow == ComputeCentric {
		if cfg.Network == nil {
			return nil, errors.New("implant: computation-centric flow requires a network")
		}
		if cfg.Network.InCh != 1 || cfg.Network.InLen != cfg.Neural.Channels {
			return nil, fmt.Errorf("implant: network input %d×%d does not match %d channels",
				cfg.Network.InCh, cfg.Network.InLen, cfg.Neural.Channels)
		}
	}
	pkt, err := comm.NewPacketizer(cfg.ADC.Bits)
	if err != nil {
		return nil, err
	}
	if cfg.ComputeNode.TMAC <= 0 {
		return nil, errors.New("implant: compute node has no timing")
	}
	if cfg.Dropout.Enabled && cfg.Flow != CommCentric {
		return nil, errors.New("implant: channel dropout requires the communication-centric flow")
	}
	drop, err := newDropoutState(cfg.Dropout, cfg.Neural.Channels)
	if err != nil {
		return nil, err
	}
	im := &Implant{cfg: cfg, gen: gen, pkt: pkt, drop: drop}
	switch cfg.Flow {
	case FeatureCentric:
		im.feat, err = newFeatureState(cfg.Neural.Channels, cfg.Neural.SampleRate.Hz(), cfg.ADC.FullScale)
		if err != nil {
			return nil, err
		}
	case SpikeCentric:
		calib := cfg.SpikeCalibrationTicks
		if calib == 0 {
			calib = 256
		}
		im.spk, err = newSpikeState(cfg.Neural.Channels, cfg.Neural.SampleRate.Hz(), calib)
		if err != nil {
			return nil, err
		}
	}
	return im, nil
}

// ActiveChannels returns the channel subset selected by dropout, or nil
// when dropout is off or still calibrating (all channels active).
func (im *Implant) ActiveChannels() []int {
	return im.drop.Selected()
}

// OnFrame registers a sink for encoded uplink frames (e.g. a simulated
// wearable receiver). Pass nil to detach. The frame buffer is reused by
// the next tick, so a sink that needs the bytes beyond the call must copy
// them.
func (im *Implant) OnFrame(f func([]byte)) { im.onFrame = f }

// SetIntent forwards a latent intent to the neural substrate.
func (im *Implant) SetIntent(x, y float64) { im.gen.SetIntent(x, y) }

// LastOutput returns the most recent DNN output (nil for comm-centric).
func (im *Implant) LastOutput() []float64 { return im.lastOutput }

// emit frames one value vector and feeds the wearable sink. Values must
// fit the ADC bit width (spike-centric channel indices do whenever the
// channel count stays within the code range). The frame is built in a
// scratch buffer owned by the implant and is only valid for the duration
// of the onFrame callback.
func (im *Implant) emit(codes []uint16) error {
	frame, err := im.pkt.AppendEncode(im.frameBuf[:0], codes)
	if err != nil {
		return err
	}
	im.frameBuf = frame
	if im.blankedNow {
		// Brownout: the frame was built (the sequence counter advanced)
		// but the radio is dark — nothing is counted as sent, and the
		// wearable will see this frame as a sequence gap.
		im.blanked++
		im.o.blankedFrames.Inc()
		return nil
	}
	bits := int64(len(frame) * 8)
	im.bitsSent += bits
	im.frames++
	im.o.frames.Inc()
	im.o.bits.Add(bits)
	if im.onFrame != nil {
		im.onFrame(frame)
	}
	return nil
}

// Tick advances the pipeline by one sample period.
func (im *Implant) Tick() error {
	tr := im.o.tracer
	tick := tr.Start("implant.tick", 0)
	im.blankedNow = im.cfg.Brownout.Tick()
	sp := tr.Start("implant.sense", tick)
	samples := im.gen.NextInto(im.sampleBuf)
	im.sampleBuf = samples
	// Electrode faults act at the analog front end: before dropout
	// calibration and digitization, like the physics they model.
	im.cfg.Electrodes.Apply(samples)
	if sel := im.drop.observe(samples, im.cfg.Neural.SampleRate.Hz()); sel != nil {
		// Post-calibration: digitize and ship only the active subset.
		im.o.droppedChannelSamples.Add(int64(im.cfg.Neural.Channels - len(sel)))
		sub := im.subBuf[:0]
		for _, c := range sel {
			sub = append(sub, samples[c])
		}
		im.subBuf = sub
		samples = sub
	}
	tr.End(sp)
	sp = tr.Start("implant.adc", tick)
	codes := im.cfg.ADC.AppendQuantize(im.codeBuf[:0], samples)
	im.codeBuf = codes
	tr.End(sp)
	switch im.cfg.Flow {
	case CommCentric:
		sp = tr.Start("implant.transmit", tick)
		err := im.emit(codes)
		tr.End(sp)
		if err != nil {
			tr.End(tick)
			return err
		}
	case ComputeCentric:
		sp = tr.Start("implant.nn", tick)
		in := im.inBuf[:0]
		for _, c := range codes {
			in = append(in, im.cfg.ADC.Dequantize(c))
		}
		im.inBuf = in
		out, err := im.cfg.Network.Forward(nn.FromVector(in))
		if err != nil {
			tr.End(sp)
			tr.End(tick)
			return err
		}
		im.lastOutput = out.Data
		im.inferences++
		im.o.inferences.Inc()
		macs, err := im.cfg.Network.TotalMACs()
		if err != nil {
			tr.End(sp)
			tr.End(tick)
			return err
		}
		im.macSteps += int64(macs)
		im.o.macSteps.Add(int64(macs))
		tr.End(sp)
		// Transmit the output values at the ADC width in a frame.
		outCodes := im.cfg.ADC.AppendQuantize(im.outCodeBuf[:0], out.Data)
		im.outCodeBuf = outCodes
		sp = tr.Start("implant.transmit", tick)
		err = im.emit(outCodes)
		tr.End(sp)
		if err != nil {
			tr.End(tick)
			return err
		}
	case FeatureCentric:
		sp = tr.Start("implant.dsp", tick)
		features, ok := im.feat.process(samples)
		tr.End(sp)
		if !ok {
			break // decimator has not fired this tick
		}
		im.featureVectors++
		im.o.features.Inc()
		sp = tr.Start("implant.transmit", tick)
		featCodes := im.cfg.ADC.AppendQuantize(im.outCodeBuf[:0], features)
		im.outCodeBuf = featCodes
		err := im.emit(featCodes)
		tr.End(sp)
		if err != nil {
			tr.End(tick)
			return err
		}
	case SpikeCentric:
		sp = tr.Start("implant.dsp", tick)
		events := im.spk.process(samples)
		tr.End(sp)
		im.spikeEvents += int64(len(events))
		im.o.spikes.Add(int64(len(events)))
		if len(events) == 0 {
			break // nothing to transmit this tick
		}
		sp = tr.Start("implant.transmit", tick)
		err := im.emit(events)
		tr.End(sp)
		if err != nil {
			tr.End(tick)
			return err
		}
	default:
		tr.End(tick)
		return fmt.Errorf("implant: unknown dataflow %d", im.cfg.Flow)
	}
	im.ticks++
	if im.o.attached {
		im.o.ticks.Inc()
		im.o.computeEnergy.Set(float64(im.macSteps) * im.o.stepJoules)
		im.o.radioEnergy.Set(float64(im.bitsSent) * im.o.bitJoules)
	}
	tr.End(tick)
	return nil
}

// Run advances n ticks.
func (im *Implant) Run(n int) error {
	for i := 0; i < n; i++ {
		if err := im.Tick(); err != nil {
			return err
		}
	}
	return nil
}

// Stats summarizes a run.
type Stats struct {
	Flow       Dataflow
	Ticks      int64
	Frames     int64
	Inferences int64
	BitsSent   int64
	// FeatureVectors and SpikeEvents count the reduced-rate flows' output.
	FeatureVectors int64
	SpikeEvents    int64
	// BlankedFrames counts frames framed but never radiated (brownouts);
	// FaultyChannels the electrodes with an injected front-end fault.
	BlankedFrames  int64
	FaultyChannels int
	// Channels and SampleBits echo the configuration for derived metrics.
	Channels   int
	SampleBits int
	// TxRate is the average uplink rate implied by the sample clock.
	TxRate units.DataRate
	// SensingRate is Eq. (6)'s raw data rate d·n·f.
	SensingRate units.DataRate
	// RadioPower, ComputePower, SensingPower and Total are the average
	// power figures of the run.
	RadioPower   units.Power
	ComputePower units.Power
	SensingPower units.Power
	// Safety is the thermal check of Total over the implant area.
	Safety thermal.Check
}

// Total returns the implant's total average power.
func (s Stats) Total() units.Power {
	return s.RadioPower + s.ComputePower + s.SensingPower
}

// RawBits returns the digitized sensing volume of the run: ticks · n · d.
func (s Stats) RawBits() int64 {
	return s.Ticks * int64(s.Channels) * int64(s.SampleBits)
}

// CompressionRatio returns raw sensing bits over transmitted bits — the
// data-volume reduction the computation-centric dataflow buys (< 1 for a
// communication-centric implant, whose framing adds overhead).
func (s Stats) CompressionRatio() float64 {
	if s.BitsSent == 0 {
		return 0
	}
	return float64(s.RawBits()) / float64(s.BitsSent)
}

// Stats computes the summary for the run so far.
func (im *Implant) Stats() Stats {
	f := im.cfg.Neural.SampleRate
	st := Stats{
		Flow:           im.cfg.Flow,
		Ticks:          im.ticks,
		Frames:         im.frames,
		Inferences:     im.inferences,
		BitsSent:       im.bitsSent,
		FeatureVectors: im.featureVectors,
		SpikeEvents:    im.spikeEvents,
		BlankedFrames:  im.blanked,
		FaultyChannels: im.cfg.Electrodes.FaultyChannels(),
		Channels:       im.cfg.Neural.Channels,
		SampleBits:     im.cfg.ADC.Bits,
		SensingRate:    neural.SensingThroughput(im.cfg.Neural.Channels, im.cfg.ADC.Bits, f),
	}
	if im.ticks > 0 {
		seconds := float64(im.ticks) * f.Period()
		st.TxRate = units.BitsPerSecond(float64(im.bitsSent) / seconds)
		st.RadioPower = im.cfg.Radio.Power(st.TxRate)
		st.ComputePower = units.Power(float64(im.macSteps) * im.cfg.ComputeNode.EnergyPerStep().Joules() / seconds)
	}
	st.SensingPower = im.cfg.SensingPower
	st.Safety = thermal.Evaluate(st.Total(), im.cfg.Area)
	return st
}
