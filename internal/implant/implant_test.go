package implant

import (
	"math"
	"math/rand"
	"testing"

	"mindful/internal/comm"
	"mindful/internal/nn"
	"mindful/internal/units"
)

func TestCommCentricEndToEnd(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Neural.Channels = 64
	im, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Wearable side: decode every frame and count samples.
	var decoded int
	var lastSeq uint32
	im.OnFrame(func(buf []byte) {
		f, err := comm.Decode(buf)
		if err != nil {
			t.Fatalf("wearable decode failed: %v", err)
		}
		if len(f.Samples) != 64 {
			t.Fatalf("frame carries %d samples", len(f.Samples))
		}
		if decoded > 0 && f.Seq != lastSeq+1 {
			t.Fatalf("sequence gap: %d after %d", f.Seq, lastSeq)
		}
		lastSeq = f.Seq
		decoded++
	})
	const ticks = 500
	if err := im.Run(ticks); err != nil {
		t.Fatal(err)
	}
	if decoded != ticks {
		t.Errorf("decoded %d frames, want %d", decoded, ticks)
	}
	st := im.Stats()
	if st.Frames != ticks || st.Ticks != ticks || st.Inferences != 0 {
		t.Errorf("stats wrong: %+v", st)
	}
	// Tx rate ≈ sensing rate + framing overhead (within 2%).
	if st.TxRate.BPS() < st.SensingRate.BPS() {
		t.Errorf("comm-centric tx rate below raw rate")
	}
	// Per-sample framing of 64 channels adds the 14-byte header+CRC to an
	// 80-byte payload: ≈17.5% overhead.
	if st.TxRate.BPS() > 1.2*st.SensingRate.BPS() {
		t.Errorf("framing overhead too large: %v vs %v", st.TxRate, st.SensingRate)
	}
	// Compression ratio below 1 (overhead), but not by much.
	if cr := st.CompressionRatio(); cr <= 0.8 || cr >= 1.0 {
		t.Errorf("comm-centric compression = %v, want just under 1", cr)
	}
	if st.ComputePower != 0 {
		t.Errorf("comm-centric compute power should be 0")
	}
}

func smallNetwork(t *testing.T, channels, labels int) *nn.Network {
	t.Helper()
	rng := rand.New(rand.NewSource(9))
	net, err := nn.NewNetwork(1, channels,
		nn.RandDense(rng, channels, 32, nn.ReLU),
		nn.RandDense(rng, 32, labels, nn.Identity),
	)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestComputeCentricReducesData(t *testing.T) {
	// The paper's central computation-centric claim: on-implant DNN
	// output is far smaller than raw data.
	cfg := DefaultConfig()
	cfg.Neural.Channels = 64
	cfg.Flow = ComputeCentric
	cfg.Network = smallNetwork(t, 64, 4)
	im, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Run(200); err != nil {
		t.Fatal(err)
	}
	st := im.Stats()
	if st.Inferences != 200 {
		t.Errorf("inferences = %d", st.Inferences)
	}
	if len(im.LastOutput()) != 4 {
		t.Errorf("last output size = %d", len(im.LastOutput()))
	}
	if cr := st.CompressionRatio(); cr < 4 {
		t.Errorf("compression ratio = %v, want ≫ 1", cr)
	}
	if st.ComputePower <= 0 {
		t.Errorf("compute power should be positive")
	}
	// Against the comm-centric twin: far lower radio power, some compute.
	ccCfg := DefaultConfig()
	ccCfg.Neural.Channels = 64
	cc, err := New(ccCfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := cc.Run(200); err != nil {
		t.Fatal(err)
	}
	if st.RadioPower.Watts() >= cc.Stats().RadioPower.Watts()/4 {
		t.Errorf("computation-centric radio power %v not well below comm-centric %v",
			st.RadioPower, cc.Stats().RadioPower)
	}
}

func TestSafetyAccounting(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Neural.Channels = 32
	cfg.Area = units.SquareMillimetres(100)
	im, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Run(100); err != nil {
		t.Fatal(err)
	}
	st := im.Stats()
	if !st.Safety.Safe() {
		t.Errorf("large-area implant should be safe: %v", st.Safety)
	}
	// Shrinking the area below the required budget must flip the check.
	cfg.Area = units.SquareMillimetres(0.1)
	im2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := im2.Run(100); err != nil {
		t.Fatal(err)
	}
	if im2.Stats().Safety.Safe() {
		t.Errorf("tiny implant should violate the budget")
	}
	if got := st.Total().Watts(); math.Abs(got-(st.RadioPower+st.ComputePower+st.SensingPower).Watts()) > 1e-15 {
		t.Errorf("total power does not decompose")
	}
}

func TestIntentReachesSubstrate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Neural.Channels = 16
	im, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	im.SetIntent(0.5, -0.5)
	if x, y := im.gen.Intent(); x != 0.5 || y != -0.5 {
		t.Errorf("intent not forwarded: %v, %v", x, y)
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Flow = ComputeCentric
	if _, err := New(cfg); err == nil {
		t.Errorf("compute-centric without network should fail")
	}
	cfg.Network = smallNetwork(t, 32, 4) // mismatched channel count
	if _, err := New(cfg); err == nil {
		t.Errorf("network/channel mismatch should fail")
	}
	bad := DefaultConfig()
	bad.Neural.Channels = 0
	if _, err := New(bad); err == nil {
		t.Errorf("invalid neural config should fail")
	}
	badADC := DefaultConfig()
	badADC.ADC.Bits = 0
	if _, err := New(badADC); err == nil {
		t.Errorf("invalid ADC should fail")
	}
	noNode := DefaultConfig()
	noNode.ComputeNode.TMAC = 0
	if _, err := New(noNode); err == nil {
		t.Errorf("node without timing should fail")
	}
}

func TestDataflowString(t *testing.T) {
	if CommCentric.String() != "communication-centric" {
		t.Errorf("CommCentric string")
	}
	if ComputeCentric.String() != "computation-centric" {
		t.Errorf("ComputeCentric string")
	}
}

func TestStatsBeforeRun(t *testing.T) {
	im, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	st := im.Stats()
	if st.Ticks != 0 || st.TxRate != 0 || st.RadioPower != 0 {
		t.Errorf("fresh implant stats not zero: %+v", st)
	}
	if st.CompressionRatio() != 0 {
		t.Errorf("fresh compression ratio should be 0")
	}
}
