// Package wpt models inductive wireless power transfer to the implant,
// the powering scheme the paper's Section 8 flags as raising "questions
// about power efficiency and heat generation". The model captures exactly
// that interaction: a two-coil resonant link whose efficiency follows the
// standard k²Q₁Q₂ expression, a rectifier with finite efficiency, and the
// resulting *on-implant dissipation* — which spends part of the thermal
// budget before a single channel is sensed.
package wpt

import (
	"fmt"
	"math"

	"mindful/internal/thermal"
	"mindful/internal/units"
)

// Link is a two-coil inductive power link.
type Link struct {
	// Coupling is the coil coupling coefficient k at the nominal
	// separation, in (0, 1).
	Coupling float64
	// QTx and QRx are the transmitter and receiver coil quality factors.
	QTx, QRx float64
	// RectifierEff is the implant-side AC→DC conversion efficiency (0,1].
	RectifierEff float64
	// NominalGapM is the coil separation at which Coupling applies
	// (scalp–implant distance through skin and skull, ≈10 mm).
	NominalGapM float64
}

// TypicalLink returns a representative transcutaneous link: k = 0.05 at a
// 10 mm gap, Q = 100/30 (external/implanted coil), 80% rectifier.
func TypicalLink() Link {
	return Link{Coupling: 0.05, QTx: 100, QRx: 30, RectifierEff: 0.8, NominalGapM: 0.010}
}

// Validate checks physical plausibility.
func (l Link) Validate() error {
	if l.Coupling <= 0 || l.Coupling >= 1 {
		return fmt.Errorf("wpt: coupling %g outside (0, 1)", l.Coupling)
	}
	if l.QTx <= 0 || l.QRx <= 0 {
		return fmt.Errorf("wpt: non-positive quality factor")
	}
	if l.RectifierEff <= 0 || l.RectifierEff > 1 {
		return fmt.Errorf("wpt: rectifier efficiency %g outside (0, 1]", l.RectifierEff)
	}
	if l.NominalGapM <= 0 {
		return fmt.Errorf("wpt: non-positive nominal gap")
	}
	return nil
}

// LinkEfficiency returns the optimal coil-to-coil power transfer
// efficiency for a figure of merit u² = k²·Q₁·Q₂:
//
//	η = u² / (1 + √(1+u²))²
func (l Link) LinkEfficiency() (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	u2 := l.Coupling * l.Coupling * l.QTx * l.QRx
	root := 1 + math.Sqrt(1+u2)
	return u2 / (root * root), nil
}

// EndToEndEfficiency returns coil link × rectifier efficiency.
func (l Link) EndToEndEfficiency() (float64, error) {
	eta, err := l.LinkEfficiency()
	if err != nil {
		return 0, err
	}
	return eta * l.RectifierEff, nil
}

// CouplingAt returns the coupling coefficient at a different gap, using
// the near-field cube rolloff k(d) = k₀ / (1 + (d/d₀)³ − 1)... normalized
// so k(NominalGap) = Coupling and k falls with the cube of distance beyond
// the coil scale.
func (l Link) CouplingAt(gapM float64) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, err
	}
	if gapM <= 0 {
		return 0, fmt.Errorf("wpt: non-positive gap")
	}
	ratio := gapM / l.NominalGapM
	return l.Coupling / (ratio * ratio * ratio), nil
}

// AtGap returns a copy of the link re-evaluated at a different separation.
func (l Link) AtGap(gapM float64) (Link, error) {
	k, err := l.CouplingAt(gapM)
	if err != nil {
		return Link{}, err
	}
	if k >= 1 {
		k = 0.999 // gap inside the coil scale; clamp to physical range
	}
	out := l
	out.Coupling = k
	return out, nil
}

// Delivery describes one power-transfer operating point.
type Delivery struct {
	// TxPower is the external transmit power.
	TxPower units.Power
	// Delivered is the DC power available to the implant's circuits.
	Delivered units.Power
	// ImplantHeat is the power dissipated *on the implant* by the
	// receive coil and rectifier — it heats the tissue exactly like
	// circuit power does.
	ImplantHeat units.Power
}

// Deliver computes the operating point for a given transmit power.
// Implant-side dissipation is modeled as half the coil-link loss (the
// other half is in the external coil) plus the full rectifier loss.
func (l Link) Deliver(tx units.Power) (Delivery, error) {
	eta, err := l.LinkEfficiency()
	if err != nil {
		return Delivery{}, err
	}
	if tx < 0 {
		return Delivery{}, fmt.Errorf("wpt: negative transmit power")
	}
	atCoil := units.Power(tx.Watts() * eta)
	delivered := units.Power(atCoil.Watts() * l.RectifierEff)
	coilLossOnImplant := units.Power(tx.Watts() * (1 - eta) / 2)
	rectLoss := atCoil - delivered
	return Delivery{
		TxPower:     tx,
		Delivered:   delivered,
		ImplantHeat: coilLossOnImplant + rectLoss,
	}, nil
}

// TxForDelivered inverts Deliver: the transmit power needed to put the
// given DC power on the implant rails.
func (l Link) TxForDelivered(dc units.Power) (units.Power, error) {
	eta, err := l.EndToEndEfficiency()
	if err != nil {
		return 0, err
	}
	if dc < 0 {
		return 0, fmt.Errorf("wpt: negative DC power")
	}
	return units.Power(dc.Watts() / eta), nil
}

// EffectiveBudget returns the circuit power actually available on an
// implant of the given area when powered through this link: the thermal
// budget must cover both the circuits *and* the WPT losses dissipated on
// the implant. Solving budget = P_dc + heat(P_dc):
//
//	heat = P_dc · h,  h = ImplantHeat/Delivered at any operating point
//	P_dc = budget / (1 + h)
func (l Link) EffectiveBudget(area units.Area) (units.Power, error) {
	d, err := l.Deliver(units.Watts(1))
	if err != nil {
		return 0, err
	}
	if d.Delivered <= 0 {
		return 0, fmt.Errorf("wpt: link delivers no power")
	}
	h := d.ImplantHeat.Watts() / d.Delivered.Watts()
	budget := thermal.Budget(area)
	return units.Power(budget.Watts() / (1 + h)), nil
}

// BudgetPenalty returns the fraction of the thermal budget consumed by
// WPT losses: 1 − EffectiveBudget/Budget.
func (l Link) BudgetPenalty() (float64, error) {
	eff, err := l.EffectiveBudget(units.SquareMillimetres(100))
	if err != nil {
		return 0, err
	}
	return 1 - eff.Watts()/thermal.Budget(units.SquareMillimetres(100)).Watts(), nil
}
