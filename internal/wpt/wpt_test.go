package wpt

import (
	"math"
	"testing"
	"testing/quick"

	"mindful/internal/thermal"
	"mindful/internal/units"
)

func TestLinkEfficiencyKnownValues(t *testing.T) {
	// u² = k²Q₁Q₂; for k=0.05, Q=100/30: u² = 7.5 →
	// η = 7.5/(1+√8.5)² ≈ 0.487.
	eta, err := TypicalLink().LinkEfficiency()
	if err != nil {
		t.Fatal(err)
	}
	want := 7.5 / math.Pow(1+math.Sqrt(8.5), 2)
	if math.Abs(eta-want) > 1e-12 {
		t.Errorf("link efficiency = %v, want %v", eta, want)
	}
	if eta < 0.4 || eta > 0.6 {
		t.Errorf("typical link efficiency = %v, want ≈0.49", eta)
	}
}

func TestEfficiencyMonotoneInCouplingProperty(t *testing.T) {
	f := func(a, b float64) bool {
		k1 := 0.01 + math.Abs(math.Mod(a, 0.4))
		k2 := k1 + math.Abs(math.Mod(b, 0.4))
		if k2 >= 1 {
			return true
		}
		l1, l2 := TypicalLink(), TypicalLink()
		l1.Coupling, l2.Coupling = k1, k2
		e1, err1 := l1.LinkEfficiency()
		e2, err2 := l2.LinkEfficiency()
		return err1 == nil && err2 == nil && e2 >= e1 && e1 > 0 && e2 < 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDeliveryEnergyConservation(t *testing.T) {
	l := TypicalLink()
	d, err := l.Deliver(units.Milliwatts(100))
	if err != nil {
		t.Fatal(err)
	}
	// Delivered + implant heat + external-coil heat = transmit power.
	eta, _ := l.LinkEfficiency()
	externalHeat := 100 * (1 - eta) / 2
	total := d.Delivered.Milliwatts() + d.ImplantHeat.Milliwatts() + externalHeat
	if math.Abs(total-100) > 1e-9 {
		t.Errorf("energy not conserved: %v mW of 100", total)
	}
	if d.Delivered <= 0 || d.ImplantHeat <= 0 {
		t.Errorf("degenerate delivery: %+v", d)
	}
	if _, err := l.Deliver(units.Milliwatts(-1)); err == nil {
		t.Errorf("negative transmit power should fail")
	}
}

func TestTxForDeliveredInverse(t *testing.T) {
	l := TypicalLink()
	tx, err := l.TxForDelivered(units.Milliwatts(10))
	if err != nil {
		t.Fatal(err)
	}
	d, err := l.Deliver(tx)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Delivered.Milliwatts()-10) > 1e-9 {
		t.Errorf("round trip delivered = %v mW, want 10", d.Delivered.Milliwatts())
	}
	if _, err := l.TxForDelivered(units.Milliwatts(-1)); err == nil {
		t.Errorf("negative DC should fail")
	}
}

func TestCouplingDistanceRolloff(t *testing.T) {
	l := TypicalLink()
	// Doubling the gap cuts coupling 8× (cube law).
	k2, err := l.CouplingAt(2 * l.NominalGapM)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(k2-l.Coupling/8) > 1e-12 {
		t.Errorf("coupling at 2× gap = %v, want %v", k2, l.Coupling/8)
	}
	far, err := l.AtGap(3 * l.NominalGapM)
	if err != nil {
		t.Fatal(err)
	}
	eNear, _ := l.EndToEndEfficiency()
	eFar, err := far.EndToEndEfficiency()
	if err != nil {
		t.Fatal(err)
	}
	if eFar >= eNear {
		t.Errorf("efficiency should collapse with distance: %v vs %v", eFar, eNear)
	}
	// A gap inside the coil scale clamps to a physical coupling.
	close, err := l.AtGap(l.NominalGapM / 10)
	if err != nil {
		t.Fatal(err)
	}
	if close.Coupling >= 1 {
		t.Errorf("coupling must stay below 1, got %v", close.Coupling)
	}
	if _, err := l.CouplingAt(0); err == nil {
		t.Errorf("zero gap should fail")
	}
}

func TestEffectiveBudgetPenalty(t *testing.T) {
	// The Section 8 point quantified: WPT losses on the implant eat a
	// substantial slice of the thermal budget.
	l := TypicalLink()
	area := units.SquareMillimetres(144)
	eff, err := l.EffectiveBudget(area)
	if err != nil {
		t.Fatal(err)
	}
	full := thermal.Budget(area)
	if eff >= full {
		t.Errorf("effective budget %v not below full %v", eff, full)
	}
	penalty, err := l.BudgetPenalty()
	if err != nil {
		t.Fatal(err)
	}
	if penalty < 0.1 || penalty > 0.8 {
		t.Errorf("budget penalty = %.0f%%, want a substantial fraction", penalty*100)
	}
	// Self-consistency: circuits at the effective budget plus the implied
	// heat hit the full budget exactly.
	d, err := l.Deliver(units.Watts(1))
	if err != nil {
		t.Fatal(err)
	}
	h := d.ImplantHeat.Watts() / d.Delivered.Watts()
	if math.Abs(eff.Watts()*(1+h)-full.Watts()) > 1e-12 {
		t.Errorf("budget identity violated")
	}
}

func TestBetterLinkSmallerPenalty(t *testing.T) {
	good := TypicalLink()
	good.Coupling = 0.2
	good.RectifierEff = 0.95
	pGood, err := good.BudgetPenalty()
	if err != nil {
		t.Fatal(err)
	}
	pTypical, err := TypicalLink().BudgetPenalty()
	if err != nil {
		t.Fatal(err)
	}
	if pGood >= pTypical {
		t.Errorf("better link should waste less budget: %v vs %v", pGood, pTypical)
	}
}

func TestValidation(t *testing.T) {
	bad := []Link{
		{Coupling: 0, QTx: 100, QRx: 30, RectifierEff: 0.8, NominalGapM: 0.01},
		{Coupling: 1.0, QTx: 100, QRx: 30, RectifierEff: 0.8, NominalGapM: 0.01},
		{Coupling: 0.05, QTx: 0, QRx: 30, RectifierEff: 0.8, NominalGapM: 0.01},
		{Coupling: 0.05, QTx: 100, QRx: 30, RectifierEff: 0, NominalGapM: 0.01},
		{Coupling: 0.05, QTx: 100, QRx: 30, RectifierEff: 1.2, NominalGapM: 0.01},
		{Coupling: 0.05, QTx: 100, QRx: 30, RectifierEff: 0.8, NominalGapM: 0},
	}
	for i, l := range bad {
		if _, err := l.LinkEfficiency(); err == nil {
			t.Errorf("link %d should fail validation", i)
		}
	}
}
