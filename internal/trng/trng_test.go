package trng

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"mindful/internal/neural"
)

func TestExtractorHarvest(t *testing.T) {
	ex, err := NewExtractor(2)
	if err != nil {
		t.Fatal(err)
	}
	bits := ex.Harvest(nil, []uint16{0b1011, 0b0100})
	want := []byte{1, 1, 0, 0} // LSB-first: 11 from 0b11, 00 from 0b00
	if len(bits) != 4 {
		t.Fatalf("harvested %d bits", len(bits))
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Errorf("bit %d = %d, want %d", i, bits[i], want[i])
		}
	}
	if _, err := NewExtractor(0); err == nil {
		t.Errorf("0 LSBs should fail")
	}
	if _, err := NewExtractor(5); err == nil {
		t.Errorf("5 LSBs should fail")
	}
}

func TestVonNeumannDebiasing(t *testing.T) {
	// 01→0, 10→1, 00/11 dropped.
	out := VonNeumann([]byte{0, 1, 1, 0, 0, 0, 1, 1, 1, 0})
	want := []byte{0, 1, 1}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Errorf("bit %d = %d, want %d", i, out[i], want[i])
		}
	}
	// A heavily biased independent stream becomes unbiased.
	rng := rand.New(rand.NewSource(3))
	biased := make([]byte, 200000)
	for i := range biased {
		if rng.Float64() < 0.8 {
			biased[i] = 1
		}
	}
	deb := VonNeumann(biased)
	ones := 0
	for _, b := range deb {
		ones += int(b)
	}
	frac := float64(ones) / float64(len(deb))
	if math.Abs(frac-0.5) > 0.01 {
		t.Errorf("debiased ones fraction = %v, want ≈0.5", frac)
	}
}

func TestVonNeumannOutputLengthProperty(t *testing.T) {
	f := func(raw []byte) bool {
		for i := range raw {
			raw[i] &= 1
		}
		out := VonNeumann(raw)
		return len(out) <= len(raw)/2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPack(t *testing.T) {
	b := Pack([]byte{1, 0, 1, 0, 1, 0, 1, 0, 1, 1})
	if len(b) != 1 || b[0] != 0xAA {
		t.Errorf("packed = %x", b)
	}
	if got := Pack([]byte{1, 1}); len(got) != 0 {
		t.Errorf("short input should pack to nothing")
	}
}

func TestEvaluateOnGoodAndBadStreams(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	good := make([]byte, 20000)
	for i := range good {
		good[i] = byte(rng.Intn(2))
	}
	r, err := Evaluate(good)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Healthy() {
		t.Errorf("uniform stream should be healthy: %+v", r)
	}
	// A constant stream fails monobit.
	flat := make([]byte, 20000)
	r, err = Evaluate(flat)
	if err != nil {
		t.Fatal(err)
	}
	if r.Healthy() {
		t.Errorf("constant stream should fail")
	}
	// An alternating stream passes monobit but fails runs/correlation.
	alt := make([]byte, 20000)
	for i := range alt {
		alt[i] = byte(i % 2)
	}
	r, err = Evaluate(alt)
	if err != nil {
		t.Fatal(err)
	}
	if r.Healthy() {
		t.Errorf("alternating stream should fail: %+v", r)
	}
	if _, err := Evaluate([]byte{1}); err == nil {
		t.Errorf("tiny stream should error")
	}
	// Too-short streams are never healthy.
	short := make([]byte, 64)
	r, _ = Evaluate(short)
	if r.Healthy() {
		t.Errorf("64-bit pool should be rejected as too small")
	}
}

func TestGeneratorOnNeuralNoise(t *testing.T) {
	// The headline claim: ADC noise bits from the synthetic cortex pass
	// the health checks after debiasing.
	cfg := neural.DefaultConfig()
	cfg.Channels = 64
	g, err := neural.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	adc := neural.DefaultADC()
	gen, err := NewGenerator(1)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 2000; tick++ {
		gen.Feed(adc.QuantizeBlock(g.Next()))
	}
	if gen.RawBits() != 2000*64 {
		t.Fatalf("raw bits = %d", gen.RawBits())
	}
	bytes, report, err := gen.Emit()
	if err != nil {
		t.Fatalf("neural entropy failed health checks: %v (%+v)", err, report)
	}
	if len(bytes) < 1000 {
		t.Errorf("only %d random bytes from 128k raw bits", len(bytes))
	}
	if gen.RawBits() != 0 {
		t.Errorf("pool not consumed")
	}
	// The packed bytes themselves look uniform at byte level.
	var hist [256]int
	for _, b := range bytes {
		hist[b]++
	}
	exp := float64(len(bytes)) / 256
	chi2 := 0.0
	for _, c := range hist {
		d := float64(c) - exp
		chi2 += d * d / exp
	}
	// χ²(255) mean 255, σ≈22.6; allow 4σ.
	if chi2 > 255+4*22.6 {
		t.Errorf("byte histogram χ² = %v, too non-uniform", chi2)
	}
}

func TestGeneratorFailsClosed(t *testing.T) {
	gen, err := NewGenerator(1)
	if err != nil {
		t.Fatal(err)
	}
	// A stuck ADC (constant samples) must yield an error, not bytes.
	stuck := make([]uint16, 64)
	for i := 0; i < 1000; i++ {
		gen.Feed(stuck)
	}
	if bytes, _, err := gen.Emit(); err == nil || bytes != nil {
		t.Errorf("stuck input should fail closed, got %d bytes", len(bytes))
	}
	if _, err := NewGenerator(9); err == nil {
		t.Errorf("invalid LSB count should fail")
	}
}
