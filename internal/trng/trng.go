// Package trng extracts random bits from neural noise — the
// brain-as-entropy-source application of the authors' MindCrypt line of
// work (the paper's reference [30]). The sensing front end delivers
// thermal and biological noise for free; this package turns ADC
// least-significant bits into a debiased bitstream and provides the
// lightweight statistical checks an implant can afford to run on-line.
package trng

import (
	"errors"
	"fmt"
	"math"
)

// Extractor turns digitized neural samples into candidate entropy bits.
type Extractor struct {
	// LSBs is how many low-order ADC bits to harvest per sample (1–4;
	// higher-order bits carry signal, not noise).
	LSBs int
}

// NewExtractor validates the harvest width.
func NewExtractor(lsbs int) (*Extractor, error) {
	if lsbs < 1 || lsbs > 4 {
		return nil, fmt.Errorf("trng: LSB count %d outside 1..4", lsbs)
	}
	return &Extractor{LSBs: lsbs}, nil
}

// Harvest appends the low-order bits of each sample to dst (LSB first).
func (e *Extractor) Harvest(dst []byte, samples []uint16) []byte {
	for _, s := range samples {
		for b := 0; b < e.LSBs; b++ {
			dst = append(dst, byte(s>>b)&1)
		}
	}
	return dst
}

// VonNeumann debiases a raw bitstream: non-overlapping pairs 01 → 0,
// 10 → 1, and 00/11 are discarded. The output is unbiased whenever the
// input bits are independent, whatever their bias.
func VonNeumann(bits []byte) []byte {
	var out []byte
	for i := 0; i+1 < len(bits); i += 2 {
		a, b := bits[i]&1, bits[i+1]&1
		switch {
		case a == 0 && b == 1:
			out = append(out, 0)
		case a == 1 && b == 0:
			out = append(out, 1)
		}
	}
	return out
}

// Pack collapses a 0/1-valued bit slice into bytes, MSB first; trailing
// bits are dropped.
func Pack(bits []byte) []byte {
	out := make([]byte, len(bits)/8)
	for i := range out {
		var v byte
		for b := 0; b < 8; b++ {
			v = v<<1 | bits[i*8+b]&1
		}
		out[i] = v
	}
	return out
}

// TestReport carries the on-line health checks (a NIST-SP800-22-flavoured
// subset sized for an implant).
type TestReport struct {
	Bits int
	// OnesFraction is the monobit statistic (should be ≈0.5).
	OnesFraction float64
	// MonobitZ is the normalized deviation |ones − n/2| / (√n/2).
	MonobitZ float64
	// Runs is the observed number of runs; ExpectedRuns its expectation
	// under independence.
	Runs         int
	ExpectedRuns float64
	// SerialCorrelation is the lag-1 autocorrelation (should be ≈0).
	SerialCorrelation float64
}

// Healthy applies the standard 3σ-style thresholds.
func (r TestReport) Healthy() bool {
	if r.Bits < 128 {
		return false
	}
	if r.MonobitZ > 3 {
		return false
	}
	if math.Abs(float64(r.Runs)-r.ExpectedRuns) > 3*math.Sqrt(float64(r.Bits)) {
		return false
	}
	return math.Abs(r.SerialCorrelation) < 0.1
}

// Evaluate runs the health checks over a 0/1 bit slice.
func Evaluate(bits []byte) (TestReport, error) {
	n := len(bits)
	if n < 2 {
		return TestReport{}, errors.New("trng: too few bits to test")
	}
	ones := 0
	runs := 1
	for i, b := range bits {
		if b&1 == 1 {
			ones++
		}
		if i > 0 && bits[i]&1 != bits[i-1]&1 {
			runs++
		}
	}
	p := float64(ones) / float64(n)
	// Expected runs for independent bits with bias p: 2np(1−p) + 1.
	expRuns := 2*float64(n)*p*(1-p) + 1
	// Lag-1 autocorrelation.
	var num, den float64
	mean := p
	for i := 0; i+1 < n; i++ {
		num += (float64(bits[i]&1) - mean) * (float64(bits[i+1]&1) - mean)
	}
	for i := 0; i < n; i++ {
		den += (float64(bits[i]&1) - mean) * (float64(bits[i]&1) - mean)
	}
	corr := 0.0
	if den > 0 {
		corr = num / den
	}
	z := math.Abs(float64(ones)-float64(n)/2) / (math.Sqrt(float64(n)) / 2)
	return TestReport{
		Bits:              n,
		OnesFraction:      p,
		MonobitZ:          z,
		Runs:              runs,
		ExpectedRuns:      expRuns,
		SerialCorrelation: corr,
	}, nil
}

// Generator chains extraction, debiasing and health checking over a
// stream of sample vectors.
type Generator struct {
	ex  *Extractor
	raw []byte
}

// NewGenerator returns a generator harvesting the given LSB count.
func NewGenerator(lsbs int) (*Generator, error) {
	ex, err := NewExtractor(lsbs)
	if err != nil {
		return nil, err
	}
	return &Generator{ex: ex}, nil
}

// Feed consumes one multichannel sample vector.
func (g *Generator) Feed(samples []uint16) {
	g.raw = g.ex.Harvest(g.raw, samples)
}

// RawBits returns how many raw bits have been harvested.
func (g *Generator) RawBits() int { return len(g.raw) }

// Emit debiases everything harvested so far, health-checks it, and
// returns packed random bytes. The raw pool is consumed. An unhealthy
// pool returns an error and no bytes (fail closed).
func (g *Generator) Emit() ([]byte, TestReport, error) {
	debiased := VonNeumann(g.raw)
	g.raw = g.raw[:0]
	report, err := Evaluate(debiased)
	if err != nil {
		return nil, TestReport{}, err
	}
	if !report.Healthy() {
		return nil, report, errors.New("trng: entropy pool failed health checks")
	}
	return Pack(debiased), report, nil
}
