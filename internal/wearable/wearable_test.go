package wearable

import (
	"math"
	"testing"

	"mindful/internal/comm"
	"mindful/internal/implant"
)

func cleanImplant(t *testing.T, channels int) *implant.Implant {
	t.Helper()
	cfg := implant.DefaultConfig()
	cfg.Neural.Channels = channels
	im, err := implant.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

func TestCleanLinkEndToEnd(t *testing.T) {
	im := cleanImplant(t, 32)
	rx, err := NewReceiver(64)
	if err != nil {
		t.Fatal(err)
	}
	im.OnFrame(func(buf []byte) {
		if _, err := rx.Receive(buf); err != nil {
			t.Fatalf("clean link rejected a frame: %v", err)
		}
	})
	const ticks = 200
	if err := im.Run(ticks); err != nil {
		t.Fatal(err)
	}
	st := rx.Stats()
	if st.Accepted != ticks || st.Corrupted != 0 || st.LostSeq != 0 {
		t.Errorf("clean link stats: %+v", st)
	}
	if st.FrameErrorRate() != 0 {
		t.Errorf("clean FER = %v", st.FrameErrorRate())
	}
	// History bounded and populated.
	h := rx.History(0)
	if len(h) != 64 {
		t.Errorf("history length = %d, want 64 (bounded)", len(h))
	}
	if rx.History(99) != nil {
		t.Errorf("out-of-range history should be nil")
	}
}

func TestLossyLinkFrameErrorRate(t *testing.T) {
	// At BER 1e-4 over ~500-bit frames, FER ≈ 5%: measured must match the
	// analytic expectation, and every accepted frame must be intact (CRC
	// guarantees it at these error rates).
	im := cleanImplant(t, 32)
	link, err := NewLossyLink(1e-4, 7)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(0)
	if err != nil {
		t.Fatal(err)
	}
	var frameBytes int
	im.OnFrame(func(buf []byte) {
		frameBytes = len(buf)
		rx.Receive(link.Transport(buf)) //nolint:errcheck — rejects are the point
	})
	const ticks = 4000
	if err := im.Run(ticks); err != nil {
		t.Fatal(err)
	}
	st := rx.Stats()
	if st.Accepted+st.Corrupted != ticks {
		t.Fatalf("frames unaccounted: %+v", st)
	}
	want := link.ExpectedFrameErrorRate(frameBytes)
	got := st.FrameErrorRate()
	if math.Abs(got-want) > 0.35*want {
		t.Errorf("FER = %v, analytic %v", got, want)
	}
	// Lost sequence numbers equal the corrupted count (each rejected
	// frame shows up as a gap).
	if st.LostSeq != st.Corrupted {
		t.Errorf("lost %d != corrupted %d", st.LostSeq, st.Corrupted)
	}
}

func TestSequenceGapDetection(t *testing.T) {
	p, err := comm.NewPacketizer(10)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(0)
	if err != nil {
		t.Fatal(err)
	}
	samples := []uint16{1, 2, 3}
	for i := 0; i < 5; i++ {
		buf, err := p.Encode(samples)
		if err != nil {
			t.Fatal(err)
		}
		if i == 2 || i == 3 {
			continue // drop two frames silently
		}
		if _, err := rx.Receive(buf); err != nil {
			t.Fatal(err)
		}
	}
	st := rx.Stats()
	if st.Accepted != 3 || st.LostSeq != 2 {
		t.Errorf("gap stats: %+v", st)
	}
}

func TestReceiverRejectsGarbage(t *testing.T) {
	rx, err := NewReceiver(0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rx.Receive([]byte{1, 2, 3}); err == nil {
		t.Errorf("garbage should be rejected")
	}
	if rx.Stats().Corrupted != 1 {
		t.Errorf("corrupt count = %d", rx.Stats().Corrupted)
	}
}

func TestLossyLinkValidation(t *testing.T) {
	if _, err := NewLossyLink(-0.1, 1); err == nil {
		t.Errorf("negative BER should fail")
	}
	if _, err := NewLossyLink(1, 1); err == nil {
		t.Errorf("BER=1 should fail")
	}
	if _, err := NewReceiver(-1); err == nil {
		t.Errorf("negative history should fail")
	}
	// Zero-BER transport is the identity.
	link, err := NewLossyLink(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	in := []byte{0xAB, 0xCD}
	out := link.Transport(in)
	if out[0] != 0xAB || out[1] != 0xCD {
		t.Errorf("zero-BER transport mutated data")
	}
	// And must not alias the input.
	out[0] = 0
	if in[0] != 0xAB {
		t.Errorf("transport aliases its input")
	}
}

func TestAcceptedFramesAreIntact(t *testing.T) {
	// Under heavy noise, whatever survives the CRC must decode to exactly
	// the samples sent.
	p, err := comm.NewPacketizer(10)
	if err != nil {
		t.Fatal(err)
	}
	link, err := NewLossyLink(2e-3, 11)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := NewReceiver(0)
	if err != nil {
		t.Fatal(err)
	}
	sent := [][]uint16{}
	for i := 0; i < 500; i++ {
		samples := []uint16{uint16(i % 1024), uint16((i * 7) % 1024)}
		sent = append(sent, samples)
		buf, err := p.Encode(samples)
		if err != nil {
			t.Fatal(err)
		}
		f, err := rx.Receive(link.Transport(buf))
		if err != nil {
			continue
		}
		want := sent[f.Seq]
		for c := range want {
			if f.Samples[c] != want[c] {
				t.Fatalf("accepted frame %d corrupted silently", f.Seq)
			}
		}
	}
	if rx.Stats().Corrupted == 0 {
		t.Fatalf("test needs some corruption to be meaningful")
	}
	if rx.Stats().Accepted == 0 {
		t.Fatalf("test needs some accepted frames")
	}
}

func TestExpectedFERMonotone(t *testing.T) {
	l1, _ := NewLossyLink(1e-5, 1)
	l2, _ := NewLossyLink(1e-3, 1)
	if l1.ExpectedFrameErrorRate(100) >= l2.ExpectedFrameErrorRate(100) {
		t.Errorf("FER should grow with BER")
	}
	if l1.ExpectedFrameErrorRate(10) >= l1.ExpectedFrameErrorRate(1000) {
		t.Errorf("FER should grow with frame size")
	}
}
